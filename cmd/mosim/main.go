// Command mosim is the deterministic fleet simulator and chaos harness
// for the movingdb stack. It stands up the real HTTP server in-process,
// streams seeded fleets (delivery trucks on a city grid, flights on
// airport legs, drifting storms) through /v1/ingest while concurrent
// clients issue the full query mix, and cross-checks every response
// against an offline oracle built from the same seed. A chaos profile
// flips failpoints mid-run and the invariant checker asserts the
// degraded-mode contract end to end.
//
// Usage:
//
//	mosim -seed 42 -ticks 200 -chaos mixed
//	mosim -fleet trucks=500,storms=20 -duration 30s -chaos wal-torn
//	mosim -chaos list
//	mosim -capacity 10s -capacity-out BENCH_PR8.json
//
// The verdict prints as JSON on stdout; the exit status is non-zero on
// any invariant violation. The same seed and profile reproduce a
// byte-identical event log and verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"movingdb/internal/fault"
	"movingdb/internal/sim"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "deterministic seed for fleets, queries and subscriptions")
		ticks      = flag.Int("ticks", 0, "number of simulation ticks (default 60, or derived from -duration)")
		tickPeriod = flag.Duration("tick-period", 50*time.Millisecond, "wall-clock pacing per tick when -duration is set")
		duration   = flag.Duration("duration", 0, "pace the run over this wall-clock duration instead of running flat-out")
		fleet      = flag.String("fleet", "", "fleet sizes, e.g. trucks=12,flights=6,storms=3")
		subs       = flag.Int("subs", 0, "standing subscriptions to open (default 8)")
		chaos      = flag.String("chaos", "", "chaos profile name, or 'list' to print the catalog")
		capacity   = flag.Duration("capacity", 0, "run capacity mode for this duration instead of an invariant run")
		capOut     = flag.String("capacity-out", "BENCH_PR8.json", "file for the capacity report")
		verbose    = flag.Bool("v", false, "print the per-tick event log")
	)
	flag.Parse()

	if *chaos == "list" {
		listChaos()
		return
	}

	cfg := sim.Config{Seed: *seed, Ticks: *ticks, Subs: *subs}
	if err := parseFleet(*fleet, &cfg); err != nil {
		fatal(err)
	}
	if *duration > 0 {
		cfg.Paced = true
		cfg.TickPeriod = *tickPeriod
		if cfg.Ticks == 0 && *tickPeriod > 0 {
			cfg.Ticks = int(*duration / *tickPeriod)
		}
	}

	if *capacity > 0 {
		rep, err := sim.Capacity(cfg, *capacity)
		if err != nil {
			fatal(err)
		}
		out, _ := json.MarshalIndent(rep, "", "  ")
		out = append(out, '\n')
		if err := os.WriteFile(*capOut, out, 0o644); err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Fprintf(os.Stderr, "capacity report written to %s\n", *capOut)
		if rep.Verdict != "sustained" {
			os.Exit(1)
		}
		return
	}

	if *chaos != "" {
		profile, err := sim.LookupProfile(*chaos)
		if err != nil {
			fatal(err)
		}
		cfg.Profile = profile
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, line := range res.Log {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	out, _ := json.MarshalIndent(res.Verdict, "", "  ")
	fmt.Println(string(out))
	if !res.Verdict.Passed() {
		os.Exit(1)
	}
}

// listChaos prints the chaos profile catalog and the failpoint sites
// they may reference, then exits cleanly.
func listChaos() {
	fmt.Println("chaos profiles:")
	for _, p := range sim.Profiles() {
		fmt.Printf("  %-14s %s\n", p.Name, p.Desc)
		for _, fl := range p.Flips {
			action := "clear"
			if fl.Spec != nil {
				action = "arm " + fl.Spec.Mode.String()
				if fl.Spec.Times > 0 {
					action += fmt.Sprintf(" x%d", fl.Spec.Times)
				}
			}
			fmt.Printf("  %14s @%3.0f%%  %-13s %s\n", "", fl.Frac*100, fl.Site, action)
		}
	}
	fmt.Println("\nfailpoint sites (profiles may only reference these):")
	for _, s := range fault.Sites() {
		fmt.Printf("  %-14s [%s] %s\n", s.Name, s.Layer, s.Desc)
	}
	fmt.Println("\nsites outside the wal layer require a binary built with -tags=faultinject")
}

// parseFleet applies a "trucks=N,flights=N,storms=N" spec onto cfg.
func parseFleet(spec string, cfg *sim.Config) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("mosim: bad -fleet entry %q, want kind=count", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("mosim: bad -fleet count %q for %s", val, key)
		}
		switch key {
		case "trucks":
			cfg.Trucks = n
		case "flights":
			cfg.Flights = n
		case "storms":
			cfg.Storms = n
		default:
			return fmt.Errorf("mosim: unknown -fleet kind %q (want trucks, flights or storms)", key)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mosim:", err)
	os.Exit(1)
}
