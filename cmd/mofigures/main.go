// mofigures regenerates the data behind the conceptual figures of the
// paper (Figures 1–8) by constructing the pictured values through the
// library API and dumping their coordinates and structure. Each figure
// is an executable witness that the implemented model expresses exactly
// what the paper illustrates.
package main

import (
	"flag"
	"fmt"
	"os"

	"movingdb/internal/geom"
	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-8); 0 = all")
	svgDir := flag.String("svg", "", "also render the spatial figures as SVG files into this directory")
	flag.Parse()

	if *svgDir != "" {
		if err := writeSVGs(*svgDir); err != nil {
			fmt.Fprintf(os.Stderr, "svg: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("SVG files written to %s\n\n", *svgDir)
	}

	figs := map[int]func(){
		1: figure1, 2: figure2, 3: figure3, 4: figure4,
		5: figure5, 6: figure6, 7: figure7, 8: figure8,
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "no figure %d\n", *fig)
			os.Exit(1)
		}
		f()
		return
	}
	for i := 1; i <= 8; i++ {
		figs[i]()
		fmt.Println()
	}
}

func header(n int, title string) {
	fmt.Printf("Figure %d: %s\n", n, title)
	fmt.Println("--------------------------------------------------------------")
}

// Figure 1: sliced representation of a moving real and a moving points
// value.
func figure1() {
	header(1, "sliced representation of moving(real) and moving(points)")
	mreal := moving.MustMReal(
		units.NewUReal(temporal.RightHalfOpen(0, 4), 0.25, 0, 1, false), // rising parabola
		units.NewUReal(temporal.RightHalfOpen(4, 7), 0, -1, 9, false),   // falling line
		units.NewUReal(temporal.Closed(7, 10), 0.5, -8, 33.5, false),    // parabola
	)
	fmt.Println("moving(real) as mapping(ureal):")
	for _, u := range mreal.M.Units() {
		fmt.Printf("  slice %v: value(t) = %g·t² %+g·t %+g\n", u.Iv, u.A, u.B, u.C)
	}
	fmt.Println("  samples:")
	for t := 0.0; t <= 10; t += 2 {
		fmt.Printf("    t=%-4g value=%v\n", t, mreal.AtInstant(temporal.Instant(t)))
	}

	a := units.MPoint{X0: 0, X1: 1, Y0: 0, Y1: 0.5}
	b := units.MPoint{X0: 10, X1: 0.5, Y0: 0, Y1: 0.5}
	c := units.MPoint{X0: 5, X1: 0, Y0: 8, Y1: 0}
	mpoints := moving.MustMPoints(
		units.MustUPoints(temporal.RightHalfOpen(0, 5), a, b),
		units.MustUPoints(temporal.Closed(5, 10), a, b, c), // a point appears
	)
	fmt.Println("moving(points) as mapping(upoints) — point set changes between slices:")
	for _, u := range mpoints.M.Units() {
		fmt.Printf("  slice %v: %d moving points\n", u.Iv, u.Len())
	}
	for t := 0.0; t <= 10; t += 5 {
		if ps, ok := mpoints.AtInstant(temporal.Instant(t)); ok {
			fmt.Printf("    t=%-4g points=%v\n", t, ps)
		}
	}
}

// Figure 2: line values — abstract (curves), discrete (polylines), and
// "any set of segments is a line value".
func figure2Line() spatial.Line {
	return spatial.MustLine(
		geom.Seg(0, 2, 2, 3), geom.Seg(2, 3, 4, 2), geom.Seg(4, 2, 6, 4), // a polyline
		geom.Seg(1, 0, 5, 1), // a second curve
		geom.Seg(3, 0, 3, 5), // crossing everything: still one valid line value
	)
}

func figure2() {
	header(2, "line value: polyline approximation and segment-soup view")
	l := figure2Line()
	fmt.Printf("segments (%d), canonical order:\n", l.NumSegments())
	for _, s := range l.Segments() {
		fmt.Printf("  %v\n", s)
	}
	fmt.Printf("length=%.3f bbox=%v\n", l.Length(), l.BBox())
	fmt.Println("halfsegment array (plane sweep order):")
	for _, h := range l.HalfSegments() {
		fmt.Printf("  %v\n", h)
	}
}

// Figure 3: region value with holes, faces and cycles.
func figure3Region() spatial.Region {
	return spatial.MustRegion(
		spatial.MustFace(
			spatial.MustCycle(spatial.Ring(0, 0, 10, 0, 10, 8, 0, 8)...),
			spatial.MustCycle(spatial.Ring(1, 1, 4, 1, 4, 4, 1, 4)...),
			spatial.MustCycle(spatial.Ring(6, 4, 9, 4, 9, 7, 6, 7)...),
		),
		spatial.MustFace(spatial.MustCycle(spatial.Ring(12, 0, 16, 0, 14, 6)...)),
	)
}

func figure3() {
	header(3, "region value: two faces, one with two holes")
	r := figure3Region()
	fmt.Printf("faces=%d cycles=%d segments=%d area=%.1f perimeter=%.2f\n",
		r.NumFaces(), r.NumCycles(), r.NumSegments(), r.Area(), r.Perimeter())
	for i, f := range r.Faces() {
		fmt.Printf("  face %d: outer %v\n", i, f.Outer.Vertices())
		for j, h := range f.Holes {
			fmt.Printf("          hole %d %v\n", j, h.Vertices())
		}
	}
}

// Figure 4: an instance of uline — translating segments.
func figure4() {
	header(4, "uline instance: segments translating without rotation")
	mk := func(p, q geom.Point, vx, vy float64) units.MSeg {
		return units.MustMSeg(
			units.MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy},
			units.MPoint{X0: q.X, X1: vx, Y0: q.Y, Y1: vy},
		)
	}
	ul := units.MustULine(temporal.Closed(0, 4),
		mk(geom.Pt(0, 0), geom.Pt(2, 1), 1, 0.5),
		mk(geom.Pt(3, 2), geom.Pt(5, 2), 1, 0.5),
	)
	for t := 0.0; t <= 4; t += 2 {
		l, _ := ul.EvalAt(temporal.Instant(t))
		fmt.Printf("  t=%g: %v\n", t, l)
	}
}

// Figure 5: discrete representation of a continuously moving line; the
// non-rotation constraint met by mapping endpoints (triangles allowed).
func figure5() {
	header(5, "moving line approximated by non-rotating moving segments")
	// A line that rotates in reality is approximated by two moving
	// segments whose endpoint mapping keeps each segment's direction
	// fixed; one of them degenerates at the end (a "triangle" in 3D).
	g, err := units.MSegThrough(0, geom.Pt(0, 0), geom.Pt(4, 0), 4, geom.Pt(0, 2), geom.Pt(4, 2))
	if err != nil {
		panic(err)
	}
	h, err := units.MSegThrough(0, geom.Pt(4, 0), geom.Pt(6, 0), 4, geom.Pt(4, 2), geom.Pt(4, 2))
	if err != nil {
		panic(err)
	}
	ul := units.MustULine(temporal.Closed(0, 4), g, h)
	for t := 0.0; t <= 4; t += 1 {
		l, _ := ul.EvalAt(temporal.Instant(t))
		fmt.Printf("  t=%g: %d segments, length %.3f\n", t, l.NumSegments(), l.Length())
	}
	fmt.Println("  (the second moving segment collapses exactly at t=4 — cleaned up by ι_e)")
}

// figure6URegion builds the Figure 6 instance: a square that collapses
// to a segment at t=4 (two vertices merge pairwise).
func figure6URegion() units.URegion {
	ring0 := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
	ring1 := []geom.Point{geom.Pt(1, 2), geom.Pt(5, 2), geom.Pt(5, 2), geom.Pt(1, 2)}
	var mc units.MCycle
	for i := range ring0 {
		m, err := units.MPointThrough(0, ring0[i], 4, ring1[i])
		if err != nil {
			panic(err)
		}
		mc = append(mc, m)
	}
	return units.MustURegion(temporal.Closed(0, 4), units.MFace{Outer: mc})
}

// Figure 6: an instance of uregion with endpoint degeneracies.
func figure6() {
	header(6, "uregion instance: moving face, degenerate at the end instant")
	ur := figure6URegion()
	for t := 0.0; t <= 4; t += 1 {
		r, ok := ur.EvalAt(temporal.Instant(t))
		fmt.Printf("  t=%g: ok=%v faces=%d segments=%d area=%.2f\n", t, ok, r.NumFaces(), r.NumSegments(), r.Area())
	}
	fmt.Println("  (at t=4 the face has collapsed; ι_e cleanup yields the empty region)")
}

// Figure 7: the mapping data structure — units array plus shared
// subarrays.
func figure7() {
	header(7, "mapping data structure: units array + shared subarrays")
	a := units.MPoint{X0: 0, X1: 1, Y0: 0, Y1: 0}
	b := units.MPoint{X0: 0, X1: 1, Y0: 3, Y1: 0}
	c := units.MPoint{X0: 5, X1: 0, Y0: 5, Y1: 0}
	m := moving.MustMPoints(
		units.MustUPoints(temporal.RightHalfOpen(0, 2), a, b),
		units.MustUPoints(temporal.RightHalfOpen(2, 5), a, b, c),
		units.MustUPoints(temporal.Closed(5, 8), b, c),
	)
	e := storage.EncodeMPoints(m)
	fmt.Printf("root record: %d bytes (unit count)\n", len(e.Root))
	fmt.Printf("units array: %d bytes — %d unit records (interval + subarray [start, end))\n",
		len(e.Arrays[0]), m.M.Len())
	off := 0
	for i, u := range m.M.Units() {
		fmt.Printf("  unit %d: %v  -> subarray [%d, %d)\n", i, u.Iv, off, off+u.Len())
		off += u.Len()
	}
	fmt.Printf("shared subarray: %d bytes — %d MPoint records\n", len(e.Arrays[1]), off)
}

// Figure 8: refinement partition of two interval sets.
func figure8() {
	header(8, "refinement partition of two unit interval sequences")
	aIv := []temporal.Interval{temporal.Closed(0, 3), temporal.Closed(5, 9)}
	bIv := []temporal.Interval{temporal.Closed(2, 6), temporal.Closed(8, 11)}
	fmt.Printf("  A: %v\n  B: %v\n  refinement:\n", aIv, bIv)
	for _, ri := range temporal.Refine(aIv, bIv) {
		who := ""
		if ri.A >= 0 {
			who += fmt.Sprintf(" A[%d]", ri.A)
		}
		if ri.B >= 0 {
			who += fmt.Sprintf(" B[%d]", ri.B)
		}
		fmt.Printf("    %-22v ->%s\n", ri.Iv, who)
	}
	_ = mapping.Mapping[units.UBool]{}
}

// instant converts a float to a temporal.Instant (helper for the SVG
// renderer).
func instant(t float64) temporal.Instant { return temporal.Instant(t) }
