package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
)

// Minimal SVG rendering for the spatial figures: regions as filled
// paths (holes via the even-odd rule), lines as strokes, points as
// dots. Used with -svg to write one file per figure snapshot.

type svgCanvas struct {
	b        strings.Builder
	min, max geom.Point
}

func newSVG() *svgCanvas {
	return &svgCanvas{min: geom.Pt(1e300, 1e300), max: geom.Pt(-1e300, -1e300)}
}

func (c *svgCanvas) grow(p geom.Point) {
	c.min.X = min(c.min.X, p.X)
	c.min.Y = min(c.min.Y, p.Y)
	c.max.X = max(c.max.X, p.X)
	c.max.Y = max(c.max.Y, p.Y)
}

func (c *svgCanvas) region(r spatial.Region, fill, stroke string) {
	for _, f := range r.Faces() {
		var d strings.Builder
		ring := func(verts []geom.Point) {
			for i, p := range verts {
				c.grow(p)
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&d, "%s %.3f %.3f ", cmd, p.X, -p.Y)
			}
			d.WriteString("Z ")
		}
		ring(f.Outer.Vertices())
		for _, h := range f.Holes {
			ring(h.Vertices())
		}
		fmt.Fprintf(&c.b, `<path d="%s" fill="%s" fill-rule="evenodd" stroke="%s" stroke-width="0.15"/>`+"\n",
			strings.TrimSpace(d.String()), fill, stroke)
	}
}

func (c *svgCanvas) line(l spatial.Line, stroke string) {
	for _, s := range l.Segments() {
		c.grow(s.Left)
		c.grow(s.Right)
		fmt.Fprintf(&c.b, `<line x1="%.3f" y1="%.3f" x2="%.3f" y2="%.3f" stroke="%s" stroke-width="0.15"/>`+"\n",
			s.Left.X, -s.Left.Y, s.Right.X, -s.Right.Y, stroke)
	}
}

func (c *svgCanvas) point(p geom.Point, fill string) {
	c.grow(p)
	fmt.Fprintf(&c.b, `<circle cx="%.3f" cy="%.3f" r="0.25" fill="%s"/>`+"\n", p.X, -p.Y, fill)
}

func (c *svgCanvas) write(path string) error {
	pad := 1.0
	w := c.max.X - c.min.X + 2*pad
	h := c.max.Y - c.min.Y + 2*pad
	if w <= 0 || h <= 0 {
		w, h = 10, 10
	}
	doc := fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" viewBox="%.3f %.3f %.3f %.3f" width="480">`+"\n",
		c.min.X-pad, -c.max.Y-pad, w, h) + c.b.String() + "</svg>\n"
	return os.WriteFile(path, []byte(doc), 0o644)
}

// writeSVGs renders the spatial figures into dir: the Figure 2 line
// value, the Figure 3 region, and snapshots of the Figure 6 uregion.
func writeSVGs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Figure 2 line value.
	{
		c := newSVG()
		c.line(figure2Line(), "#1f77b4")
		if err := c.write(filepath.Join(dir, "figure2_line.svg")); err != nil {
			return err
		}
	}
	// Figure 3 region.
	{
		c := newSVG()
		c.region(figure3Region(), "#9ecae1", "#08519c")
		if err := c.write(filepath.Join(dir, "figure3_region.svg")); err != nil {
			return err
		}
	}
	// Figure 6 uregion snapshots.
	ur := figure6URegion()
	for _, tt := range []float64{0, 2, 3.5} {
		r, ok := ur.EvalAt(instant(tt))
		if !ok {
			continue
		}
		c := newSVG()
		c.region(r, "#a1d99b", "#006d2c")
		name := fmt.Sprintf("figure6_uregion_t%g.svg", tt)
		if err := c.write(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
