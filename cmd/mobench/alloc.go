package main

// The allocation regression gate (-exp allocgate): the flip side of
// molint's alloc-hot check. alloc-hot proves the hot paths carry no
// unjustified allocation sites statically; the gate proves the
// justified ones stay within budget at runtime. alloc_budgets.json
// pins each hot-path benchmark to a maximum allocs/op (exact — the
// workloads are seeded and deterministic) and B/op (with headroom for
// map/heap growth jitter); the gate runs them under -benchmem through
// the real `go test` harness and fails the build on any excess.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

type allocBudget struct {
	Pkg       string `json:"pkg"`
	MaxAllocs int64  `json:"max_allocs_per_op"`
	MaxBytes  int64  `json:"max_bytes_per_op"`
}

type allocBudgetFile struct {
	Description string                 `json:"description"`
	Benchmarks  map[string]allocBudget `json:"benchmarks"`
}

// benchStat is one parsed -benchmem result line.
type benchStat struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// allocRow is one gate verdict, written to -outalloc as JSON.
type allocRow struct {
	benchStat
	Pkg       string `json:"pkg"`
	MaxAllocs int64  `json:"max_allocs_per_op"`
	MaxBytes  int64  `json:"max_bytes_per_op"`
	Pass      bool   `json:"pass"`
}

// parseBenchOutput extracts the benchmark result lines from `go test
// -bench -benchmem` output. Names are normalised by stripping the
// trailing -<procs> suffix the harness appends, so they match the
// budget keys.
func parseBenchOutput(output string) []benchStat {
	var out []benchStat
	for _, line := range strings.Split(output, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		st := benchStat{Name: trimProcs(fields[0]), NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 2; i < len(fields); i++ {
			v := fields[i-1]
			switch fields[i] {
			case "ns/op":
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					st.NsPerOp = f
				}
			case "B/op":
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					st.BytesPerOp = n
				}
			case "allocs/op":
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					st.AllocsPerOp = n
				}
			}
		}
		if st.AllocsPerOp >= 0 && st.BytesPerOp >= 0 {
			out = append(out, st)
		}
	}
	return out
}

// trimProcs strips the -<GOMAXPROCS> suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// allocGate runs every budgeted benchmark and fails on any excess.
func allocGate() {
	raw, err := os.ReadFile(budgets)
	if err != nil {
		fmt.Printf("allocgate: %v\n", err)
		os.Exit(2)
	}
	var file allocBudgetFile
	if err := json.Unmarshal(raw, &file); err != nil {
		fmt.Printf("allocgate: parse %s: %v\n", budgets, err)
		os.Exit(2)
	}
	if len(file.Benchmarks) == 0 {
		fmt.Printf("allocgate: %s names no benchmarks\n", budgets)
		os.Exit(2)
	}

	// Group budget entries by package so each package's benchmarks run
	// in one `go test` invocation (one build, shared cache).
	byPkg := map[string][]string{}
	for name, b := range file.Benchmarks {
		byPkg[b.Pkg] = append(byPkg[b.Pkg], name)
	}
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	stats := map[string]benchStat{}
	for _, pkg := range pkgs {
		names := byPkg[pkg]
		sort.Strings(names)
		re := "^(" + strings.Join(names, "|") + ")$"
		cmd := exec.Command("go", "test", "-run=^$", "-bench="+re, "-benchmem", "-count=1", pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Printf("allocgate: go test %s: %v\n%s", pkg, err, out)
			os.Exit(2)
		}
		for _, st := range parseBenchOutput(string(out)) {
			stats[st.Name] = st
		}
	}

	names := make([]string, 0, len(file.Benchmarks))
	for n := range file.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Println("allocgate: hot-path allocation budgets (alloc_budgets.json)")
	fmt.Printf("%-28s %12s %14s %14s %8s\n", "benchmark", "ns/op", "B/op (max)", "allocs (max)", "verdict")
	var rows []allocRow
	failed := 0
	for _, name := range names {
		b := file.Benchmarks[name]
		st, ok := stats[name]
		if !ok {
			fmt.Printf("%-28s %12s %14s %14s %8s\n", name, "-", "-", "-", "MISSING")
			failed++
			continue
		}
		pass := st.AllocsPerOp <= b.MaxAllocs && st.BytesPerOp <= b.MaxBytes
		if !pass {
			failed++
		}
		verdict := "ok"
		if !pass {
			verdict = "FAIL"
		}
		fmt.Printf("%-28s %12.0f %7d (%5d) %7d (%4d) %8s\n",
			name, st.NsPerOp, st.BytesPerOp, b.MaxBytes, st.AllocsPerOp, b.MaxAllocs, verdict)
		rows = append(rows, allocRow{benchStat: st, Pkg: b.Pkg,
			MaxAllocs: b.MaxAllocs, MaxBytes: b.MaxBytes, Pass: pass})
	}
	if outAlloc != "" {
		data, err := json.MarshalIndent(map[string]any{"allocgate": rows}, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(outAlloc, append(data, '\n'), 0o644); err != nil {
			fmt.Printf("write %s: %v\n", outAlloc, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", outAlloc)
	}
	if failed > 0 {
		fmt.Printf("allocgate: FAIL — %d benchmark(s) over budget or missing\n", failed)
		os.Exit(1)
	}
	fmt.Println("allocgate: OK")
}
