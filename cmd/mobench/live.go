package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/obs"
	"movingdb/internal/server"
	"movingdb/internal/workload"
)

// liveRig is one fully wired live stack: ingestion pipeline publishing
// epochs into a standing-query registry, served over a real HTTP
// listener so SSE delivery is measured through the network stack, not
// just a function call.
type liveRig struct {
	pipe    *ingest.Pipeline
	reg     *live.Registry
	ts      *httptest.Server
	ids     []string
	metrics *obs.Metrics
}

const liveObjects = 64

func newLiveRig() *liveRig {
	metrics := obs.New(0)
	reg := live.NewRegistry(live.Config{Metrics: metrics})
	pipe, err := ingest.Open(ingest.Config{
		FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 1 << 30,
		OnPublish: reg.Notify,
	})
	if err != nil {
		panic(err)
	}
	ids := make([]string, liveObjects)
	seed := make([]ingest.Observation, liveObjects)
	for o := range seed {
		ids[o] = fmt.Sprintf("e%d", o)
		seed[o] = ingest.Observation{ObjectID: ids[o], T: 0, X: float64((o * 131) % 950), Y: float64((o * 57) % 950)}
	}
	if _, err := pipe.Ingest(seed); err != nil {
		panic(err)
	}
	pipe.Flush()
	s, err := server.New(server.Config{Ingest: pipe, Live: reg, SSEHeartbeat: 5 * time.Second})
	if err != nil {
		panic(err)
	}
	return &liveRig{pipe: pipe, reg: reg, ts: httptest.NewServer(s.Handler()), ids: ids, metrics: metrics}
}

func (rig *liveRig) close() {
	rig.reg.Close()
	rig.ts.Close()
	rig.pipe.Close()
}

// tick moves every object a few world units along a per-object drift
// and flushes, publishing one epoch — the GPS-tracker shape, where a
// flush dirties small movement rects and only the predicates near a
// moving object are re-evaluated.
func (rig *liveRig) tick(t float64) {
	batch := make([]ingest.Observation, liveObjects)
	for o := range batch {
		batch[o] = ingest.Observation{
			ObjectID: rig.ids[o],
			T:        t,
			X:        math.Mod(float64(o*131)+t*3.1, 950),
			Y:        math.Mod(float64(o*57)+t*2.3, 950),
		}
	}
	if _, err := rig.pipe.Ingest(batch); err != nil {
		panic(err)
	}
	rig.pipe.Flush()
}

// stressTick teleports every object to a position derived from t —
// nearly every region predicate in the world can flip on one epoch,
// the event-volume stress case the soak uses.
func (rig *liveRig) stressTick(t float64) {
	batch := make([]ingest.Observation, liveObjects)
	for o := range batch {
		batch[o] = ingest.Observation{
			ObjectID: rig.ids[o],
			T:        t,
			X:        float64((int(t)*13 + o*131) % 950),
			Y:        float64((int(t)*29 + o*57) % 950),
		}
	}
	if _, err := rig.pipe.Ingest(batch); err != nil {
		panic(err)
	}
	rig.pipe.Flush()
}

// subscribe registers one standing query over HTTP and returns the
// subscription id and its events URL.
func (rig *liveRig) subscribe(sp workload.SubscriptionSpec) (id, eventsURL string) {
	body := map[string]any{"predicate": sp.Kind}
	switch sp.Kind {
	case "inside", "appears":
		body["region"] = map[string]any{"x1": sp.Region.MinX, "y1": sp.Region.MinY, "x2": sp.Region.MaxX, "y2": sp.Region.MaxY}
	}
	switch sp.Kind {
	case "inside":
		body["object"] = sp.Object
	case "within":
		body["object"] = sp.Object
		body["x"], body["y"], body["radius"] = sp.X, sp.Y, sp.Radius
	}
	b, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(rig.ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(b))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		panic(fmt.Sprintf("subscribe: %d %s", resp.StatusCode, msg))
	}
	var out struct {
		ID        string `json:"subscription_id"`
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	return out.ID, out.EventsURL
}

// readEvents consumes one SSE stream until it ends (bye or connection
// close), calling onEvent with each enter/leave event and the local
// receive time. Heartbeats, comments, and lagged markers are skipped
// (lagged streams are counted by the caller via /v1/subscribe/{id}).
func (rig *liveRig) readEvents(eventsURL string, onEvent func(e live.Event, recvNS int64)) {
	resp, err := http.Get(rig.ts.URL + eventsURL)
	if err != nil {
		return // server shutting down
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			if event == "bye" {
				return
			}
			if (event == "enter" || event == "leave") && data != "" {
				var e live.Event
				if err := json.Unmarshal([]byte(data), &e); err == nil {
					onEvent(e, time.Now().UnixNano())
				}
			}
			event, data = "", ""
		}
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// E10 — PR 7: standing-query push latency and throughput. For each
// subscriber count, a full stack (pipeline → registry → HTTP server)
// carries nSubs standing queries while the writer drifts 64 objects
// and flushes an epoch every ~1ms; every subscription is evaluated
// against every publish. Delivery latency — epoch publish (stamped
// into each event by the registry) to SSE receipt at the client — is
// measured on a sample of up to 64 concurrently read streams: client
// and server share one process, so reading a thousand streams at once
// would measure the harness's own scheduling, not the server's
// delivery. The sustained event rate is events received over the
// measurement wall time. With -out7, results are written as JSON
// (BENCH_PR7.json).
func e10Live() {
	fmt.Println("E10 (extension): standing queries — publish-to-SSE-delivery latency and event rate")
	type row struct {
		Subscribers  int     `json:"subscribers"`
		Epochs       uint64  `json:"epochs_published"`
		Events       int64   `json:"events_delivered"`
		EventsPerSec float64 `json:"events_per_sec"`
		P50Micros    float64 `json:"p50_micros"`
		P99Micros    float64 `json:"p99_micros"`
		MaxMicros    float64 `json:"max_micros"`
		Coalesced    int64   `json:"notifies_coalesced"`
		AvgEvalUS    float64 `json:"avg_eval_us"`
		MaxEvalUS    float64 `json:"max_eval_us"`
	}
	var results struct {
		Delivery []row `json:"delivery_latency"`
	}

	counts := []int{100, 500, 1000}
	dur := 2 * time.Second
	if quick {
		counts = []int{50, 200}
		dur = 500 * time.Millisecond
	}
	fmt.Printf("%12s %8s %10s %12s %10s %10s %10s\n", "subscribers", "epochs", "events", "events/s", "p50", "p99", "max")
	for _, nSubs := range counts {
		rig := newLiveRig()
		g := workload.New(101)
		specs := g.Subscriptions(nSubs, rig.ids)

		const maxReaders = 64
		stride := max(nSubs/maxReaders, 1)
		var mu sync.Mutex
		var lats []float64
		var delivered int64
		var wg sync.WaitGroup
		for i, sp := range specs {
			_, eventsURL := rig.subscribe(sp)
			if i%stride != 0 {
				continue // standing but unread: evaluated every epoch, buffer bounded
			}
			wg.Add(1)
			// moguard: bounded the SSE stream ends at registry Close (bye frame / connection close)
			go func(url string) {
				defer wg.Done()
				rig.readEvents(url, func(e live.Event, recvNS int64) {
					atomic.AddInt64(&delivered, 1)
					mu.Lock()
					lats = append(lats, float64(recvNS-e.PubUnixNS)/1e3)
					mu.Unlock()
				})
			}(eventsURL)
		}

		baseEpoch := rig.pipe.Epoch().Seq()
		start := time.Now()
		for t := 1.0; time.Since(start) < dur; t++ {
			rig.tick(t)
			time.Sleep(2 * time.Millisecond)
		}
		// Let the notifier and the streams drain what the last flush queued.
		time.Sleep(100 * time.Millisecond)
		elapsed := time.Since(start)
		epochs := rig.pipe.Epoch().Seq() - baseEpoch
		liveStats := rig.metrics.Snapshot().Live
		rig.close()
		wg.Wait()

		sort.Float64s(lats)
		r := row{
			Subscribers:  nSubs,
			Epochs:       epochs,
			Events:       delivered,
			EventsPerSec: float64(delivered) / elapsed.Seconds(),
			P50Micros:    percentile(lats, 0.50),
			P99Micros:    percentile(lats, 0.99),
			MaxMicros:    percentile(lats, 1.0),
			Coalesced:    liveStats.Coalesced,
			AvgEvalUS:    liveStats.AvgEvalMicros,
			MaxEvalUS:    liveStats.MaxEvalMicros,
		}
		results.Delivery = append(results.Delivery, r)
		fmt.Printf("%12d %8d %10d %12.0f %9.0fµs %9.0fµs %9.0fµs\n",
			r.Subscribers, r.Epochs, r.Events, r.EventsPerSec, r.P50Micros, r.P99Micros, r.MaxMicros)
	}

	if out7 != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(out7, append(data, '\n'), 0o644); err != nil {
			fmt.Printf("write %s: %v\n", out7, err)
			return
		}
		fmt.Printf("\nwrote %s\n", out7)
	}
}

// soakRun exercises the live subscriber mix for a sustained period
// (-soak-dur, default 10s): continuous ingestion publishing epochs,
// 200 standing subscriptions all streaming over SSE, subscribe/
// unsubscribe churn, and concurrent /v1/nearby readers. It panics on
// any unexpected HTTP status; a clean exit with the printed totals is
// the pass criterion (verify.sh runs it via make soak).
func soakRun() {
	fmt.Printf("soak: live subscriber mix for %v\n", soakFor)
	rig := newLiveRig()
	g := workload.New(202)
	const baseSubs = 200
	specs := g.Subscriptions(baseSubs, rig.ids)

	var delivered, nearbyQueries int64
	var readers sync.WaitGroup // SSE streams; unblocked by registry Close
	var load sync.WaitGroup    // churn + nearby; unblocked by the stop channel
	for _, sp := range specs {
		_, eventsURL := rig.subscribe(sp)
		readers.Add(1)
		// moguard: bounded the SSE stream ends at registry Close (bye frame / connection close)
		go func(url string) {
			defer readers.Done()
			rig.readEvents(url, func(live.Event, int64) { atomic.AddInt64(&delivered, 1) })
		}(eventsURL)
	}

	stop := make(chan struct{})
	// Churn: a rolling window of short-lived subscriptions on top of the
	// steady base, exercising Subscribe/Unsubscribe against the notifier.
	churnSpecs := g.Subscriptions(4096, rig.ids)
	load.Add(1)
	go func() {
		defer load.Done()
		var open []string
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id, _ := rig.subscribe(churnSpecs[i%len(churnSpecs)])
			open = append(open, id)
			if len(open) > 32 {
				j := rng.Intn(len(open))
				req, _ := http.NewRequest(http.MethodDelete, rig.ts.URL+"/v1/subscribe/"+open[j], nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						panic(fmt.Sprintf("unsubscribe: %d", resp.StatusCode))
					}
				}
				open = append(open[:j], open[j+1:]...)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Nearby readers: each loops over a deterministic query mix; every
	// response must be 200 (the epoch always exists once seeded).
	queries := g.NearbyQueries(256, 0, 50, 10)
	for r := 0; r < 4; r++ {
		load.Add(1)
		go func(r int) {
			defer load.Done()
			for i := r; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[i%len(queries)]
				url := fmt.Sprintf("%s/v1/nearby?x=%g&y=%g&t=%g", rig.ts.URL, q.X, q.Y, q.T)
				if q.K > 0 {
					url += fmt.Sprintf("&k=%d", q.K)
				}
				if q.Radius > 0 {
					url += fmt.Sprintf("&radius=%g", q.Radius)
				}
				resp, err := http.Get(url)
				if err != nil {
					return // listener closed at shutdown
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("nearby: %d for %s", resp.StatusCode, url))
				}
				atomic.AddInt64(&nearbyQueries, 1)
			}
		}(r)
	}

	start := time.Now()
	baseEpoch := rig.pipe.Epoch().Seq()
	for t := 1.0; time.Since(start) < soakFor; t++ {
		rig.stressTick(t)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	load.Wait()
	epochs := rig.pipe.Epoch().Seq() - baseEpoch
	st := rig.metrics.Snapshot().Live
	rig.close()
	readers.Wait()
	el := time.Since(start)

	fmt.Printf("soak ok: %v elapsed, %d epochs, %d events delivered (%.0f/s), %d dropped, %d lag marks, %d nearby queries (%.0f/s), %d subscriptions evaluated\n",
		el.Round(time.Millisecond), epochs, delivered, float64(delivered)/el.Seconds(),
		st.Dropped, st.Lagged, nearbyQueries, float64(nearbyQueries)/el.Seconds(), st.Evaluated)
}
