// mobench is the experiment runner: for every quantitative claim of the
// paper (the complexity statements of Section 5 and the representation
// design of Section 4) it runs a parameter sweep against the naive
// unsliced baseline and prints the tables recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"movingdb/internal/baseline"
	"movingdb/internal/cache"
	"movingdb/internal/db"
	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/ingest"
	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/server"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
	"movingdb/internal/workload"
)

var (
	quick    bool
	out      string
	out6     string
	out7     string
	budgets  string
	outAlloc string
	soakFor  time.Duration
)

func main() {
	flag.BoolVar(&quick, "quick", false, "smaller sweeps")
	flag.StringVar(&out, "out", "BENCH_PR2.json", "file for E8's machine-readable results (empty disables)")
	flag.StringVar(&out6, "out6", "BENCH_PR6.json", "file for E9's machine-readable results (empty disables)")
	flag.StringVar(&out7, "out7", "BENCH_PR7.json", "file for E10's machine-readable results (empty disables)")
	flag.StringVar(&budgets, "budgets", "alloc_budgets.json", "allocation budget file for -exp allocgate")
	flag.StringVar(&outAlloc, "outalloc", "", "file for allocgate's machine-readable results (empty disables)")
	flag.DurationVar(&soakFor, "soak-dur", 10*time.Second, "duration for -exp soak")
	exp := flag.String("exp", "all", "experiment id: E1..E10, soak, allocgate, or all")
	flag.Parse()

	run := map[string]func(){
		"E1": e1AtInstant, "E2": e2Inside, "E3": e3Equality,
		"E4": e4Storage, "E5": e5EndToEnd, "E6": e6Refinement, "E7": e7Window,
		"E8": e8Ingest, "E9": e9Cache, "E10": e10Live, "soak": soakRun,
		"allocgate": allocGate,
	}
	if *exp != "all" {
		f, ok := run[*exp]
		if !ok {
			fmt.Printf("unknown experiment %q\n", *exp)
			return
		}
		f()
		return
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		run[id]()
		fmt.Println()
	}
}

// timeIt measures the average time of f, running it enough times to
// exceed a minimum wall duration; the best of two passes is reported to
// damp GC and frequency-scaling noise.
func timeIt(f func()) time.Duration {
	best := time.Duration(0)
	for pass := 0; pass < 2; pass++ {
		d := timeOnce(f)
		if pass == 0 || d < best {
			best = d
		}
	}
	return best
}

func timeOnce(f func()) time.Duration {
	// Collect garbage from earlier experiments so each measurement
	// starts from a comparable heap (the sweeps run in one process).
	runtime.GC()
	minDur := 50 * time.Millisecond
	if quick {
		minDur = 10 * time.Millisecond
	}
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		el := time.Since(start)
		if el >= minDur {
			return el / time.Duration(n)
		}
		n *= 2
	}
}

func sweep(vals []int) []int {
	if quick && len(vals) > 3 {
		return vals[:3]
	}
	return vals
}

// E1 — Section 5.1: atinstant(mregion, t) is O(log n + r log r); the
// unsliced baseline scans all n units.
func e1AtInstant() {
	fmt.Println("E1: atinstant on moving region — sliced (binary search) vs naive (linear scan)")
	fmt.Println("claim: O(log n + r log r) vs O(n + r log r); sweep over n at fixed r=12")
	fmt.Println("lookup = unit search only; atinstant = lookup + snapshot construction")
	fmt.Printf("%8s %14s %14s %14s %14s %8s\n", "n units", "lookup bin", "lookup scan", "sliced/op", "naive/op", "ratio")
	g := workload.New(99)
	for _, n := range sweep([]int{16, 64, 256, 1024, 4096, 16384}) {
		mr := g.Storm(0, n, 12, 10)
		nv := baseline.FromMRegion(mr)
		span := float64(n) * 10
		ts := make([]temporal.Instant, 64)
		for i := range ts {
			ts[i] = temporal.Instant(span * (float64(i) + 0.37) / float64(len(ts)))
		}
		k := 0
		lookupBin := timeIt(func() { mr.M.FindUnit(ts[k%len(ts)]); k++ })
		k = 0
		lookupScan := timeIt(func() {
			t := ts[k%len(ts)]
			for _, u := range nv.Frags {
				if u.Iv.Contains(t) {
					break
				}
			}
			k++
		})
		k = 0
		sliced := timeIt(func() { mr.AtInstant(ts[k%len(ts)]); k++ })
		k = 0
		naive := timeIt(func() { nv.AtInstant(ts[k%len(ts)]); k++ })
		fmt.Printf("%8d %14v %14v %14v %14v %7.1fx\n", n, lookupBin, lookupScan, sliced, naive, float64(naive)/float64(sliced))
	}
	fmt.Println("\nsweep over region size r at fixed n=256 (both scale ~ r log r):")
	fmt.Printf("%8s %14s %14s\n", "r segs", "sliced/op", "naive/op")
	for _, r := range sweep([]int{8, 32, 128, 512}) {
		mr := g.Storm(0, 256, r, 10)
		nv := baseline.FromMRegion(mr)
		k := 0
		ts := make([]temporal.Instant, 64)
		for i := range ts {
			ts[i] = temporal.Instant(2560 * (float64(i) + 0.37) / float64(len(ts)))
		}
		sliced := timeIt(func() { mr.AtInstant(ts[k%len(ts)]); k++ })
		k = 0
		naive := timeIt(func() { nv.AtInstant(ts[k%len(ts)]); k++ })
		fmt.Printf("%8d %14v %14v\n", r, sliced, naive)
	}
}

// E2 — Section 5.2: inside(mpoint, mregion) is O(n + m + S) via the
// refinement partition; the baseline tests all n·m unit pairs.
func e2Inside() {
	fmt.Println("E2: inside(mpoint, mregion) — refinement partition vs all-pairs baseline")
	fmt.Println("claim: O(n + m + S) vs O(n·m); sweep over n = m at fixed region size 10")
	fmt.Printf("%8s %14s %14s %10s\n", "n=m", "sliced/op", "naive/op", "ratio")
	g := workload.New(7)
	for _, n := range sweep([]int{8, 32, 128, 512, 2048}) {
		mp := g.RandomTrajectory(0, n, 10, 2)
		mr := g.Storm(0, n, 10, 10)
		np := baseline.FromMPoint(mp)
		nr := baseline.FromMRegion(mr)
		sliced := timeIt(func() { mp.Inside(mr) })
		naive := timeIt(func() { np.Inside(nr) })
		fmt.Printf("%8d %14v %14v %9.1fx\n", n, sliced, naive, float64(naive)/float64(sliced))
	}
	fmt.Println("\nsweep over total region segments S at fixed n=m=64 (both linear in S):")
	fmt.Printf("%8s %14s %14s\n", "S/unit", "sliced/op", "naive/op")
	for _, s := range sweep([]int{8, 32, 128, 512}) {
		mp := g.RandomTrajectory(0, 64, 10, 2)
		mr := g.Storm(0, 64, s, 10)
		np := baseline.FromMPoint(mp)
		nr := baseline.FromMRegion(mr)
		sliced := timeIt(func() { mp.Inside(mr) })
		naive := timeIt(func() { np.Inside(nr) })
		fmt.Printf("%8d %14v %14v\n", s, sliced, naive)
	}
}

// E3 — Section 4: canonical order makes equality a representation
// comparison.
func e3Equality() {
	fmt.Println("E3: value equality by representation comparison (Section 4)")
	fmt.Printf("%8s %18s %20s\n", "n units", "repr compare/op", "semantic probe/op")
	g := workload.New(3)
	var sink float64
	for _, n := range sweep([]int{16, 256, 4096}) {
		a := g.RandomTrajectory(0, n, 10, 2)
		// An exact copy: identical representation, separate backing.
		b := moving.MPoint{M: mapping.FromOrdered(append([]units.UPoint{}, a.M.Units()...))}
		// Representation comparison: O(n) over the ordered unit arrays.
		repr := timeIt(func() {
			if !mpointEqual(a, b) {
				panic("copies must be equal")
			}
		})
		// Semantic probing (what a structure-less system must do):
		// evaluate both values at many instants and compare positions.
		span := float64(n) * 10
		sem := timeIt(func() {
			for i := 0; i < 32; i++ {
				t := temporal.Instant(span * float64(i) / 32)
				sink += a.AtInstant(t).P.X - b.AtInstant(t).P.X
			}
		})
		fmt.Printf("%8d %18v %20v\n", n, repr, sem)
	}
	_ = sink
}

func mpointEqual(a, b moving.MPoint) bool {
	au, bu := a.M.Units(), b.M.Units()
	if len(au) != len(bu) {
		return false
	}
	for i := range au {
		if au[i] != bu[i] {
			return false
		}
	}
	return true
}

// E4 — Section 4: representation sizes and inline/external placement.
func e4Storage() {
	fmt.Println("E4: attribute representations — root + arrays, inline vs external (Section 4)")
	fmt.Printf("%-24s %8s %10s %8s %8s\n", "value", "root B", "arrays B", "inline", "pages")
	g := workload.New(5)
	ps := storage.NewPageStore()
	show := func(name string, e storage.Encoded) {
		sv := storage.Store(ps, e)
		arrays := 0
		for _, a := range e.Arrays {
			arrays += len(a)
		}
		fmt.Printf("%-24s %8d %10d %8d %8d\n", name, len(e.Root), arrays, sv.InlineSize(), sv.ExternalPages())
	}
	short := g.RandomTrajectory(0, 4, 10, 2)
	long := g.RandomTrajectory(0, 4096, 10, 2)
	show("mpoint (4 units)", storage.EncodeMPoint(short))
	show("mpoint (4096 units)", storage.EncodeMPoint(long))
	show("mregion (16u × 12segs)", storage.EncodeMRegion(g.Storm(0, 16, 12, 10)))
	show("mregion (256u × 24segs)", storage.EncodeMRegion(g.Storm(0, 256, 24, 10)))

	fmt.Println("\nencode/decode throughput:")
	fmt.Printf("%-24s %14s %14s\n", "value", "encode/op", "decode/op")
	eLong := storage.EncodeMPoint(long)
	fmt.Printf("%-24s %14v %14v\n", "mpoint (4096 units)",
		timeIt(func() { storage.EncodeMPoint(long) }),
		timeIt(func() {
			if _, err := storage.DecodeMPoint(eLong); err != nil {
				panic(err)
			}
		}))
	storm := g.Storm(0, 256, 24, 10)
	eStorm := storage.EncodeMRegion(storm)
	fmt.Printf("%-24s %14v %14v\n", "mregion (256u × 24segs)",
		timeIt(func() { storage.EncodeMRegion(storm) }),
		timeIt(func() {
			if _, err := storage.DecodeMRegion(eStorm); err != nil {
				panic(err)
			}
		}))
}

// E5 — end to end: the Section 2 join on sliced vs naive representations.
func e5EndToEnd() {
	fmt.Println("E5: end-to-end spatio-temporal workload — sliced vs naive")
	fmt.Println("per-object: storm membership of one trajectory over the full mission")
	fmt.Printf("%8s %14s %14s %10s\n", "units", "sliced/op", "naive/op", "ratio")
	g := workload.New(17)
	for _, n := range sweep([]int{32, 128, 512}) {
		mp := g.RandomTrajectory(0, n, 10, 2)
		mr := g.Storm(0, n, 12, 10)
		np := baseline.FromMPoint(mp)
		nr := baseline.FromMRegion(mr)
		sliced := timeIt(func() {
			inside := mp.Inside(mr)
			_ = mp.When(inside).Length()
		})
		naive := timeIt(func() {
			inside := np.Inside(nr)
			_ = mp.When(inside).Length()
		})
		fmt.Printf("%8d %14v %14v %9.1fx\n", n, sliced, naive, float64(naive)/float64(sliced))
	}

	fmt.Println("\nQ2 spatio-temporal join (distance → atmin → initial), in-memory relation:")
	fmt.Printf("%8s %14s\n", "flights", "join time")
	for _, n := range sweep([]int{16, 32, 64}) {
		rel := db.NewRelation("planes", db.Schema{
			{Name: "airline", Type: db.TString},
			{Name: "id", Type: db.TString},
			{Name: "flight", Type: db.TMPoint},
		})
		for _, f := range g.Flights(n, 200) {
			rel.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		}
		el := timeIt(func() {
			ts := rel.Scan()
			count := 0
			for i := range ts {
				for j := i + 1; j < len(ts); j++ {
					pa := db.Get[moving.MPoint](rel, ts[i], "flight")
					pb := db.Get[moving.MPoint](rel, ts[j], "flight")
					if first, ok := pa.Distance(pb).AtMin().Initial(); ok && first.Val < 20 {
						count++
					}
				}
			}
		})
		fmt.Printf("%8d %14v\n", n, el)
	}
}

// E6 — the refinement partition is linear in the number of units.
func e6Refinement() {
	fmt.Println("E6: refinement partition cost — linear in n + m")
	fmt.Printf("%8s %14s %12s\n", "n=m", "refine/op", "ns per unit")
	g := workload.New(23)
	for _, n := range sweep([]int{64, 256, 1024, 4096, 16384}) {
		a := g.RandomTrajectory(0, n, 10, 2)
		b := g.RandomTrajectory(0, n, 7, 2)
		ai, bi := a.M.Intervals(), b.M.Intervals()
		el := timeIt(func() { temporal.Refine(ai, bi) })
		fmt.Printf("%8d %14v %12.1f\n", n, el, float64(el.Nanoseconds())/float64(2*n))
	}
}

// E7 — extension: R-tree window queries vs full unit scans.
func e7Window() {
	fmt.Println("E7 (extension): spatio-temporal window query — R-tree vs full scan")
	fmt.Printf("%8s %14s %14s %10s\n", "objects", "indexed/op", "scan/op", "ratio")
	g := workload.New(51)
	rect := geom.Rect{MinX: 400, MinY: 400, MaxX: 500, MaxY: 500}
	for _, objs := range sweep([]int{50, 200, 1000, 4000}) {
		objects := make([]moving.MPoint, objs)
		for i := range objects {
			objects[i] = g.RandomTrajectory(0, 64, 10, 2)
		}
		ix := index.BuildMPointIndex(objects)
		k := 0
		indexed := timeIt(func() {
			iv := temporal.Closed(temporal.Instant(k%500), temporal.Instant(k%500+60))
			ix.Window(rect, iv)
			k++
		})
		k = 0
		scan := timeIt(func() {
			iv := temporal.Closed(temporal.Instant(k%500), temporal.Instant(k%500+60))
			index.ScanWindow(objects, rect, iv)
			k++
		})
		fmt.Printf("%8d %14v %14v %9.1fx\n", objs, indexed, scan, float64(scan)/float64(indexed))
	}
}

// E8 — PR 2: the live ingestion write path and the dynamic index. Two
// measurements: (a) append throughput through the full pipeline
// (validation, WAL, batching, compaction, delta-index insert) by POST
// batch size; (b) window-query latency as a function of the fraction of
// index entries still in the delta buffer (0% = fully rebuilt tree).
// With -out, the results are also written as JSON (BENCH_PR2.json).
func e8Ingest() {
	fmt.Println("E8 (extension): live trajectory ingestion — append throughput and delta-index search")
	type appendRow struct {
		BatchSize    int     `json:"batch_size"`
		Observations int     `json:"observations"`
		ObsPerSec    float64 `json:"obs_per_sec"`
		Compacted    int64   `json:"compacted"`
		Units        int     `json:"units"`
		WALPages     int     `json:"wal_pages"`
	}
	type windowRow struct {
		DeltaFraction float64 `json:"delta_fraction"`
		BaseEntries   int     `json:"base_entries"`
		DeltaEntries  int     `json:"delta_entries"`
		QueryMicros   float64 `json:"query_micros"`
	}
	var results struct {
		Append []appendRow `json:"append_throughput"`
		Window []windowRow `json:"window_search"`
	}

	total := 200000
	if quick {
		total = 20000
	}
	const objects = 64
	g := workload.New(81)
	stream := g.ObservationStream("o", objects, total/objects, 0, 1, 5)
	obsns := make([]ingest.Observation, len(stream))
	for i, w := range stream {
		obsns[i] = ingest.Observation{ObjectID: w.ID, T: float64(w.T), X: w.P.X, Y: w.P.Y}
	}
	fmt.Printf("%10s %12s %14s %12s %10s\n", "batch", "obs", "obs/s", "compacted", "units")
	for _, batchSize := range []int{1, 32, 256} {
		p, err := ingest.Open(ingest.Config{FlushSize: 64, MaxAge: time.Hour, MaxQueued: 1 << 30})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for lo := 0; lo < len(obsns); lo += batchSize {
			hi := min(lo+batchSize, len(obsns))
			if _, err := p.Ingest(obsns[lo:hi]); err != nil {
				panic(err)
			}
		}
		p.Flush()
		el := time.Since(start)
		st := p.Stats()
		p.Close()
		row := appendRow{
			BatchSize:    batchSize,
			Observations: len(obsns),
			ObsPerSec:    float64(len(obsns)) / el.Seconds(),
			Compacted:    st.Compacted,
			Units:        st.Units,
			WALPages:     st.WALPages,
		}
		results.Append = append(results.Append, row)
		fmt.Printf("%10d %12d %14.0f %12d %10d\n", row.BatchSize, row.Observations, row.ObsPerSec, row.Compacted, row.Units)
	}

	fmt.Println("\nwindow query latency by delta-buffer fraction (same data, merge deferred):")
	fmt.Printf("%10s %12s %12s %14s\n", "delta", "base", "delta ents", "query/op")
	searchTotal := 20000
	if quick {
		searchTotal = 6000
	}
	const searchObjects = 100
	sg := workload.New(82)
	sstream := sg.ObservationStream("s", searchObjects, searchTotal/searchObjects, 0, 1, 50)
	sobs := make([]ingest.Observation, len(sstream))
	for i, w := range sstream {
		sobs[i] = ingest.Observation{ObjectID: w.ID, T: float64(w.T), X: w.P.X, Y: w.P.Y}
	}
	for _, frac := range []float64{0, 0.10, 0.50} {
		p, err := ingest.Open(ingest.Config{FlushSize: 1, MaxAge: time.Hour, MaxQueued: 1 << 30, MergeThreshold: 1 << 30})
		if err != nil {
			panic(err)
		}
		split := int(float64(len(sobs)) * (1 - frac))
		push := func(part []ingest.Observation) {
			for lo := 0; lo < len(part); lo += 512 {
				if _, err := p.Ingest(part[lo:min(lo+512, len(part))]); err != nil {
					panic(err)
				}
			}
			p.Flush()
		}
		push(sobs[:split])
		p.Store().ForceMergeIndex()
		push(sobs[split:])
		st := p.Stats()
		k := 0
		el := timeIt(func() {
			x := float64((k * 131) % 900)
			y := float64((k * 57) % 900)
			rect := geom.Rect{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
			p.Window(rect, temporal.Closed(0, 50))
			k++
		})
		p.Close()
		row := windowRow{
			DeltaFraction: frac,
			BaseEntries:   st.BaseEntries,
			DeltaEntries:  st.DeltaEntries,
			QueryMicros:   float64(el.Nanoseconds()) / 1e3,
		}
		results.Window = append(results.Window, row)
		fmt.Printf("%9.0f%% %12d %12d %14v\n", frac*100, row.BaseEntries, row.DeltaEntries, el)
	}

	if out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Printf("write %s: %v\n", out, err)
			return
		}
		fmt.Printf("\nwrote %s\n", out)
	}
}

// e9Get drives one GET straight through the handler stack — no TCP, no
// goroutine handoff — so the measured cost is the server's own: routing,
// typed decoding, canonicalisation, epoch pin, cache, marshalling.
func e9Get(h http.Handler, url string) {
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		panic(fmt.Sprintf("GET %s: %d %s", url, rec.Code, rec.Body.String()))
	}
}

// E9 — PR 6: epoch-pinned reads and the result cache over the HTTP read
// path. Two measurements, both through Handler().ServeHTTP: (a)
// aggregate /v1/window throughput by concurrent reader count while a
// writer ingests and epochs publish continuously — pre-epoch, every
// read serialised on the store mutex, so scaling with readers is the
// tentpole's claim; (b) cold vs warm per-request latency over a frozen
// epoch as the distinct-query working set grows (the hit-ratio sweep).
// With -out6, results are also written as JSON (BENCH_PR6.json).
func e9Cache() {
	fmt.Println("E9 (extension): epoch snapshots + result cache — reader scaling and hit latency")
	type scaleRow struct {
		Readers       int     `json:"readers"`
		Queries       int     `json:"queries"`
		QueriesPerSec float64 `json:"queries_per_sec"`
		SpeedupVs1    float64 `json:"speedup_vs_1"`
		HitRatio      float64 `json:"hit_ratio"`
		Epochs        uint64  `json:"epochs_published"`
	}
	type latencyRow struct {
		DistinctQueries int     `json:"distinct_queries"`
		HitRatio        float64 `json:"hit_ratio"`
		ColdMicros      float64 `json:"cold_micros"`
		WarmMicros      float64 `json:"warm_micros"`
		WarmOverCold    float64 `json:"warm_over_cold"`
	}
	var results struct {
		ReaderScaling []scaleRow   `json:"reader_scaling"`
		HitLatency    []latencyRow `json:"hit_latency"`
	}

	total := 120000
	if quick {
		total = 12000
	}
	const objects = 64
	g := workload.New(91)
	stream := g.ObservationStream("c", objects, total/objects, 0, 1, 5)
	obsns := make([]ingest.Observation, len(stream))
	for i, w := range stream {
		obsns[i] = ingest.Observation{ObjectID: w.ID, T: float64(w.T), X: w.P.X, Y: w.P.Y}
	}
	span := total / objects
	urls := make([]string, 48)
	for i := range urls {
		x, y := float64((i*131)%800), float64((i*57)%800)
		urls[i] = fmt.Sprintf("/v1/window?x1=%g&y1=%g&x2=%g&y2=%g&t1=0&t2=%d", x, y, x+150, y+150, span)
	}

	fmt.Println("(a) /v1/window throughput by reader count, writer ingesting concurrently:")
	fmt.Printf("%8s %10s %12s %10s %10s %8s\n", "readers", "queries", "queries/s", "speedup", "hit ratio", "epochs")
	// Each configuration runs its readers for a fixed wall-clock window
	// against a writer that never stops extending the trajectories (so
	// epochs publish, and the cache re-fills, for the whole measurement).
	// The epoch publication rate — and with it the cold recompute work —
	// is a property of the writer, not of the reader count, so aggregate
	// completed queries must grow with readers unless reads serialise
	// against the flushes. Best of two passes damps scheduler noise.
	dur := 500 * time.Millisecond
	if quick {
		dur = 150 * time.Millisecond
	}
	var base float64
	for _, readers := range []int{1, 2, 4, 8} {
		p, err := ingest.Open(ingest.Config{FlushSize: 32, MaxAge: time.Hour, MaxQueued: 1 << 30})
		if err != nil {
			panic(err)
		}
		for lo := 0; lo < len(obsns); lo += 512 {
			if _, err := p.Ingest(obsns[lo:min(lo+512, len(obsns))]); err != nil {
				panic(err)
			}
		}
		p.Flush()
		mem := cache.NewMemory(cache.DefaultBudget, cache.DefaultShards, nil)
		s, err := server.New(server.Config{Ingest: p, Cache: mem})
		if err != nil {
			panic(err)
		}
		h := s.Handler()
		stop := make(chan struct{})
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			batch := make([]ingest.Observation, objects)
			for t := float64(span) + 1; ; t++ {
				select {
				case <-stop:
					return
				default:
				}
				for o := range batch {
					batch[o] = ingest.Observation{
						ObjectID: fmt.Sprintf("c%d", o),
						T:        t,
						X:        float64((int(t)*13 + o*131) % 950),
						Y:        float64((int(t)*29 + o*57) % 950),
					}
				}
				if _, err := p.Ingest(batch); err != nil {
					panic(err)
				}
			}
		}()
		var row scaleRow
		for pass := 0; pass < 2; pass++ {
			counts := make([]int64, readers)
			deadline := time.Now().Add(dur)
			start := time.Now()
			var rwg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				// moguard: bounded the loop condition is a wall-clock deadline dur from start
				go func(r int) {
					defer rwg.Done()
					for i := 0; time.Now().Before(deadline); i++ {
						e9Get(h, urls[(i*7+r*13)%len(urls)])
						counts[r]++
					}
				}(r)
			}
			rwg.Wait()
			el := time.Since(start)
			var total int64
			for _, c := range counts {
				total += c
			}
			if qps := float64(total) / el.Seconds(); pass == 0 || qps > row.QueriesPerSec {
				row.Queries = int(total)
				row.QueriesPerSec = qps
			}
		}
		close(stop)
		wwg.Wait()
		st := mem.Stats()
		row.Readers = readers
		row.HitRatio = float64(st.Hits) / float64(max(st.Hits+st.Misses, 1))
		row.Epochs = p.Epoch().Seq()
		if base == 0 {
			base = row.QueriesPerSec
		}
		row.SpeedupVs1 = row.QueriesPerSec / base
		results.ReaderScaling = append(results.ReaderScaling, row)
		p.Close()
		fmt.Printf("%8d %10d %12.0f %9.2fx %9.2f %8d\n", row.Readers, row.Queries, row.QueriesPerSec, row.SpeedupVs1, row.HitRatio, row.Epochs)
	}

	fmt.Println("\n(b) cold vs warm latency on a frozen epoch by distinct-query working set:")
	fmt.Printf("%10s %10s %12s %12s %12s\n", "distinct", "hit ratio", "cold/op", "warm/op", "warm/cold")
	p, err := ingest.Open(ingest.Config{FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 1 << 30})
	if err != nil {
		panic(err)
	}
	for lo := 0; lo < len(obsns); lo += 512 {
		if _, err := p.Ingest(obsns[lo:min(lo+512, len(obsns))]); err != nil {
			panic(err)
		}
	}
	p.Flush()
	warmOps := 4000
	if quick {
		warmOps = 800
	}
	for _, distinct := range []int{1, 16, 48} {
		// A fresh cache per row so the hit counters and the cold pass are
		// this row's alone; the pipeline (and so the epoch) is shared and
		// frozen.
		mem := cache.NewMemory(cache.DefaultBudget, cache.DefaultShards, nil)
		s, err := server.New(server.Config{Ingest: p, Cache: mem})
		if err != nil {
			panic(err)
		}
		h := s.Handler()
		set := urls[:distinct]
		coldStart := time.Now()
		for _, u := range set {
			e9Get(h, u)
		}
		cold := time.Since(coldStart) / time.Duration(distinct)
		warmStart := time.Now()
		for i := 0; i < warmOps; i++ {
			e9Get(h, set[i%len(set)])
		}
		warm := time.Since(warmStart) / time.Duration(warmOps)
		st := mem.Stats()
		row := latencyRow{
			DistinctQueries: distinct,
			HitRatio:        float64(st.Hits) / float64(max(st.Hits+st.Misses, 1)),
			ColdMicros:      float64(cold.Nanoseconds()) / 1e3,
			WarmMicros:      float64(warm.Nanoseconds()) / 1e3,
			WarmOverCold:    float64(warm) / float64(cold),
		}
		results.HitLatency = append(results.HitLatency, row)
		fmt.Printf("%10d %10.2f %12v %12v %12.3f\n", row.DistinctQueries, row.HitRatio, cold, warm, row.WarmOverCold)
	}
	p.Close()

	if out6 != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(out6, append(data, '\n'), 0o644); err != nil {
			fmt.Printf("write %s: %v\n", out6, err)
			return
		}
		fmt.Printf("\nwrote %s\n", out6)
	}
}
