package main

import "testing"

// TestParseBenchOutput pins the -benchmem transcript parse on a fixed
// `go test -bench -benchmem` capture: result lines with and without
// the memory columns, the -<procs> suffix strip, and the noise lines
// (goos/pkg/PASS) the parser must skip.
func TestParseBenchOutput(t *testing.T) {
	transcript := `goos: linux
goarch: amd64
pkg: movingdb/internal/ingest
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEpochWindow    	   20120	     61736 ns/op	    1864 B/op	       9 allocs/op
BenchmarkEpochAtInstant-8 	  130597	      8984 ns/op	    3456 B/op	       1 allocs/op
BenchmarkNoMemColumns-8 	  130597	      8984 ns/op
BenchmarkOdd-Name-4     	     100	    123.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	movingdb/internal/ingest	6.512s
`
	got := parseBenchOutput(transcript)
	want := []benchStat{
		{Name: "BenchmarkEpochWindow", NsPerOp: 61736, BytesPerOp: 1864, AllocsPerOp: 9},
		{Name: "BenchmarkEpochAtInstant", NsPerOp: 8984, BytesPerOp: 3456, AllocsPerOp: 1},
		{Name: "BenchmarkOdd-Name", NsPerOp: 123.5, BytesPerOp: 0, AllocsPerOp: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d stats, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stat %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkOdd-Name":   "BenchmarkOdd-Name",
		"BenchmarkOdd-Name-4": "BenchmarkOdd-Name",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
