// motables regenerates the type system tables of the paper from the
// typesys registry: Table 1 (abstract type system), Table 2 (discrete
// type system) and Table 3 (abstract↔discrete correspondence), plus the
// operation signatures with temporal lifting applied.
package main

import (
	"flag"
	"fmt"

	"movingdb/internal/typesys"
)

func main() {
	ops := flag.Bool("ops", false, "also list operation signatures (with lifting)")
	flag.Parse()

	fmt.Println("Table 1: Signature describing the abstract type system")
	fmt.Println("-------------------------------------------------------")
	fmt.Print(typesys.Abstract().FormatTable())
	fmt.Printf("(%d generated types)\n\n", len(typesys.Abstract().Types()))

	fmt.Println("Table 2: Signature describing the discrete type system")
	fmt.Println("-------------------------------------------------------")
	fmt.Print(typesys.Discrete().FormatTable())
	fmt.Printf("(%d generated types)\n\n", len(typesys.Discrete().Types()))

	fmt.Println("Table 3: Correspondence between abstract and discrete temporal types")
	fmt.Println("---------------------------------------------------------------------")
	fmt.Print(typesys.FormatTable3())

	if *ops {
		fmt.Println("\nOperations (registered signatures, lifting applied)")
		fmt.Println("----------------------------------------------------")
		for _, op := range typesys.StandardOps().Ops() {
			fmt.Printf("%s\n", op.Name)
			for _, sig := range op.Sigs {
				fmt.Printf("    %s\n", sig)
			}
		}
	}
}
