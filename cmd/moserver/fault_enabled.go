//go:build faultinject

package main

import (
	"log"

	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/obs"
	"movingdb/internal/server"
	"movingdb/internal/storage"
)

// buildWALMedium returns the WAL medium for the ingest pipeline. This
// is the -tags=faultinject variant: a non-empty -failpoints spec wraps
// the page store in the deterministic fault-injection layer, seeded
// with the workload seed so probabilistic fault schedules replay
// identically run to run. One injector backs every site: the wal.*
// sites trip inside the wrapping fault.Store, while the hook sites
// (epoch.publish, live.notify, sse.write) are armed into their
// packages' build-tag-gated failpoints. Trips are counted per site in
// the metrics registry (the "faults" section of /v1/metrics).
func buildWALMedium(failpoints string, seed int64, metrics *obs.Metrics, logger *log.Logger) (ingest.PageIO, error) {
	if failpoints == "" {
		return nil, nil
	}
	specs, err := fault.ParseSpecs(failpoints)
	if err != nil {
		return nil, err
	}
	in := fault.New(seed)
	in.OnTrip(metrics.RecordFaultTrip)
	for site, spec := range specs {
		in.Set(site, spec)
		logger.Printf("failpoint armed: %s=%s", site, spec.Mode)
	}
	ingest.SetFailpointInjector(in)
	live.SetFailpointInjector(in)
	server.SetFailpointInjector(in)
	return fault.NewStore(in, "wal", storage.NewPageStore()), nil
}
