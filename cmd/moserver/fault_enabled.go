//go:build faultinject

package main

import (
	"log"

	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/storage"
)

// buildWALMedium returns the WAL medium for the ingest pipeline. This
// is the -tags=faultinject variant: a non-empty -failpoints spec wraps
// the page store in the deterministic fault-injection layer, seeded
// with the workload seed so probabilistic fault schedules replay
// identically run to run.
func buildWALMedium(failpoints string, seed int64, logger *log.Logger) (ingest.PageIO, error) {
	if failpoints == "" {
		return nil, nil
	}
	specs, err := fault.ParseSpecs(failpoints)
	if err != nil {
		return nil, err
	}
	in := fault.New(seed)
	for site, spec := range specs {
		in.Set(site, spec)
		logger.Printf("failpoint armed: %s=%s", site, spec.Mode)
	}
	return fault.NewStore(in, "wal", storage.NewPageStore()), nil
}
