// moserver serves a generated moving objects database over HTTP with
// the v1 API:
//
//	GET /v1/objects?limit=&offset=            tracked objects (paginated)
//	GET /v1/atinstant?t=120                   positions at an instant
//	GET /v1/window?x1=&y1=&x2=&y2=&t1=&t2=    indexed window query (paginated)
//	GET /v1/query?q=SELECT+...&timeout_ms=    the Section 2 SQL dialect
//	GET /v1/metrics                           request/operator metrics
//	GET /v1/healthz                           liveness
//	POST /v1/ingest                           live observations (with -ingest)
//
// With -ingest, the server runs the live trajectory ingestion pipeline:
// POST /v1/ingest enqueues observation batches (202 acknowledged, 429
// under backpressure), acknowledged batches are write-ahead logged, and
// the object-reading routes answer from the live store.
//
// Read routes answer from immutable epoch snapshots behind a result
// cache keyed on (route, canonical query, epoch): responses carry a
// strong ETag and X-MO-Epoch, If-None-Match revalidates to 304, and
// -cache-bytes / -cache-shards size the cache (negative bytes disable
// it). Legacy unversioned routes remain as deprecated aliases carrying
// Deprecation and Sunset headers. The process shuts down gracefully on
// SIGINT/SIGTERM.
//
// Example:
//
//	moserver -addr :8080 &
//	curl 'localhost:8080/v1/query?q=SELECT+airline,id+FROM+planes+LIMIT+3'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/server"
	"movingdb/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	n := flag.Int("n", 50, "number of flights")
	storms := flag.Int("storms", 2, "number of storms")
	seed := flag.Int64("seed", 2000, "workload seed")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "default per-request evaluation deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "upper bound for ?timeout_ms overrides")
	readTimeout := flag.Duration("read-timeout", 5*time.Second, "HTTP read timeout")
	writeTimeout := flag.Duration("write-timeout", 65*time.Second, "HTTP write timeout (must exceed max-timeout)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle timeout")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain deadline")
	maxQueryLen := flag.Int("max-query-len", 8192, "maximum ?q= length in bytes")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body in bytes")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 = 32 MiB default, negative disables)")
	cacheShards := flag.Int("cache-shards", 0, "result cache shard count, rounded up to a power of two (0 = default)")
	liveIngest := flag.Bool("ingest", false, "enable the live ingestion pipeline (POST /v1/ingest)")
	flushSize := flag.Int("ingest-flush-size", 32, "observations per object buffered before a flush")
	flushAge := flag.Duration("ingest-flush-age", 100*time.Millisecond, "maximum buffering delay before a flush")
	maxQueued := flag.Int("ingest-max-queued", 65536, "queued observations before backpressure (429)")
	ckptPages := flag.Int("ingest-checkpoint-pages", 256, "WAL pages between checkpoints (-1 disables)")
	retries := flag.Int("ingest-retries", 4, "WAL append attempts before a batch is dead-lettered")
	degradedAfter := flag.Int("ingest-degraded-after", 3, "consecutive failed batches before degraded mode (503)")
	probeEvery := flag.Duration("ingest-probe-interval", time.Second, "store probe interval while degraded")
	sseHeartbeat := flag.Duration("sse-heartbeat", 15*time.Second, "SSE event-stream keepalive interval")
	liveBuffer := flag.Int("live-buffer", 256, "per-subscriber event buffer (oldest events drop when full)")
	failpoints := flag.String("failpoints", "", "fault injection spec, e.g. 'wal.put=error:3', or 'list' to print the site catalog (arming requires -tags=faultinject build)")
	flag.Parse()

	logger := log.New(os.Stderr, "moserver ", log.LstdFlags)

	if *failpoints == "list" {
		// The catalog is compiled into every build variant, so operators can
		// enumerate sites without a faultinject binary.
		for _, site := range fault.Sites() {
			fmt.Printf("%-14s [%s]  %s\n", site.Name, site.Layer, site.Desc)
		}
		return
	}

	g := workload.New(*seed)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(*n, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	stormRel := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	names := []string{"Klaus", "Lothar", "Kyrill", "Xynthia"}
	for i := 0; i < *storms; i++ {
		stormRel.MustInsert(db.Tuple{names[i%len(names)], g.Storm(0, 40, 10, 6)})
	}

	// One shared registry so /v1/metrics carries both request and ingest
	// statistics.
	metrics := obs.New(0)
	cfg := server.Config{
		Catalog:            db.Catalog{"planes": planes, "storms": stormRel},
		ObjectIDs:          ids,
		Objects:            objects,
		QueryTimeout:       *queryTimeout,
		MaxTimeout:         *maxTimeout,
		MaxQueryLen:        *maxQueryLen,
		MaxBodyBytes:       *maxBody,
		SlowQueryThreshold: *slowQuery,
		Logger:             logger,
		Metrics:            metrics,
		CacheBytes:         *cacheBytes,
		CacheShards:        *cacheShards,
	}
	var pipe *ingest.Pipeline
	var reg *live.Registry
	if *liveIngest {
		walIO, err := buildWALMedium(*failpoints, *seed, metrics, logger)
		if err != nil {
			logger.Fatal(err)
		}
		// The standing-query registry rides the epoch publish hook: every
		// flush that advances the epoch notifies it, and subscribers get
		// edge-triggered enter/leave events over SSE.
		reg = live.NewRegistry(live.Config{BufferCap: *liveBuffer, Metrics: metrics})
		pipe, err = ingest.Open(ingest.Config{
			SeedIDs:           ids,
			Seeds:             objects,
			FlushSize:         *flushSize,
			MaxAge:            *flushAge,
			MaxQueued:         *maxQueued,
			LogIO:             walIO,
			CheckpointPages:   *ckptPages,
			RetryAttempts:     *retries,
			DegradedThreshold: *degradedAfter,
			ProbeInterval:     *probeEvery,
			Metrics:           metrics,
			OnPublish:         reg.Notify,
		})
		if err != nil {
			logger.Fatal(err)
		}
		cfg.Ingest = pipe
		cfg.Live = reg
		cfg.SSEHeartbeat = *sseHeartbeat
	} else if *failpoints != "" {
		logger.Fatal("-failpoints requires -ingest")
	}
	s, err := server.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		ErrorLog:          logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		mode := "read-only"
		if *liveIngest {
			mode = "live ingest (POST /v1/ingest)"
		}
		fmt.Printf("moving objects DB: %d flights, %d storms, %s\nlistening on http://%s (v1 API; metrics at /v1/metrics)\n", *n, *storms, mode, *addr)
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("signal received; draining for up to %v", *shutdownTimeout)
		if reg != nil {
			// End every SSE stream first — Shutdown waits for in-flight
			// handlers, and event streams only return when their
			// subscription closes (or the client hangs up).
			reg.Close()
		}
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}
	if reg != nil {
		reg.Close()
	}
	if pipe != nil {
		// After the HTTP drain no new batches can arrive; Close flushes
		// every buffered observation into the store so acknowledged
		// writes are applied, not just logged, before the process exits.
		pipe.Close()
		st := pipe.Stats()
		logger.Printf("ingest pipeline drained: %d observations applied, wal seq %d", st.Applied, st.WALSeq)
	}
}
