// moserver serves a generated moving objects database over HTTP:
//
//	GET /objects                      tracked objects
//	GET /atinstant?t=120              positions at an instant
//	GET /window?x1=&y1=&x2=&y2=&t1=&t2=   indexed window query
//	GET /query?q=SELECT+...           the Section 2 SQL dialect
//
// Example:
//
//	moserver -addr :8080 &
//	curl 'localhost:8080/query?q=SELECT+airline,id+FROM+planes+LIMIT+3'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/server"
	"movingdb/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	n := flag.Int("n", 50, "number of flights")
	storms := flag.Int("storms", 2, "number of storms")
	seed := flag.Int64("seed", 2000, "workload seed")
	flag.Parse()

	g := workload.New(*seed)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(*n, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	stormRel := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	names := []string{"Klaus", "Lothar", "Kyrill", "Xynthia"}
	for i := 0; i < *storms; i++ {
		stormRel.MustInsert(db.Tuple{names[i%len(names)], g.Storm(0, 40, 10, 6)})
	}

	s, err := server.New(db.Catalog{"planes": planes, "storms": stormRel}, ids, objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moving objects DB: %d flights, %d storms\nlistening on http://%s\n", *n, *storms, *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
