//go:build !faultinject

package main

import (
	"errors"
	"log"

	"movingdb/internal/ingest"
	"movingdb/internal/obs"
)

// buildWALMedium returns the WAL medium for the ingest pipeline. In
// production builds there is no fault-injection layer: a non-empty
// -failpoints spec is a configuration error (failing loudly beats
// silently ignoring an operator who thinks faults are being injected),
// and nil selects the pipeline's default in-memory page store.
func buildWALMedium(failpoints string, _ int64, _ *obs.Metrics, _ *log.Logger) (ingest.PageIO, error) {
	if failpoints != "" {
		return nil, errors.New("-failpoints requires a build with -tags=faultinject")
	}
	return nil, nil
}
