// moquery executes queries in the paper's Section 2 SQL dialect against
// a generated moving objects database: a planes relation (airline, id,
// flight: mpoint) and a storms relation (name, extent: mregion). The
// relations take the full storage round trip — encoded with the
// Section 4 data structures into a page store and decoded on scan —
// before query evaluation, and page I/O is reported.
//
// Run with -q to execute an arbitrary query, e.g.:
//
//	moquery -q "SELECT id FROM planes WHERE sometimes(inside(flight, 0))"
//
// Without -q both queries of Section 2 are run.
package main

import (
	"flag"
	"fmt"
	"os"

	"movingdb/internal/db"
	"movingdb/internal/storage"
	"movingdb/internal/workload"
)

func main() {
	n := flag.Int("n", 40, "number of flights")
	storms := flag.Int("storms", 2, "number of storms")
	seed := flag.Int64("seed", 2000, "workload seed")
	q := flag.String("q", "", "query to run (default: the two Section 2 queries)")
	flag.Parse()

	cat, ps := buildCatalog(*n, *storms, *seed)
	fmt.Printf("catalog: planes (%d tuples), storms (%d tuples); %d LOB pages, %d page reads during load\n\n",
		cat["planes"].Len(), cat["storms"].Len(), ps.NumPages(), ps.PagesRead)

	queries := []string{
		// Query 1 of Section 2.
		`SELECT airline, id, length(trajectory(flight)) AS len
		 FROM planes
		 WHERE airline = 'Lufthansa' AND length(trajectory(flight)) > 500`,
		// Query 2 of Section 2 (spatio-temporal join).
		`SELECT p.airline, p.id, q.airline, q.id,
		        val(initial(atmin(distance(p.flight, q.flight)))) AS mindist
		 FROM planes p, planes q
		 WHERE p.id < q.id
		   AND val(initial(atmin(distance(p.flight, q.flight)))) < 20`,
		// A storm exposure report on top.
		`SELECT s.name, p.id, duration(inside(p.flight, s.extent)) AS exposure
		 FROM planes p, storms s
		 WHERE sometimes(inside(p.flight, s.extent))`,
	}
	if *q != "" {
		queries = []string{*q}
	}
	for _, sql := range queries {
		fmt.Println(sql)
		res, err := db.Query(cat, sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		printRelation(res)
		fmt.Println()
	}
}

func buildCatalog(n, storms int, seed int64) (db.Catalog, *storage.PageStore) {
	g := workload.New(seed)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	for _, f := range g.Flights(n, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
	}
	stormRel := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	names := []string{"Klaus", "Lothar", "Kyrill", "Xynthia"}
	for i := 0; i < storms; i++ {
		stormRel.MustInsert(db.Tuple{names[i%len(names)], g.Storm(0, 40, 10, 6)})
	}

	// The full data blade round trip: encode into the page store, decode
	// on scan.
	ps := storage.NewPageStore()
	cat := db.Catalog{}
	for name, rel := range map[string]*db.Relation{"planes": planes, "storms": stormRel} {
		stored, err := db.StoreRelation(rel, ps)
		if err != nil {
			panic(err)
		}
		loaded, err := stored.Load()
		if err != nil {
			panic(err)
		}
		loaded.Name = name
		cat[name] = loaded
	}
	return cat, ps
}

func printRelation(r *db.Relation) {
	fmt.Printf("-> %v\n", r.Schema)
	for _, t := range r.Scan() {
		fmt.Print("   ")
		for i, v := range t {
			if i > 0 {
				fmt.Print(" | ")
			}
			switch x := v.(type) {
			case float64:
				fmt.Printf("%.2f", x)
			default:
				fmt.Printf("%v", x)
			}
		}
		fmt.Println()
	}
	fmt.Printf("   (%d rows)\n", r.Len())
}
