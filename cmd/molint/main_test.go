package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"movingdb/internal/lint"
)

// runMolint invokes the command's run function capturing both streams.
func runMolint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFixturesExitOne runs only the concurrency-discipline suite over
// its golden fixtures: every check must produce at least one finding
// and the process must signal failure.
func TestFixturesExitOne(t *testing.T) {
	code, stdout, stderr := runMolint(t,
		"-checks=guarded-by,atomic-mix,goroutine-exit",
		"-format=json",
		"./internal/lint/testdata/src/guardedby",
		"./internal/lint/testdata/src/atomicmix",
		"./internal/lint/testdata/src/goroutineexit",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-format=json output does not round-trip: %v\noutput: %s", err, stdout)
	}
	if rep.Summary.Findings != len(rep.Findings) || len(rep.Findings) == 0 {
		t.Fatalf("summary.findings = %d, len(findings) = %d; want equal and > 0",
			rep.Summary.Findings, len(rep.Findings))
	}
	for _, check := range []string{"guarded-by", "atomic-mix", "goroutine-exit"} {
		if rep.Summary.Checks[check].Findings == 0 {
			t.Errorf("check %s produced no findings on its fixture", check)
		}
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Message == "" {
			t.Errorf("incomplete finding in JSON report: %+v", f)
		}
		if strings.HasPrefix(f.File, "/") {
			t.Errorf("finding path %s is absolute; want module-root-relative", f.File)
		}
	}
}

// TestConcurrentPackagesClean asserts the annotation debt of the five
// concurrent packages is zero: the new checks alone report nothing.
func TestConcurrentPackagesClean(t *testing.T) {
	code, stdout, stderr := runMolint(t,
		"-checks=guarded-by,atomic-mix,goroutine-exit",
		"./internal/obs", "./internal/ingest", "./internal/index",
		"./internal/fault", "./internal/server",
	)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestGitHubFormat checks the workflow-command rendering CI consumes.
func TestGitHubFormat(t *testing.T) {
	code, stdout, _ := runMolint(t,
		"-checks=atomic-mix", "-format=github",
		"./internal/lint/testdata/src/atomicmix",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "::error file=internal/lint/testdata/src/atomicmix/atomicmix.go,line=") {
		t.Errorf("github format missing ::error annotation:\n%s", stdout)
	}
	if !strings.Contains(stdout, "::notice::molint:") {
		t.Errorf("github format missing summary notice:\n%s", stdout)
	}
}

// TestBadFlags covers the operational-error exit code.
func TestBadFlags(t *testing.T) {
	if code, _, _ := runMolint(t, "-format=yaml", "./internal/lint/testdata/src/atomicmix"); code != 2 {
		t.Errorf("unknown format: exit = %d, want 2", code)
	}
	if code, _, _ := runMolint(t, "-checks=no-such-check", "./internal/lint/testdata/src/atomicmix"); code != 2 {
		t.Errorf("unknown check: exit = %d, want 2", code)
	}
}
