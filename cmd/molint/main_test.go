package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"movingdb/internal/lint"
)

// runMolint invokes the command's run function capturing both streams.
func runMolint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFixturesExitOne runs only the concurrency-discipline suite over
// its golden fixtures: every check must produce at least one finding
// and the process must signal failure.
func TestFixturesExitOne(t *testing.T) {
	code, stdout, stderr := runMolint(t,
		"-checks=guarded-by,atomic-mix,goroutine-exit",
		"-format=json",
		"./internal/lint/testdata/src/guardedby",
		"./internal/lint/testdata/src/atomicmix",
		"./internal/lint/testdata/src/goroutineexit",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-format=json output does not round-trip: %v\noutput: %s", err, stdout)
	}
	if rep.Summary.Findings != len(rep.Findings) || len(rep.Findings) == 0 {
		t.Fatalf("summary.findings = %d, len(findings) = %d; want equal and > 0",
			rep.Summary.Findings, len(rep.Findings))
	}
	for _, check := range []string{"guarded-by", "atomic-mix", "goroutine-exit"} {
		if rep.Summary.Checks[check].Findings == 0 {
			t.Errorf("check %s produced no findings on its fixture", check)
		}
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Message == "" {
			t.Errorf("incomplete finding in JSON report: %+v", f)
		}
		if strings.HasPrefix(f.File, "/") {
			t.Errorf("finding path %s is absolute; want module-root-relative", f.File)
		}
	}
}

// TestConcurrentPackagesClean asserts the annotation debt of the five
// concurrent packages is zero: the new checks alone report nothing.
func TestConcurrentPackagesClean(t *testing.T) {
	code, stdout, stderr := runMolint(t,
		"-checks=guarded-by,atomic-mix,goroutine-exit",
		"./internal/obs", "./internal/ingest", "./internal/index",
		"./internal/fault", "./internal/server",
	)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestGitHubFormat checks the workflow-command rendering CI consumes.
func TestGitHubFormat(t *testing.T) {
	code, stdout, _ := runMolint(t,
		"-checks=atomic-mix", "-format=github",
		"./internal/lint/testdata/src/atomicmix",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "::error file=internal/lint/testdata/src/atomicmix/atomicmix.go,line=") {
		t.Errorf("github format missing ::error annotation:\n%s", stdout)
	}
	if !strings.Contains(stdout, "::notice::molint:") {
		t.Errorf("github format missing summary notice:\n%s", stdout)
	}
}

// TestSARIFFormat checks the SARIF 2.1.0 rendering consumed by
// github/codeql-action/upload-sarif: a valid document with the rule
// catalog, error-level results, and root-relative forward-slash URIs.
func TestSARIFFormat(t *testing.T) {
	code, stdout, stderr := runMolint(t,
		"-checks=atomic-mix", "-format=sarif",
		"./internal/lint/testdata/src/atomicmix",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-format=sarif output does not parse: %v\noutput: %s", err, stdout)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version = %q, runs = %d; want 2.1.0 and 1", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "molint" || len(run.Tool.Driver.Rules) == 0 {
		t.Errorf("driver = %q with %d rules; want molint with the check catalog",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) == 0 {
		t.Fatal("sarif run has no results on a failing fixture")
	}
	for _, r := range run.Results {
		if r.RuleID != "atomic-mix" || r.Level != "error" || r.Message.Text == "" {
			t.Errorf("incomplete result: %+v", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if uri := loc.ArtifactLocation.URI; strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("uri %q is not root-relative with forward slashes", uri)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("result missing startLine: %+v", r)
		}
	}
}

// TestSuggestMode asserts -suggest prints a ready-to-paste moguard
// annotation under the unannotated-field finding, and that the same
// suggestion rides the JSON report.
func TestSuggestMode(t *testing.T) {
	code, stdout, _ := runMolint(t,
		"-checks=guarded-by", "-suggest",
		"./internal/lint/testdata/src/guardedby",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "\tsuggest: // moguard: ") {
		t.Errorf("-suggest output missing a ready-to-paste annotation:\n%s", stdout)
	}
	_, jsonOut, _ := runMolint(t,
		"-checks=guarded-by", "-format=json",
		"./internal/lint/testdata/src/guardedby",
	)
	var rep lint.Report
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("json: %v", err)
	}
	found := false
	for _, f := range rep.Findings {
		if strings.HasPrefix(f.Suggestion, "// moguard: ") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding carries a suggestion in the JSON report:\n%s", jsonOut)
	}
}

// TestStaleSuppressions asserts the flag surfaces the fixture's
// well-formed directive that suppresses nothing, and that the default
// run leaves it alone (stale detection is opt-in).
func TestStaleSuppressions(t *testing.T) {
	_, stdout, _ := runMolint(t,
		"-stale-suppressions",
		"./internal/lint/testdata/src/suppress",
	)
	if !strings.Contains(stdout, "molint:ignore ctx-loop suppresses nothing") {
		t.Errorf("stale directive not reported under -stale-suppressions:\n%s", stdout)
	}
	if !strings.Contains(stdout, "moguard: allocok suppresses nothing") {
		t.Errorf("stale allocok directive not reported under -stale-suppressions:\n%s", stdout)
	}
	_, stdout, _ = runMolint(t, "./internal/lint/testdata/src/suppress")
	if strings.Contains(stdout, "suppresses nothing") {
		t.Errorf("stale finding reported without the flag:\n%s", stdout)
	}
}

// TestEscapesCLI runs the compiler cross-check end to end on the
// alloc-hot fixture: -escapes shells out to go build -gcflags=-m=2,
// joins the diagnostics positionally, and every alloc-hot finding
// carries exactly one of the two tier markers — with both tiers
// represented (fmt's interface arguments and the returned closure
// escape; the never-escaping composite literal is static-only).
func TestEscapesCLI(t *testing.T) {
	code, stdout, stderr := runMolint(t,
		"-escapes", "-checks=alloc-hot",
		"./internal/lint/testdata/src/allochot",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	var findings, markers int
	for _, line := range strings.Split(stdout, "\n") {
		if !strings.Contains(line, "[alloc-hot]") {
			continue
		}
		findings++
		if strings.Contains(line, "[confirmed by compiler:") || strings.Contains(line, "[static-only:") {
			markers++
		}
	}
	if findings == 0 || markers != findings {
		t.Fatalf("%d of %d alloc-hot findings carry a tier marker:\n%s", markers, findings, stdout)
	}
	if !strings.Contains(stdout, "[confirmed by compiler:") {
		t.Errorf("no finding confirmed by the compiler:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[static-only:") {
		t.Errorf("no static-only finding:\n%s", stdout)
	}
}

// TestJSONReportDeterministic runs the full suite over the whole module
// twice and requires byte-identical JSON: map-order leaks, pointer
// formatting, or clock reads anywhere in the pipeline would show up as
// a diff. This is the acceptance gate for reproducible CI output.
func TestJSONReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-module analysis runs")
	}
	code1, out1, err1 := runMolint(t, "-format=json", "./...")
	code2, out2, err2 := runMolint(t, "-format=json", "./...")
	if code1 != code2 {
		t.Fatalf("exit codes differ: %d vs %d (stderr: %s / %s)", code1, code2, err1, err2)
	}
	if out1 != out2 {
		t.Fatalf("JSON output differs between identical runs:\nrun1:\n%s\nrun2:\n%s", out1, out2)
	}
	if !strings.Contains(out1, "\"findings\"") {
		t.Fatalf("unexpected JSON shape:\n%s", out1)
	}
}

// TestBadFlags covers the operational-error exit code.
func TestBadFlags(t *testing.T) {
	if code, _, _ := runMolint(t, "-format=yaml", "./internal/lint/testdata/src/atomicmix"); code != 2 {
		t.Errorf("unknown format: exit = %d, want 2", code)
	}
	if code, _, _ := runMolint(t, "-checks=no-such-check", "./internal/lint/testdata/src/atomicmix"); code != 2 {
		t.Errorf("unknown check: exit = %d, want 2", code)
	}
}
