// Command molint runs the repository's static-analysis suite: eleven
// checks that enforce the paper's representation invariants, the
// repo's determinism and cancellation conventions, and the moguard
// concurrency discipline — including the interprocedural lock-order,
// publish-immutable, and alias-retain checks built on the shared call
// graph (see DESIGN.md §10 for the catalog). It uses only the standard
// library — packages are typechecked from source — so go.mod gains no
// dependencies.
//
// Usage:
//
//	molint [-tags=t1,t2] [-checks=id1,id2] [-format=text|json|github|sarif]
//	       [-summary] [-suggest] [-stale-suppressions] [-timings] [patterns...]
//
// Patterns default to ./... relative to the module root. Without
// -tags, every package is analyzed in its default build configuration
// and packages with tag-gated files are re-analyzed under faultinject
// and debugcheck, so every build variant is covered by the same run.
// -format=json emits one JSON document (findings + per-check summary);
// -format=github emits GitHub Actions ::error workflow commands that
// become inline PR annotations; -format=sarif emits a SARIF 2.1.0
// document for github/codeql-action/upload-sarif; -summary appends the
// per-check finding/suppression table to the text output; -suggest
// prints the ready-to-paste annotation under findings that carry one;
// -stale-suppressions reports molint:ignore directives that no longer
// suppress anything; -timings adds per-check wall time to -summary and
// the JSON summary (off by default so JSON output stays byte-stable
// across runs). Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"movingdb/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// emit writes a diagnostic line; molint's output is best-effort by
// design, its contract with CI is the exit code.
func emit(w io.Writer, format string, args ...any) {
	//molint:ignore err-drop terminal write failures cannot be reported anywhere better
	fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("molint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tagsFlag := fs.String("tags", "", "comma-separated build tags; default analyzes the default and faultinject variants")
	checksFlag := fs.String("checks", "", "comma-separated check IDs to run (default: all)")
	formatFlag := fs.String("format", "text", "output format: text, json, github, or sarif")
	summaryFlag := fs.Bool("summary", false, "append the per-check finding/suppression table (text format)")
	suggestFlag := fs.Bool("suggest", false, "print the ready-to-paste annotation under findings that carry one (text format)")
	staleFlag := fs.Bool("stale-suppressions", false, "report molint:ignore directives that no longer suppress anything")
	escapesFlag := fs.Bool("escapes", false, "cross-check alloc-hot findings against `go build -gcflags=-m=2` escape analysis")
	timingsFlag := fs.Bool("timings", false, "add per-check wall time to -summary and the JSON summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *formatFlag {
	case "text", "json", "github", "sarif":
	default:
		emit(stderr, "molint: unknown format %q (want text, json, github, or sarif)\n", *formatFlag)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		emit(stderr, "molint: %v\n", err)
		return 2
	}

	variants := [][]string{nil, {"faultinject"}, {"debugcheck"}}
	if *tagsFlag != "" {
		variants = [][]string{strings.Split(*tagsFlag, ",")}
	}

	var pkgs []*lint.Package
	var module string
	for vi, tags := range variants {
		loader, err := lint.NewLoader(root, tags)
		if err != nil {
			emit(stderr, "molint: %v\n", err)
			return 2
		}
		module = loader.Module
		dirs, err := lint.ExpandPatterns(root, patterns)
		if err != nil {
			emit(stderr, "molint: %v\n", err)
			return 2
		}
		for _, dir := range dirs {
			// Non-default variants only change packages that gate
			// files on one of the variant's tags; skip the rest.
			if vi > 0 && !lint.DirUsesTags(dir, tags) {
				continue
			}
			ps, err := loader.LoadDir(dir)
			if err != nil {
				emit(stderr, "molint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, ps...)
		}
	}

	checks := lint.Checks(lint.DefaultConfig(module))
	if *checksFlag != "" {
		enabled := map[string]bool{}
		for _, id := range strings.Split(*checksFlag, ",") {
			enabled[strings.TrimSpace(id)] = true
		}
		var kept []lint.Check
		for _, c := range checks {
			if enabled[c.ID()] {
				kept = append(kept, c)
				delete(enabled, c.ID())
			}
		}
		for id := range enabled {
			emit(stderr, "molint: unknown check %q\n", id)
			return 2
		}
		checks = kept
	}

	opts := lint.Options{StaleSuppressions: *staleFlag}
	if *escapesFlag {
		esc, err := runEscapeAnalysis(root, patterns)
		if err != nil {
			emit(stderr, "molint: escape analysis: %v\n", err)
			return 2
		}
		opts.Escapes = esc
	}
	if *timingsFlag {
		//molint:ignore det-path wall-clock timing is diagnostic output, gated behind -timings
		opts.Clock = time.Now
	}
	res := lint.RunOpts(pkgs, checks, opts)
	report := lint.NewReport(root, res, len(pkgs))
	if *timingsFlag {
		report = report.WithTimings(res.Timings)
	}
	switch *formatFlag {
	case "json":
		if err := report.WriteJSON(stdout); err != nil {
			emit(stderr, "molint: %v\n", err)
			return 2
		}
	case "github":
		if err := report.WriteGitHub(stdout); err != nil {
			emit(stderr, "molint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := report.WriteSARIF(stdout); err != nil {
			emit(stderr, "molint: %v\n", err)
			return 2
		}
	default:
		for _, f := range res.Findings {
			emit(stdout, "%s\n", rel(root, f))
			if *suggestFlag && f.Suggestion != "" {
				emit(stdout, "\tsuggest: %s\n", f.Suggestion)
			}
		}
		if *summaryFlag {
			//molint:ignore err-drop terminal write failures cannot be reported anywhere better
			_ = report.WriteSummaryTable(stdout)
		}
		emit(stdout, "molint: %d finding(s), %d suppressed, %d package(s)\n",
			len(res.Findings), res.Suppressed, len(pkgs))
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// runEscapeAnalysis shells out to the gc toolchain for its escape
// diagnostics. -m=2 prints to stderr; the build itself must succeed
// (molint already typechecked the tree, so a failure here is
// environmental). -gcflags applies to the named patterns only, which is
// exactly the scope molint analyzed.
func runEscapeAnalysis(root string, patterns []string) (*lint.EscapeData, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2: %v", err)
	}
	return lint.ParseEscapes(root, string(out)), nil
}

// rel renders a finding with its path relative to the module root so
// output is stable across checkouts.
func rel(root string, f lint.Finding) string {
	s := f.String()
	if strings.HasPrefix(s, root+string(os.PathSeparator)) {
		return s[len(root)+1:]
	}
	return s
}
