// Benchmarks backing the experiment index of DESIGN.md: one bench family
// per quantitative claim of the paper (E1–E6 in EXPERIMENTS.md), plus
// ablations for the data structure design choices. cmd/mobench runs the
// same sweeps as a standalone reporter.
package movingdb_test

import (
	"fmt"
	"testing"

	"movingdb/internal/baseline"
	"movingdb/internal/db"
	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
	"movingdb/internal/workload"
)

// E1 — atinstant on a moving region: O(log n + r log r) sliced vs
// O(n + r log r) naive scan (Section 5.1).
func BenchmarkAtInstantSliced(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			mr := workload.New(99).Storm(0, n, 12, 10)
			ts := probeInstants(float64(n)*10, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mr.AtInstant(ts[i%len(ts)])
			}
		})
	}
}

func BenchmarkAtInstantNaive(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			nv := baseline.FromMRegion(workload.New(99).Storm(0, n, 12, 10))
			ts := probeInstants(float64(n)*10, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nv.AtInstant(ts[i%len(ts)])
			}
		})
	}
}

// E1 (lookup only) — the pure O(log n) vs O(n) unit search.
func BenchmarkUnitLookupBinary(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			mp := workload.New(1).RandomTrajectory(0, n, 10, 2)
			ts := probeInstants(float64(n)*10, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mp.M.FindUnit(ts[i%len(ts)])
			}
		})
	}
}

func BenchmarkUnitLookupScan(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			np := baseline.FromMPoint(workload.New(1).RandomTrajectory(0, n, 10, 2))
			ts := probeInstants(float64(n)*10, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				np.AtInstant(ts[i%len(ts)])
			}
		})
	}
}

// E1 (second sweep) — snapshot construction is Θ(r log r) in the region
// size for both representations.
func BenchmarkAtInstantRegionSize(b *testing.B) {
	for _, r := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("segs=%d", r), func(b *testing.B) {
			mr := workload.New(99).Storm(0, 64, r, 10)
			ts := probeInstants(640, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mr.AtInstant(ts[i%len(ts)])
			}
		})
	}
}

// E2 — inside(mpoint, mregion): O(n + m + S) refinement vs O(n·m)
// all-pairs (Section 5.2).
func BenchmarkInsideSliced(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			g := workload.New(7)
			mp := g.RandomTrajectory(0, n, 10, 2)
			mr := g.Storm(0, n, 10, 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mp.Inside(mr)
			}
		})
	}
}

func BenchmarkInsideNaive(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			g := workload.New(7)
			np := baseline.FromMPoint(g.RandomTrajectory(0, n, 10, 2))
			nr := baseline.FromMRegion(g.Storm(0, n, 10, 10))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				np.Inside(nr)
			}
		})
	}
}

func BenchmarkInsideRegionSize(b *testing.B) {
	for _, s := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("segs=%d", s), func(b *testing.B) {
			g := workload.New(7)
			mp := g.RandomTrajectory(0, 64, 10, 2)
			mr := g.Storm(0, 64, s, 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mp.Inside(mr)
			}
		})
	}
}

// E3 — equality by representation comparison (Section 4).
func BenchmarkEqualityRepresentation(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			a := workload.New(3).RandomTrajectory(0, n, 10, 2)
			c := moving.MPoint{M: mapping.FromOrdered(append([]units.UPoint{}, a.M.Units()...))}
			au, cu := a.M.Units(), c.M.Units()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eq := len(au) == len(cu)
				for k := 0; eq && k < len(au); k++ {
					eq = au[k] == cu[k]
				}
				if !eq {
					b.Fatal("copies must be equal")
				}
			}
		})
	}
}

// E4 — encode/decode of the Section 4 representations.
func BenchmarkEncodeMPoint(b *testing.B) {
	mp := workload.New(5).RandomTrajectory(0, 4096, 10, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		storage.EncodeMPoint(mp)
	}
}

func BenchmarkDecodeMPoint(b *testing.B) {
	e := storage.EncodeMPoint(workload.New(5).RandomTrajectory(0, 4096, 10, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := storage.DecodeMPoint(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeMRegion(b *testing.B) {
	mr := workload.New(5).Storm(0, 256, 24, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		storage.EncodeMRegion(mr)
	}
}

func BenchmarkDecodeMRegion(b *testing.B) {
	e := storage.EncodeMRegion(workload.New(5).Storm(0, 256, 24, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := storage.DecodeMRegion(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageStoreRoundTrip(b *testing.B) {
	flat := storage.EncodeMRegion(workload.New(5).Storm(0, 256, 24, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := storage.NewPageStore()
		sv := storage.Store(ps, flat)
		if _, err := storage.Load(ps, sv); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — end-to-end workload: membership of a trajectory in a moving
// region plus path restriction, sliced vs naive.
func BenchmarkEndToEndSliced(b *testing.B) {
	g := workload.New(17)
	mp := g.RandomTrajectory(0, 256, 10, 2)
	mr := g.Storm(0, 256, 12, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inside := mp.Inside(mr)
		_ = mp.When(inside).Length()
	}
}

func BenchmarkEndToEndNaive(b *testing.B) {
	g := workload.New(17)
	mp := g.RandomTrajectory(0, 256, 10, 2)
	np := baseline.FromMPoint(mp)
	nr := baseline.FromMRegion(g.Storm(0, 256, 12, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inside := np.Inside(nr)
		_ = mp.When(inside).Length()
	}
}

// E6 — the refinement partition is linear in the unit counts.
func BenchmarkRefine(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("units=%d", n), func(b *testing.B) {
			g := workload.New(23)
			ai := g.RandomTrajectory(0, n, 10, 2).M.Intervals()
			bi := g.RandomTrajectory(0, n, 7, 2).M.Intervals()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				temporal.Refine(ai, bi)
			}
		})
	}
}

// Query kernels of Section 2: trajectory+length and the join predicate
// distance → atmin → initial.
func BenchmarkTrajectoryLength(b *testing.B) {
	mp := workload.New(2).RandomTrajectory(0, 1024, 10, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mp.Trajectory().Length()
	}
}

func BenchmarkDistanceAtMinInitial(b *testing.B) {
	g := workload.New(2)
	p := g.RandomTrajectory(0, 256, 10, 2)
	q := g.RandomTrajectory(0, 256, 10, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Distance(q).AtMin().Initial(); !ok {
			b.Fatal("no minimum")
		}
	}
}

// Ablation — the region close operation (structure recovery from a
// halfsegment soup, Section 4.1) vs trusted assembly from known faces.
func BenchmarkRegionClose(b *testing.B) {
	for _, nHoles := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("holes=%d", nHoles), func(b *testing.B) {
			segs := regionSoup(nHoles)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := spatial.Close(segs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func regionSoup(nHoles int) []geom.Segment {
	outer := spatial.MustCycle(spatial.Ring(0, 0, 100, 0, 100, 100, 0, 100)...)
	segs := outer.Segments()
	for i := 0; i < nHoles; i++ {
		x := 5 + float64(i%4)*24
		y := 5 + float64(i/4)*24
		hole := spatial.MustCycle(spatial.Ring(x, y, x+10, y, x+10, y+10, x, y+10)...)
		segs = append(segs, hole.Segments()...)
	}
	return segs
}

func probeInstants(span float64, n int) []temporal.Instant {
	// The fractional offset keeps probes off exact unit boundaries, so
	// the measurement reflects the common inner-instant path rather than
	// the degeneracy cleanup at unit end points.
	ts := make([]temporal.Instant, n)
	for i := range ts {
		ts[i] = temporal.Instant(span * (float64(i) + 0.37) / float64(n))
	}
	return ts
}

// Ablation — cost of the exact for-all-instants validation of uregion
// units (root analysis of all moving segment pairs) vs trusted
// construction. Generators and storage decode use the trusted path; this
// quantifies what untrusted input validation costs.
func BenchmarkURegionValidate(b *testing.B) {
	for _, segs := range []int{6, 12, 24} {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			mr := workload.New(31).Storm(0, 1, segs, 10)
			u := mr.M.Units()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := u.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Query language: parse + type-check + execute the Section 2 selection
// over an in-memory relation.
func BenchmarkQueryLanguage(b *testing.B) {
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	for _, f := range workload.New(2000).Flights(50, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
	}
	cat := db.Catalog{"planes": planes}
	const q = `SELECT airline, id FROM planes
	           WHERE airline = 'Lufthansa' AND length(trajectory(flight)) > 500`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(cat, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Lifted region-region intersects: exact critical-instant kernel.
func BenchmarkMRegionIntersects(b *testing.B) {
	g := workload.New(41)
	r := g.Storm(0, 32, 8, 10)
	s := g.Storm(0, 32, 8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Intersects(s)
	}
}

// Extension — spatio-temporal window queries: R-tree over unit cubes vs
// a full unit scan (see internal/index; the paper defers indexing to
// related work, this ablation quantifies why a real system wants one).
func BenchmarkWindowIndexed(b *testing.B) {
	for _, objs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("objects=%d", objs), func(b *testing.B) {
			g := workload.New(51)
			objects := make([]moving.MPoint, objs)
			for i := range objects {
				objects[i] = g.RandomTrajectory(0, 64, 10, 2)
			}
			ix := index.BuildMPointIndex(objects)
			rect := geom.Rect{MinX: 400, MinY: 400, MaxX: 500, MaxY: 500}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iv := temporal.Closed(temporal.Instant(i%500), temporal.Instant(i%500+60))
				ix.Window(rect, iv)
			}
		})
	}
}

func BenchmarkWindowScan(b *testing.B) {
	for _, objs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("objects=%d", objs), func(b *testing.B) {
			g := workload.New(51)
			objects := make([]moving.MPoint, objs)
			for i := range objects {
				objects[i] = g.RandomTrajectory(0, 64, 10, 2)
			}
			rect := geom.Rect{MinX: 400, MinY: 400, MaxX: 500, MaxY: 500}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iv := temporal.Closed(temporal.Instant(i%500), temporal.Instant(i%500+60))
				index.ScanWindow(objects, rect, iv)
			}
		})
	}
}

// Extension — region overlay (union / intersection / difference).
func BenchmarkRegionOverlay(b *testing.B) {
	g := workload.New(61)
	r1 := g.StormWithSegments(temporal.Closed(0, 1), 24)
	r2 := g.StormWithSegments(temporal.Closed(0, 1), 24)
	a, _ := r1.AtInstant(0.5)
	c, _ := r2.AtInstant(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Union(c); err != nil {
			b.Fatal(err)
		}
	}
}
