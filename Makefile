GO ?= go

.PHONY: all build vet test race verify bench docs

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The tier-1 recipe (ROADMAP.md): build, vet, race-enabled tests.
verify:
	./scripts/verify.sh

bench:
	$(GO) test -bench=. -benchmem .

docs:
	$(GO) run ./cmd/motables -ops
	$(GO) run ./cmd/mofigures -svg docs/figures
