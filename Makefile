GO ?= go

.PHONY: all build vet test race verify bench docs fuzz faultinject lint debugcheck soak chaos allocgate

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the repository's own static-analysis suite (DESIGN.md §10) over
# the default and faultinject build variants.
lint:
	$(GO) run ./cmd/molint -summary -stale-suppressions ./...

# Enforce the hot-path allocation budgets (alloc_budgets.json): every
# budgeted benchmark runs under -benchmem and must stay at or below its
# allocs/op and B/op ceilings. The static half of the contract is
# molint's alloc-hot check.
allocgate:
	$(GO) run ./cmd/mobench -exp allocgate

# Run the paper-kernel tests with the runtime invariant assertions
# compiled in (sliced-representation and halfsegment-order checks).
debugcheck:
	$(GO) test -tags=debugcheck ./internal/mapping ./internal/spatial ./internal/moving

# The tier-1 recipe (ROADMAP.md) plus the robustness checks: build,
# vet, race-enabled tests, the faultinject build variant, and a fuzz
# smoke run over the WAL decoders.
verify:
	./scripts/verify.sh

# Soak the live-query subsystem: continuous ingestion with churning
# subscribers, SSE readers and nearby queries hammering one server
# (DESIGN.md §12). Duration via SOAK_DUR (default 10s).
soak:
	$(GO) run ./cmd/mobench -exp soak -soak-dur $${SOAK_DUR:-10s}

# Chaos: the seeded fleet simulator (cmd/mosim, DESIGN.md §13) drives
# the real HTTP stack through every chaos profile with the failpoint
# hooks compiled in, cross-checking each response against the offline
# oracle under the race detector. Longer runs: go run ./cmd/mosim.
chaos:
	$(GO) test -race -tags=faultinject -count=1 ./internal/sim/

# Fuzz the WAL recovery decoders (longer than the verify smoke run).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzWALDecode -fuzztime=60s ./internal/ingest

# Build and vet the failpoint-enabled binary variant.
faultinject:
	$(GO) build -tags=faultinject ./...
	$(GO) vet -tags=faultinject ./...

bench:
	$(GO) test -bench=. -benchmem .

docs:
	$(GO) run ./cmd/motables -ops
	$(GO) run ./cmd/mofigures -svg docs/figures
