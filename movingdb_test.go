package movingdb_test

import (
	"math"
	"testing"

	"movingdb"
)

// These tests exercise the public facade exactly the way the README and
// the quickstart example do — they are the contract of the import
// surface.

func TestFacadeQuickstart(t *testing.T) {
	van, err := movingdb.MPointFromSamples([]movingdb.Sample{
		{T: 0, P: movingdb.Pt(0, 0)},
		{T: 900, P: movingdb.Pt(3, 4)},
		{T: 2400, P: movingdb.Pt(3, 10)},
		{T: 3600, P: movingdb.Pt(9, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pos := van.AtInstant(1800); !pos.Defined() {
		t.Fatal("undefined mid-route")
	}
	if got := van.Trajectory().Length(); math.Abs(got-17) > 1e-9 {
		t.Errorf("length = %v", got)
	}
	zone, err := movingdb.PolygonRegion(movingdb.Ring(2, 2, 12, 2, 12, 12, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	inside := van.InsideRegion(zone)
	wt := inside.WhenTrue()
	if wt.IsEmpty() {
		t.Fatal("never inside the zone")
	}
	restricted := van.When(inside)
	if restricted.Length() <= 0 || restricted.Length() > van.Length() {
		t.Errorf("restricted length = %v", restricted.Length())
	}
}

func TestFacadeGeometry(t *testing.T) {
	s := movingdb.Seg(0, 0, 4, 4)
	if s.Length() != 4*math.Sqrt2 {
		t.Errorf("segment length = %v", s.Length())
	}
	ps := movingdb.NewPoints(movingdb.Pt(1, 1), movingdb.Pt(0, 0), movingdb.Pt(1, 1))
	if ps.Len() != 2 {
		t.Errorf("points = %v", ps)
	}
	l, err := movingdb.NewLine(movingdb.Seg(0, 0, 1, 1), movingdb.Seg(0, 1, 1, 0))
	if err != nil || l.NumSegments() != 2 {
		t.Errorf("line = %v, %v", l, err)
	}
	if _, err := movingdb.NewLine(movingdb.Seg(0, 0, 2, 0), movingdb.Seg(1, 0, 3, 0)); err == nil {
		t.Error("collinear overlap accepted")
	}
	r, err := movingdb.CloseRegion(regionSegs())
	if err != nil || r.NumFaces() != 1 {
		t.Errorf("close = %v, %v", r, err)
	}
}

// regionSegs builds a simple square boundary via the facade types.
func regionSegs() []movingdb.Segment {
	return []movingdb.Segment{
		movingdb.Seg(0, 0, 4, 0), movingdb.Seg(4, 0, 4, 4),
		movingdb.Seg(0, 4, 4, 4), movingdb.Seg(0, 0, 0, 4),
	}
}

func TestFacadeIntervals(t *testing.T) {
	iv := movingdb.Closed(0, 10)
	if !iv.Contains(5) || iv.Contains(11) {
		t.Error("interval membership wrong")
	}
	op := movingdb.Open(0, 10)
	if op.Contains(0) || op.Contains(10) || !op.Contains(5) {
		t.Error("open interval membership wrong")
	}
}

func TestFacadeStaticMRegion(t *testing.T) {
	zone, _ := movingdb.PolygonRegion(movingdb.Ring(0, 0, 10, 0, 10, 10, 0, 10))
	mr := movingdb.StaticMRegion(zone, movingdb.Closed(0, 100))
	snap, ok := mr.AtInstant(42)
	if !ok || snap.Area() != 100 {
		t.Errorf("static snapshot = %v, %v", snap, ok)
	}
	p, _ := movingdb.MPointFromSamples([]movingdb.Sample{
		{T: 0, P: movingdb.Pt(-5, 5)},
		{T: 100, P: movingdb.Pt(15, 5)},
	})
	inside := p.Inside(mr)
	wt := inside.WhenTrue()
	if wt.Len() != 1 {
		t.Fatalf("inside = %v", wt)
	}
	got := wt.Intervals()[0]
	// Enter at x=0 → t=25, leave at x=10 → t=75.
	if got.Start != 25 || got.End != 75 {
		t.Errorf("inside period = %v", got)
	}
}
