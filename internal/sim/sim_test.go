package sim

import (
	"reflect"
	"strings"
	"testing"

	"movingdb/internal/fault"
)

// TestCleanRun: no faults, every invariant holds, every expected event
// is delivered exactly.
func TestCleanRun(t *testing.T) {
	res, err := Run(Config{Seed: 7, Ticks: 20})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Verdict
	if !v.Passed() {
		t.Fatalf("violations: %v", v.Violations)
	}
	if want := uint64(23); v.Epochs != want { // opening epoch + 20 ticks + 2 fences
		t.Fatalf("epochs = %d, want %d", v.Epochs, want)
	}
	if v.Accepted != 22 || v.Rejected503 != 0 {
		t.Fatalf("accepted=%d rejected=%d, want 22/0", v.Accepted, v.Rejected503)
	}
	if v.DeliveredEvents != v.ExpectedEvents {
		t.Fatalf("delivered %d of %d expected events", v.DeliveredEvents, v.ExpectedEvents)
	}
	if v.ExpectedEvents == 0 {
		t.Fatal("run produced no standing-query events; fleets or subscriptions are misconfigured")
	}
	if v.Queries == 0 || v.LogHash == "" {
		t.Fatalf("suspicious verdict: %+v", v)
	}
}

// TestDeterminismWalErr: the wal-err profile (WAL seam only — works in
// every build) must reproduce a byte-identical log and verdict, while
// demonstrating a full degrade→probe→recover cycle with zero
// violations.
func TestDeterminismWalErr(t *testing.T) {
	profile, err := LookupProfile("wal-err")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 11, Ticks: 24, Profile: profile}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verdict.Passed() {
		t.Fatalf("violations: %v", a.Verdict.Violations)
	}
	if a.Verdict.Rejected503 == 0 {
		t.Fatal("wal-err produced no 503s; the fault window never took effect")
	}
	if a.Verdict.DegradeCycles < 1 {
		t.Fatalf("degrade cycles = %d, want >= 1", a.Verdict.DegradeCycles)
	}
	if !reflect.DeepEqual(a.Verdict, b.Verdict) {
		t.Fatalf("verdicts differ:\n%+v\n%+v", a.Verdict, b.Verdict)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		for i := range a.Log {
			if i < len(b.Log) && a.Log[i] != b.Log[i] {
				t.Fatalf("log line %d differs:\n%s\n%s", i, a.Log[i], b.Log[i])
			}
		}
		t.Fatalf("log lengths differ: %d vs %d", len(a.Log), len(b.Log))
	}
	if a.Verdict.LogHash != b.Verdict.LogHash {
		t.Fatalf("log hashes differ: %s vs %s", a.Verdict.LogHash, b.Verdict.LogHash)
	}
}

// TestTornWal: torn WAL writes must behave like clean failures at the
// API surface — refused, degraded, recovered — with no invariant
// violation.
func TestTornWal(t *testing.T) {
	profile, err := LookupProfile("wal-torn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Seed: 3, Ticks: 24, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.Passed() {
		t.Fatalf("violations: %v", res.Verdict.Violations)
	}
	if res.Verdict.Rejected503 == 0 || res.Verdict.DegradeCycles < 1 {
		t.Fatalf("want rejects and a recovery cycle, got %+v", res.Verdict)
	}
}

// TestHooksGate: profiles that arm hook sites must refuse to run in a
// build without them, naming the fix.
func TestHooksGate(t *testing.T) {
	if hooksEnabled {
		t.Skip("faultinject build compiles the hooks in; the gate is for production builds")
	}
	profile, err := LookupProfile("publish-skip")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Seed: 1, Ticks: 4, Profile: profile})
	if err == nil || !strings.Contains(err.Error(), "faultinject") {
		t.Fatalf("want a rebuild-with-faultinject error, got %v", err)
	}
}

// TestProfileValidation: stale sites and nondeterministic specs are
// startup errors.
func TestProfileValidation(t *testing.T) {
	cases := []struct {
		name    string
		profile Profile
		wantSub string
	}{
		{
			name:    "unknown site",
			profile: Profile{Name: "x", Flips: []Flip{{Frac: 0.5, Site: "wal.fsync", Spec: errSpec()}}},
			wantSub: "unknown failpoint site",
		},
		{
			name:    "bad fraction",
			profile: Profile{Name: "x", Flips: []Flip{{Frac: 1.5, Site: "wal.put", Spec: errSpec()}}},
			wantSub: "fraction",
		},
		{
			name:    "probabilistic",
			profile: Profile{Name: "x", Flips: []Flip{{Frac: 0.5, Site: "wal.put", Spec: &fault.Spec{Mode: fault.ModeError, Prob: 0.5}}}},
			wantSub: "Prob",
		},
		{
			name:    "latency",
			profile: Profile{Name: "x", Flips: []Flip{{Frac: 0.5, Site: "wal.put", Spec: &fault.Spec{Mode: fault.ModeLatency}}}},
			wantSub: "latency",
		},
		{
			name:    "times off sse",
			profile: Profile{Name: "x", Flips: []Flip{{Frac: 0.5, Site: "wal.put", Spec: &fault.Spec{Mode: fault.ModeError, Times: 3}}}},
			wantSub: "Times",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.profile.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("want error containing %q, got %v", tc.wantSub, err)
			}
		})
	}
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s fails its own validation: %v", p.Name, err)
		}
	}
}

// TestLookupProfile: resolution and the unknown-name error listing the
// catalog.
func TestLookupProfile(t *testing.T) {
	p, err := LookupProfile("mixed")
	if err != nil || p.Name != "mixed" {
		t.Fatalf("lookup mixed: %v %v", p, err)
	}
	_, err = LookupProfile("nope")
	if err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Fatalf("want the error to list known profiles, got %v", err)
	}
}

// TestSchedule: fractions land on 1-based ticks inside the run.
func TestSchedule(t *testing.T) {
	p := Profile{Name: "x", Flips: []Flip{
		{Frac: 0, Site: "wal.put", Spec: errSpec()},
		{Frac: 0.5, Site: "wal.put"},
		{Frac: 0.99, Site: "wal.get", Spec: errSpec()},
	}}
	sched := p.schedule(10)
	if len(sched[1]) != 1 || sched[1][0].Spec == nil {
		t.Fatalf("frac 0 should arm at tick 1: %+v", sched)
	}
	if len(sched[6]) != 1 || sched[6][0].Spec != nil {
		t.Fatalf("frac 0.5 should clear at tick 6: %+v", sched)
	}
	if len(sched[10]) != 1 {
		t.Fatalf("frac 0.99 should land at tick 10: %+v", sched)
	}
}
