package sim

import (
	"fmt"
	"math"
	"slices"

	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
)

// oracle is the offline ground truth: it replays the exact decision
// procedure of the server — the store's monotone admission and
// published-epoch cutover, the epoch read operators, and the standing-
// query fold — over the observations the ingest API actually
// acknowledged, so every expected answer is float-for-float identical
// to what the live stack must serve. The published-prefix cutoff is
// the one idea that makes chaos windows checkable: samples are
// remembered when a batch is acknowledged (202) but only become
// queryable when an epoch publish succeeds, so a deferred publish
// (injected epoch.publish fault) or a rejected write (degraded WAL)
// leaves the expected answers pinned at the last published state,
// exactly like the server's readers.
//
// Only the sequential tick loop mutates an oracle; the per-tick query
// checkers read it concurrently after the tick's ingest settled.
type oracle struct {
	order   []string                   // registration order (slot = index)
	slots   map[string]int             // id → slot
	samples map[string][]moving.Sample // accepted observations, in order
	pubLen  map[string]int             // published prefix length
	pending map[string]geom.Rect       // movement rects since last publish
	trajs   map[string]traj            // trajectory cache over the published prefix

	subs []*oracleSub

	// Health state machine mirror (ingest/health.go with the simulator's
	// DegradedThreshold of 2 and an always-expired probe timer).
	consecFails int
	degraded    bool
}

// traj caches one object's published trajectory.
type traj struct {
	n  int // pubLen the cache was built at
	mp moving.MPoint
}

// oracleSub mirrors one subscription's edge-trigger state and the full
// expected event sequence (Seq assigned exactly as the registry does).
type oracleSub struct {
	id       string
	pred     live.Predicate
	state    bool                // id-bound forms: last evaluated truth
	members  map[string]struct{} // appears: objects currently inside
	seq      uint64
	expected []live.Event
}

func newOracle() *oracle {
	return &oracle{
		slots:   map[string]int{},
		samples: map[string][]moving.Sample{},
		pubLen:  map[string]int{},
		pending: map[string]geom.Rect{},
		trajs:   map[string]traj{},
	}
}

// addSub registers a subscription mirror. The simulator subscribes
// before the first observation, so the seed state is always empty.
func (o *oracle) addSub(id string, pred live.Predicate) {
	o.subs = append(o.subs, &oracleSub{id: id, pred: pred, members: map[string]struct{}{}})
}

// accept folds one acknowledged (202) batch: samples append under the
// store's monotone admission rule and the pending movement rectangles
// extend exactly as Store.markDirtyLocked does.
func (o *oracle) accept(batch []ingest.Observation) {
	for _, ob := range batch {
		slot, ok := o.slots[ob.ObjectID]
		if !ok {
			slot = len(o.order)
			o.slots[ob.ObjectID] = slot
			o.order = append(o.order, ob.ObjectID)
		}
		smp := moving.Sample{T: temporal.Instant(ob.T), P: geom.Pt(ob.X, ob.Y)}
		prev := o.samples[ob.ObjectID]
		if n := len(prev); n > 0 && smp.T <= prev[n-1].T {
			continue // dropped by the store's monotone admission
		}
		from := smp.P
		if n := len(prev); n > 0 {
			from = prev[n-1].P
		}
		r, ok := o.pending[ob.ObjectID]
		if !ok {
			r = geom.EmptyRect()
		}
		o.pending[ob.ObjectID] = r.ExtendPoint(from).ExtendPoint(smp.P)
		o.samples[ob.ObjectID] = append(prev, smp)
	}
}

// rejected folds one 503-rejected batch into the health mirror.
func (o *oracle) rejected() {
	o.consecFails++
	if o.consecFails >= 2 {
		o.degraded = true
	}
}

// publish advances the published prefix to everything accepted so far
// and evaluates the standing-query fold over the dirty set (sorted by
// id, as Store.publishLocked emits it). epoch is the sequence number of
// the epoch this publish produced.
func (o *oracle) publish(epoch uint64) {
	dirty := make([]string, 0, len(o.pending))
	for id := range o.pending {
		dirty = append(dirty, id)
	}
	slices.Sort(dirty)
	for _, s := range o.subs {
		o.evaluate(s, epoch, dirty)
	}
	for _, id := range dirty {
		o.pubLen[id] = len(o.samples[id])
	}
	clear(o.pending)
}

// accepted clears the health mirror: an acknowledged write means the
// WAL append succeeded, whether or not the epoch publish was deferred.
func (o *oracle) accepted() { o.consecFails, o.degraded = 0, false }

// holds mirrors Predicate.holds (which is unexported): the formulas
// must stay identical for the fold to be float-exact.
func holds(p live.Predicate, pt geom.Point) bool {
	if p.Kind == live.KindWithin {
		return math.Hypot(pt.X-p.X, pt.Y-p.Y) <= p.Radius
	}
	return p.Region.ContainsPoint(pt)
}

// evaluate folds one publish into a subscription mirror, replicating
// Registry.candidatesLocked + Subscription.evaluate: the candidate
// filter (bound ∩ movement rectangle) gates evaluation, edges are state
// flips against the new epoch's current samples, and events carry the
// publishing epoch and the object's latest sample. Event positions use
// the post-publish prefix, so current() is computed against the sample
// arrays directly (pubLen advances after the fold, but the notice's
// epoch is the one just published — its Current is the full accepted
// prefix of every dirty object).
func (o *oracle) evaluate(s *oracleSub, epoch uint64, dirty []string) {
	bound := s.pred.Bound()
	emit := func(edge, obj string, smp moving.Sample) {
		s.seq++
		s.expected = append(s.expected, live.Event{
			Seq:    s.seq,
			Epoch:  epoch,
			Edge:   edge,
			Object: obj,
			T:      float64(smp.T),
			X:      smp.P.X,
			Y:      smp.P.Y,
		})
	}
	newCurrent := func(id string) (moving.Sample, bool) {
		ss := o.samples[id]
		if len(ss) == 0 {
			return moving.Sample{}, false
		}
		return ss[len(ss)-1], true
	}
	if s.pred.Kind != live.KindAppears {
		idx := slices.Index(dirty, s.pred.Object)
		if idx < 0 || !bound.Intersects(o.pending[s.pred.Object]) {
			return
		}
		smp, ok := newCurrent(s.pred.Object)
		in := ok && holds(s.pred, smp.P)
		if in != s.state {
			s.state = in
			if in {
				emit("enter", s.pred.Object, smp)
			} else {
				emit("leave", s.pred.Object, smp)
			}
		}
		return
	}
	for _, id := range dirty {
		if !bound.Intersects(o.pending[id]) {
			continue
		}
		smp, ok := newCurrent(id)
		in := ok && holds(s.pred, smp.P)
		_, was := s.members[id]
		switch {
		case in && !was:
			s.members[id] = struct{}{}
			emit("enter", id, smp)
		case !in && was:
			delete(s.members, id)
			emit("leave", id, smp)
		}
	}
}

// trajectory returns the object's published trajectory (at least two
// published samples), rebuilding the cache when the prefix advanced.
// The offline builder and the store's online appender produce the
// identical unit sequence (same chaining, same merge rule), so unit
// evaluation — and therefore every float in an expected answer — is
// bit-equal to the server's.
func (o *oracle) trajectory(id string) (moving.MPoint, bool) {
	n := o.pubLen[id]
	if n < 2 {
		return moving.MPoint{}, false
	}
	if c, ok := o.trajs[id]; ok && c.n == n {
		return c.mp, true
	}
	mp, err := moving.MPointFromSamples(o.samples[id][:n])
	if err != nil {
		panic(fmt.Sprintf("sim: oracle trajectory %s: %v", id, err))
	}
	o.trajs[id] = traj{n: n, mp: mp}
	return mp, true
}

// atInstant mirrors Epoch.AtInstant over the published prefixes:
// position of every object defined at t, in registration order.
func (o *oracle) atInstant(t float64) []ingest.Position {
	out := []ingest.Position{}
	for _, id := range o.order {
		mp, ok := o.trajectory(id)
		if !ok {
			continue
		}
		u, ok := mp.M.UnitAt(temporal.Instant(t))
		if !ok {
			continue
		}
		p := u.Eval(temporal.Instant(t))
		out = append(out, ingest.Position{ID: id, X: p.X, Y: p.Y})
	}
	return out
}

// window mirrors Epoch.Window: ids of objects inside rect at some
// instant of [t1, t2], ascending registration order. Index filtering
// plus exact refinement equals plain exact membership over the
// published units, so the oracle skips the index and refines directly.
func (o *oracle) window(rect geom.Rect, t1, t2 float64) []string {
	iv := temporal.Closed(temporal.Instant(t1), temporal.Instant(t2))
	out := []string{}
	for _, id := range o.order {
		mp, ok := o.trajectory(id)
		if !ok {
			continue
		}
		for _, u := range mp.M.Units() {
			if index.UPointInWindow(u, rect, iv) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// nearest mirrors Epoch.Nearest: objects defined at t ordered by
// (distance, registration slot), radius-inclusive, cut at k when k > 0.
func (o *oracle) nearest(x, y, t float64, k int, radius float64) []ingest.NearbyResult {
	type hit struct {
		slot int
		res  ingest.NearbyResult
	}
	hits := []hit{}
	for slot, id := range o.order {
		mp, ok := o.trajectory(id)
		if !ok {
			continue
		}
		u, ok := mp.M.UnitAt(temporal.Instant(t))
		if !ok {
			continue
		}
		p := u.Eval(temporal.Instant(t))
		d := math.Hypot(p.X-x, p.Y-y)
		if radius >= 0 && d > radius {
			continue
		}
		hits = append(hits, hit{slot: slot, res: ingest.NearbyResult{ID: id, X: p.X, Y: p.Y, Dist: d}})
	}
	slices.SortFunc(hits, func(a, b hit) int {
		switch {
		case a.res.Dist < b.res.Dist:
			return -1
		case a.res.Dist > b.res.Dist:
			return 1
		}
		return a.slot - b.slot
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	out := []ingest.NearbyResult{}
	for _, h := range hits {
		out = append(out, h.res)
	}
	return out
}
