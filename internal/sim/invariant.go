package sim

import (
	"fmt"

	"movingdb/internal/ingest"
	"movingdb/internal/live"
)

// Wire mirrors of the server's response bodies and the exact
// comparators the invariant checker runs against the oracle. Every
// comparison is exact float64 equality: the oracle replays the same
// arithmetic over the same accepted samples, and JSON round-trips
// float64 bit-exactly in Go, so any difference at all means the server
// and the model disagree.

// ingestAck mirrors the 202 body of POST /v1/ingest.
type ingestAck struct {
	Accepted int    `json:"accepted"`
	Seq      uint64 `json:"seq"`
	Synced   bool   `json:"synced"`
}

// apiError mirrors the v1 error envelope.
type apiErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// atInstantResp mirrors GET /v1/atinstant.
type atInstantResp struct {
	T         float64           `json:"t"`
	Positions []ingest.Position `json:"positions"`
}

// windowResp mirrors GET /v1/window.
type windowResp struct {
	Total  int      `json:"total"`
	Limit  int      `json:"limit"`
	Offset int      `json:"offset"`
	IDs    []string `json:"ids"`
}

// nearbyResp mirrors GET /v1/nearby.
type nearbyResp struct {
	T       float64               `json:"t"`
	K       int                   `json:"k"`
	Radius  float64               `json:"radius"`
	Count   int                   `json:"count"`
	Results []ingest.NearbyResult `json:"results"`
}

// healthzResp mirrors the fields of GET /v1/healthz the checker reads.
type healthzResp struct {
	Status string `json:"status"`
	Cause  string `json:"cause"`
}

// subscribeResp mirrors the 201 body of POST /v1/subscribe.
type subscribeResp struct {
	SubscriptionID string `json:"subscription_id"`
	Predicate      string `json:"predicate"`
	EventsURL      string `json:"events_url"`
}

// diffPositions compares an atinstant response against the oracle's
// expectation (nil and empty are the same answer).
func diffPositions(got, want []ingest.Position) string {
	if len(got) != len(want) {
		return fmt.Sprintf("got %d positions, oracle expects %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("position %d: got %+v, oracle expects %+v", i, got[i], want[i])
		}
	}
	return ""
}

// diffIDs compares a window response's id list.
func diffIDs(got, want []string) string {
	if len(got) != len(want) {
		return fmt.Sprintf("got %d ids %v, oracle expects %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("id %d: got %q, oracle expects %q", i, got[i], want[i])
		}
	}
	return ""
}

// diffNearby compares a nearby result list, order included — the k-NN
// contract is ascending (distance, registration slot).
func diffNearby(got, want []ingest.NearbyResult) string {
	if len(got) != len(want) {
		return fmt.Sprintf("got %d results, oracle expects %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("result %d: got %+v, oracle expects %+v", i, got[i], want[i])
		}
	}
	return ""
}

// sameEvent compares a delivered event against an expected one,
// ignoring PubUnixNS (the one wall-clock field — latency telemetry,
// not part of the deterministic contract).
func sameEvent(got, want live.Event) bool {
	return got.Seq == want.Seq && got.Epoch == want.Epoch && got.Edge == want.Edge &&
		got.Object == want.Object && got.T == want.T && got.X == want.X && got.Y == want.Y
}

// diffEventsExact demands the delivered sequence be the expected one,
// event for event — the contract when no fault ever touches the SSE
// path.
func diffEventsExact(sub string, got, want []live.Event) string {
	if len(got) != len(want) {
		return fmt.Sprintf("sub %s: delivered %d events, oracle expects %d", sub, len(got), len(want))
	}
	for i := range want {
		if !sameEvent(got[i], want[i]) {
			return fmt.Sprintf("sub %s event %d: got %+v, oracle expects %+v", sub, i, got[i], want[i])
		}
	}
	return ""
}

// diffEventsTolerant is the contract under injected stream cuts: a cut
// loses the events taken for the aborted write, so the delivered
// sequence may have gaps — but it must stay strictly ordered and every
// delivered event must be exactly the expected event of its sequence
// number (no reorders, no duplicates, no inventions).
func diffEventsTolerant(sub string, got, want []live.Event) string {
	var last uint64
	for i, e := range got {
		if e.Seq <= last {
			return fmt.Sprintf("sub %s event %d: seq %d not after %d (reorder or duplicate)", sub, i, e.Seq, last)
		}
		last = e.Seq
		if e.Seq == 0 || e.Seq > uint64(len(want)) {
			return fmt.Sprintf("sub %s event %d: seq %d outside expected range 1..%d", sub, i, e.Seq, len(want))
		}
		if w := want[e.Seq-1]; !sameEvent(e, w) {
			return fmt.Sprintf("sub %s seq %d: got %+v, oracle expects %+v", sub, e.Seq, e, w)
		}
	}
	return ""
}
