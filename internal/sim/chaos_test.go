//go:build faultinject

package sim

import (
	"reflect"
	"testing"
)

// These tests exercise the hook failpoint sites (epoch.publish,
// live.notify, sse.write), which only exist under -tags=faultinject.
// The Makefile's `chaos` target runs them with -race.

// TestChaosPublishSkip: epoch publishes defer for a window. Writes ack
// but stay invisible; reads keep serving the last published epoch; the
// first clean flush folds everything in.
func TestChaosPublishSkip(t *testing.T) {
	profile, err := LookupProfile("publish-skip")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Seed: 5, Ticks: 24, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Verdict
	if !v.Passed() {
		t.Fatalf("violations: %v", v.Violations)
	}
	if v.Rejected503 != 0 {
		t.Fatalf("publish faults must not refuse writes, got %d rejects", v.Rejected503)
	}
	if v.Epochs >= uint64(v.Accepted) {
		t.Fatalf("epochs = %d with %d accepted ticks; the deferred-publish window never held anything back", v.Epochs, v.Accepted)
	}
}

// TestChaosNotifyWedge: standing-query wake-ups are lost for a window.
// Delivery defers until the next successful notify; nothing is dropped
// or reordered, so the exact event comparison must still hold.
func TestChaosNotifyWedge(t *testing.T) {
	profile, err := LookupProfile("notify-wedge")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Seed: 6, Ticks: 24, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.Passed() {
		t.Fatalf("violations: %v", res.Verdict.Violations)
	}
	if res.Verdict.DeliveredEvents != res.Verdict.ExpectedEvents {
		t.Fatalf("delivered %d of %d events", res.Verdict.DeliveredEvents, res.Verdict.ExpectedEvents)
	}
}

// TestChaosSseCut: two streams break mid-flight; readers reconnect and
// subscriptions survive with order preserved (tolerant comparison —
// events taken by a cut stream are client losses, not server faults).
func TestChaosSseCut(t *testing.T) {
	profile, err := LookupProfile("sse-cut")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Seed: 8, Ticks: 24, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.Passed() {
		t.Fatalf("violations: %v", res.Verdict.Violations)
	}
	if res.Verdict.DeliveredEvents != -1 {
		t.Fatalf("sse.write profiles use tolerant delivery accounting, got %d", res.Verdict.DeliveredEvents)
	}
}

// TestChaosMixedDeterministic: the acceptance gauntlet — WAL outage,
// deferred publishes, lost wake-ups and stream cuts in one run — holds
// every invariant, completes a degrade→recover cycle, and reproduces
// bit-for-bit from the seed.
func TestChaosMixedDeterministic(t *testing.T) {
	profile, err := LookupProfile("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 42, Ticks: 40, Profile: profile}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verdict.Passed() {
		t.Fatalf("violations: %v", a.Verdict.Violations)
	}
	if a.Verdict.DegradeCycles < 1 {
		t.Fatalf("degrade cycles = %d, want >= 1", a.Verdict.DegradeCycles)
	}
	if a.Verdict.Rejected503 == 0 {
		t.Fatal("the WAL window produced no 503s")
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Verdict, b.Verdict) {
		t.Fatalf("verdicts differ:\n%+v\n%+v", a.Verdict, b.Verdict)
	}
	if a.Verdict.LogHash != b.Verdict.LogHash {
		t.Fatalf("log hashes differ: %s vs %s", a.Verdict.LogHash, b.Verdict.LogHash)
	}
}
