package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/obs"
	"movingdb/internal/server"
	"movingdb/internal/storage"
	"movingdb/internal/workload"
)

// The harness loop: assemble the real stack (pipeline, registry,
// server) behind an httptest listener, drive fleets through the HTTP
// ingest route, issue the query mix, and check every response against
// the oracle. This file is deliberately outside molint's det-path scope
// — it paces ticks, waits on delivery barriers and polls for goroutine
// exit against the wall clock — but nothing wall-derived ever reaches
// the log or the verdict.

// maxViolations bounds the violation list; past it only the count grows.
const maxViolations = 32

// simSQL is the fixed catalog query issued every tick; the catalog is
// static, so its body must never change across the whole run.
const simSQL = "SELECT airline, id FROM planes WHERE airline = 'Lufthansa'"

// Result is a completed run: the verdict plus the deterministic event
// log it hashes.
type Result struct {
	Verdict Verdict
	Log     []string
}

// run is the mutable state of one simulation.
type run struct {
	cfg     Config
	ts      *httptest.Server
	client  *http.Client
	oracle  *oracle
	readers []*sseReader

	expectedSeq uint64 // epoch the next read must report
	wasDegraded bool
	inCycle     bool

	queryBaseline []byte

	verdict   Verdict
	log       []string
	extraViol int
}

func (r *run) logf(format string, args ...any) {
	r.log = append(r.log, fmt.Sprintf(format, args...))
}

func (r *run) violate(format string, args ...any) {
	if len(r.verdict.Violations) < maxViolations {
		v := fmt.Sprintf(format, args...)
		r.verdict.Violations = append(r.verdict.Violations, v)
		r.logf("VIOLATION %s", v)
		return
	}
	r.extraViol++
}

// fmtF renders a float64 so that the server's ParseFloat recovers the
// identical bits.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Run executes one simulation and returns its verdict and log. Setup
// failures (invalid profile, hook sites without the faultinject build)
// are errors; invariant breaches are violations in the verdict.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Profile.NeedsHooks() && !hooksEnabled {
		return nil, fmt.Errorf("sim: chaos profile %q arms hook failpoint sites; rebuild with -tags=faultinject", cfg.Profile.Name)
	}
	baseGoroutines := runtime.NumGoroutine()

	metrics := obs.New(0)
	in := fault.New(cfg.Seed + 1)
	in.OnTrip(metrics.RecordFaultTrip)
	armFailpoints(in)
	defer armFailpoints(nil)

	reg := live.NewRegistry(live.Config{
		BufferCap: 4096,
		// A queue this deep never overflows at simulator scale, so
		// publishes are never coalesced — the oracle's one-epoch-per-tick
		// accounting depends on that.
		QueueCap: 65536,
		Metrics:  metrics,
	})
	pipe, err := ingest.Open(ingest.Config{
		// The WAL seam is the injection point for wal.* sites in every
		// build; hook sites need -tags=faultinject.
		LogIO: fault.NewStore(in, "wal", storage.NewPageStore()),
		// One explicit flush per tick: thresholds high enough that neither
		// size nor age ever triggers a flush the oracle did not model.
		FlushSize: 1 << 20,
		MaxAge:    time.Hour,
		MaxQueued: 1 << 20,
		// Checkpoints off: their page I/O hits wal.put outside the tick
		// loop's control.
		CheckpointPages: -1,
		RetryAttempts:   2,
		RetryBase:       200 * time.Microsecond,
		RetryMaxWait:    time.Millisecond,
		// Threshold 2 with an always-due probe: health flips on the second
		// consecutive failed tick and every tick is allowed to probe, so
		// recovery happens on the first tick after the fault clears —
		// deterministic at tick granularity.
		DegradedThreshold: 2,
		ProbeInterval:     time.Nanosecond,
		Metrics:           metrics,
		OnPublish:         reg.Notify,
	})
	if err != nil {
		reg.Close()
		return nil, err
	}

	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	for _, f := range workload.New(cfg.Seed).Flights(8, 100) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
	}
	srv, err := server.New(server.Config{
		Catalog:      db.Catalog{"planes": planes},
		Ingest:       pipe,
		Live:         reg,
		Metrics:      metrics,
		SSEHeartbeat: time.Second,
	})
	if err != nil {
		reg.Close()
		pipe.Close()
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())

	r := &run{
		cfg:    cfg,
		ts:     ts,
		client: ts.Client(),
		oracle: newOracle(),
	}
	r.expectedSeq = pipe.Epoch().Seq() // the empty opening epoch
	r.verdict = Verdict{Profile: cfg.Profile.Name, Seed: cfg.Seed, Ticks: cfg.Ticks, Objects: cfg.objects()}
	r.logf("run profile=%s seed=%d ticks=%d objects=%d subs=%d", cfg.Profile.Name, cfg.Seed, cfg.Ticks, cfg.objects(), cfg.Subs)

	fl := newFleet(cfg)
	var wg sync.WaitGroup
	if err := r.subscribeAll(fl.ids, &wg); err != nil {
		reg.Close()
		ts.Close()
		pipe.Close()
		return nil, err
	}

	qg := workload.New(cfg.Seed + 2)
	sched := cfg.Profile.schedule(cfg.Ticks)
	armed := map[string]*fault.Spec{}

	for i := 1; i <= cfg.Ticks; i++ {
		tickStart := time.Now()
		for _, flip := range sched[i] {
			if flip.Spec == nil {
				in.Clear(flip.Site)
				delete(armed, flip.Site)
				r.logf("tick %d clear %s", i, flip.Site)
			} else {
				in.Set(flip.Site, *flip.Spec)
				armed[flip.Site] = flip.Spec
				r.logf("tick %d arm %s mode=%s times=%d", i, flip.Site, flip.Spec.Mode, flip.Spec.Times)
			}
		}
		t := float64(i) * cfg.TickDT
		status := r.ingestTick(i, fl.step(t), armed)

		r.checkHealthz(i)
		for qi, wq := range qg.WindowQueries(cfg.WindowQ, 0, t) {
			r.checkWindow(i, wq, qi == 0)
		}
		for _, qt := range qg.Instants(cfg.InstantQ, 0, t) {
			r.checkAtInstant(i, qt)
		}
		for _, nq := range qg.NearbyQueries(cfg.NearbyQ, 0, t, 5) {
			r.checkNearby(i, nq)
		}
		r.checkSQL(i)
		r.logf("tick %d t=%s status=%d epoch=%d degraded=%v", i, fmtF(t), status, r.expectedSeq, r.oracle.degraded)

		if cfg.Paced {
			if rem := cfg.TickPeriod - time.Since(tickStart); rem > 0 {
				time.Sleep(rem)
			}
		}
	}

	// Fence ticks: with every failpoint cleared, two guaranteed-clean
	// publishes flush any deferred epoch and re-wake the notifier, so
	// everything the oracle expects is queued for delivery before the
	// barrier below.
	in.ClearAll()
	clear(armed)
	for j := 1; j <= 2; j++ {
		i := cfg.Ticks + j
		t := float64(i) * cfg.TickDT
		if status := r.ingestTick(i, fl.step(t), armed); status != http.StatusAccepted {
			r.violate("fence tick %d: status %d, want 202 (no faults are armed)", j, status)
		}
		r.logf("fence %d epoch=%d", j, r.expectedSeq)
	}

	tolerant := cfg.Profile.uses("sse.write")
	r.deliveryBarrier(tolerant)
	r.checkEvents(tolerant)

	reg.Close()
	readersDone := make(chan struct{})
	go func() { // moguard: bounded wg.Wait returns once every reader sees bye or a dead listener
		wg.Wait()
		close(readersDone)
	}()
	select {
	case <-readersDone:
	case <-time.After(10 * time.Second):
		r.violate("SSE readers did not exit within 10s of registry close")
	}
	ts.Close()
	pipe.Close()
	r.client.CloseIdleConnections()

	// Goroutine-leak gate: everything the run started must be gone.
	leakDeadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		r.violate("goroutine leak: %d alive after shutdown, %d before the run", n, baseGoroutines)
	}

	r.verdict.Epochs = r.expectedSeq
	for _, s := range r.oracle.subs {
		r.verdict.ExpectedEvents += len(s.expected)
	}
	if tolerant {
		// Which Take is lost to a cut stream depends on scheduling; the
		// delivered count is real but not reproducible, so it stays out of
		// the deterministic verdict.
		r.verdict.DeliveredEvents = -1
	} else {
		for _, rd := range r.readers {
			r.verdict.DeliveredEvents += rd.count()
		}
	}
	if r.extraViol > 0 {
		r.verdict.Violations = append(r.verdict.Violations, fmt.Sprintf("... and %d more violations", r.extraViol))
	}
	r.logf("done epochs=%d accepted=%d rejected=%d cycles=%d queries=%d expected_events=%d violations=%d",
		r.verdict.Epochs, r.verdict.Accepted, r.verdict.Rejected503, r.verdict.DegradeCycles,
		r.verdict.Queries, r.verdict.ExpectedEvents, len(r.verdict.Violations))
	r.verdict.LogHash = hashLog(r.log)
	return &Result{Verdict: r.verdict, Log: r.log}, nil
}

// get issues a GET with an optional If-None-Match and returns status,
// headers, body.
func (r *run) get(path, inm string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest("GET", r.ts.URL+path, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes(), nil
}

// checkEpochHeader verifies the read-isolation invariant: every read
// names the epoch the oracle says is published.
func (r *run) checkEpochHeader(ctx string, hdr http.Header) {
	want := strconv.FormatUint(r.expectedSeq, 10)
	if got := hdr.Get("X-MO-Epoch"); got != want {
		r.violate("%s: X-MO-Epoch %q, oracle expects %q", ctx, got, want)
	}
}

// ingestTick POSTs one observation batch with ?sync=1 and folds the
// outcome into the oracle: 202 advances the samples (and, unless the
// publish was suppressed by an armed epoch.publish fault, the epoch),
// 503 must carry the degraded envelope and Retry-After.
func (r *run) ingestTick(i int, batch []ingest.Observation, armed map[string]*fault.Spec) int {
	body, err := json.Marshal(batch)
	if err != nil {
		r.violate("tick %d: marshal batch: %v", i, err)
		return 0
	}
	resp, err := r.client.Post(r.ts.URL+"/v1/ingest?sync=1", "application/json", bytes.NewReader(body))
	if err != nil {
		r.violate("tick %d: ingest POST failed: %v", i, err)
		return 0
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	switch resp.StatusCode {
	case http.StatusAccepted:
		var ack ingestAck
		if err := json.Unmarshal(buf.Bytes(), &ack); err != nil {
			r.violate("tick %d: bad 202 body: %v", i, err)
			return resp.StatusCode
		}
		if ack.Accepted != len(batch) || !ack.Synced {
			r.violate("tick %d: ack %+v, want accepted=%d synced=true", i, ack, len(batch))
		}
		r.oracle.accept(batch)
		r.oracle.accepted()
		if armed["epoch.publish"] == nil {
			r.expectedSeq++
			r.oracle.publish(r.expectedSeq)
		}
		r.verdict.Accepted++
	case http.StatusServiceUnavailable:
		var env apiErrorBody
		if err := json.Unmarshal(buf.Bytes(), &env); err != nil || env.Error.Code != "degraded" {
			r.violate("tick %d: 503 with code %q, want \"degraded\"", i, env.Error.Code)
		}
		// ProbeInterval is 1ns; the header rounds up with a floor of one
		// second, so the hint is pinned.
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			r.violate("tick %d: 503 Retry-After %q, want \"1\"", i, ra)
		}
		if armed["wal.put"] == nil {
			r.violate("tick %d: 503 with no wal.put fault armed", i)
		}
		r.oracle.rejected()
		r.verdict.Rejected503++
	default:
		r.violate("tick %d: ingest status %d (%s)", i, resp.StatusCode, buf.String())
	}
	return resp.StatusCode
}

// checkHealthz verifies the degraded-mode contract's status surface and
// counts degrade→recover cycles.
func (r *run) checkHealthz(i int) {
	status, hdr, body, err := r.get("/v1/healthz", "")
	if err != nil {
		r.violate("tick %d healthz: %v", i, err)
		return
	}
	r.verdict.Queries++
	if status != http.StatusOK {
		r.violate("tick %d healthz: status %d", i, status)
		return
	}
	r.checkEpochHeader(fmt.Sprintf("tick %d healthz", i), hdr)
	var h healthzResp
	if err := json.Unmarshal(body, &h); err != nil {
		r.violate("tick %d healthz: bad body: %v", i, err)
		return
	}
	want := "ok"
	if r.oracle.degraded {
		want = "degraded"
	}
	if h.Status != want {
		r.violate("tick %d healthz: status %q, oracle expects %q", i, h.Status, want)
	}
	if r.oracle.degraded && !r.wasDegraded {
		r.inCycle = true
		r.logf("tick %d degrade begins", i)
	}
	if !r.oracle.degraded && r.wasDegraded && r.inCycle {
		r.verdict.DegradeCycles++
		r.inCycle = false
		r.logf("tick %d degrade recovered (cycle %d)", i, r.verdict.DegradeCycles)
	}
	r.wasDegraded = r.oracle.degraded
}

// checkWindow cross-checks one window query; for the first query of a
// tick it also revalidates the response's strong ETag and demands 304.
func (r *run) checkWindow(i int, wq workload.WindowQuery, revisit bool) {
	path := fmt.Sprintf("/v1/window?x1=%s&y1=%s&x2=%s&y2=%s&t1=%s&t2=%s",
		fmtF(wq.Rect.MinX), fmtF(wq.Rect.MinY), fmtF(wq.Rect.MaxX), fmtF(wq.Rect.MaxY),
		fmtF(wq.T1), fmtF(wq.T2))
	status, hdr, body, err := r.get(path, "")
	if err != nil {
		r.violate("tick %d window: %v", i, err)
		return
	}
	r.verdict.Queries++
	if status != http.StatusOK {
		r.violate("tick %d window: status %d (%s)", i, status, body)
		return
	}
	r.checkEpochHeader(fmt.Sprintf("tick %d window", i), hdr)
	var resp windowResp
	if err := json.Unmarshal(body, &resp); err != nil {
		r.violate("tick %d window: bad body: %v", i, err)
		return
	}
	want := r.oracle.window(wq.Rect, wq.T1, wq.T2)
	if resp.Total != len(want) {
		r.violate("tick %d window %s: total %d, oracle expects %d", i, path, resp.Total, len(want))
	}
	if d := diffIDs(resp.IDs, want); d != "" {
		r.violate("tick %d window %s: %s", i, path, d)
	}
	if revisit {
		et := hdr.Get("ETag")
		if et == "" {
			r.violate("tick %d window: response has no ETag", i)
			return
		}
		st2, hdr2, _, err := r.get(path, et)
		if err != nil {
			r.violate("tick %d window revisit: %v", i, err)
			return
		}
		r.verdict.Queries++
		if st2 != http.StatusNotModified {
			r.violate("tick %d window revisit: status %d, want 304", i, st2)
		}
		if hdr2.Get("ETag") != et {
			r.violate("tick %d window revisit: ETag %q, want %q", i, hdr2.Get("ETag"), et)
		}
		r.checkEpochHeader(fmt.Sprintf("tick %d window revisit", i), hdr2)
	}
}

// checkAtInstant cross-checks one atinstant query.
func (r *run) checkAtInstant(i int, t float64) {
	path := "/v1/atinstant?t=" + fmtF(t)
	status, hdr, body, err := r.get(path, "")
	if err != nil {
		r.violate("tick %d atinstant: %v", i, err)
		return
	}
	r.verdict.Queries++
	if status != http.StatusOK {
		r.violate("tick %d atinstant: status %d (%s)", i, status, body)
		return
	}
	r.checkEpochHeader(fmt.Sprintf("tick %d atinstant", i), hdr)
	var resp atInstantResp
	if err := json.Unmarshal(body, &resp); err != nil {
		r.violate("tick %d atinstant: bad body: %v", i, err)
		return
	}
	if resp.T != t {
		r.violate("tick %d atinstant: echoed t %s, want %s", i, fmtF(resp.T), fmtF(t))
	}
	if d := diffPositions(resp.Positions, r.oracle.atInstant(t)); d != "" {
		r.violate("tick %d atinstant t=%s: %s", i, fmtF(t), d)
	}
}

// checkNearby cross-checks one nearby query, order and all.
func (r *run) checkNearby(i int, q workload.NearbyQuery) {
	path := fmt.Sprintf("/v1/nearby?x=%s&y=%s&t=%s", fmtF(q.X), fmtF(q.Y), fmtF(q.T))
	if q.K > 0 {
		path += "&k=" + strconv.Itoa(q.K)
	}
	if q.Radius >= 0 {
		path += "&radius=" + fmtF(q.Radius)
	}
	status, hdr, body, err := r.get(path, "")
	if err != nil {
		r.violate("tick %d nearby: %v", i, err)
		return
	}
	r.verdict.Queries++
	if status != http.StatusOK {
		r.violate("tick %d nearby: status %d (%s)", i, status, body)
		return
	}
	r.checkEpochHeader(fmt.Sprintf("tick %d nearby", i), hdr)
	var resp nearbyResp
	if err := json.Unmarshal(body, &resp); err != nil {
		r.violate("tick %d nearby: bad body: %v", i, err)
		return
	}
	want := r.oracle.nearest(q.X, q.Y, q.T, q.K, q.Radius)
	if resp.Count != len(resp.Results) || resp.K != q.K || resp.Radius != q.Radius {
		r.violate("tick %d nearby %s: echo mismatch %+v", i, path, resp)
	}
	if d := diffNearby(resp.Results, want); d != "" {
		r.violate("tick %d nearby %s: %s", i, path, d)
	}
}

// checkSQL issues the fixed catalog query; the catalog never changes,
// so the body must be byte-identical to the first answer.
func (r *run) checkSQL(i int) {
	path := "/v1/query?q=" + url.QueryEscape(simSQL)
	status, hdr, body, err := r.get(path, "")
	if err != nil {
		r.violate("tick %d query: %v", i, err)
		return
	}
	r.verdict.Queries++
	if status != http.StatusOK {
		r.violate("tick %d query: status %d (%s)", i, status, body)
		return
	}
	r.checkEpochHeader(fmt.Sprintf("tick %d query", i), hdr)
	if r.queryBaseline == nil {
		r.queryBaseline = body
		return
	}
	if !bytes.Equal(body, r.queryBaseline) {
		r.violate("tick %d query: body changed over a static catalog", i)
	}
}

// subscribeAll registers the standing queries through the HTTP API
// (before any observation, so every edge is a post-subscribe flip),
// mirrors each into the oracle, and starts one SSE reader per
// subscription.
func (r *run) subscribeAll(ids []string, wg *sync.WaitGroup) error {
	specs := workload.New(r.cfg.Seed + 3).Subscriptions(r.cfg.Subs, ids)
	for _, spec := range specs {
		payload := map[string]any{"predicate": spec.Kind}
		pred := live.Predicate{Kind: live.Kind(spec.Kind)}
		switch spec.Kind {
		case "inside":
			payload["object"] = spec.Object
			payload["region"] = map[string]float64{"x1": spec.Region.MinX, "y1": spec.Region.MinY, "x2": spec.Region.MaxX, "y2": spec.Region.MaxY}
			pred.Object = spec.Object
			pred.Region = spec.Region
		case "within":
			payload["object"] = spec.Object
			payload["x"], payload["y"], payload["radius"] = spec.X, spec.Y, spec.Radius
			pred.Object = spec.Object
			pred.X, pred.Y, pred.Radius = spec.X, spec.Y, spec.Radius
		case "appears":
			payload["region"] = map[string]float64{"x1": spec.Region.MinX, "y1": spec.Region.MinY, "x2": spec.Region.MaxX, "y2": spec.Region.MaxY}
			pred.Region = spec.Region
		}
		body, _ := json.Marshal(payload)
		resp, err := r.client.Post(r.ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("sim: subscribe: %w", err)
		}
		var sr subscribeResp
		derr := json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("sim: subscribe: status %d (%v)", resp.StatusCode, derr)
		}
		r.oracle.addSub(sr.SubscriptionID, pred)
		r.logf("subscribe %s %s", sr.SubscriptionID, pred)

		rd := &sseReader{url: r.ts.URL + sr.EventsURL}
		r.readers = append(r.readers, rd)
		wg.Add(1)
		go func() { // moguard: bounded the stream ends with a bye frame on registry close; a dead listener fails the GET
			defer wg.Done()
			for !rd.streamOnce(r.client) {
				// Reconnect after an injected cut; the subscription survives.
			}
		}()
	}
	return nil
}

// deliveryBarrier waits until the registry has pushed every expected
// event (Info.Seq), the SSE handlers have taken them all (Buffered 0),
// and — when no stream cuts were injected — the readers have collected
// them all. Dropped must stay zero throughout: the ring never overflows
// at simulator scale.
func (r *run) deliveryBarrier(tolerant bool) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		lagging := ""
		for k, s := range r.oracle.subs {
			status, _, body, err := r.get("/v1/subscribe/"+s.id, "")
			if err != nil || status != http.StatusOK {
				lagging = fmt.Sprintf("sub %s: info status %d err %v", s.id, status, err)
				break
			}
			var info live.Info
			if err := json.Unmarshal(body, &info); err != nil {
				lagging = fmt.Sprintf("sub %s: bad info: %v", s.id, err)
				break
			}
			if info.Dropped != 0 {
				r.violate("sub %s: %d events dropped from the delivery ring", s.id, info.Dropped)
				return
			}
			if info.Seq != s.seq || info.Buffered != 0 {
				lagging = fmt.Sprintf("sub %s: seq %d/%d buffered %d", s.id, info.Seq, s.seq, info.Buffered)
				break
			}
			if !tolerant && r.readers[k].count() != len(s.expected) {
				lagging = fmt.Sprintf("sub %s: reader has %d of %d events", s.id, r.readers[k].count(), len(s.expected))
				break
			}
		}
		if lagging == "" {
			break
		}
		if time.Now().After(deadline) {
			r.violate("delivery barrier timed out: %s", lagging)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	if tolerant {
		// Buffered 0 means taken, not yet necessarily read by the client;
		// give in-flight writes a moment to land before comparing.
		time.Sleep(50 * time.Millisecond)
	}
}

// checkEvents compares every subscription's delivered stream against
// the oracle's expected sequence.
func (r *run) checkEvents(tolerant bool) {
	for k, s := range r.oracle.subs {
		got := r.readers[k].snapshot()
		var d string
		if tolerant {
			d = diffEventsTolerant(s.id, got, s.expected)
		} else {
			d = diffEventsExact(s.id, got, s.expected)
		}
		if d != "" {
			r.violate("%s", d)
		}
		r.logf("events %s expected=%d", s.id, len(s.expected))
	}
}

// sseReader collects one subscription's delivered events across
// however many connections the chaos schedule forces it through.
type sseReader struct {
	url string // moguard: immutable

	mu     sync.Mutex
	events []live.Event // moguard: guarded by mu
}

func (rd *sseReader) count() int {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return len(rd.events)
}

func (rd *sseReader) snapshot() []live.Event {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	out := make([]live.Event, len(rd.events))
	copy(out, rd.events)
	return out
}

// streamOnce consumes one SSE connection. It reports true when the
// stream ended for good — a bye frame (unsubscribe or registry close)
// or a failed GET (listener gone) — and false when the connection died
// mid-stream (an injected cut) and the caller should reconnect.
func (rd *sseReader) streamOnce(client *http.Client) (done bool) {
	resp, err := client.Get(rd.url)
	if err != nil {
		return true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return true
	}
	sc := bufio.NewScanner(resp.Body)
	var evType, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch evType {
			case "enter", "leave":
				var e live.Event
				if json.Unmarshal([]byte(data), &e) == nil {
					rd.mu.Lock()
					rd.events = append(rd.events, e)
					rd.mu.Unlock()
				}
			case "bye":
				return true
			}
			evType, data = "", ""
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment.
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return false
}
