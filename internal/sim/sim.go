// Package sim is the deterministic fleet simulator and chaos harness
// (DESIGN.md §13): seeded fleets of delivery trucks, flights and
// drifting storms step through their motion models and stream
// observations through the real HTTP ingest API, while clients issue
// the full query mix — window, atinstant, nearby, SQL, and standing
// subscriptions over SSE — and an invariant checker cross-checks every
// response against an offline ground-truth oracle built from the same
// seed. A chaos profile flips failpoints mid-run, so the harness proves
// the degraded-mode contract end to end: reads keep serving the last
// published epoch, writes surface 503 degraded and recover after the
// probe, streams never wedge, and no invariant is ever violated.
//
// Everything the simulator decides — motion, query mix, chaos schedule,
// the oracle's expected answers and events — is a pure function of the
// seed and the tick count, so one run's verdict log reproduces
// byte-identically on the next. The wall clock only paces ticks and
// times out waits; it never reaches a logged fact.
package sim

import (
	"time"
)

// Config describes one simulator run. The zero value of every tuning
// field gets a default; Seed and Ticks are the identity of a run — the
// same (Config, build) pair reproduces the identical verdict log.
type Config struct {
	// Seed drives every random decision: fleet motion, query mix,
	// subscription placement, and the fault injector. Default 1.
	Seed int64
	// Ticks is the number of simulation steps. Default 60.
	Ticks int
	// TickDT is the model-time distance between observations; position
	// timestamps are tick*TickDT. Default 1.
	TickDT float64

	// Fleet sizes. Defaults: 12 trucks, 6 flights, 3 storms.
	Trucks  int
	Flights int
	Storms  int

	// Subs is the number of standing subscriptions registered before the
	// first observation (so no event can predate its subscription).
	// Default 8.
	Subs int
	// WindowQ, InstantQ and NearbyQ are the number of window, atinstant
	// and nearby queries issued per tick. Default 3 each.
	WindowQ  int
	InstantQ int
	NearbyQ  int

	// Profile is the chaos schedule; nil means ProfileNone (no faults).
	Profile *Profile

	// TickPeriod paces ticks against the wall clock when Paced is set —
	// an overrunning tick is never slept for. Pacing affects only wall
	// time, never the verdict log. Default 50ms.
	Paced      bool
	TickPeriod time.Duration
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ticks == 0 {
		c.Ticks = 60
	}
	if c.TickDT == 0 {
		c.TickDT = 1
	}
	if c.Trucks == 0 && c.Flights == 0 && c.Storms == 0 {
		c.Trucks, c.Flights, c.Storms = 12, 6, 3
	}
	if c.Subs == 0 {
		c.Subs = 8
	}
	if c.WindowQ == 0 {
		c.WindowQ = 3
	}
	if c.InstantQ == 0 {
		c.InstantQ = 3
	}
	if c.NearbyQ == 0 {
		c.NearbyQ = 3
	}
	if c.Profile == nil {
		c.Profile = ProfileNone()
	}
	if c.TickPeriod == 0 {
		c.TickPeriod = 50 * time.Millisecond
	}
	return c
}

// objects returns the total fleet size.
func (c Config) objects() int { return c.Trucks + c.Flights + c.Storms }
