package sim

import (
	"fmt"
	"math"
	"math/rand"

	"movingdb/internal/geom"
	"movingdb/internal/ingest"
	"movingdb/internal/workload"
)

// The fleet motion models. Each step advances every object by one tick
// and emits one observation per object, in a fixed order (trucks, then
// flights, then storms, each by index), driven by one seeded RNG that
// is only ever touched from the sequential tick loop — the whole
// trajectory set is a pure function of (seed, tick), which is what lets
// the oracle rebuild ground truth offline.

// gridStep is the road-grid spacing of the truck fleet: trucks drive
// node to node on the lattice {0, 50, 100, ...}².
const gridStep = 50.0

// truck drives along grid edges: it heads for an adjacent lattice node
// at a per-truck speed and picks a fresh neighbour on arrival.
type truck struct {
	pos    geom.Point
	target geom.Point
	speed  float64 // world units per model-time unit
}

// flight flies straight airport-to-airport legs and picks a new
// destination on arrival — the great-circle-ish shape of the paper's
// planes example flattened onto the world square.
type flight struct {
	pos    geom.Point
	target geom.Point
	speed  float64
}

// storm drifts: its velocity random-walks a little each tick and
// reflects off the world border.
type storm struct {
	pos geom.Point
	vel geom.Point
}

// fleet is the whole simulated population plus the RNG driving it.
// Only the sequential tick loop touches a fleet, so it needs no lock.
type fleet struct {
	rng      *rand.Rand
	trucks   []truck
	flights  []flight
	storms   []storm
	airports []workload.Airport
	dt       float64
	ids      []string // observation order: trucks, flights, storms
}

// newFleet places the population deterministically from the seed.
func newFleet(cfg Config) *fleet {
	f := &fleet{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		airports: workload.DefaultAirports(),
		dt:       cfg.TickDT,
	}
	nodes := int(workload.WorldSize/gridStep) + 1
	for i := 0; i < cfg.Trucks; i++ {
		node := geom.Pt(float64(f.rng.Intn(nodes))*gridStep, float64(f.rng.Intn(nodes))*gridStep)
		t := truck{pos: node, speed: 4 + f.rng.Float64()*8}
		t.target = f.neighbour(node)
		f.trucks = append(f.trucks, t)
		f.ids = append(f.ids, fmt.Sprintf("truck%03d", i))
	}
	for i := 0; i < cfg.Flights; i++ {
		from := f.airports[f.rng.Intn(len(f.airports))]
		fl := flight{pos: from.Pos, speed: 8 + f.rng.Float64()*8}
		fl.target = f.destination(from.Pos)
		f.flights = append(f.flights, fl)
		f.ids = append(f.ids, fmt.Sprintf("fl%03d", i))
	}
	for i := 0; i < cfg.Storms; i++ {
		f.storms = append(f.storms, storm{
			pos: geom.Pt(f.rng.Float64()*workload.WorldSize, f.rng.Float64()*workload.WorldSize),
			vel: geom.Pt((f.rng.Float64()-0.5)*8, (f.rng.Float64()-0.5)*8),
		})
		f.ids = append(f.ids, fmt.Sprintf("storm%02d", i))
	}
	return f
}

// neighbour picks a random adjacent lattice node, staying on the grid.
func (f *fleet) neighbour(node geom.Point) geom.Point {
	for {
		var next geom.Point
		switch f.rng.Intn(4) {
		case 0:
			next = geom.Pt(node.X+gridStep, node.Y)
		case 1:
			next = geom.Pt(node.X-gridStep, node.Y)
		case 2:
			next = geom.Pt(node.X, node.Y+gridStep)
		default:
			next = geom.Pt(node.X, node.Y-gridStep)
		}
		if next.X >= 0 && next.X <= workload.WorldSize && next.Y >= 0 && next.Y <= workload.WorldSize {
			return next
		}
	}
}

// destination picks an airport other than the one at from.
func (f *fleet) destination(from geom.Point) geom.Point {
	for {
		a := f.airports[f.rng.Intn(len(f.airports))]
		if a.Pos != from {
			return a.Pos
		}
	}
}

// advance moves a point toward target by speed*dt, reporting the new
// position and whether the target was reached this step.
func advance(pos, target geom.Point, dist float64) (geom.Point, bool) {
	d := target.Sub(pos)
	n := math.Hypot(d.X, d.Y)
	if n <= dist {
		return target, true
	}
	return pos.Add(d.Scale(dist / n)), false
}

// step advances the whole population by one tick and returns the
// observation batch for model time t, in the fixed fleet order.
func (f *fleet) step(t float64) []ingest.Observation {
	out := make([]ingest.Observation, 0, len(f.ids))
	k := 0
	for i := range f.trucks {
		tr := &f.trucks[i]
		var arrived bool
		tr.pos, arrived = advance(tr.pos, tr.target, tr.speed*f.dt)
		if arrived {
			tr.target = f.neighbour(tr.pos)
		}
		out = append(out, ingest.Observation{ObjectID: f.ids[k], T: t, X: tr.pos.X, Y: tr.pos.Y})
		k++
	}
	for i := range f.flights {
		fl := &f.flights[i]
		var arrived bool
		fl.pos, arrived = advance(fl.pos, fl.target, fl.speed*f.dt)
		if arrived {
			fl.target = f.destination(fl.pos)
		}
		out = append(out, ingest.Observation{ObjectID: f.ids[k], T: t, X: fl.pos.X, Y: fl.pos.Y})
		k++
	}
	for i := range f.storms {
		st := &f.storms[i]
		st.vel = geom.Pt(st.vel.X+(f.rng.Float64()-0.5)*2, st.vel.Y+(f.rng.Float64()-0.5)*2)
		st.pos = st.pos.Add(st.vel.Scale(f.dt))
		// Reflect off the world border, reversing the drift component.
		if st.pos.X < 0 || st.pos.X > workload.WorldSize {
			st.vel.X = -st.vel.X
			st.pos.X = reflectCoord(st.pos.X)
		}
		if st.pos.Y < 0 || st.pos.Y > workload.WorldSize {
			st.vel.Y = -st.vel.Y
			st.pos.Y = reflectCoord(st.pos.Y)
		}
		out = append(out, ingest.Observation{ObjectID: f.ids[k], T: t, X: st.pos.X, Y: st.pos.Y})
		k++
	}
	return out
}

// reflectCoord folds a coordinate back into [0, WorldSize].
func reflectCoord(x float64) float64 {
	for x < 0 || x > workload.WorldSize {
		if x < 0 {
			x = -x
		}
		if x > workload.WorldSize {
			x = 2*workload.WorldSize - x
		}
	}
	return x
}
