package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/obs"
	"movingdb/internal/server"
	"movingdb/internal/storage"
	"movingdb/internal/workload"
)

// Capacity mode: how many objects × queries per second one box
// sustains through the real HTTP stack. Unlike Run it is paced by the
// wall clock and measures latency, so it makes no determinism claims —
// it exists to produce BENCH_PR8.json, not a verdict. No faults, no
// oracle: correctness is Run's job.

// CapacityReport is the measured outcome of one capacity run.
type CapacityReport struct {
	Objects     int     `json:"objects"`
	DurationSec float64 `json:"duration_sec"`

	Ticks        int     `json:"ticks"`
	Observations int     `json:"observations"`
	ObsPerSec    float64 `json:"obs_per_sec"`
	Queries      int     `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	Epochs       uint64  `json:"epochs"`

	IngestP50Ms float64 `json:"ingest_p50_ms"`
	IngestP95Ms float64 `json:"ingest_p95_ms"`
	IngestP99Ms float64 `json:"ingest_p99_ms"`
	QueryP50Ms  float64 `json:"query_p50_ms"`
	QueryP95Ms  float64 `json:"query_p95_ms"`
	QueryP99Ms  float64 `json:"query_p99_ms"`

	// Verdict is "sustained" when every request in the run succeeded,
	// otherwise it names the first failure.
	Verdict string `json:"verdict"`
}

// Capacity drives the stack flat-out for the given duration and
// reports throughput and latency percentiles.
func Capacity(cfg Config, duration time.Duration) (*CapacityReport, error) {
	cfg = cfg.withDefaults()
	metrics := obs.New(0)
	reg := live.NewRegistry(live.Config{BufferCap: 4096, QueueCap: 65536, Metrics: metrics})
	pipe, err := ingest.Open(ingest.Config{
		Log:       storage.NewPageStore(),
		FlushSize: 1 << 20,
		MaxAge:    time.Hour,
		MaxQueued: 1 << 20,
		Metrics:   metrics,
		OnPublish: reg.Notify,
	})
	if err != nil {
		reg.Close()
		return nil, err
	}
	srv, err := server.New(server.Config{Ingest: pipe, Live: reg, Metrics: metrics})
	if err != nil {
		reg.Close()
		pipe.Close()
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		reg.Close()
		ts.Close()
		pipe.Close()
	}()
	client := ts.Client()

	fl := newFleet(cfg)
	qg := workload.New(cfg.Seed + 2)
	rep := &CapacityReport{Objects: cfg.objects(), DurationSec: duration.Seconds(), Verdict: "sustained"}
	var ingestLat, queryLat []float64

	fail := func(format string, args ...any) {
		if rep.Verdict == "sustained" {
			rep.Verdict = fmt.Sprintf(format, args...)
		}
	}
	timedGet := func(path string) {
		start := time.Now()
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			fail("query failed: %v", err)
			return
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		resp.Body.Close()
		queryLat = append(queryLat, float64(time.Since(start).Nanoseconds())/1e6)
		rep.Queries++
		if resp.StatusCode != http.StatusOK {
			fail("query %s: status %d", path, resp.StatusCode)
		}
	}

	deadline := time.Now().Add(duration)
	for tick := 1; time.Now().Before(deadline); tick++ {
		t := float64(tick) * cfg.TickDT
		batch := fl.step(t)
		body, _ := json.Marshal(batch)
		start := time.Now()
		resp, err := client.Post(ts.URL+"/v1/ingest?sync=1", "application/json", bytes.NewReader(body))
		if err != nil {
			fail("ingest failed: %v", err)
			break
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		resp.Body.Close()
		ingestLat = append(ingestLat, float64(time.Since(start).Nanoseconds())/1e6)
		if resp.StatusCode != http.StatusAccepted {
			fail("ingest tick %d: status %d", tick, resp.StatusCode)
			break
		}
		rep.Ticks = tick
		rep.Observations += len(batch)

		for _, wq := range qg.WindowQueries(cfg.WindowQ, 0, t) {
			timedGet(fmt.Sprintf("/v1/window?x1=%s&y1=%s&x2=%s&y2=%s&t1=%s&t2=%s",
				fmtF(wq.Rect.MinX), fmtF(wq.Rect.MinY), fmtF(wq.Rect.MaxX), fmtF(wq.Rect.MaxY),
				fmtF(wq.T1), fmtF(wq.T2)))
		}
		for _, qt := range qg.Instants(cfg.InstantQ, 0, t) {
			timedGet("/v1/atinstant?t=" + fmtF(qt))
		}
		for _, nq := range qg.NearbyQueries(cfg.NearbyQ, 0, t, 10) {
			path := fmt.Sprintf("/v1/nearby?x=%s&y=%s&t=%s", fmtF(nq.X), fmtF(nq.Y), fmtF(nq.T))
			if nq.K > 0 {
				path += fmt.Sprintf("&k=%d", nq.K)
			}
			if nq.Radius >= 0 {
				path += "&radius=" + fmtF(nq.Radius)
			}
			timedGet(path)
		}
	}

	elapsed := rep.DurationSec
	if elapsed > 0 {
		rep.ObsPerSec = float64(rep.Observations) / elapsed
		rep.QueriesPerSec = float64(rep.Queries) / elapsed
	}
	rep.Epochs = pipe.Epoch().Seq()
	rep.IngestP50Ms, rep.IngestP95Ms, rep.IngestP99Ms = percentiles(ingestLat)
	rep.QueryP50Ms, rep.QueryP95Ms, rep.QueryP99Ms = percentiles(queryLat)
	return rep, nil
}

// percentiles returns the 50th, 95th and 99th percentile of the sample
// (nearest-rank), zero for an empty sample.
func percentiles(samples []float64) (p50, p95, p99 float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}
