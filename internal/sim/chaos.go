package sim

import (
	"fmt"
	"sort"
	"strings"

	"movingdb/internal/fault"
)

// Chaos profiles: a named schedule of failpoint flips expressed as
// fractions of the run, so the same profile scales from a 40-tick unit
// test to a 30-second acceptance run. Every referenced site is checked
// against the static failpoint catalog up front — a profile naming a
// site that no longer exists is a startup error, never a silently
// armed no-op.
//
// Profiles deliberately avoid probabilistic specs (Spec.Prob): the
// injector's RNG is shared across sites and hit concurrently by the
// WAL retry loop and the hook sites, so probabilistic trip decisions
// would not replay tick-for-tick. Windowed persistent faults and
// Times-bounded trips keep every outcome deterministic.

// Flip is one scheduled failpoint change: at the tick nearest Frac of
// the run, Site is armed with Spec (or cleared when Spec is nil).
type Flip struct {
	Frac float64
	Site string
	Spec *fault.Spec
}

// Profile is a named chaos schedule.
type Profile struct {
	Name  string
	Desc  string
	Flips []Flip
}

// spec is shorthand for a persistent-error spec pointer.
func errSpec() *fault.Spec { return &fault.Spec{Mode: fault.ModeError} }

// ProfileNone is the empty schedule: a plain correctness run.
func ProfileNone() *Profile { return &Profile{Name: "none", Desc: "no faults; pure invariant run"} }

// Profiles returns the built-in chaos profiles, sorted by name.
func Profiles() []*Profile {
	ps := []*Profile{
		ProfileNone(),
		{
			Name: "wal-err",
			Desc: "WAL appends fail persistently for the middle quarter of the run: 503 degraded, probe recovery",
			Flips: []Flip{
				{Frac: 0.25, Site: "wal.put", Spec: errSpec()},
				{Frac: 0.50, Site: "wal.put"},
			},
		},
		{
			Name: "wal-torn",
			Desc: "WAL appends tear mid-page for a window: the ack path must refuse and degrade, reads unaffected",
			Flips: []Flip{
				{Frac: 0.30, Site: "wal.put", Spec: &fault.Spec{Mode: fault.ModeTorn}},
				{Frac: 0.55, Site: "wal.put"},
			},
		},
		{
			Name: "publish-skip",
			Desc: "epoch publishes defer for a window: writes ack but stay invisible until the first clean publish",
			Flips: []Flip{
				{Frac: 0.35, Site: "epoch.publish", Spec: errSpec()},
				{Frac: 0.55, Site: "epoch.publish"},
			},
		},
		{
			Name: "notify-wedge",
			Desc: "standing-query wake-ups are lost for a window: delivery defers, nothing is dropped or reordered",
			Flips: []Flip{
				{Frac: 0.40, Site: "live.notify", Spec: errSpec()},
				{Frac: 0.60, Site: "live.notify"},
			},
		},
		{
			Name: "sse-cut",
			Desc: "two SSE streams break mid-flight: clients reconnect, subscriptions survive, order is preserved",
			Flips: []Flip{
				{Frac: 0.45, Site: "sse.write", Spec: &fault.Spec{Mode: fault.ModeError, Times: 2}},
			},
		},
		{
			Name: "mixed",
			Desc: "the acceptance gauntlet: WAL outage, deferred publishes, lost wake-ups and stream cuts in sequence",
			Flips: []Flip{
				{Frac: 0.15, Site: "wal.put", Spec: errSpec()},
				{Frac: 0.30, Site: "wal.put"},
				{Frac: 0.40, Site: "epoch.publish", Spec: errSpec()},
				{Frac: 0.50, Site: "epoch.publish"},
				{Frac: 0.55, Site: "live.notify", Spec: errSpec()},
				{Frac: 0.65, Site: "live.notify"},
				{Frac: 0.70, Site: "sse.write", Spec: &fault.Spec{Mode: fault.ModeError, Times: 2}},
			},
		},
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// LookupProfile resolves a profile by name.
func LookupProfile(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0)
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	return nil, fmt.Errorf("sim: unknown chaos profile %q (have: %s)", name, strings.Join(names, ", "))
}

// Validate rejects schedules referencing unknown failpoint sites or
// fractions outside [0, 1) — the stale-site startup error the catalog
// exists for.
func (p *Profile) Validate() error {
	for _, fl := range p.Flips {
		if !fault.KnownSite(fl.Site) {
			return fmt.Errorf("sim: chaos profile %q references unknown failpoint site %q (run mosim -chaos=list for the catalog)", p.Name, fl.Site)
		}
		if fl.Frac < 0 || fl.Frac >= 1 {
			return fmt.Errorf("sim: chaos profile %q flips %s at fraction %g, want [0, 1)", p.Name, fl.Site, fl.Frac)
		}
		if fl.Spec == nil {
			continue
		}
		if fl.Spec.Prob != 0 {
			return fmt.Errorf("sim: chaos profile %q sets Prob on %s; probabilistic trips are not replayable under concurrent hits", p.Name, fl.Site)
		}
		if fl.Spec.Mode == fault.ModeLatency {
			return fmt.Errorf("sim: chaos profile %q sets latency mode on %s; latency outcomes are wall-clock facts and break the verdict's determinism", p.Name, fl.Site)
		}
		if fl.Spec.Times != 0 && fl.Site != "sse.write" {
			return fmt.Errorf("sim: chaos profile %q bounds %s with Times; the oracle models non-SSE faults as armed/cleared windows, so only sse.write may self-expire", p.Name, fl.Site)
		}
	}
	return nil
}

// NeedsHooks reports whether the schedule arms any hook site — a site
// compiled in only under -tags=faultinject. WAL sites inject through
// the pipeline's LogIO seam and work in every build.
func (p *Profile) NeedsHooks() bool {
	for _, fl := range p.Flips {
		if !strings.HasPrefix(fl.Site, "wal.") {
			return true
		}
	}
	return false
}

// uses reports whether the schedule ever arms the named site.
func (p *Profile) uses(site string) bool {
	for _, fl := range p.Flips {
		if fl.Site == site && fl.Spec != nil {
			return true
		}
	}
	return false
}

// schedule maps the fractional flips onto concrete ticks of an n-tick
// run, preserving flip order within a tick.
func (p *Profile) schedule(n int) map[int][]Flip {
	out := map[int][]Flip{}
	for _, fl := range p.Flips {
		tick := 1 + int(fl.Frac*float64(n))
		if tick > n {
			tick = n
		}
		out[tick] = append(out[tick], fl)
	}
	return out
}
