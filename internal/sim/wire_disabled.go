//go:build !faultinject

package sim

import "movingdb/internal/fault"

// hooksEnabled reports whether the hook failpoint sites (epoch.publish,
// live.notify, sse.write) are compiled into this binary. In production
// builds they do not exist; only the wal.* sites — injected through the
// pipeline's LogIO seam — are available, and Run refuses profiles that
// need more.
const hooksEnabled = false

// armFailpoints is a no-op without the faultinject tag: there are no
// hooks to arm.
func armFailpoints(*fault.Injector) {}
