//go:build faultinject

package sim

import (
	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/server"
)

// hooksEnabled reports whether the hook failpoint sites (epoch.publish,
// live.notify, sse.write) are compiled into this binary.
const hooksEnabled = true

// armFailpoints points every hook-bearing package at the run's
// injector. Passing nil disarms them — Run defers that, so injectors
// never leak across runs in one process.
func armFailpoints(in *fault.Injector) {
	ingest.SetFailpointInjector(in)
	live.SetFailpointInjector(in)
	server.SetFailpointInjector(in)
}
