package sim

import (
	"fmt"
	"hash/fnv"
)

// Verdict is the outcome of one simulator run — every field is a
// deterministic function of (Config, build), so two runs with the same
// seed must produce byte-identical verdicts (the determinism test and
// the acceptance gate both diff exactly this).
type Verdict struct {
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	Ticks   int    `json:"ticks"`
	Objects int    `json:"objects"`

	// Epochs is the number of epoch publishes the run expected (and
	// verified via X-MO-Epoch); Accepted and Rejected503 partition the
	// ingest ticks by outcome.
	Epochs      uint64 `json:"epochs"`
	Accepted    int    `json:"accepted_ticks"`
	Rejected503 int    `json:"rejected_503_ticks"`
	// DegradeCycles counts completed degrade→probe→recover cycles of the
	// health state machine, observed through /v1/healthz.
	DegradeCycles int `json:"degrade_cycles"`

	// Queries is the total number of checked read requests (window,
	// atinstant, nearby, SQL, healthz, ETag revisits).
	Queries int `json:"queries"`
	// ExpectedEvents is the total standing-query event count the oracle
	// derived; DeliveredEvents is what the SSE readers collected (equal
	// unless the profile cuts streams, in which case it may be lower —
	// never higher, never out of order).
	ExpectedEvents  int `json:"expected_events"`
	DeliveredEvents int `json:"delivered_events"`

	// Violations lists every invariant breach, in discovery order. An
	// empty list is the pass condition.
	Violations []string `json:"violations"`

	// LogHash is the FNV-64a hash of the event log, the compact identity
	// two runs are compared by.
	LogHash string `json:"log_hash"`
}

// Passed reports whether the run satisfied every invariant.
func (v *Verdict) Passed() bool { return len(v.Violations) == 0 }

// hashLog folds the log lines into the verdict's LogHash.
func hashLog(lines []string) string {
	h := fnv.New64a()
	for _, l := range lines {
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
