// Package moving implements the paper's primary contribution as a
// library: the temporal ("moving") data types in sliced representation —
// MBool, MInt, MString (mapping(const)), MReal (mapping(ureal)), MPoint
// (mapping(upoint)), MPoints, MLine and MRegion — together with the
// operations of the abstract model that the paper names: projections
// into domain and range (deftime, trajectory, ...), interaction with
// time (atinstant, atperiods, initial, final), lifted predicates and
// numeric operations (inside, distance, speed, area, ...), and the
// aggregations atmin/atmax. Binary lifted operations traverse the
// refinement partition of the two unit sequences (Figure 8, Section 5.2)
// and apply a unit-pair kernel per element.
package moving

import (
	"movingdb/internal/base"
	"movingdb/internal/mapping"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// MBool is the moving bool type: mapping(const(bool)).
type MBool struct {
	M mapping.Mapping[units.UBool]
}

// NewMBool validates units and builds a moving bool.
func NewMBool(us ...units.UBool) (MBool, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MBool{}, err
	}
	return MBool{M: m}, nil
}

// MustMBool is like NewMBool but panics on invalid input.
func MustMBool(us ...units.UBool) MBool {
	m, err := NewMBool(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// AtInstant returns the value at instant t (⊥ when undefined).
func (b MBool) AtInstant(t temporal.Instant) base.BoolVal {
	u, ok := b.M.UnitAt(t)
	if !ok {
		return base.Undef[bool]()
	}
	return base.Def(u.V)
}

// DefTime returns the time domain of the moving bool.
func (b MBool) DefTime() temporal.Periods { return b.M.DefTime() }

// AtPeriods restricts the moving bool to the given periods.
func (b MBool) AtPeriods(p temporal.Periods) MBool { return MBool{M: b.M.AtPeriods(p)} }

// WhenTrue returns the periods during which the value is true — the
// standard way to turn a lifted predicate back into a time domain
// restriction.
func (b MBool) WhenTrue() temporal.Periods {
	var ivs []temporal.Interval
	for _, u := range b.M.Units() {
		if u.V {
			ivs = append(ivs, u.Iv)
		}
	}
	return temporal.MustPeriods(ivs...)
}

// Not returns the pointwise negation.
func (b MBool) Not() MBool {
	out := make([]units.UBool, 0, b.M.Len())
	for _, u := range b.M.Units() {
		out = append(out, units.UBool{Iv: u.Iv, V: !u.V})
	}
	return MBool{M: mapping.FromOrdered(out)}
}

// And returns the pointwise conjunction, defined where both operands are
// defined.
func (b MBool) And(c MBool) MBool {
	return liftBoolOp(b, c, func(x, y bool) bool { return x && y })
}

// Or returns the pointwise disjunction, defined where both operands are
// defined.
func (b MBool) Or(c MBool) MBool {
	return liftBoolOp(b, c, func(x, y bool) bool { return x || y })
}

func liftBoolOp(b, c MBool, op func(x, y bool) bool) MBool {
	var bld mapping.Builder[units.UBool]
	bu, cu := b.M.Units(), c.M.Units()
	for _, ri := range temporal.Refine(b.M.Intervals(), c.M.Intervals()) {
		if ri.A < 0 || ri.B < 0 {
			continue
		}
		bld.Append(units.UBool{Iv: ri.Iv, V: op(bu[ri.A].V, cu[ri.B].V)})
	}
	return MBool{M: bld.MustBuild()}
}

// Initial returns the (instant, value) pair at the start of the
// definition time; ok is false for the empty moving bool.
func (b MBool) Initial() (base.Intime[bool], bool) {
	u, ok := b.M.InitialUnit()
	if !ok {
		return base.Intime[bool]{}, false
	}
	return base.Intime[bool]{Inst: u.Iv.Start, Val: u.V}, true
}

// Final returns the (instant, value) pair at the end of the definition
// time; ok is false for the empty moving bool.
func (b MBool) Final() (base.Intime[bool], bool) {
	u, ok := b.M.FinalUnit()
	if !ok {
		return base.Intime[bool]{}, false
	}
	return base.Intime[bool]{Inst: u.Iv.End, Val: u.V}, true
}

// String renders the moving bool.
func (b MBool) String() string { return b.M.String() }

// MInt is the moving int type: mapping(const(int)).
type MInt struct {
	M mapping.Mapping[units.UInt]
}

// NewMInt validates units and builds a moving int.
func NewMInt(us ...units.UInt) (MInt, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MInt{}, err
	}
	return MInt{M: m}, nil
}

// MustMInt is like NewMInt but panics on invalid input.
func MustMInt(us ...units.UInt) MInt {
	m, err := NewMInt(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// AtInstant returns the value at instant t (⊥ when undefined).
func (b MInt) AtInstant(t temporal.Instant) base.IntVal {
	u, ok := b.M.UnitAt(t)
	if !ok {
		return base.Undef[int64]()
	}
	return base.Def(u.V)
}

// DefTime returns the time domain.
func (b MInt) DefTime() temporal.Periods { return b.M.DefTime() }

// AtPeriods restricts the moving int to the given periods.
func (b MInt) AtPeriods(p temporal.Periods) MInt { return MInt{M: b.M.AtPeriods(p)} }

// String renders the moving int.
func (b MInt) String() string { return b.M.String() }

// MString is the moving string type: mapping(const(string)).
type MString struct {
	M mapping.Mapping[units.UString]
}

// NewMString validates units and builds a moving string.
func NewMString(us ...units.UString) (MString, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MString{}, err
	}
	return MString{M: m}, nil
}

// AtInstant returns the value at instant t (⊥ when undefined).
func (b MString) AtInstant(t temporal.Instant) base.StringVal {
	u, ok := b.M.UnitAt(t)
	if !ok {
		return base.Undef[string]()
	}
	return base.Def(u.V)
}

// DefTime returns the time domain.
func (b MString) DefTime() temporal.Periods { return b.M.DefTime() }

// AtPeriods restricts the moving string to the given periods.
func (b MString) AtPeriods(p temporal.Periods) MString { return MString{M: b.M.AtPeriods(p)} }

// String renders the moving string.
func (b MString) String() string { return b.M.String() }
