package moving

import (
	"movingdb/internal/geom"
	"movingdb/internal/mapping"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// MPoints is the moving points type: mapping(upoints) — a finite set of
// points moving together (e.g. a group of animals tracked jointly).
type MPoints struct {
	M mapping.Mapping[units.UPoints]
}

// NewMPoints validates units and builds a moving point set.
func NewMPoints(us ...units.UPoints) (MPoints, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MPoints{}, err
	}
	return MPoints{M: m}, nil
}

// MustMPoints is like NewMPoints but panics on invalid input.
func MustMPoints(us ...units.UPoints) MPoints {
	m, err := NewMPoints(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// AtInstant returns the point set at instant t; ok is false when
// undefined.
func (p MPoints) AtInstant(t temporal.Instant) (spatial.Points, bool) {
	u, ok := p.M.UnitAt(t)
	if !ok {
		return spatial.Points{}, false
	}
	return u.Eval(t), true
}

// DefTime returns the time domain.
func (p MPoints) DefTime() temporal.Periods { return p.M.DefTime() }

// AtPeriods restricts the moving point set to the given periods.
func (p MPoints) AtPeriods(pr temporal.Periods) MPoints { return MPoints{M: p.M.AtPeriods(pr)} }

// Trajectory returns the line parts of the spatial projection of all
// member points.
func (p MPoints) Trajectory() spatial.Line {
	var segs []geom.Segment
	for _, u := range p.M.Units() {
		for _, m := range u.Ms {
			a, b := m.Eval(u.Iv.Start), m.Eval(u.Iv.End)
			if a != b {
				if s, err := geom.NewSegment(a, b); err == nil {
					segs = append(segs, s)
				}
			}
		}
	}
	return spatial.MergeLine(segs...)
}

// String renders the moving point set.
func (p MPoints) String() string { return p.M.String() }

// MLine is the moving line type: mapping(uline) — e.g. an advancing
// front such as a fire line or a moving network fragment.
type MLine struct {
	M mapping.Mapping[units.ULine]
}

// NewMLine validates units and builds a moving line.
func NewMLine(us ...units.ULine) (MLine, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MLine{}, err
	}
	return MLine{M: m}, nil
}

// MustMLine is like NewMLine but panics on invalid input.
func MustMLine(us ...units.ULine) MLine {
	m, err := NewMLine(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// AtInstant returns the line value at instant t, with boundary cleanup
// at unit end points (merge-segs); ok is false when undefined.
func (l MLine) AtInstant(t temporal.Instant) (spatial.Line, bool) {
	u, ok := l.M.UnitAt(t)
	if !ok {
		return spatial.Line{}, false
	}
	return u.EvalAt(t)
}

// DefTime returns the time domain.
func (l MLine) DefTime() temporal.Periods { return l.M.DefTime() }

// AtPeriods restricts the moving line to the given periods.
func (l MLine) AtPeriods(pr temporal.Periods) MLine { return MLine{M: l.M.AtPeriods(pr)} }

// LengthAt returns the total segment length at instant t; ok is false
// when undefined.
func (l MLine) LengthAt(t temporal.Instant) (float64, bool) {
	line, ok := l.AtInstant(t)
	if !ok {
		return 0, false
	}
	return line.Length(), true
}

// String renders the moving line.
func (l MLine) String() string { return l.M.String() }
