package moving

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// This file is the ingestion path from recorded trajectories (e.g. GPS
// logs) into the sliced representation: a CSV reader for (t, x, y)
// observations and a Douglas–Peucker-style simplifier that reduces the
// number of units while bounding the spatial error — the standard
// preprocessing step before trajectories enter a moving objects
// database.

// ReadSamplesCSV reads observations from CSV data with rows "t,x,y"
// (header rows are skipped if the first field does not parse as a
// number). Samples must be in strictly increasing time order.
func ReadSamplesCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	var out []Sample
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("moving: csv line %d: %w", line+1, err)
		}
		line++
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("moving: csv line %d: bad time %q", line, rec[0])
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("moving: csv line %d: bad x %q", line, rec[1])
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("moving: csv line %d: bad y %q", line, rec[2])
		}
		out = append(out, Sample{T: temporal.Instant(t), P: geom.Pt(x, y)})
	}
	return out, nil
}

// SimplifySamples reduces a sample sequence with the Douglas–Peucker
// recursion applied in (x, y, t) space: a sample is dropped only if its
// position differs by less than eps from the linear interpolation of the
// retained neighbours at the same instant, so the simplified moving
// point deviates from the original by at most eps at every instant. The
// first and last samples are always kept.
func SimplifySamples(samples []Sample, eps float64) []Sample {
	if len(samples) <= 2 {
		return append([]Sample(nil), samples...)
	}
	keep := make([]bool, len(samples))
	keep[0], keep[len(samples)-1] = true, true
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		a, b := samples[lo], samples[hi]
		worst, at := 0.0, -1
		for i := lo + 1; i < hi; i++ {
			s := samples[i]
			// Interpolated position at s.T along the kept chord.
			frac := float64(s.T-a.T) / float64(b.T-a.T)
			interp := a.P.Add(b.P.Sub(a.P).Scale(frac))
			if d := interp.Dist(s.P); d > worst {
				worst, at = d, i
			}
		}
		if worst > eps {
			keep[at] = true
			rec(lo, at)
			rec(at, hi)
		}
	}
	rec(0, len(samples)-1)
	out := make([]Sample, 0, len(samples))
	for i, k := range keep {
		if k {
			out = append(out, samples[i])
		}
	}
	return out
}

// MPointFromCSV reads, optionally simplifies (eps > 0), and builds a
// moving point in one step.
func MPointFromCSV(r io.Reader, eps float64) (MPoint, error) {
	samples, err := ReadSamplesCSV(r)
	if err != nil {
		return MPoint{}, err
	}
	if eps > 0 {
		samples = SimplifySamples(samples, eps)
	}
	return MPointFromSamples(samples)
}
