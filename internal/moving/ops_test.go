package moving

import (
	"math"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

func TestLessThanPolyPoly(t *testing.T) {
	// t vs 10−t on [0,10]: r < s before t=5.
	r := MustMReal(units.NewUReal(iv(0, 10), 0, 1, 0, false))
	s := MustMReal(units.NewUReal(iv(0, 10), 0, -1, 10, false))
	lt, ok := r.LessThan(s)
	if !ok {
		t.Fatal("poly vs poly not comparable")
	}
	wt := lt.WhenTrue()
	if wt.Len() != 1 {
		t.Fatalf("WhenTrue = %v", wt)
	}
	got := wt.Intervals()[0]
	if got.Start != 0 || got.End != 5 || got.RC {
		t.Errorf("less interval = %v, want [0, 5)", got)
	}
}

func TestLessThanRootRoot(t *testing.T) {
	// Distances of two point pairs: the join idiom "when was p closer to
	// a than to b".
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0))
	a, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 0, 0))   // static at origin
	b, _ := MPointFromSamples(samplesPath(0, 10, 0, 10, 10, 0)) // static at (10,0)
	da := p.Distance(a)
	db := p.Distance(b)
	lt, ok := da.LessThan(db)
	if !ok {
		t.Fatal("root vs root not comparable")
	}
	wt := lt.WhenTrue()
	// p is closer to the origin before the midpoint x=5, i.e. t<5.
	if !wt.Contains(2) || wt.Contains(7) || wt.Contains(5) {
		t.Errorf("closer-to-a period = %v", wt)
	}
}

func TestLessThanRootConst(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0))
	q, _ := MPointFromSamples(samplesPath(0, 10, 0, 10, 0, 0))
	d := p.Distance(q)
	c := MustMReal(units.ConstUReal(iv(0, 10), 4))
	lt, ok := d.LessThan(c)
	if !ok {
		t.Fatal("root vs const not comparable")
	}
	// |10−2t| < 4 ⟺ 3 < t < 7.
	wt := lt.WhenTrue()
	if wt.Len() != 1 {
		t.Fatalf("WhenTrue = %v", wt)
	}
	got := wt.Intervals()[0]
	if got.Start != 3 || got.End != 7 {
		t.Errorf("interval = %v", got)
	}
	// Symmetric: const vs root.
	gt, ok := c.LessThan(d)
	if !ok {
		t.Fatal("const vs root not comparable")
	}
	if gt.WhenTrue().Contains(5) || !gt.WhenTrue().Contains(1) {
		t.Errorf("const < root = %v", gt.WhenTrue())
	}
	// Negative constant: distance is always greater.
	neg := MustMReal(units.ConstUReal(iv(0, 10), -1))
	lt2, ok := d.LessThan(neg)
	if !ok || lt2.Sometimes() {
		t.Error("distance < negative constant should never hold")
	}
	// Root vs non-constant polynomial: not closed.
	poly := MustMReal(units.NewUReal(iv(0, 10), 0, 1, 0, false))
	if _, ok := d.LessThan(poly); ok {
		t.Error("root vs linear polynomial should not be comparable")
	}
}

func TestDirection(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(
		0, 0, 0,
		10, 10, 0, // east
		20, 10, 10, // north
		30, 10, 10, // rest (no direction)
		40, 0, 0, // southwest
	))
	d := p.Direction()
	if got := d.AtInstant(5).MustGet(); got != 0 {
		t.Errorf("east = %v", got)
	}
	if got := d.AtInstant(15).MustGet(); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("north = %v", got)
	}
	if d.Present(25) {
		t.Error("direction defined while resting")
	}
	if got := d.AtInstant(35).MustGet(); math.Abs(got-(-3*math.Pi/4)) > 1e-12 {
		t.Errorf("southwest = %v", got)
	}
}

func TestTravelledDistanceVsLength(t *testing.T) {
	// Out and back: travelled 20, trajectory length 10.
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0, 20, 0, 0))
	if got := p.TravelledDistance(); math.Abs(got-20) > 1e-9 {
		t.Errorf("travelled = %v", got)
	}
	if got := p.Length(); got != 10 {
		t.Errorf("trajectory length = %v", got)
	}
}

func TestMPointsCount(t *testing.T) {
	a := units.MPoint{X0: 0, X1: 1}
	b := units.MPoint{X0: 0, X1: 1, Y0: 5}
	c := units.MPoint{X0: 9, Y0: 9}
	mp := MustMPoints(
		units.MustUPoints(rho(0, 5), a, b),
		units.MustUPoints(iv(5, 9), a, b, c),
	)
	cnt := mp.Count()
	if cnt.AtInstant(2).MustGet() != 2 || cnt.AtInstant(7).MustGet() != 3 {
		t.Errorf("count = %v", cnt)
	}
	if cnt.AtInstant(10).Defined() {
		t.Error("count defined beyond deftime")
	}
}

func TestMRegionInitialFinal(t *testing.T) {
	sq := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
	var mc units.MCycle
	for _, p := range sq {
		mc = append(mc, units.MPoint{X0: p.X, X1: 1, Y0: p.Y})
	}
	mr := MustMRegion(units.MustURegion(iv(0, 10), units.MFace{Outer: mc}))
	t0, r0, ok := mr.Initial()
	if !ok || t0 != 0 || !r0.ContainsPoint(geom.Pt(1, 1)) {
		t.Errorf("Initial = %v, %v, %v", t0, r0, ok)
	}
	t1, r1, ok := mr.Final()
	if !ok || t1 != 10 || !r1.ContainsPoint(geom.Pt(12, 2)) {
		t.Errorf("Final = %v, %v, %v", t1, r1, ok)
	}
	var empty MRegion
	if _, _, ok := empty.Initial(); ok {
		t.Error("empty Initial")
	}
}

func TestAtRegion(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0))
	zone := spatial.MustPolygonRegion(spatial.Ring(4, -1, 6, -1, 6, 1, 4, 1))
	at := p.AtRegion(zone)
	if !at.DefTime().Equal(temporal.MustPeriods(iv(4, 6))) {
		t.Errorf("AtRegion deftime = %v", at.DefTime())
	}
}

func TestMBoolAggregates(t *testing.T) {
	allTrue := MustMBool(units.UBool{Iv: iv(0, 5), V: true})
	mixed := MustMBool(units.UBool{Iv: rho(0, 2), V: true}, units.UBool{Iv: iv(2, 5), V: false})
	allFalse := MustMBool(units.UBool{Iv: iv(0, 5), V: false})
	var empty MBool

	if !allTrue.Always() || !allTrue.Sometimes() {
		t.Error("allTrue aggregates wrong")
	}
	if mixed.Always() || !mixed.Sometimes() {
		t.Error("mixed aggregates wrong")
	}
	if allFalse.Always() || allFalse.Sometimes() {
		t.Error("allFalse aggregates wrong")
	}
	if empty.Always() || empty.Sometimes() {
		t.Error("empty aggregates wrong")
	}
	if got := mixed.TrueDuration(); got != 2 {
		t.Errorf("TrueDuration = %v", got)
	}
}

func TestMRegionIntersects(t *testing.T) {
	sq := func(x, y, w float64) []geom.Point {
		return []geom.Point{geom.Pt(x, y), geom.Pt(x+w, y), geom.Pt(x+w, y+w), geom.Pt(x, y+w)}
	}
	translate := func(ring []geom.Point, vx, vy float64) units.MCycle {
		var mc units.MCycle
		for _, p := range ring {
			mc = append(mc, units.MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy})
		}
		return mc
	}
	// a spans x ∈ [t, 4+t]; b spans [20−t, 24−t]: they meet when
	// 4+t = 20−t → t=8 and separate when t = 24−t → t=12.
	a := MustMRegion(units.MustURegion(iv(0, 20), units.MFace{Outer: translate(sq(0, 0, 4), 1, 0)}))
	b := MustMRegion(units.MustURegion(iv(0, 20), units.MFace{Outer: translate(sq(20, 0, 4), -1, 0)}))
	ib := a.Intersects(b)
	wt := ib.WhenTrue()
	if wt.Len() != 1 {
		t.Fatalf("intersects = %v", wt)
	}
	got := wt.Intervals()[0]
	if math.Abs(float64(got.Start)-8) > 1e-9 || math.Abs(float64(got.End)-12) > 1e-9 {
		t.Errorf("intersect period = %v, want [8, 12]", got)
	}
	// Regions that never meet.
	c := MustMRegion(units.MustURegion(iv(0, 20), units.MFace{Outer: translate(sq(500, 500, 4), 0, 0)}))
	if a.Intersects(c).Sometimes() {
		t.Error("distant regions intersect")
	}
	// Disjoint definition times yield the empty moving bool.
	d := MustMRegion(units.MustURegion(iv(30, 40), units.MFace{Outer: translate(sq(0, 0, 4), 1, 0)}))
	if !a.Intersects(d).M.IsEmpty() {
		t.Error("disjoint deftimes produced pieces")
	}
}

func TestRangeValues(t *testing.T) {
	// (t−5)² on [0,10]: values [0, 25].
	r := MustMReal(units.NewUReal(iv(0, 10), 1, -10, 25, false))
	rv := r.RangeValues()
	if rv.Len() != 1 {
		t.Fatalf("range = %v", rv)
	}
	got := rv.Intervals()[0]
	if got.Start != 0 || got.End != 25 || !got.LC || !got.RC {
		t.Errorf("value range = %v, want [0, 25]", got)
	}
	// Open unit end: t on [0,10) takes values [0, 10) — the supremum is
	// not attained.
	r2 := MustMReal(units.NewUReal(rho(0, 10), 0, 1, 0, false))
	rv2 := r2.RangeValues()
	got2 := rv2.Intervals()[0]
	if got2.Start != 0 || got2.End != 10 || !got2.LC || got2.RC {
		t.Errorf("open-end value range = %v, want [0, 10)", got2)
	}
	// Two separated plateaus merge into a two-interval range.
	r3 := MustMReal(
		units.ConstUReal(rho(0, 1), 3),
		units.ConstUReal(rho(1, 2), 8),
	)
	rv3 := r3.RangeValues()
	if rv3.Len() != 2 || !rv3.Contains(3) || !rv3.Contains(8) || rv3.Contains(5) {
		t.Errorf("plateau range = %v", rv3)
	}
}

func TestMLineLength(t *testing.T) {
	mk := func(px, py, qx, qy, vx, vy float64) units.MSeg {
		return units.MustMSeg(
			units.MPoint{X0: px, X1: vx, Y0: py, Y1: vy},
			units.MPoint{X0: qx, X1: vx, Y0: qy, Y1: vy},
		)
	}
	rigid := MustMLine(units.MustULine(iv(0, 10), mk(0, 0, 3, 4, 1, 0)))
	ml, ok := rigid.Length()
	if !ok || ml.AtInstant(5).MustGet() != 5 {
		t.Errorf("rigid length = %v, %v", ml, ok)
	}
	// A stretching segment: not representable.
	stretch, err := units.MSegThrough(0, geom.Pt(0, 0), geom.Pt(1, 0), 10, geom.Pt(0, 0), geom.Pt(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	msl := MustMLine(units.MustULine(iv(0, 10), stretch))
	if _, ok := msl.Length(); ok {
		t.Error("stretching line length should not be representable")
	}
	if got, ok := msl.LengthAt(10); !ok || got != 11 {
		t.Errorf("LengthAt = %v, %v", got, ok)
	}
}

func TestLocations(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(
		0, 0, 0,
		10, 10, 0,
		20, 10, 0, // rest at (10, 0)
		30, 20, 0,
		40, 20, 0, // rest at (20, 0)
	))
	locs := p.Locations()
	if locs.Len() != 2 || !locs.Contains(geom.Pt(10, 0)) || !locs.Contains(geom.Pt(20, 0)) {
		t.Errorf("Locations = %v", locs)
	}
	moving, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0))
	if !moving.Locations().IsEmpty() {
		t.Error("never-resting point has locations")
	}
}

func TestMIntAggregates(t *testing.T) {
	b := MustMInt(
		units.UInt{Iv: rho(0, 5), V: 2},
		units.UInt{Iv: rho(5, 8), V: 5},
		units.UInt{Iv: iv(9, 12), V: 2},
	)
	if mn, ok := b.Min(); !ok || mn != 2 {
		t.Errorf("Min = %v, %v", mn, ok)
	}
	if mx, ok := b.Max(); !ok || mx != 5 {
		t.Errorf("Max = %v, %v", mx, ok)
	}
	we := b.WhenEqual(2)
	if we.Len() != 2 || !we.Contains(1) || !we.Contains(10) || we.Contains(6) {
		t.Errorf("WhenEqual = %v", we)
	}
	var empty MInt
	if _, ok := empty.Min(); ok {
		t.Error("empty Min")
	}
}

func TestAtPoints(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0, 20, 10, 10))
	ps := spatial.NewPoints(geom.Pt(5, 0), geom.Pt(10, 5), geom.Pt(99, 99))
	at := p.AtPoints(ps)
	if at.M.Len() != 2 {
		t.Fatalf("AtPoints = %v", at)
	}
	if !at.Present(5) || !at.Present(15) || at.Present(10) {
		t.Errorf("AtPoints deftime = %v", at.DefTime())
	}
	if got := at.AtInstant(15); got.P != geom.Pt(10, 5) {
		t.Errorf("position at 15 = %v", got)
	}
}

func TestVelocityComponents(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 30, -40))
	if got := p.VelocityX().AtInstant(5).MustGet(); got != 3 {
		t.Errorf("vx = %v", got)
	}
	if got := p.VelocityY().AtInstant(5).MustGet(); got != -4 {
		t.Errorf("vy = %v", got)
	}
}
