package moving

import (
	"strings"
	"testing"

	"math"
	"math/rand"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

func TestReadSamplesCSV(t *testing.T) {
	csv := "t,x,y\n0,0,0\n10,5,5\n20,10,0\n"
	samples, err := ReadSamplesCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 || samples[1].P != geom.Pt(5, 5) {
		t.Fatalf("samples = %v", samples)
	}
	// Headerless data works too.
	samples, err = ReadSamplesCSV(strings.NewReader("0,1,2\n5,3,4\n"))
	if err != nil || len(samples) != 2 {
		t.Fatalf("headerless = %v, %v", samples, err)
	}
	// Bad field.
	if _, err := ReadSamplesCSV(strings.NewReader("0,1,2\n5,x,4\n")); err == nil {
		t.Error("bad x accepted")
	}
	// Wrong arity.
	if _, err := ReadSamplesCSV(strings.NewReader("0,1\n")); err == nil {
		t.Error("two-field row accepted")
	}
}

func TestMPointFromCSV(t *testing.T) {
	csv := "t,x,y\n0,0,0\n10,10,0\n20,10,10\n"
	p, err := MPointFromCSV(strings.NewReader(csv), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.M.Len() != 2 || p.AtInstant(15).P != geom.Pt(10, 5) {
		t.Fatalf("mpoint = %v", p)
	}
}

func TestSimplifySamplesCollinear(t *testing.T) {
	// Redundant samples exactly on a straight constant-speed leg are
	// dropped entirely.
	var samples []Sample
	for i := 0; i <= 10; i++ {
		samples = append(samples, Sample{T: temporal.Instant(i), P: geom.Pt(float64(i), 0)})
	}
	out := SimplifySamples(samples, 1e-9)
	if len(out) != 2 {
		t.Fatalf("collinear simplify kept %d samples", len(out))
	}
	if out[0] != samples[0] || out[1] != samples[10] {
		t.Error("endpoints not preserved")
	}
	// A genuine corner survives.
	samples[5].P = geom.Pt(5, 3)
	out = SimplifySamples(samples, 0.5)
	found := false
	for _, s := range out {
		if s.P == geom.Pt(5, 3) {
			found = true
		}
	}
	if !found {
		t.Error("corner sample dropped")
	}
}

func TestSimplifyErrorBound(t *testing.T) {
	// The simplified moving point stays within eps of the original at
	// every sampled instant — the guarantee the time-parameterised
	// Douglas–Peucker gives.
	rng := rand.New(rand.NewSource(13))
	pos := geom.Pt(500, 500)
	samples := []Sample{{T: 0, P: pos}}
	for i := 1; i <= 200; i++ {
		ang := rng.Float64() * 2 * math.Pi
		step := rng.Float64() * 20
		pos = pos.Add(geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(step))
		samples = append(samples, Sample{T: temporal.Instant(i * 10), P: pos})
	}
	orig, err0 := MPointFromSamples(samples)
	if err0 != nil {
		t.Fatal(err0)
	}

	const eps = 5.0
	simp := SimplifySamples(samples, eps)
	if len(simp) >= len(samples) {
		t.Fatalf("no reduction: %d -> %d", len(samples), len(simp))
	}
	sp, err := MPointFromSamples(simp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 2000; k++ {
		tt := temporal.Instant(2000 * float64(k) / 2000)
		a := orig.AtInstant(tt)
		b := sp.AtInstant(tt)
		if !a.Defined() || !b.Defined() {
			t.Fatalf("undefined at %v", tt)
		}
		if d := a.P.Dist(b.P); d > eps+1e-9 {
			t.Fatalf("error %v > eps at %v", d, tt)
		}
	}
	t.Logf("simplified %d -> %d samples at eps=%v", len(samples), len(simp), eps)
}
