package moving

import (
	"context"
	"math"

	"movingdb/internal/geom"
	"movingdb/internal/mapping"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// This file holds the remaining lifted operations of the abstract model
// that combine the moving types defined in the other files.

// LessThan compares two moving reals pointwise and returns the moving
// bool of r < s where both are defined. The comparison is exact for the
// closed cases of the ureal class: polynomial vs polynomial (the
// difference is a quadratic), root vs root (both sides non-negative, so
// comparing the radicands decides), and root vs constant. Pairs outside
// these cases (root vs non-constant polynomial would need quartic root
// isolation) report ok == false.
func (r MReal) LessThan(s MReal) (MBool, bool) {
	var bld mapping.Builder[units.UBool]
	ru, su := r.M.Units(), s.M.Units()
	for _, ri := range temporal.Refine(r.M.Intervals(), s.M.Intervals()) {
		if ri.A < 0 || ri.B < 0 {
			continue
		}
		a := ru[ri.A].WithInterval(ri.Iv)
		b := su[ri.B].WithInterval(ri.Iv)
		diff, ok := comparableDiff(a, b)
		if !ok {
			return MBool{}, false
		}
		less, equal, greater := diff.CmpIntervals(0)
		type piece struct {
			iv temporal.Interval
			v  bool
		}
		var ps []piece
		for _, iv := range less {
			ps = append(ps, piece{iv, true})
		}
		for _, iv := range equal {
			ps = append(ps, piece{iv, false})
		}
		for _, iv := range greater {
			ps = append(ps, piece{iv, false})
		}
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].iv.Before(ps[j-1].iv); j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		for _, p := range ps {
			bld.Append(units.UBool{Iv: p.iv, V: p.v})
		}
	}
	return MBool{M: bld.MustBuild()}, true
}

// comparableDiff returns a polynomial ureal whose sign equals the sign
// of a − b on the common interval, for the closed comparison cases.
func comparableDiff(a, b units.UReal) (units.UReal, bool) {
	switch {
	case !a.Root && !b.Root:
		return units.UReal{Iv: a.Iv, A: a.A - b.A, B: a.B - b.B, C: a.C - b.C}, true
	case a.Root && b.Root:
		// √p vs √q with p, q ≥ 0 on the interval: sign(√p − √q) =
		// sign(p − q).
		return units.UReal{Iv: a.Iv, A: a.A - b.A, B: a.B - b.B, C: a.C - b.C}, true
	//molint:ignore float-eq representation classification: a ureal is a constant iff its quadratic and linear coefficients are stored as exact zeros
	case a.Root && b.A == 0 && b.B == 0:
		// √p vs constant c.
		c := b.C
		if c < 0 {
			// √p ≥ 0 > c everywhere: a constant positive difference.
			return units.UReal{Iv: a.Iv, C: 1}, true
		}
		return units.UReal{Iv: a.Iv, A: a.A, B: a.B, C: a.C - c*c}, true
	//molint:ignore float-eq representation classification: a ureal is a constant iff its quadratic and linear coefficients are stored as exact zeros
	case b.Root && a.A == 0 && a.B == 0:
		d, ok := comparableDiff(b, a)
		if !ok {
			return units.UReal{}, false
		}
		neg, _ := d.Neg()
		return neg, true
	}
	return units.UReal{}, false
}

// Direction returns the moving direction (heading) of the moving point
// in radians in (−π, π], measured counter-clockwise from the positive
// x-axis — piecewise constant for the linear representation. Resting
// units have no direction and are omitted from the result.
func (p MPoint) Direction() MReal {
	var bld mapping.Builder[units.UReal]
	for _, u := range p.M.Units() {
		v := u.M.Velocity()
		//molint:ignore float-eq resting-unit classification: builders store resting units with exact zero velocity (Section 3.2.4 unique representation)
		if v.X == 0 && v.Y == 0 {
			continue
		}
		bld.Append(units.ConstUReal(u.Iv, math.Atan2(v.Y, v.X)))
	}
	return MReal{M: bld.MustBuild()}
}

// TravelledDistance returns the total distance travelled over the
// definition time (the integral of speed) — unlike Length, repeated
// traversals of the same path count every time.
func (p MPoint) TravelledDistance() float64 {
	return p.Speed().Integral()
}

// Count returns the number of member points over time as a moving int —
// a lifted aggregate over the moving point set.
func (p MPoints) Count() MInt {
	var bld mapping.Builder[units.UInt]
	for _, u := range p.M.Units() {
		bld.Append(units.UInt{Iv: u.Iv, V: int64(u.Len())})
	}
	return MInt{M: bld.MustBuild()}
}

// Initial returns the (instant, region) snapshot at the start of the
// definition time; ok is false for the empty moving region.
func (r MRegion) Initial() (temporal.Instant, spatial.Region, bool) {
	u, ok := r.M.InitialUnit()
	if !ok {
		return 0, spatial.Region{}, false
	}
	snap, _ := u.EvalAt(u.Iv.Start)
	return u.Iv.Start, snap, true
}

// Final returns the (instant, region) snapshot at the end of the
// definition time; ok is false for the empty moving region.
func (r MRegion) Final() (temporal.Instant, spatial.Region, bool) {
	u, ok := r.M.FinalUnit()
	if !ok {
		return 0, spatial.Region{}, false
	}
	snap, _ := u.EvalAt(u.Iv.End)
	return u.Iv.End, snap, true
}

// AtRegion restricts the moving point to the times it lies inside the
// static region — at(mpoint, region) of the abstract model.
func (p MPoint) AtRegion(r spatial.Region) MPoint {
	return p.When(p.InsideRegion(r))
}

// Always reports whether the moving bool is true throughout its
// definition time (false for the nowhere-defined value).
func (b MBool) Always() bool {
	if b.M.IsEmpty() {
		return false
	}
	for _, u := range b.M.Units() {
		if !u.V {
			return false
		}
	}
	return true
}

// Sometimes reports whether the moving bool is true at some instant.
func (b MBool) Sometimes() bool {
	for _, u := range b.M.Units() {
		if u.V {
			return true
		}
	}
	return false
}

// TrueDuration returns the total time during which the moving bool is
// true.
func (b MBool) TrueDuration() float64 { return b.WhenTrue().Duration() }

// Intersects returns the moving bool of "the two moving regions share a
// point" — the lifted intersects predicate, computed per refinement
// interval with the exact critical-instant kernel.
func (r MRegion) Intersects(s MRegion) MBool {
	b, _ := r.IntersectsCtx(context.Background(), s)
	return b
}

// IntersectsCtx is Intersects with cooperative cancellation along the
// refinement partition, for deadline-bounded query serving.
func (r MRegion) IntersectsCtx(ctx context.Context, s MRegion) (MBool, error) {
	var bld mapping.Builder[units.UBool]
	ru, su := r.M.Units(), s.M.Units()
	for i, ri := range temporal.Refine(r.M.Intervals(), s.M.Intervals()) {
		if err := cancelCheck(ctx, i); err != nil {
			return MBool{}, err
		}
		if ri.A < 0 || ri.B < 0 {
			continue
		}
		ua := ru[ri.A].WithInterval(ri.Iv)
		ub := su[ri.B].WithInterval(ri.Iv)
		for _, piece := range units.URegionIntersects(ua, ub) {
			bld.Append(piece)
		}
	}
	return MBool{M: bld.MustBuild()}, nil
}

// Length returns the time-dependent total segment length of the moving
// line as a moving real when representable: like the region perimeter,
// a sum of square roots of distinct quadratics is outside the ureal
// class, so ok is false unless every unit translates rigidly (constant
// lengths). Use MLine.LengthAt for exact pointwise evaluation otherwise.
func (l MLine) Length() (MReal, bool) {
	var bld mapping.Builder[units.UReal]
	for _, u := range l.M.Units() {
		var total float64
		for _, g := range u.Ms {
			d1x, d1y := g.E.X1-g.S.X1, g.E.Y1-g.S.Y1
			//molint:ignore float-eq rigid-translation classification must be exact: any nonzero relative velocity makes the length non-constant and unrepresentable as a ureal
			if d1x != 0 || d1y != 0 {
				return MReal{}, false
			}
			p, q := g.Eval(u.Iv.Start)
			total += p.Dist(q)
		}
		bld.Append(units.ConstUReal(u.Iv, total))
	}
	return MReal{M: bld.MustBuild()}, true
}

// Locations returns the point parts of the spatial projection of the
// moving point: the positions of its resting units (moving units
// project to segments, collected by Trajectory) — together the two
// operations form the projection into range the abstract model defines.
func (p MPoint) Locations() spatial.Points {
	var pts []geom.Point
	for _, u := range p.M.Units() {
		if u.M.Velocity() == (geom.Point{}) {
			pts = append(pts, u.StartPoint())
		}
	}
	return spatial.NewPoints(pts...)
}

// Min returns the minimum value of the moving int over its definition
// time; ok is false for the empty value.
func (b MInt) Min() (int64, bool) {
	if b.M.IsEmpty() {
		return 0, false
	}
	best := b.M.Units()[0].V
	for _, u := range b.M.Units() {
		if u.V < best {
			best = u.V
		}
	}
	return best, true
}

// Max returns the maximum value of the moving int; ok is false for the
// empty value.
func (b MInt) Max() (int64, bool) {
	if b.M.IsEmpty() {
		return 0, false
	}
	best := b.M.Units()[0].V
	for _, u := range b.M.Units() {
		if u.V > best {
			best = u.V
		}
	}
	return best, true
}

// WhenEqual returns the periods during which the moving int equals v.
func (b MInt) WhenEqual(v int64) temporal.Periods {
	var ivs []temporal.Interval
	for _, u := range b.M.Units() {
		if u.V == v {
			ivs = append(ivs, u.Iv)
		}
	}
	return temporal.MustPeriods(ivs...)
}

// AtPoints restricts the moving point to the times it coincides with
// one of the given points — atpoints of the abstract model.
func (p MPoint) AtPoints(ps spatial.Points) MPoint {
	var collected []units.UPoint
	for _, u := range p.M.Units() {
		if u.M.Velocity() == (geom.Point{}) {
			if ps.Contains(u.StartPoint()) {
				collected = append(collected, u)
			}
			continue
		}
		for _, pt := range ps.Slice() {
			if t, ok := u.Passes(pt); ok {
				collected = append(collected, u.WithInterval(temporal.AtInstant(t)))
			}
		}
	}
	// Restrictions of one unit to several points may be out of order;
	// sort by interval start before assembling.
	for i := 1; i < len(collected); i++ {
		for j := i; j > 0 && collected[j].Iv.Start < collected[j-1].Iv.Start; j-- {
			collected[j], collected[j-1] = collected[j-1], collected[j]
		}
	}
	var bld mapping.Builder[units.UPoint]
	for _, u := range collected {
		bld.Append(u)
	}
	return MPoint{M: bld.MustBuild()}
}

// VelocityX returns the x-component of the velocity as a moving real
// (piecewise constant). Together with VelocityY it represents the
// velocity vector, which the model would express as a moving point in
// velocity space.
func (p MPoint) VelocityX() MReal {
	var bld mapping.Builder[units.UReal]
	for _, u := range p.M.Units() {
		bld.Append(units.ConstUReal(u.Iv, u.M.X1))
	}
	return MReal{M: bld.MustBuild()}
}

// VelocityY returns the y-component of the velocity as a moving real.
func (p MPoint) VelocityY() MReal {
	var bld mapping.Builder[units.UReal]
	for _, u := range p.M.Units() {
		bld.Append(units.ConstUReal(u.Iv, u.M.Y1))
	}
	return MReal{M: bld.MustBuild()}
}
