package moving

import (
	"math"
	"math/rand"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

func iv(s, e float64) temporal.Interval {
	return temporal.Closed(temporal.Instant(s), temporal.Instant(e))
}

func rho(s, e float64) temporal.Interval {
	return temporal.RightHalfOpen(temporal.Instant(s), temporal.Instant(e))
}

func samplesPath(coords ...float64) []Sample {
	// samplesPath(t0,x0,y0, t1,x1,y1, ...)
	var out []Sample
	for i := 0; i+2 < len(coords); i += 3 {
		out = append(out, Sample{T: temporal.Instant(coords[i]), P: geom.Pt(coords[i+1], coords[i+2])})
	}
	return out
}

func TestMPointFromSamples(t *testing.T) {
	p, err := MPointFromSamples(samplesPath(
		0, 0, 0,
		10, 10, 0,
		20, 10, 10,
	))
	if err != nil {
		t.Fatal(err)
	}
	if p.M.Len() != 2 {
		t.Fatalf("units = %d", p.M.Len())
	}
	if got := p.AtInstant(5); !got.Defined() || got.P != geom.Pt(5, 0) {
		t.Errorf("AtInstant(5) = %v", got)
	}
	if got := p.AtInstant(15); !got.Defined() || got.P != geom.Pt(10, 5) {
		t.Errorf("AtInstant(15) = %v", got)
	}
	if got := p.AtInstant(20); !got.Defined() || got.P != geom.Pt(10, 10) {
		t.Errorf("AtInstant(20) = %v (final sample must be included)", got)
	}
	if got := p.AtInstant(21); got.Defined() {
		t.Error("defined beyond last sample")
	}
	if _, err := MPointFromSamples(samplesPath(0, 0, 0)); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := MPointFromSamples(samplesPath(5, 0, 0, 3, 1, 1)); err == nil {
		t.Error("out-of-order samples accepted")
	}
}

func TestMPointTrajectoryAndLength(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(
		0, 0, 0,
		10, 10, 0,
		20, 10, 10,
		30, 10, 10, // rest
		40, 20, 10,
	))
	tr := p.Trajectory()
	if tr.NumSegments() != 3 {
		t.Fatalf("trajectory = %v", tr)
	}
	if got := p.Length(); got != 30 {
		t.Errorf("Length = %v", got)
	}
	// Backtracking path: trajectory merges the doubled stretch.
	q, _ := MPointFromSamples(samplesPath(
		0, 0, 0,
		10, 10, 0,
		20, 0, 0,
	))
	tr = q.Trajectory()
	if tr.NumSegments() != 1 || tr.Length() != 10 {
		t.Errorf("backtrack trajectory = %v", tr)
	}
}

func TestMPointDistance(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 0))
	q, _ := MPointFromSamples(samplesPath(0, 0, 5, 10, 10, 5))
	d := p.Distance(q)
	if got := d.AtInstant(4); !got.Defined() || got.MustGet() != 5 {
		t.Errorf("constant distance = %v", got)
	}
	// Partially overlapping deftimes.
	r, _ := MPointFromSamples(samplesPath(5, 5, 0, 15, 15, 0))
	d2 := p.Distance(r)
	if !d2.DefTime().Equal(temporal.MustPeriods(iv(5, 10))) {
		t.Errorf("distance deftime = %v", d2.DefTime())
	}
	if got := d2.AtInstant(7); !got.Defined() || got.MustGet() != 0 {
		t.Errorf("coinciding distance = %v", got)
	}
	if got := d2.AtInstant(3); got.Defined() {
		t.Error("distance defined outside common deftime")
	}
}

func TestSpatioTemporalJoinIdiom(t *testing.T) {
	// The Section 2 query: val(initial(atmin(distance(p, q)))) < 0.5.
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 10, 10))
	q, _ := MPointFromSamples(samplesPath(0, 10, 0, 10, 0, 10))
	d := p.Distance(q)
	mn := d.AtMin()
	first, ok := mn.Initial()
	if !ok {
		t.Fatal("no initial")
	}
	if first.Inst != 5 || math.Abs(first.Val) > 1e-9 {
		t.Errorf("closest approach = %v at %v", first.Val, first.Inst)
	}
	// And a pair that never gets close:
	r, _ := MPointFromSamples(samplesPath(0, 100, 100, 10, 110, 100))
	d2 := p.Distance(r)
	mn2 := d2.AtMin()
	v2, ok := mn2.Initial()
	if !ok || v2.Val < 100 {
		t.Errorf("min distance = %v", v2.Val)
	}
}

func TestMPointSpeedAndPasses(t *testing.T) {
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 10, 30, 40, 20, 30, 40))
	sp := p.Speed()
	if got := sp.AtInstant(5); got.MustGet() != 5 {
		t.Errorf("speed = %v", got)
	}
	if got := sp.AtInstant(15); got.MustGet() != 0 {
		t.Errorf("resting speed = %v", got)
	}
	if !p.Passes(geom.Pt(15, 20)) || p.Passes(geom.Pt(15, 21)) {
		t.Error("Passes wrong")
	}
	at := p.At(geom.Pt(15, 20))
	if at.M.Len() != 1 || !at.M.Units()[0].Iv.IsDegenerate() {
		t.Errorf("At = %v", at)
	}
	if got := at.AtInstant(5); !got.Defined() || got.P != geom.Pt(15, 20) {
		t.Errorf("At instant = %v", got)
	}
	// At a resting position: whole resting unit survives.
	atRest := p.At(geom.Pt(30, 40))
	if atRest.M.IsEmpty() {
		t.Fatal("rest position lost")
	}
	if !atRest.DefTime().Contains(15) {
		t.Errorf("rest deftime = %v", atRest.DefTime())
	}
}

func TestMBoolAlgebra(t *testing.T) {
	a := MustMBool(units.UBool{Iv: rho(0, 5), V: true}, units.UBool{Iv: rho(5, 10), V: false})
	b := MustMBool(units.UBool{Iv: rho(0, 3), V: false}, units.UBool{Iv: rho(3, 10), V: true})
	and := a.And(b)
	if got := and.AtInstant(4); !got.MustGet() {
		t.Error("true∧true wrong")
	}
	if got := and.AtInstant(1); got.MustGet() {
		t.Error("true∧false wrong")
	}
	if got := and.AtInstant(7); got.MustGet() {
		t.Error("false∧true wrong")
	}
	or := a.Or(b)
	if !or.AtInstant(1).MustGet() || !or.AtInstant(7).MustGet() {
		t.Error("or wrong")
	}
	not := a.Not()
	if not.AtInstant(1).MustGet() || !not.AtInstant(7).MustGet() {
		t.Error("not wrong")
	}
	wt := a.WhenTrue()
	if !wt.Equal(temporal.MustPeriods(rho(0, 5))) {
		t.Errorf("WhenTrue = %v", wt)
	}
}

func TestMRealComparisonsAndAt(t *testing.T) {
	// Distance-like parabola: (t−5)² on [0,10].
	r := MustMReal(units.NewUReal(iv(0, 10), 1, -10, 25, false))
	lt := r.Less(4) // (t−5)² < 4 ⟺ 3 < t < 7
	wt := lt.WhenTrue()
	if wt.Len() != 1 {
		t.Fatalf("WhenTrue = %v", wt)
	}
	got := wt.Intervals()[0]
	if got.Start != 3 || got.End != 7 || got.LC || got.RC {
		t.Errorf("less-than interval = %v, want (3, 7)", got)
	}
	gt := r.Greater(4)
	if !gt.WhenTrue().Contains(1) || gt.WhenTrue().Contains(5) || gt.WhenTrue().Contains(3) {
		t.Errorf("greater = %v", gt.WhenTrue())
	}
}

func TestMRealMinMaxAtMin(t *testing.T) {
	r := MustMReal(
		units.NewUReal(rho(0, 5), 0, 1, 0, false),    // t: 0→5
		units.NewUReal(rho(5, 10), 0, -1, 10, false), // 10−t: 5→0
	)
	mn, _, ok := r.Min()
	if !ok || mn != 0 {
		t.Errorf("Min = %v", mn)
	}
	mx, at, _ := r.Max()
	if mx != 5 || at != 5 {
		t.Errorf("Max = %v at %v", mx, at)
	}
	am := r.AtMin()
	// Minimum 0 attained at t=0 only (t=10 is excluded by [5,10)).
	if am.M.Len() != 1 || am.M.Units()[0].Iv != temporal.AtInstant(0) {
		t.Errorf("AtMin = %v", am)
	}
	// Integral of the tent function: 2·(25/2) = 25.
	if got := r.Integral(); math.Abs(got-25) > 1e-9 {
		t.Errorf("Integral = %v", got)
	}
}

func TestMRealAddSub(t *testing.T) {
	a := MustMReal(units.NewUReal(iv(0, 10), 0, 1, 0, false)) // t
	b := MustMReal(units.NewUReal(iv(0, 10), 0, 0, 3, false)) // 3
	sum, ok := a.Add(b)
	if !ok || sum.AtInstant(4).MustGet() != 7 {
		t.Error("Add wrong")
	}
	diff, ok := a.Sub(b)
	if !ok || diff.AtInstant(4).MustGet() != 1 {
		t.Error("Sub wrong")
	}
	root := MustMReal(units.NewUReal(iv(0, 10), 0, 0, 4, true))
	if _, ok := a.Add(root); ok {
		t.Error("Add with root unit must fail")
	}
}

func TestMRegionAtInstant(t *testing.T) {
	sq := func(x, y, w float64) []geom.Point {
		return []geom.Point{geom.Pt(x, y), geom.Pt(x+w, y), geom.Pt(x+w, y+w), geom.Pt(x, y+w)}
	}
	translate := func(ring []geom.Point, vx, vy float64) units.MCycle {
		var mc units.MCycle
		for _, p := range ring {
			mc = append(mc, units.MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy})
		}
		return mc
	}
	mr := MustMRegion(
		units.MustURegion(rho(0, 10), units.MFace{Outer: translate(sq(0, 0, 4), 1, 0)}),
		units.MustURegion(iv(10, 20), units.MFace{Outer: translate(sq(10, 0, 4), 0, 1)}),
	)
	r, ok := mr.AtInstant(5)
	if !ok || r.Area() != 16 {
		t.Fatalf("AtInstant(5) = %v, %v", r, ok)
	}
	if !r.ContainsPoint(geom.Pt(7, 2)) {
		t.Error("snapshot misplaced")
	}
	if _, ok := mr.AtInstant(25); ok {
		t.Error("defined beyond deftime")
	}
	if !mr.DefTime().Equal(temporal.MustPeriods(iv(0, 20))) {
		t.Errorf("DefTime = %v", mr.DefTime())
	}
}

func TestMRegionArea(t *testing.T) {
	// A square growing linearly from side 2 to side 6 over [0,4]: area
	// (2+t)² = t²+4t+4.
	ring0 := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2)}
	ring1 := []geom.Point{geom.Pt(-2, -2), geom.Pt(4, -2), geom.Pt(4, 4), geom.Pt(-2, 4)}
	var mc units.MCycle
	for i := range ring0 {
		m, err := units.MPointThrough(0, ring0[i], 4, ring1[i])
		if err != nil {
			t.Fatal(err)
		}
		mc = append(mc, m)
	}
	mr := MustMRegion(units.MustURegion(iv(0, 4), units.MFace{Outer: mc}))
	area := mr.Area()
	for _, tt := range []float64{0, 1, 2, 3, 4} {
		want := (2 + tt) * (2 + tt)
		if got := area.AtInstant(temporal.Instant(tt)).MustGet(); math.Abs(got-want) > 1e-9 {
			t.Errorf("area(%v) = %v, want %v", tt, got, want)
		}
	}
	// Cross-check against the snapshot's own area.
	snap, _ := mr.AtInstant(1.5)
	if got := area.AtInstant(1.5).MustGet(); math.Abs(got-snap.Area()) > 1e-9 {
		t.Errorf("lifted area %v != snapshot area %v", got, snap.Area())
	}
}

func TestMRegionPerimeter(t *testing.T) {
	sq := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
	var mc units.MCycle
	for _, p := range sq {
		mc = append(mc, units.MPoint{X0: p.X, X1: 2, Y0: p.Y, Y1: 0}) // rigid translation
	}
	mr := MustMRegion(units.MustURegion(iv(0, 10), units.MFace{Outer: mc}))
	per, ok := mr.Perimeter()
	if !ok {
		t.Fatal("rigid translation perimeter not representable")
	}
	if got := per.AtInstant(3).MustGet(); got != 16 {
		t.Errorf("perimeter = %v", got)
	}
	// A growing square: per-unit perimeter is not a single ureal.
	ring1 := []geom.Point{geom.Pt(-2, -2), geom.Pt(6, -2), geom.Pt(6, 6), geom.Pt(-2, 6)}
	var grow units.MCycle
	for i := range sq {
		m, _ := units.MPointThrough(0, sq[i], 4, ring1[i])
		grow = append(grow, m)
	}
	mg := MustMRegion(units.MustURegion(iv(0, 4), units.MFace{Outer: grow}))
	if _, ok := mg.Perimeter(); ok {
		t.Error("growing square perimeter should not be representable")
	}
	if got, ok := mg.PerimeterAt(4); !ok || got != 32 {
		t.Errorf("PerimeterAt(4) = %v, %v", got, ok)
	}
}

func TestInsideEndToEnd(t *testing.T) {
	// Section 5.2 end-to-end: flight through a moving storm.
	storm := func(x float64) units.MCycle {
		ring := []geom.Point{geom.Pt(x, -10), geom.Pt(x+20, -10), geom.Pt(x+20, 10), geom.Pt(x, 10)}
		var mc units.MCycle
		for _, p := range ring {
			mc = append(mc, units.MPoint{X0: p.X, X1: 1, Y0: p.Y, Y1: 0})
		}
		return mc
	}
	mr := MustMRegion(units.MustURegion(iv(0, 100), units.MFace{Outer: storm(40)}))
	// Plane from x=0 to x=200 at double speed: enters the storm region
	// [40+t, 60+t] when 2t = 40+t → t=40; leaves when 2t = 60+t → t=60.
	p, _ := MPointFromSamples(samplesPath(0, 0, 0, 100, 200, 0))
	inside := p.Inside(mr)
	wt := inside.WhenTrue()
	if wt.Len() != 1 {
		t.Fatalf("WhenTrue = %v", wt)
	}
	got := wt.Intervals()[0]
	if got.Start != 40 || got.End != 60 {
		t.Errorf("inside period = %v, want [40, 60]", got)
	}
	// Restricting the flight to the storm: When.
	during := p.When(inside)
	if pos := during.AtInstant(50); !pos.Defined() || pos.P != geom.Pt(100, 0) {
		t.Errorf("restricted position = %v", pos)
	}
	if during.Present(30) {
		t.Error("restricted point defined outside storm time")
	}
	// InsideRegion with the storm's snapshot at t=0 (static).
	snap, _ := mr.AtInstant(0)
	insStatic := p.InsideRegion(snap)
	wt2 := insStatic.WhenTrue()
	if wt2.Len() != 1 {
		t.Fatalf("static WhenTrue = %v", wt2)
	}
	// Static region spans x ∈ [40, 60]: plane inside for t ∈ [20, 30].
	if got := wt2.Intervals()[0]; got.Start != 20 || got.End != 30 {
		t.Errorf("static inside = %v", got)
	}
}

func TestMPointsAndMLine(t *testing.T) {
	a := units.MPoint{X0: 0, X1: 1, Y0: 0, Y1: 0}
	b := units.MPoint{X0: 0, X1: 1, Y0: 5, Y1: 0}
	mp := MustMPoints(units.MustUPoints(iv(0, 10), a, b))
	ps, ok := mp.AtInstant(4)
	if !ok || ps.Len() != 2 || !ps.Contains(geom.Pt(4, 0)) {
		t.Errorf("MPoints AtInstant = %v, %v", ps, ok)
	}
	tr := mp.Trajectory()
	if tr.NumSegments() != 2 {
		t.Errorf("MPoints trajectory = %v", tr)
	}

	g := units.MustMSeg(a, b) // vertical segment translating right
	ml := MustMLine(units.MustULine(iv(0, 10), g))
	line, ok := ml.AtInstant(2)
	if !ok || line.NumSegments() != 1 {
		t.Fatalf("MLine AtInstant = %v, %v", line, ok)
	}
	if !line.ContainsPoint(geom.Pt(2, 3)) {
		t.Error("MLine snapshot wrong")
	}
	if l, ok := ml.LengthAt(5); !ok || l != 5 {
		t.Errorf("LengthAt = %v, %v", l, ok)
	}
}

func TestStaticMRegion(t *testing.T) {
	reg := spatial.MustPolygonRegion(spatial.Ring(0, 0, 4, 0, 4, 4, 0, 4), spatial.Ring(1, 1, 2, 1, 2, 2, 1, 2))
	mr := StaticMRegion(reg, iv(0, 100))
	snap, ok := mr.AtInstant(50)
	if !ok {
		t.Fatal("static region undefined")
	}
	if snap.Area() != reg.Area() || snap.NumCycles() != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	area := mr.Area()
	if got := area.AtInstant(7).MustGet(); math.Abs(got-15) > 1e-9 {
		t.Errorf("area = %v", got)
	}
}

func TestMRegionAtPeriods(t *testing.T) {
	sqr := func(x, y, w float64) []geom.Point {
		return []geom.Point{geom.Pt(x, y), geom.Pt(x+w, y), geom.Pt(x+w, y+w), geom.Pt(x, y+w)}
	}
	var mc units.MCycle
	for _, p := range sqr(0, 0, 4) {
		mc = append(mc, units.MPoint{X0: p.X, X1: 1, Y0: p.Y})
	}
	mr := MustMRegion(units.MustURegion(iv(0, 100), units.MFace{Outer: mc}))
	clipped := mr.AtPeriods(temporal.MustPeriods(iv(10, 20), iv(50, 60)))
	if clipped.M.Len() != 2 {
		t.Fatalf("clipped units = %d", clipped.M.Len())
	}
	if clipped.Present(30) || !clipped.Present(15) {
		t.Error("clip deftime wrong")
	}
	// Snapshots inside the clip agree with the original.
	a, _ := mr.AtInstant(55)
	b, ok := clipped.AtInstant(55)
	if !ok || a.Area() != b.Area() || !a.Equal(b) {
		t.Error("clipped snapshot differs")
	}
	// Degenerate clip: a single instant.
	deg := mr.AtPeriods(temporal.MustPeriods(temporal.AtInstant(42)))
	if deg.M.Len() != 1 || !deg.M.Units()[0].Iv.IsDegenerate() {
		t.Fatalf("degenerate clip = %v", deg.M.Intervals())
	}
	snap, ok := deg.AtInstant(42)
	if !ok || snap.Area() != 16 {
		t.Errorf("degenerate snapshot = %v, %v", snap, ok)
	}
}

func TestMBoolWhenTrueClosureMerge(t *testing.T) {
	// Adjacent true pieces with different closures merge in the period
	// set even though they are distinct units.
	b := MustMBool(
		units.UBool{Iv: rho(0, 2), V: true},
		units.UBool{Iv: iv(2, 4), V: false},
		units.UBool{Iv: temporal.MustInterval(4, 6, false, true), V: true},
	)
	wt := b.WhenTrue()
	if wt.Len() != 2 {
		t.Fatalf("WhenTrue = %v", wt)
	}
	if wt.Contains(2) || wt.Contains(4) || !wt.Contains(1) || !wt.Contains(5) {
		t.Error("closure handling wrong")
	}
}

func TestInsideMovingEye(t *testing.T) {
	// A region whose hole (the eye) moves with it: a point that stays in
	// the eye is never inside; a point crossing annulus–eye–annulus
	// flips accordingly.
	sqr := func(x, y, w float64) []geom.Point {
		return []geom.Point{geom.Pt(x, y), geom.Pt(x+w, y), geom.Pt(x+w, y+w), geom.Pt(x, y+w)}
	}
	translate := func(ring []geom.Point, vx float64) units.MCycle {
		var mc units.MCycle
		for _, p := range ring {
			mc = append(mc, units.MPoint{X0: p.X, X1: vx, Y0: p.Y})
		}
		return mc
	}
	storm := MustMRegion(units.MustURegion(iv(0, 100), units.MFace{
		Outer: translate(sqr(0, 0, 20), 1),
		Holes: []units.MCycle{translate(sqr(8, 8, 4), 1)},
	}))
	// Rider moving with the eye, starting at its center.
	rider := MustMPoint(units.UPoint{Iv: iv(0, 100), M: units.MPoint{X0: 10, X1: 1, Y0: 10}})
	if storm.Contains(rider).Sometimes() {
		t.Error("eye rider reported inside")
	}
	// A faster point overtakes the storm: outside → annulus → eye →
	// annulus → outside.
	runner := MustMPoint(units.UPoint{Iv: iv(0, 100), M: units.MPoint{X0: -50, X1: 2, Y0: 10}})
	inside := runner.Inside(storm)
	wt := inside.WhenTrue()
	if wt.Len() != 2 {
		t.Fatalf("annulus passes = %v", wt)
	}
	// Runner at −50+2t, storm spans [t, 20+t], eye [8+t, 12+t]:
	// enter outer at t=50, enter eye at t=58, exit eye at t=62, exit
	// outer at t=70.
	first, second := wt.Intervals()[0], wt.Intervals()[1]
	if first.Start != 50 || first.End != 58 || second.Start != 62 || second.End != 70 {
		t.Errorf("passes = %v and %v", first, second)
	}
}

func TestInsideStaticVsLiftedConsistency(t *testing.T) {
	// inside(mpoint, region) and inside(mpoint, static mregion) are two
	// paths to the same semantics; their true-period sets must agree for
	// random trajectories and polygons.
	zone := spatial.MustPolygonRegion(
		spatial.Ring(200, 200, 700, 150, 800, 600, 450, 800, 150, 650),
		spatial.Ring(350, 350, 500, 350, 500, 500, 350, 500),
	)
	lifted := StaticMRegion(zone, iv(0, 1000))
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var samples []Sample
		pos := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		samples = append(samples, Sample{T: 0, P: pos})
		for i := 1; i <= 40; i++ {
			pos = pos.Add(geom.Pt(rng.Float64()*60-30, rng.Float64()*60-30))
			samples = append(samples, Sample{T: temporal.Instant(i * 25), P: pos})
		}
		p, err := MPointFromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		a := p.InsideRegion(zone).WhenTrue()
		b := p.Inside(lifted).WhenTrue()
		if abs := a.Duration() - b.Duration(); abs > 1e-6 && -abs > 1e-6 {
			t.Fatalf("seed %d: durations differ: %v vs %v", seed, a.Duration(), b.Duration())
		}
		for k := 0; k <= 1000; k++ {
			tt := temporal.Instant(float64(k) + 0.41)
			if a.Contains(tt) != b.Contains(tt) {
				t.Fatalf("seed %d t=%v: static %v vs lifted %v", seed, tt, a.Contains(tt), b.Contains(tt))
			}
		}
	}
}
