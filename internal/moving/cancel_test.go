package moving

import (
	"context"
	"errors"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

// longTrack builds a moving point with enough units that the ctx-aware
// kernels pass several cancellation checkpoints.
func longTrack(t *testing.T, n int) MPoint {
	t.Helper()
	samples := make([]Sample, 0, n+1)
	for i := 0; i <= n; i++ {
		// Alternate the y coordinate so adjacent units do not merge.
		samples = append(samples, Sample{T: temporal.Instant(i), P: geom.Pt(float64(i), float64(i%2))})
	}
	p, err := MPointFromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if p.M.Len() < n {
		t.Fatalf("track has %d units, want %d", p.M.Len(), n)
	}
	return p
}

func bigSquare(iv temporal.Interval) MRegion {
	r := spatial.MustPolygonRegion(spatial.Ring(-1, -1, 1e6, -1, 1e6, 1e6, -1, 1e6))
	return StaticMRegion(r, iv)
}

func TestInsideCtxCancelled(t *testing.T) {
	p := longTrack(t, 4*cancelCheckEvery)
	r := bigSquare(temporal.Closed(0, 1e9))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.InsideCtx(ctx, r); !errors.Is(err, context.Canceled) {
		t.Fatalf("InsideCtx err = %v, want context.Canceled", err)
	}
	zone := spatial.MustPolygonRegion(spatial.Ring(-1, -1, 10, -1, 10, 10, -1, 10))
	if _, err := p.InsideRegionCtx(ctx, zone); !errors.Is(err, context.Canceled) {
		t.Fatalf("InsideRegionCtx err = %v, want context.Canceled", err)
	}
	if _, err := r.IntersectsCtx(ctx, r); !errors.Is(err, context.Canceled) {
		t.Fatalf("IntersectsCtx err = %v, want context.Canceled", err)
	}
	if _, err := r.AreaCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("AreaCtx err = %v, want context.Canceled", err)
	}
}

func TestCtxVariantsMatchPlainOnes(t *testing.T) {
	p := longTrack(t, 100)
	r := bigSquare(temporal.Closed(0, 50))
	want := p.Inside(r)
	got, err := p.InsideCtx(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("InsideCtx = %v, Inside = %v", got, want)
	}
	a, err := r.AreaCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != r.Area().String() {
		t.Errorf("AreaCtx disagrees with Area")
	}
}
