package moving

import "context"

// cancelCheckEvery is how many loop iterations the long-running lifted
// operations run between context checks. Checking every iteration would
// put an interface call on the hottest paths of the Section 5 kernels;
// every 64th keeps the cancellation latency bounded by a handful of
// unit-pair evaluations while costing nothing measurable.
const cancelCheckEvery = 64

// cancelCheck returns the context's error on every cancelCheckEvery-th
// iteration, nil otherwise.
func cancelCheck(ctx context.Context, i int) error {
	if i%cancelCheckEvery != 0 {
		return nil
	}
	return ctx.Err()
}
