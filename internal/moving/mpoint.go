package moving

import (
	"context"
	"fmt"

	"movingdb/internal/base"
	"movingdb/internal/geom"
	"movingdb/internal/mapping"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// MPoint is the moving point type: mapping(upoint).
type MPoint struct {
	M mapping.Mapping[units.UPoint]
}

// NewMPoint validates units and builds a moving point.
func NewMPoint(us ...units.UPoint) (MPoint, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MPoint{}, err
	}
	return MPoint{M: m}, nil
}

// MustMPoint is like NewMPoint but panics on invalid input.
func MustMPoint(us ...units.UPoint) MPoint {
	m, err := NewMPoint(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// Sample is one trajectory observation: the object was at P at time T.
type Sample struct {
	T temporal.Instant
	P geom.Point
}

// MPointFromSamples builds a moving point from a time-ordered sequence
// of at least two observations, interpolating linearly between
// consecutive samples — the standard way trajectories recorded by GPS
// enter the sliced representation. Consecutive samples with identical
// positions produce resting units.
func MPointFromSamples(samples []Sample) (MPoint, error) {
	if len(samples) < 2 {
		return MPoint{}, fmt.Errorf("moving: need at least two samples, got %d", len(samples))
	}
	var bld mapping.Builder[units.UPoint]
	for i := 0; i+1 < len(samples); i++ {
		a, b := samples[i], samples[i+1]
		if b.T <= a.T {
			return MPoint{}, fmt.Errorf("moving: samples out of order at %d: %v then %v", i, a.T, b.T)
		}
		// Units are chained half-open so consecutive units are
		// adjacent-disjoint; the final unit closes at the last sample.
		iv := temporal.RightHalfOpen(a.T, b.T)
		if i+2 == len(samples) {
			iv = temporal.Closed(a.T, b.T)
		}
		var u units.UPoint
		if a.P == b.P {
			u = units.StaticUPoint(iv, a.P)
		} else {
			var err error
			u, err = units.UPointBetween(iv, a.P, b.P)
			if err != nil {
				return MPoint{}, err
			}
		}
		bld.Append(u)
	}
	m, err := bld.Build()
	if err != nil {
		return MPoint{}, err
	}
	return MPoint{M: m}, nil
}

// AtInstant returns the position at instant t (⊥ when undefined).
func (p MPoint) AtInstant(t temporal.Instant) spatial.Point {
	u, ok := p.M.UnitAt(t)
	if !ok {
		return spatial.UndefPoint()
	}
	return spatial.DefPoint(u.Eval(t))
}

// DefTime returns the time domain of the moving point.
func (p MPoint) DefTime() temporal.Periods { return p.M.DefTime() }

// Present reports whether the point is defined at t.
func (p MPoint) Present(t temporal.Instant) bool { return p.M.Present(t) }

// AtPeriods restricts the moving point to the given periods.
func (p MPoint) AtPeriods(pr temporal.Periods) MPoint { return MPoint{M: p.M.AtPeriods(pr)} }

// Initial returns the (instant, position) pair at the start of the
// definition time; ok is false for the empty moving point.
func (p MPoint) Initial() (base.Intime[geom.Point], bool) {
	u, ok := p.M.InitialUnit()
	if !ok {
		return base.Intime[geom.Point]{}, false
	}
	return base.Intime[geom.Point]{Inst: u.Iv.Start, Val: u.StartPoint()}, true
}

// Final returns the (instant, position) pair at the end of the
// definition time; ok is false for the empty moving point.
func (p MPoint) Final() (base.Intime[geom.Point], bool) {
	u, ok := p.M.FinalUnit()
	if !ok {
		return base.Intime[geom.Point]{}, false
	}
	return base.Intime[geom.Point]{Inst: u.Iv.End, Val: u.EndPoint()}, true
}

// Trajectory computes the line parts of the spatial projection of the
// moving point (the trajectory operation of Section 2): the segments
// traced by its moving units, with collinear overlaps merged into a
// canonical line value. Resting units project to points and do not
// contribute.
func (p MPoint) Trajectory() spatial.Line {
	segs := make([]geom.Segment, 0, p.M.Len())
	for _, u := range p.M.Units() {
		if s, ok := u.TrajectorySegment(); ok {
			segs = append(segs, s)
		}
	}
	return spatial.MergeLine(segs...)
}

// Length returns the length of the trajectory — the distance travelled
// along distinct paths. For the total distance travelled (counting
// repeated traversals) integrate Speed instead.
func (p MPoint) Length() float64 { return p.Trajectory().Length() }

// Distance returns the time-dependent Euclidean distance to another
// moving point as a moving real, defined where both points are defined
// (the lifted distance operation used by the spatio-temporal join of
// Section 2).
func (p MPoint) Distance(q MPoint) MReal {
	var bld mapping.Builder[units.UReal]
	pu, qu := p.M.Units(), q.M.Units()
	for _, ri := range temporal.Refine(p.M.Intervals(), q.M.Intervals()) {
		if ri.A < 0 || ri.B < 0 {
			continue
		}
		bld.Append(pu[ri.A].DistanceTo(qu[ri.B], ri.Iv))
	}
	return MReal{M: bld.MustBuild()}
}

// DistanceToPoint returns the time-dependent distance to a fixed point.
func (p MPoint) DistanceToPoint(pt geom.Point) MReal {
	var bld mapping.Builder[units.UReal]
	for _, u := range p.M.Units() {
		bld.Append(u.DistanceToPoint(pt, u.Iv))
	}
	return MReal{M: bld.MustBuild()}
}

// Speed returns the scalar speed as a moving real (piecewise constant
// for the linear representation).
func (p MPoint) Speed() MReal {
	var bld mapping.Builder[units.UReal]
	for _, u := range p.M.Units() {
		bld.Append(u.SpeedUReal())
	}
	return MReal{M: bld.MustBuild()}
}

// Passes reports whether the moving point is ever at pt (the passes
// predicate of the abstract model).
func (p MPoint) Passes(pt geom.Point) bool {
	for _, u := range p.M.Units() {
		if _, ok := u.Passes(pt); ok {
			return true
		}
	}
	return false
}

// At restricts the moving point to the times it is exactly at pt.
func (p MPoint) At(pt geom.Point) MPoint {
	var bld mapping.Builder[units.UPoint]
	for _, u := range p.M.Units() {
		if u.M.Velocity() == (geom.Point{}) {
			if u.StartPoint() == pt {
				bld.Append(u)
			}
			continue
		}
		if t, ok := u.Passes(pt); ok {
			bld.Append(u.WithInterval(temporal.AtInstant(t)))
		}
	}
	return MPoint{M: bld.MustBuild()}
}

// InsideRegion returns the moving bool of "point inside the (static)
// region", computed per unit by stabbing the region boundary.
func (p MPoint) InsideRegion(r spatial.Region) MBool {
	b, _ := p.InsideRegionCtx(context.Background(), r)
	return b
}

// InsideRegionCtx is InsideRegion with cooperative cancellation: the
// per-unit scan checks ctx periodically and returns its error, so a
// server-side timeout stops the work instead of merely abandoning the
// response.
func (p MPoint) InsideRegionCtx(ctx context.Context, r spatial.Region) (MBool, error) {
	if r.IsEmpty() {
		var bld mapping.Builder[units.UBool]
		for i, u := range p.M.Units() {
			if err := cancelCheck(ctx, i); err != nil {
				return MBool{}, err
			}
			bld.Append(units.UBool{Iv: u.Iv, V: false})
		}
		return MBool{M: bld.MustBuild()}, nil
	}
	// A static region is a uregion with zero velocities; reuse the
	// unit-pair kernel.
	ur := staticURegion(r, temporal.Closed(temporal.NegInf, temporal.PosInf))
	var bld mapping.Builder[units.UBool]
	for i, u := range p.M.Units() {
		if err := cancelCheck(ctx, i); err != nil {
			return MBool{}, err
		}
		for _, ub := range units.UPointInsideURegion(u, ur.WithInterval(u.Iv)) {
			bld.Append(ub)
		}
	}
	return MBool{M: bld.MustBuild()}, nil
}

// Inside returns the moving bool of "moving point inside moving region",
// the inside algorithm of Section 5.2: the two unit lists are traversed
// in parallel along their refinement partition and the unit-pair kernel
// runs per refinement interval; results are concatenated with adjacent
// equal units merged.
func (p MPoint) Inside(r MRegion) MBool {
	b, _ := p.InsideCtx(context.Background(), r)
	return b
}

// InsideCtx is Inside with cooperative cancellation along the
// refinement partition — the O(n + m + S) loop the serving layer must
// be able to abort when a request deadline expires.
func (p MPoint) InsideCtx(ctx context.Context, r MRegion) (MBool, error) {
	var bld mapping.Builder[units.UBool]
	pu, ru := p.M.Units(), r.M.Units()
	for i, ri := range temporal.Refine(p.M.Intervals(), r.M.Intervals()) {
		if err := cancelCheck(ctx, i); err != nil {
			return MBool{}, err
		}
		if ri.A < 0 || ri.B < 0 {
			continue
		}
		up := pu[ri.A].WithInterval(ri.Iv)
		ur := ru[ri.B].WithInterval(ri.Iv)
		for _, ub := range units.UPointInsideURegion(up, ur) {
			bld.Append(ub)
		}
	}
	return MBool{M: bld.MustBuild()}, nil
}

// When restricts the moving point to the periods where the given moving
// bool is true — the idiom for queries such as "the part of the flight
// inside the storm".
func (p MPoint) When(b MBool) MPoint { return p.AtPeriods(b.WhenTrue()) }

// BBox returns the spatial bounding box of the whole movement.
func (p MPoint) BBox() geom.Rect {
	r := geom.EmptyRect()
	for _, u := range p.M.Units() {
		r = r.Union(u.BBox())
	}
	return r
}

// String renders the moving point.
func (p MPoint) String() string { return p.M.String() }
