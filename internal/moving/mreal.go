package moving

import (
	"math"

	"movingdb/internal/base"
	"movingdb/internal/mapping"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// MReal is the moving real type: mapping(ureal).
type MReal struct {
	M mapping.Mapping[units.UReal]
}

// NewMReal validates units and builds a moving real.
func NewMReal(us ...units.UReal) (MReal, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MReal{}, err
	}
	return MReal{M: m}, nil
}

// MustMReal is like NewMReal but panics on invalid input.
func MustMReal(us ...units.UReal) MReal {
	m, err := NewMReal(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// AtInstant returns the value at instant t (⊥ when undefined).
func (r MReal) AtInstant(t temporal.Instant) base.RealVal {
	u, ok := r.M.UnitAt(t)
	if !ok {
		return base.Undef[float64]()
	}
	return base.Def(u.Eval(t))
}

// DefTime returns the time domain.
func (r MReal) DefTime() temporal.Periods { return r.M.DefTime() }

// Present reports whether the moving real is defined at t.
func (r MReal) Present(t temporal.Instant) bool { return r.M.Present(t) }

// AtPeriods restricts the moving real to the given periods.
func (r MReal) AtPeriods(p temporal.Periods) MReal { return MReal{M: r.M.AtPeriods(p)} }

// Initial returns the (instant, value) pair at the start of the
// definition time (the initial operation of Section 2); ok is false for
// the empty moving real.
func (r MReal) Initial() (base.Intime[float64], bool) {
	u, ok := r.M.InitialUnit()
	if !ok {
		return base.Intime[float64]{}, false
	}
	return base.Intime[float64]{Inst: u.Iv.Start, Val: u.Eval(u.Iv.Start)}, true
}

// Final returns the (instant, value) pair at the end of the definition
// time; ok is false for the empty moving real.
func (r MReal) Final() (base.Intime[float64], bool) {
	u, ok := r.M.FinalUnit()
	if !ok {
		return base.Intime[float64]{}, false
	}
	return base.Intime[float64]{Inst: u.Iv.End, Val: u.Eval(u.Iv.End)}, true
}

// Min returns the global minimum value and an instant where it is
// attained; ok is false for the empty moving real.
func (r MReal) Min() (float64, temporal.Instant, bool) {
	if r.M.IsEmpty() {
		return 0, 0, false
	}
	best, at := math.Inf(1), temporal.Instant(0)
	for _, u := range r.M.Units() {
		if v, t := u.Min(); v < best {
			best, at = v, t
		}
	}
	return best, at, true
}

// Max returns the global maximum value and an instant where it is
// attained; ok is false for the empty moving real.
func (r MReal) Max() (float64, temporal.Instant, bool) {
	if r.M.IsEmpty() {
		return 0, 0, false
	}
	best, at := math.Inf(-1), temporal.Instant(0)
	for _, u := range r.M.Units() {
		if v, t := u.Max(); v > best {
			best, at = v, t
		}
	}
	return best, at, true
}

// AtMin restricts the moving real to all times at which it takes its
// global minimum (the atmin operation of Section 2). The result
// typically consists of degenerate units; a unit identically at the
// minimum survives whole.
func (r MReal) AtMin() MReal {
	mn, _, ok := r.Min()
	if !ok {
		return MReal{}
	}
	return r.atValueNear(mn)
}

// AtMax restricts the moving real to all times at which it takes its
// global maximum.
func (r MReal) AtMax() MReal {
	mx, _, ok := r.Max()
	if !ok {
		return MReal{}
	}
	return r.atValueNear(mx)
}

// atValueNear restricts the moving real to the times where it equals v,
// with a relative tolerance absorbing the one-ulp discrepancies between
// adjacent units computed from different sources (e.g. distance units of
// consecutive trajectory legs).
func (r MReal) atValueNear(v float64) MReal {
	tol := 1e-9 * math.Max(1, math.Abs(v))
	var bld mapping.Builder[units.UReal]
	for _, u := range r.M.Units() {
		ts, all := u.InstantsNear(v, tol)
		if all {
			bld.Append(u)
			continue
		}
		for _, t := range ts {
			bld.Append(u.WithInterval(temporal.AtInstant(t)))
		}
	}
	return MReal{M: bld.MustBuild()}
}

// At restricts the moving real to the times where its value lies in the
// given real range.
func (r MReal) At(rng base.Range[float64]) MReal {
	var bld mapping.Builder[units.UReal]
	for _, u := range r.M.Units() {
		for _, piece := range urealInRange(u, rng) {
			bld.Append(piece)
		}
	}
	return MReal{M: bld.MustBuild()}
}

// urealInRange returns the sub-units of u during which its value lies in
// rng, in temporal order.
func urealInRange(u units.UReal, rng base.Range[float64]) []units.UReal {
	// Collect candidate boundary crossing times for all interval
	// endpoints of the range, then classify the pieces in between.
	var critical []temporal.Instant
	for _, iv := range rng.Intervals() {
		for _, v := range []float64{iv.Start, iv.End} {
			ts, _ := u.TimesAt(v)
			critical = append(critical, ts...)
		}
	}
	pieces := splitInterval(u.Iv, critical)
	var out []units.UReal
	for _, p := range pieces {
		mid := temporal.Instant((float64(p.Start) + float64(p.End)) / 2)
		if rng.Contains(u.Eval(mid)) {
			out = append(out, u.WithInterval(p))
		}
	}
	return out
}

// splitInterval splits iv at the given interior instants into an ordered
// sequence of sub-intervals (degenerate pieces at the cut instants, open
// pieces in between), preserving the outer closures.
func splitInterval(iv temporal.Interval, cuts []temporal.Instant) []temporal.Interval {
	if iv.IsDegenerate() {
		return []temporal.Interval{iv}
	}
	inner := make([]temporal.Instant, 0, len(cuts))
	for _, c := range cuts {
		if iv.ContainsOpen(c) {
			inner = append(inner, c)
		}
	}
	if len(inner) == 0 {
		return []temporal.Interval{iv}
	}
	sortInstants(inner)
	inner = dedupInstants(inner)
	var out []temporal.Interval
	cur, curLC := iv.Start, iv.LC
	for _, c := range inner {
		out = append(out,
			temporal.Interval{Start: cur, End: c, LC: curLC, RC: false},
			temporal.AtInstant(c))
		cur, curLC = c, false
	}
	out = append(out, temporal.Interval{Start: cur, End: iv.End, LC: curLC, RC: iv.RC})
	return out
}

func sortInstants(ts []temporal.Instant) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func dedupInstants(ts []temporal.Instant) []temporal.Instant {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// CmpConst compares the moving real against a constant and returns the
// moving bool of the pointwise predicate selected by keep (a function on
// the sign −1/0/+1 of value − v). It underlies the lifted <, ≤, =, ≥, >.
func (r MReal) CmpConst(v float64, keep func(sign int) bool) MBool {
	var bld mapping.Builder[units.UBool]
	for _, u := range r.M.Units() {
		less, equal, greater := u.CmpIntervals(v)
		type piece struct {
			iv   temporal.Interval
			sign int
		}
		var ps []piece
		for _, iv := range less {
			ps = append(ps, piece{iv, -1})
		}
		for _, iv := range equal {
			ps = append(ps, piece{iv, 0})
		}
		for _, iv := range greater {
			ps = append(ps, piece{iv, 1})
		}
		// The pieces of one unit are disjoint; order them temporally.
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].iv.Before(ps[j-1].iv); j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		for _, p := range ps {
			bld.Append(units.UBool{Iv: p.iv, V: keep(p.sign)})
		}
	}
	return MBool{M: bld.MustBuild()}
}

// Less returns the moving bool of value < v.
func (r MReal) Less(v float64) MBool {
	return r.CmpConst(v, func(s int) bool { return s < 0 })
}

// Greater returns the moving bool of value > v.
func (r MReal) Greater(v float64) MBool {
	return r.CmpConst(v, func(s int) bool { return s > 0 })
}

// Add returns the pointwise sum of two moving reals where both are
// defined; ok is false if any overlapping pair of units involves a root
// unit (the representation is not closed under adding roots).
func (r MReal) Add(s MReal) (MReal, bool) {
	return liftRealOp(r, s, func(a, b units.UReal, iv temporal.Interval) (units.UReal, bool) {
		return a.Add(b, iv)
	})
}

// Sub returns the pointwise difference of two moving reals.
func (r MReal) Sub(s MReal) (MReal, bool) {
	return liftRealOp(r, s, func(a, b units.UReal, iv temporal.Interval) (units.UReal, bool) {
		return a.Sub(b, iv)
	})
}

func liftRealOp(r, s MReal, op func(a, b units.UReal, iv temporal.Interval) (units.UReal, bool)) (MReal, bool) {
	var bld mapping.Builder[units.UReal]
	ru, su := r.M.Units(), s.M.Units()
	for _, ri := range temporal.Refine(r.M.Intervals(), s.M.Intervals()) {
		if ri.A < 0 || ri.B < 0 {
			continue
		}
		u, ok := op(ru[ri.A], su[ri.B], ri.Iv)
		if !ok {
			return MReal{}, false
		}
		bld.Append(u)
	}
	return MReal{M: bld.MustBuild()}, true
}

// Integral returns ∫ value dt over the definition time, computed
// exactly for polynomial units and by closed form for root units where
// possible (falling back to Simpson quadrature for roots, which is exact
// for quadratics and accurate for the √quadratic class).
func (r MReal) Integral() float64 {
	var total float64
	for _, u := range r.M.Units() {
		if u.Iv.IsDegenerate() {
			continue
		}
		lo, hi := float64(u.Iv.Start), float64(u.Iv.End)
		if !u.Root {
			anti := func(t float64) float64 { return u.A*t*t*t/3 + u.B*t*t/2 + u.C*t }
			total += anti(hi) - anti(lo)
			continue
		}
		// Composite Simpson on the square root of the quadratic.
		const steps = 64
		h := (hi - lo) / steps
		sum := u.Eval(temporal.Instant(lo)) + u.Eval(temporal.Instant(hi))
		for k := 1; k < steps; k++ {
			t := lo + float64(k)*h
			w := 2.0
			if k%2 == 1 {
				w = 4
			}
			sum += w * u.Eval(temporal.Instant(t))
		}
		total += sum * h / 3
	}
	return total
}

// String renders the moving real.
func (r MReal) String() string { return r.M.String() }

// RangeValues projects the moving real into its value set — the
// rangevalues operation of the abstract model — as a canonical
// range(real) value with exact closure at the bounds.
func (r MReal) RangeValues() base.Range[float64] {
	ivs := make([]base.Interval[float64], 0, r.M.Len())
	for _, u := range r.M.Units() {
		lo, hi, lc, rc := u.ValueRange()
		//molint:ignore float-eq a unit contributes a single value only when its min and max coincide bit-exactly (constant unit); tolerant equality would collapse near-flat ranges
		if lo == hi && !(lc && rc) {
			continue // a limit value only, never attained
		}
		//molint:ignore float-eq a unit contributes a single value only when its min and max coincide bit-exactly (constant unit); tolerant equality would collapse near-flat ranges
		if lo == hi {
			ivs = append(ivs, base.ClosedInterval(lo, hi))
			continue
		}
		iv, err := base.NewInterval(lo, hi, lc, rc)
		if err != nil {
			continue
		}
		ivs = append(ivs, iv)
	}
	rng, err := base.NewRange(ivs...)
	if err != nil {
		panic(err) // intervals above are validated
	}
	return rng
}
