package moving

import (
	"context"

	"movingdb/internal/geom"
	"movingdb/internal/mapping"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// MRegion is the moving region type: mapping(uregion).
type MRegion struct {
	M mapping.Mapping[units.URegion]
}

// NewMRegion validates units and builds a moving region.
func NewMRegion(us ...units.URegion) (MRegion, error) {
	m, err := mapping.New(us...)
	if err != nil {
		return MRegion{}, err
	}
	return MRegion{M: m}, nil
}

// MustMRegion is like NewMRegion but panics on invalid input.
func MustMRegion(us ...units.URegion) MRegion {
	m, err := NewMRegion(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// staticURegion converts a static region value into a uregion unit with
// zero velocities over iv.
func staticURegion(r spatial.Region, iv temporal.Interval) units.URegion {
	faces := make([]units.MFace, 0, r.NumFaces())
	toMCycle := func(c spatial.Cycle) units.MCycle {
		mc := make(units.MCycle, 0, c.Len())
		for _, v := range c.Vertices() {
			mc = append(mc, units.StaticMPoint(v))
		}
		return mc
	}
	for _, f := range r.Faces() {
		mf := units.MFace{Outer: toMCycle(f.Outer)}
		for _, h := range f.Holes {
			mf.Holes = append(mf.Holes, toMCycle(h))
		}
		faces = append(faces, mf)
	}
	return units.URegionUnchecked(iv, faces)
}

// StaticMRegion lifts a static region to a moving region constant over
// the given interval.
func StaticMRegion(r spatial.Region, iv temporal.Interval) MRegion {
	return MRegion{M: mapping.FromOrdered([]units.URegion{staticURegion(r, iv)})}
}

// AtInstant returns the region value at instant t, implementing the
// atinstant algorithm of Section 5.1: binary search for the unit
// containing t (O(log n)), then evaluation of its moving segments; at
// unit boundaries the degeneracy cleanup applies. The empty region is
// returned when t lies outside the definition time. ok distinguishes a
// genuinely empty snapshot from "undefined".
func (r MRegion) AtInstant(t temporal.Instant) (spatial.Region, bool) {
	u, found := r.M.UnitAt(t)
	if !found {
		return spatial.Region{}, false
	}
	reg, ok := u.EvalAt(t)
	return reg, ok
}

// DefTime returns the time domain of the moving region.
func (r MRegion) DefTime() temporal.Periods { return r.M.DefTime() }

// Present reports whether the region is defined at t.
func (r MRegion) Present(t temporal.Instant) bool { return r.M.Present(t) }

// AtPeriods restricts the moving region to the given periods.
func (r MRegion) AtPeriods(p temporal.Periods) MRegion { return MRegion{M: r.M.AtPeriods(p)} }

// Area returns the time-dependent area as a moving real. For linearly
// moving vertices the shoelace formula makes the area of each unit an
// exact quadratic in t, so the lifted size operation is closed in the
// representation — the property Section 3.2.5 calls out.
func (r MRegion) Area() MReal {
	a, _ := r.AreaCtx(context.Background())
	return a
}

// AreaCtx is Area with cooperative cancellation over the unit scan.
func (r MRegion) AreaCtx(ctx context.Context) (MReal, error) {
	var bld mapping.Builder[units.UReal]
	for i, u := range r.M.Units() {
		if err := cancelCheck(ctx, i); err != nil {
			return MReal{}, err
		}
		bld.Append(unitAreaUReal(u))
	}
	return MReal{M: bld.MustBuild()}, nil
}

// unitAreaUReal computes the exact quadratic area polynomial of a
// uregion unit: ½·Σ cross(v_i(t), v_{i+1}(t)) per cycle, outer cycles
// positive, holes negative. Each cross of two linear motions is a
// quadratic in t.
func unitAreaUReal(u units.URegion) units.UReal {
	var a, b, c float64
	addCycle := func(mc units.MCycle, sign float64) {
		n := len(mc)
		var ca, cb, cc float64
		for i := range mc {
			p, q := mc[i], mc[(i+1)%n]
			// cross(p(t), q(t)) = (p0+p1·t) × (q0+q1·t)
			ca += p.X1*q.Y1 - p.Y1*q.X1
			cb += p.X0*q.Y1 + p.X1*q.Y0 - p.Y0*q.X1 - p.Y1*q.X0
			cc += p.X0*q.Y0 - p.Y0*q.X0
		}
		// Signed area of the ring; its orientation is part of the data,
		// so take the ring sign at the unit midpoint to normalise.
		mid := (float64(u.Iv.Start) + float64(u.Iv.End)) / 2
		v := ca*mid*mid + cb*mid + cc
		if v < 0 {
			ca, cb, cc = -ca, -cb, -cc
		}
		a += sign * ca / 2
		b += sign * cb / 2
		c += sign * cc / 2
	}
	for _, f := range u.Faces {
		addCycle(f.Outer, 1)
		for _, h := range f.Holes {
			addCycle(h, -1)
		}
	}
	return units.UReal{Iv: u.Iv, A: a, B: b, C: c}
}

// PerimeterAt returns the exact perimeter at instant t. A fully lifted
// perimeter is not closed in the ureal class in general (a sum of square
// roots of distinct quadratics); use Perimeter for the common closed
// cases.
func (r MRegion) PerimeterAt(t temporal.Instant) (float64, bool) {
	reg, ok := r.AtInstant(t)
	if !ok {
		return 0, false
	}
	return reg.Perimeter(), true
}

// Perimeter returns the time-dependent perimeter as a moving real when
// it is representable: each unit's perimeter must be a polynomial or a
// single square root, which holds for rigid translation (constant edge
// lengths). ok is false otherwise; use PerimeterAt pointwise then.
func (r MRegion) Perimeter() (MReal, bool) {
	var bld mapping.Builder[units.UReal]
	for _, u := range r.M.Units() {
		var total float64
		for _, g := range u.AllMSegs() {
			// Edge length at time t: |d0 + d1·t|; constant iff d1 = 0.
			d1x, d1y := g.E.X1-g.S.X1, g.E.Y1-g.S.Y1
			if !geom.ApproxZero(d1x) || !geom.ApproxZero(d1y) {
				return MReal{}, false
			}
			p, q := g.Eval(u.Iv.Start)
			total += p.Dist(q)
		}
		bld.Append(units.ConstUReal(u.Iv, total))
	}
	return MReal{M: bld.MustBuild()}, true
}

// Intersects returns the moving bool of "the moving point is inside the
// moving region" — an alias aligning with Inside; see MPoint.Inside.
func (r MRegion) Contains(p MPoint) MBool { return p.Inside(r) }

// Cube returns the 3D bounding cube of the whole development.
func (r MRegion) Cube() geom.Cube {
	c := geom.EmptyCube()
	for _, u := range r.M.Units() {
		c = c.Union(u.Cube())
	}
	return c
}

// String renders the moving region.
func (r MRegion) String() string { return r.M.String() }
