package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotDetachedUnderLoad encodes the result of auditing the
// registry accessors for unlocked slice copies: Snapshot performs the
// whole copy — slow-query ring, histogram buckets, status and cause
// maps — under m.mu and into fresh storage, so a caller holding a
// snapshot while writers keep recording sees neither races (checked by
// -race) nor later mutations bleeding into its copy (checked by the
// aliasing assertions below).
func TestSnapshotDetachedUnderLoad(t *testing.T) {
	m := New(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.RecordRequest("/v1/query", 200, time.Duration(i)*time.Microsecond)
				m.RecordOp("atinstant", time.Microsecond)
				m.RecordSlowQuery(SlowQuery{Route: "/v1/query", Millis: float64(i)})
				m.RecordIngestCause("retry", 1)
				m.RecordWALQuarantine(1, "record")
			}
		}(w)
	}

	for i := 0; i < 100; i++ {
		snap := m.Snapshot()
		// Mutating the snapshot must not reach the registry: every
		// container is a fresh copy, not a view of live state.
		for route := range snap.Requests {
			rs := snap.Requests[route]
			rs.Statuses["999"] = -1
			rs.LatencyMS["1ms"] = -1
		}
		if len(snap.SlowQueries) > 0 {
			snap.SlowQueries[0].Query = "mutated"
		}
		snap.Ingest.Causes["injected"] = -1
	}
	close(stop)
	wg.Wait()

	final := m.Snapshot()
	if _, leaked := final.Ingest.Causes["injected"]; leaked {
		t.Error("snapshot cause map aliases the registry's live map")
	}
	if rs, ok := final.Requests["/v1/query"]; ok {
		if _, leaked := rs.Statuses["999"]; leaked {
			t.Error("snapshot status map aliases the registry's live map")
		}
		if rs.LatencyMS["1ms"] < 0 {
			t.Error("snapshot latency map aliases the registry's live map")
		}
	}
	for _, sq := range final.SlowQueries {
		if sq.Query == "mutated" {
			t.Error("snapshot slow-query slice aliases the live ring")
		}
	}
	if len(final.SlowQueries) > 4 {
		t.Errorf("slow-query ring returned %d entries, cap is 4", len(final.SlowQueries))
	}
}
