// Package obs is the observability layer of the serving stack: request
// counters, latency histograms, per-operator timings and a slow-query
// log, all behind one mutex-protected registry that handlers and the
// query evaluator feed. A snapshot of the registry is what /v1/metrics
// serves (expvar-style JSON). The package has no dependencies beyond
// the standard library so every layer — server, db, moving — may import
// it freely.
package obs

import (
	"context"
	"sync"
	"time"
)

// bucketsMS are the upper bounds (milliseconds, inclusive) of the
// latency histogram; a final overflow bucket catches everything above.
var bucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// BucketLabels names the histogram buckets in order, "le" style.
func BucketLabels() []string {
	out := make([]string, 0, len(bucketsMS)+1)
	for _, b := range bucketsMS {
		out = append(out, formatLE(b))
	}
	return append(out, "+Inf")
}

func formatLE(b float64) string {
	switch {
	case b >= 1000:
		return itoa(int(b/1000)) + "s"
	default:
		return itoa(int(b)) + "ms"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// routeStats accumulates per-route request metrics.
type routeStats struct {
	count    int64
	errors   int64 // responses with status >= 400
	timeouts int64 // 408s
	statuses map[int]int64
	totalNS  int64
	maxNS    int64
	buckets  []int64 // len(bucketsMS)+1
}

// opStats accumulates per-operator evaluation timings.
type opStats struct {
	count   int64
	totalNS int64
	maxNS   int64
}

// ingestStats accumulates write-path metrics: batch admission at the
// gate, flush application, and index/WAL maintenance.
type ingestStats struct {
	batches      int64 // acknowledged batches
	observations int64 // observations in acknowledged batches
	backpressure int64 // batches rejected with queue-full
	flushes      int64
	applied      int64 // observations applied to the store
	dropped      int64 // non-monotone observations dropped at apply
	compacted    int64 // appends merged into their predecessor unit
	flushTotalNS int64
	flushMaxNS   int64
	indexMerges  int64 // delta-buffer folds into a rebuilt base tree
	walRecords   int64
	walPages     int64

	// Fault-path counters (PR 3): WAL checkpoint/quarantine volume and
	// the per-cause event map (retries, dead-letters, degraded flips,
	// fail-fast rejections, quarantine causes).
	walCheckpoints     int64
	walCheckpointPages int64
	walQuarantined     int64 // pages moved aside as corrupt
	causes             map[string]int64
}

// cacheStats accumulates result-cache traffic (PR 6): hits and misses
// at the lookup layer, puts and evictions at the adapter, plus running
// byte/entry gauges maintained from the put/evict deltas.
type cacheStats struct {
	hits         int64
	misses       int64
	puts         int64
	evictions    int64
	evictedBytes int64
	bytes        int64 // gauge: resident cached bytes
	entries      int64 // gauge: resident cached entries
}

// epochStats tracks snapshot publication (PR 6): the current epoch
// sequence, how many epochs have been published, and when the last one
// was — /v1/metrics derives the epoch age from it.
type epochStats struct {
	seq         uint64
	publishes   int64
	publishedAt time.Time
}

// liveStats accumulates the standing-query subsystem's traffic (PR 7):
// subscription churn, publish notifications reaching the registry,
// evaluation work, emitted/dropped events and lagged streams.
type liveStats struct {
	subscribes   int64
	unsubscribes int64
	notifies     int64 // epoch publishes delivered to the notifier
	coalesced    int64 // publishes merged under notifier backpressure
	evaluated    int64 // subscription evaluations run
	events       int64 // enter/leave events emitted to buffers
	dropped      int64 // events evicted from full subscriber buffers
	lagged       int64 // streams marked lagged by an eviction
	evalTotalNS  int64
	evalMaxNS    int64
}

// SlowQuery is one entry of the slow-query log.
type SlowQuery struct {
	Route    string  `json:"route"`
	Query    string  `json:"query"`
	Millis   float64 `json:"millis"`
	Status   int     `json:"status"`
	UnixMS   int64   `json:"unix_ms"`
	TimedOut bool    `json:"timed_out"`
}

// Metrics is the registry. The zero value is not usable; construct with
// New. All methods are safe for concurrent use and safe on a nil
// receiver (they become no-ops), so instrumented code does not need to
// guard against a missing registry.
type Metrics struct {
	mu       sync.Mutex
	start    time.Time              // moguard: immutable
	routes   map[string]*routeStats // moguard: guarded by mu
	ops      map[string]*opStats    // moguard: guarded by mu
	slow     []SlowQuery            // moguard: guarded by mu // ring buffer, slowNext is the write cursor
	slowCap  int                    // moguard: immutable
	slowNext int                    // moguard: guarded by mu
	slowLen  int                    // moguard: guarded by mu
	ingest   ingestStats            // moguard: guarded by mu
	cache    cacheStats             // moguard: guarded by mu
	epoch    epochStats             // moguard: guarded by mu
	live     liveStats              // moguard: guarded by mu
	faults   map[string]int64       // moguard: guarded by mu // injected-fault trips by failpoint site
}

// New returns an empty registry keeping up to slowCap slow-query
// entries (a default of 32 when slowCap <= 0).
func New(slowCap int) *Metrics {
	if slowCap <= 0 {
		slowCap = 32
	}
	return &Metrics{
		start:   time.Now(),
		routes:  map[string]*routeStats{},
		ops:     map[string]*opStats{},
		slow:    make([]SlowQuery, slowCap),
		slowCap: slowCap,
		faults:  map[string]int64{},
	}
}

// RecordFaultTrip counts one injected-fault trip at the named failpoint
// site — wired as the injector's OnTrip hook in faultinject builds, so
// /v1/metrics shows which sites a chaos run actually exercised.
func (m *Metrics) RecordFaultTrip(site string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults[site]++
}

// RecordRequest counts one served request on the route with its final
// status and latency.
func (m *Metrics) RecordRequest(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{statuses: map[int]int64{}, buckets: make([]int64, len(bucketsMS)+1)}
		m.routes[route] = rs
	}
	rs.count++
	rs.statuses[status]++
	if status >= 400 {
		rs.errors++
	}
	if status == 408 {
		rs.timeouts++
	}
	ns := d.Nanoseconds()
	rs.totalNS += ns
	if ns > rs.maxNS {
		rs.maxNS = ns
	}
	ms := float64(ns) / 1e6
	slot := len(bucketsMS) // overflow
	for i, ub := range bucketsMS {
		if ms <= ub {
			slot = i
			break
		}
	}
	rs.buckets[slot]++
}

// RecordOp counts one evaluator operator invocation with its duration.
func (m *Metrics) RecordOp(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	os, ok := m.ops[name]
	if !ok {
		os = &opStats{}
		m.ops[name] = os
	}
	os.count++
	ns := d.Nanoseconds()
	os.totalNS += ns
	if ns > os.maxNS {
		os.maxNS = ns
	}
}

// RecordIngestBatch counts one acknowledged ingest batch of n
// observations.
func (m *Metrics) RecordIngestBatch(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.batches++
	m.ingest.observations += int64(n)
}

// RecordIngestBackpressure counts one batch rejected because the write
// queue was full.
func (m *Metrics) RecordIngestBackpressure() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.backpressure++
}

// RecordIngestFlush counts one batcher flush: how many observations
// were applied, dropped as non-monotone, or compacted into their
// predecessor unit, and how long the flush took.
func (m *Metrics) RecordIngestFlush(applied, dropped, compacted int, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.flushes++
	m.ingest.applied += int64(applied)
	m.ingest.dropped += int64(dropped)
	m.ingest.compacted += int64(compacted)
	ns := d.Nanoseconds()
	m.ingest.flushTotalNS += ns
	if ns > m.ingest.flushMaxNS {
		m.ingest.flushMaxNS = ns
	}
}

// RecordIndexMerge counts one delta-buffer fold into a rebuilt base
// tree.
func (m *Metrics) RecordIndexMerge() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.indexMerges++
}

// RecordWALAppend counts one write-ahead log record of the given page
// footprint.
func (m *Metrics) RecordWALAppend(pages int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.walRecords++
	m.ingest.walPages += int64(pages)
}

// RecordWALCheckpoint counts one checkpoint record of the given page
// footprint.
func (m *Metrics) RecordWALCheckpoint(pages int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.walCheckpoints++
	m.ingest.walCheckpointPages += int64(pages)
}

// RecordWALQuarantine counts pages moved aside as corrupt during WAL
// recovery, keyed by what kind of record rotted.
func (m *Metrics) RecordWALQuarantine(pages int, cause string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingest.walQuarantined += int64(pages)
	m.causeLocked("wal_quarantine_"+cause, 1)
}

// RecordIngestCause counts n write-path fault events of the named
// cause — "retry", "dead_letter", "degraded_enter", "degraded_exit",
// "degraded_fast_fail", "checkpoint_error", and the quarantine causes.
func (m *Metrics) RecordIngestCause(cause string, n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.causeLocked(cause, int64(n))
}

func (m *Metrics) causeLocked(cause string, n int64) {
	if m.ingest.causes == nil {
		m.ingest.causes = map[string]int64{}
	}
	m.ingest.causes[cause] += n
}

// RecordCacheHit counts one result served from the cache.
func (m *Metrics) RecordCacheHit() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.hits++
}

// RecordCacheMiss counts one lookup that had to evaluate.
func (m *Metrics) RecordCacheMiss() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.misses++
}

// RecordCachePut counts one result stored, growing the byte/entry
// gauges.
func (m *Metrics) RecordCachePut(bytes int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.puts++
	m.cache.bytes += int64(bytes)
	m.cache.entries++
}

// RecordCacheEvict counts n entries of the given total size evicted to
// stay inside the byte budget, shrinking the gauges.
func (m *Metrics) RecordCacheEvict(n, bytes int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.evictions += int64(n)
	m.cache.evictedBytes += int64(bytes)
	m.cache.bytes -= int64(bytes)
	m.cache.entries -= int64(n)
}

// RecordEpochPublish notes that the snapshot with the given sequence
// number became the current epoch.
func (m *Metrics) RecordEpochPublish(seq uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch.seq = seq
	m.epoch.publishes++
	m.epoch.publishedAt = time.Now()
}

// RecordLiveSubscribe counts one standing-query subscription created.
func (m *Metrics) RecordLiveSubscribe() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live.subscribes++
}

// RecordLiveUnsubscribe counts one subscription removed.
func (m *Metrics) RecordLiveUnsubscribe() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live.unsubscribes++
}

// RecordLiveNotify counts one epoch publish handed to the notifier;
// coalesced marks a publish merged into a neighbour because the
// notifier queue was full.
func (m *Metrics) RecordLiveNotify(coalesced bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live.notifies++
	if coalesced {
		m.live.coalesced++
	}
}

// RecordLiveEval counts one notifier evaluation round: how many
// subscriptions were evaluated, how many events were emitted, how many
// were dropped from full buffers, and how long the round took.
func (m *Metrics) RecordLiveEval(subs, events, dropped int, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live.evaluated += int64(subs)
	m.live.events += int64(events)
	m.live.dropped += int64(dropped)
	ns := d.Nanoseconds()
	m.live.evalTotalNS += ns
	if ns > m.live.evalMaxNS {
		m.live.evalMaxNS = ns
	}
}

// RecordLiveLagged counts one event stream marked lagged by a
// drop-oldest eviction.
func (m *Metrics) RecordLiveLagged() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live.lagged++
}

// RecordSlowQuery appends an entry to the slow-query ring.
func (m *Metrics) RecordSlowQuery(e SlowQuery) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.slow[m.slowNext] = e
	m.slowNext = (m.slowNext + 1) % m.slowCap
	if m.slowLen < m.slowCap {
		m.slowLen++
	}
}

// RouteSnapshot is the JSON form of one route's counters.
type RouteSnapshot struct {
	Count     int64            `json:"count"`
	Errors    int64            `json:"errors"`
	Timeouts  int64            `json:"timeouts"`
	Statuses  map[string]int64 `json:"statuses"`
	AvgMillis float64          `json:"avg_ms"`
	MaxMillis float64          `json:"max_ms"`
	LatencyMS map[string]int64 `json:"latency_ms"`
}

// OpSnapshot is the JSON form of one operator's timings.
type OpSnapshot struct {
	Count     int64   `json:"count"`
	AvgMicros float64 `json:"avg_us"`
	MaxMicros float64 `json:"max_us"`
}

// IngestSnapshot is the JSON form of the write-path counters.
type IngestSnapshot struct {
	Batches            int64   `json:"batches"`
	Observations       int64   `json:"observations"`
	Backpressure       int64   `json:"backpressure"`
	Flushes            int64   `json:"flushes"`
	Applied            int64   `json:"applied"`
	DroppedNonMonotone int64   `json:"dropped_non_monotone"`
	Compacted          int64   `json:"compacted"`
	AvgFlushMillis     float64 `json:"avg_flush_ms"`
	MaxFlushMillis     float64 `json:"max_flush_ms"`
	IndexMerges        int64   `json:"index_merges"`
	WALRecords         int64   `json:"wal_records"`
	WALPages           int64   `json:"wal_pages"`
	// Fault-path counters.
	WALCheckpoints      int64            `json:"wal_checkpoints"`
	WALCheckpointPages  int64            `json:"wal_checkpoint_pages"`
	WALQuarantinedPages int64            `json:"wal_quarantined_pages"`
	Causes              map[string]int64 `json:"causes"`
}

// CacheSnapshot is the JSON form of the result-cache counters.
type CacheSnapshot struct {
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	Puts         int64   `json:"puts"`
	Evictions    int64   `json:"evictions"`
	EvictedBytes int64   `json:"evicted_bytes"`
	Bytes        int64   `json:"bytes"`
	Entries      int64   `json:"entries"`
	HitRatio     float64 `json:"hit_ratio"`
}

// EpochSnapshot is the JSON form of the snapshot-publication state.
type EpochSnapshot struct {
	Seq        uint64  `json:"seq"`
	Publishes  int64   `json:"publishes"`
	AgeSeconds float64 `json:"age_seconds"`
}

// LiveSnapshot is the JSON form of the standing-query counters.
type LiveSnapshot struct {
	Subscribes    int64   `json:"subscribes"`
	Unsubscribes  int64   `json:"unsubscribes"`
	Notifies      int64   `json:"notifies"`
	Coalesced     int64   `json:"coalesced"`
	Evaluated     int64   `json:"evaluated"`
	Events        int64   `json:"events"`
	Dropped       int64   `json:"dropped"`
	Lagged        int64   `json:"lagged"`
	AvgEvalMicros float64 `json:"avg_eval_us"`
	MaxEvalMicros float64 `json:"max_eval_us"`
}

// Snapshot is the full registry state served at /v1/metrics.
type Snapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Requests      map[string]RouteSnapshot `json:"requests"`
	Operators     map[string]OpSnapshot    `json:"operators"`
	SlowQueries   []SlowQuery              `json:"slow_queries"`
	Ingest        IngestSnapshot           `json:"ingest"`
	Cache         CacheSnapshot            `json:"cache"`
	Epoch         EpochSnapshot            `json:"epoch"`
	Live          LiveSnapshot             `json:"live"`
	// Faults counts injected failpoint trips by site; empty outside
	// faultinject builds and chaos runs.
	Faults map[string]int64 `json:"faults,omitempty"`
}

// Snapshot copies the registry into its JSON-serialisable form. Safe on
// a nil receiver (returns an empty snapshot).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{Requests: map[string]RouteSnapshot{}, Operators: map[string]OpSnapshot{}, SlowQueries: []SlowQuery{}}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]RouteSnapshot, len(m.routes)),
		Operators:     make(map[string]OpSnapshot, len(m.ops)),
		SlowQueries:   make([]SlowQuery, 0, m.slowLen),
	}
	labels := BucketLabels()
	for route, rs := range m.routes {
		snap := RouteSnapshot{
			Count:     rs.count,
			Errors:    rs.errors,
			Timeouts:  rs.timeouts,
			Statuses:  make(map[string]int64, len(rs.statuses)),
			MaxMillis: float64(rs.maxNS) / 1e6,
			LatencyMS: make(map[string]int64, len(labels)),
		}
		if rs.count > 0 {
			snap.AvgMillis = float64(rs.totalNS) / float64(rs.count) / 1e6
		}
		for code, n := range rs.statuses {
			snap.Statuses[itoa(code)] = n
		}
		for i, label := range labels {
			snap.LatencyMS[label] = rs.buckets[i]
		}
		out.Requests[route] = snap
	}
	for name, os := range m.ops {
		snap := OpSnapshot{Count: os.count, MaxMicros: float64(os.maxNS) / 1e3}
		if os.count > 0 {
			snap.AvgMicros = float64(os.totalNS) / float64(os.count) / 1e3
		}
		out.Operators[name] = snap
	}
	// Oldest-first over the ring.
	for i := 0; i < m.slowLen; i++ {
		idx := (m.slowNext - m.slowLen + i + m.slowCap) % m.slowCap
		out.SlowQueries = append(out.SlowQueries, m.slow[idx])
	}
	ing := m.ingest
	out.Ingest = IngestSnapshot{
		Batches:             ing.batches,
		Observations:        ing.observations,
		Backpressure:        ing.backpressure,
		Flushes:             ing.flushes,
		Applied:             ing.applied,
		DroppedNonMonotone:  ing.dropped,
		Compacted:           ing.compacted,
		MaxFlushMillis:      float64(ing.flushMaxNS) / 1e6,
		IndexMerges:         ing.indexMerges,
		WALRecords:          ing.walRecords,
		WALPages:            ing.walPages,
		WALCheckpoints:      ing.walCheckpoints,
		WALCheckpointPages:  ing.walCheckpointPages,
		WALQuarantinedPages: ing.walQuarantined,
		Causes:              make(map[string]int64, len(ing.causes)),
	}
	for cause, n := range ing.causes {
		out.Ingest.Causes[cause] = n
	}
	if ing.flushes > 0 {
		out.Ingest.AvgFlushMillis = float64(ing.flushTotalNS) / float64(ing.flushes) / 1e6
	}
	out.Cache = CacheSnapshot{
		Hits:         m.cache.hits,
		Misses:       m.cache.misses,
		Puts:         m.cache.puts,
		Evictions:    m.cache.evictions,
		EvictedBytes: m.cache.evictedBytes,
		Bytes:        m.cache.bytes,
		Entries:      m.cache.entries,
	}
	if lookups := m.cache.hits + m.cache.misses; lookups > 0 {
		out.Cache.HitRatio = float64(m.cache.hits) / float64(lookups)
	}
	out.Epoch = EpochSnapshot{Seq: m.epoch.seq, Publishes: m.epoch.publishes}
	if !m.epoch.publishedAt.IsZero() {
		out.Epoch.AgeSeconds = time.Since(m.epoch.publishedAt).Seconds()
	}
	out.Live = LiveSnapshot{
		Subscribes:    m.live.subscribes,
		Unsubscribes:  m.live.unsubscribes,
		Notifies:      m.live.notifies,
		Coalesced:     m.live.coalesced,
		Evaluated:     m.live.evaluated,
		Events:        m.live.events,
		Dropped:       m.live.dropped,
		Lagged:        m.live.lagged,
		MaxEvalMicros: float64(m.live.evalMaxNS) / 1e3,
	}
	if m.live.evaluated > 0 {
		out.Live.AvgEvalMicros = float64(m.live.evalTotalNS) / float64(m.live.evaluated) / 1e3
	}
	if len(m.faults) > 0 {
		out.Faults = make(map[string]int64, len(m.faults))
		for site, n := range m.faults {
			out.Faults[site] = n
		}
	}
	return out
}

// --- context plumbing ---

type ctxKey struct{}

// NewContext returns a context carrying the registry, for the query
// evaluator to record operator timings against.
func NewContext(ctx context.Context, m *Metrics) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, m)
}

// FromContext extracts the registry, or nil when none was attached.
// The nil result is safe to call methods on.
func FromContext(ctx context.Context) *Metrics {
	m, _ := ctx.Value(ctxKey{}).(*Metrics)
	return m
}
