package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestRequestCounters(t *testing.T) {
	m := New(4)
	m.RecordRequest("/v1/query", 200, 3*time.Millisecond)
	m.RecordRequest("/v1/query", 408, 12*time.Millisecond)
	m.RecordRequest("/v1/window", 400, 500*time.Microsecond)
	s := m.Snapshot()
	q := s.Requests["/v1/query"]
	if q.Count != 2 || q.Errors != 1 || q.Timeouts != 1 {
		t.Fatalf("query route = %+v", q)
	}
	if q.Statuses["200"] != 1 || q.Statuses["408"] != 1 {
		t.Errorf("statuses = %v", q.Statuses)
	}
	if q.LatencyMS["5ms"] != 1 || q.LatencyMS["25ms"] != 1 {
		t.Errorf("latency buckets = %v", q.LatencyMS)
	}
	if q.MaxMillis < 11 || q.AvgMillis <= 0 {
		t.Errorf("avg/max = %v/%v", q.AvgMillis, q.MaxMillis)
	}
	w := s.Requests["/v1/window"]
	if w.Count != 1 || w.Errors != 1 || w.Timeouts != 0 {
		t.Errorf("window route = %+v", w)
	}
}

func TestOpTimings(t *testing.T) {
	m := New(0)
	m.RecordOp("inside", 2*time.Millisecond)
	m.RecordOp("inside", 4*time.Millisecond)
	m.RecordOp("length", time.Microsecond)
	s := m.Snapshot()
	in := s.Operators["inside"]
	if in.Count != 2 || in.AvgMicros < 1000 || in.MaxMicros < in.AvgMicros {
		t.Fatalf("inside = %+v", in)
	}
	if s.Operators["length"].Count != 1 {
		t.Errorf("length = %+v", s.Operators["length"])
	}
}

func TestSlowQueryRing(t *testing.T) {
	m := New(2)
	for i, q := range []string{"a", "b", "c"} {
		m.RecordSlowQuery(SlowQuery{Query: q, Millis: float64(i)})
	}
	got := m.Snapshot().SlowQueries
	if len(got) != 2 || got[0].Query != "b" || got[1].Query != "c" {
		t.Fatalf("ring = %v", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var m *Metrics
	m.RecordRequest("/x", 200, time.Millisecond)
	m.RecordOp("inside", time.Millisecond)
	m.RecordSlowQuery(SlowQuery{})
	if s := m.Snapshot(); len(s.Requests) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	// A context without a registry yields nil, which is safe to use.
	FromContext(context.Background()).RecordOp("inside", time.Millisecond)
}

func TestContextRoundTrip(t *testing.T) {
	m := New(0)
	ctx := NewContext(context.Background(), m)
	if FromContext(ctx) != m {
		t.Fatal("registry lost in context")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Error("nil registry should not wrap the context")
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.RecordRequest("/v1/query", 200, time.Millisecond)
				m.RecordOp("inside", time.Microsecond)
				m.RecordSlowQuery(SlowQuery{Query: "q"})
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Requests["/v1/query"].Count != 800 || s.Operators["inside"].Count != 800 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestIngestMetrics(t *testing.T) {
	m := New(0)
	m.RecordIngestBatch(5)
	m.RecordIngestBatch(3)
	m.RecordIngestBackpressure()
	m.RecordIngestFlush(4, 1, 2, 2*time.Millisecond)
	m.RecordIngestFlush(4, 0, 0, 4*time.Millisecond)
	m.RecordIndexMerge()
	m.RecordWALAppend(3)
	s := m.Snapshot().Ingest
	if s.Batches != 2 || s.Observations != 8 || s.Backpressure != 1 {
		t.Fatalf("admission counters: %+v", s)
	}
	if s.Flushes != 2 || s.Applied != 8 || s.DroppedNonMonotone != 1 || s.Compacted != 2 {
		t.Fatalf("flush counters: %+v", s)
	}
	if s.AvgFlushMillis < 2.9 || s.AvgFlushMillis > 3.1 || s.MaxFlushMillis < 3.9 {
		t.Fatalf("flush latencies: %+v", s)
	}
	if s.IndexMerges != 1 || s.WALRecords != 1 || s.WALPages != 3 {
		t.Fatalf("maintenance counters: %+v", s)
	}
	// The nil registry swallows all ingest recording.
	var nilM *Metrics
	nilM.RecordIngestBatch(1)
	nilM.RecordIngestBackpressure()
	nilM.RecordIngestFlush(1, 0, 0, time.Millisecond)
	nilM.RecordIndexMerge()
	nilM.RecordWALAppend(1)
}

func TestFaultRecoveryMetrics(t *testing.T) {
	m := New(0)
	m.RecordWALCheckpoint(2)
	m.RecordWALCheckpoint(3)
	m.RecordWALQuarantine(4, "checkpoint")
	m.RecordWALQuarantine(1, "record")
	m.RecordWALQuarantine(1, "record")
	m.RecordIngestCause("wal_retry", 3)
	m.RecordIngestCause("dead_letter", 7)
	s := m.Snapshot().Ingest
	if s.WALCheckpoints != 2 || s.WALCheckpointPages != 5 {
		t.Fatalf("checkpoint counters: %+v", s)
	}
	if s.WALQuarantinedPages != 6 {
		t.Fatalf("quarantine counter: %+v", s)
	}
	if s.Causes["wal_quarantine_checkpoint"] != 1 || s.Causes["wal_quarantine_record"] != 2 {
		t.Fatalf("quarantine causes: %v", s.Causes)
	}
	if s.Causes["wal_retry"] != 3 || s.Causes["dead_letter"] != 7 {
		t.Fatalf("ingest causes: %v", s.Causes)
	}
	// The snapshot map is a copy, detached from the live registry.
	s.Causes["wal_retry"] = 999
	if m.Snapshot().Ingest.Causes["wal_retry"] != 3 {
		t.Fatal("snapshot causes map aliases the registry")
	}
	// The nil registry swallows the fault-path recording too.
	var nilM *Metrics
	nilM.RecordWALCheckpoint(1)
	nilM.RecordWALQuarantine(1, "record")
	nilM.RecordIngestCause("x", 1)
}
