package spatial

import (
	"errors"
	"testing"

	"movingdb/internal/geom"
)

func sq(x, y, w float64) []geom.Point {
	return Ring(x, y, x+w, y, x+w, y+w, x, y+w)
}

func TestCycleCanonical(t *testing.T) {
	// Same ring given CW, rotated: identical canonical form.
	a := MustCycle(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	b := MustCycle(geom.Pt(4, 4), geom.Pt(4, 0), geom.Pt(0, 0), geom.Pt(0, 4)) // CW, rotated
	if !a.Equal(b) {
		t.Errorf("canonical forms differ: %v vs %v", a, b)
	}
	if a.Vertices()[0] != geom.Pt(0, 0) {
		t.Errorf("canonical start = %v", a.Vertices()[0])
	}
	if signedArea(a.Vertices()) <= 0 {
		t.Error("canonical orientation not CCW")
	}
	if a.Area() != 16 || a.Perimeter() != 16 {
		t.Errorf("area/perimeter = %v/%v", a.Area(), a.Perimeter())
	}
}

func TestCycleValidation(t *testing.T) {
	if _, err := NewCycle(geom.Pt(0, 0), geom.Pt(1, 1)); !errors.Is(err, ErrInvalidCycle) {
		t.Error("two-vertex cycle accepted")
	}
	// Self-intersecting "bowtie".
	if _, err := NewCycle(geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2)); !errors.Is(err, ErrInvalidCycle) {
		t.Error("bowtie accepted")
	}
	// Repeated vertex.
	if _, err := NewCycle(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 0), geom.Pt(0, 2)); err == nil {
		t.Error("repeated vertex accepted")
	}
	// Collinear spike (touching edges).
	if _, err := NewCycle(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(2, 0), geom.Pt(2, 2)); err == nil {
		t.Error("spike accepted")
	}
	// Valid triangle.
	if _, err := NewCycle(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(2, 3)); err != nil {
		t.Errorf("triangle rejected: %v", err)
	}
}

func TestCycleContainment(t *testing.T) {
	outer := MustCycle(sq(0, 0, 10)...)
	inner := MustCycle(sq(2, 2, 2)...)
	beside := MustCycle(sq(20, 0, 2)...)
	if !inner.EdgeInside(outer) {
		t.Error("inner not edge-inside outer")
	}
	if outer.EdgeInside(inner) {
		t.Error("outer edge-inside inner")
	}
	if !inner.EdgeDisjoint(beside) {
		t.Error("separate cycles not edge-disjoint")
	}
	if inner.EdgeDisjoint(outer) {
		t.Error("nested cycles reported edge-disjoint")
	}
	if !outer.ContainsPoint(geom.Pt(0, 5)) {
		t.Error("boundary point not contained")
	}
	if outer.ContainsPointStrict(geom.Pt(0, 5)) {
		t.Error("boundary point strictly contained")
	}
}

func TestFaceAndRegion(t *testing.T) {
	r, err := PolygonRegion(sq(0, 0, 10), sq(2, 2, 2), sq(6, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 1 || r.NumCycles() != 3 || r.NumSegments() != 12 {
		t.Errorf("structure = %d faces, %d cycles, %d segs", r.NumFaces(), r.NumCycles(), r.NumSegments())
	}
	if got := r.Area(); got != 100-4-4 {
		t.Errorf("Area = %v", got)
	}
	if got := r.Perimeter(); got != 40+8+8 {
		t.Errorf("Perimeter = %v", got)
	}
	if !r.ContainsPoint(geom.Pt(1, 1)) {
		t.Error("face point not contained")
	}
	if r.ContainsPoint(geom.Pt(3, 3)) {
		t.Error("hole interior contained")
	}
	if !r.ContainsPoint(geom.Pt(2, 3)) {
		t.Error("hole boundary must belong to the region (closure semantics)")
	}
	if r.ContainsPoint(geom.Pt(11, 1)) {
		t.Error("outside point contained")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRegionInvalid(t *testing.T) {
	// Hole outside the outer cycle.
	if _, err := PolygonRegion(sq(0, 0, 4), sq(10, 10, 2)); !errors.Is(err, ErrInvalidRegion) {
		t.Error("external hole accepted")
	}
	// Hole overlapping the outer boundary.
	if _, err := PolygonRegion(sq(0, 0, 4), sq(2, 0, 4)); err == nil {
		t.Error("hole crossing boundary accepted")
	}
	// Overlapping faces.
	f1 := MustFace(MustCycle(sq(0, 0, 4)...))
	f2 := MustFace(MustCycle(sq(2, 2, 4)...))
	if _, err := NewRegion(f1, f2); !errors.Is(err, ErrInvalidRegion) {
		t.Error("overlapping faces accepted")
	}
	// Overlapping holes.
	if _, err := PolygonRegion(sq(0, 0, 10), sq(2, 2, 3), sq(3, 3, 3)); err == nil {
		t.Error("overlapping holes accepted")
	}
}

func TestRegionMultiFace(t *testing.T) {
	r, err := NewRegion(
		MustFace(MustCycle(sq(0, 0, 2)...)),
		MustFace(MustCycle(sq(5, 5, 3)...)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 2 {
		t.Fatalf("faces = %d", r.NumFaces())
	}
	if got := r.Area(); got != 4+9 {
		t.Errorf("Area = %v", got)
	}
	// Canonical face order: by first vertex of the outer cycle.
	if r.Faces()[0].Outer.Vertices()[0] != geom.Pt(0, 0) {
		t.Error("faces not in canonical order")
	}
	if !r.ContainsPoint(geom.Pt(6, 6)) || r.ContainsPoint(geom.Pt(4, 4)) {
		t.Error("multi-face membership wrong")
	}
}

func TestFaceInsideHole(t *testing.T) {
	// An island: face inside the hole of another face.
	big := MustFace(MustCycle(sq(0, 0, 10)...), MustCycle(sq(2, 2, 6)...))
	island := MustFace(MustCycle(sq(4, 4, 2)...))
	r, err := NewRegion(big, island)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Area(); got != (100-36)+4 {
		t.Errorf("Area = %v", got)
	}
	if !r.ContainsPoint(geom.Pt(5, 5)) {
		t.Error("island interior not contained")
	}
	if r.ContainsPoint(geom.Pt(3, 3)) {
		t.Error("hole ring (outside island) contained")
	}
	if !r.ContainsPoint(geom.Pt(1, 1)) {
		t.Error("big face interior not contained")
	}
}

func TestRegionEqual(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 4), sq(1, 1, 1))
	b := MustPolygonRegion(sq(0, 0, 4), sq(1, 1, 1))
	c := MustPolygonRegion(sq(0, 0, 4))
	if !a.Equal(b) {
		t.Error("identical regions not equal")
	}
	if a.Equal(c) {
		t.Error("different regions equal")
	}
	var empty Region
	if !empty.IsEmpty() || empty.Area() != 0 {
		t.Error("zero Region not empty")
	}
}

func TestRegionSegmentQueries(t *testing.T) {
	r := MustPolygonRegion(sq(0, 0, 4))
	if !r.IntersectsSegment(geom.Seg(-1, 2, 1, 2)) {
		t.Error("crossing segment missed")
	}
	if !r.IntersectsSegment(geom.Seg(1, 1, 2, 2)) {
		t.Error("fully-inside segment missed")
	}
	if r.IntersectsSegment(geom.Seg(5, 5, 6, 6)) {
		t.Error("outside segment reported")
	}
	if got := r.DistToPoint(geom.Pt(7, 0)); got != 3 {
		t.Errorf("DistToPoint = %v", got)
	}
	if got := r.DistToPoint(geom.Pt(2, 2)); got != 0 {
		t.Errorf("inside DistToPoint = %v", got)
	}
	l := MustLine(geom.Seg(-1, 2, 0.5, 2))
	if !r.IntersectsLine(l) {
		t.Error("IntersectsLine missed")
	}
}

func TestClose(t *testing.T) {
	// Square with hole from a segment soup.
	segs := append(MustCycle(sq(0, 0, 10)...).Segments(), MustCycle(sq(2, 2, 2)...).Segments()...)
	r, err := Close(segs)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 1 || r.NumCycles() != 2 {
		t.Fatalf("structure = %d faces, %d cycles", r.NumFaces(), r.NumCycles())
	}
	if got := r.Area(); got != 100-4 {
		t.Errorf("Area = %v", got)
	}
	want := MustPolygonRegion(sq(0, 0, 10), sq(2, 2, 2))
	if !r.Equal(want) {
		t.Errorf("Close result differs from direct construction:\n%v\n%v", r, want)
	}
}

func TestCloseMultiFaceAndIsland(t *testing.T) {
	var segs []geom.Segment
	segs = append(segs, MustCycle(sq(0, 0, 10)...).Segments()...) // big outer
	segs = append(segs, MustCycle(sq(2, 2, 6)...).Segments()...)  // its hole
	segs = append(segs, MustCycle(sq(4, 4, 2)...).Segments()...)  // island in the hole
	segs = append(segs, MustCycle(sq(20, 0, 3)...).Segments()...) // separate face
	r, err := Close(segs)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 3 || r.NumCycles() != 4 {
		t.Fatalf("structure = %d faces, %d cycles", r.NumFaces(), r.NumCycles())
	}
	if got := r.Area(); got != (100-36)+4+9 {
		t.Errorf("Area = %v", got)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate after Close: %v", err)
	}
}

func TestCloseTouchingHole(t *testing.T) {
	// A hole touching the outer cycle in exactly one vertex: the face
	// walk of the in-between area is non-simple and must be split.
	outer := MustCycle(sq(0, 0, 8)...)
	hole := MustCycle(geom.Pt(0, 0), geom.Pt(3, 1), geom.Pt(1, 3)) // touches outer at (0,0)
	segs := append(outer.Segments(), hole.Segments()...)
	r, err := Close(segs)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 1 || r.NumCycles() != 2 {
		t.Fatalf("structure = %d faces, %d cycles", r.NumFaces(), r.NumCycles())
	}
	if got, want := r.Area(), 64-hole.Area(); got != want {
		t.Errorf("Area = %v, want %v", got, want)
	}
}

func TestCloseErrors(t *testing.T) {
	// Dangling segment: odd vertex degree.
	segs := append(MustCycle(sq(0, 0, 4)...).Segments(), geom.Seg(10, 10, 11, 11))
	if _, err := Close(segs); !errors.Is(err, ErrInvalidRegion) {
		t.Error("dangling segment accepted")
	}
	// Empty input: empty region.
	r, err := Close(nil)
	if err != nil || !r.IsEmpty() {
		t.Errorf("Close(nil) = %v, %v", r, err)
	}
}

func TestCloseTouchingFaces(t *testing.T) {
	// Two triangles touching at one point: two faces.
	t1 := MustCycle(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2))
	t2 := MustCycle(geom.Pt(2, 2), geom.Pt(4, 2), geom.Pt(4, 4))
	segs := append(t1.Segments(), t2.Segments()...)
	r, err := Close(segs)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 2 {
		t.Fatalf("faces = %d", r.NumFaces())
	}
	if got := r.Area(); got != t1.Area()+t2.Area() {
		t.Errorf("Area = %v", got)
	}
}
