package spatial

import (
	"slices"

	"movingdb/internal/geom"
)

// This file provides construction paths for callers that already
// guarantee the carrier set constraints — primarily the evaluation of
// validated temporal units at inner instants (Section 5.1): a valid
// uregion unit yields a valid region at every instant of its open
// interval, so re-validating on every atinstant would destroy the
// O(log n + r log r) bound.

// LineUnchecked assembles a line value from segments without the
// collinear-overlap check. The segments are still brought into canonical
// halfsegment order.
func LineUnchecked(segs []geom.Segment) Line {
	return lineFromSegments(dedupSegments(segs))
}

// CycleUnchecked builds a cycle in canonical form without the simple-
// polygon validation.
func CycleUnchecked(verts []geom.Point) Cycle { return newCycleTrusted(verts) }

// FaceUnchecked builds a face without validation (holes are still
// canonically ordered).
func FaceUnchecked(outer Cycle, holes []Cycle) Face {
	return Face{Outer: outer, Holes: sortHoles(holes)}
}

// RegionUnchecked assembles a region value from faces without
// validation. Faces are canonically ordered and the halfsegment array
// and summary fields are computed as usual.
func RegionUnchecked(faces []Face) Region { return regionFromFacesTrusted(faces) }

// OddParityFragments implements the endpoint cleanup rule of
// Section 3.2.6 for uregion (and the overlap part of merge-segs for
// uline): segments on a common supporting line are partitioned into
// elementary fragments at all endpoints; a fragment covered by an even
// number of segments vanishes (coinciding boundary pieces cancel), a
// fragment covered by an odd number survives. The input is a multiset —
// duplicated segments cancel each other. Fragments on distinct
// supporting lines pass through unchanged (count 1).
func OddParityFragments(segs []geom.Segment) []geom.Segment {
	groups := make(map[lineKey][]geom.Segment)
	for _, s := range segs {
		groups[keyOf(s)] = append(groups[keyOf(s)], s)
	}
	var out []geom.Segment
	for _, g := range groups {
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		// Parametrise the common line by projection onto the direction
		// of the first segment, measured from its left endpoint.
		ref := g[0]
		d := ref.Dir()
		d = d.Scale(1 / d.Norm())
		proj := func(p geom.Point) float64 { return p.Sub(ref.Left).Dot(d) }
		type span struct{ lo, hi float64 }
		spans := make([]span, 0, len(g))
		var cuts []float64
		for _, s := range g {
			lo, hi := proj(s.Left), proj(s.Right)
			if lo > hi {
				lo, hi = hi, lo
			}
			spans = append(spans, span{lo, hi})
			cuts = append(cuts, lo, hi)
		}
		slices.Sort(cuts)
		cuts = slices.Compact(cuts)
		// Emit surviving fragments, merging consecutive ones into
		// maximal segments to keep the result canonical.
		runStart := -1
		flush := func(endIdx int) {
			if runStart < 0 {
				return
			}
			p := ref.Left.Add(d.Scale(cuts[runStart]))
			q := ref.Left.Add(d.Scale(cuts[endIdx]))
			if seg, err := geom.NewSegment(p, q); err == nil {
				out = append(out, seg)
			}
			runStart = -1
		}
		for k := 0; k+1 < len(cuts); k++ {
			mid := (cuts[k] + cuts[k+1]) / 2
			count := 0
			for _, sp := range spans {
				if sp.lo <= mid && mid <= sp.hi {
					count++
				}
			}
			if count%2 == 1 {
				if runStart < 0 {
					runStart = k
				}
			} else {
				flush(k)
			}
		}
		flush(len(cuts) - 1)
	}
	geom.SortSegments(out)
	return out
}
