package spatial

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"movingdb/internal/geom"
)

// Face is a pair of an outer cycle and a possibly empty set of hole
// cycles (the Face carrier set of Section 3.2.2). Holes are kept in a
// canonical order (by their first vertex) for unique representation.
type Face struct {
	Outer Cycle
	Holes []Cycle
}

// ErrInvalidRegion reports a violation of the region carrier set
// constraints.
var ErrInvalidRegion = errors.New("spatial: invalid region")

// NewFace validates a face: every hole must be edge-inside the outer
// cycle and holes must be pairwise edge-disjoint.
func NewFace(outer Cycle, holes ...Cycle) (Face, error) {
	f := Face{Outer: outer, Holes: sortHoles(holes)}
	if err := f.Validate(); err != nil {
		return Face{}, err
	}
	return f, nil
}

// MustFace is like NewFace but panics on invalid input.
func MustFace(outer Cycle, holes ...Cycle) Face {
	f, err := NewFace(outer, holes...)
	if err != nil {
		panic(err)
	}
	return f
}

func sortHoles(holes []Cycle) []Cycle {
	hs := make([]Cycle, len(holes))
	copy(hs, holes)
	slices.SortFunc(hs, func(a, b Cycle) int { return a.verts[0].Cmp(b.verts[0]) })
	return hs
}

// Validate checks the Face carrier set constraints.
func (f Face) Validate() error {
	if err := f.Outer.Validate(); err != nil {
		return err
	}
	for i, h := range f.Holes {
		if err := h.Validate(); err != nil {
			return err
		}
		if !h.EdgeInside(f.Outer) {
			return fmt.Errorf("%w: hole %v not edge-inside outer cycle", ErrInvalidRegion, h)
		}
		for j := i + 1; j < len(f.Holes); j++ {
			if !h.EdgeDisjoint(f.Holes[j]) {
				return fmt.Errorf("%w: holes %v and %v not edge-disjoint", ErrInvalidRegion, h, f.Holes[j])
			}
		}
	}
	return nil
}

// Area returns the face area: outer cycle area minus hole areas.
func (f Face) Area() float64 {
	a := f.Outer.Area()
	for _, h := range f.Holes {
		a -= h.Area()
	}
	return a
}

// Perimeter returns the total boundary length including holes.
func (f Face) Perimeter() float64 {
	p := f.Outer.Perimeter()
	for _, h := range f.Holes {
		p += h.Perimeter()
	}
	return p
}

// Segments returns all boundary segments of the face.
func (f Face) Segments() []geom.Segment {
	segs := f.Outer.Segments()
	for _, h := range f.Holes {
		segs = append(segs, h.Segments()...)
	}
	return segs
}

// ContainsPoint reports whether p belongs to the face (boundary
// included, hole interiors excluded; hole boundaries belong to the face
// by the closure semantics of Section 3.2.2).
func (f Face) ContainsPoint(p geom.Point) bool {
	if !f.Outer.ContainsPoint(p) {
		return false
	}
	for _, h := range f.Holes {
		if h.ContainsPointStrict(p) {
			return false
		}
	}
	return true
}

// EdgeDisjoint reports whether faces f and g are edge-disjoint: their
// outer cycles are edge-disjoint, or one face lies edge-inside a hole of
// the other (Section 3.2.2).
func (f Face) EdgeDisjoint(g Face) bool {
	if f.Outer.EdgeDisjoint(g.Outer) {
		return true
	}
	for _, h := range g.Holes {
		if f.Outer.EdgeInside(h) {
			return true
		}
	}
	for _, h := range f.Holes {
		if g.Outer.EdgeInside(h) {
			return true
		}
	}
	return false
}

// Region is the discrete region type: a set of pairwise edge-disjoint
// faces (Section 3.2.2). Besides the face structure, the value holds the
// ordered halfsegment array and summary data of the root record design
// of Section 4.1. The zero Region is the empty region.
type Region struct {
	faces []Face
	hs    []geom.HalfSegment
	bbox  geom.Rect
	area  float64
	perim float64
}

// NewRegion validates the faces (each face internally, and pairwise
// edge-disjointness) and assembles the region value.
func NewRegion(faces ...Face) (Region, error) {
	for i, f := range faces {
		if err := f.Validate(); err != nil {
			return Region{}, err
		}
		for j := i + 1; j < len(faces); j++ {
			if !f.EdgeDisjoint(faces[j]) {
				return Region{}, fmt.Errorf("%w: faces %d and %d not edge-disjoint", ErrInvalidRegion, i, j)
			}
		}
	}
	return regionFromFacesTrusted(faces), nil
}

// MustRegion is like NewRegion but panics on invalid input.
func MustRegion(faces ...Face) Region {
	r, err := NewRegion(faces...)
	if err != nil {
		panic(err)
	}
	return r
}

// regionFromFacesTrusted assembles the region value without validation.
func regionFromFacesTrusted(faces []Face) Region {
	fs := make([]Face, len(faces))
	copy(fs, faces)
	slices.SortFunc(fs, func(a, b Face) int { return a.Outer.verts[0].Cmp(b.Outer.verts[0]) })
	var segs []geom.Segment
	var area, perim float64
	for _, f := range fs {
		segs = append(segs, f.Segments()...)
		area += f.Area()
		perim += f.Perimeter()
	}
	hs := geom.HalfSegments(segs)
	debugCheckHalfSegments("regionFromFacesTrusted", hs)
	bbox := geom.EmptyRect()
	for _, s := range segs {
		bbox = bbox.Union(s.BBox())
	}
	return Region{faces: fs, hs: hs, bbox: bbox, area: area, perim: perim}
}

// Faces returns the canonical face sequence (shared; read-only).
func (r Region) Faces() []Face { return r.faces }

// NumFaces returns the number of faces.
func (r Region) NumFaces() int { return len(r.faces) }

// NumCycles returns the total number of cycles (outer + holes).
func (r Region) NumCycles() int {
	n := 0
	for _, f := range r.faces {
		n += 1 + len(f.Holes)
	}
	return n
}

// NumSegments returns the number of boundary segments.
func (r Region) NumSegments() int { return len(r.hs) / 2 }

// IsEmpty reports whether the region has no faces.
func (r Region) IsEmpty() bool { return len(r.faces) == 0 }

// HalfSegments returns the ordered halfsegment array (shared;
// read-only).
func (r Region) HalfSegments() []geom.HalfSegment { return r.hs }

// Segments returns all boundary segments.
func (r Region) Segments() []geom.Segment { return geom.SegmentsOf(r.hs) }

// Area returns the total area (the size operation).
func (r Region) Area() float64 { return r.area }

// Perimeter returns the total boundary length.
func (r Region) Perimeter() float64 { return r.perim }

// BBox returns the bounding box from the root record.
func (r Region) BBox() geom.Rect { return r.bbox }

// ContainsPoint reports whether p belongs to the region (boundary
// included), via the plumbline parity over all boundary segments.
func (r Region) ContainsPoint(p geom.Point) bool {
	if !r.bbox.ContainsPoint(p) {
		return false
	}
	return geom.Plumbline(p, geom.SegmentsOf(r.hs))
}

// IntersectsSegment reports whether segment s shares a point with the
// region (boundary or interior).
func (r Region) IntersectsSegment(s geom.Segment) bool {
	if !r.bbox.Intersects(s.BBox()) {
		return false
	}
	for _, h := range r.hs {
		if h.LeftDom {
			if k, _ := geom.Intersect(h.Seg, s); k != geom.IntersectNone {
				return true
			}
		}
	}
	return r.ContainsPoint(s.Left)
}

// IntersectsLine reports whether the line shares a point with the
// region.
func (r Region) IntersectsLine(l Line) bool {
	for _, h := range l.HalfSegments() {
		if h.LeftDom && r.IntersectsSegment(h.Seg) {
			return true
		}
	}
	return false
}

// DistToPoint returns the distance from the region to p: zero if p is
// inside, otherwise the distance to the nearest boundary segment.
func (r Region) DistToPoint(p geom.Point) float64 {
	if r.ContainsPoint(p) {
		return 0
	}
	d := 1e308
	for _, h := range r.hs {
		if h.LeftDom {
			d = min(d, h.Seg.DistToPoint(p))
		}
	}
	return d
}

// Equal reports value equality via the ordered halfsegment arrays plus
// the face structure.
func (r Region) Equal(q Region) bool {
	if !slices.Equal(r.hs, q.hs) {
		return false
	}
	if len(r.faces) != len(q.faces) {
		return false
	}
	for i := range r.faces {
		if !r.faces[i].Outer.Equal(q.faces[i].Outer) || len(r.faces[i].Holes) != len(q.faces[i].Holes) {
			return false
		}
		for j := range r.faces[i].Holes {
			if !r.faces[i].Holes[j].Equal(q.faces[i].Holes[j]) {
				return false
			}
		}
	}
	return true
}

// Validate runs the full carrier set checks (for values decoded from
// storage or assembled by trusted paths).
func (r Region) Validate() error {
	for i, f := range r.faces {
		if err := f.Validate(); err != nil {
			return err
		}
		for j := i + 1; j < len(r.faces); j++ {
			if !f.EdgeDisjoint(r.faces[j]) {
				return fmt.Errorf("%w: faces %d and %d not edge-disjoint", ErrInvalidRegion, i, j)
			}
		}
	}
	return nil
}

// String renders the region face by face.
func (r Region) String() string {
	var b strings.Builder
	b.WriteString("region{")
	for i, f := range r.faces {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "face(outer=%v", f.Outer)
		for _, h := range f.Holes {
			fmt.Fprintf(&b, ", hole=%v", h)
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}
