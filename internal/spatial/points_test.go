package spatial

import (
	"testing"
	"testing/quick"

	"movingdb/internal/geom"
)

func TestPointType(t *testing.T) {
	u := UndefPoint()
	if u.Defined() {
		t.Error("UndefPoint defined")
	}
	if u.String() != "undef" {
		t.Errorf("String = %q", u.String())
	}
	p := DefPoint(geom.Pt(1, 2))
	if !p.Defined() || p.P != geom.Pt(1, 2) {
		t.Error("DefPoint roundtrip failed")
	}
}

func TestPointsCanonical(t *testing.T) {
	ps := NewPoints(geom.Pt(2, 1), geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(1, 5))
	if ps.Len() != 3 {
		t.Fatalf("Len = %d", ps.Len())
	}
	want := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 5), geom.Pt(2, 1)}
	for i, p := range ps.Slice() {
		if p != want[i] {
			t.Errorf("order[%d] = %v, want %v", i, p, want[i])
		}
	}
	if err := ps.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !ps.Contains(geom.Pt(1, 5)) || ps.Contains(geom.Pt(1, 1)) {
		t.Error("Contains wrong")
	}
}

func TestPointsSetOps(t *testing.T) {
	a := NewPoints(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 2))
	b := NewPoints(geom.Pt(1, 1), geom.Pt(3, 3))
	if got := a.Union(b); got.Len() != 4 || !got.Contains(geom.Pt(3, 3)) {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(geom.Pt(1, 1)) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got.Contains(geom.Pt(1, 1)) {
		t.Errorf("minus = %v", got)
	}
	if !a.Minus(a).IsEmpty() {
		t.Error("a \\ a not empty")
	}
	if !a.Union(b).Equal(b.Union(a)) {
		t.Error("union not commutative")
	}
}

func TestPointsSetOpsProperty(t *testing.T) {
	mk := func(raw []int8) Points {
		var pts []geom.Point
		for k := 0; k+1 < len(raw); k += 2 {
			pts = append(pts, geom.Pt(float64(raw[k]), float64(raw[k+1])))
		}
		return NewPoints(pts...)
	}
	f := func(raw1, raw2 []int8, px, py int8) bool {
		a, b := mk(raw1), mk(raw2)
		p := geom.Pt(float64(px), float64(py))
		inA, inB := a.Contains(p), b.Contains(p)
		return a.Union(b).Contains(p) == (inA || inB) &&
			a.Intersect(b).Contains(p) == (inA && inB) &&
			a.Minus(b).Contains(p) == (inA && !inB) &&
			a.Union(b).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPointsBBox(t *testing.T) {
	ps := NewPoints(geom.Pt(-1, 2), geom.Pt(3, -4))
	want := geom.Rect{MinX: -1, MinY: -4, MaxX: 3, MaxY: 2}
	if ps.BBox() != want {
		t.Errorf("BBox = %v", ps.BBox())
	}
	if !NewPoints().BBox().IsEmpty() {
		t.Error("empty set BBox not empty")
	}
}
