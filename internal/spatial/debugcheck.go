//go:build debugcheck

package spatial

import (
	"fmt"

	"movingdb/internal/geom"
)

// debugCheckHalfSegments asserts the Section 3.2.2 invariant on an
// assembled halfsegment array: strictly increasing in halfsegment order
// (so ordered and duplicate-free). Region and line constructors
// establish this by sorting; a violation means edge-disjointness
// checking or segment merging let a duplicate through, so it panics.
// Compiled in only under the debugcheck build tag.
func debugCheckHalfSegments(site string, hs []geom.HalfSegment) {
	for i := 1; i < len(hs); i++ {
		if hs[i-1].Cmp(hs[i]) >= 0 {
			panic(fmt.Sprintf("debugcheck: spatial.%s: halfsegments %d and %d out of order or duplicated: %v, %v",
				site, i-1, i, hs[i-1], hs[i]))
		}
	}
}
