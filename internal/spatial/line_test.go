package spatial

import (
	"errors"
	"math"
	"testing"

	"movingdb/internal/geom"
)

func TestNewLineValid(t *testing.T) {
	l, err := NewLine(geom.Seg(0, 0, 1, 1), geom.Seg(1, 1, 2, 0), geom.Seg(0, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumSegments() != 3 {
		t.Errorf("NumSegments = %d", l.NumSegments())
	}
	wantLen := 2*math.Sqrt2 + 2
	if math.Abs(l.Length()-wantLen) > 1e-12 {
		t.Errorf("Length = %v, want %v", l.Length(), wantLen)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewLineRejectsOverlap(t *testing.T) {
	_, err := NewLine(geom.Seg(0, 0, 2, 2), geom.Seg(1, 1, 3, 3))
	if !errors.Is(err, ErrInvalidLine) {
		t.Errorf("overlapping collinear segments accepted: %v", err)
	}
	// Crossing segments are fine — "any set of line segments is also a
	// line value" (Figure 2c) as long as no collinear overlap exists.
	if _, err := NewLine(geom.Seg(0, 0, 2, 2), geom.Seg(0, 2, 2, 0)); err != nil {
		t.Errorf("crossing segments rejected: %v", err)
	}
	// Duplicates are deduplicated, not rejected.
	l, err := NewLine(geom.Seg(0, 0, 1, 0), geom.Seg(0, 0, 1, 0))
	if err != nil || l.NumSegments() != 1 {
		t.Errorf("duplicate handling: %v, %v", l, err)
	}
}

func TestMergeLine(t *testing.T) {
	l := MergeLine(geom.Seg(0, 0, 2, 0), geom.Seg(1, 0, 4, 0), geom.Seg(4, 0, 5, 0), geom.Seg(0, 1, 1, 2))
	if l.NumSegments() != 2 {
		t.Fatalf("merged = %v", l)
	}
	segs := l.Segments()
	if segs[0] != geom.Seg(0, 0, 5, 0) {
		t.Errorf("merged horizontal = %v", segs[0])
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate after merge: %v", err)
	}
}

func TestMergeLineDisjointCollinear(t *testing.T) {
	l := MergeLine(geom.Seg(0, 0, 1, 0), geom.Seg(2, 0, 3, 0))
	if l.NumSegments() != 2 {
		t.Errorf("disjoint collinear merged: %v", l)
	}
}

func TestLineQueries(t *testing.T) {
	l := MustLine(geom.Seg(0, 0, 4, 0), geom.Seg(0, 2, 4, 2))
	if !l.ContainsPoint(geom.Pt(2, 0)) || l.ContainsPoint(geom.Pt(2, 1)) {
		t.Error("ContainsPoint wrong")
	}
	if got := l.DistToPoint(geom.Pt(2, 1)); got != 1 {
		t.Errorf("DistToPoint = %v", got)
	}
	m := MustLine(geom.Seg(2, -1, 2, 1))
	if !l.Intersects(m) {
		t.Error("crossing lines do not intersect")
	}
	far := MustLine(geom.Seg(10, 10, 11, 11))
	if l.Intersects(far) {
		t.Error("distant lines intersect")
	}
	if !l.BBox().ContainsPoint(geom.Pt(4, 2)) {
		t.Error("BBox wrong")
	}
}

func TestLineEqualCanonical(t *testing.T) {
	// Same segment set in different input orders: equal representations.
	a := MustLine(geom.Seg(0, 0, 1, 1), geom.Seg(2, 2, 3, 3))
	b := MustLine(geom.Seg(2, 2, 3, 3), geom.Seg(0, 0, 1, 1))
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	if a.Equal(MustLine(geom.Seg(0, 0, 1, 1))) {
		t.Error("different lines equal")
	}
	var empty Line
	if !empty.IsEmpty() || empty.Length() != 0 {
		t.Error("zero Line not empty")
	}
}

func TestLineHalfSegmentsOrdered(t *testing.T) {
	l := MustLine(geom.Seg(3, 0, 4, 1), geom.Seg(0, 0, 1, 1), geom.Seg(1, 1, 2, 0))
	hs := l.HalfSegments()
	if len(hs) != 6 {
		t.Fatalf("halfsegments = %d", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].Cmp(hs[i-1]) < 0 {
			t.Fatalf("halfsegments out of order at %d", i)
		}
	}
}
