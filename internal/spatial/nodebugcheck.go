//go:build !debugcheck

package spatial

import "movingdb/internal/geom"

// debugCheckHalfSegments is a no-op unless built with -tags=debugcheck;
// see debugcheck.go.
func debugCheckHalfSegments(string, []geom.HalfSegment) {}
