// Package spatial implements the discrete spatial data types of
// Section 3.2.2 of the paper: point, points (finite point sets), line
// (finite sets of non-overlapping collinear segments, stored as ordered
// halfsegments) and region (sets of edge-disjoint faces, each an outer
// cycle with hole cycles). All set-valued types keep their elements in a
// unique canonical order so that value equality coincides with
// representation equality, as required by the data structure design of
// Section 4.
package spatial

import (
	"fmt"
	"slices"
	"strings"

	"movingdb/internal/geom"
)

// Point is the discrete point type: a 2D point plus a defined flag
// (D_point = Point ∪ {⊥}). The zero Point is undefined.
type Point struct {
	P       geom.Point
	defined bool
}

// DefPoint returns a defined point value.
func DefPoint(p geom.Point) Point { return Point{P: p, defined: true} }

// UndefPoint returns the undefined point ⊥.
func UndefPoint() Point { return Point{} }

// Defined reports whether the point is not ⊥.
func (p Point) Defined() bool { return p.defined }

// String renders the point, or "undef".
func (p Point) String() string {
	if !p.defined {
		return "undef"
	}
	return p.P.String()
}

// Points is the points type: a finite set of points in canonical
// (lexicographic) order with no duplicates. The zero value is the empty
// set.
type Points struct {
	pts []geom.Point
}

// NewPoints builds a canonical point set from the given points,
// sorting and deduplicating.
func NewPoints(pts ...geom.Point) Points {
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	slices.SortFunc(work, geom.Point.Cmp)
	work = slices.Compact(work)
	return Points{pts: work}
}

// Slice returns the ordered points (shared; read-only).
func (ps Points) Slice() []geom.Point { return ps.pts }

// Len returns the number of points.
func (ps Points) Len() int { return len(ps.pts) }

// IsEmpty reports whether the set is empty.
func (ps Points) IsEmpty() bool { return len(ps.pts) == 0 }

// Contains reports membership by binary search.
func (ps Points) Contains(p geom.Point) bool {
	_, ok := slices.BinarySearchFunc(ps.pts, p, geom.Point.Cmp)
	return ok
}

// Union returns the set union.
func (ps Points) Union(qs Points) Points {
	out := make([]geom.Point, 0, len(ps.pts)+len(qs.pts))
	i, j := 0, 0
	for i < len(ps.pts) && j < len(qs.pts) {
		switch c := ps.pts[i].Cmp(qs.pts[j]); {
		case c < 0:
			out = append(out, ps.pts[i])
			i++
		case c > 0:
			out = append(out, qs.pts[j])
			j++
		default:
			out = append(out, ps.pts[i])
			i++
			j++
		}
	}
	out = append(out, ps.pts[i:]...)
	out = append(out, qs.pts[j:]...)
	return Points{pts: out}
}

// Intersect returns the set intersection.
func (ps Points) Intersect(qs Points) Points {
	var out []geom.Point
	i, j := 0, 0
	for i < len(ps.pts) && j < len(qs.pts) {
		switch c := ps.pts[i].Cmp(qs.pts[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, ps.pts[i])
			i++
			j++
		}
	}
	return Points{pts: out}
}

// Minus returns the set difference ps \ qs.
func (ps Points) Minus(qs Points) Points {
	var out []geom.Point
	i, j := 0, 0
	for i < len(ps.pts) {
		if j >= len(qs.pts) {
			out = append(out, ps.pts[i:]...)
			break
		}
		switch c := ps.pts[i].Cmp(qs.pts[j]); {
		case c < 0:
			out = append(out, ps.pts[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return Points{pts: out}
}

// Equal reports set equality (representation equality, by canonicity).
func (ps Points) Equal(qs Points) bool { return slices.Equal(ps.pts, qs.pts) }

// BBox returns the bounding box of the set.
func (ps Points) BBox() geom.Rect {
	r := geom.EmptyRect()
	for _, p := range ps.pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// Validate checks canonical order and uniqueness (for storage decode).
func (ps Points) Validate() error {
	for i := 1; i < len(ps.pts); i++ {
		if ps.pts[i].Cmp(ps.pts[i-1]) <= 0 {
			return fmt.Errorf("spatial: points out of order at %d: %v, %v", i, ps.pts[i-1], ps.pts[i])
		}
	}
	return nil
}

// String renders the set as "{(x, y), ...}".
func (ps Points) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range ps.pts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}
