package spatial

import (
	"fmt"
	"math"

	"movingdb/internal/geom"
)

// Set operations on regions (union, intersection, difference) — the set
// part of the abstract model's operation set, realised on the polygonal
// carrier sets. The implementation follows the classic boundary
// classification scheme: split every boundary segment of both operands
// at all crossings with the other boundary, decide for each elementary
// fragment whether the result's interior lies on its left and right
// side, keep exactly the fragments where the two sides differ (they form
// the result's boundary), cancel coincident duplicates, and rebuild the
// face/cycle structure with Close.
//
// The side classification probes points offset by a small epsilon from
// the fragment midpoint along its normal; with the package tolerance
// this is robust for inputs whose features are larger than ~1e-6. (An
// exact arrangement-based overlay is out of scope here; the paper
// defers operation algorithmics entirely.)

// sideOffset returns the normal offset used to probe interior
// membership next to a boundary fragment. It must clear the scale-aware
// collinearity tolerance of the geometric predicates (which grows with
// the coordinate magnitude), while staying below the feature size of
// the operands; 1e-6 of the local magnitude satisfies both for
// geometries whose features are larger than ~1e-5 of their coordinates.
func sideOffset(mid geom.Point, segLen float64) float64 {
	scale := max(1.0, max(math.Abs(mid.X), math.Abs(mid.Y)))
	scale = max(scale, segLen)
	return 1e-6 * scale
}

// Union returns the set union of the two regions.
func (r Region) Union(q Region) (Region, error) {
	return overlay(r, q, func(inR, inQ bool) bool { return inR || inQ })
}

// Intersection returns the set intersection of the two regions.
func (r Region) Intersection(q Region) (Region, error) {
	return overlay(r, q, func(inR, inQ bool) bool { return inR && inQ })
}

// Difference returns r with the interior of q removed.
func (r Region) Difference(q Region) (Region, error) {
	return overlay(r, q, func(inR, inQ bool) bool { return inR && !inQ })
}

// overlay implements the generic boolean overlay with the given
// pointwise membership combiner.
func overlay(r, q Region, keep func(inR, inQ bool) bool) (Region, error) {
	if r.IsEmpty() && q.IsEmpty() {
		return Region{}, nil
	}
	frags := overlayFragments(r.Segments(), q.Segments())

	// Coincident boundary pieces of the two operands appear twice;
	// collapse them to a single representative (the classification below
	// decides whether that representative survives).
	geom.SortSegments(frags)
	uniq := frags[:0]
	for i, s := range frags {
		if i == 0 || s != frags[i-1] {
			uniq = append(uniq, s)
		}
	}

	var boundary []geom.Segment
	for _, s := range uniq {
		mid := s.Midpoint()
		d := s.Dir()
		n := geom.Pt(-d.Y, d.X).Scale(1 / d.Norm())
		off := sideOffset(mid, s.Length())
		left := mid.Add(n.Scale(off))
		right := mid.Sub(n.Scale(off))
		inLeft := keep(r.ContainsPoint(left), q.ContainsPoint(left))
		inRight := keep(r.ContainsPoint(right), q.ContainsPoint(right))
		if inLeft != inRight {
			boundary = append(boundary, s)
		}
	}
	out, err := Close(boundary)
	if err != nil {
		return Region{}, fmt.Errorf("spatial: overlay close: %w", err)
	}
	return out, nil
}

// overlayFragments splits the boundary segments of both operands at
// their mutual crossing points. Every intersection point is computed
// once and used for both involved segments, so the fragments of the two
// boundaries meet in bitwise-identical vertices — the degree invariants
// Close relies on would otherwise be broken by one-ulp differences
// between the two parametrisations of the same crossing.
func overlayFragments(rSegs, qSegs []geom.Segment) []geom.Segment {
	all := make([]geom.Segment, 0, len(rSegs)+len(qSegs))
	all = append(all, rSegs...)
	all = append(all, qSegs...)
	cuts := make([][]geom.Point, len(all))
	nR := len(rSegs)
	for i := 0; i < nR; i++ {
		for j := nR; j < len(all); j++ {
			switch k, p := geom.Intersect(all[i], all[j]); k {
			case geom.IntersectPoint:
				cuts[i] = append(cuts[i], p)
				cuts[j] = append(cuts[j], p)
			case geom.IntersectOverlap:
				for _, e := range overlapEnds(all[i], all[j]) {
					cuts[i] = append(cuts[i], e)
					cuts[j] = append(cuts[j], e)
				}
			}
		}
	}
	var out []geom.Segment
	for i, s := range all {
		out = append(out, splitAt(s, cuts[i])...)
	}
	return out
}

// splitAt splits s at the given points (which lie on s up to tolerance)
// into elementary fragments whose endpoints are exactly the given
// points.
func splitAt(s geom.Segment, pts []geom.Point) []geom.Segment {
	if len(pts) == 0 {
		return []geom.Segment{s}
	}
	d := s.Dir()
	dd := d.Dot(d)
	type cut struct {
		t float64
		p geom.Point
	}
	cs := []cut{{0, s.Left}, {1, s.Right}}
	for _, p := range pts {
		t := p.Sub(s.Left).Dot(d) / dd
		if t > 1e-12 && t < 1-1e-12 {
			cs = append(cs, cut{t, p})
		}
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].t < cs[j-1].t; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	out := make([]geom.Segment, 0, len(cs)-1)
	for i := 0; i+1 < len(cs); i++ {
		if cs[i].p == cs[i+1].p {
			continue
		}
		if seg, err := geom.NewSegment(cs[i].p, cs[i+1].p); err == nil {
			out = append(out, seg)
		}
	}
	return out
}
