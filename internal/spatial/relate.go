package spatial

import (
	"math"

	"movingdb/internal/geom"
)

// This file provides the binary predicates and measures between the
// spatial types that the abstract model's operation set includes:
// intersects, inside (containment) and distance between regions, lines
// and point sets. The implementations are straightforward O(n·m) pair
// scans with bounding box rejection — the paper's Section 5 defers
// sweep-based algorithmics, and these operations are not on the
// complexity-claim path.

// IntersectsRegion reports whether two regions share at least one point
// (boundary or interior).
func (r Region) IntersectsRegion(q Region) bool {
	if !r.bbox.Intersects(q.bbox) {
		return false
	}
	// Any boundary crossing means intersection.
	for _, h := range r.hs {
		if !h.LeftDom {
			continue
		}
		for _, g := range q.hs {
			if !g.LeftDom {
				continue
			}
			if k, _ := geom.Intersect(h.Seg, g.Seg); k != geom.IntersectNone {
				return true
			}
		}
	}
	// No crossings: one may contain the other entirely.
	if len(r.hs) > 0 && q.ContainsPoint(r.hs[0].Seg.Left) {
		return true
	}
	if len(q.hs) > 0 && r.ContainsPoint(q.hs[0].Seg.Left) {
		return true
	}
	return false
}

// ContainsRegion reports whether q lies entirely within r (boundaries
// may touch).
func (r Region) ContainsRegion(q Region) bool {
	if q.IsEmpty() {
		return true
	}
	if !r.bbox.Intersects(q.bbox) {
		return false
	}
	// No boundary of q may properly leave r: any proper crossing of
	// boundaries disproves containment; afterwards it suffices that one
	// interior probe of every face of q lies in r and no face of r pokes
	// through a hole-free... — for the polygonal carrier sets, proper
	// crossings plus probe points decide.
	for _, h := range q.hs {
		if !h.LeftDom {
			continue
		}
		for _, g := range r.hs {
			if !g.LeftDom {
				continue
			}
			if geom.PIntersect(h.Seg, g.Seg) {
				return false
			}
		}
	}
	for _, f := range q.faces {
		probe := geom.MustSegment(f.Outer.verts[0], f.Outer.verts[1]).Midpoint()
		if !r.ContainsPoint(probe) {
			return false
		}
	}
	// Holes of r must not lie inside q's interior (q would stick into
	// them).
	for _, f := range r.faces {
		for _, h := range f.Holes {
			probe := geom.MustSegment(h.verts[0], h.verts[1]).Midpoint()
			inQ := q.ContainsPoint(probe)
			if inQ && !r.ContainsPoint(probe) {
				return false
			}
		}
	}
	return true
}

// DistToRegion returns the minimal distance between two regions (zero
// if they intersect).
func (r Region) DistToRegion(q Region) float64 {
	if r.IntersectsRegion(q) {
		return 0
	}
	d := math.Inf(1)
	for _, h := range r.hs {
		if !h.LeftDom {
			continue
		}
		for _, g := range q.hs {
			if g.LeftDom {
				d = min(d, h.Seg.DistToSegment(g.Seg))
			}
		}
	}
	return d
}

// IntersectionPoints returns the points where two lines cross or touch,
// as a canonical point set. Collinear overlaps contribute their
// endpoints (the shared stretch itself is one-dimensional and belongs to
// the intersection in the line sense; CommonSegments returns it).
func (l Line) IntersectionPoints(m Line) Points {
	if !l.bbox.Intersects(m.bbox) {
		return Points{}
	}
	var pts []geom.Point
	for _, h := range l.hs {
		if !h.LeftDom {
			continue
		}
		for _, g := range m.hs {
			if !g.LeftDom {
				continue
			}
			switch k, p := geom.Intersect(h.Seg, g.Seg); k {
			case geom.IntersectPoint:
				pts = append(pts, p)
			case geom.IntersectOverlap:
				// Report the overlap boundary points.
				pts = append(pts, overlapEnds(h.Seg, g.Seg)...)
			}
		}
	}
	return NewPoints(pts...)
}

func overlapEnds(a, b geom.Segment) []geom.Point {
	lo := a.Left
	if lo.Less(b.Left) {
		lo = b.Left
	}
	hi := a.Right
	if b.Right.Less(hi) {
		hi = b.Right
	}
	return []geom.Point{lo, hi}
}

// CommonSegments returns the one-dimensional intersection of two lines:
// the maximal stretches where collinear segments overlap, as a line
// value.
func (l Line) CommonSegments(m Line) Line {
	var segs []geom.Segment
	for _, h := range l.hs {
		if !h.LeftDom {
			continue
		}
		for _, g := range m.hs {
			if !g.LeftDom {
				continue
			}
			if k, _ := geom.Intersect(h.Seg, g.Seg); k == geom.IntersectOverlap {
				ends := overlapEnds(h.Seg, g.Seg)
				if s, err := geom.NewSegment(ends[0], ends[1]); err == nil {
					segs = append(segs, s)
				}
			}
		}
	}
	return MergeLine(segs...)
}

// ClippedToRegion returns the parts of the line inside the region, as a
// line value: each segment is split at its boundary crossings and the
// inside fragments are kept.
func (l Line) ClippedToRegion(r Region) Line {
	if !l.bbox.Intersects(r.bbox) {
		return Line{}
	}
	boundary := geom.SegmentsOf(r.hs)
	var out []geom.Segment
	for _, h := range l.hs {
		if !h.LeftDom {
			continue
		}
		out = append(out, clipSegment(h.Seg, boundary, r)...)
	}
	return MergeLine(out...)
}

func clipSegment(s geom.Segment, boundary []geom.Segment, r Region) []geom.Segment {
	// Collect crossing parameters along s.
	d := s.Dir()
	params := []float64{0, 1}
	for _, b := range boundary {
		if k, p := geom.Intersect(s, b); k == geom.IntersectPoint {
			t := p.Sub(s.Left).Dot(d) / d.Dot(d)
			params = append(params, max(0, min(1, t)))
		} else if k == geom.IntersectOverlap {
			for _, e := range overlapEnds(s, b) {
				t := e.Sub(s.Left).Dot(d) / d.Dot(d)
				params = append(params, max(0, min(1, t)))
			}
		}
	}
	sortFloats(params)
	var out []geom.Segment
	for i := 0; i+1 < len(params); i++ {
		lo, hi := params[i], params[i+1]
		if hi-lo < 1e-12 {
			continue
		}
		mid := s.Left.Add(d.Scale((lo + hi) / 2))
		if !r.ContainsPoint(mid) {
			continue
		}
		p := s.Left.Add(d.Scale(lo))
		q := s.Left.Add(d.Scale(hi))
		if seg, err := geom.NewSegment(p, q); err == nil {
			out = append(out, seg)
		}
	}
	return out
}

func sortFloats(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
