package spatial

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"movingdb/internal/geom"
)

// Close builds a region value from a soup of boundary segments,
// implementing the close operation described in Section 4.1: "algorithms
// constructing region values generally compute the list of halfsegments
// and then call a close operation offered by the region data type, which
// determines the structure of faces and cycles".
//
// The structure is recovered in three steps: (1) trace the faces of the
// planar subdivision induced by the segments using angular (rotation
// system) traversal, (2) split each face walk at repeated vertices into
// simple cycles and deduplicate, (3) compute the containment nesting of
// the cycles — even depth makes an outer cycle, odd depth a hole of the
// immediately containing cycle.
//
// Close assumes the segments form the boundary of some valid region
// (that is what evaluating a valid uregion unit produces); it detects
// gross violations such as odd vertex degrees or dangling edges, but a
// full carrier set check is Region.Validate's job.
func Close(segs []geom.Segment) (Region, error) {
	if len(segs) == 0 {
		return Region{}, nil
	}
	segs = dedupSegments(segs)

	// Rotation system: neighbours of each vertex sorted by angle.
	adj := make(map[geom.Point][]geom.Point, len(segs))
	for _, s := range segs {
		adj[s.Left] = append(adj[s.Left], s.Right)
		adj[s.Right] = append(adj[s.Right], s.Left)
	}
	for v, ns := range adj {
		if len(ns)%2 != 0 {
			return Region{}, fmt.Errorf("%w: vertex %v has odd degree %d", ErrInvalidRegion, v, len(ns))
		}
		slices.SortFunc(ns, func(a, b geom.Point) int {
			aa := math.Atan2(a.Y-v.Y, a.X-v.X)
			ab := math.Atan2(b.Y-v.Y, b.X-v.X)
			switch {
			case aa < ab:
				return -1
			case aa > ab:
				return 1
			}
			return 0
		})
	}

	// Trace every directed edge exactly once; the next edge after
	// arriving at v from u is the clockwise-next neighbour of v after u,
	// which walks each subdivision face with its interior to the left.
	type dedge struct{ u, v geom.Point }
	used := make(map[dedge]bool, 2*len(segs))
	nextFrom := func(u, v geom.Point) geom.Point {
		ns := adj[v]
		idx := -1
		for i, w := range ns {
			if w == u {
				idx = i
				break
			}
		}
		// u is always a recorded neighbour of v.
		return ns[(idx-1+len(ns))%len(ns)]
	}

	var cycles []Cycle
	emitWalk := func(walk []geom.Point) error {
		// Split the closed walk into simple cycles at repeated vertices.
		index := make(map[geom.Point]int, len(walk))
		var path []geom.Point
		emit := func(ring []geom.Point) error {
			if len(ring) < 3 {
				return fmt.Errorf("%w: degenerate cycle through %v", ErrInvalidRegion, ring)
			}
			cycles = append(cycles, newCycleTrusted(ring))
			return nil
		}
		for _, v := range walk {
			if at, ok := index[v]; ok {
				loop := path[at:]
				if err := emit(loop); err != nil {
					return err
				}
				for _, p := range loop {
					delete(index, p)
				}
				path = path[:at]
			}
			index[v] = len(path)
			path = append(path, v)
		}
		if len(path) > 0 {
			return emit(path)
		}
		return nil
	}

	maxSteps := 2*len(segs) + 1
	for _, s := range segs {
		for _, start := range []dedge{{s.Left, s.Right}, {s.Right, s.Left}} {
			if used[start] {
				continue
			}
			var walk []geom.Point
			cur := start
			for steps := 0; ; steps++ {
				if steps > maxSteps {
					return Region{}, fmt.Errorf("%w: non-terminating face walk from %v", ErrInvalidRegion, start.u)
				}
				used[cur] = true
				walk = append(walk, cur.u)
				w := nextFrom(cur.u, cur.v)
				cur = dedge{cur.v, w}
				if cur == start {
					break
				}
			}
			if err := emitWalk(walk); err != nil {
				return Region{}, err
			}
		}
	}

	// Deduplicate cycles: each appears once per incident subdivision
	// face. The canonical ring form is orientation- and
	// rotation-invariant, so a string of the vertex ring is a stable key.
	seen := make(map[string]bool, len(cycles))
	uniq := cycles[:0]
	for _, c := range cycles {
		k := ringKey(c.verts)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	cycles = uniq

	return assembleFaces(cycles)
}

func ringKey(verts []geom.Point) string {
	var b strings.Builder
	for _, p := range verts {
		fmt.Fprintf(&b, "%x,%x;", math.Float64bits(p.X), math.Float64bits(p.Y))
	}
	return b.String()
}

// assembleFaces nests a set of disjoint simple cycles into faces by
// containment depth: even depth cycles become outer cycles, odd depth
// cycles become holes of their immediate (depth−1) container.
func assembleFaces(cycles []Cycle) (Region, error) {
	n := len(cycles)
	if n == 0 {
		return Region{}, nil
	}
	// A probe point for each cycle that is never on another cycle's
	// boundary (edge midpoints can only coincide with other boundaries
	// if edges overlap, which valid regions exclude).
	probes := make([]geom.Point, n)
	for i, c := range cycles {
		probes[i] = geom.MustSegment(c.verts[0], c.verts[1]).Midpoint()
	}
	depth := make([]int, n)
	parent := make([]int, n) // container with depth == depth[i]−1
	for i := range parent {
		parent[i] = -1
	}
	type contains struct{ outer, inner int }
	within := make(map[contains]bool)
	for i := range cycles {
		for j := range cycles {
			if i == j {
				continue
			}
			if cycles[i].ContainsPointStrict(probes[j]) {
				within[contains{i, j}] = true
				depth[j]++
			}
		}
	}
	for j := range cycles {
		if depth[j] == 0 {
			continue
		}
		for i := range cycles {
			if within[contains{i, j}] && depth[i] == depth[j]-1 {
				parent[j] = i
				break
			}
		}
		if parent[j] == -1 {
			return Region{}, fmt.Errorf("%w: inconsistent cycle nesting", ErrInvalidRegion)
		}
	}

	faceOf := make(map[int]*Face)
	var order []int
	for i := range cycles {
		if depth[i]%2 == 0 {
			faceOf[i] = &Face{Outer: cycles[i]}
			order = append(order, i)
		}
	}
	for j := range cycles {
		if depth[j]%2 == 1 {
			f := faceOf[parent[j]]
			if f == nil {
				return Region{}, fmt.Errorf("%w: hole cycle nested under another hole", ErrInvalidRegion)
			}
			f.Holes = append(f.Holes, cycles[j])
		}
	}
	faces := make([]Face, 0, len(order))
	for _, i := range order {
		f := *faceOf[i]
		f.Holes = sortHoles(f.Holes)
		faces = append(faces, f)
	}
	return regionFromFacesTrusted(faces), nil
}
