package spatial

import "movingdb/internal/geom"

// PolygonRegion is a convenience constructor building a single-face
// region from an outer vertex ring and optional hole rings, with full
// validation.
func PolygonRegion(outer []geom.Point, holes ...[]geom.Point) (Region, error) {
	oc, err := NewCycle(outer...)
	if err != nil {
		return Region{}, err
	}
	hcs := make([]Cycle, 0, len(holes))
	for _, h := range holes {
		hc, err := NewCycle(h...)
		if err != nil {
			return Region{}, err
		}
		hcs = append(hcs, hc)
	}
	f, err := NewFace(oc, hcs...)
	if err != nil {
		return Region{}, err
	}
	return NewRegion(f)
}

// MustPolygonRegion is like PolygonRegion but panics on invalid input.
func MustPolygonRegion(outer []geom.Point, holes ...[]geom.Point) Region {
	r, err := PolygonRegion(outer, holes...)
	if err != nil {
		panic(err)
	}
	return r
}

// Ring builds a vertex ring from coordinate pairs: Ring(x0,y0, x1,y1, ...).
// It panics on an odd number of arguments; for tests and examples.
func Ring(coords ...float64) []geom.Point {
	if len(coords)%2 != 0 {
		panic("spatial: Ring needs an even number of coordinates")
	}
	pts := make([]geom.Point, 0, len(coords)/2)
	for i := 0; i < len(coords); i += 2 {
		pts = append(pts, geom.Pt(coords[i], coords[i+1]))
	}
	return pts
}
