package spatial

import (
	"math"
	"math/rand"
	"testing"

	"movingdb/internal/geom"
)

func TestUnionDisjoint(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 4))
	b := MustPolygonRegion(sq(10, 0, 4))
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumFaces() != 2 || u.Area() != 32 {
		t.Errorf("union = %d faces, area %v", u.NumFaces(), u.Area())
	}
}

func TestUnionOverlapping(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 4))
	b := MustPolygonRegion(sq(2, 0, 4)) // overlap area 2×4
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumFaces() != 1 {
		t.Fatalf("union faces = %d", u.NumFaces())
	}
	if got := u.Area(); got != 16+16-8 {
		t.Errorf("union area = %v", got)
	}
	if !u.ContainsPoint(geom.Pt(3, 2)) || !u.ContainsPoint(geom.Pt(5, 2)) {
		t.Error("union membership wrong")
	}
}

func TestIntersectionOverlapping(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 4))
	b := MustPolygonRegion(sq(2, 1, 4))
	i, err := a.Intersection(b)
	if err != nil {
		t.Fatal(err)
	}
	// Overlap: x ∈ [2,4], y ∈ [1,4] → area 6.
	if got := i.Area(); got != 6 {
		t.Errorf("intersection area = %v", got)
	}
	if !i.ContainsPoint(geom.Pt(3, 2)) || i.ContainsPoint(geom.Pt(1, 1)) {
		t.Error("intersection membership wrong")
	}
	// Disjoint operands: empty intersection.
	c := MustPolygonRegion(sq(100, 100, 2))
	empty, err := a.Intersection(c)
	if err != nil || !empty.IsEmpty() {
		t.Errorf("disjoint intersection = %v, %v", empty, err)
	}
}

func TestDifference(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 6))
	b := MustPolygonRegion(sq(2, 2, 2)) // fully inside a
	d, err := a.Difference(b)
	if err != nil {
		t.Fatal(err)
	}
	// Subtracting an interior square punches a hole.
	if d.NumFaces() != 1 || d.NumCycles() != 2 {
		t.Fatalf("difference structure: %d faces, %d cycles", d.NumFaces(), d.NumCycles())
	}
	if got := d.Area(); got != 36-4 {
		t.Errorf("difference area = %v", got)
	}
	if d.ContainsPoint(geom.Pt(3, 3)) {
		t.Error("hole interior still contained")
	}
	// Subtracting an overlapping square clips the corner.
	c := MustPolygonRegion(sq(4, 4, 4))
	d2, err := a.Difference(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Area(); got != 36-4 {
		t.Errorf("corner clip area = %v", got)
	}
	if d2.ContainsPoint(geom.Pt(5, 5)) {
		t.Error("clipped corner still contained")
	}
	// Difference with a superset is empty.
	super := MustPolygonRegion(sq(-1, -1, 8))
	d3, err := a.Difference(super)
	if err != nil || !d3.IsEmpty() {
		t.Errorf("superset difference = %v, %v", d3, err)
	}
}

func TestUnionWithHoles(t *testing.T) {
	// A region with a hole united with a region covering the hole: the
	// hole disappears.
	holed := MustPolygonRegion(sq(0, 0, 8), sq(2, 2, 2))
	plug := MustPolygonRegion(sq(1, 1, 4))
	u, err := holed.Union(plug)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumCycles() != 1 {
		t.Fatalf("plugged union cycles = %d (%v)", u.NumCycles(), u)
	}
	if got := u.Area(); got != 64 {
		t.Errorf("plugged union area = %v", got)
	}
}

func TestOverlayPropertyMembership(t *testing.T) {
	// Random square pairs: overlay membership must equal the pointwise
	// combination, probed on a grid away from boundaries.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		a := MustPolygonRegion(sq(float64(rng.Intn(6)), float64(rng.Intn(6)), 3+float64(rng.Intn(4))))
		b := MustPolygonRegion(sq(float64(rng.Intn(6)), float64(rng.Intn(6)), 3+float64(rng.Intn(4))))
		u, err := a.Union(b)
		if err != nil {
			t.Fatalf("trial %d union: %v", trial, err)
		}
		i, err := a.Intersection(b)
		if err != nil {
			t.Fatalf("trial %d intersection: %v", trial, err)
		}
		d, err := a.Difference(b)
		if err != nil {
			t.Fatalf("trial %d difference: %v", trial, err)
		}
		// Inclusion–exclusion on areas.
		if math.Abs(u.Area()-(a.Area()+b.Area()-i.Area())) > 1e-6 {
			t.Fatalf("trial %d: area inclusion-exclusion violated: %v + %v - %v != %v",
				trial, a.Area(), b.Area(), i.Area(), u.Area())
		}
		if math.Abs(d.Area()-(a.Area()-i.Area())) > 1e-6 {
			t.Fatalf("trial %d: difference area wrong", trial)
		}
		for x := -0.27; x < 14; x += 0.83 {
			for y := -0.31; y < 14; y += 0.77 {
				p := geom.Pt(x, y)
				onBoundary := false
				for _, s := range append(a.Segments(), b.Segments()...) {
					if s.DistToPoint(p) < 1e-3 {
						onBoundary = true
						break
					}
				}
				if onBoundary {
					continue
				}
				inA, inB := a.ContainsPoint(p), b.ContainsPoint(p)
				if u.ContainsPoint(p) != (inA || inB) {
					t.Fatalf("trial %d union membership at %v", trial, p)
				}
				if i.ContainsPoint(p) != (inA && inB) {
					t.Fatalf("trial %d intersection membership at %v", trial, p)
				}
				if d.ContainsPoint(p) != (inA && !inB) {
					t.Fatalf("trial %d difference membership at %v", trial, p)
				}
			}
		}
	}
}

func TestOverlayEmptyOperands(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 4))
	var empty Region
	u, err := a.Union(empty)
	if err != nil || !u.Equal(a) {
		t.Errorf("a ∪ ∅ = %v, %v", u, err)
	}
	i, err := a.Intersection(empty)
	if err != nil || !i.IsEmpty() {
		t.Errorf("a ∩ ∅ = %v, %v", i, err)
	}
	d, err := empty.Difference(a)
	if err != nil || !d.IsEmpty() {
		t.Errorf("∅ \\ a = %v, %v", d, err)
	}
}

func TestOverlayStressStarPolygons(t *testing.T) {
	// Random star polygons at the workload's coordinate scale (~1000):
	// exercises the scale-aware probing and the shared-crossing-point
	// splitting. Verified through inclusion–exclusion and membership
	// probes.
	rng := rand.New(rand.NewSource(271))
	star := func() Region {
		cx, cy := 300+rng.Float64()*400, 300+rng.Float64()*400
		n := 6 + rng.Intn(10)
		ring := make([]geom.Point, 0, n)
		for i := 0; i < n; i++ {
			ang := (float64(i) + 0.2 + 0.6*rng.Float64()) / float64(n) * 2 * math.Pi
			rad := 80 + rng.Float64()*120
			ring = append(ring, geom.Pt(cx+rad*math.Cos(ang), cy+rad*math.Sin(ang)))
		}
		r, err := PolygonRegion(ring)
		if err != nil {
			t.Skip("degenerate random ring") // extremely unlikely
		}
		return r
	}
	for trial := 0; trial < 30; trial++ {
		a, b := star(), star()
		u, err := a.Union(b)
		if err != nil {
			t.Fatalf("trial %d union: %v", trial, err)
		}
		i, err := a.Intersection(b)
		if err != nil {
			t.Fatalf("trial %d intersection: %v", trial, err)
		}
		d, err := a.Difference(b)
		if err != nil {
			t.Fatalf("trial %d difference: %v", trial, err)
		}
		if math.Abs(u.Area()-(a.Area()+b.Area()-i.Area())) > 1e-3 {
			t.Fatalf("trial %d: inclusion-exclusion off: %v vs %v",
				trial, u.Area(), a.Area()+b.Area()-i.Area())
		}
		if math.Abs(d.Area()-(a.Area()-i.Area())) > 1e-3 {
			t.Fatalf("trial %d: difference area off", trial)
		}
		// Membership probes away from all boundaries.
		for probe := 0; probe < 300; probe++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			near := false
			for _, s := range append(a.Segments(), b.Segments()...) {
				if s.DistToPoint(p) < 1e-2 {
					near = true
					break
				}
			}
			if near {
				continue
			}
			inA, inB := a.ContainsPoint(p), b.ContainsPoint(p)
			if u.ContainsPoint(p) != (inA || inB) {
				t.Fatalf("trial %d: union membership at %v", trial, p)
			}
			if i.ContainsPoint(p) != (inA && inB) {
				t.Fatalf("trial %d: intersection membership at %v", trial, p)
			}
		}
	}
}
