package spatial

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"

	"movingdb/internal/geom"
)

// Line is the discrete line type: a finite set of segments with no two
// collinear overlapping segments (Section 3.2.2). Internally the value
// is stored as the ordered halfsegment sequence of Section 4.1, giving a
// unique representation (equality is array equality) and direct
// plane-sweep traversal. The zero Line is the empty line.
type Line struct {
	hs []geom.HalfSegment
	// Summary data kept in the root record (Section 4.1).
	bbox   geom.Rect
	length float64
}

// ErrInvalidLine reports a violation of the line carrier set constraint
// (collinear overlapping segments).
var ErrInvalidLine = errors.New("spatial: invalid line")

// NewLine validates that no two segments are collinear and overlapping,
// and returns the line. Use MergeLine to build a line from arbitrary
// segments, merging overlaps instead of rejecting them.
func NewLine(segs ...geom.Segment) (Line, error) {
	segs = dedupSegments(segs)
	if err := checkNoCollinearOverlap(segs); err != nil {
		return Line{}, err
	}
	return lineFromSegments(segs), nil
}

// MustLine is like NewLine but panics on invalid input; for literals in
// tests and examples.
func MustLine(segs ...geom.Segment) Line {
	l, err := NewLine(segs...)
	if err != nil {
		panic(err)
	}
	return l
}

// MergeLine builds a line value from an arbitrary segment soup by
// merging collinear overlapping or adjacent segments into maximal ones
// ("any set of line segments is also a line value", Figure 2(c)). It is
// the constructor used by trajectory computation.
func MergeLine(segs ...geom.Segment) Line {
	return lineFromSegments(mergeByLine(segs))
}

func lineFromSegments(segs []geom.Segment) Line {
	hs := geom.HalfSegments(segs)
	debugCheckHalfSegments("lineFromSegments", hs)
	bbox := geom.EmptyRect()
	var length float64
	for _, s := range segs {
		bbox = bbox.Union(s.BBox())
		length += s.Length()
	}
	return Line{hs: hs, bbox: bbox, length: length}
}

func dedupSegments(segs []geom.Segment) []geom.Segment {
	work := make([]geom.Segment, len(segs))
	copy(work, segs)
	geom.SortSegments(work)
	return slices.Compact(work)
}

// lineKey is a hashable normalised description of an infinite line in
// the plane: a unit normal with canonical sign, and the offset, both
// rounded so that segments produced from identical supporting lines hash
// together. Near-collinear segments from different computations may
// land in different buckets, in which case they are conservatively
// treated as non-collinear.
type lineKey struct {
	nx, ny, c int64
}

const lineKeyScale = 1 << 30

func keyOf(s geom.Segment) lineKey {
	d := s.Dir()
	n := geom.Pt(-d.Y, d.X)
	l := n.Norm()
	n = n.Scale(1 / l)
	c := n.Dot(s.Left)
	//molint:ignore float-eq sign canonicalisation sentinel; the key is rounded to lineKeyScale afterwards so the exact-zero branch is the intent
	if n.X < 0 || (n.X == 0 && n.Y < 0) {
		n = n.Scale(-1)
		c = -c
	}
	return lineKey{
		nx: int64(math.Round(n.X * lineKeyScale)),
		ny: int64(math.Round(n.Y * lineKeyScale)),
		c:  int64(math.Round(c * lineKeyScale)),
	}
}

// mergeByLine groups segments by supporting line and merges overlapping
// or meeting collinear segments into maximal ones, in O(n log n).
func mergeByLine(segs []geom.Segment) []geom.Segment {
	groups := make(map[lineKey][]geom.Segment)
	for _, s := range segs {
		k := keyOf(s)
		groups[k] = append(groups[k], s)
	}
	out := make([]geom.Segment, 0, len(segs))
	for _, g := range groups {
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		// All segments in g share a supporting line: sort by left
		// endpoint and merge a running segment.
		geom.SortSegments(g)
		cur := g[0]
		for _, s := range g[1:] {
			if geom.Collinear(cur, s) && (geom.Overlap(cur, s) || cur.Right == s.Left || cur.Contains(s.Left)) {
				if cur.Right.Less(s.Right) {
					cur.Right = s.Right
				}
			} else {
				out = append(out, cur)
				cur = s
			}
		}
		out = append(out, cur)
	}
	geom.SortSegments(out)
	return slices.Compact(out)
}

// checkNoCollinearOverlap verifies the line carrier set constraint in
// O(n log n) by grouping segments on their supporting lines.
func checkNoCollinearOverlap(segs []geom.Segment) error {
	groups := make(map[lineKey][]geom.Segment)
	for _, s := range segs {
		groups[keyOf(s)] = append(groups[keyOf(s)], s)
	}
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		geom.SortSegments(g)
		for i := 1; i < len(g); i++ {
			if geom.Collinear(g[i-1], g[i]) && geom.Overlap(g[i-1], g[i]) {
				return fmt.Errorf("%w: overlapping collinear segments %v and %v", ErrInvalidLine, g[i-1], g[i])
			}
		}
	}
	return nil
}

// HalfSegments returns the ordered halfsegment sequence (shared;
// read-only).
func (l Line) HalfSegments() []geom.HalfSegment { return l.hs }

// Segments returns the segment set in canonical order.
func (l Line) Segments() []geom.Segment {
	segs := geom.SegmentsOf(l.hs)
	geom.SortSegments(segs)
	return segs
}

// NumSegments returns the number of segments.
func (l Line) NumSegments() int { return len(l.hs) / 2 }

// IsEmpty reports whether the line has no segments.
func (l Line) IsEmpty() bool { return len(l.hs) == 0 }

// Length returns the total length of all segments (the length operation
// of Section 2).
func (l Line) Length() float64 { return l.length }

// BBox returns the bounding box kept in the root record.
func (l Line) BBox() geom.Rect { return l.bbox }

// ContainsPoint reports whether p lies on some segment of the line.
func (l Line) ContainsPoint(p geom.Point) bool {
	if !l.bbox.ContainsPoint(p) {
		return false
	}
	for _, h := range l.hs {
		if h.LeftDom && h.Seg.Contains(p) {
			return true
		}
	}
	return false
}

// Intersects reports whether any segments of l and m share a point.
func (l Line) Intersects(m Line) bool {
	if !l.bbox.Intersects(m.bbox) {
		return false
	}
	for _, h := range l.hs {
		if !h.LeftDom {
			continue
		}
		for _, g := range m.hs {
			if !g.LeftDom {
				continue
			}
			if k, _ := geom.Intersect(h.Seg, g.Seg); k != geom.IntersectNone {
				return true
			}
		}
	}
	return false
}

// DistToPoint returns the minimal distance from the line to p
// (infinity for an empty line).
func (l Line) DistToPoint(p geom.Point) float64 {
	d := math.Inf(1)
	for _, h := range l.hs {
		if h.LeftDom {
			d = min(d, h.Seg.DistToPoint(p))
		}
	}
	return d
}

// Equal reports value equality; unique representation makes this a
// slice comparison.
func (l Line) Equal(m Line) bool { return slices.Equal(l.hs, m.hs) }

// Validate re-checks the carrier set constraints and the halfsegment
// order (for values decoded from storage).
func (l Line) Validate() error {
	for i := 1; i < len(l.hs); i++ {
		if l.hs[i].Cmp(l.hs[i-1]) < 0 {
			return fmt.Errorf("%w: halfsegments out of order at %d", ErrInvalidLine, i)
		}
	}
	return checkNoCollinearOverlap(geom.SegmentsOf(l.hs))
}

// String renders the line as its canonical segment list.
func (l Line) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range l.Segments() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteByte('}')
	return b.String()
}
