//go:build debugcheck

package spatial

import (
	"testing"

	"movingdb/internal/geom"
)

// TestDebugCheckHalfSegmentsFires pins that the ordering assertion
// actually panics on a malformed array; the public constructors sort
// before the check, so the bad input is fed to the helper directly.
func TestDebugCheckHalfSegmentsFires(t *testing.T) {
	hs := geom.HalfSegments([]geom.Segment{
		geom.Seg(0, 0, 1, 0),
		geom.Seg(2, 0, 3, 0),
	})
	bad := []geom.HalfSegment{hs[1], hs[0]} // swapped: out of order
	defer func() {
		if recover() == nil {
			t.Error("out-of-order halfsegments did not panic under debugcheck")
		}
	}()
	debugCheckHalfSegments("test", bad)
}
