package spatial

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"movingdb/internal/geom"
)

// Cycle is a simple polygon: the building block of regions
// (Section 3.2.2). Vertices are stored as a ring in a canonical form —
// counter-clockwise orientation, starting at the lexicographically
// smallest vertex — so that equal cycles have equal representations.
type Cycle struct {
	verts []geom.Point
}

// ErrInvalidCycle reports a violation of the cycle carrier set
// constraints.
var ErrInvalidCycle = errors.New("spatial: invalid cycle")

// NewCycle validates the vertex ring as a simple polygon and returns the
// cycle in canonical form. The constraints follow the Cycle carrier set:
// at least three segments, no properly intersecting and no touching
// segments, every endpoint on exactly two segments, and a single
// connected cycle (guaranteed here by construction from a ring).
func NewCycle(verts ...geom.Point) (Cycle, error) {
	c := Cycle{verts: canonicalRing(verts)}
	if err := c.Validate(); err != nil {
		return Cycle{}, err
	}
	return c, nil
}

// MustCycle is like NewCycle but panics on invalid input.
func MustCycle(verts ...geom.Point) Cycle {
	c, err := NewCycle(verts...)
	if err != nil {
		panic(err)
	}
	return c
}

// newCycleTrusted builds a canonical cycle without the quadratic
// simplicity check. It is used by Close on segment sets that stem from
// an already-validated value (e.g. evaluating a uregion unit).
func newCycleTrusted(verts []geom.Point) Cycle {
	return Cycle{verts: canonicalRing(verts)}
}

// canonicalRing normalises a vertex ring: counter-clockwise orientation
// and rotation so that the lexicographically smallest vertex comes
// first. A trailing vertex equal to the first is dropped.
func canonicalRing(verts []geom.Point) []geom.Point {
	vs := make([]geom.Point, len(verts))
	copy(vs, verts)
	if n := len(vs); n > 1 && vs[0] == vs[n-1] {
		vs = vs[:n-1]
	}
	if len(vs) == 0 {
		return vs
	}
	if signedArea(vs) < 0 {
		slices.Reverse(vs)
	}
	mi := 0
	for i, p := range vs {
		if p.Less(vs[mi]) {
			mi = i
		}
	}
	out := make([]geom.Point, 0, len(vs))
	out = append(out, vs[mi:]...)
	out = append(out, vs[:mi]...)
	return out
}

// signedArea returns the shoelace signed area of the ring (positive for
// counter-clockwise orientation).
func signedArea(vs []geom.Point) float64 {
	var a float64
	for i, p := range vs {
		q := vs[(i+1)%len(vs)]
		a += p.Cross(q)
	}
	return a / 2
}

// Vertices returns the canonical vertex ring (shared; read-only).
func (c Cycle) Vertices() []geom.Point { return c.verts }

// Len returns the number of vertices (== number of segments).
func (c Cycle) Len() int { return len(c.verts) }

// Segments returns the edges of the cycle as canonical segments.
func (c Cycle) Segments() []geom.Segment {
	segs := make([]geom.Segment, 0, len(c.verts))
	for i, p := range c.verts {
		q := c.verts[(i+1)%len(c.verts)]
		segs = append(segs, geom.MustSegment(p, q))
	}
	return segs
}

// Area returns the enclosed area (always non-negative in canonical
// form).
func (c Cycle) Area() float64 { return math.Abs(signedArea(c.verts)) }

// Perimeter returns the total edge length.
func (c Cycle) Perimeter() float64 {
	var l float64
	for i, p := range c.verts {
		l += p.Dist(c.verts[(i+1)%len(c.verts)])
	}
	return l
}

// BBox returns the bounding box of the cycle.
func (c Cycle) BBox() geom.Rect {
	r := geom.EmptyRect()
	for _, p := range c.verts {
		r = r.ExtendPoint(p)
	}
	return r
}

// ContainsPoint reports whether p lies in the closed area bounded by the
// cycle (boundary included).
func (c Cycle) ContainsPoint(p geom.Point) bool {
	return geom.Plumbline(p, c.Segments())
}

// ContainsPointStrict reports whether p lies strictly inside the cycle
// (boundary excluded).
func (c Cycle) ContainsPointStrict(p geom.Point) bool {
	segs := c.Segments()
	for _, s := range segs {
		if s.Contains(p) {
			return false
		}
	}
	return geom.Plumbline(p, segs)
}

// EdgeInside reports whether cycle c is edge-inside cycle d: the
// interior of c is a subset of the interior of d and no edges of c and d
// overlap (the predicate used to place holes inside outer cycles).
func (c Cycle) EdgeInside(d Cycle) bool {
	cs, ds := c.Segments(), d.Segments()
	for _, s := range cs {
		for _, t := range ds {
			if geom.PIntersect(s, t) || geom.Overlap(s, t) {
				return false
			}
		}
	}
	// No crossings and no overlaps: c is entirely inside or outside d.
	// Edge midpoints of c cannot lie on d's boundary (that would be an
	// overlap or a touch through a vertex, and isolated touch points are
	// always vertices), so a single midpoint probe decides.
	return d.ContainsPoint(cs[0].Midpoint())
}

// EdgeDisjoint reports whether the interiors of c and d are disjoint and
// no edges overlap. Touching in isolated points is allowed.
func (c Cycle) EdgeDisjoint(d Cycle) bool {
	cs, ds := c.Segments(), d.Segments()
	for _, s := range cs {
		for _, t := range ds {
			if geom.PIntersect(s, t) || geom.Overlap(s, t) {
				return false
			}
		}
	}
	if d.ContainsPointStrict(cs[0].Midpoint()) {
		return false
	}
	if c.ContainsPointStrict(ds[0].Midpoint()) {
		return false
	}
	return true
}

// Equal reports cycle equality via the canonical representation.
func (c Cycle) Equal(d Cycle) bool { return slices.Equal(c.verts, d.verts) }

// Validate checks the Cycle carrier set constraints: at least three
// vertices, no repeated vertices, adjacent edges not collinear-
// overlapping, and no proper intersection or touch between any two
// edges.
func (c Cycle) Validate() error {
	n := len(c.verts)
	if n < 3 {
		return fmt.Errorf("%w: %d vertices", ErrInvalidCycle, n)
	}
	seen := make(map[geom.Point]bool, n)
	for _, p := range c.verts {
		if seen[p] {
			return fmt.Errorf("%w: repeated vertex %v", ErrInvalidCycle, p)
		}
		seen[p] = true
	}
	segs := c.Segments()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, t := segs[i], segs[j]
			if geom.PIntersect(s, t) {
				return fmt.Errorf("%w: edges %v and %v properly intersect", ErrInvalidCycle, s, t)
			}
			if geom.Touch(s, t) {
				return fmt.Errorf("%w: edges %v and %v touch", ErrInvalidCycle, s, t)
			}
			if geom.Overlap(s, t) {
				return fmt.Errorf("%w: edges %v and %v overlap", ErrInvalidCycle, s, t)
			}
			adjacent := j == i+1 || (i == 0 && j == n-1)
			if !adjacent && geom.Meet(s, t) {
				return fmt.Errorf("%w: non-adjacent edges %v and %v meet", ErrInvalidCycle, s, t)
			}
		}
	}
	if signedArea(c.verts) <= 0 {
		return fmt.Errorf("%w: zero or negative area", ErrInvalidCycle)
	}
	return nil
}

// String renders the cycle as its vertex ring.
func (c Cycle) String() string {
	return fmt.Sprintf("cycle%v", c.verts)
}
