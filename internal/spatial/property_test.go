package spatial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"movingdb/internal/geom"
)

// randomNestedRegion builds a random region with nesting: an outer
// square grid of faces, some with holes, some holes with islands. All
// coordinates are integers, so the construction is numerically exact.
func randomNestedRegion(rng *rand.Rand) Region {
	var faces []Face
	nf := 1 + rng.Intn(3)
	for f := 0; f < nf; f++ {
		x := float64(f * 20)
		outer := MustCycle(sq(x, 0, 10)...)
		var holes []Cycle
		nh := rng.Intn(3)
		for h := 0; h < nh; h++ {
			hx := x + 1 + float64(h*3)
			holes = append(holes, MustCycle(sq(hx, 1, 2)...))
		}
		faces = append(faces, MustFace(outer, holes...))
		// Occasionally an island inside the first hole.
		if nh > 0 && rng.Intn(2) == 0 {
			faces = append(faces, MustFace(MustCycle(sq(x+1.5, 1.5, 1)...)))
		}
	}
	return MustRegion(faces...)
}

func TestClosePropertyRoundTrip(t *testing.T) {
	// For any valid region, Close over its segment soup must rebuild an
	// equal value — the unique-representation guarantee of the close
	// operation.
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 50; trial++ {
		r := randomNestedRegion(rng)
		back, err := Close(r.Segments())
		if err != nil {
			t.Fatalf("trial %d: Close failed: %v\n%v", trial, err, r)
		}
		if !back.Equal(r) {
			t.Fatalf("trial %d: round trip differs:\n%v\n%v", trial, back, r)
		}
	}
}

func TestCloseAgreesWithMembership(t *testing.T) {
	// Close must preserve point membership everywhere, probed on a grid.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		r := randomNestedRegion(rng)
		back, err := Close(r.Segments())
		if err != nil {
			t.Fatal(err)
		}
		for x := -1.5; x < 65; x += 2.37 {
			for y := -1.5; y < 12; y += 1.13 {
				p := geom.Pt(x, y)
				if r.ContainsPoint(p) != back.ContainsPoint(p) {
					t.Fatalf("membership differs at %v", p)
				}
			}
		}
	}
}

func TestMergeLineCoverageProperty(t *testing.T) {
	// MergeLine preserves the covered point set: any point on an input
	// segment is on some output segment and vice versa (probed at
	// parameter samples).
	f := func(raw []int8) bool {
		var segs []geom.Segment
		for k := 0; k+3 < len(raw); k += 4 {
			p := geom.Pt(float64(raw[k]%8), float64(raw[k+1]%8))
			q := geom.Pt(float64(raw[k+2]%8), float64(raw[k+3]%8))
			if p == q {
				continue
			}
			segs = append(segs, geom.MustSegment(p, q))
		}
		if len(segs) == 0 {
			return true
		}
		merged := MergeLine(segs...)
		// Sample points on inputs must be covered by the merge.
		for _, s := range segs {
			for _, frac := range []float64{0, 0.33, 0.5, 1} {
				p := s.Left.Add(s.Dir().Scale(frac))
				if !merged.ContainsPoint(p) {
					return false
				}
			}
		}
		// Sample points on outputs must be covered by some input.
		for _, s := range merged.Segments() {
			for _, frac := range []float64{0.25, 0.75} {
				p := s.Left.Add(s.Dir().Scale(frac))
				covered := false
				for _, in := range segs {
					if in.Contains(p) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return merged.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegionAreaMatchesMonteCarlo(t *testing.T) {
	// The shoelace area of a random nested region agrees with Monte
	// Carlo point sampling — ties ContainsPoint and Area together.
	rng := rand.New(rand.NewSource(7))
	r := randomNestedRegion(rng)
	bb := r.BBox()
	const samples = 200000
	in := 0
	for i := 0; i < samples; i++ {
		p := geom.Pt(
			bb.MinX+rng.Float64()*(bb.MaxX-bb.MinX),
			bb.MinY+rng.Float64()*(bb.MaxY-bb.MinY),
		)
		if r.ContainsPoint(p) {
			in++
		}
	}
	est := float64(in) / samples * bb.Area()
	if rel := math.Abs(est-r.Area()) / r.Area(); rel > 0.03 {
		t.Errorf("Monte Carlo area %.1f vs exact %.1f (rel %.3f)", est, r.Area(), rel)
	}
}

func TestOddParityFragments(t *testing.T) {
	// Two identical segments cancel.
	out := OddParityFragments([]geom.Segment{geom.Seg(0, 0, 4, 0), geom.Seg(0, 0, 4, 0)})
	if len(out) != 0 {
		t.Errorf("duplicate cancellation failed: %v", out)
	}
	// The paper's example: (p,q) overlaps (r,s) with order p<r<q<s →
	// fragments (p,r) and (q,s) survive, (r,q) cancels.
	out = OddParityFragments([]geom.Segment{geom.Seg(0, 0, 4, 0), geom.Seg(2, 0, 6, 0)})
	if len(out) != 2 || out[0] != geom.Seg(0, 0, 2, 0) || out[1] != geom.Seg(4, 0, 6, 0) {
		t.Errorf("fragment rule = %v", out)
	}
	// Triple cover: odd in the middle.
	out = OddParityFragments([]geom.Segment{
		geom.Seg(0, 0, 6, 0), geom.Seg(1, 0, 5, 0), geom.Seg(2, 0, 4, 0),
	})
	// Coverage: [0,1):1 [1,2):2 [2,4):3 [4,5):2 [5,6]:1 → keep [0,1], [2,4], [5,6].
	want := []geom.Segment{geom.Seg(0, 0, 1, 0), geom.Seg(2, 0, 4, 0), geom.Seg(5, 0, 6, 0)}
	if len(out) != 3 || out[0] != want[0] || out[1] != want[1] || out[2] != want[2] {
		t.Errorf("triple cover = %v", out)
	}
	// Distinct lines pass through.
	out = OddParityFragments([]geom.Segment{geom.Seg(0, 0, 1, 0), geom.Seg(0, 1, 1, 1)})
	if len(out) != 2 {
		t.Errorf("distinct lines = %v", out)
	}
	// Adjacent surviving fragments merge into maximal segments.
	out = OddParityFragments([]geom.Segment{geom.Seg(0, 0, 2, 0), geom.Seg(2, 0, 4, 0)})
	if len(out) != 1 || out[0] != geom.Seg(0, 0, 4, 0) {
		t.Errorf("adjacent merge = %v", out)
	}
}
