package spatial

import (
	"math"
	"testing"

	"movingdb/internal/geom"
)

func TestRegionIntersectsRegion(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 4))
	b := MustPolygonRegion(sq(2, 2, 4)) // overlaps a
	c := MustPolygonRegion(sq(10, 10, 2))
	d := MustPolygonRegion(sq(1, 1, 2)) // inside a

	if !a.IntersectsRegion(b) || !b.IntersectsRegion(a) {
		t.Error("overlapping regions not intersecting")
	}
	if a.IntersectsRegion(c) {
		t.Error("distant regions intersecting")
	}
	if !a.IntersectsRegion(d) || !d.IntersectsRegion(a) {
		t.Error("contained region not intersecting")
	}
	// Touching at a corner counts as intersecting (shared point).
	e := MustPolygonRegion(sq(4, 4, 2))
	if !a.IntersectsRegion(e) {
		t.Error("corner-touching regions not intersecting")
	}
	var empty Region
	if a.IntersectsRegion(empty) || empty.IntersectsRegion(a) {
		t.Error("empty region intersects")
	}
}

func TestRegionContainsRegion(t *testing.T) {
	outer := MustPolygonRegion(sq(0, 0, 10))
	inner := MustPolygonRegion(sq(2, 2, 3))
	crossing := MustPolygonRegion(sq(8, 8, 4))
	if !outer.ContainsRegion(inner) {
		t.Error("inner not contained")
	}
	if inner.ContainsRegion(outer) {
		t.Error("inner contains outer")
	}
	if outer.ContainsRegion(crossing) {
		t.Error("boundary-crossing region contained")
	}
	// Region with a hole: a polygon inside the hole is not contained.
	holed := MustPolygonRegion(sq(0, 0, 10), sq(3, 3, 4))
	inHole := MustPolygonRegion(sq(4, 4, 2))
	if holed.ContainsRegion(inHole) {
		t.Error("region inside the hole reported contained")
	}
	// But one in the solid part is.
	solid := MustPolygonRegion(sq(0.5, 0.5, 2))
	if !holed.ContainsRegion(solid) {
		t.Error("region in solid part not contained")
	}
	if !outer.ContainsRegion(Region{}) {
		t.Error("empty region must be contained everywhere")
	}
}

func TestRegionDistance(t *testing.T) {
	a := MustPolygonRegion(sq(0, 0, 2))
	b := MustPolygonRegion(sq(5, 0, 2))
	if got := a.DistToRegion(b); got != 3 {
		t.Errorf("distance = %v", got)
	}
	c := MustPolygonRegion(sq(1, 1, 2))
	if got := a.DistToRegion(c); got != 0 {
		t.Errorf("intersecting distance = %v", got)
	}
	// Diagonal separation.
	d := MustPolygonRegion(sq(5, 5, 2))
	if got := a.DistToRegion(d); math.Abs(got-3*math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal distance = %v", got)
	}
}

func TestLineIntersectionPoints(t *testing.T) {
	l := MustLine(geom.Seg(0, 0, 4, 4))
	m := MustLine(geom.Seg(0, 4, 4, 0), geom.Seg(0, 2, 4, 2))
	pts := l.IntersectionPoints(m)
	if pts.Len() != 1 || !pts.Contains(geom.Pt(2, 2)) {
		t.Errorf("intersection points = %v", pts)
	}
	// Collinear overlap: report the overlap endpoints.
	n := MustLine(geom.Seg(1, 1, 6, 6))
	pts = l.IntersectionPoints(n)
	if !pts.Contains(geom.Pt(1, 1)) || !pts.Contains(geom.Pt(4, 4)) {
		t.Errorf("overlap endpoints = %v", pts)
	}
	if got := l.IntersectionPoints(MustLine(geom.Seg(10, 0, 11, 0))); !got.IsEmpty() {
		t.Errorf("distant lines intersect: %v", got)
	}
}

func TestLineCommonSegments(t *testing.T) {
	l := MustLine(geom.Seg(0, 0, 4, 0))
	m := MustLine(geom.Seg(2, 0, 6, 0), geom.Seg(0, 1, 4, 1))
	common := l.CommonSegments(m)
	if common.NumSegments() != 1 {
		t.Fatalf("common = %v", common)
	}
	if common.Segments()[0] != geom.Seg(2, 0, 4, 0) {
		t.Errorf("common segment = %v", common.Segments()[0])
	}
	if got := l.CommonSegments(MustLine(geom.Seg(0, 1, 4, 1))); !got.IsEmpty() {
		t.Errorf("parallel lines share segments: %v", got)
	}
}

func TestLineClippedToRegion(t *testing.T) {
	r := MustPolygonRegion(sq(2, -1, 4)) // x ∈ [2, 6]
	l := MustLine(geom.Seg(0, 0, 10, 0))
	clipped := l.ClippedToRegion(r)
	if clipped.NumSegments() != 1 {
		t.Fatalf("clipped = %v", clipped)
	}
	if clipped.Segments()[0] != geom.Seg(2, 0, 6, 0) {
		t.Errorf("clipped segment = %v", clipped.Segments()[0])
	}
	if math.Abs(clipped.Length()-4) > 1e-12 {
		t.Errorf("clipped length = %v", clipped.Length())
	}
	// Region with a hole cuts the line twice.
	holed := MustPolygonRegion(sq(0, -5, 10), sq(3, -1, 2)) // hole x ∈ [3,5]
	clipped = MustLine(geom.Seg(-2, 0, 12, 0)).ClippedToRegion(holed)
	if clipped.NumSegments() != 2 {
		t.Fatalf("holed clip = %v", clipped)
	}
	if math.Abs(clipped.Length()-8) > 1e-12 {
		t.Errorf("holed clip length = %v", clipped.Length())
	}
	// Entirely outside.
	if got := MustLine(geom.Seg(0, 100, 1, 100)).ClippedToRegion(r); !got.IsEmpty() {
		t.Errorf("outside clip = %v", got)
	}
}
