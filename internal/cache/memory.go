package cache

import (
	"sync"

	"movingdb/internal/obs"
)

// DefaultBudget is the default in-memory cache size (32 MiB) and
// DefaultShards the default shard count. Sharding bounds lock
// contention: a Get touches exactly one shard mutex for a map lookup
// and two list-pointer swaps, so concurrent readers on different keys
// almost never serialise.
const (
	DefaultBudget = 32 << 20
	DefaultShards = 16
)

// entryOverhead approximates the per-entry bookkeeping bytes (map slot,
// list pointers, key strings' headers) charged against the budget on
// top of the key and value payloads.
const entryOverhead = 96

// Memory is the in-memory adapter: a sharded LRU with a byte budget
// split evenly across shards. Entries larger than a shard's budget are
// not cached at all.
type Memory struct {
	shards  []*shard     // moguard: immutable // built in NewMemory, slots never reassigned
	metrics *obs.Metrics // moguard: immutable // synchronises itself, nil-safe
}

// shard is one LRU: a map keyed by Key into an intrusive doubly-linked
// recency list, most-recent at head.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry // moguard: guarded by mu
	head    *entry         // moguard: guarded by mu // most recently used
	tail    *entry         // moguard: guarded by mu // eviction candidate
	bytes   int64          // moguard: guarded by mu
	budget  int64          // moguard: immutable
	hits    int64          // moguard: guarded by mu
	misses  int64          // moguard: guarded by mu
	puts    int64          // moguard: guarded by mu
	evicted int64          // moguard: guarded by mu

	metrics *obs.Metrics // moguard: immutable // synchronises itself, nil-safe
}

type entry struct {
	key        Key
	val        []byte
	size       int64
	prev, next *entry
}

// NewMemory builds the adapter with the given total byte budget and
// shard count (<= 0 selects the defaults; the shard count is rounded up
// to a power of two). metrics receives hit/miss/put/evict counters and
// is nil-safe.
func NewMemory(budget int64, shards int, metrics *obs.Metrics) *Memory {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Memory{shards: make([]*shard, n), metrics: metrics}
	per := budget / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range m.shards {
		m.shards[i] = &shard{entries: make(map[Key]*entry), budget: per, metrics: metrics}
	}
	return m
}

// Get returns the cached bytes for k, marking the entry most recently
// used. A warm hit must not allocate (alloc_budgets.json pins it at
// zero allocs/op).
//
// moguard: hotpath
func (m *Memory) Get(k Key) ([]byte, bool) {
	s := m.shards[shardOf(k, len(m.shards))]
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		s.mu.Unlock()
		s.metrics.RecordCacheMiss()
		return nil, false
	}
	s.hits++
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
	v := e.val
	s.mu.Unlock()
	s.metrics.RecordCacheHit()
	return v, true
}

// Put stores v under k, evicting least-recently-used entries until the
// shard is back inside its budget. Oversized values are dropped; a
// re-put of an existing key replaces its value.
func (m *Memory) Put(k Key, v []byte) {
	size := int64(len(v)) + int64(len(k.Route)) + int64(len(k.Query)) + entryOverhead
	s := m.shards[shardOf(k, len(m.shards))]
	if size > s.budget {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.bytes += int64(len(v)) - int64(len(e.val))
		// moguard: retained Put takes ownership of v — callers hand over freshly marshaled response bytes
		e.val = v
		e.size = size
		s.unlinkLocked(e)
		s.pushFrontLocked(e)
	} else {
		e = &entry{key: k, val: v, size: size}
		// moguard: retained Put takes ownership of v — callers hand over freshly marshaled response bytes
		s.entries[k] = e
		s.pushFrontLocked(e)
		s.bytes += size
		s.puts++
		s.metricsPutLocked(len(v))
	}
	var evictedN, evictedBytes int
	for s.bytes > s.budget && s.tail != nil {
		victim := s.tail
		s.unlinkLocked(victim)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.evicted++
		evictedN++
		evictedBytes += len(victim.val)
	}
	s.mu.Unlock()
	if evictedN > 0 {
		s.metrics.RecordCacheEvict(evictedN, evictedBytes)
	}
}

// metricsPutLocked forwards the put to the registry. Split out so the
// registry call happens while the accounting is consistent; the
// registry locks itself. Caller holds s.mu.
func (s *shard) metricsPutLocked(valBytes int) { s.metrics.RecordCachePut(valBytes) }

// unlinkLocked removes e from the recency list. Caller holds s.mu.
func (s *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFrontLocked makes e the most recently used. Caller holds s.mu.
func (s *shard) pushFrontLocked(e *entry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// Stats aggregates the shard counters.
func (m *Memory) Stats() Stats {
	out := Stats{Shards: len(m.shards)}
	for _, s := range m.shards {
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Puts += s.puts
		out.Evictions += s.evicted
		out.Bytes += s.bytes
		out.Entries += int64(len(s.entries))
		out.Budget += s.budget
		s.mu.Unlock()
	}
	return out
}
