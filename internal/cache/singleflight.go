package cache

import (
	"errors"
	"sync"
)

// Loader fronts a ResultCache with miss coalescing: when a thundering
// herd of identical requests misses, exactly one caller computes and
// every concurrent duplicate waits for that result instead of
// recomputing it. The computed value is stored once, so an epoch
// advance under load costs one evaluation per distinct query, not one
// per request.
//
// A nil-cache Loader still coalesces — useful when caching is disabled
// but duplicate suppression is wanted.
type Loader struct {
	cache    ResultCache // moguard: immutable // nil disables storage, not coalescing
	mu       sync.Mutex
	inflight map[Key]*flight // moguard: guarded by mu
}

// flight is one in-progress computation; done closes when val/err are
// final.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewLoader builds a Loader over c (nil is allowed).
func NewLoader(c ResultCache) *Loader {
	return &Loader{cache: c, inflight: make(map[Key]*flight)}
}

// Cache returns the underlying port (nil when storage is disabled).
func (l *Loader) Cache() ResultCache { return l.cache }

// Do returns the cached bytes for k, or computes them exactly once
// across concurrent callers. hit reports whether the result came from
// the cache (a waiter that piggybacked on another caller's computation
// reports hit=false: the value was evaluated this round, just not by
// this caller). Errors are not cached; every waiter of a failed flight
// receives the same error.
//
// compute runs under the first caller's context; a canceled first
// caller fails the whole flight, and the next request simply retries.
func (l *Loader) Do(k Key, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	if l.cache != nil {
		if v, ok := l.cache.Get(k); ok {
			return v, true, nil
		}
	}
	l.mu.Lock()
	if f, ok := l.inflight[k]; ok {
		l.mu.Unlock()
		<-f.done
		return f.val, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	l.inflight[k] = f
	l.mu.Unlock()

	// Settle the flight even if compute panics (the HTTP layer recovers
	// panics, and a flight that never closes would hang every waiter);
	// the panic itself propagates to this caller.
	defer func() {
		if p := recover(); p != nil {
			f.err = ErrComputePanicked
			l.settle(k, f)
			panic(p)
		}
	}()
	f.val, f.err = compute()
	if f.err == nil && l.cache != nil {
		l.cache.Put(k, f.val)
	}
	l.settle(k, f)
	return f.val, false, f.err
}

// ErrComputePanicked is the error waiters of a flight receive when the
// computing caller panicked.
var ErrComputePanicked = errors.New("cache: result computation panicked")

// settle publishes the flight's outcome and unregisters it.
func (l *Loader) settle(k Key, f *flight) {
	l.mu.Lock()
	delete(l.inflight, k)
	l.mu.Unlock()
	close(f.done)
}
