package cache

import (
	"fmt"
	"testing"
)

// BenchmarkMemoryGet measures the sharded-LRU hit path — the first
// thing every cached query touches — under the allocation budget
// (alloc_budgets.json): a warm hit must not allocate at all.
func BenchmarkMemoryGet(b *testing.B) {
	m := NewMemory(1<<22, 4, nil)
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = Key{Route: "/v1/window", Query: fmt.Sprintf("x1=%d&x2=%d", i, i+1), Epoch: 7}
		m.Put(keys[i], []byte("result payload for the benchmark"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Get(keys[i%len(keys)]); !ok {
			b.Fatal("benchmark key evicted; grow the budget")
		}
	}
}
