package cache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"movingdb/internal/obs"
)

func key(q string, epoch uint64) Key { return Key{Route: "/v1/window", Query: q, Epoch: epoch} }

func TestMemoryGetPut(t *testing.T) {
	m := NewMemory(1<<20, 4, nil)
	k := key("x1=0&x2=1", 7)
	if _, ok := m.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	m.Put(k, []byte("result"))
	v, ok := m.Get(k)
	if !ok || !bytes.Equal(v, []byte("result")) {
		t.Fatalf("get = %q, %v", v, ok)
	}
	// The same query under another epoch is a different key — epoch
	// advance invalidates by miss, not by purge.
	if _, ok := m.Get(key("x1=0&x2=1", 8)); ok {
		t.Fatal("stale hit across epochs")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoryReplace(t *testing.T) {
	m := NewMemory(1<<20, 1, nil)
	k := key("q", 1)
	m.Put(k, []byte("old"))
	m.Put(k, []byte("newer value"))
	v, ok := m.Get(k)
	if !ok || string(v) != "newer value" {
		t.Fatalf("replace: %q %v", v, ok)
	}
	if st := m.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after replace", st.Entries)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	// One shard sized for exactly three entries (all keys here have
	// equal-length queries, so every entry charges the same), then
	// insert 8: the oldest must go, the newest stay, and the byte gauge
	// must respect the budget.
	val := bytes.Repeat([]byte("v"), 100)
	probe := key("q00", 1)
	size := int64(len(val)+len(probe.Route)+len(probe.Query)) + entryOverhead
	m := NewMemory(3*size+size/2, 1, nil)
	for i := 0; i < 8; i++ {
		m.Put(key(fmt.Sprintf("q%02d", i), 1), val)
	}
	st := m.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.Budget)
	}
	if st.Evictions != 5 {
		t.Fatalf("evictions = %d, want 5 (capacity 3, 8 inserts)", st.Evictions)
	}
	if _, ok := m.Get(key("q00", 1)); ok {
		t.Fatal("oldest entry survived past budget")
	}
	if _, ok := m.Get(key("q07", 1)); !ok {
		t.Fatal("newest entry evicted")
	}
	// Recency, not insertion order: the cache holds q05..q07. Touch q05
	// (the coldest by insertion), then add two more — the untouched
	// q06/q07 must be the victims, not the freshly used q05.
	if _, ok := m.Get(key("q05", 1)); !ok {
		t.Fatal("q05 missing before recency check")
	}
	m.Put(key("q08", 1), val)
	m.Put(key("q09", 1), val)
	if _, ok := m.Get(key("q05", 1)); !ok {
		t.Fatal("recently used entry evicted before older ones")
	}
	for _, q := range []string{"q06", "q07"} {
		if _, ok := m.Get(key(q, 1)); ok {
			t.Fatalf("untouched %s outlived a recently used peer", q)
		}
	}
}

func TestMemoryOversizedValueNotCached(t *testing.T) {
	m := NewMemory(256, 1, nil)
	k := key("big", 1)
	m.Put(k, bytes.Repeat([]byte("x"), 1024))
	if _, ok := m.Get(k); ok {
		t.Fatal("oversized value cached")
	}
}

func TestMemoryMetrics(t *testing.T) {
	reg := obs.New(0)
	m := NewMemory(1<<20, 2, reg)
	k := key("q", 3)
	m.Get(k)
	m.Put(k, []byte("abc"))
	m.Get(k)
	snap := reg.Snapshot()
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.Puts != 1 {
		t.Fatalf("obs cache counters = %+v", snap.Cache)
	}
	if snap.Cache.Bytes != 3 || snap.Cache.Entries != 1 {
		t.Fatalf("obs cache gauges = %+v", snap.Cache)
	}
}

func TestLoaderSingleflight(t *testing.T) {
	m := NewMemory(1<<20, 4, nil)
	l := NewLoader(m)
	k := key("herd", 1)
	var computes atomic.Int64
	gate := make(chan struct{})
	const herd = 32
	var wg sync.WaitGroup
	results := make([][]byte, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := l.Do(k, func() ([]byte, error) {
				<-gate // hold the flight open until the whole herd arrived
				computes.Add(1)
				return []byte("computed"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	// With the gate, at most a handful of callers can start before the
	// first flight registers; the herd must collapse to far fewer
	// computations than callers — and with the gate closed before any
	// compute finishes, to exactly one for all callers that arrived
	// before the flight settled.
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1", n)
	}
	for i, v := range results {
		if string(v) != "computed" {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
	if v, hit, _ := l.Do(k, func() ([]byte, error) { return nil, errors.New("must not run") }); !hit || string(v) != "computed" {
		t.Fatalf("post-herd lookup: hit=%v v=%q", hit, v)
	}
}

func TestLoaderErrorNotCached(t *testing.T) {
	l := NewLoader(NewMemory(1<<20, 1, nil))
	k := key("err", 1)
	boom := errors.New("boom")
	if _, _, err := l.Do(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := l.Do(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry after error: %q %v %v", v, hit, err)
	}
}

func TestLoaderNilCacheStillCoalesces(t *testing.T) {
	l := NewLoader(nil)
	k := key("nil", 1)
	v, hit, err := l.Do(k, func() ([]byte, error) { return []byte("x"), nil })
	if err != nil || hit || string(v) != "x" {
		t.Fatalf("nil cache Do: %q %v %v", v, hit, err)
	}
	// Never a hit: nothing is stored.
	if _, hit, _ := l.Do(k, func() ([]byte, error) { return []byte("y"), nil }); hit {
		t.Fatal("hit with nil cache")
	}
}

func TestLoaderComputePanicSettlesWaiters(t *testing.T) {
	l := NewLoader(NewMemory(1<<20, 1, nil))
	k := key("panic", 1)
	started := make(chan struct{})
	release := make(chan struct{})
	computerDone := make(chan struct{})
	go func() {
		defer close(computerDone)
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		_, _, _ = l.Do(k, func() ([]byte, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()
	<-started // flight is registered and computing
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := l.Do(k, func() ([]byte, error) {
			// Only runs if this caller raced past the settled flight
			// and started its own; that is fine — return a value.
			return []byte("raced"), nil
		})
		waiterDone <- err
	}()
	close(release) // let the panic fire; settle must wake the waiter
	waiterErr := <-waiterDone
	<-computerDone
	// The waiter either piggybacked on the panicked flight (and must see
	// ErrComputePanicked, not hang) or arrived after settlement and
	// computed its own value (nil error).
	if waiterErr != nil && !errors.Is(waiterErr, ErrComputePanicked) {
		t.Fatalf("waiter err = %v", waiterErr)
	}
}

func TestShardDistribution(t *testing.T) {
	m := NewMemory(1<<20, 8, nil)
	for i := 0; i < 512; i++ {
		m.Put(key(fmt.Sprintf("q%d", i), uint64(i%5)), []byte("v"))
	}
	// Every shard should hold something: maphash spreads keys.
	empty := 0
	for _, s := range m.shards {
		s.mu.Lock()
		if len(s.entries) == 0 {
			empty++
		}
		s.mu.Unlock()
	}
	if empty > 0 {
		t.Fatalf("%d of %d shards empty after 512 inserts", empty, len(m.shards))
	}
}
