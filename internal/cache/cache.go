// Package cache is the query-result cache of the serving layer,
// modeled as a port with swappable adapters: the ResultCache interface
// is the contract the server programs against, and Memory (a sharded,
// byte-budgeted LRU) is the first adapter behind it. External adapters
// (a shared Redis tier, a disk cache) implement the same interface
// without touching any handler.
//
// The key design carries the correctness argument. A key is
// (route, canonical query, epoch): every query operator in this system
// is deterministic, and an Epoch (internal/ingest) is an immutable
// snapshot, so a result computed against an epoch is a pure function of
// its key — a cached value can never be wrong for its key, only absent.
// Epoch advance therefore invalidates for free: new epoch, new keys,
// and the entries of retired epochs age out of the LRU without any
// explicit purge protocol.
package cache

import "hash/maphash"

// Key identifies one cacheable result. Query must be the canonical
// form of the request (one request shape, one string — the server's
// typed decoders produce it), and Epoch the snapshot sequence the
// result was computed against.
type Key struct {
	Route string
	Query string
	Epoch uint64
}

// Stats is a point-in-time view of an adapter.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	Entries   int64 `json:"entries"`
	Budget    int64 `json:"budget"`
	Shards    int   `json:"shards"`
}

// ResultCache is the port. Implementations must be safe for concurrent
// use; Get returns the stored bytes (which callers must treat as
// immutable) and whether the key was present. Put may decline to store
// (an entry larger than the budget simply isn't cached) — the cache is
// an optimisation, never a source of truth.
type ResultCache interface {
	Get(k Key) ([]byte, bool)
	Put(k Key, v []byte)
	Stats() Stats
}

// seed is the process-wide hash seed for shard selection. One seed for
// every Memory instance keeps shard choice deterministic within a
// process while still randomising it across processes.
var seed = maphash.MakeSeed()

// shardOf hashes a key onto [0, n). n must be a power of two.
func shardOf(k Key, n int) int {
	var h maphash.Hash
	h.SetSeed(seed)
	_, _ = h.WriteString(k.Route)
	_ = h.WriteByte(0)
	_, _ = h.WriteString(k.Query)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(k.Epoch >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return int(h.Sum64() & uint64(n-1))
}
