package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"movingdb/internal/obs"
	"movingdb/internal/storage"
)

// The write-ahead log stores one record per acknowledged batch — plus
// periodic checkpoint records — as large objects in the page store, so
// each record starts on a page boundary and recovery is a linear page
// scan. Record layout (little-endian):
//
//	magic   uint32  walMagic
//	kind    uint32  1 = batch, 2 = checkpoint
//	seq     uint64  batch: 1-based, strictly consecutive
//	                checkpoint: the seq its state covers
//	payload uint32  payload length in bytes
//	crc     uint32  CRC-32 (IEEE) of header bytes [4, 20) + payload,
//	                so a flipped kind/seq/length is caught too
//	payload: batch — count uint32, then per observation
//	         idLen uint32, id bytes, t/x/y float64;
//	         checkpoint — the encoded appender state (checkpoint.go)
//
// Recovery classifies damage by where and what it is:
//
//   - A record whose header does not parse, or whose pages extend past
//     the end of the medium, is a torn tail from an interrupted write:
//     it and everything after it is truncated (the normal crash
//     artifact, not corruption).
//   - A checkpoint record that is fully present but fails its CRC,
//     its sequence rule, or state validation is quarantined (its pages
//     are moved aside and counted) and skipped: the records around it
//     still chain on seq, so the previous checkpoint plus the suffix
//     replay reconstruct the same state. Recovery never fails open.
//   - A batch record that is fully present but corrupt ends trust in
//     the suffix: it is quarantined and the log is truncated there, so
//     the recovered state is the longest clean prefix of acked batches.
//
// Periodically (every CheckpointPages pages of appends) the pipeline
// writes a checkpoint carrying the full appender state and compacts
// the log down to [previous checkpoint][suffix], keeping replay
// bounded by roughly two checkpoint intervals while always retaining
// one older checkpoint as the corruption fallback.
const (
	walMagic      = 0x4D4F574C // "MOWL"
	walHeaderSize = 24

	walKindBatch      = 1
	walKindCheckpoint = 2

	// quarantineKeepPages bounds the in-memory copy of quarantined
	// pages (the count is unbounded; the bytes are a diagnostic aid).
	quarantineKeepPages = 64
)

type wal struct {
	mu        sync.Mutex
	io        PageIO // moguard: immutable
	seq       uint64 // moguard: guarded by mu
	pages     int    // moguard: guarded by mu // committed log length in pages
	ckptEvery int    // moguard: guarded by mu // batch pages between checkpoints; <= 0 disables
	sinceCkpt int    // moguard: guarded by mu // batch pages appended since the last checkpoint
	ckptPage  int    // moguard: guarded by mu // first page of the newest valid checkpoint, -1 none

	checkpoints      int64    // moguard: guarded by mu
	quarantinedPages int      // moguard: guarded by mu
	quarantined      [][]byte // moguard: guarded by mu

	metrics *obs.Metrics // moguard: immutable // synchronises itself, nil-safe
}

// walStats is the point-in-time WAL view for Pipeline.Stats.
type walStats struct {
	seq              uint64
	pages            int
	checkpoints      int64
	quarantinedPages int
}

// walRecovery is what openWAL salvaged: the newest valid checkpoint
// state (nil if none), the batch records after it, and whether the
// scan quarantined anything — a dirty log should be re-checkpointed so
// the damaged region stops being re-read on every open.
type walRecovery struct {
	state   []byte
	batches [][]Observation
	dirty   bool
}

// openWAL scans pio from page 0 and salvages everything the damage
// taxonomy above allows. The medium is truncated after the last record
// it still trusts. openWAL never fails open: any byte prefix of a log
// image recovers to a clean prefix of the acked history.
func openWAL(pio PageIO, metrics *obs.Metrics) (*wal, walRecovery, error) {
	w := &wal{io: pio, ckptPage: -1, metrics: metrics}
	var rec walRecovery
	p, committed, ckptEnd := 0, 0, 0
	for p < pio.NumPages() {
		hdr, err := pio.Get(storage.LOBRef{FirstPage: p, Length: walHeaderSize})
		if err != nil || len(hdr) < walHeaderSize ||
			binary.LittleEndian.Uint32(hdr[0:]) != walMagic {
			break // torn tail (or pre-WAL bytes): discard
		}
		kind := binary.LittleEndian.Uint32(hdr[4:])
		seq := binary.LittleEndian.Uint64(hdr[8:])
		payloadLen := int(binary.LittleEndian.Uint32(hdr[16:]))
		sum := binary.LittleEndian.Uint32(hdr[20:])
		if kind != walKindBatch && kind != walKindCheckpoint {
			break // not a record header: torn tail
		}
		n := pagesFor(walHeaderSize + payloadLen)
		if p+n > pio.NumPages() {
			break // record extends past the medium: torn write
		}
		body, err := pio.Get(storage.LOBRef{FirstPage: p, Length: walHeaderSize + payloadLen})
		bad := err != nil
		var payload []byte
		if !bad {
			payload = body[walHeaderSize:]
			bad = recordCRC(body[4:20], payload) != sum
		}
		if !bad {
			switch kind {
			case walKindBatch:
				var batch []Observation
				batch, err = decodeBatch(payload)
				if bad = err != nil || seq != w.seq+1; !bad {
					rec.batches = append(rec.batches, batch)
					w.seq = seq
				}
			case walKindCheckpoint:
				// After compaction the log starts at a checkpoint whose
				// seq is absolute, so the rule is seq >= current, not
				// equality; the state then covers everything seen.
				if bad = seq < w.seq || validateState(payload) != nil; !bad {
					rec.state = payload
					rec.batches = rec.batches[:0]
					w.seq = seq
					w.ckptPage = p
					ckptEnd = p + n
				}
			}
		}
		if bad {
			rec.dirty = true
			if kind == walKindCheckpoint {
				w.quarantine(p, n, "checkpoint")
				p += n
				continue
			}
			w.quarantine(p, pio.NumPages()-p, "record")
			break
		}
		p += n
		committed = p
	}
	pio.Truncate(committed)
	w.pages = committed
	w.sinceCkpt = committed - ckptEnd
	return w, rec, nil
}

// quarantine moves the pages of a corrupt record aside: their bytes
// are copied into a bounded in-memory buffer (the "file moved aside")
// and the damage is counted per cause. openWAL calls it during the
// single-threaded scan, but it takes the lock anyway: a wal handed to
// the pipeline serves stats() concurrently, and an unlocked write here
// would race with that read the moment quarantine gained a post-open
// caller.
func (w *wal) quarantine(p, n int, cause string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if raw, err := w.io.Get(storage.LOBRef{FirstPage: p, Length: n * storage.PageSize}); err == nil {
		for off := 0; off < len(raw) && len(w.quarantined) < quarantineKeepPages; off += storage.PageSize {
			w.quarantined = append(w.quarantined, raw[off:off+storage.PageSize])
		}
	}
	w.quarantinedPages += n
	w.metrics.RecordWALQuarantine(n, cause)
}

func pagesFor(n int) int { return (n + storage.PageSize - 1) / storage.PageSize }

// recordCRC covers the header fields after the magic plus the payload,
// so corruption of kind, seq or length is detected, not just payload
// rot.
func recordCRC(hdrPart, payload []byte) uint32 {
	return crc32.Update(crc32.ChecksumIEEE(hdrPart), crc32.IEEETable, payload)
}

func encodeRecord(kind uint32, seq uint64, payload []byte) []byte {
	rec := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], walMagic)
	binary.LittleEndian.PutUint32(rec[4:], kind)
	binary.LittleEndian.PutUint64(rec[8:], seq)
	binary.LittleEndian.PutUint32(rec[16:], uint32(len(payload)))
	copy(rec[walHeaderSize:], payload)
	binary.LittleEndian.PutUint32(rec[20:], recordCRC(rec[4:20], rec[walHeaderSize:]))
	return rec
}

// append logs one batch and returns its sequence number. The caller
// (the batcher) serialises appends with enqueue admission, so WAL order
// equals apply order. A failed Put may have left torn pages behind;
// they are truncated away so the committed prefix stays scannable and
// the next append lands exactly where recovery will look for it.
func (w *wal) append(batch []Observation) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := encodeRecord(walKindBatch, w.seq+1, encodeBatch(batch))
	ref, err := w.io.Put(rec)
	if err != nil {
		w.io.Truncate(w.pages)
		return 0, err
	}
	w.seq++
	w.pages += ref.NumPages()
	w.sinceCkpt += ref.NumPages()
	w.metrics.RecordWALAppend(ref.NumPages())
	return w.seq, nil
}

// checkpointDue reports whether enough batch pages have accumulated
// since the last checkpoint.
func (w *wal) checkpointDue() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ckptEvery > 0 && w.sinceCkpt >= w.ckptEvery
}

// checkpoint writes a checkpoint record carrying state — the appender
// snapshot at exactly the current seq; the caller guarantees every
// logged batch is applied and no append can interleave — then compacts
// the log to [previous checkpoint][suffix]. The previous checkpoint is
// retained deliberately: it is the fallback when the newer record
// rots. With dropPrevious the compaction goes all the way to the new
// record instead — the dirty-recovery path uses it, because there the
// region before the new checkpoint is exactly where quarantined damage
// lives. A refused compact (injectable) just leaves a longer, still
// valid log for the next round to shrink.
func (w *wal) checkpoint(state []byte, dropPrevious bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := encodeRecord(walKindCheckpoint, w.seq, state)
	ref, err := w.io.Put(rec)
	if err != nil {
		w.io.Truncate(w.pages)
		return err
	}
	ckpt := ref.FirstPage
	w.pages += ref.NumPages()
	w.metrics.RecordWALCheckpoint(ref.NumPages())
	keep := w.ckptPage
	if dropPrevious {
		keep = ckpt
	}
	if keep > 0 {
		if cerr := w.io.Compact(keep); cerr == nil {
			ckpt -= keep
			w.pages -= keep
		}
	}
	w.ckptPage = ckpt
	w.sinceCkpt = 0
	w.checkpoints++
	return nil
}

func (w *wal) stats() walStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return walStats{
		seq:              w.seq,
		pages:            w.pages,
		checkpoints:      w.checkpoints,
		quarantinedPages: w.quarantinedPages,
	}
}

func encodeBatch(batch []Observation) []byte {
	n := 4
	for _, o := range batch {
		n += 4 + len(o.ObjectID) + 24
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batch)))
	for _, o := range batch {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.ObjectID)))
		buf = append(buf, o.ObjectID...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.T))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Y))
	}
	return buf
}

// minObservationSize is the smallest wire footprint of one observation
// (empty id): the idLen word plus three float64s. Decoders use it to
// bound counts against the payload actually present, so a corrupt
// count cannot drive allocation.
const minObservationSize = 4 + 24

func decodeBatch(payload []byte) ([]Observation, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: short batch payload", storage.ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(payload))
	if count < 0 || count > (len(payload)-4)/minObservationSize {
		return nil, fmt.Errorf("%w: batch count %d exceeds payload", storage.ErrCorrupt, count)
	}
	off := 4
	batch := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		if len(payload)-off < 4 {
			return nil, fmt.Errorf("%w: truncated observation %d", storage.ErrCorrupt, i)
		}
		idLen := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if idLen < 0 || len(payload)-off < idLen+24 {
			return nil, fmt.Errorf("%w: truncated observation %d", storage.ErrCorrupt, i)
		}
		id := string(payload[off : off+idLen])
		off += idLen
		t := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		x := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:]))
		off += 24
		batch = append(batch, Observation{ObjectID: id, T: t, X: x, Y: y})
	}
	return batch, nil
}
