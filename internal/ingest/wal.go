package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"movingdb/internal/obs"
	"movingdb/internal/storage"
)

// The write-ahead log stores one record per acknowledged batch as a
// large object in the page store, so each record starts on a page
// boundary and recovery is a linear page scan. Record layout
// (little-endian):
//
//	magic   uint32  walMagic
//	seq     uint64  1-based, strictly consecutive
//	payload uint32  payload length in bytes
//	crc     uint32  CRC-32 (IEEE) of the payload
//	payload: count uint32, then per observation
//	         idLen uint32, id bytes, t/x/y float64
//
// A record that fails any check — wrong magic, short pages, CRC
// mismatch, a gap in the sequence, or a truncated payload — ends the
// scan: it and everything after it is a torn tail from an interrupted
// write and is discarded (truncated) so later appends stay reachable.
const (
	walMagic      = 0x4D4F574C // "MOWL"
	walHeaderSize = 20
)

type wal struct {
	mu      sync.Mutex
	ps      *storage.PageStore
	seq     uint64
	pages   int
	metrics *obs.Metrics
}

// openWAL scans ps from page 0, decoding every intact record in
// sequence order, and returns the recovered batches for replay. The
// store is truncated at the first invalid record.
func openWAL(ps *storage.PageStore, metrics *obs.Metrics) (*wal, [][]Observation, error) {
	w := &wal{ps: ps, metrics: metrics}
	var batches [][]Observation
	p := 0
	for p < ps.NumPages() {
		hdr, err := ps.Get(storage.LOBRef{FirstPage: p, Length: walHeaderSize})
		if err != nil {
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != walMagic {
			break
		}
		seq := binary.LittleEndian.Uint64(hdr[4:])
		payloadLen := int(binary.LittleEndian.Uint32(hdr[12:]))
		crc := binary.LittleEndian.Uint32(hdr[16:])
		if seq != w.seq+1 {
			break
		}
		body, err := ps.Get(storage.LOBRef{FirstPage: p, Length: walHeaderSize + payloadLen})
		if err != nil {
			break
		}
		payload := body[walHeaderSize:]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			break
		}
		batches = append(batches, batch)
		w.seq = seq
		p += pagesFor(walHeaderSize + payloadLen)
	}
	ps.Truncate(p)
	w.pages = p
	return w, batches, nil
}

func pagesFor(n int) int { return (n + storage.PageSize - 1) / storage.PageSize }

// append logs one batch and returns its sequence number. The caller
// (the batcher) serialises appends with enqueue admission, so WAL order
// equals apply order.
func (w *wal) append(batch []Observation) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := encodeBatch(batch)
	rec := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], walMagic)
	binary.LittleEndian.PutUint64(rec[4:], w.seq+1)
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[16:], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderSize:], payload)
	ref := w.ps.Put(rec)
	w.seq++
	w.pages += ref.NumPages()
	w.metrics.RecordWALAppend(ref.NumPages())
	return w.seq, nil
}

func (w *wal) stats() (seq uint64, pages int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq, w.pages
}

func encodeBatch(batch []Observation) []byte {
	n := 4
	for _, o := range batch {
		n += 4 + len(o.ObjectID) + 24
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batch)))
	for _, o := range batch {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.ObjectID)))
		buf = append(buf, o.ObjectID...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.T))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Y))
	}
	return buf
}

func decodeBatch(payload []byte) ([]Observation, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: short batch payload", storage.ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(payload))
	off := 4
	batch := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		if len(payload)-off < 4 {
			return nil, fmt.Errorf("%w: truncated observation %d", storage.ErrCorrupt, i)
		}
		idLen := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if idLen < 0 || len(payload)-off < idLen+24 {
			return nil, fmt.Errorf("%w: truncated observation %d", storage.ErrCorrupt, i)
		}
		id := string(payload[off : off+idLen])
		off += idLen
		t := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		x := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:]))
		off += 24
		batch = append(batch, Observation{ObjectID: id, T: t, X: x, Y: y})
	}
	return batch, nil
}
