package ingest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"movingdb/internal/storage"
)

// FuzzWALDecode throws arbitrary bytes at every decoder on the WAL
// recovery path. The contract under test: decoders only return errors —
// no panic, no runaway allocation — and anything they do accept
// round-trips. The full openWAL scan runs over the bytes as a log
// image, where the never-fail-open rule means the only acceptable
// outcome is a successful (possibly empty) recovery.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeBatch([]Observation{{ObjectID: "a", T: 1, X: 2, Y: 3}}))
	f.Add(encodeBatch([]Observation{{ObjectID: "xyz", T: -1, X: 0.5, Y: 1e300}, {T: 2}}))
	// A huge claimed count over a tiny payload: the allocation bomb the
	// count bound exists for.
	bomb := binary.LittleEndian.AppendUint32(nil, 0xFFFFFFF0)
	f.Add(bomb)
	f.Add(encodeRecord(walKindBatch, 1, encodeBatch([]Observation{{ObjectID: "r", T: 9, X: 8, Y: 7}})))
	f.Add(encodeRecord(walKindCheckpoint, 0, []byte{1, 0, 0, 0, 0, 0, 0, 0}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if batch, err := decodeBatch(data); err == nil {
			if !bytes.Equal(encodeBatch(batch), data[:len(encodeBatch(batch))]) {
				t.Fatalf("accepted batch does not round-trip")
			}
		}
		if img, err := decodeState(data); err == nil {
			_ = img
			if err := validateState(data); err != nil {
				t.Fatalf("decodeState accepted what validateState rejects: %v", err)
			}
		}
		ps := storage.NewPageStore()
		if len(data) > 0 {
			ps.Put(data)
		}
		w, rec, err := openWAL(pageStoreIO{ps}, nil)
		if err != nil {
			t.Fatalf("openWAL failed open on arbitrary bytes: %v", err)
		}
		// Whatever was salvaged is a working log: appends keep working
		// and replay after a re-scan sees one more batch.
		n := len(rec.batches)
		if _, err := w.append([]Observation{{ObjectID: "post", T: 1, X: 0, Y: 0}}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if _, rec2, err := openWAL(pageStoreIO{ps}, nil); err != nil || len(rec2.batches) < 1 {
			t.Fatalf("re-scan after post-recovery append: err=%v batches=%d (was %d)", err, len(rec2.batches), n)
		}
	})
}

// TestDecodeBatchCountBomb is the regression pin for the fuzz target's
// headline bug class: a 4-byte payload claiming 2^32-ish observations
// must be rejected before any allocation happens.
func TestDecodeBatchCountBomb(t *testing.T) {
	for _, count := range []uint32{0xFFFFFFFF, 0x7FFFFFFF, 1 << 20} {
		payload := binary.LittleEndian.AppendUint32(nil, count)
		if _, err := decodeBatch(payload); err == nil {
			t.Fatalf("count %#x over empty payload accepted", count)
		}
	}
	// Same bomb inside a checkpoint state: object and unit counts.
	state := binary.LittleEndian.AppendUint32(nil, stateVersion)
	state = binary.LittleEndian.AppendUint32(state, 0xFFFFFFF0)
	if err := validateState(state); err == nil {
		t.Fatal("object-count bomb accepted")
	}
}
