package ingest

import (
	"sync"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

// TestConcurrentIngestAndQuery hammers the pipeline with writers and
// readers at once — run under -race this is the acceptance check that
// queries never observe the appender mid-mutation (the store lock
// covers in-place tail updates) and the delta index tolerates
// concurrent inserts, merges and searches.
func TestConcurrentIngestAndQuery(t *testing.T) {
	g := workload.New(21)
	seedStream := g.ObservationStream("r", 10, 5, 0, 1, 5)
	p, err := Open(Config{FlushSize: 8, MaxAge: 5 * time.Millisecond, MergeThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	feed(t, p, toObservations(seedStream), 50)

	const writers, readers = 4, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wg2 := workload.New(int64(100 + w))
			stream := toObservations(wg2.ObservationStream("r", 10, 60, temporal.Instant(10+w), 1, 5))
			for lo := 0; lo < len(stream); lo += 7 {
				hi := min(lo+7, len(stream))
				if _, err := p.Ingest(stream[lo:hi]); err != nil {
					// Backpressure is a legal outcome; anything else is
					// not.
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rect := geom.Rect{MinX: float64(i % 900), MinY: 0, MaxX: float64(i%900) + 150, MaxY: 1000}
				_ = p.Window(rect, temporal.Closed(0, 100))
				_ = p.AtInstant(temporal.Instant(i % 70))
				_ = p.Summaries()
				_, _ = p.Snapshot("r0")
				_ = p.Stats()
				if i%10 == 0 {
					p.Flush()
				}
				i++
			}
		}(r)
	}

	writersDone := make(chan struct{})
	go func() {
		// Writers finish on their own; readers run until then.
		defer close(writersDone)
		wg.Wait()
	}()
	// Give writers time, then release readers.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-writersDone

	select {
	case err := <-errs:
		t.Fatalf("writer failed: %v", err)
	default:
	}
	p.Flush()
	// Post-conditions: every mapping valid, index consistent.
	for _, sum := range p.Summaries() {
		mp, _ := p.Snapshot(sum.ID)
		if err := mp.M.Validate(); err != nil {
			t.Fatalf("%s: invalid after concurrent ingest: %v", sum.ID, err)
		}
	}
	if err := p.store.idx.Validate(); err != nil {
		t.Fatalf("index invalid after concurrent ingest: %v", err)
	}
}
