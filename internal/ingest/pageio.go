package ingest

import "movingdb/internal/storage"

// PageIO is the page-granular storage contract the write-ahead log
// runs on. It is the seam where the fault-injection layer
// (internal/fault, matched structurally so neither package imports the
// other) wraps the WAL medium in tests and -tags=faultinject builds;
// production servers use the plain adapter below and pay nothing.
//
// Put and Get may fail (a real device can); Truncate and Compact are
// infallible-or-refusable repair tools: Truncate always discards the
// tail (recovery depends on it), and Compact either atomically drops
// the head — the write-new-segment-then-rename idiom — or returns an
// error leaving the log untouched.
type PageIO interface {
	Put(data []byte) (storage.LOBRef, error)
	Get(ref storage.LOBRef) ([]byte, error)
	NumPages() int
	Truncate(n int)
	Compact(n int) error
}

// pageStoreIO adapts the in-memory PageStore — whose operations cannot
// fail — to the PageIO contract.
type pageStoreIO struct{ ps *storage.PageStore }

func (a pageStoreIO) Put(data []byte) (storage.LOBRef, error) { return a.ps.Put(data), nil }
func (a pageStoreIO) Get(ref storage.LOBRef) ([]byte, error)  { return a.ps.Get(ref) }
func (a pageStoreIO) NumPages() int                           { return a.ps.NumPages() }
func (a pageStoreIO) Truncate(n int)                          { a.ps.Truncate(n) }
func (a pageStoreIO) Compact(n int) error                     { a.ps.Compact(n); return nil }
