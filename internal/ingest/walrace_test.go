package ingest

import (
	"sync"
	"testing"

	"movingdb/internal/storage"
)

// TestWALQuarantineVsStatsRace reproduces the violation the guarded-by
// check surfaced: wal.quarantine used to mutate quarantinedPages and
// the quarantined page buffer without w.mu while stats() reads them
// under it. openWAL's scan is single-threaded, so the bug was latent —
// but nothing stops a post-open caller, and this test is exactly that
// caller. Under -race it fails against the unlocked quarantine and
// passes now that quarantine takes the lock.
func TestWALQuarantineVsStatsRace(t *testing.T) {
	ps := storage.NewPageStore()
	w, _, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 200; i++ {
			w.quarantine(i, 1, "test")
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 200; i++ {
			_ = w.stats()
		}
	}()
	close(start)
	wg.Wait()

	if got := w.stats().quarantinedPages; got != 200 {
		t.Fatalf("quarantinedPages = %d, want 200", got)
	}
}
