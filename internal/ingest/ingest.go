// Package ingest is the streaming write path of the moving objects
// database: it turns batches of timestamped observations
// (object, t, x, y) into upoint units appended to per-object mpoint
// mappings, while preserving the §3.3 invariants that make the sliced
// representation queryable — pairwise-disjoint, temporally ordered unit
// intervals, and the adjacent-implies-distinct minimality rule, applied
// online as compaction (an incoming unit whose linear motion continues
// its predecessor's is merged into it).
//
// The pipeline has four parts:
//
//   - a batcher with a bounded queue and backpressure, grouping
//     observations per object and flushing on size or age;
//   - an appender (the Store) extending each object's mapping under the
//     invariants, with online compaction;
//   - a write-ahead log on top of storage.PageStore: every acknowledged
//     batch is logged before the ack, and Open replays the log, so
//     acknowledged observations survive a crash;
//   - incremental index maintenance: fresh bounding cubes go to a delta
//     buffer (index.Dynamic) searched alongside the immutable STR tree
//     and folded into a rebuilt tree when the buffer exceeds a
//     threshold, LSM-style, so window queries stay correct mid-ingest.
//
// Lock order across the pipeline is batcher → store → index; readers
// take the store or index lock only, never nested, so queries never
// deadlock against writes.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
)

// Observation is one timestamped position report for one object — the
// wire unit of live trajectory ingestion (also the JSON shape of the
// POST /v1/ingest body elements).
type Observation struct {
	ObjectID string  `json:"id"`
	T        float64 `json:"t"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
}

// Errors surfaced by the write path. ErrBackpressure maps to HTTP 429,
// ErrInvalidObservation to 400.
var (
	ErrBackpressure       = errors.New("ingest: write queue full")
	ErrInvalidObservation = errors.New("ingest: invalid observation")
	ErrClosed             = errors.New("ingest: pipeline closed")
)

// Config assembles a Pipeline. Zero-valued tuning fields get defaults;
// only the seed data and the WAL medium carry state.
type Config struct {
	// SeedIDs and Seeds preload the object store (parallel slices);
	// their units form the initial base index tree. Live observations
	// may extend seeded objects.
	SeedIDs []string
	Seeds   []moving.MPoint
	// Log is the page store backing the write-ahead log. Existing
	// records are replayed by Open; nil creates a fresh store (useful
	// for tests and benchmarks that do not exercise recovery).
	Log *storage.PageStore
	// FlushSize flushes an object's buffered observations once it
	// reaches this many. Default 32.
	FlushSize int
	// MaxAge flushes an object's buffered observations once the oldest
	// has waited this long. Default 100ms.
	MaxAge time.Duration
	// MaxQueued bounds the total buffered observations across objects;
	// past it, Ingest returns ErrBackpressure. Default 65536.
	MaxQueued int
	// MergeThreshold is the delta-buffer size at which the index folds
	// into a rebuilt base tree. Default index.DefaultMergeThreshold.
	MergeThreshold int
	// Metrics receives ingest counters and flush latencies (nil-safe).
	Metrics *obs.Metrics
}

func (c Config) withDefaults() Config {
	if c.Log == nil {
		c.Log = storage.NewPageStore()
	}
	if c.FlushSize == 0 {
		c.FlushSize = 32
	}
	if c.MaxAge == 0 {
		c.MaxAge = 100 * time.Millisecond
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 65536
	}
	return c
}

// Pipeline is the assembled write path. Queries go straight to the
// object store and its dynamic index; writes flow gate → WAL → batcher
// → appender → delta index.
type Pipeline struct {
	store     *Store
	wal       *wal
	bat       *batcher
	metrics   *obs.Metrics
	closeOnce sync.Once
}

// Open builds the pipeline: it seeds the object store, replays any
// write-ahead log records found in cfg.Log (restoring every batch that
// was acknowledged before a crash), and starts the flush loop.
func Open(cfg Config) (*Pipeline, error) {
	if len(cfg.SeedIDs) != len(cfg.Seeds) {
		return nil, errors.New("ingest: seed ids and objects length mismatch")
	}
	cfg = cfg.withDefaults()
	st, err := newStore(cfg.SeedIDs, cfg.Seeds, cfg.MergeThreshold, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	w, batches, err := openWAL(cfg.Log, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		st.Apply(b)
	}
	p := &Pipeline{store: st, wal: w, metrics: cfg.Metrics}
	p.bat = newBatcher(cfg.FlushSize, cfg.MaxQueued, cfg.MaxAge, p.applyFlush)
	return p, nil
}

// applyFlush is the batcher's flush sink: it applies one object's
// buffered run of observations to the store and records the latency.
func (p *Pipeline) applyFlush(batch []Observation) {
	start := time.Now()
	applied, dropped, compacted := p.store.Apply(batch)
	p.metrics.RecordIngestFlush(applied, dropped, compacted, time.Since(start))
}

// Ingest validates and admits one batch. On success the batch is in the
// write-ahead log — it survives a crash from here on — and buffered for
// apply; the returned sequence number is its WAL position. A full queue
// returns ErrBackpressure with nothing logged.
func (p *Pipeline) Ingest(batch []Observation) (uint64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("%w: empty batch", ErrInvalidObservation)
	}
	for i, o := range batch {
		if o.ObjectID == "" {
			return 0, fmt.Errorf("%w: observation %d has no object id", ErrInvalidObservation, i)
		}
		if !finite(o.T) || !finite(o.X) || !finite(o.Y) {
			return 0, fmt.Errorf("%w: observation %d (%q) has a non-finite field", ErrInvalidObservation, i, o.ObjectID)
		}
	}
	seq, err := p.bat.enqueue(batch, p.wal.append)
	switch {
	case err == nil:
		p.metrics.RecordIngestBatch(len(batch))
	case errors.Is(err, ErrBackpressure):
		p.metrics.RecordIngestBackpressure()
	}
	return seq, err
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Flush synchronously drains every buffered observation into the store,
// establishing read-your-writes for everything acknowledged so far.
func (p *Pipeline) Flush() { p.bat.flushAll() }

// Close stops the flush loop and drains the remaining buffers. The
// pipeline rejects new batches afterwards; queries keep working.
func (p *Pipeline) Close() { p.closeOnce.Do(p.bat.close) }

// Store exposes the object store for benchmarks and diagnostics.
func (p *Pipeline) Store() *Store { return p.store }

// Window reports the ids of objects inside rect at some instant of iv,
// via the dynamic index (base tree + delta buffer) with exact
// refinement, in ascending registration order.
func (p *Pipeline) Window(rect geom.Rect, iv temporal.Interval) []string {
	return p.store.Window(rect, iv)
}

// AtInstant returns the position of every object defined at t.
func (p *Pipeline) AtInstant(t temporal.Instant) []Position {
	return p.store.AtInstant(t)
}

// Summaries lists the tracked objects in registration order.
func (p *Pipeline) Summaries() []ObjectSummary { return p.store.Summaries() }

// Snapshot returns a copy of one object's mapping.
func (p *Pipeline) Snapshot(id string) (moving.MPoint, bool) { return p.store.Snapshot(id) }

// Stats is a point-in-time view of the pipeline.
type Stats struct {
	Objects      int    `json:"objects"`
	Units        int    `json:"units"`
	QueueDepth   int    `json:"queue_depth"`
	Applied      int64  `json:"applied"`
	Dropped      int64  `json:"dropped"`
	Compacted    int64  `json:"compacted"`
	BaseEntries  int    `json:"base_entries"`
	DeltaEntries int    `json:"delta_entries"`
	IndexMerges  int    `json:"index_merges"`
	WALSeq       uint64 `json:"wal_seq"`
	WALPages     int    `json:"wal_pages"`
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats {
	applied, dropped, compacted := p.store.Counters()
	base, delta, merges := p.store.IndexStats()
	seq, pages := p.wal.stats()
	return Stats{
		Objects:      p.store.Len(),
		Units:        p.store.UnitCount(),
		QueueDepth:   p.bat.depth(),
		Applied:      applied,
		Dropped:      dropped,
		Compacted:    compacted,
		BaseEntries:  base,
		DeltaEntries: delta,
		IndexMerges:  merges,
		WALSeq:       seq,
		WALPages:     pages,
	}
}
