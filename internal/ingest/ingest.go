// Package ingest is the streaming write path of the moving objects
// database: it turns batches of timestamped observations
// (object, t, x, y) into upoint units appended to per-object mpoint
// mappings, while preserving the §3.3 invariants that make the sliced
// representation queryable — pairwise-disjoint, temporally ordered unit
// intervals, and the adjacent-implies-distinct minimality rule, applied
// online as compaction (an incoming unit whose linear motion continues
// its predecessor's is merged into it).
//
// The pipeline has four parts:
//
//   - a batcher with a bounded queue and backpressure, grouping
//     observations per object and flushing on size or age;
//   - an appender (the Store) extending each object's mapping under the
//     invariants, with online compaction;
//   - a write-ahead log on top of storage.PageStore: every acknowledged
//     batch is logged before the ack, and Open replays the log, so
//     acknowledged observations survive a crash;
//   - incremental index maintenance: fresh bounding cubes go to a delta
//     buffer (index.Dynamic) searched alongside the immutable STR tree
//     and folded into a rebuilt tree when the buffer exceeds a
//     threshold, LSM-style, so window queries stay correct mid-ingest.
//
// Lock order across the pipeline is batcher → store → index; readers
// take the store or index lock only, never nested, so queries never
// deadlock against writes.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
)

// Observation is one timestamped position report for one object — the
// wire unit of live trajectory ingestion (also the JSON shape of the
// POST /v1/ingest body elements).
type Observation struct {
	ObjectID string  `json:"id"`
	T        float64 `json:"t"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
}

// Errors surfaced by the write path. ErrBackpressure maps to HTTP 429,
// ErrInvalidObservation to 400, ErrDegraded to 503 with the "degraded"
// envelope code.
var (
	ErrBackpressure       = errors.New("ingest: write queue full")
	ErrInvalidObservation = errors.New("ingest: invalid observation")
	ErrClosed             = errors.New("ingest: pipeline closed")
	// ErrDegraded means the WAL medium is failing past the retry budget:
	// the batch was NOT acknowledged and is not durable. While the
	// pipeline is degraded, writes fail fast with this error and reads
	// keep serving the last consistent state; a background probe clears
	// the state automatically once the store recovers.
	ErrDegraded = errors.New("ingest: store degraded")
)

// Config assembles a Pipeline. Zero-valued tuning fields get defaults;
// only the seed data and the WAL medium carry state.
type Config struct {
	// SeedIDs and Seeds preload the object store (parallel slices);
	// their units form the initial base index tree. Live observations
	// may extend seeded objects.
	SeedIDs []string
	Seeds   []moving.MPoint
	// Log is the page store backing the write-ahead log. Existing
	// records are replayed by Open; nil creates a fresh store (useful
	// for tests and benchmarks that do not exercise recovery).
	Log *storage.PageStore
	// FlushSize flushes an object's buffered observations once it
	// reaches this many. Default 32.
	FlushSize int
	// MaxAge flushes an object's buffered observations once the oldest
	// has waited this long. Default 100ms.
	MaxAge time.Duration
	// MaxQueued bounds the total buffered observations across objects;
	// past it, Ingest returns ErrBackpressure. Default 65536.
	MaxQueued int
	// MergeThreshold is the delta-buffer size at which the index folds
	// into a rebuilt base tree. Default index.DefaultMergeThreshold.
	MergeThreshold int
	// Metrics receives ingest counters and flush latencies (nil-safe).
	Metrics *obs.Metrics
	// LogIO overrides Log with a custom page-I/O implementation — the
	// fault-injection seam (internal/fault.Store satisfies it
	// structurally). When set, Log is ignored.
	LogIO PageIO
	// CheckpointPages is how many pages of batch records accumulate
	// before the WAL writes a checkpoint and compacts, bounding replay.
	// Default 256; -1 disables checkpointing.
	CheckpointPages int
	// RetryAttempts is the number of tries a WAL append gets before the
	// batch is declared failed (so RetryAttempts-1 retries). Default 4.
	RetryAttempts int
	// RetryBase is the first backoff delay; it doubles per retry, with
	// jitter, capped at RetryMaxWait. Defaults 2ms and 50ms.
	RetryBase    time.Duration
	RetryMaxWait time.Duration
	// RetrySeed seeds the jitter RNG, making backoff schedules
	// reproducible in tests. Default 1.
	RetrySeed int64
	// DeadLetterCap bounds the dead-letter buffer in observations.
	// Default 4096.
	DeadLetterCap int
	// DegradedThreshold is how many consecutive exhausted-retry failures
	// flip the pipeline to degraded (fail-fast) mode. Default 3.
	DegradedThreshold int
	// ProbeInterval is how often, while degraded, one write is let
	// through to probe the store for recovery. Default 1s.
	ProbeInterval time.Duration
	// OnPublish, when set, is called after every epoch publish with the
	// new epoch and the objects whose state changed since the previous
	// one — the hook the live query subsystem's standing-query notifier
	// hangs off. It runs on the flush path (under the batcher lock), so
	// implementations must be fast and must never call back into the
	// pipeline; hand the work to another goroutine (live.Registry.Notify
	// does exactly that).
	OnPublish func(ep *Epoch, dirty []DirtyObject)
}

func (c Config) withDefaults() Config {
	if c.Log == nil {
		c.Log = storage.NewPageStore()
	}
	if c.LogIO == nil {
		c.LogIO = pageStoreIO{ps: c.Log}
	}
	if c.FlushSize == 0 {
		c.FlushSize = 32
	}
	if c.MaxAge == 0 {
		c.MaxAge = 100 * time.Millisecond
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 65536
	}
	if c.CheckpointPages == 0 {
		c.CheckpointPages = 256
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 4
	}
	if c.RetryBase == 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryMaxWait == 0 {
		c.RetryMaxWait = 50 * time.Millisecond
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.DeadLetterCap == 0 {
		c.DeadLetterCap = 4096
	}
	if c.DegradedThreshold == 0 {
		c.DegradedThreshold = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// Pipeline is the assembled write path. Queries go straight to the
// object store and its dynamic index; writes flow gate → WAL → batcher
// → appender → delta index.
type Pipeline struct {
	store     *Store
	wal       *wal
	bat       *batcher
	health    *health
	dead      *deadLetter
	metrics   *obs.Metrics
	closeOnce sync.Once

	retryAttempts int
	retryBase     time.Duration
	retryMaxWait  time.Duration
	maxAge        time.Duration // flush cadence, for Retry-After hints
	maxQueued     int
	probeInterval time.Duration
	rng           *rand.Rand // jitter; touched only under bat.mu (logAppend)

	onPublish func(*Epoch, []DirtyObject) // immutable after Open
}

// Open builds the pipeline: it seeds the object store, recovers the
// write-ahead log found on the medium — newest valid checkpoint state,
// if any, plus replay of the batch records after it — and starts the
// flush loop. Recovery never fails open on damage: torn tails are
// truncated and corrupt records quarantined (see openWAL); only
// impossible configurations (mismatched seeds) error.
func Open(cfg Config) (*Pipeline, error) {
	if len(cfg.SeedIDs) != len(cfg.Seeds) {
		return nil, errors.New("ingest: seed ids and objects length mismatch")
	}
	cfg = cfg.withDefaults()
	w, rec, err := openWAL(cfg.LogIO, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	w.ckptEvery = cfg.CheckpointPages
	var st *Store
	if rec.state != nil {
		// The checkpoint state already contains the seed objects from the
		// first open (they were live when it was written), so it
		// supersedes cfg.Seeds entirely.
		st, err = storeFromState(rec.state, cfg.MergeThreshold, cfg.Metrics)
	} else {
		st, err = newStore(cfg.SeedIDs, cfg.Seeds, cfg.MergeThreshold, cfg.Metrics)
	}
	if err != nil {
		return nil, err
	}
	for _, b := range rec.batches {
		st.Apply(b)
	}
	p := &Pipeline{
		store:         st,
		wal:           w,
		health:        newHealth(cfg.DegradedThreshold, cfg.ProbeInterval),
		dead:          newDeadLetter(cfg.DeadLetterCap),
		metrics:       cfg.Metrics,
		retryAttempts: cfg.RetryAttempts,
		retryBase:     cfg.RetryBase,
		retryMaxWait:  cfg.RetryMaxWait,
		maxAge:        cfg.MaxAge,
		maxQueued:     cfg.MaxQueued,
		probeInterval: cfg.ProbeInterval,
		rng:           rand.New(rand.NewSource(cfg.RetrySeed)),
		onPublish:     cfg.OnPublish,
	}
	p.bat = newBatcher(cfg.FlushSize, cfg.MaxQueued, cfg.MaxAge, p.applyFlush, p.publishEpoch)
	// Replayed batches were applied directly to the store above; publish
	// them as the opening epoch so the first reader sees recovered data.
	p.publishEpoch()
	if rec.dirty && cfg.CheckpointPages > 0 {
		// The scan quarantined damage; re-checkpoint now, compacting all
		// the way to the fresh record, so the log stops carrying (and
		// re-reading) the damaged region on every open.
		p.checkpointNow(true)
	}
	return p, nil
}

// applyFlush is the batcher's flush sink: it applies one object's
// buffered run of observations to the store and records the latency.
func (p *Pipeline) applyFlush(batch []Observation) {
	start := time.Now()
	applied, dropped, compacted := p.store.Apply(batch)
	p.metrics.RecordIngestFlush(applied, dropped, compacted, time.Since(start))
}

// publishEpoch is the batcher's post-flush hook: it seals everything
// the flushes just applied into the next epoch and publishes it. Runs
// once per batcher operation, after every per-object apply (and its
// index insert) completed, so the epoch's object views and index
// snapshot agree exactly. A configured OnPublish hook (the live
// standing-query notifier) is handed the epoch and the per-object dirty
// rectangles in the same call, still on the flush path — it must only
// enqueue.
func (p *Pipeline) publishEpoch() {
	if err := failpointHit("epoch.publish"); err != nil {
		// Injected publish failure. The flushed state stays applied and the
		// store keeps accumulating the dirty set, so this defers publication
		// rather than losing it: the next successful flush publishes one
		// epoch covering everything since the last published one. Readers
		// keep serving the last published epoch throughout.
		p.metrics.RecordIngestCause("epoch_publish_deferred", 1)
		return
	}
	if ep, dirty, advanced := p.store.publish(); advanced {
		p.metrics.RecordEpochPublish(ep.Seq())
		if p.onPublish != nil {
			p.onPublish(ep, dirty)
		}
	}
}

// RetryAfterHint maps a write-path rejection to how long a client
// should wait before retrying, for the HTTP Retry-After header.
// Backpressure clears as flushes drain the queue, so the hint is the
// flush cadence (doubled while the queue is more than half full); a
// degraded pipeline admits one probe per probe interval, so retrying
// sooner than that can only hit the fast-fail path. Zero means "no
// hint": the error carries no retry semantics.
func (p *Pipeline) RetryAfterHint(err error) time.Duration {
	switch {
	case errors.Is(err, ErrBackpressure):
		d := p.maxAge
		if p.maxQueued > 0 && p.bat.depth() > p.maxQueued/2 {
			d *= 2
		}
		return d
	case errors.Is(err, ErrDegraded):
		return p.probeInterval
	}
	return 0
}

// Ingest validates and admits one batch. On success the batch is in the
// write-ahead log — it survives a crash from here on — and buffered for
// apply; the returned sequence number is its WAL position. A full queue
// returns ErrBackpressure with nothing logged.
func (p *Pipeline) Ingest(batch []Observation) (uint64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("%w: empty batch", ErrInvalidObservation)
	}
	for i, o := range batch {
		if o.ObjectID == "" {
			return 0, fmt.Errorf("%w: observation %d has no object id", ErrInvalidObservation, i)
		}
		if !finite(o.T) || !finite(o.X) || !finite(o.Y) {
			return 0, fmt.Errorf("%w: observation %d (%q) has a non-finite field", ErrInvalidObservation, i, o.ObjectID)
		}
	}
	if !p.health.allowAttempt(time.Now()) {
		_, cause, _, _ := p.health.state()
		p.metrics.RecordIngestCause("degraded_fast_fail", 1)
		return 0, fmt.Errorf("%w (%s)", ErrDegraded, cause)
	}
	seq, err := p.bat.enqueue(batch, p.logAppend)
	switch {
	case err == nil:
		p.metrics.RecordIngestBatch(len(batch))
		if p.wal.checkpointDue() {
			p.checkpointNow(false)
		}
	case errors.Is(err, ErrBackpressure):
		p.metrics.RecordIngestBackpressure()
	}
	return seq, err
}

// logAppend is the batcher's log hook: the WAL append wrapped in a
// bounded retry loop with exponential backoff and jitter for transient
// store faults. Exhausting the budget moves the batch to the
// dead-letter buffer, advances the health state machine toward
// degraded mode, and reports ErrDegraded — the batch was never
// acknowledged, so the caller knows it is not durable. Runs under the
// batcher lock (which also serialises p.rng).
func (p *Pipeline) logAppend(batch []Observation) (uint64, error) {
	var err error
	wait := p.retryBase
	for attempt := 0; attempt < p.retryAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter over the doubling window, capped.
			d := min(wait, p.retryMaxWait)
			time.Sleep(time.Duration(p.rng.Int63n(int64(d))) + d/2)
			wait *= 2
			p.metrics.RecordIngestCause("wal_retry", 1)
		}
		var seq uint64
		if seq, err = p.wal.append(batch); err == nil {
			p.health.onSuccess()
			return seq, nil
		}
	}
	p.health.onFailure(err.Error(), time.Now())
	p.dead.add(batch)
	p.metrics.RecordIngestCause("dead_letter", len(batch))
	return 0, fmt.Errorf("%w: %w", ErrDegraded, err)
}

// checkpointNow quiesces the batcher (drain all buffers, block
// admission), snapshots the store, and writes the checkpoint — the
// snapshot is therefore consistent with exactly the WAL sequence it is
// stamped with. Checkpoint failure is not an ingest failure: the log
// stays valid, just longer, and the next trigger retries.
func (p *Pipeline) checkpointNow(dropPrevious bool) {
	p.bat.quiesce(func() {
		if err := p.wal.checkpoint(encodeState(p.store), dropPrevious); err != nil {
			p.metrics.RecordIngestCause("checkpoint_failed", 1)
		}
	})
}

// Health reports the degradation state machine and dead-letter buffer.
func (p *Pipeline) Health() Health {
	degraded, cause, since, consec := p.health.state()
	h := Health{Degraded: degraded, Cause: cause, ConsecutiveFailures: consec}
	if degraded {
		h.SinceUnixMS = since.UnixMilli()
	}
	h.DeadLetterBatches, h.DeadLetterObs, h.DeadLetterDropped = p.dead.stats()
	return h
}

// DrainDeadLetters removes and returns the batches that exhausted
// their retries, oldest first — for operator inspection or replay once
// the store recovers.
func (p *Pipeline) DrainDeadLetters() [][]Observation { return p.dead.drain() }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Flush synchronously drains every buffered observation into the store,
// establishing read-your-writes for everything acknowledged so far.
func (p *Pipeline) Flush() { p.bat.flushAll() }

// Close stops the flush loop and drains the remaining buffers. The
// pipeline rejects new batches afterwards; queries keep working.
func (p *Pipeline) Close() { p.closeOnce.Do(p.bat.close) }

// Store exposes the object store for benchmarks and diagnostics.
func (p *Pipeline) Store() *Store { return p.store }

// Epoch returns the current published epoch — the immutable snapshot
// queries pin for their lifetime. Every acknowledged-and-flushed write
// is visible in it (Flush establishes read-your-writes by draining the
// batcher and publishing).
func (p *Pipeline) Epoch() *Epoch { return p.store.CurrentEpoch() }

// Window reports the ids of objects inside rect at some instant of iv,
// answered lock-free against the current epoch's pinned index view with
// exact refinement, in ascending registration order.
func (p *Pipeline) Window(rect geom.Rect, iv temporal.Interval) []string {
	return p.Epoch().Window(rect, iv)
}

// AtInstant returns the position of every object defined at t, answered
// lock-free against the current epoch.
func (p *Pipeline) AtInstant(t temporal.Instant) []Position {
	return p.Epoch().AtInstant(t)
}

// Summaries lists the tracked objects in registration order, from the
// current epoch.
func (p *Pipeline) Summaries() []ObjectSummary { return p.Epoch().Summaries() }

// Snapshot returns a copy of one object's mapping as of the current
// epoch.
func (p *Pipeline) Snapshot(id string) (moving.MPoint, bool) { return p.Epoch().Snapshot(id) }

// Stats is a point-in-time view of the pipeline.
type Stats struct {
	Objects         int    `json:"objects"`
	Units           int    `json:"units"`
	QueueDepth      int    `json:"queue_depth"`
	Applied         int64  `json:"applied"`
	Dropped         int64  `json:"dropped"`
	Compacted       int64  `json:"compacted"`
	BaseEntries     int    `json:"base_entries"`
	DeltaEntries    int    `json:"delta_entries"`
	IndexMerges     int    `json:"index_merges"`
	WALSeq          uint64 `json:"wal_seq"`
	WALPages        int    `json:"wal_pages"`
	WALCheckpoints  int64  `json:"wal_checkpoints"`
	WALQuarantined  int    `json:"wal_quarantined_pages"`
	DeadLetterBatch int    `json:"dead_letter_batches"`
	DeadLetterObs   int    `json:"dead_letter_observations"`
	Degraded        bool   `json:"degraded"`
	Epoch           uint64 `json:"epoch"`
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats {
	applied, dropped, compacted := p.store.Counters()
	base, delta, merges := p.store.IndexStats()
	ws := p.wal.stats()
	degraded, _, _, _ := p.health.state()
	dlb, dlo, _ := p.dead.stats()
	return Stats{
		Objects:         p.store.Len(),
		Units:           p.store.UnitCount(),
		QueueDepth:      p.bat.depth(),
		Applied:         applied,
		Dropped:         dropped,
		Compacted:       compacted,
		BaseEntries:     base,
		DeltaEntries:    delta,
		IndexMerges:     merges,
		WALSeq:          ws.seq,
		WALPages:        ws.pages,
		WALCheckpoints:  ws.checkpoints,
		WALQuarantined:  ws.quarantinedPages,
		DeadLetterBatch: dlb,
		DeadLetterObs:   dlo,
		Degraded:        degraded,
		Epoch:           p.Epoch().Seq(),
	}
}
