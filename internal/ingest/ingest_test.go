package ingest

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
	"movingdb/internal/workload"
)

// toObservations converts the workload's stream shape to the wire
// shape.
func toObservations(ws []workload.Observation) []Observation {
	out := make([]Observation, len(ws))
	for i, w := range ws {
		out[i] = Observation{ObjectID: w.ID, T: float64(w.T), X: w.P.X, Y: w.P.Y}
	}
	return out
}

// feed pushes the stream through the pipeline in batches of the given
// size, retrying on backpressure by flushing, then drains.
func feed(t *testing.T, p *Pipeline, obsns []Observation, batchSize int) {
	t.Helper()
	for lo := 0; lo < len(obsns); lo += batchSize {
		hi := min(lo+batchSize, len(obsns))
		if _, err := p.Ingest(obsns[lo:hi]); err != nil {
			if errors.Is(err, ErrBackpressure) {
				p.Flush()
				if _, err = p.Ingest(obsns[lo:hi]); err == nil {
					continue
				}
			}
			t.Fatalf("ingest batch [%d:%d): %v", lo, hi, err)
		}
	}
	p.Flush()
}

// TestOnlineMatchesOffline is the acceptance property: the mapping an
// object accumulates through the live append path is unit-for-unit
// identical to the offline sliced construction (MPointFromSamples) over
// the same observation sequence — same intervals, same closure flags,
// same motion coefficients, same compaction decisions.
func TestOnlineMatchesOffline(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99} {
		for _, batchSize := range []int{1, 3, 17, 1000} {
			t.Run(fmt.Sprintf("seed=%d/batch=%d", seed, batchSize), func(t *testing.T) {
				g := workload.New(seed)
				stream := g.ObservationStream("obj", 8, 60, 0, 1, 5)
				p, err := Open(Config{FlushSize: 5, MaxAge: time.Hour})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				feed(t, p, toObservations(stream), batchSize)

				perObject := map[string][]moving.Sample{}
				var order []string
				for _, w := range stream {
					if _, ok := perObject[w.ID]; !ok {
						order = append(order, w.ID)
					}
					perObject[w.ID] = append(perObject[w.ID], moving.Sample{T: w.T, P: w.P})
				}
				for _, id := range order {
					want, err := moving.MPointFromSamples(perObject[id])
					if err != nil {
						t.Fatalf("offline build %s: %v", id, err)
					}
					got, ok := p.Snapshot(id)
					if !ok {
						t.Fatalf("object %s missing from live store", id)
					}
					if err := got.M.Validate(); err != nil {
						t.Fatalf("%s: live mapping invalid: %v", id, err)
					}
					gu, wu := got.M.Units(), want.M.Units()
					if len(gu) != len(wu) {
						t.Fatalf("%s: %d live units, %d offline", id, len(gu), len(wu))
					}
					for i := range gu {
						if gu[i] != wu[i] {
							t.Fatalf("%s unit %d: live %v, offline %v", id, i, gu[i], wu[i])
						}
					}
				}
			})
		}
	}
}

// TestCompactionMergesContinuedMotion checks the online minimality
// rule: observations continuing the same linear motion extend the
// previous unit instead of adding one, and a change of motion starts a
// new unit.
func TestCompactionMergesContinuedMotion(t *testing.T) {
	p, err := Open(Config{FlushSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	send := func(ts, x, y float64) {
		t.Helper()
		if _, err := p.Ingest([]Observation{{ObjectID: "a", T: ts, X: x, Y: y}}); err != nil {
			t.Fatal(err)
		}
	}
	// Constant velocity (1, 0): one unit regardless of sample count.
	for i := 0; i <= 4; i++ {
		send(float64(i), float64(i), 0)
	}
	p.Flush()
	mp, _ := p.Snapshot("a")
	if n := mp.M.Len(); n != 1 {
		t.Fatalf("collinear run: want 1 unit, got %d", n)
	}
	// Turn: second unit.
	send(5, 4, 1)
	// Rest at (4, 1): third unit, then still third after more resting.
	send(6, 4, 1)
	send(7, 4, 1)
	p.Flush()
	mp, _ = p.Snapshot("a")
	if n := mp.M.Len(); n != 3 {
		t.Fatalf("turn+rest: want 3 units, got %d", n)
	}
	if _, _, compacted := p.store.Counters(); compacted != 4 {
		t.Fatalf("want 4 compactions (3 collinear + 1 rest), got %d", compacted)
	}
	if err := mp.M.Validate(); err != nil {
		t.Fatal(err)
	}
	// The merged mapping still evaluates correctly mid-unit.
	if v := mp.AtInstant(2.5); !v.Defined() || v.P != geom.Pt(2.5, 0) {
		t.Fatalf("atinstant on merged unit: got %+v", v)
	}
}

// TestNonMonotoneDropped checks that observations at or before an
// object's latest time are dropped, counted, and leave the mapping
// valid.
func TestNonMonotoneDropped(t *testing.T) {
	p, err := Open(Config{FlushSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	batch := []Observation{
		{ObjectID: "a", T: 1, X: 0, Y: 0},
		{ObjectID: "a", T: 2, X: 1, Y: 0},
		{ObjectID: "a", T: 2, X: 9, Y: 9},   // duplicate time
		{ObjectID: "a", T: 1.5, X: 9, Y: 9}, // goes back
		{ObjectID: "a", T: 3, X: 2, Y: 0},
	}
	if _, err := p.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	applied, dropped, _ := p.store.Counters()
	if applied != 3 || dropped != 2 {
		t.Fatalf("want applied=3 dropped=2, got %d/%d", applied, dropped)
	}
	mp, _ := p.Snapshot("a")
	if err := mp.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := mp.AtInstant(3); v.P != geom.Pt(2, 0) {
		t.Fatalf("final position: %+v", v)
	}
}

// TestBackpressure checks the bounded queue: past MaxQueued, Ingest
// fails with ErrBackpressure, nothing is logged, and the queue drains
// on Flush.
func TestBackpressure(t *testing.T) {
	m := obs.New(0)
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 4, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ok := []Observation{
		{ObjectID: "a", T: 1, X: 0, Y: 0}, {ObjectID: "a", T: 2, X: 1, Y: 0},
		{ObjectID: "b", T: 1, X: 0, Y: 0}, {ObjectID: "b", T: 2, X: 1, Y: 0},
	}
	seq, err := p.Ingest(ok)
	if err != nil || seq != 1 {
		t.Fatalf("first batch: seq=%d err=%v", seq, err)
	}
	if _, err := p.Ingest([]Observation{{ObjectID: "c", T: 1, X: 0, Y: 0}}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure, got %v", err)
	}
	if s := p.Stats(); s.WALSeq != 1 {
		t.Fatalf("rejected batch must not reach the WAL: seq=%d", s.WALSeq)
	}
	p.Flush()
	if _, err := p.Ingest([]Observation{{ObjectID: "c", T: 1, X: 0, Y: 0}}); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	snap := m.Snapshot().Ingest
	if snap.Backpressure != 1 || snap.Batches != 2 {
		t.Fatalf("metrics: %+v", snap)
	}
}

// TestValidation rejects malformed batches before they touch the log.
func TestValidation(t *testing.T) {
	p, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, bad := range [][]Observation{
		nil,
		{},
		{{ObjectID: "", T: 1}},
		{{ObjectID: "a", T: math.NaN()}},
		{{ObjectID: "a", T: 1, X: math.Inf(1)}},
	} {
		if _, err := p.Ingest(bad); !errors.Is(err, ErrInvalidObservation) {
			t.Fatalf("batch %v: want ErrInvalidObservation, got %v", bad, err)
		}
	}
	if s := p.Stats(); s.WALSeq != 0 {
		t.Fatalf("invalid batches must not reach the WAL: seq=%d", s.WALSeq)
	}
}

// TestSeededPipelineExtends checks that live observations extend seeded
// (offline-built) mappings and the window index sees both the seeded
// base units and the live delta units.
func TestSeededPipelineExtends(t *testing.T) {
	seed, err := moving.MPointFromSamples([]moving.Sample{
		{T: 0, P: geom.Pt(0, 0)}, {T: 10, P: geom.Pt(10, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Open(Config{SeedIDs: []string{"s"}, Seeds: []moving.MPoint{seed}, FlushSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Continue the same motion: must compact into the seeded unit.
	if _, err := p.Ingest([]Observation{{ObjectID: "s", T: 11, X: 11, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	// Then turn.
	if _, err := p.Ingest([]Observation{{ObjectID: "s", T: 12, X: 11, Y: 5}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	mp, _ := p.Snapshot("s")
	if err := mp.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := mp.M.Len(); n != 2 {
		t.Fatalf("want 2 units (extended seed + turn), got %d", n)
	}
	// The base index covers the seeded extent, the delta the live one.
	if got := p.Window(geom.Rect{MinX: 4, MinY: -1, MaxX: 6, MaxY: 1}, temporal.Closed(0, 20)); len(got) != 1 || got[0] != "s" {
		t.Fatalf("seeded extent window: %v", got)
	}
	if got := p.Window(geom.Rect{MinX: 10, MinY: 4, MaxX: 12, MaxY: 6}, temporal.Closed(0, 20)); len(got) != 1 || got[0] != "s" {
		t.Fatalf("live extent window: %v", got)
	}
	if got := p.Window(geom.Rect{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}, temporal.Closed(0, 20)); len(got) != 0 {
		t.Fatalf("empty window: %v", got)
	}
}

// TestDegenerateSeedTail covers the one tail shape the reopen step
// cannot handle: a seeded mapping ending in a degenerate closed unit
// [t, t]. The next live unit must chain left-open instead.
func TestDegenerateSeedTail(t *testing.T) {
	u := units.StaticUPoint(temporal.Closed(5, 5), geom.Pt(1, 1))
	seed := moving.MPoint{M: mapping.FromOrdered([]units.UPoint{u})}
	p, err := Open(Config{SeedIDs: []string{"d"}, Seeds: []moving.MPoint{seed}, FlushSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Ingest([]Observation{{ObjectID: "d", T: 6, X: 2, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	mp, _ := p.Snapshot("d")
	if err := mp.M.Validate(); err != nil {
		t.Fatalf("degenerate tail chain: %v", err)
	}
	if n := mp.M.Len(); n != 2 {
		t.Fatalf("want 2 units, got %d", n)
	}
	if v := mp.AtInstant(5); v.P != geom.Pt(1, 1) {
		t.Fatalf("at the degenerate instant: %+v", v)
	}
	if v := mp.AtInstant(6); v.P != geom.Pt(2, 1) {
		t.Fatalf("after the chained unit: %+v", v)
	}
}

// TestAgeFlush checks that buffered observations become visible without
// an explicit flush once MaxAge passes.
func TestAgeFlush(t *testing.T) {
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Ingest([]Observation{
		{ObjectID: "a", T: 1, X: 0, Y: 0}, {ObjectID: "a", T: 2, X: 1, Y: 0},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := p.Snapshot("a"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("age-based flush never applied the batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseDrains checks that Close applies everything still buffered
// and further ingest fails with ErrClosed.
func TestCloseDrains(t *testing.T) {
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest([]Observation{
		{ObjectID: "a", T: 1, X: 0, Y: 0}, {ObjectID: "a", T: 2, X: 3, Y: 4},
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, ok := p.Snapshot("a"); !ok {
		t.Fatal("close did not drain the buffers")
	}
	if _, err := p.Ingest([]Observation{{ObjectID: "b", T: 1, X: 0, Y: 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// TestWindowMatchesScan cross-checks the dynamic-index window path
// against a scan over the snapshots, with part of the data still in the
// delta buffer.
func TestWindowMatchesScan(t *testing.T) {
	g := workload.New(11)
	stream := g.ObservationStream("w", 12, 40, 0, 1, 8)
	p, err := Open(Config{FlushSize: 4, MaxAge: time.Hour, MergeThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	feed(t, p, toObservations(stream), 37)
	if _, delta, _ := p.store.IndexStats(); delta == 0 {
		t.Fatal("test needs entries in the delta buffer to be meaningful")
	}
	for i := 0; i < 30; i++ {
		x, y := float64(i*30), float64((i*17)%900)
		rect := geom.Rect{MinX: x, MinY: y, MaxX: x + 120, MaxY: y + 120}
		iv := temporal.Closed(temporal.Instant(i%30), temporal.Instant(i%30+10))
		got := p.store.Window(rect, iv)
		var want []string
		for _, sum := range p.Summaries() {
			mp, _ := p.Snapshot(sum.ID)
			for _, u := range mp.M.Units() {
				if index.UPointInWindow(u, rect, iv) {
					want = append(want, sum.ID)
					break
				}
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %d (%v, %v): index %v, scan %v", i, rect, iv, got, want)
		}
	}
}
