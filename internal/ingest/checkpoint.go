package ingest

import (
	"encoding/binary"
	"fmt"
	"math"

	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// Checkpoint state payload: the full appender state at one WAL
// sequence number, written as the body of a walKindCheckpoint record.
// Layout (little-endian):
//
//	version uint32 (1)
//	objects uint32, then per object:
//	  idLen uint32, id bytes
//	  seen  uint8
//	  lastT, lastX, lastY float64
//	  units uint32, then per unit:
//	    start, end float64
//	    flags uint8 (bit 0 = left-closed, bit 1 = right-closed)
//	    x0, x1, y0, y1 float64
//	applied, dropped, compacted int64
//
// The decoder trusts nothing: counts are bounded against the bytes
// actually present before any allocation, intervals go through
// temporal.NewInterval, and each object's unit sequence is checked for
// the §3.3 disjoint-and-ordered invariant — a checkpoint that decodes
// but describes an impossible store is as corrupt as one that fails
// its CRC, and recovery falls back the same way.
const (
	stateVersion = 1

	// Minimum wire footprints, for bounding counts pre-allocation.
	minObjectSize = 4 + 1 + 24 + 4 // idLen + seen + last sample + unit count
	unitSize      = 8 + 8 + 1 + 32 // start + end + flags + four coefficients
)

// encodeState snapshots the store into a checkpoint payload. It takes
// the read lock itself; the caller (checkpointNow) guarantees the WAL
// sequence it pairs the payload with cannot advance concurrently.
func encodeState(s *Store) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 8
	for _, o := range s.objs {
		n += minObjectSize + len(o.id) + len(o.units)*unitSize
	}
	n += 24
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, stateVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.objs)))
	for _, o := range s.objs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.id)))
		buf = append(buf, o.id...)
		var seen byte
		if o.seen {
			seen = 1
		}
		buf = append(buf, seen)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(o.last.T)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.last.P.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.last.P.Y))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.units)))
		for _, u := range o.units {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(u.Iv.Start)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(u.Iv.End)))
			var flags byte
			if u.Iv.LC {
				flags |= 1
			}
			if u.Iv.RC {
				flags |= 2
			}
			buf = append(buf, flags)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.M.X0))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.M.X1))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.M.Y0))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.M.Y1))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.applied))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.dropped))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.compacted))
	return buf
}

// stateObject is one decoded object, pre-validation of store-level
// uniqueness.
type stateObject struct {
	id    string
	seen  bool
	last  moving.Sample
	units []units.UPoint
}

type stateImage struct {
	objs      []stateObject
	applied   int64
	dropped   int64
	compacted int64
}

func corruptState(format string, args ...any) error {
	return fmt.Errorf("%w: checkpoint state: %s", storage.ErrCorrupt, fmt.Sprintf(format, args...))
}

// decodeState parses and validates a checkpoint payload.
func decodeState(payload []byte) (stateImage, error) {
	var img stateImage
	if len(payload) < 8 {
		return img, corruptState("short header")
	}
	if v := binary.LittleEndian.Uint32(payload); v != stateVersion {
		return img, corruptState("unknown version %d", v)
	}
	nobj := int(binary.LittleEndian.Uint32(payload[4:]))
	off := 8
	if nobj < 0 || nobj > (len(payload)-off)/minObjectSize {
		return img, corruptState("object count %d exceeds payload", nobj)
	}
	seenIDs := make(map[string]bool, nobj)
	img.objs = make([]stateObject, 0, nobj)
	for i := 0; i < nobj; i++ {
		if len(payload)-off < 4 {
			return img, corruptState("truncated object %d", i)
		}
		idLen := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if idLen <= 0 || len(payload)-off < idLen+29 {
			return img, corruptState("truncated object %d", i)
		}
		var o stateObject
		o.id = string(payload[off : off+idLen])
		off += idLen
		if seenIDs[o.id] {
			return img, corruptState("duplicate object id %q", o.id)
		}
		seenIDs[o.id] = true
		switch payload[off] {
		case 0:
		case 1:
			o.seen = true
		default:
			return img, corruptState("object %q has bad seen flag", o.id)
		}
		off++
		t := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		x := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:]))
		off += 24
		if o.seen && (!finite(t) || !finite(x) || !finite(y)) {
			return img, corruptState("object %q has a non-finite sample", o.id)
		}
		o.last = moving.Sample{T: temporal.Instant(t), P: geom.Pt(x, y)}
		nunits := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if nunits < 0 || nunits > (len(payload)-off)/unitSize {
			return img, corruptState("object %q unit count %d exceeds payload", o.id, nunits)
		}
		o.units = make([]units.UPoint, 0, nunits)
		for j := 0; j < nunits; j++ {
			start := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			end := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
			flags := payload[off+16]
			x0 := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+17:]))
			x1 := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+25:]))
			y0 := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+33:]))
			y1 := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+41:]))
			off += unitSize
			if flags > 3 || !finite(x0) || !finite(x1) || !finite(y0) || !finite(y1) {
				return img, corruptState("object %q unit %d malformed", o.id, j)
			}
			iv, err := temporal.NewInterval(temporal.Instant(start), temporal.Instant(end), flags&1 != 0, flags&2 != 0)
			if err != nil {
				return img, corruptState("object %q unit %d: %v", o.id, j, err)
			}
			u := units.NewUPoint(iv, units.MPoint{X0: x0, X1: x1, Y0: y0, Y1: y1})
			if j > 0 {
				prev := o.units[j-1].Iv
				if !prev.RDisjoint(iv) {
					return img, corruptState("object %q units %d/%d violate disjoint order", o.id, j-1, j)
				}
			}
			o.units = append(o.units, u)
		}
		img.objs = append(img.objs, o)
	}
	if len(payload)-off != 24 {
		return img, corruptState("bad trailer length %d", len(payload)-off)
	}
	img.applied = int64(binary.LittleEndian.Uint64(payload[off:]))
	img.dropped = int64(binary.LittleEndian.Uint64(payload[off+8:]))
	img.compacted = int64(binary.LittleEndian.Uint64(payload[off+16:]))
	if img.applied < 0 || img.dropped < 0 || img.compacted < 0 {
		return img, corruptState("negative counters")
	}
	return img, nil
}

// validateState reports whether payload decodes to a consistent store
// image, without building one — the recovery scan's cheap gate.
func validateState(payload []byte) error {
	_, err := decodeState(payload)
	return err
}

// storeFromState rebuilds the live object table from a checkpoint
// image: objects in checkpoint order (which is registration order, so
// entryIDs stay stable), the base index bulk-loaded over every unit.
func storeFromState(payload []byte, mergeThreshold int, metrics *obs.Metrics) (*Store, error) {
	img, err := decodeState(payload)
	if err != nil {
		return nil, err
	}
	s := &Store{
		ids:       make(map[string]int, len(img.objs)),
		dirty:     make(map[int]geom.Rect),
		metrics:   metrics,
		applied:   img.applied,
		dropped:   img.dropped,
		compacted: img.compacted,
	}
	var entries []index.Entry
	for _, so := range img.objs {
		oi := len(s.objs)
		s.ids[so.id] = oi
		s.objs = append(s.objs, &object{id: so.id, units: so.units, last: so.last, seen: so.seen})
		for ui, u := range so.units {
			entries = append(entries, index.Entry{Cube: u.Cube(), ID: entryID(oi, ui)})
		}
	}
	s.idx = index.NewDynamic(index.Build(entries), mergeThreshold)
	s.publish()
	return s, nil
}
