package ingest

import (
	"bytes"
	"testing"
	"time"

	"movingdb/internal/storage"
	"movingdb/internal/workload"
)

// TestCrashPointSweep is the recovery subsystem's acceptance harness:
// it records the durable WAL image of a run that interleaves acked
// batches with checkpoints (including one that compacts the log head),
// then replays recovery from EVERY byte prefix of that image — every
// possible torn state of the medium. For each prefix, recovery must
//
//   - never fail open (a crash artifact is truncated or quarantined,
//     not fatal);
//   - restore exactly some prefix of the acked batch history: the
//     recovered WAL sequence j identifies it, and the recovered state
//     must be bit-identical to a pipeline that ingested batches 1..j
//     and never crashed;
//   - be monotone: a longer surviving prefix never recovers less;
//   - recover every acked batch (j = K) from the full image.
//
// The page store loads whole pages and discards a torn final page, so
// recovery is a pure function of the whole-page count a prefix yields;
// the sweep verifies every byte prefix through the lenient loader and
// runs the full pipeline-open check whenever that function can change
// (each page boundary), plus a fixed stride inside pages as a
// cross-check of that invariant itself.
func TestCrashPointSweep(t *testing.T) {
	g := workload.New(31)
	stream := toObservations(g.ObservationStream("sw", 5, 40, 0, 1, 4))

	// The acked history: small single-page batches, one multi-page batch
	// (so prefixes can tear mid-record), checkpoints after batches 4 and
	// 8 (the second compacts the head away).
	var batches [][]Observation
	for lo := 0; lo < len(stream) && len(batches) < 10; lo += 9 {
		batches = append(batches, stream[lo:min(lo+9, len(stream))])
	}
	big := make([]Observation, 300)
	for i := range big {
		big[i] = Observation{ObjectID: "bulk", T: float64(i), X: float64(i), Y: 1}
	}
	batches = append(batches[:6:6], append([][]Observation{big}, batches[6:]...)...)
	K := uint64(len(batches))

	// expected[j]: the fingerprint of a pipeline that ingested batches
	// 1..j and never crashed.
	expected := make(map[uint64]string, K+1)
	for j := uint64(0); j <= K; j++ {
		ref, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour, CheckpointPages: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:j] {
			if _, err := ref.Ingest(b); err != nil {
				t.Fatal(err)
			}
		}
		ref.Flush()
		expected[j] = fingerprint(ref)
		ref.Close()
	}

	// The recorded run.
	log := storage.NewPageStore()
	p, err := Open(Config{Log: log, FlushSize: 1 << 20, MaxAge: time.Hour, CheckpointPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if seq, err := p.Ingest(b); err != nil || seq != uint64(i+1) {
			t.Fatalf("batch %d: seq=%d err=%v", i, seq, err)
		}
		if i == 3 || i == 7 {
			p.checkpointNow(false)
		}
	}
	if st := p.Stats(); st.WALCheckpoints != 2 {
		t.Fatalf("recorded run wrote %d checkpoints, want 2", st.WALCheckpoints)
	}
	var img bytes.Buffer
	if _, err := log.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	p.Close()
	raw := img.Bytes()

	check := func(cut int, ps *storage.PageStore) uint64 {
		t.Helper()
		rp, err := Open(Config{Log: ps, FlushSize: 1 << 20, MaxAge: time.Hour, CheckpointPages: -1})
		if err != nil {
			t.Fatalf("cut %d: recovery failed open: %v", cut, err)
		}
		defer rp.Close()
		seq := rp.Stats().WALSeq
		want, ok := expected[seq]
		if !ok {
			t.Fatalf("cut %d: recovered to sequence %d, not a prefix of the %d acked batches", cut, seq, K)
		}
		if got := fingerprint(rp); got != want {
			t.Fatalf("cut %d: state at sequence %d diverges from the never-crashed reference:\n got %s\nwant %s", cut, seq, got, want)
		}
		return seq
	}

	lastPages, lastSeq := -1, uint64(0)
	for cut := 0; cut <= len(raw); cut++ {
		ps, _, err := storage.RecoverPageStore(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: lenient loader failed: %v", cut, err)
		}
		boundary := ps.NumPages() != lastPages
		if boundary || cut%997 == 0 || cut == len(raw) {
			seq := check(cut, ps)
			if seq < lastSeq {
				t.Fatalf("cut %d: recovery went backwards: sequence %d after %d", cut, seq, lastSeq)
			}
			lastSeq = seq
			lastPages = ps.NumPages()
		}
	}
	if lastSeq != K {
		t.Fatalf("full image recovered sequence %d, want every acked batch (%d)", lastSeq, K)
	}
}
