package ingest

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// Store is the live object table: per-object unit arrays extended by
// the appender plus the dynamic index over their bounding cubes. One
// RWMutex guards the table for the write path and the administrative
// readers (stats, checkpoints); the serving read path does not use it —
// queries pin the published Epoch (an immutable copy-on-write view, see
// epoch.go) and never contend with a flush.
type Store struct {
	mu   sync.RWMutex
	ids  map[string]int // moguard: guarded by mu
	objs []*object      // moguard: guarded by mu
	idx  *index.Dynamic // moguard: immutable // set in newStore; synchronises itself

	// Epoch machinery: dirty maps the object slots touched since the
	// last publish to the bounding rectangle of their movement in that
	// window (old position through new position, accumulated per
	// accepted observation — the live query subsystem intersects it
	// against standing-subscription regions), added flags new
	// registrations (the frozen ids map must be recopied), epoch is the
	// published snapshot readers load without the lock.
	dirty map[int]geom.Rect     // moguard: guarded by mu
	added bool                  // moguard: guarded by mu
	epoch atomic.Pointer[Epoch] // moguard: atomic

	applied   int64 // moguard: guarded by mu
	dropped   int64 // moguard: guarded by mu
	compacted int64 // moguard: guarded by mu

	metrics *obs.Metrics // moguard: immutable // synchronises itself, nil-safe
}

// object is one tracked object's live state. The unit array keeps the
// canonical online shape: every unit right-half-open except the last,
// which is closed at the latest observation — exactly the offline
// builder's chaining, maintained incrementally.
type object struct {
	id    string
	units []units.UPoint
	last  moving.Sample // latest accepted observation (or seed endpoint)
	seen  bool          // false until the first observation arrives
}

// Position is one object's location at a queried instant.
type Position struct {
	ID string  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// ObjectSummary is one row of the object listing.
type ObjectSummary struct {
	ID    string  `json:"id"`
	Units int     `json:"units"`
	From  float64 `json:"from"`
	To    float64 `json:"to"`
}

// newStore registers the seed objects and bulk-loads the base index
// tree over their units.
func newStore(ids []string, seeds []moving.MPoint, mergeThreshold int, metrics *obs.Metrics) (*Store, error) {
	s := &Store{ids: make(map[string]int, len(ids)), dirty: make(map[int]geom.Rect), metrics: metrics}
	var entries []index.Entry
	for i, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("ingest: seed %d has an empty id", i)
		}
		if _, dup := s.ids[id]; dup {
			return nil, fmt.Errorf("ingest: duplicate seed id %q", id)
		}
		o := &object{id: id, units: append([]units.UPoint(nil), seeds[i].M.Units()...)}
		if n := len(o.units); n > 0 {
			last := o.units[n-1]
			o.last = moving.Sample{T: last.Iv.End, P: last.EndPoint()}
			o.seen = true
		}
		oi := len(s.objs)
		s.ids[id] = oi
		s.objs = append(s.objs, o)
		for ui, u := range o.units {
			entries = append(entries, index.Entry{Cube: u.Cube(), ID: entryID(oi, ui)})
		}
	}
	s.idx = index.NewDynamic(index.Build(entries), mergeThreshold)
	s.publish()
	return s, nil
}

// entryID packs (object, unit) into the index payload id.
func entryID(oi, ui int) int64 { return int64(oi)<<32 | int64(ui) }

// Apply extends the mappings with a batch of observations, in order.
// Non-monotone observations (t not after the object's latest) are
// dropped and counted — replay reproduces the same decisions because
// they depend only on the per-object observation order, which the WAL
// preserves. Every accepted unit's bounding cube goes to the index
// delta buffer; when an append compacts into its predecessor, the cube
// of the incoming extension is indexed under the merged unit's id, so
// the union of that unit's entries always covers its full extent.
//
// moguard: hotpath
func (s *Store) Apply(batch []Observation) (applied, dropped, compacted int) {
	s.mu.Lock()
	entries := make([]index.Entry, 0, len(batch))
	for _, ob := range batch {
		oi, ok := s.ids[ob.ObjectID]
		if !ok {
			oi = len(s.objs)
			s.ids[ob.ObjectID] = oi
			// moguard: allocok one allocation per newly registered object, not per observation
			s.objs = append(s.objs, &object{id: ob.ObjectID})
			s.added = true
		}
		o := s.objs[oi]
		smp := moving.Sample{T: temporal.Instant(ob.T), P: geom.Pt(ob.X, ob.Y)}
		if !o.seen {
			o.last, o.seen = smp, true
			s.markDirtyLocked(oi, smp.P, smp.P)
			applied++
			continue
		}
		if smp.T <= o.last.T {
			dropped++
			continue
		}
		s.markDirtyLocked(oi, o.last.P, smp.P)
		u := unitBetween(o.last, smp)
		cube := u.Cube() // pre-merge: the extension's own extent
		ui, merged := o.append(u)
		if merged {
			compacted++
		}
		entries = append(entries, index.Entry{Cube: cube, ID: entryID(oi, ui)})
		o.last = smp
		applied++
	}
	s.applied += int64(applied)
	s.dropped += int64(dropped)
	s.compacted += int64(compacted)
	s.mu.Unlock()
	// Index maintenance outside the table lock would let a reader see
	// units without their cubes; holding it keeps flush atomic from the
	// readers' perspective. Lock order: store → index.
	if len(entries) > 0 {
		if s.idx.InsertBatch(entries) {
			s.metrics.RecordIndexMerge()
		}
	}
	return applied, dropped, compacted
}

// unitBetween builds the unit covering [a.T, b.T] with the same
// construction as the offline builder (static unit for a resting pair,
// linear interpolation otherwise), closed at b — the unit is the
// mapping's new final unit.
func unitBetween(a, b moving.Sample) units.UPoint {
	iv := temporal.Closed(a.T, b.T)
	if a.P == b.P {
		return units.StaticUPoint(iv, a.P)
	}
	u, err := units.UPointBetween(iv, a.P, b.P)
	if err != nil {
		// Unreachable: the interval is non-degenerate by the monotone
		// admission check.
		panic(err)
	}
	return u
}

// append chains u onto the unit array: the closed tail is re-opened on
// the right (the offline builder's half-open chaining, applied online)
// and the incoming unit is merged into it when the motion continues
// unchanged — the adjacent-equal-value minimality rule as compaction.
// It returns the index of the unit now covering u's interval and
// whether a merge happened.
func (o *object) append(u units.UPoint) (int, bool) {
	n := len(o.units)
	if n == 0 {
		o.units = append(o.units, u)
		return 0, false
	}
	lu := o.units[n-1]
	if lu.Iv.RC {
		if !lu.Iv.IsDegenerate() {
			lu = lu.WithInterval(temporal.MustInterval(lu.Iv.Start, lu.Iv.End, lu.Iv.LC, false))
			o.units[n-1] = lu
		} else {
			// A degenerate closed tail (possible in seeded mappings)
			// cannot re-open; chain the new unit left-open instead.
			u = u.WithInterval(temporal.LeftHalfOpen(u.Iv.Start, u.Iv.End))
		}
	}
	if lu.Iv.RAdjacent(u.Iv) && lu.EqualFunc(u) {
		if iv, ok := lu.Iv.Union(u.Iv); ok {
			o.units[n-1] = lu.WithInterval(iv)
			return n - 1, true
		}
	}
	o.units = append(o.units, u)
	return n, false
}

// markDirtyLocked extends the object's pending movement rectangle with
// the segment endpoints of one accepted observation. Caller holds s.mu.
func (s *Store) markDirtyLocked(oi int, from, to geom.Point) {
	r, ok := s.dirty[oi]
	if !ok {
		r = geom.EmptyRect()
	}
	s.dirty[oi] = r.ExtendPoint(from).ExtendPoint(to)
}

// DirtyObject describes one object touched by the flushes behind an
// epoch publish: the bounding rectangle of its movement since the
// previous publish (old position through new position — if the object
// was inside a region at the previous epoch, its old position, and
// therefore the rectangle, still overlaps that region, so rectangle
// intersection is a complete candidate filter for both enter and leave
// edges) and whether the object was first registered in this window.
type DirtyObject struct {
	ID   string
	Rect geom.Rect
	New  bool
}

// CurrentEpoch returns the published epoch — the immutable view the
// serving read path queries. Lock-free; never nil once the store is
// constructed (newStore and storeFromState both publish).
func (s *Store) CurrentEpoch() *Epoch { return s.epoch.Load() }

// publish seals the objects touched since the last publish into a new
// epoch and atomically swaps it in. It reports the epoch now current,
// the objects whose state changed since the previous publish (for the
// live query subsystem's standing-query notifier), and whether it
// advanced; with nothing dirty the previous epoch stays (so a flush of
// only-dropped observations does not move the ETag).
func (s *Store) publish() (*Epoch, []DirtyObject, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked()
}

// publishLocked builds the next epoch copy-on-write: untouched slots
// share the previous epoch's views (an 8-byte pointer copy each), dirty
// slots are re-sealed (constant work per object: a slice-header alias
// of the immutable prefix plus one unit copied by value), and the
// frozen ids map is recopied only when an object was registered. The
// index snapshot is captured in the same critical section, so the view
// and its index agree exactly — every flush completes its store apply
// and its index insert before the batcher triggers publish. Caller
// holds s.mu.
func (s *Store) publishLocked() (*Epoch, []DirtyObject, bool) {
	prev := s.epoch.Load()
	if prev != nil && len(s.dirty) == 0 && !s.added {
		return prev, nil, false
	}
	next := &Epoch{seq: 1, idx: s.idx.Snapshot()}
	if prev != nil {
		next.seq = prev.seq + 1
	}
	if prev != nil && !s.added {
		next.ids = prev.ids
	} else {
		ids := make(map[string]int, len(s.ids))
		for id, oi := range s.ids {
			ids[id] = oi
		}
		next.ids = ids
	}
	next.objs = make([]*objView, len(s.objs))
	sealed := 0
	if prev != nil {
		sealed = copy(next.objs, prev.objs)
	}
	for oi := sealed; oi < len(s.objs); oi++ {
		next.objs[oi] = viewOf(s.objs[oi])
	}
	var dirty []DirtyObject
	if len(s.dirty) > 0 {
		dirty = make([]DirtyObject, 0, len(s.dirty))
	}
	for oi, rect := range s.dirty {
		if oi < sealed {
			next.objs[oi] = viewOf(s.objs[oi])
		}
		dirty = append(dirty, DirtyObject{ID: s.objs[oi].id, Rect: rect, New: oi >= sealed})
	}
	// Deterministic notification order: dirty map iteration is random,
	// but subscribers observe event order per epoch.
	slices.SortFunc(dirty, func(a, b DirtyObject) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	clear(s.dirty)
	s.added = false
	s.epoch.Store(next)
	return next, dirty, true
}

// Len returns the number of tracked objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objs)
}

// UnitCount returns the total number of units across objects.
func (s *Store) UnitCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, o := range s.objs {
		n += len(o.units)
	}
	return n
}

// Counters returns the cumulative apply statistics.
func (s *Store) Counters() (applied, dropped, compacted int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied, s.dropped, s.compacted
}

// IndexStats reports the dynamic index's base size, delta size and
// merge count.
func (s *Store) IndexStats() (base, delta, merges int) {
	return s.idx.BaseLen(), s.idx.DeltaLen(), s.idx.Merges()
}

// ForceMergeIndex folds the delta buffer into a rebuilt base tree now,
// regardless of the threshold — benchmarks use it to pin the
// base/delta split.
func (s *Store) ForceMergeIndex() { s.idx.ForceMerge() }

// AtInstant returns the position of every object defined at t, in
// registration order.
func (s *Store) AtInstant(t temporal.Instant) []Position {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := []Position{}
	for _, o := range s.objs {
		m := mapping.FromOrdered(o.units)
		if u, ok := m.UnitAt(t); ok {
			p := u.Eval(t)
			out = append(out, Position{ID: o.id, X: p.X, Y: p.Y})
		}
	}
	return out
}

// Window reports the ids of objects inside rect at some instant of iv:
// the dynamic index yields (object, unit) candidates from the base tree
// and the delta buffer, and the exact per-unit refinement runs against
// the current unit data.
func (s *Store) Window(rect geom.Rect, iv temporal.Interval) []string {
	q := geom.Cube{Rect: rect, MinT: float64(iv.Start), MaxT: float64(iv.End)}
	ids, _ := s.idx.Search(q, nil)
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[int]bool)
	var hits []int
	for _, id := range ids {
		oi, ui := int(id>>32), int(id&0xffffffff)
		if seen[oi] || oi >= len(s.objs) {
			continue
		}
		o := s.objs[oi]
		if ui >= len(o.units) {
			continue
		}
		// Refining against the current unit is safe: units only grow,
		// and a grown unit contains every extent its entries covered.
		if index.UPointInWindow(o.units[ui], rect, iv) {
			seen[oi] = true
			hits = append(hits, oi)
		}
	}
	slices.Sort(hits)
	out := make([]string, 0, len(hits))
	for _, oi := range hits {
		out = append(out, s.objs[oi].id)
	}
	return out
}

// Summaries lists the tracked objects in registration order. An object
// that has a single observation and no unit yet reports zero units with
// From == To == its observation time.
func (s *Store) Summaries() []ObjectSummary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ObjectSummary, 0, len(s.objs))
	for _, o := range s.objs {
		sum := ObjectSummary{ID: o.id, Units: len(o.units)}
		if len(o.units) > 0 {
			sum.From = float64(o.units[0].Iv.Start)
			sum.To = float64(o.units[len(o.units)-1].Iv.End)
		} else if o.seen {
			sum.From, sum.To = float64(o.last.T), float64(o.last.T)
		}
		out = append(out, sum)
	}
	return out
}

// Snapshot returns a copy of one object's mapping, detached from the
// live buffers.
func (s *Store) Snapshot(id string) (moving.MPoint, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	oi, ok := s.ids[id]
	if !ok {
		return moving.MPoint{}, false
	}
	us := append([]units.UPoint(nil), s.objs[oi].units...)
	return moving.MPoint{M: mapping.FromOrdered(us)}, true
}
