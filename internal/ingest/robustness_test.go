package ingest

import (
	"errors"
	"testing"
	"time"

	"movingdb/internal/fault"
	"movingdb/internal/obs"
	"movingdb/internal/storage"
)

// faultPipeline builds a pipeline whose WAL medium is wrapped in the
// fault-injection layer, with fast retry/probe tuning for tests.
func faultPipeline(t *testing.T, cfg Config) (*Pipeline, *fault.Injector, *storage.PageStore) {
	t.Helper()
	in := fault.New(42)
	ps := storage.NewPageStore()
	cfg.LogIO = fault.NewStore(in, "wal", ps)
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.RetryMaxWait == 0 {
		cfg.RetryMaxWait = 2 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 5 * time.Millisecond
	}
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, in, ps
}

// TestRetryRidesOutTransientFault: a fault that clears within the retry
// budget is invisible to the client — the batch is acknowledged, logged
// exactly once, and the health state machine stays clean.
func TestRetryRidesOutTransientFault(t *testing.T) {
	m := obs.New(0)
	p, in, _ := faultPipeline(t, Config{Metrics: m, CheckpointPages: -1})
	defer p.Close()
	in.Set("wal.put", fault.Spec{Mode: fault.ModeError, Times: 2})
	seq, err := p.Ingest([]Observation{{ObjectID: "a", T: 1, X: 0, Y: 0}})
	if err != nil || seq != 1 {
		t.Fatalf("ingest under transient fault: seq=%d err=%v", seq, err)
	}
	if got := in.Trips("wal.put"); got != 2 {
		t.Fatalf("trips = %d, want the full transient budget of 2", got)
	}
	if h := p.Health(); h.Degraded || h.ConsecutiveFailures != 0 {
		t.Fatalf("health dirty after a ridden-out fault: %+v", h)
	}
	snap := m.Snapshot()
	if snap.Ingest.Causes["wal_retry"] < 2 {
		t.Fatalf("retry counter = %d, want >= 2 (causes: %v)", snap.Ingest.Causes["wal_retry"], snap.Ingest.Causes)
	}
	// The ack is real: the batch survives a crash.
	if st := p.Stats(); st.WALSeq != 1 {
		t.Fatalf("wal seq = %d after acked batch", st.WALSeq)
	}
}

// TestTornWriteRepairedOnFailedAppend: a torn WAL Put leaves partial
// pages behind; the append must fail AND scrub them so the next
// successful append lands where recovery will scan.
func TestTornWriteRepairedOnFailedAppend(t *testing.T) {
	p, in, ps := faultPipeline(t, Config{CheckpointPages: -1, RetryAttempts: 1, DegradedThreshold: 100})
	defer p.Close()
	in.Set("wal.put", fault.Spec{Mode: fault.ModeTorn, Times: 1})
	big := make([]Observation, 300) // multi-page record, so the tear is partial
	for i := range big {
		big[i] = Observation{ObjectID: "bulk", T: float64(i), X: 1, Y: 2}
	}
	if _, err := p.Ingest(big); !errors.Is(err, ErrDegraded) {
		t.Fatalf("torn append: want ErrDegraded, got %v", err)
	}
	if n := ps.NumPages(); n != 0 {
		t.Fatalf("torn pages not scrubbed: %d pages remain", n)
	}
	if seq, err := p.Ingest([]Observation{{ObjectID: "a", T: 1, X: 0, Y: 0}}); err != nil || seq != 1 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
	// The surviving log replays cleanly: one batch, no quarantine.
	var2, rec, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil || len(rec.batches) != 1 || var2.quarantinedPages != 0 {
		t.Fatalf("post-repair log: err=%v batches=%d quarantined=%d", err, len(rec.batches), var2.quarantinedPages)
	}
}

// TestDegradedModeAndRecovery walks the whole state machine: persistent
// fault → dead letters accumulate → threshold flips to degraded
// (fail-fast, no store hammering) → reads still serve → fault clears →
// probe write recovers → healthy again.
func TestDegradedModeAndRecovery(t *testing.T) {
	m := obs.New(0)
	p, in, _ := faultPipeline(t, Config{
		Metrics: m, CheckpointPages: -1,
		RetryAttempts: 2, DegradedThreshold: 2, DeadLetterCap: 100,
		ProbeInterval: time.Hour, // probed manually below, for determinism
	})
	defer p.Close()
	// A healthy write first, so reads have state to keep serving.
	if _, err := p.Ingest([]Observation{{ObjectID: "a", T: 1, X: 5, Y: 5}, {ObjectID: "a", T: 2, X: 6, Y: 6}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	preFault := len(p.AtInstant(1.5))

	in.Set("wal.put", fault.Spec{Mode: fault.ModeError}) // persistent
	for i := 0; i < 2; i++ {
		if _, err := p.Ingest([]Observation{{ObjectID: "b", T: float64(10 + i), X: 0, Y: 0}}); !errors.Is(err, ErrDegraded) {
			t.Fatalf("failure %d: want ErrDegraded, got %v", i, err)
		}
	}
	h := p.Health()
	if !h.Degraded || h.DeadLetterBatches != 2 || h.DeadLetterObs != 2 {
		t.Fatalf("after threshold: %+v", h)
	}
	// Degraded mode fails fast: the store is not retried per request.
	trips := in.Trips("wal.put")
	if _, err := p.Ingest([]Observation{{ObjectID: "c", T: 1, X: 0, Y: 0}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("fail-fast: want ErrDegraded, got %v", err)
	}
	if in.Trips("wal.put") != trips {
		t.Fatal("degraded mode still hammered the store")
	}
	if m.Snapshot().Ingest.Causes["degraded_fast_fail"] == 0 {
		t.Fatal("fast-fail not counted")
	}
	// Reads keep serving the last consistent state.
	if got := len(p.AtInstant(1.5)); got != preFault {
		t.Fatalf("reads changed under degradation: %d positions, want %d", got, preFault)
	}
	// Fault clears; once the probe timer expires one write is let
	// through and recovery is automatic. Expire it by hand rather than
	// sleeping through a real interval.
	in.Clear("wal.put")
	p.health.mu.Lock()
	p.health.lastProbe = time.Time{}
	p.health.mu.Unlock()
	if _, err := p.Ingest([]Observation{{ObjectID: "d", T: 1, X: 0, Y: 0}}); err != nil {
		t.Fatalf("probe write after fault cleared: %v", err)
	}
	if h := p.Health(); h.Degraded {
		t.Fatalf("still degraded after successful probe: %+v", h)
	}
	// Dead letters are inspectable and drain once.
	dead := p.DrainDeadLetters()
	if len(dead) != 2 || dead[0][0].ObjectID != "b" {
		t.Fatalf("dead letters: %v", dead)
	}
	if again := p.DrainDeadLetters(); len(again) != 0 {
		t.Fatal("drain is not destructive")
	}
}

// TestDeadLetterCapEvictsOldest pins the bounded-buffer policy: the cap
// is in observations and eviction drops the oldest batches first,
// counting what it dropped.
func TestDeadLetterCapEvictsOldest(t *testing.T) {
	d := newDeadLetter(5)
	mk := func(id string, n int) []Observation {
		b := make([]Observation, n)
		for i := range b {
			b[i] = Observation{ObjectID: id}
		}
		return b
	}
	d.add(mk("a", 2))
	d.add(mk("b", 2))
	d.add(mk("c", 2)) // 6 > 5: evicts a
	if b, o, dr := d.stats(); b != 2 || o != 4 || dr != 2 {
		t.Fatalf("after eviction: batches=%d obs=%d dropped=%d", b, o, dr)
	}
	got := d.drain()
	if len(got) != 2 || got[0][0].ObjectID != "b" || got[1][0].ObjectID != "c" {
		t.Fatalf("drained %v", got)
	}
	// A batch larger than the whole cap is dropped outright.
	d.add(mk("huge", 9))
	if b, _, dr := d.stats(); b != 0 || dr != 11 {
		t.Fatalf("oversized batch: batches=%d dropped=%d", b, dr)
	}
}

// TestCheckpointCompactRefusedIsHarmless: an injected refusal of the
// compaction step leaves a longer but fully valid log — nothing is
// lost, and restart state matches.
func TestCheckpointCompactRefusedIsHarmless(t *testing.T) {
	p, in, ps := faultPipeline(t, Config{FlushSize: 4, MaxAge: time.Hour, CheckpointPages: 2})
	in.Set("wal.compact", fault.Spec{Mode: fault.ModeError}) // every compaction refused
	for i := 0; i < 200; i++ {
		if _, err := p.Ingest([]Observation{{ObjectID: "a", T: float64(i), X: float64(i), Y: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	if st := p.Stats(); st.WALCheckpoints == 0 {
		t.Fatal("no checkpoints under refused compaction")
	}
	want := fingerprint(p)
	p.Close()
	p2, _ := reopenFromImage(t, ps, Config{CheckpointPages: 2})
	defer p2.Close()
	if got := fingerprint(p2); got != want {
		t.Fatalf("refused-compaction log diverged on restart:\n got %s\nwant %s", got, want)
	}
}
