package ingest

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

func TestWALRoundTrip(t *testing.T) {
	ps := storage.NewPageStore()
	w, rec, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil || len(rec.batches) != 0 {
		t.Fatalf("fresh wal: %v, %d batches", err, len(rec.batches))
	}
	want := [][]Observation{
		{{ObjectID: "a", T: 1, X: 2, Y: 3}},
		{{ObjectID: "a", T: 2, X: 3, Y: 3}, {ObjectID: "bb", T: 1, X: -1, Y: 0.5}},
		{{ObjectID: "long-object-identifier-0123456789", T: 3.5, X: 1e9, Y: -1e-9}},
	}
	for i, b := range want {
		seq, err := w.append(b)
		if err != nil || seq != uint64(i+1) {
			t.Fatalf("append %d: seq=%d err=%v", i, seq, err)
		}
	}
	_, rec2, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rec2.batches) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", rec2.batches, want)
	}
}

// TestWALTornTailTruncated simulates a crash mid-write: the last record
// spans two pages and loses its second page. Replay must keep every
// earlier record, discard the torn one, and leave the log appendable —
// with the new record reachable by the next scan.
func TestWALTornTailTruncated(t *testing.T) {
	ps := storage.NewPageStore()
	w, _, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	small := []Observation{{ObjectID: "a", T: 1, X: 0, Y: 0}}
	if _, err := w.append(small); err != nil {
		t.Fatal(err)
	}
	// ~300 observations ≈ 10 KiB payload: a multi-page record.
	big := make([]Observation, 300)
	for i := range big {
		big[i] = Observation{ObjectID: "bulk", T: float64(i), X: 1, Y: 2}
	}
	if _, err := w.append(big); err != nil {
		t.Fatal(err)
	}
	if ps.NumPages() < 3 {
		t.Fatalf("want a multi-page second record, have %d pages total", ps.NumPages())
	}
	ps.Truncate(2) // tear the big record

	w2, rec2, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.batches; len(got) != 1 || fmt.Sprint(got[0]) != fmt.Sprint(small) {
		t.Fatalf("after tear: %v", got)
	}
	if ps.NumPages() != 1 {
		t.Fatalf("torn pages not truncated: %d pages", ps.NumPages())
	}
	// The log keeps working after recovery.
	if seq, err := w2.append(small); err != nil || seq != 2 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
	_, r, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatalf("reopen after recovery: %v", err)
	}
	if len(r.batches) != 2 {
		t.Fatalf("post-recovery append not replayed: %d batches", len(r.batches))
	}
}

// TestWALCorruptPayload flips a payload byte in the serialised image;
// the CRC must stop replay at the damaged record.
func TestWALCorruptPayload(t *testing.T) {
	ps := storage.NewPageStore()
	w, _, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := w.append([]Observation{{ObjectID: "a", T: float64(i), X: 0, Y: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	var img bytes.Buffer
	if _, err := ps.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()
	// Page 1 holds record 2; flip a byte past its header.
	off := 12 + storage.PageSize + walHeaderSize + 2
	raw[off] ^= 0xFF
	damaged, err := storage.ReadPageStore(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, rec2, err := openWAL(pageStoreIO{damaged}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.batches) != 1 {
		t.Fatalf("want replay to stop at the damaged record: got %d batches", len(rec2.batches))
	}
	if damaged.NumPages() != 1 {
		t.Fatalf("damaged tail not truncated: %d pages", damaged.NumPages())
	}
}

// TestWALGarbageStore starts from a store holding non-WAL bytes: replay
// finds nothing, truncates, and the log becomes usable.
func TestWALGarbageStore(t *testing.T) {
	ps := storage.NewPageStore()
	ps.Put(bytes.Repeat([]byte{0xAB}, 3*storage.PageSize))
	w, rec, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil || len(rec.batches) != 0 {
		t.Fatalf("garbage store: %v, %d batches", err, len(rec.batches))
	}
	if ps.NumPages() != 0 {
		t.Fatalf("garbage not truncated: %d pages", ps.NumPages())
	}
	if _, err := w.append([]Observation{{ObjectID: "a", T: 1, X: 0, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	_, r, err := openWAL(pageStoreIO{ps}, nil)
	if err != nil {
		t.Fatalf("reopen after garbage recovery: %v", err)
	}
	if len(r.batches) != 1 {
		t.Fatalf("append after garbage recovery not replayed: %d batches", len(r.batches))
	}
}

// TestCrashRecovery is the acceptance scenario: batches are
// acknowledged (in the WAL) but the process dies before any flush
// applies them. The WAL medium's bytes at ack time — captured with
// WriteTo, the durable image — are all the restarted pipeline gets, and
// replay must restore every acknowledged unit so atinstant answers
// match a pipeline that never crashed.
func TestCrashRecovery(t *testing.T) {
	g := workload.New(5)
	stream := toObservations(g.ObservationStream("c", 6, 30, 0, 1, 4))

	log := storage.NewPageStore()
	p, err := Open(Config{Log: log, FlushSize: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(stream); lo += 23 {
		if _, err := p.Ingest(stream[lo:min(lo+23, len(stream))]); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Applied != 0 {
		t.Fatalf("test premise broken: %d observations already applied", s.Applied)
	}
	// Durable image at ack time; the crashed process never flushes.
	var disk bytes.Buffer
	if _, err := log.WriteTo(&disk); err != nil {
		t.Fatal(err)
	}
	// "Crash": drop p without Close, restart from the image.
	recovered, err := storage.ReadPageStore(bytes.NewReader(disk.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Open(Config{Log: recovered})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	// Reference: the same stream applied without a crash.
	perObject := map[string][]moving.Sample{}
	for _, o := range stream {
		perObject[o.ObjectID] = append(perObject[o.ObjectID], moving.Sample{T: temporal.Instant(o.T), P: geom.Pt(o.X, o.Y)})
	}
	for id, samples := range perObject {
		want, err := moving.MPointFromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := p2.Snapshot(id)
		if !ok {
			t.Fatalf("acknowledged object %s lost in the crash", id)
		}
		gu, wu := got.M.Units(), want.M.Units()
		if len(gu) != len(wu) {
			t.Fatalf("%s: %d recovered units, want %d", id, len(gu), len(wu))
		}
		for i := range gu {
			if gu[i] != wu[i] {
				t.Fatalf("%s unit %d: recovered %v, want %v", id, i, gu[i], wu[i])
			}
		}
		// Spot-check atinstant at unit boundaries and midpoints.
		for _, u := range wu {
			mid := (u.Iv.Start + u.Iv.End) / 2
			if got.AtInstant(mid).P != want.AtInstant(mid).P {
				t.Fatalf("%s: atinstant(%v) diverges after recovery", id, mid)
			}
		}
	}
	// The restarted pipeline accepts new writes and its WAL continues
	// the sequence.
	preSeq := p2.Stats().WALSeq
	if _, err := p2.Ingest([]Observation{{ObjectID: "c0", T: 1e6, X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	if s := p2.Stats(); s.WALSeq != preSeq+1 {
		t.Fatalf("sequence did not continue: %d -> %d", preSeq, s.WALSeq)
	}
}
