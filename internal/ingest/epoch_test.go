package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

func worldWindow() (geom.Rect, temporal.Interval) {
	return geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9},
		temporal.Closed(temporal.Instant(-1e9), temporal.Instant(1e9))
}

// TestEpochReadersNeverBlockOnFlush is the tentpole's lock-freedom
// proof: with the store mutex held exclusively — the state every flush
// apply puts the store in — queries against a published epoch still
// complete. Pre-epoch, these reads took the same mutex and would
// deadlock here.
func TestEpochReadersNeverBlockOnFlush(t *testing.T) {
	g := workload.New(5)
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Ingest(toObservations(g.ObservationStream("b", 6, 40, 0, 1, 4))); err != nil {
		t.Fatal(err)
	}
	p.Flush()

	ep := p.Epoch()
	p.store.mu.Lock() // a flush apply is "in progress" forever
	defer p.store.mu.Unlock()

	done := make(chan int, 1)
	go func() {
		rect, iv := worldWindow()
		n := len(ep.Window(rect, iv))
		n += len(ep.AtInstant(20))
		n += len(ep.Summaries())
		if _, ok := ep.Snapshot("b0"); ok {
			n++
		}
		done <- n
	}()
	select {
	case n := <-done:
		if n == 0 {
			t.Fatal("epoch queries returned nothing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("epoch reader blocked on the store mutex")
	}
}

// TestEpochSnapshotIsolation pins the COW contract: an epoch captured
// before further ingestion answers exactly as it did at capture time,
// even as the appender re-opens and extends the very unit arrays the
// epoch aliases (continuation merges mutate units[n-1] in place — the
// epoch must hold a value copy of that tail).
func TestEpochSnapshotIsolation(t *testing.T) {
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	obs := func(id string, t0 float64, n int) []Observation {
		out := make([]Observation, n)
		for i := range out {
			out[i] = Observation{ObjectID: id, T: t0 + float64(i), X: float64(i), Y: 1}
		}
		return out
	}
	if _, err := p.Ingest(obs("iso", 0, 4)); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	old := p.Epoch()
	oldSum := old.Summaries()
	oldSnap, ok := old.Snapshot("iso")
	if !ok {
		t.Fatal("iso missing from epoch")
	}
	oldUnits := oldSnap.M.Len()
	rect, iv := worldWindow()
	oldIDs := old.Window(rect, iv)
	oldAt := old.AtInstant(2)

	// Continue the same trajectory (tail re-open + merge) and add a new
	// object, across several flushes.
	for round := 0; round < 3; round++ {
		if _, err := p.Ingest(obs("iso", float64(4+round*3), 3)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Ingest(obs(fmt.Sprintf("new%d", round), 0, 3)); err != nil {
			t.Fatal(err)
		}
		p.Flush()
	}

	cur := p.Epoch()
	if cur.Seq() <= old.Seq() {
		t.Fatalf("epoch did not advance: %d -> %d", old.Seq(), cur.Seq())
	}
	if got, _ := cur.Snapshot("iso"); got.M.Len() <= oldUnits {
		t.Fatalf("current epoch lost the continuation: %d units", got.M.Len())
	}
	if len(cur.Window(rect, iv)) != 4 {
		t.Fatalf("current epoch window = %v", cur.Window(rect, iv))
	}

	// The old epoch is frozen: same summaries, same window, same
	// interpolation, same unit count.
	if got := old.Summaries(); len(got) != len(oldSum) || got[0] != oldSum[0] {
		t.Fatalf("old epoch summaries drifted: %v vs %v", got, oldSum)
	}
	if got := old.Window(rect, iv); len(got) != len(oldIDs) {
		t.Fatalf("old epoch window drifted: %v vs %v", got, oldIDs)
	}
	if got := old.AtInstant(2); len(got) != len(oldAt) || got[0] != oldAt[0] {
		t.Fatalf("old epoch atinstant drifted: %v vs %v", got, oldAt)
	}
	if got, _ := old.Snapshot("iso"); got.M.Len() != oldUnits {
		t.Fatalf("old epoch snapshot drifted: %d units, want %d", got.M.Len(), oldUnits)
	}
}

// TestEpochEquivalence cross-checks the epoch read path against the
// materialised MPoint snapshots (the paper-layer ground truth): window
// membership and atinstant positions computed from the epoch views must
// equal brute-force evaluation over Snapshot(id).
func TestEpochEquivalence(t *testing.T) {
	g := workload.New(29)
	p, err := Open(Config{FlushSize: 16, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stream := toObservations(g.ObservationStream("e", 10, 80, 0, 1, 4))
	for lo := 0; lo < len(stream); lo += 23 {
		if _, err := p.Ingest(stream[lo:min(lo+23, len(stream))]); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	ep := p.Epoch()

	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40},
		{MinX: 20, MinY: 10, MaxX: 60, MaxY: 50},
		{MinX: -10, MinY: -10, MaxX: 5, MaxY: 5},
	}
	ivs := []temporal.Interval{
		temporal.Closed(0, 30),
		temporal.Closed(25, 60),
	}
	sums := ep.Summaries()
	objs := make([]moving.MPoint, len(sums))
	for i, sum := range sums {
		m, ok := ep.Snapshot(sum.ID)
		if !ok {
			t.Fatalf("no snapshot for %s", sum.ID)
		}
		objs[i] = m
	}
	for _, rect := range rects {
		for _, iv := range ivs {
			got := ep.Window(rect, iv)
			want := map[string]bool{}
			for _, oi := range index.ScanWindow(objs, rect, iv) {
				want[sums[oi].ID] = true
			}
			if len(got) != len(want) {
				t.Fatalf("rect %v iv %v: epoch window %v, brute force %v", rect, iv, got, want)
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("rect %v iv %v: epoch window has %s, brute force does not", rect, iv, id)
				}
			}
		}
	}
	for _, ti := range []temporal.Instant{0, 17, 42, 79} {
		got := ep.AtInstant(ti)
		positions := map[string][2]float64{}
		for _, pos := range got {
			positions[pos.ID] = [2]float64{pos.X, pos.Y}
		}
		n := 0
		for i, sum := range sums {
			if v := objs[i].AtInstant(ti); v.Defined() {
				n++
				if p, ok := positions[sum.ID]; !ok || p[0] != v.P.X || p[1] != v.P.Y {
					t.Fatalf("t=%v %s: epoch %v, snapshot (%v, %v)", ti, sum.ID, p, v.P.X, v.P.Y)
				}
			}
		}
		if n != len(got) {
			t.Fatalf("t=%v: epoch returned %d positions, brute force %d", ti, len(got), n)
		}
	}
}

// TestConcurrentIngestAndEpochReads races continuous ingestion (with
// continuation merges and index merges) against continuous epoch
// queries — the race detector proves the COW publication protocol: no
// read ever touches memory a writer mutates.
func TestConcurrentIngestAndEpochReads(t *testing.T) {
	g := workload.New(41)
	p, err := Open(Config{FlushSize: 8, MaxAge: time.Hour, MergeThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stream := toObservations(g.ObservationStream("r", 12, 200, 0, 1, 4))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for lo := 0; lo < len(stream); lo += 17 {
			if _, err := p.Ingest(stream[lo:min(lo+17, len(stream))]); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			if lo%5 == 0 {
				p.Flush()
			}
		}
		p.Flush()
	}()
	rect, iv := worldWindow()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := p.Epoch()
				if ep.Seq() < lastSeq {
					t.Errorf("epoch went backward: %d after %d", ep.Seq(), lastSeq)
					return
				}
				lastSeq = ep.Seq()
				ids := ep.Window(rect, iv)
				if len(ids) != len(ep.Summaries()) {
					t.Errorf("epoch %d: window %d ids, %d objects", ep.Seq(), len(ids), len(ep.Summaries()))
					return
				}
				ep.AtInstant(50)
			}
		}()
	}
	wg.Wait()

	final := p.Epoch()
	if got := len(final.Window(rect, iv)); got != 12 {
		t.Fatalf("final window = %d objects, want 12", got)
	}
}
