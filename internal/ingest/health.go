package ingest

import (
	"sync"
	"time"
)

// health is the store-health state machine behind graceful degradation.
// Consecutive exhausted-retry failures past the threshold flip the
// pipeline to degraded: ingest fails fast with ErrDegraded (503 at the
// HTTP layer) instead of burning retry budgets per request, while reads
// keep serving the last consistent state. While degraded, one attempt
// per probe interval is let through as the health probe; the first
// success clears the state — recovery is automatic once the fault
// clears.
type health struct {
	mu         sync.Mutex
	threshold  int           // moguard: immutable
	probeEvery time.Duration // moguard: immutable

	consec    int       // moguard: guarded by mu
	degraded  bool      // moguard: guarded by mu
	cause     string    // moguard: guarded by mu
	since     time.Time // moguard: guarded by mu
	lastProbe time.Time // moguard: guarded by mu
}

func newHealth(threshold int, probeEvery time.Duration) *health {
	return &health{threshold: threshold, probeEvery: probeEvery}
}

// allowAttempt reports whether the write path should try the store at
// all. Healthy: always. Degraded: only when the probe timer has
// expired, and then the caller's attempt is the probe.
func (h *health) allowAttempt(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.degraded {
		return true
	}
	if now.Sub(h.lastProbe) >= h.probeEvery {
		h.lastProbe = now
		return true
	}
	return false
}

// onFailure records one exhausted-retry failure and flips to degraded
// at the threshold.
func (h *health) onFailure(cause string, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec++
	if !h.degraded && h.consec >= h.threshold {
		h.degraded = true
		h.cause = cause
		h.since = now
		h.lastProbe = now
	}
}

// onSuccess clears the failure streak and, if degraded, restores
// healthy operation.
func (h *health) onSuccess() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec = 0
	h.degraded = false
	h.cause = ""
}

func (h *health) state() (degraded bool, cause string, since time.Time, consec int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded, h.cause, h.since, h.consec
}

// deadLetter is the capped buffer of batches that exhausted their
// retries — poisoned or unlucky work kept for operator inspection and
// replay instead of silently vanishing. The cap is in observations;
// when adding a batch would exceed it, the oldest batches are evicted
// (and counted) first: recent failures are the ones an operator will
// look at.
type deadLetter struct {
	mu       sync.Mutex
	capObs   int             // moguard: immutable
	batches  [][]Observation // moguard: guarded by mu
	obsCount int             // moguard: guarded by mu
	dropped  int64           // moguard: guarded by mu
}

func newDeadLetter(capObs int) *deadLetter { return &deadLetter{capObs: capObs} }

func (d *deadLetter) add(batch []Observation) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(batch) > d.capObs {
		d.dropped += int64(len(batch))
		return
	}
	for d.obsCount+len(batch) > d.capObs && len(d.batches) > 0 {
		d.dropped += int64(len(d.batches[0]))
		d.obsCount -= len(d.batches[0])
		d.batches = d.batches[1:]
	}
	d.batches = append(d.batches, batch)
	d.obsCount += len(batch)
}

// drain removes and returns every buffered batch, oldest first.
func (d *deadLetter) drain() [][]Observation {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.batches
	d.batches = nil
	d.obsCount = 0
	return out
}

func (d *deadLetter) stats() (batches, observations int, dropped int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.batches), d.obsCount, d.dropped
}

// Health is the pipeline's health report, served by /v1/healthz.
type Health struct {
	Degraded            bool   `json:"degraded"`
	Cause               string `json:"cause,omitempty"`
	SinceUnixMS         int64  `json:"since_unix_ms,omitempty"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	DeadLetterBatches   int    `json:"dead_letter_batches"`
	DeadLetterObs       int    `json:"dead_letter_observations"`
	DeadLetterDropped   int64  `json:"dead_letter_dropped"`
}
