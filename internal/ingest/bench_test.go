package ingest

import (
	"fmt"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

// BenchmarkAppendThroughput measures the full write path — validation,
// WAL append, batching, unit construction, compaction, delta-index
// insert — in observations per second.
func BenchmarkAppendThroughput(b *testing.B) {
	for _, batchSize := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", batchSize), func(b *testing.B) {
			p, err := Open(Config{FlushSize: 64, MaxAge: time.Hour, MaxQueued: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			g := workload.New(1)
			const objects = 64
			stream := toObservations(g.ObservationStream("b", objects, (b.N+batchSize)/objects+2, 0, 1, 5))
			b.ResetTimer()
			n := 0
			for n < b.N {
				hi := min(n+batchSize, len(stream))
				if _, err := p.Ingest(stream[n:hi]); err != nil {
					b.Fatal(err)
				}
				n = hi
			}
			p.Flush()
			b.StopTimer()
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "obs/s")
		})
	}
}

// benchDeltaPipeline builds a store with the given fraction of its
// index entries still in the delta buffer (the rest merged into the
// base tree).
func benchDeltaPipeline(b *testing.B, total int, deltaFrac float64) *Pipeline {
	b.Helper()
	g := workload.New(3)
	const objects = 100
	steps := total / objects
	stream := toObservations(g.ObservationStream("d", objects, steps, 0, 1, 50))
	split := int(float64(len(stream)) * (1 - deltaFrac))
	p, err := Open(Config{FlushSize: 1, MaxAge: time.Hour, MaxQueued: 1 << 30, MergeThreshold: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	ingestAll := func(obsns []Observation) {
		for lo := 0; lo < len(obsns); lo += 512 {
			if _, err := p.Ingest(obsns[lo:min(lo+512, len(obsns))]); err != nil {
				b.Fatal(err)
			}
		}
		p.Flush()
	}
	ingestAll(stream[:split])
	p.store.idx.ForceMerge() // everything so far into the base tree
	ingestAll(stream[split:])
	return p
}

// benchEpoch pins one mostly-merged epoch for the read-path benchmarks.
func benchEpoch(b *testing.B) *Epoch {
	b.Helper()
	p := benchDeltaPipeline(b, 20000, 0.10)
	b.Cleanup(p.Close)
	return p.Epoch()
}

// BenchmarkEpochWindow measures the lock-free window query against a
// pinned epoch — the /v1/window read path under the allocation budget
// (alloc_budgets.json).
func BenchmarkEpochWindow(b *testing.B) {
	ep := benchEpoch(b)
	rects := make([]geom.Rect, 32)
	for i := range rects {
		x := float64((i * 131) % 900)
		y := float64((i * 57) % 900)
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
	}
	iv := temporal.Closed(0, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ep.Window(rects[i%len(rects)], iv)
	}
}

// BenchmarkEpochAtInstant measures the projection of every object onto
// one instant — the /v1/objects?t= read path under the allocation
// budget.
func BenchmarkEpochAtInstant(b *testing.B) {
	ep := benchEpoch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ep.AtInstant(temporal.Instant(float64(i%50) + 0.5))
	}
}

// BenchmarkEpochNearest measures the k-NN read path (/v1/nearby)
// end-to-end over the epoch: best-first index traversal plus sealed-view
// refinement, under the allocation budget.
func BenchmarkEpochNearest(b *testing.B) {
	ep := benchEpoch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64((i * 137) % 1000)
		y := float64((i * 89) % 1000)
		_ = ep.Nearest(x, y, 25, 10, -1)
	}
}

// BenchmarkWindowDeltaFraction measures window-query latency as the
// delta buffer grows relative to the base tree: 0% (fully merged), 10%
// and 50% of entries unmerged. The spread is the price of deferring
// rebuilds, and what the merge threshold trades against append cost.
func BenchmarkWindowDeltaFraction(b *testing.B) {
	for _, frac := range []float64{0, 0.10, 0.50} {
		b.Run(fmt.Sprintf("delta=%d%%", int(frac*100)), func(b *testing.B) {
			p := benchDeltaPipeline(b, 20000, frac)
			defer p.Close()
			base, delta, _ := p.store.IndexStats()
			b.Logf("base=%d delta=%d", base, delta)
			rects := make([]geom.Rect, 32)
			for i := range rects {
				x := float64((i * 131) % 900)
				y := float64((i * 57) % 900)
				rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
			}
			iv := temporal.Closed(0, 50)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.store.Window(rects[i%len(rects)], iv)
			}
		})
	}
}
