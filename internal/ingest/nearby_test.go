package ingest

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

// nearbyOracle computes the expected /v1/nearby answer by brute force
// over the epoch's own AtInstant evaluation: every defined object's
// exact position at t, ordered by (distance, id), radius-filtered,
// truncated to k (k <= 0 unbounded).
func nearbyOracle(e *Epoch, x, y float64, t temporal.Instant, k int, radius float64) []NearbyResult {
	var all []NearbyResult
	for _, p := range e.AtInstant(t) {
		d := math.Hypot(p.X-x, p.Y-y)
		if radius >= 0 && d > radius {
			continue
		}
		all = append(all, NearbyResult{ID: p.ID, X: p.X, Y: p.Y, Dist: d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// TestEpochNearestOracle is the acceptance property test: over 1000
// live objects, best-first k-NN through the epoch's index snapshot must
// match the brute-force oracle exactly — ids, order, and distances —
// for random query points at random instants, with and without a
// radius bound.
func TestEpochNearestOracle(t *testing.T) {
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g := workload.New(1234)
	stream := g.ObservationStream("n", 1000, 4, 0, 10, 3)
	batch := make([]Observation, len(stream))
	for i, w := range stream {
		batch[i] = Observation{ObjectID: w.ID, T: float64(w.T), X: w.P.X, Y: w.P.Y}
	}
	for lo := 0; lo < len(batch); lo += 512 {
		if _, err := p.Ingest(batch[lo:min(lo+512, len(batch))]); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	e := p.Epoch()
	if e.Objects() != 1000 {
		t.Fatalf("objects: %d", e.Objects())
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		ti := temporal.Instant(rng.Float64() * 40)
		k := 10
		radius := -1.0
		switch trial % 4 {
		case 1:
			k = 1 + rng.Intn(50)
		case 2:
			radius = 30 + rng.Float64()*150
		case 3:
			k = 0
			radius = 30 + rng.Float64()*150
		}
		got := e.Nearest(x, y, ti, k, radius)
		want := nearbyOracle(e, x, y, ti, k, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d r=%.1f t=%v): got %d results, want %d", trial, k, radius, ti, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 ||
				math.Abs(got[i].X-want[i].X) > 1e-9 || math.Abs(got[i].Y-want[i].Y) > 1e-9 {
				t.Fatalf("trial %d (k=%d r=%.1f t=%v) result %d: got %+v, want %+v",
					trial, k, radius, ti, i, got[i], want[i])
			}
		}
	}
}

// TestEpochNearestInstantOutsideDefinition: an instant before any
// observation yields no neighbors (every candidate refines to
// undefined), not a panic or stale positions.
func TestEpochNearestInstantOutsideDefinition(t *testing.T) {
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Ingest([]Observation{{ObjectID: "a", T: 10, X: 1, Y: 1}, {ObjectID: "a", T: 20, X: 2, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if got := p.Epoch().Nearest(0, 0, 5, 3, -1); len(got) != 0 {
		t.Fatalf("expected no neighbors before definition time, got %+v", got)
	}
	if got := p.Epoch().Nearest(0, 0, 15, 3, -1); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("expected a at t=15, got %+v", got)
	}
}

// TestEpochCurrentAndCurrentInside covers the registry-facing
// accessors: Current returns the latest accepted sample, CurrentInside
// the sorted ids whose latest position lies in the rectangle.
func TestEpochCurrentAndCurrentInside(t *testing.T) {
	p, err := Open(Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Ingest([]Observation{
		{ObjectID: "b", T: 0, X: 50, Y: 50},
		{ObjectID: "a", T: 0, X: 10, Y: 10},
		{ObjectID: "a", T: 5, X: 12, Y: 10},
		{ObjectID: "c", T: 0, X: 900, Y: 900},
	}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	e := p.Epoch()
	smp, ok := e.Current("a")
	if !ok || smp.P.X != 12 || smp.P.Y != 10 || float64(smp.T) != 5 {
		t.Fatalf("Current(a): %+v %v", smp, ok)
	}
	if _, ok := e.Current("zzz"); ok {
		t.Fatal("Current of unknown id reported ok")
	}
	in := e.CurrentInside(geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	if !slices.Equal(in, []string{"a", "b"}) {
		t.Fatalf("CurrentInside: %v", in)
	}
}

// TestPublishDirtySets exercises the OnPublish hook contract: called
// once per epoch advance with the id-sorted dirty set, where each
// rectangle spans the object's movement since the previous publish and
// New marks first registration; a flush that changes nothing publishes
// (and notifies) nothing.
func TestPublishDirtySets(t *testing.T) {
	type call struct {
		seq   uint64
		dirty []DirtyObject
	}
	var calls []call
	p, err := Open(Config{
		FlushSize: 1 << 20, MaxAge: time.Hour,
		OnPublish: func(ep *Epoch, dirty []DirtyObject) {
			calls = append(calls, call{ep.Seq(), dirty})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Ingest([]Observation{
		{ObjectID: "car2", T: 0, X: 200, Y: 200},
		{ObjectID: "car1", T: 0, X: 10, Y: 20},
	}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if len(calls) != 1 {
		t.Fatalf("publish calls: %d", len(calls))
	}
	d := calls[0].dirty
	if len(d) != 2 || d[0].ID != "car1" || d[1].ID != "car2" {
		t.Fatalf("dirty set not id-sorted: %+v", d)
	}
	if !d[0].New || !d[1].New {
		t.Fatalf("first registration not marked New: %+v", d)
	}
	if d[0].Rect.MinX != 10 || d[0].Rect.MaxX != 10 || d[0].Rect.MinY != 20 {
		t.Fatalf("car1 rect: %+v", d[0].Rect)
	}

	// Movement: the rect must span the old position through the new one.
	if _, err := p.Ingest([]Observation{{ObjectID: "car1", T: 10, X: 100, Y: 5}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if len(calls) != 2 {
		t.Fatalf("publish calls after move: %d", len(calls))
	}
	d = calls[1].dirty
	if len(d) != 1 || d[0].ID != "car1" || d[0].New {
		t.Fatalf("second dirty set: %+v", d)
	}
	want := geom.Rect{MinX: 10, MinY: 5, MaxX: 100, MaxY: 20}
	if d[0].Rect != want {
		t.Fatalf("movement rect: got %+v, want %+v", d[0].Rect, want)
	}

	// A flush with nothing new must not advance the epoch or notify.
	p.Flush()
	if len(calls) != 2 {
		t.Fatalf("no-op flush published: %d calls", len(calls))
	}
}
