package ingest

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"movingdb/internal/storage"
	"movingdb/internal/workload"
)

// fingerprint renders the queryable state of a pipeline: every object's
// full unit array plus the admission counters. Two pipelines with equal
// fingerprints answer every atinstant/window query identically.
func fingerprint(p *Pipeline) string {
	var buf bytes.Buffer
	for _, s := range p.Summaries() {
		m, _ := p.Snapshot(s.ID)
		fmt.Fprintf(&buf, "%s: %v\n", s.ID, m.M.Units())
	}
	applied, dropped, compacted := p.store.Counters()
	fmt.Fprintf(&buf, "counters: %d %d %d\n", applied, dropped, compacted)
	return buf.String()
}

// reopenFromImage round-trips the WAL medium through its durable image
// (WriteTo/ReadPageStore — the crash model) and opens a pipeline on it.
func reopenFromImage(t *testing.T, ps *storage.PageStore, cfg Config) (*Pipeline, *storage.PageStore) {
	t.Helper()
	var img bytes.Buffer
	if _, err := ps.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	recovered, err := storage.ReadPageStore(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Log = recovered
	cfg.LogIO = nil
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, recovered
}

// ingestStream pushes the stream through p in small batches, fataling
// on any rejection.
func ingestStream(t *testing.T, p *Pipeline, stream []Observation, chunk int) {
	t.Helper()
	for lo := 0; lo < len(stream); lo += chunk {
		if _, err := p.Ingest(stream[lo:min(lo+chunk, len(stream))]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointBoundsReplay drives enough traffic to cross the
// checkpoint threshold repeatedly and checks the contract: checkpoints
// happen, compaction keeps the log near two checkpoint intervals
// instead of growing with history, and a restart from the compacted
// image reproduces the exact pre-crash state.
func TestCheckpointBoundsReplay(t *testing.T) {
	g := workload.New(11)
	stream := toObservations(g.ObservationStream("o", 8, 60, 0, 1, 4))
	cfg := Config{FlushSize: 4, MaxAge: time.Hour, CheckpointPages: 4}
	cfg.Log = storage.NewPageStore()
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestStream(t, p, stream, 7)
	p.Flush()
	st := p.Stats()
	if st.WALCheckpoints == 0 {
		t.Fatal("no checkpoint despite crossing the threshold many times")
	}
	// The log never carries more than the previous checkpoint, one
	// interval of batches, the newest checkpoint, and one more interval
	// (plus the page-granular records straddling the boundaries).
	if limit := 4*cfg.CheckpointPages + 8; st.WALPages > limit {
		t.Fatalf("log grew to %d pages; want compaction to keep it under %d", st.WALPages, limit)
	}
	want := fingerprint(p)
	p2, _ := reopenFromImage(t, cfg.Log, Config{CheckpointPages: 4})
	defer p2.Close()
	if got := fingerprint(p2); got != want {
		t.Fatalf("restart from compacted log diverged:\n got %s\nwant %s", got, want)
	}
	p.Close()
}

// TestCheckpointStateRoundTrip pins the state codec on its own: encode
// the live store, rebuild from the payload, compare fingerprints.
func TestCheckpointStateRoundTrip(t *testing.T) {
	g := workload.New(3)
	stream := toObservations(g.ObservationStream("s", 5, 40, 0, 1, 4))
	p, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ingestStream(t, p, stream, 9)
	p.Flush()
	state := encodeState(p.store)
	if err := validateState(state); err != nil {
		t.Fatalf("freshly encoded state rejected: %v", err)
	}
	st, err := storeFromState(state, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &Pipeline{store: st, wal: &wal{io: pageStoreIO{storage.NewPageStore()}}, health: newHealth(3, time.Second), dead: newDeadLetter(16)}
	p2.bat = newBatcher(1<<20, 1<<20, time.Hour, p2.applyFlush, p2.publishEpoch)
	defer p2.Close()
	if got, want := fingerprint(p2), fingerprint(p); got != want {
		t.Fatalf("state round trip diverged:\n got %s\nwant %s", got, want)
	}
}

// TestCorruptCheckpointFallsBack rots the newest checkpoint record in
// the durable image. Recovery must quarantine it and reconstruct the
// identical state from the previous checkpoint plus suffix replay —
// never failing open, never losing an acked batch.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	g := workload.New(17)
	stream := toObservations(g.ObservationStream("f", 6, 60, 0, 1, 4))
	cfg := Config{FlushSize: 1 << 20, MaxAge: time.Hour, CheckpointPages: -1}
	cfg.Log = storage.NewPageStore()
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	third := len(stream) / 3
	ingestStream(t, p, stream[:third], 7)
	p.checkpointNow(false) // ckpt1
	ingestStream(t, p, stream[third:2*third], 7)
	p.checkpointNow(false) // ckpt2: log is now [ckpt1][batches][ckpt2]
	ingestStream(t, p, stream[2*third:], 7)
	p.Flush()
	want := fingerprint(p)
	ckptPage := p.wal.ckptPage
	if ckptPage <= 0 {
		t.Fatalf("test premise broken: newest checkpoint at page %d, want a retained predecessor before it", ckptPage)
	}

	var img bytes.Buffer
	if _, err := cfg.Log.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()
	// Flip a payload byte inside the newest checkpoint record. The image
	// prefixes pages with a 12-byte header (see TestWALCorruptPayload).
	raw[12+ckptPage*storage.PageSize+walHeaderSize+3] ^= 0xFF
	damaged, err := storage.ReadPageStore(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Open(Config{Log: damaged, CheckpointPages: -1})
	if err != nil {
		t.Fatalf("recovery failed open on a corrupt checkpoint: %v", err)
	}
	defer p2.Close()
	if got := fingerprint(p2); got != want {
		t.Fatalf("fallback recovery diverged:\n got %s\nwant %s", got, want)
	}
	if st := p2.Stats(); st.WALQuarantined == 0 {
		t.Fatal("corrupt checkpoint was not quarantined")
	}
}

// TestDirtyRecoveryRecheckpoints: when recovery quarantined damage and
// checkpointing is enabled, Open writes a fresh checkpoint immediately
// so the next open no longer re-reads the damaged region.
func TestDirtyRecoveryRecheckpoints(t *testing.T) {
	g := workload.New(23)
	stream := toObservations(g.ObservationStream("d", 4, 40, 0, 1, 4))
	cfg := Config{FlushSize: 1 << 20, MaxAge: time.Hour, CheckpointPages: -1}
	cfg.Log = storage.NewPageStore()
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	ingestStream(t, p, stream[:half], 7)
	p.checkpointNow(false)
	ingestStream(t, p, stream[half:], 7)
	p.Flush()
	want := fingerprint(p)
	ckptPage := p.wal.ckptPage

	var img bytes.Buffer
	if _, err := cfg.Log.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()
	raw[12+ckptPage*storage.PageSize+walHeaderSize+1] ^= 0xFF
	damaged, err := storage.ReadPageStore(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Open with checkpointing on: the dirty scan triggers an immediate
	// re-checkpoint, compacting the quarantined hole away.
	p2, err := Open(Config{Log: damaged, CheckpointPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(p2); got != want {
		t.Fatalf("dirty recovery diverged:\n got %s\nwant %s", got, want)
	}
	if st := p2.Stats(); st.WALCheckpoints == 0 {
		t.Fatal("dirty recovery did not re-checkpoint")
	}
	p2.Close()
	// A third open of the re-checkpointed medium is clean: no further
	// quarantine, same state.
	p3, _ := reopenFromImage(t, damaged, Config{CheckpointPages: 4})
	defer p3.Close()
	if st := p3.Stats(); st.WALQuarantined != 0 {
		t.Fatalf("re-checkpointed log still carries damage: %d quarantined pages", st.WALQuarantined)
	}
	if got := fingerprint(p3); got != want {
		t.Fatalf("third open diverged:\n got %s\nwant %s", got, want)
	}
}
