package ingest

import (
	"math"
	"slices"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
)

// NearbyResult is one /v1/nearby hit: an object's exact position at the
// queried instant and its Euclidean distance from the query point.
type NearbyResult struct {
	ID   string  `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Dist float64 `json:"dist"`
}

// Nearest returns the objects closest to (x, y) at instant t, nearest
// first, computed lock-free against the epoch's pinned index snapshot
// and sealed unit views (the getNearbyObjects operation of a moving
// objects database, answered best-first instead of by scan). k <= 0
// means no count bound, radius < 0 means no distance bound; k-NN and
// range queries are the two degenerate corners of the same traversal.
// Ties in distance break by registration order, so the result is a pure
// function of (query, epoch) — exactly what the result cache needs.
//
// moguard: hotpath
func (e *Epoch) Nearest(x, y float64, t temporal.Instant, k int, radius float64) []NearbyResult {
	refine := func(id int64) (int64, float64, bool) {
		oi := int(id >> 32)
		key := int64(oi)
		if oi >= len(e.objs) {
			// Entry for an object registered after this epoch sealed.
			return key, 0, false
		}
		u, ok := e.objs[oi].unitAt(t)
		if !ok {
			return key, 0, false
		}
		p := u.Eval(t)
		return key, math.Hypot(p.X-x, p.Y-y), true
	}
	nbs, _ := e.idx.Nearest(x, y, float64(t), k, radius, refine)
	out := make([]NearbyResult, 0, len(nbs))
	for _, nb := range nbs {
		// Re-deriving the position costs one binary search per hit and
		// keeps the traversal allocation-free (the per-query position map
		// this replaces allocated per candidate, not per hit).
		u, _ := e.objs[int(nb.Key)].unitAt(t)
		p := u.Eval(t)
		out = append(out, NearbyResult{ID: e.objs[int(nb.Key)].id, X: p.X, Y: p.Y, Dist: nb.Dist})
	}
	return out
}

// CurrentInside returns the ids of objects whose latest observed
// position lies in rect, ascending — the live registry seeds an
// appears-subscription's member set with it.
func (e *Epoch) CurrentInside(rect geom.Rect) []string {
	var out []string
	for _, v := range e.objs {
		if v.seen && rect.ContainsPoint(v.last.P) {
			out = append(out, v.id)
		}
	}
	slices.Sort(out)
	return out
}

// Current returns the object's latest observed sample as of the epoch —
// the position standing-query predicates evaluate against.
func (e *Epoch) Current(id string) (moving.Sample, bool) {
	oi, ok := e.ids[id]
	if !ok || oi >= len(e.objs) {
		return moving.Sample{}, false
	}
	v := e.objs[oi]
	if !v.seen {
		return moving.Sample{}, false
	}
	return v.last, true
}
