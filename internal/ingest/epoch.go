package ingest

import (
	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// Epoch is one published, immutable snapshot of the live store: the
// sealed per-object unit arrays plus the matching index view, stamped
// with a sequence number. Queries pin an epoch once and read it for
// their whole lifetime with no locks at all — flushes build the *next*
// epoch behind the scenes and publish it atomically, so a reader's view
// never moves and a writer never waits for readers (nor readers for
// writers). Because every query operator is deterministic, any result
// computed against an epoch is a pure function of (query, epoch
// sequence) — which is exactly what makes the sequence a sound
// result-cache key: a cached value can never go stale within its epoch,
// and epoch advance invalidates by key mismatch, for free.
//
// Retirement is garbage collection: an old epoch stays alive exactly as
// long as some in-flight query or cache reference pins it, then the
// shared prefixes (which the next epoch re-uses) survive and only the
// per-epoch view headers are collected.
type Epoch struct {
	seq  uint64
	ids  map[string]int // frozen: never mutated after publish
	objs []*objView     // frozen: slots never reassigned after publish
	idx  index.Snapshot
}

// objView is one object's sealed state inside an epoch. The unit array
// is captured copy-on-write: prefix aliases the live array's elements
// [0, n-1), which the appender never touches again (it only rewrites
// the final unit in place — re-opening the closed tail, merging a
// continuation — and appends past it), and tail is a value copy of
// element n-1, the only slot that can still change. Readers therefore
// must go through unit(i), never through a raw slice.
type objView struct {
	id     string
	prefix []units.UPoint // immutable alias: live units[0 : n-1]
	tail   units.UPoint   // copy of live units[n-1] at capture
	n      int            // unit count at capture (0 = no units yet)
	seen   bool
	last   moving.Sample
}

// viewOf seals an object's current state. Caller holds the store lock.
func viewOf(o *object) *objView {
	v := &objView{id: o.id, n: len(o.units), seen: o.seen, last: o.last}
	if v.n > 0 {
		v.prefix = o.units[: v.n-1 : v.n-1]
		v.tail = o.units[v.n-1]
	}
	return v
}

// unit returns the i-th unit of the sealed array.
func (v *objView) unit(i int) units.UPoint {
	if i == v.n-1 {
		return v.tail
	}
	return v.prefix[i]
}

// unitAt finds the unit whose interval contains t by binary search over
// the temporally ordered, pairwise-disjoint sealed array (the same
// search as mapping.FindUnit, routed through unit() so the live tail is
// never read through the alias).
func (v *objView) unitAt(t temporal.Instant) (units.UPoint, bool) {
	lo, hi := 0, v.n
	for lo < hi {
		mid := (lo + hi) / 2
		u := v.unit(mid)
		switch {
		case u.Iv.Contains(t):
			return u, true
		case t < u.Iv.Start || (t == u.Iv.Start && !u.Iv.LC):
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return units.UPoint{}, false
}

// Seq returns the epoch's sequence number — the value served in the
// X-MO-Epoch header and embedded in cache keys and ETags.
func (e *Epoch) Seq() uint64 { return e.seq }

// Objects returns the number of tracked objects in the epoch.
func (e *Epoch) Objects() int { return len(e.objs) }

// IndexEntries returns the number of index entries visible to the
// epoch's pinned index view.
func (e *Epoch) IndexEntries() int { return e.idx.Len() }

// Window reports the ids of objects inside rect at some instant of iv,
// in ascending registration order — the same answer Store.Window gives
// for the epoch's state, computed without taking any lock: candidates
// come from the pinned index snapshot and refinement runs against the
// sealed unit views. Dedup and ordering use a dense bitset over object
// slots (slot index IS registration order), so the hot read path does
// one bounded allocation and no sort.
//
// moguard: hotpath
func (e *Epoch) Window(rect geom.Rect, iv temporal.Interval) []string {
	q := geom.Cube{Rect: rect, MinT: float64(iv.Start), MaxT: float64(iv.End)}
	ids, _ := e.idx.Search(q, nil)
	seen := make([]bool, len(e.objs))
	hits := 0
	for _, id := range ids {
		oi, ui := int(id>>32), int(id&0xffffffff)
		if oi >= len(e.objs) || seen[oi] {
			continue
		}
		v := e.objs[oi]
		if ui >= v.n {
			// The entry references a unit appended after this epoch was
			// sealed (a newer epoch's index snapshot would see it); it
			// cannot contribute to this epoch's answer.
			continue
		}
		// Refining against the sealed unit is safe for the same reason as
		// the live path: units only grow, so the unit at capture contains
		// every extent its earlier index entries covered.
		if index.UPointInWindow(v.unit(ui), rect, iv) {
			seen[oi] = true
			hits++
		}
	}
	out := make([]string, 0, hits)
	for oi, hit := range seen {
		if hit {
			out = append(out, e.objs[oi].id)
		}
	}
	return out
}

// AtInstant returns the position of every object defined at t, in
// registration order, lock-free against the sealed views.
//
// moguard: hotpath
func (e *Epoch) AtInstant(t temporal.Instant) []Position {
	out := make([]Position, 0, len(e.objs))
	for _, v := range e.objs {
		if u, ok := v.unitAt(t); ok {
			p := u.Eval(t)
			out = append(out, Position{ID: v.id, X: p.X, Y: p.Y})
		}
	}
	return out
}

// Summaries lists the tracked objects in registration order, exactly as
// Store.Summaries does for the epoch's state.
//
// moguard: hotpath
func (e *Epoch) Summaries() []ObjectSummary {
	out := make([]ObjectSummary, 0, len(e.objs))
	for _, v := range e.objs {
		sum := ObjectSummary{ID: v.id, Units: v.n}
		if v.n > 0 {
			sum.From = float64(v.unit(0).Iv.Start)
			sum.To = float64(v.tail.Iv.End)
		} else if v.seen {
			sum.From, sum.To = float64(v.last.T), float64(v.last.T)
		}
		out = append(out, sum)
	}
	return out
}

// Snapshot materialises a detached copy of one object's mapping as of
// the epoch.
func (e *Epoch) Snapshot(id string) (moving.MPoint, bool) {
	oi, ok := e.ids[id]
	if !ok {
		return moving.MPoint{}, false
	}
	v := e.objs[oi]
	us := make([]units.UPoint, 0, v.n)
	us = append(us, v.prefix...)
	if v.n > 0 {
		us = append(us, v.tail)
	}
	return moving.MPoint{M: mapping.FromOrdered(us)}, true
}

