package ingest

import (
	"sync"
	"time"
)

// batcher buffers admitted observations per object and hands each
// object's run to the apply sink when the buffer reaches flushSize or
// its oldest observation has waited maxAge. The queue is bounded by
// maxQueued observations across all objects; admission past the bound
// fails with ErrBackpressure before anything is logged or buffered.
//
// Admission runs the WAL append under the batcher lock, so the WAL's
// sequence order is exactly the order observations enter the buffers —
// replay therefore reproduces the same per-object observation order the
// live appender saw, and with it the same drop/merge decisions.
type batcher struct {
	mu        sync.Mutex
	bufs      map[string]*objBuf  // moguard: guarded by mu
	order     []string            // moguard: guarded by mu // live buffers, oldest-admission first
	queued    int                 // moguard: guarded by mu
	closed    bool                // moguard: guarded by mu
	flushSize int                 // moguard: immutable
	maxQueued int                 // moguard: immutable
	maxAge    time.Duration       // moguard: immutable
	apply     func([]Observation) // moguard: immutable
	// afterFlush runs once per batcher operation that flushed at least
	// one buffer, still under the lock — the epoch-publication hook, so
	// one admission or ticker pass that drains many objects publishes
	// one epoch, not one per object. Takes the store lock inside (lock
	// order batcher → store). Nil-safe.
	afterFlush func() // moguard: immutable

	done chan struct{} // moguard: immutable
	wg   sync.WaitGroup
}

type objBuf struct {
	obs   []Observation
	first time.Time // admission time of the oldest buffered observation
}

func newBatcher(flushSize, maxQueued int, maxAge time.Duration, apply func([]Observation), afterFlush func()) *batcher {
	b := &batcher{
		bufs:       make(map[string]*objBuf),
		flushSize:  flushSize,
		maxQueued:  maxQueued,
		maxAge:     maxAge,
		apply:      apply,
		afterFlush: afterFlush,
		done:       make(chan struct{}),
	}
	interval := max(maxAge/4, time.Millisecond)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-b.done:
				return
			case <-tick.C:
				b.flushAged()
			}
		}
	}()
	return b
}

// enqueue admits one batch: bound check, WAL append (log), then
// buffering, all under the lock so acknowledged order equals log order.
// Objects whose buffers reach flushSize are flushed before returning,
// still under the lock — the size trigger is synchronous, only the age
// trigger rides the ticker.
func (b *batcher) enqueue(batch []Observation, log func([]Observation) (uint64, error)) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	if b.queued+len(batch) > b.maxQueued {
		return 0, ErrBackpressure
	}
	seq, err := log(batch)
	if err != nil {
		return 0, err
	}
	now := time.Now()
	for _, o := range batch {
		buf := b.bufs[o.ObjectID]
		if buf == nil {
			buf = &objBuf{first: now}
			b.bufs[o.ObjectID] = buf
			b.order = append(b.order, o.ObjectID)
		}
		buf.obs = append(buf.obs, o)
		b.queued++
	}
	flushed := 0
	for _, o := range batch {
		if buf := b.bufs[o.ObjectID]; buf != nil && len(buf.obs) >= b.flushSize {
			b.flushLocked(o.ObjectID, buf)
			flushed++
		}
	}
	b.publishLocked(flushed)
	return seq, nil
}

// publishLocked fires the epoch-publication hook when n buffers were
// flushed. Caller holds b.mu.
func (b *batcher) publishLocked(n int) {
	if n > 0 && b.afterFlush != nil {
		b.afterFlush()
	}
}

// flushLocked hands one object's buffered run to the apply sink and
// releases its queue share. Caller holds b.mu.
func (b *batcher) flushLocked(id string, buf *objBuf) {
	delete(b.bufs, id)
	b.queued -= len(buf.obs)
	b.apply(buf.obs)
}

// flushAged flushes every buffer whose oldest observation has waited at
// least maxAge.
func (b *batcher) flushAged() {
	cutoff := time.Now().Add(-b.maxAge)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.publishLocked(b.flushOrderedLocked(func(buf *objBuf) bool { return !buf.first.After(cutoff) }))
}

// flushAll synchronously drains every buffer (also used for the final
// drain after close).
func (b *batcher) flushAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.publishLocked(b.flushOrderedLocked(func(*objBuf) bool { return true }))
}

// flushOrderedLocked flushes the buffers selected by keep-predicate
// pred in admission order, compacting the order list, and returns how
// many buffers it flushed. Caller holds b.mu.
func (b *batcher) flushOrderedLocked(pred func(*objBuf) bool) int {
	remaining := b.order[:0]
	seen := make(map[string]bool, len(b.order))
	flushed := 0
	for _, id := range b.order {
		if seen[id] {
			continue // duplicate entry from a size-flush/re-admit cycle
		}
		seen[id] = true
		buf := b.bufs[id]
		if buf == nil {
			continue // already flushed by the size trigger
		}
		if pred(buf) {
			b.flushLocked(id, buf)
			flushed++
		} else {
			remaining = append(remaining, id)
		}
	}
	b.order = remaining
	return flushed
}

// quiesce drains every buffer and then runs f, all under the lock, so
// no admission (and therefore no WAL append) can interleave: f observes
// a store that reflects exactly the batches logged so far. Checkpoints
// run under it — the snapshot's state and the WAL sequence it is
// stamped with cannot drift apart. f must not re-enter the batcher.
func (b *batcher) quiesce(f func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.publishLocked(b.flushOrderedLocked(func(*objBuf) bool { return true }))
	f()
}

// close stops the ticker goroutine and drains the remaining buffers.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	b.wg.Wait()
	b.flushAll()
}

// depth returns the number of buffered observations.
func (b *batcher) depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}
