// Package workload generates deterministic synthetic moving objects for
// the examples and the benchmark harness: piecewise-linear trajectories
// (the shape of GPS-sampled movement), flights between airports, and
// moving regions (translating and breathing storms). The paper has no
// public dataset; these generators stand in for the flight and weather
// scenarios its running examples use, with sizes parameterised for
// complexity sweeps.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// Gen wraps a deterministic random source.
type Gen struct {
	rng *rand.Rand
}

// New returns a generator with the given seed; equal seeds yield equal
// workloads.
func New(seed int64) *Gen { return &Gen{rng: rand.New(rand.NewSource(seed))} }

// World is the square [0, Size]² the workloads live in.
const WorldSize = 1000.0

// RandomTrajectory returns a moving point with n units: a random walk of
// piecewise-linear legs starting at a random position, each leg lasting
// stepDur and moving with a random velocity up to maxSpeed. The
// definition time starts at t0.
func (g *Gen) RandomTrajectory(t0 temporal.Instant, n int, stepDur, maxSpeed float64) moving.MPoint {
	if n < 1 {
		panic("workload: trajectory needs at least one unit")
	}
	samples := make([]moving.Sample, 0, n+1)
	pos := geom.Pt(g.rng.Float64()*WorldSize, g.rng.Float64()*WorldSize)
	t := t0
	samples = append(samples, moving.Sample{T: t, P: pos})
	for i := 0; i < n; i++ {
		ang := g.rng.Float64() * 2 * math.Pi
		speed := g.rng.Float64() * maxSpeed
		next := pos.Add(geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(speed * stepDur))
		// Reflect at the world boundary to stay in range.
		next.X = reflect(next.X)
		next.Y = reflect(next.Y)
		t += temporal.Instant(stepDur)
		// Avoid exactly repeated positions so every unit moves.
		if next == pos {
			next.X = reflect(next.X + 1e-3)
		}
		samples = append(samples, moving.Sample{T: t, P: next})
		pos = next
	}
	p, err := moving.MPointFromSamples(samples)
	if err != nil {
		panic(fmt.Sprintf("workload: trajectory generation: %v", err))
	}
	return p
}

func reflect(x float64) float64 {
	for x < 0 || x > WorldSize {
		if x < 0 {
			x = -x
		}
		if x > WorldSize {
			x = 2*WorldSize - x
		}
	}
	return x
}

// Observation is one timestamped position report — the wire unit of the
// live ingestion path. It mirrors the ingest package's observation
// shape without importing it, so the generator stays usable from that
// package's own tests.
type Observation struct {
	ID string
	T  temporal.Instant
	P  geom.Point
}

// ObservationStream simulates n GPS trackers reporting for the given
// number of steps: observations arrive round-robin interleaved across
// objects in global time order, one per object per step, stepDur apart.
// Motion mixes fresh random headings with held velocities and rests so
// the online compaction path (merging continued motion into the
// previous unit) is exercised, not just the general append. Object ids
// are prefix0, prefix1, ... Equal seeds yield equal streams.
func (g *Gen) ObservationStream(prefix string, n, steps int, t0 temporal.Instant, stepDur, maxSpeed float64) []Observation {
	type tracker struct {
		pos geom.Point
		vel geom.Point
	}
	trackers := make([]tracker, n)
	out := make([]Observation, 0, n*(steps+1))
	for i := range trackers {
		trackers[i].pos = geom.Pt(g.rng.Float64()*WorldSize, g.rng.Float64()*WorldSize)
		out = append(out, Observation{ID: fmt.Sprintf("%s%d", prefix, i), T: t0, P: trackers[i].pos})
	}
	for s := 1; s <= steps; s++ {
		t := t0 + temporal.Instant(float64(s)*stepDur)
		for i := range trackers {
			tr := &trackers[i]
			switch r := g.rng.Float64(); {
			case r < 0.2:
				tr.vel = geom.Pt(0, 0) // rest: consecutive static units merge
			case r < 0.6 && tr.vel != geom.Pt(0, 0):
				// Hold velocity: continued linear motion compacts into
				// the previous unit.
			default:
				ang := g.rng.Float64() * 2 * math.Pi
				speed := g.rng.Float64() * maxSpeed
				tr.vel = geom.Pt(math.Cos(ang), math.Sin(ang)).Scale(speed)
			}
			next := tr.pos.Add(tr.vel.Scale(stepDur))
			rx, ry := reflect(next.X), reflect(next.Y)
			if rx != next.X || ry != next.Y {
				// A boundary reflection bends the path; the held
				// velocity no longer describes it.
				next = geom.Pt(rx, ry)
				tr.vel = geom.Pt(0, 0)
			}
			tr.pos = next
			out = append(out, Observation{ID: fmt.Sprintf("%s%d", prefix, i), T: t, P: next})
		}
	}
	return out
}

// Airport is a named location for flight generation.
type Airport struct {
	Code string
	Pos  geom.Point
}

// DefaultAirports returns a fixed set of airports spread over the world
// square.
func DefaultAirports() []Airport {
	return []Airport{
		{"FRA", geom.Pt(500, 520)},
		{"JFK", geom.Pt(80, 480)},
		{"NRT", geom.Pt(930, 540)},
		{"GRU", geom.Pt(300, 60)},
		{"SYD", geom.Pt(880, 90)},
		{"CDG", geom.Pt(470, 560)},
		{"DXB", geom.Pt(650, 400)},
		{"SFO", geom.Pt(40, 420)},
	}
}

// Flight is one row of the planes relation of Section 2.
type Flight struct {
	Airline string
	ID      string
	Flight  moving.MPoint
}

// Airlines used by the flight generator; the first matches the paper's
// query example.
var Airlines = []string{"Lufthansa", "AirFrance", "United", "Qantas", "ANA"}

// Flights generates n flights: each picks two distinct airports and
// flies a slightly dog-legged route (a few units) between them, with
// departure times spread over [0, spread].
func (g *Gen) Flights(n int, spread float64) []Flight {
	airports := DefaultAirports()
	out := make([]Flight, 0, n)
	for i := 0; i < n; i++ {
		a := airports[g.rng.Intn(len(airports))]
		b := airports[g.rng.Intn(len(airports))]
		for b.Code == a.Code {
			b = airports[g.rng.Intn(len(airports))]
		}
		dep := temporal.Instant(g.rng.Float64() * spread)
		dist := a.Pos.Dist(b.Pos)
		speed := 5 + g.rng.Float64()*3 // world units per time unit
		dur := dist / speed
		// Dog-leg: 2–4 legs with mild lateral deviation.
		legs := 2 + g.rng.Intn(3)
		samples := []moving.Sample{{T: dep, P: a.Pos}}
		for l := 1; l < legs; l++ {
			frac := float64(l) / float64(legs)
			base := a.Pos.Add(b.Pos.Sub(a.Pos).Scale(frac))
			dir := b.Pos.Sub(a.Pos)
			norm := geom.Pt(-dir.Y, dir.X).Scale(1 / dir.Norm())
			dev := (g.rng.Float64() - 0.5) * 0.1 * dist
			samples = append(samples, moving.Sample{
				T: dep + temporal.Instant(frac*dur),
				P: base.Add(norm.Scale(dev)),
			})
		}
		samples = append(samples, moving.Sample{T: dep + temporal.Instant(dur), P: b.Pos})
		mp, err := moving.MPointFromSamples(samples)
		if err != nil {
			panic(fmt.Sprintf("workload: flight generation: %v", err))
		}
		out = append(out, Flight{
			Airline: Airlines[g.rng.Intn(len(Airlines))],
			ID:      fmt.Sprintf("%s%03d", Airlines[i%len(Airlines)][:2], i),
			Flight:  mp,
		})
	}
	return out
}

// StarRing returns a simple star-shaped polygon ring with nVerts
// vertices around center: angles are sorted (so edges never cross) and
// radii jittered around the given mean.
func (g *Gen) StarRing(center geom.Point, radius float64, nVerts int) []geom.Point {
	angles := make([]float64, nVerts)
	for i := range angles {
		angles[i] = g.rng.Float64() * 2 * math.Pi
	}
	// Sort ascending for a convex, simple ring.
	for i := 1; i < len(angles); i++ {
		for j := i; j > 0 && angles[j] < angles[j-1]; j-- {
			angles[j], angles[j-1] = angles[j-1], angles[j]
		}
	}
	// Enforce distinct angles.
	for i := 1; i < len(angles); i++ {
		if angles[i]-angles[i-1] < 1e-3 {
			angles[i] = angles[i-1] + 1e-3
		}
	}
	ring := make([]geom.Point, 0, nVerts)
	for _, a := range angles {
		r := radius * (0.8 + 0.4*g.rng.Float64())
		ring = append(ring, center.Add(geom.Pt(math.Cos(a), math.Sin(a)).Scale(r)))
	}
	return ring
}

// Storm returns a moving region with n units: a convex polygon with
// nVerts vertices drifting with a random velocity and slowly breathing
// (scaling) around its center, one unit per time step. Construction is
// trusted (the generator maintains validity by keeping motion mild).
func (g *Gen) Storm(t0 temporal.Instant, n, nVerts int, stepDur float64) moving.MRegion {
	center := geom.Pt(WorldSize/2+(g.rng.Float64()-0.5)*300, WorldSize/2+(g.rng.Float64()-0.5)*300)
	radius := 60 + g.rng.Float64()*60
	ring := g.StarRing(center, radius, nVerts)
	vel := geom.Pt((g.rng.Float64()-0.5)*4, (g.rng.Float64()-0.5)*4)

	us := make([]units.URegion, 0, n)
	t := t0
	cur := ring
	curCenter := center
	for i := 0; i < n; i++ {
		scale := 1 + (g.rng.Float64()-0.5)*0.1
		nextCenter := curCenter.Add(vel.Scale(stepDur))
		next := make([]geom.Point, len(cur))
		for k, p := range cur {
			next[k] = nextCenter.Add(p.Sub(curCenter).Scale(scale))
		}
		mc := make(units.MCycle, len(cur))
		for k := range cur {
			m, err := units.MPointThrough(t, cur[k], t+temporal.Instant(stepDur), next[k])
			if err != nil {
				panic(fmt.Sprintf("workload: storm generation: %v", err))
			}
			mc[k] = m
		}
		iv := temporal.RightHalfOpen(t, t+temporal.Instant(stepDur))
		if i+1 == n {
			iv = temporal.Closed(t, t+temporal.Instant(stepDur))
		}
		us = append(us, units.URegionUnchecked(iv, []units.MFace{{Outer: mc}}))
		cur, curCenter = next, nextCenter
		t += temporal.Instant(stepDur)
	}
	mr, err := moving.NewMRegion(us...)
	if err != nil {
		panic(fmt.Sprintf("workload: storm units: %v", err))
	}
	return mr
}

// StormWithSegments returns a single-unit moving region whose boundary
// has exactly segs moving segments, translating rigidly — used by the
// complexity sweeps that scale the region size S.
func (g *Gen) StormWithSegments(iv temporal.Interval, segs int) moving.MRegion {
	ring := g.StarRing(geom.Pt(WorldSize/2, WorldSize/2), 200, segs)
	vel := geom.Pt((g.rng.Float64()-0.5)*2, (g.rng.Float64()-0.5)*2)
	mc := make(units.MCycle, len(ring))
	for k, p := range ring {
		mc[k] = units.MPoint{X0: p.X - vel.X*float64(iv.Start), X1: vel.X, Y0: p.Y - vel.Y*float64(iv.Start), Y1: vel.Y}
	}
	mr, err := moving.NewMRegion(units.URegionUnchecked(iv, []units.MFace{{Outer: mc}}))
	if err != nil {
		panic(fmt.Sprintf("workload: storm segments: %v", err))
	}
	return mr
}

// StormWithEye returns a moving region with a hole (the eye) drifting
// and breathing with the storm — exercising moving holes end to end.
func (g *Gen) StormWithEye(t0 temporal.Instant, n, nVerts int, stepDur float64) moving.MRegion {
	center := geom.Pt(WorldSize/2+(g.rng.Float64()-0.5)*300, WorldSize/2+(g.rng.Float64()-0.5)*300)
	radius := 80 + g.rng.Float64()*60
	outer := g.StarRing(center, radius, nVerts)
	eye := g.StarRing(center, radius*0.25, max(3, nVerts/2))
	vel := geom.Pt((g.rng.Float64()-0.5)*4, (g.rng.Float64()-0.5)*4)

	us := make([]units.URegion, 0, n)
	t := t0
	curO, curE, curC := outer, eye, center
	for i := 0; i < n; i++ {
		scale := 1 + (g.rng.Float64()-0.5)*0.08
		nextC := curC.Add(vel.Scale(stepDur))
		move := func(ring []geom.Point) []geom.Point {
			out := make([]geom.Point, len(ring))
			for k, p := range ring {
				out[k] = nextC.Add(p.Sub(curC).Scale(scale))
			}
			return out
		}
		nextO, nextE := move(curO), move(curE)
		mc := func(from, to []geom.Point) units.MCycle {
			out := make(units.MCycle, len(from))
			for k := range from {
				m, err := units.MPointThrough(t, from[k], t+temporal.Instant(stepDur), to[k])
				if err != nil {
					panic(fmt.Sprintf("workload: storm eye: %v", err))
				}
				out[k] = m
			}
			return out
		}
		iv := temporal.RightHalfOpen(t, t+temporal.Instant(stepDur))
		if i+1 == n {
			iv = temporal.Closed(t, t+temporal.Instant(stepDur))
		}
		us = append(us, units.URegionUnchecked(iv, []units.MFace{{
			Outer: mc(curO, nextO),
			Holes: []units.MCycle{mc(curE, nextE)},
		}}))
		curO, curE, curC = nextO, nextE, nextC
		t += temporal.Instant(stepDur)
	}
	mr, err := moving.NewMRegion(us...)
	if err != nil {
		panic(fmt.Sprintf("workload: storm eye units: %v", err))
	}
	return mr
}
