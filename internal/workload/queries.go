package workload

import "movingdb/internal/geom"

// Generators for the epoch-read query mix (window and atinstant specs),
// used by the fleet simulator to issue a reproducible stream of read
// requests alongside its ingest load. Like the live-surface generators
// they emit plain spec structs, keeping workload importable from
// in-package tests everywhere.

// WindowQuery is one /v1/window request: a spatial rectangle and a
// closed time interval.
type WindowQuery struct {
	Rect   geom.Rect
	T1, T2 float64
}

// rectAround returns a rectangle with sides between the given fractions
// of the world, clamped inside it.
func (g *Gen) rectAround(minFrac, maxFrac float64) geom.Rect {
	w := (minFrac + (maxFrac-minFrac)*g.rng.Float64()) * WorldSize
	h := (minFrac + (maxFrac-minFrac)*g.rng.Float64()) * WorldSize
	x := g.rng.Float64() * (WorldSize - w)
	y := g.rng.Float64() * (WorldSize - h)
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// WindowQueries returns n window requests with rectangles between 5%
// and 30% of the world and time intervals covering a random sub-range
// of [t0, t0+tSpread]. Equal seeds yield equal mixes.
func (g *Gen) WindowQueries(n int, t0, tSpread float64) []WindowQuery {
	out := make([]WindowQuery, 0, n)
	for i := 0; i < n; i++ {
		a := t0 + g.rng.Float64()*tSpread
		b := t0 + g.rng.Float64()*tSpread
		if b < a {
			a, b = b, a
		}
		out = append(out, WindowQuery{Rect: g.rectAround(0.05, 0.30), T1: a, T2: b})
	}
	return out
}

// Instants returns n query instants in [t0, t0+tSpread], for the
// atinstant route. Equal seeds yield equal mixes.
func (g *Gen) Instants(n int, t0, tSpread float64) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t0+g.rng.Float64()*tSpread)
	}
	return out
}
