package workload

import (
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

func TestDeterminism(t *testing.T) {
	a := New(42).RandomTrajectory(0, 50, 10, 2)
	b := New(42).RandomTrajectory(0, 50, 10, 2)
	if a.M.Len() != b.M.Len() {
		t.Fatal("unit counts differ for equal seeds")
	}
	for i := range a.M.Units() {
		if a.M.Units()[i] != b.M.Units()[i] {
			t.Fatalf("unit %d differs for equal seeds", i)
		}
	}
	c := New(43).RandomTrajectory(0, 50, 10, 2)
	if a.AtInstant(100) == c.AtInstant(100) {
		t.Error("different seeds produced identical positions (suspicious)")
	}
}

func TestRandomTrajectoryShape(t *testing.T) {
	p := New(1).RandomTrajectory(5, 100, 10, 2)
	if p.M.Len() != 100 {
		t.Fatalf("units = %d", p.M.Len())
	}
	if err := p.M.Validate(); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	dt := p.DefTime()
	lo, _ := dt.MinInstant()
	hi, _ := dt.MaxInstant()
	if lo != 5 || hi != 5+100*10 {
		t.Errorf("deftime = %v", dt)
	}
	// Stays inside the world (with reflection).
	for k := 0; k <= 200; k++ {
		tt := temporal.Instant(5 + float64(k)*5)
		pos := p.AtInstant(tt)
		if !pos.Defined() {
			t.Fatalf("undefined at %v", tt)
		}
		if pos.P.X < -1 || pos.P.X > WorldSize+1 || pos.P.Y < -1 || pos.P.Y > WorldSize+1 {
			t.Fatalf("escaped the world at %v: %v", tt, pos)
		}
	}
	// Speed bounded by maxSpeed (linear legs).
	if mx, _, ok := p.Speed().Max(); !ok || mx > 2*1.42 {
		// reflection can fold a leg, slightly shortening it but never
		// lengthening; the bound is maxSpeed (with slack for the fold).
		t.Errorf("speed max = %v", mx)
	}
}

func TestFlights(t *testing.T) {
	fs := New(7).Flights(30, 100)
	if len(fs) != 30 {
		t.Fatalf("flights = %d", len(fs))
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f.ID] {
			t.Errorf("duplicate flight id %s", f.ID)
		}
		seen[f.ID] = true
		if err := f.Flight.M.Validate(); err != nil {
			t.Fatalf("invalid flight mapping: %v", err)
		}
		if f.Flight.Length() <= 0 {
			t.Error("zero-length flight")
		}
		// Departure within the spread.
		first, ok := f.Flight.Initial()
		if !ok || first.Inst < 0 || first.Inst > 100 {
			t.Errorf("departure = %v", first.Inst)
		}
	}
}

func TestStarRing(t *testing.T) {
	g := New(3)
	ring := g.StarRing(geom.Pt(100, 100), 50, 16)
	if len(ring) != 16 {
		t.Fatalf("ring size = %d", len(ring))
	}
	// The ring must be a valid simple polygon (the cycle carrier set).
	if _, err := spatial.NewCycle(ring...); err != nil {
		t.Fatalf("star ring not a simple cycle: %v", err)
	}
}

func TestStormValid(t *testing.T) {
	g := New(5)
	storm := g.Storm(0, 30, 12, 10)
	if storm.M.Len() != 30 {
		t.Fatalf("units = %d", storm.M.Len())
	}
	if err := storm.M.Validate(); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	// Every unit passes the full carrier set validation (the generator
	// is trusted in production; verify the trust is warranted).
	for i, u := range storm.M.Units() {
		if err := u.Validate(); err != nil {
			t.Fatalf("unit %d invalid: %v", i, err)
		}
	}
	// Snapshots across the lifetime are valid regions with positive
	// area and continuous area development.
	area := storm.Area()
	prev := -1.0
	for k := 0; k <= 60; k++ {
		tt := temporal.Instant(float64(k) * 5)
		snap, ok := storm.AtInstant(tt)
		if !ok {
			t.Fatalf("undefined at %v", tt)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("invalid snapshot at %v: %v", tt, err)
		}
		a := snap.Area()
		if a <= 0 {
			t.Fatalf("area %v at %v", a, tt)
		}
		if got := area.AtInstant(tt).MustGet(); absDiff(got, a) > 1e-6*a {
			t.Fatalf("lifted area %v != snapshot area %v at %v", got, a, tt)
		}
		if prev > 0 && absDiff(a, prev) > 0.25*prev {
			t.Fatalf("area jump %v -> %v at %v", prev, a, tt)
		}
		prev = a
	}
}

func TestStormWithSegments(t *testing.T) {
	g := New(9)
	for _, s := range []int{4, 16, 64} {
		mr := g.StormWithSegments(temporal.Closed(0, 100), s)
		snap, ok := mr.AtInstant(50)
		if !ok || snap.NumSegments() != s {
			t.Errorf("segments = %d, want %d", snap.NumSegments(), s)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestStormWithEye(t *testing.T) {
	g := New(19)
	storm := g.StormWithEye(0, 20, 12, 10)
	for i, u := range storm.M.Units() {
		if err := u.Validate(); err != nil {
			t.Fatalf("unit %d invalid: %v", i, err)
		}
	}
	snap, ok := storm.AtInstant(95)
	if !ok || snap.NumCycles() != 2 {
		t.Fatalf("snapshot cycles = %d", snap.NumCycles())
	}
	// The lifted area subtracts the moving eye.
	area := storm.Area()
	for k := 0; k <= 20; k++ {
		tt := temporal.Instant(float64(k)*10 + 0.25)
		s, ok := storm.AtInstant(tt)
		if !ok {
			continue
		}
		if got := area.AtInstant(tt).MustGet(); absDiff(got, s.Area()) > 1e-6*s.Area() {
			t.Fatalf("lifted area %v != snapshot %v at %v", got, s.Area(), tt)
		}
	}
	// A point resting inside the eye at t=0 should not be inside.
	eyeProbe := snap.Faces()[0].Holes[0].Vertices()[0]
	_ = eyeProbe
}

func TestObservationStream(t *testing.T) {
	a := New(77).ObservationStream("s", 5, 20, 10, 2, 6)
	b := New(77).ObservationStream("s", 5, 20, 10, 2, 6)
	if len(a) != 5*21 {
		t.Fatalf("want one observation per object per step (+initial): %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	perObject := map[string][]moving.Sample{}
	for i, o := range a {
		// Global time order, round-robin interleaved.
		if i > 0 && o.T < a[i-1].T {
			t.Fatalf("observation %d goes back in time", i)
		}
		if o.P.X < 0 || o.P.X > WorldSize || o.P.Y < 0 || o.P.Y > WorldSize {
			t.Fatalf("observation %d outside the world: %v", i, o.P)
		}
		perObject[o.ID] = append(perObject[o.ID], moving.Sample{T: o.T, P: o.P})
	}
	if len(perObject) != 5 {
		t.Fatalf("object count: %d", len(perObject))
	}
	units := 0
	for id, samples := range perObject {
		for i := 1; i < len(samples); i++ {
			if samples[i].T <= samples[i-1].T {
				t.Fatalf("%s: non-increasing per-object times", id)
			}
		}
		mp, err := moving.MPointFromSamples(samples)
		if err != nil {
			t.Fatalf("%s: stream not buildable offline: %v", id, err)
		}
		units += mp.M.Len()
	}
	// Held velocities and rests must make compaction visible: strictly
	// fewer units than legs.
	if legs := 5 * 20; units >= legs {
		t.Fatalf("no compaction opportunity in the stream: %d units for %d legs", units, legs)
	}
}
