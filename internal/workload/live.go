package workload

import "movingdb/internal/geom"

// Generators for the live query surface: /v1/nearby request mixes and
// standing-subscription mixes. They emit plain spec structs rather than
// live package types so the ingest and index packages' in-package tests
// can keep importing workload without an import cycle through live.

// NearbyQuery is one /v1/nearby request: K == 0 means no count bound,
// Radius < 0 means no distance bound; at least one is always set.
type NearbyQuery struct {
	X, Y   float64
	T      float64
	K      int
	Radius float64
}

// NearbyQueries returns n nearby requests at uniform random points with
// instants in [t0, t0+tSpread]: 60% pure k-NN (k in 1..kMax), 20% pure
// range (radius only), 20% bounded k-NN (both). Equal seeds yield equal
// mixes.
func (g *Gen) NearbyQueries(n int, t0, tSpread float64, kMax int) []NearbyQuery {
	if kMax < 1 {
		kMax = 1
	}
	out := make([]NearbyQuery, 0, n)
	for i := 0; i < n; i++ {
		q := NearbyQuery{
			X:      g.rng.Float64() * WorldSize,
			Y:      g.rng.Float64() * WorldSize,
			T:      t0 + g.rng.Float64()*tSpread,
			Radius: -1,
		}
		switch r := g.rng.Float64(); {
		case r < 0.6:
			q.K = 1 + g.rng.Intn(kMax)
		case r < 0.8:
			q.Radius = (0.02 + 0.08*g.rng.Float64()) * WorldSize
		default:
			q.K = 1 + g.rng.Intn(kMax)
			q.Radius = (0.05 + 0.15*g.rng.Float64()) * WorldSize
		}
		out = append(out, q)
	}
	return out
}

// SubscriptionSpec is one standing query: Kind is "inside", "within",
// or "appears" (the live package's predicate kinds), with the fields
// that kind reads populated.
type SubscriptionSpec struct {
	Kind   string
	Object string
	Region geom.Rect
	X, Y   float64
	Radius float64
}

// regionAround returns a rectangle with sides between 4% and 14% of the
// world, clamped inside it — small enough that objects cross its
// boundary often, which is what drives edge-triggered events.
func (g *Gen) regionAround() geom.Rect {
	w := (0.04 + 0.10*g.rng.Float64()) * WorldSize
	h := (0.04 + 0.10*g.rng.Float64()) * WorldSize
	x := g.rng.Float64() * (WorldSize - w)
	y := g.rng.Float64() * (WorldSize - h)
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// Subscriptions returns n standing-query specs over the given object
// ids: 40% inside(object, region), 30% within(object, point, radius),
// 30% appears(region). Objects are drawn uniformly with replacement.
// Equal seeds yield equal mixes; n == 0 or empty ids degrade sanely
// (no id-bound kinds without ids).
func (g *Gen) Subscriptions(n int, ids []string) []SubscriptionSpec {
	out := make([]SubscriptionSpec, 0, n)
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		if len(ids) == 0 {
			r = 1 // only appears is possible without objects
		}
		switch {
		case r < 0.4:
			out = append(out, SubscriptionSpec{
				Kind:   "inside",
				Object: ids[g.rng.Intn(len(ids))],
				Region: g.regionAround(),
			})
		case r < 0.7:
			out = append(out, SubscriptionSpec{
				Kind:   "within",
				Object: ids[g.rng.Intn(len(ids))],
				X:      g.rng.Float64() * WorldSize,
				Y:      g.rng.Float64() * WorldSize,
				Radius: (0.03 + 0.07*g.rng.Float64()) * WorldSize,
			})
		default:
			out = append(out, SubscriptionSpec{
				Kind:   "appears",
				Region: g.regionAround(),
			})
		}
	}
	return out
}
