package baseline

import (
	"math"
	"testing"

	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

// The baseline exists to be compared against; these tests pin down that
// it computes the same answers as the sliced implementation, so the
// benchmark ratios measure representation cost, not different work.

func TestAtInstantAgreesMPoint(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		mp := workload.New(seed).RandomTrajectory(0, 40, 10, 2)
		np := FromMPoint(mp)
		for k := -5; k <= 90; k++ {
			tt := temporal.Instant(float64(k) * 4.7)
			want := mp.AtInstant(tt)
			got, ok := np.AtInstant(tt)
			if ok != want.Defined() {
				t.Fatalf("seed %d t=%v: defined %v vs %v", seed, tt, ok, want.Defined())
			}
			if ok && got != want.P {
				t.Fatalf("seed %d t=%v: %v vs %v", seed, tt, got, want.P)
			}
		}
	}
}

func TestAtInstantAgreesMRegion(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		mr := workload.New(seed).Storm(0, 30, 10, 10)
		nr := FromMRegion(mr)
		for k := 0; k <= 60; k++ {
			tt := temporal.Instant(float64(k)*5 + 0.37)
			want, okW := mr.AtInstant(tt)
			got, okG := nr.AtInstant(tt)
			if okW != okG {
				t.Fatalf("seed %d t=%v: defined %v vs %v", seed, tt, okG, okW)
			}
			if okW && math.Abs(got.Area()-want.Area()) > 1e-9 {
				t.Fatalf("seed %d t=%v: area %v vs %v", seed, tt, got.Area(), want.Area())
			}
		}
	}
}

func TestInsideAgrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := workload.New(seed)
		mp := g.RandomTrajectory(0, 40, 10, 2)
		mr := g.Storm(0, 40, 10, 10)
		sliced := mp.Inside(mr)
		naive := FromMPoint(mp).Inside(FromMRegion(mr))
		// The true-period sets must agree (representations may split
		// pieces differently at touch instants; the semantics may not).
		ws, wn := sliced.WhenTrue(), naive.WhenTrue()
		if math.Abs(ws.Duration()-wn.Duration()) > 1e-6 {
			t.Fatalf("seed %d: inside duration %v vs %v", seed, ws.Duration(), wn.Duration())
		}
		for k := 0; k <= 200; k++ {
			tt := temporal.Instant(float64(k) * 2.003)
			if ws.Contains(tt) != wn.Contains(tt) {
				t.Fatalf("seed %d t=%v: membership disagrees", seed, tt)
			}
		}
	}
}

func TestInterleaveKeepsAll(t *testing.T) {
	in := []int{0, 1, 2, 3, 4, 5, 6}
	out := interleave(in)
	if len(out) != len(in) {
		t.Fatalf("lost elements: %v", out)
	}
	seen := map[int]bool{}
	for _, v := range out {
		seen[v] = true
	}
	for _, v := range in {
		if !seen[v] {
			t.Fatalf("missing %d", v)
		}
	}
	if out[0] == in[0] && out[1] == in[1] && out[2] == in[2] {
		t.Error("interleave did not reorder")
	}
}
