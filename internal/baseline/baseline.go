// Package baseline implements the representation a system without the
// paper's sliced design would use: a flat, unordered bag of temporal
// fragments with linear-scan lookup and all-pairs binary operations. It
// exists as the comparator for the benchmark harness — the experiments
// measure the sliced representation of the paper (ordered unit arrays,
// binary search, refinement partition) against this baseline.
package baseline

import (
	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// NaiveMPoint is a moving point stored as an unordered bag of upoint
// fragments.
type NaiveMPoint struct {
	Frags []units.UPoint
}

// FromMPoint flattens a sliced moving point into the naive
// representation, deliberately shuffling away the temporal order (a
// deterministic interleave so benchmarks are reproducible).
func FromMPoint(p moving.MPoint) NaiveMPoint {
	return NaiveMPoint{Frags: interleave(p.M.Units())}
}

// interleave reorders a slice deterministically so that linear scans
// cannot exploit accidental ordering.
func interleave[T any](in []T) []T {
	out := make([]T, 0, len(in))
	for i := 0; i < len(in); i += 2 {
		out = append(out, in[i])
	}
	for i := 1; i < len(in); i += 2 {
		out = append(out, in[i])
	}
	return out
}

// AtInstant evaluates the point by scanning all fragments — O(n) against
// the sliced representation's O(log n).
func (p NaiveMPoint) AtInstant(t temporal.Instant) (geom.Point, bool) {
	for _, u := range p.Frags {
		if u.Iv.Contains(t) {
			return u.Eval(t), true
		}
	}
	return geom.Point{}, false
}

// NaiveMRegion is a moving region stored as an unordered bag of uregion
// fragments.
type NaiveMRegion struct {
	Frags []units.URegion
}

// FromMRegion flattens a sliced moving region.
func FromMRegion(r moving.MRegion) NaiveMRegion {
	return NaiveMRegion{Frags: interleave(r.M.Units())}
}

// AtInstant evaluates the region by scanning all fragments — O(n + r)
// scan against the sliced O(log n + r).
func (r NaiveMRegion) AtInstant(t temporal.Instant) (spatial.Region, bool) {
	for _, u := range r.Frags {
		if u.Iv.Contains(t) {
			return u.EvalAt(t)
		}
	}
	return spatial.Region{}, false
}

// Inside computes the moving bool of "point inside region" by testing
// all fragment pairs for interval overlap — O(n·m) pairs against the
// refinement partition's O(n + m) — and then running the same unit-pair
// kernel. Results are collected unordered and sorted at the end, as a
// structure-less system would have to.
func (p NaiveMPoint) Inside(r NaiveMRegion) moving.MBool {
	var collected []units.UBool
	for _, up := range p.Frags {
		for _, ur := range r.Frags {
			if _, ok := up.Iv.Intersect(ur.Iv); !ok {
				continue
			}
			collected = append(collected, units.UPointInsideURegion(up, ur)...)
		}
	}
	// Sort by interval start (insertion into an ordered list).
	for i := 1; i < len(collected); i++ {
		for j := i; j > 0 && before(collected[j].Iv, collected[j-1].Iv); j-- {
			collected[j], collected[j-1] = collected[j-1], collected[j]
		}
	}
	m, err := moving.NewMBool(collected...)
	if err != nil {
		// Adjacent equal units are legal output of the pairwise scan;
		// rebuild through a merge.
		var bld mbBuilder
		for _, u := range collected {
			bld.add(u)
		}
		return bld.build()
	}
	return m
}

func before(a, b temporal.Interval) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.LC && !b.LC
}

type mbBuilder struct {
	us []units.UBool
}

func (b *mbBuilder) add(u units.UBool) {
	if n := len(b.us); n > 0 {
		prev := b.us[n-1]
		if prev.Iv.Adjacent(u.Iv) && prev.V == u.V {
			if merged, ok := prev.Iv.Union(u.Iv); ok {
				b.us[n-1].Iv = merged
				return
			}
		}
	}
	b.us = append(b.us, u)
}

func (b *mbBuilder) build() moving.MBool {
	m, err := moving.NewMBool(b.us...)
	if err != nil {
		panic(err)
	}
	return m
}
