package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"movingdb/internal/ingest"
)

// handleIngest accepts a JSON array of observations
// [{"id": "...", "t": .., "x": .., "y": ..}, ...] and enqueues it on
// the live pipeline. 202 means the batch is in the write-ahead log and
// will be applied — it survives a crash from the ack on; it is not
// necessarily queryable yet unless ?sync=1 forces a flush before the
// response (read-your-writes). A full queue is 429 with the
// backpressure code and nothing logged.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"this server has no live ingestion pipeline; restart it with ingestion enabled")
		return
	}
	var batch []ingest.Observation
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad ingest body: %v", err))
		return
	}
	if len(batch) > s.cfg.MaxIngestBatch {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch has %d observations; the limit is %d", len(batch), s.cfg.MaxIngestBatch))
		return
	}
	seq, err := s.ingest.Ingest(batch)
	switch {
	case errors.Is(err, ingest.ErrBackpressure):
		writeRetryError(w, http.StatusTooManyRequests, CodeBackpressure, err.Error(),
			s.ingest.RetryAfterHint(err))
		return
	case errors.Is(err, ingest.ErrInvalidObservation):
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	case errors.Is(err, ingest.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
		return
	case errors.Is(err, ingest.ErrDegraded):
		writeRetryError(w, http.StatusServiceUnavailable, CodeDegraded, err.Error(),
			s.ingest.RetryAfterHint(err))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	synced := false
	if r.URL.Query().Get("sync") == "1" {
		s.ingest.Flush()
		synced = true
	}
	writeJSONStatus(w, http.StatusAccepted, map[string]any{
		"accepted": len(batch), "seq": seq, "synced": synced,
	})
}
