package server

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
	"time"

	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/storage"
)

// TestDegradedMode503AndRecovery is the graceful-degradation acceptance
// scenario at the API level: with a persistent injected store fault,
// POST /v1/ingest answers 503 with the typed "degraded" envelope code,
// /v1/atinstant and /v1/window keep returning the exact pre-fault
// results, /v1/healthz reports degraded with the cause — and once the
// fault clears, the probe recovers the pipeline automatically and
// writes flow again.
func TestDegradedMode503AndRecovery(t *testing.T) {
	in := fault.New(7)
	ps := storage.NewPageStore()
	s, p := liveServer(t, ingest.Config{
		LogIO:             fault.NewStore(in, "wal", ps),
		FlushSize:         1 << 20,
		MaxAge:            time.Hour,
		RetryAttempts:     2,
		RetryBase:         time.Millisecond,
		RetryMaxWait:      2 * time.Millisecond,
		DegradedThreshold: 1,
		ProbeInterval:     time.Millisecond,
		CheckpointPages:   -1,
	})
	h := s.Handler()

	// Healthy traffic first: the state reads must keep serving.
	code, body := post(t, h, "/v1/ingest?sync=1",
		`[{"id":"car1","t":0,"x":10,"y":10},{"id":"car1","t":10,"x":20,"y":10}]`)
	if code != http.StatusAccepted {
		t.Fatalf("healthy POST: %d %v", code, body)
	}
	_, preAt := get(t, h, "/v1/atinstant?t=5")
	_, preWin := get(t, h, "/v1/window?x1=9&y1=9&x2=21&y2=11&t1=0&t2=10")

	in.Set("wal.put", fault.Spec{Mode: fault.ModeError}) // persistent fault
	for i := 0; i < 3; i++ {
		code, body = post(t, h, "/v1/ingest", fmt.Sprintf(`[{"id":"car2","t":%d,"x":0,"y":0}]`, i))
		if code != http.StatusServiceUnavailable {
			t.Fatalf("faulted POST %d: want 503, got %d %v", i, code, body)
		}
		if c, _ := envelope(t, body); c != CodeDegraded {
			t.Fatalf("faulted POST %d: error code %s, want %s", i, c, CodeDegraded)
		}
	}
	// Reads keep answering with the pre-fault state, bit for bit.
	if code, at := get(t, h, "/v1/atinstant?t=5"); code != 200 || fmt.Sprint(at["positions"]) != fmt.Sprint(preAt["positions"]) {
		t.Fatalf("atinstant under degradation: %d %v, want %v", code, at["positions"], preAt["positions"])
	}
	if code, win := get(t, h, "/v1/window?x1=9&y1=9&x2=21&y2=11&t1=0&t2=10"); code != 200 || fmt.Sprint(win["ids"]) != fmt.Sprint(preWin["ids"]) {
		t.Fatalf("window under degradation: %d %v, want %v", code, win["ids"], preWin["ids"])
	}
	code, hz := get(t, h, "/v1/healthz")
	if code != 200 || hz["status"] != "degraded" {
		t.Fatalf("healthz under degradation: %d %v", code, hz)
	}
	if cause, _ := hz["cause"].(string); cause == "" {
		t.Fatalf("degraded healthz carries no cause: %v", hz)
	}
	if health, ok := hz["health"].(map[string]any); !ok || health["degraded"] != true {
		t.Fatalf("healthz health block: %v", hz["health"])
	}

	// The fault clears; the next probe write recovers the pipeline.
	in.Clear("wal.put")
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, body = post(t, h, "/v1/ingest", `[{"id":"car2","t":100,"x":1,"y":1}]`)
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not recover after the fault cleared: %d %v", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, hz := get(t, h, "/v1/healthz"); code != 200 || hz["status"] != "ok" {
		t.Fatalf("healthz after recovery: %d %v", code, hz)
	}
	if ph := p.Health(); ph.Degraded {
		t.Fatalf("pipeline still degraded after recovery: %+v", ph)
	}
}

// TestGracefulRestartDrain is the SIGTERM-path contract at the HTTP
// level: batches acked 202 but still buffered (no sync, no age flush)
// are drained into the store by Close — the shutdown path's explicit
// drain — and a server restarted from the medium's durable image
// serves them identically.
func TestGracefulRestartDrain(t *testing.T) {
	log := storage.NewPageStore()
	s, p := liveServer(t, ingest.Config{Log: log, FlushSize: 1 << 20, MaxAge: time.Hour})
	h := s.Handler()
	for i := 0; i < 4; i++ {
		code, body := post(t, h, "/v1/ingest",
			fmt.Sprintf(`[{"id":"g1","t":%d,"x":%d,"y":0}]`, i*10, i*10))
		if code != http.StatusAccepted {
			t.Fatalf("POST %d: %d %v", i, code, body)
		}
	}
	if st := p.Stats(); st.Applied != 0 || st.QueueDepth == 0 {
		t.Fatalf("test premise broken: applied=%d queued=%d", st.Applied, st.QueueDepth)
	}
	// Graceful shutdown: the HTTP server has stopped accepting (not
	// modelled here); Close drains every buffered observation.
	p.Close()
	if st := p.Stats(); st.Applied != 4 || st.QueueDepth != 0 {
		t.Fatalf("drain incomplete: applied=%d queued=%d", st.Applied, st.QueueDepth)
	}
	// The drained state is immediately queryable on the old process…
	if code, body := get(t, h, "/v1/atinstant?t=15"); code != 200 {
		t.Fatalf("read after drain: %d %v", code, body)
	} else if pos := body["positions"].([]any); len(pos) != 1 || pos[0].(map[string]any)["x"].(float64) != 15 {
		t.Fatalf("drained state: %v", pos)
	}
	// …and identical on a restart from the durable image.
	var disk bytes.Buffer
	if _, err := log.WriteTo(&disk); err != nil {
		t.Fatal(err)
	}
	recovered, err := storage.ReadPageStore(bytes.NewReader(disk.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := liveServer(t, ingest.Config{Log: recovered})
	if code, body := get(t, s2.Handler(), "/v1/atinstant?t=15"); code != 200 {
		t.Fatalf("read after restart: %d %v", code, body)
	} else if pos := body["positions"].([]any); len(pos) != 1 || pos[0].(map[string]any)["x"].(float64) != 15 {
		t.Fatalf("restarted state: %v", pos)
	}
}
