package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"

	"movingdb/internal/cache"
	"movingdb/internal/ingest"
)

// The epoch-pinned read path. Every read handler decodes its request,
// pins the current ingestion epoch ONCE, and serves through here: the
// pinned epoch is both the cache-key component and the snapshot the
// compute closure evaluates against, so a response can never mix data
// from two epochs, and a cached body is byte-identical to what a fresh
// evaluation of the same (query, epoch) would produce. That identity is
// what licenses the strong ETag.

// pinEpoch returns the current ingestion epoch, nil on a read-only
// server (whose data never changes — it behaves as a permanent epoch 0).
func (s *Server) pinEpoch() *ingest.Epoch {
	if s.ingest == nil {
		return nil
	}
	return s.ingest.Epoch()
}

func epochSeq(ep *ingest.Epoch) uint64 {
	if ep == nil {
		return 0
	}
	return ep.Seq()
}

// etagFor derives the strong entity tag of a cache key:
// "<hash of route+query>-<epoch>". The epoch rides in clear so a tag
// visibly changes exactly when the data does; the hash part pins the
// request shape. Strong (unprefixed) because equal keys yield
// byte-identical bodies.
func etagFor(k cache.Key) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(k.Route))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(k.Query))
	return fmt.Sprintf("\"%016x-%d\"", h.Sum64(), k.Epoch)
}

// etagMatches implements the strong If-None-Match comparison: an exact
// quoted-tag match or "*". Weak tags (W/"...") never strong-match.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// serveCached answers a read request from the result cache, computing
// and storing on miss (misses for the same key coalesce — one
// evaluation feeds every concurrent duplicate). With conditional set,
// the response carries the strong ETag and an If-None-Match revalidation
// is answered 304 without touching the cache or the data. Every
// response names its epoch in X-MO-Epoch and its cache outcome in
// X-MO-Cache.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, route, query string, epoch uint64, conditional bool, compute func() (any, error)) {
	k := cache.Key{Route: route, Query: query, Epoch: epoch}
	seqHdr := strconv.FormatUint(epoch, 10)
	var et string
	if conditional {
		et = etagFor(k)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, et) {
			w.Header().Set("ETag", et)
			w.Header().Set("X-MO-Epoch", seqHdr)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	body, hit, err := s.loader.Do(k, func() ([]byte, error) {
		v, cerr := compute()
		if cerr != nil {
			return nil, cerr
		}
		b, merr := json.Marshal(v)
		if merr != nil {
			return nil, merr
		}
		return append(b, '\n'), nil
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	if conditional {
		w.Header().Set("ETag", et)
	}
	w.Header().Set("X-MO-Epoch", seqHdr)
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	w.Header().Set("X-MO-Cache", outcome)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}
