package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// statusWriter captures the status code a handler writes so the
// instrumentation can count it.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (the
// SSE event routes) can push frames through the instrumentation
// wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the observability middleware: request
// body limiting, panic recovery (500 envelope instead of a dropped
// connection), and per-route counting with latency into the registry.
func (s *Server) instrument(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		defer func() {
			if p := recover(); p != nil {
				s.logger.Printf("server: panic on %s: %v\n%s", route, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, CodeInternal,
						fmt.Sprintf("internal error serving %s", route))
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			s.metrics.RecordRequest(route, sw.status, time.Since(start))
		}()
		next(sw, r)
	})
}

// The unversioned aliases' lifecycle dates: deprecated when the v1
// surface shipped, removed at the sunset. Clients migrate by prefixing
// /v1 — payloads are identical.
var (
	aliasDeprecatedAt = time.Date(2026, time.February, 1, 0, 0, 0, 0, time.UTC)
	aliasSunsetAt     = time.Date(2027, time.February, 1, 0, 0, 0, 0, time.UTC)
)

// deprecated marks a legacy unversioned alias: Deprecation (RFC 9745,
// "@<unix-time>" of when the alias was deprecated) and Sunset
// (RFC 8594, when it will stop being served) name the lifecycle, Link
// advertises the successor route, and the request is otherwise served
// identically (and counted under the successor's route label).
func deprecated(successor string, next http.Handler) http.Handler {
	deprecation := "@" + strconv.FormatInt(aliasDeprecatedAt.Unix(), 10)
	sunset := aliasSunsetAt.Format(http.TimeFormat)
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", deprecation)
		w.Header().Set("Sunset", sunset)
		w.Header().Set("Link", link)
		next.ServeHTTP(w, r)
	})
}
