package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter captures the status code a handler writes so the
// instrumentation can count it.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the observability middleware: request
// body limiting, panic recovery (500 envelope instead of a dropped
// connection), and per-route counting with latency into the registry.
func (s *Server) instrument(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		defer func() {
			if p := recover(); p != nil {
				s.logger.Printf("server: panic on %s: %v\n%s", route, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, CodeInternal,
						fmt.Sprintf("internal error serving %s", route))
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			s.metrics.RecordRequest(route, sw.status, time.Since(start))
		}()
		next(sw, r)
	})
}

// deprecated marks a legacy unversioned alias: the successor route is
// advertised in the response headers and the request is otherwise
// served identically (and counted under the successor's route label).
func deprecated(successor string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		next.ServeHTTP(w, r)
	})
}
