package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/live"
	"movingdb/internal/temporal"
)

// The live query surface: GET /v1/nearby answers range and k-NN
// queries over the pinned epoch's current trajectories, and the
// /v1/subscribe family manages standing queries whose edge-triggered
// enter/leave events stream to clients over SSE, pushed from the
// ingest pipeline's epoch publish hook. Both halves are live-only —
// without an ingestion pipeline (and, for subscriptions, a registry)
// they answer 503 unavailable.

// nearbyReq is a decoded /v1/nearby request. K == 0 means no count
// bound (a pure radius query); Radius < 0 means no distance bound.
// At least one bound is required at decode time.
type nearbyReq struct {
	X, Y    float64
	T       float64
	K       int
	Radius  float64
	Timeout time.Duration
}

func (s *Server) decodeNearby(r *http.Request) (nearbyReq, error) {
	p := newParams(r)
	req := nearbyReq{
		X:       p.float("x"),
		Y:       p.float("y"),
		T:       p.float("t"),
		K:       p.intMin("k", 0, 1),
		Radius:  -1,
		Timeout: p.timeout(s.cfg.QueryTimeout, s.cfg.MaxTimeout),
	}
	if raw := p.vals.Get("radius"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || !(v > 0) {
			p.fail(CodeBadRequest, "bad radius %q: want a positive number", raw)
		} else {
			req.Radius = v
		}
	}
	if p.err == nil && req.K == 0 && req.Radius < 0 {
		p.fail(CodeBadRequest, "need k= (nearest count) or radius= (range), or both")
	}
	if req.K > s.cfg.MaxLimit {
		req.K = s.cfg.MaxLimit
	}
	if p.err != nil {
		return nearbyReq{}, p.err
	}
	return req, nil
}

func (q nearbyReq) canonical() string {
	var b strings.Builder
	b.WriteString("x=")
	b.WriteString(fmtFloat(q.X))
	b.WriteString("&y=")
	b.WriteString(fmtFloat(q.Y))
	b.WriteString("&t=")
	b.WriteString(fmtFloat(q.T))
	b.WriteString("&k=")
	b.WriteString(strconv.Itoa(q.K))
	b.WriteString("&radius=")
	b.WriteString(fmtFloat(q.Radius))
	return b.String()
}

// handleNearby answers ?x=&y=&t=&k=&radius= with the objects nearest
// the point at the instant, best-first over the epoch's pinned index
// snapshot — the getNearbyObjects operation of a moving objects
// database. Results carry each object's exact position at t and its
// distance, nearest first; responses are cached under (canonical
// query, epoch) and carry the strong ETag.
func (s *Server) handleNearby(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"nearby queries need a live ingestion pipeline; restart the server with ingestion enabled")
		return
	}
	req, derr := s.decodeNearby(r)
	if derr != nil {
		writeDecodeError(w, derr)
		return
	}
	ep := s.pinEpoch()
	s.serveCached(w, r, "/v1/nearby", req.canonical(), epochSeq(ep), true, func() (any, error) {
		results := ep.Nearest(req.X, req.Y, temporal.Instant(req.T), req.K, req.Radius)
		return map[string]any{
			"t": req.T, "k": req.K, "radius": req.Radius,
			"count": len(results), "results": results,
		}, nil
	})
}

// subscribeBody is the POST /v1/subscribe payload. Region rectangles
// normalise (min/max per axis) like /v1/window's corners do.
type subscribeBody struct {
	Predicate string      `json:"predicate"`
	Object    string      `json:"object"`
	Region    *regionBody `json:"region"`
	X         float64     `json:"x"`
	Y         float64     `json:"y"`
	Radius    float64     `json:"radius"`
}

type regionBody struct {
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
	X2 float64 `json:"x2"`
	Y2 float64 `json:"y2"`
}

func (b subscribeBody) predicate() (live.Predicate, error) {
	p := live.Predicate{
		Kind:   live.Kind(b.Predicate),
		Object: b.Object,
		X:      b.X,
		Y:      b.Y,
		Radius: b.Radius,
	}
	switch p.Kind {
	case live.KindInside, live.KindAppears:
		if b.Region == nil {
			return p, fmt.Errorf("%s predicate needs a region", b.Predicate)
		}
		p.Region = geom.Rect{
			MinX: min(b.Region.X1, b.Region.X2), MinY: min(b.Region.Y1, b.Region.Y2),
			MaxX: max(b.Region.X1, b.Region.X2), MaxY: max(b.Region.Y1, b.Region.Y2),
		}
	}
	return p, p.Validate()
}

// requireLive gates the subscription routes on a configured registry.
func (s *Server) requireLive(w http.ResponseWriter) bool {
	if s.live == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"standing queries need a live registry; restart the server with ingestion enabled")
		return false
	}
	return true
}

// handleSubscribe registers a standing query. The response names the
// subscription and its event stream; edge-trigger state seeds from the
// current epoch, so only changes after this call produce events.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	var body subscribeBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad subscribe body: %v", err))
		return
	}
	pred, err := body.predicate()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	sub, err := s.live.Subscribe(pred, s.pinEpoch())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
		return
	}
	writeJSONStatus(w, http.StatusCreated, map[string]any{
		"subscription_id": sub.ID(),
		"predicate":       sub.Predicate().String(),
		"events_url":      "/v1/subscribe/" + sub.ID() + "/events",
	})
}

// handleSubscription reports one subscription's delivery state.
func (s *Server) handleSubscription(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	sub, ok := s.live.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such subscription")
		return
	}
	writeJSON(w, sub.Info())
}

// handleUnsubscribe removes a standing query and ends its stream.
func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	id := r.PathValue("id")
	if !s.live.Unsubscribe(id) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such subscription")
		return
	}
	writeJSON(w, map[string]any{"unsubscribed": id})
}

// writeEventFrames renders one batch of subscription events as SSE
// frames: an explicit "lagged" frame when the bounded buffer dropped
// anything since the last Take, then one frame per event with the
// per-subscription sequence as the SSE id and the edge as the event
// name. The whole batch renders into scratch (returned grown for
// reuse) and goes out in a single Write — every connected stream pays
// this cost on every epoch publish, so the frame bytes are appended by
// hand instead of through fmt and reflection-driven json.Marshal.
//
// moguard: hotpath
func writeEventFrames(w io.Writer, scratch []byte, events []live.Event, lagged bool) []byte {
	buf := scratch[:0]
	if lagged {
		buf = append(buf, "event: lagged\ndata: {\"lagged\":true}\n\n"...)
	}
	for _, e := range events {
		mark := len(buf)
		buf = append(buf, "id: "...)
		buf = strconv.AppendUint(buf, e.Seq, 10)
		buf = append(buf, "\nevent: "...)
		buf = append(buf, e.Edge...)
		buf = append(buf, "\ndata: "...)
		var ok bool
		if buf, ok = appendEventJSON(buf, e); !ok {
			// Unrenderable event (non-finite coordinate): dropped, exactly
			// as the json.Marshal error path used to do.
			buf = buf[:mark]
			continue
		}
		buf = append(buf, "\n\n"...)
	}
	if len(buf) > 0 {
		// Write failures surface as the closed connection on the next
		// frame, same as the fmt.Fprintf path before.
		w.Write(buf)
	}
	return buf
}

// appendEventJSON renders one live.Event byte-identically to
// json.Marshal (same field order, float forms, and HTML-safe string
// escaping) without reflection or intermediate allocation. ok is false
// when a coordinate is non-finite, where json.Marshal would error.
func appendEventJSON(b []byte, e live.Event) ([]byte, bool) {
	if isNonFinite(e.T) || isNonFinite(e.X) || isNonFinite(e.Y) {
		return b, false
	}
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"epoch":`...)
	b = strconv.AppendUint(b, e.Epoch, 10)
	b = append(b, `,"edge":`...)
	b = appendJSONString(b, e.Edge)
	b = append(b, `,"object":`...)
	b = appendJSONString(b, e.Object)
	b = append(b, `,"t":`...)
	b = appendJSONFloat(b, e.T)
	b = append(b, `,"x":`...)
	b = appendJSONFloat(b, e.X)
	b = append(b, `,"y":`...)
	b = appendJSONFloat(b, e.Y)
	b = append(b, `,"pub_unix_ns":`...)
	b = strconv.AppendInt(b, e.PubUnixNS, 10)
	return append(b, '}'), true
}

func isNonFinite(f float64) bool {
	return math.IsNaN(f) || math.IsInf(f, 0)
}

// jsonSafeString reports whether s renders as itself inside JSON
// quotes under encoding/json's rules: printable ASCII, nothing needing
// an escape, and none of the HTML-sensitive bytes it always escapes.
func jsonSafeString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendJSONString appends s as a JSON string. Event edges and object
// ids are plain ASCII in practice, so the fast path is a quoted copy;
// anything needing escapes takes the stdlib slow path to stay
// byte-identical with json.Marshal.
func appendJSONString(b []byte, s string) []byte {
	if jsonSafeString(s) {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	// moguard: allocok escaping fallback is off the common path (non-ASCII or HTML-sensitive object ids); matching json.Marshal byte-for-byte beats the allocation
	q, err := json.Marshal(s)
	if err != nil {
		// Marshalling a string cannot fail; keep the frame valid anyway.
		return append(b, `""`...)
	}
	return append(b, q...)
}

// appendJSONFloat appends f exactly as encoding/json renders a
// float64: shortest form, 'f' notation for ordinary magnitudes, and
// the exponent cleaned of its leading zero otherwise.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// handleEvents streams a subscription's events as Server-Sent Events:
// one "enter"/"leave" event per predicate flip (data is the Event
// JSON, id the per-subscription sequence), an explicit "lagged" event
// whenever the bounded buffer dropped anything since the last frame,
// heartbeat comments to keep intermediaries from idling the
// connection out, and a final "bye" on unsubscribe or shutdown. The
// handler returns when the client disconnects or the subscription
// ends — registry Close (SIGTERM drain) unblocks every stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	sub, ok := s.live.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such subscription")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": stream %s\n\n", sub.ID())
	fl.Flush()
	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	var frameBuf []byte // reused across batches; grows to the largest frame batch
	for {
		events, lagged := sub.Take()
		if lagged || len(events) > 0 {
			if err := failpointHit("sse.write"); err != nil {
				// Injected broken pipe: abort the handler mid-stream without
				// a bye frame, exactly as if the peer vanished. The events
				// just taken are gone for this connection — a reconnecting
				// client sees a gap, never a reorder — and the subscription
				// itself stays live for the next GET.
				return
			}
		}
		frameBuf = writeEventFrames(w, frameBuf, events, lagged)
		if lagged || len(events) > 0 {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			fmt.Fprint(w, "event: bye\ndata: {}\n\n")
			fl.Flush()
			return
		case <-sub.Wait():
		case <-hb.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		}
	}
}
