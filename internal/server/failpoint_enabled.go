//go:build faultinject

package server

import (
	"sync/atomic"

	"movingdb/internal/fault"
)

// fpInjector is the process-wide injector behind this package's
// failpoint sites (sse.write). Armed once at startup by the chaos
// harness or moserver before traffic flows; a nil injector never trips.
var fpInjector atomic.Pointer[fault.Injector]

// SetFailpointInjector arms the package's failpoint hooks with in.
// Only compiled under -tags=faultinject; production builds have no way
// to reach the hooks at all.
func SetFailpointInjector(in *fault.Injector) {
	fpInjector.Store(in)
}

func failpointHit(site string) error {
	return fpInjector.Load().Hit(site)
}
