package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"movingdb/internal/fault"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/obs"
	"movingdb/internal/storage"
)

// Degraded-mode coverage for the live-query surface: /v1/nearby,
// /v1/subscribe and SSE delivery while the write path is down. The
// contract under WAL failure is reads serve the last published epoch,
// standing queries keep their streams, and delivery resumes after the
// probe recovers the pipeline — no stream wedges, no dropped edges.

// degradedLiveServer is liveQueryServer with a fault seam under the
// WAL, so tests can fail writes at will.
func degradedLiveServer(t *testing.T, probe time.Duration) (*Server, *ingest.Pipeline, *live.Registry, *fault.Injector) {
	t.Helper()
	metrics := obs.New(0)
	in := fault.New(1)
	reg := live.NewRegistry(live.Config{Metrics: metrics})
	p, err := ingest.Open(ingest.Config{
		LogIO:             fault.NewStore(in, "wal", storage.NewPageStore()),
		FlushSize:         1 << 20,
		MaxAge:            time.Hour,
		MaxQueued:         1 << 30,
		RetryAttempts:     2,
		RetryBase:         time.Millisecond,
		RetryMaxWait:      2 * time.Millisecond,
		DegradedThreshold: 1,
		ProbeInterval:     probe,
		CheckpointPages:   -1,
		Metrics:           metrics,
		OnPublish:         reg.Notify,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close(); p.Close() })
	s, err := New(Config{Ingest: p, Live: reg, Metrics: metrics, SSEHeartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return s, p, reg, in
}

// degrade drives the pipeline into degraded mode through the HTTP
// surface and asserts the 503 envelope on the way.
func degrade(t *testing.T, h http.Handler, in *fault.Injector) {
	t.Helper()
	in.Set("wal.put", fault.Spec{Mode: fault.ModeError})
	code, body := post(t, h, "/v1/ingest", `[{"id":"victim","t":0,"x":0,"y":0}]`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("faulted POST: want 503, got %d %v", code, body)
	}
	if c, _ := envelope(t, body); c != CodeDegraded {
		t.Fatalf("faulted POST: code %s, want %s", c, CodeDegraded)
	}
}

// recover503 clears the fault and waits for the probe to re-admit
// writes.
func recover503(t *testing.T, h http.Handler, in *fault.Injector, obsJSON string) {
	t.Helper()
	in.Clear("wal.put")
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, body := post(t, h, "/v1/ingest?sync=1", obsJSON)
		if code == http.StatusAccepted {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after fault cleared: %d %v", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNearbyUnderDegradation: k-NN keeps answering from the last
// published epoch, bit for bit and with an unchanged X-MO-Epoch, while
// ingest is refusing writes.
func TestNearbyUnderDegradation(t *testing.T) {
	s, _, _, in := degradedLiveServer(t, time.Millisecond)
	h := s.Handler()
	code, body := post(t, h, "/v1/ingest?sync=1",
		`[{"id":"a","t":0,"x":0,"y":0},{"id":"a","t":10,"x":10,"y":0},{"id":"b","t":0,"x":100,"y":100},{"id":"b","t":10,"x":110,"y":100}]`)
	if code != http.StatusAccepted {
		t.Fatalf("seed POST: %d %v", code, body)
	}

	req := httptest.NewRequest("GET", "/v1/nearby?x=0&y=0&t=5&k=2", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("pre-fault nearby: %d %s", rec.Code, rec.Body.String())
	}
	preBody, preEpoch := rec.Body.String(), rec.Header().Get("X-MO-Epoch")

	degrade(t, h, in)

	req = httptest.NewRequest("GET", "/v1/nearby?x=0&y=0&t=5&k=2", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || rec.Body.String() != preBody {
		t.Fatalf("nearby under degradation: %d %s, want the pre-fault body %s", rec.Code, rec.Body.String(), preBody)
	}
	if got := rec.Header().Get("X-MO-Epoch"); got != preEpoch {
		t.Fatalf("nearby epoch moved under degradation: %s -> %s", preEpoch, got)
	}
}

// TestSubscribeUnderDegradation: standing queries are registry state,
// not WAL state, so creating one while the write path is down succeeds
// and the stream opens — the subscription simply sees no edges until
// writes recover.
func TestSubscribeUnderDegradation(t *testing.T) {
	s, _, reg, in := degradedLiveServer(t, time.Millisecond)
	h := s.Handler()
	degrade(t, h, in)

	code, body := post(t, h, "/v1/subscribe",
		`{"predicate":"inside","object":"bus","region":{"x1":0,"y1":0,"x2":10,"y2":10}}`)
	if code != http.StatusCreated {
		t.Fatalf("subscribe under degradation: %d %v", code, body)
	}
	id, _ := body["subscription_id"].(string)
	if id == "" || body["events_url"] != "/v1/subscribe/"+id+"/events" {
		t.Fatalf("subscribe body: %v", body)
	}
	if code, info := get(t, h, "/v1/subscribe/"+id); code != 200 || info["active"] != true {
		t.Fatalf("subscription info under degradation: %d %v", code, info)
	}
	if _, ok := reg.Get(id); !ok {
		t.Fatalf("subscription %s not in the registry", id)
	}
}

// TestSSEDeliveryAcrossDegradation is the stream-survival contract:
// an open SSE stream rides through a full degrade→probe→recover cycle
// without wedging, and the first post-recovery publish delivers its
// edge with the sequence number continuing from before the outage.
func TestSSEDeliveryAcrossDegradation(t *testing.T) {
	s, _, _, in := degradedLiveServer(t, time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	h := s.Handler()

	code, body := post(t, h, "/v1/ingest?sync=1", `[{"id":"bus","t":0,"x":100,"y":100}]`)
	if code != http.StatusAccepted {
		t.Fatalf("seed POST: %d %v", code, body)
	}
	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json",
		strings.NewReader(`{"predicate":"inside","object":"bus","region":{"x1":0,"y1":0,"x2":10,"y2":10}}`))
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	subID := created["subscription_id"].(string)

	opened := make(chan struct{})
	done := make(chan sseClient, 1)
	go func() { done <- readSSE(t, ts.URL+created["events_url"].(string), nil, func() { close(opened) }) }()
	<-opened

	// Enter before the outage: one edge through the stream.
	code, body = post(t, h, "/v1/ingest?sync=1", `[{"id":"bus","t":1,"x":5,"y":5}]`)
	if code != http.StatusAccepted {
		t.Fatalf("enter POST: %d %v", code, body)
	}

	degrade(t, h, in)
	// The rejected write must not produce an edge, and the stream must
	// stay up (heartbeats are covering it while we wait).
	time.Sleep(50 * time.Millisecond)

	recover503(t, h, in, `[{"id":"bus","t":2,"x":500,"y":500}]`) // leave

	waitInfo(t, h, subID, 2)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/subscribe/"+subID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != 200 {
		t.Fatalf("unsubscribe: %v %v", err, dresp)
	}
	dresp.Body.Close()

	var c sseClient
	select {
	case c = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream wedged across the degradation cycle")
	}
	if len(c.events) != 2 || c.events[0].Edge != "enter" || c.events[1].Edge != "leave" {
		t.Fatalf("events across the cycle: %+v", c.events)
	}
	if c.events[0].Seq != 1 || c.events[1].Seq != 2 {
		t.Fatalf("sequence numbers must continue across the outage: %+v", c.events)
	}
	if c.byes != 1 {
		t.Fatalf("stream must end with a bye, got %d", c.byes)
	}
}

// waitInfo polls the subscription info endpoint until seq reaches want.
func waitInfo(t *testing.T, h http.Handler, id string, want float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if code, info := get(t, h, "/v1/subscribe/"+id); code == 200 && info["seq"].(float64) >= want {
			return
		}
		if time.Now().After(deadline) {
			_, info := get(t, h, "/v1/subscribe/"+id)
			t.Fatalf("subscription never reached seq %v: %v", want, info)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRetryAfterDegraded pins the 503 Retry-After mapping: the header
// is the probe interval rounded up to whole seconds with a floor of
// one, since the pipeline admits exactly one probe write per interval.
func TestRetryAfterDegraded(t *testing.T) {
	cases := []struct {
		probe time.Duration
		want  string
	}{
		{time.Millisecond, "1"},        // sub-second cadence floors at 1
		{1500 * time.Millisecond, "2"}, // fractional seconds round up
		{3 * time.Second, "3"},
	}
	for _, tc := range cases {
		t.Run(tc.want+"s", func(t *testing.T) {
			s, _, _, in := degradedLiveServer(t, tc.probe)
			h := s.Handler()
			in.Set("wal.put", fault.Spec{Mode: fault.ModeError})
			req := httptest.NewRequest("POST", "/v1/ingest", strings.NewReader(`[{"id":"x","t":0,"x":0,"y":0}]`))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusServiceUnavailable {
				t.Fatalf("want 503, got %d %s", rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("Retry-After"); got != tc.want {
				t.Fatalf("Retry-After = %q, want %q (probe %v)", got, tc.want, tc.probe)
			}
		})
	}
}

// TestRetryAfterBackpressure pins the 429 mapping: a full queue carries
// a Retry-After derived from the flush cadence, so clients back off to
// when the queue can actually have drained.
func TestRetryAfterBackpressure(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{
		FlushSize: 1 << 20,
		MaxAge:    2 * time.Second,
		MaxQueued: 2,
	})
	h := s.Handler()
	code, body := post(t, h, "/v1/ingest",
		`[{"id":"a","t":0,"x":0,"y":0},{"id":"a","t":1,"x":1,"y":0}]`)
	if code != http.StatusAccepted {
		t.Fatalf("fill POST: %d %v", code, body)
	}
	req := httptest.NewRequest("POST", "/v1/ingest", strings.NewReader(`[{"id":"b","t":0,"x":0,"y":0}]`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: want 429, got %d %s", rec.Code, rec.Body.String())
	}
	var env map[string]map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env["error"]["code"] != CodeBackpressure {
		t.Fatalf("429 envelope: %s", rec.Body.String())
	}
	got := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(got)
	if err != nil || secs < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive delay-seconds value", got)
	}
	// Queue is more than half full, so the hint doubles the 2s cadence.
	if secs != 4 {
		t.Fatalf("429 Retry-After = %d, want 4 (doubled flush cadence)", secs)
	}
}
