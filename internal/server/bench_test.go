package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/workload"
)

// The middleware-overhead benchmarks compare the bare query handler
// against the instrumented route (mux dispatch + body limit + panic
// recovery + metrics). Run with:
//
//	go test ./internal/server -bench BenchmarkQuery -benchmem
//
// The instrumented path must stay within a few percent of the bare
// handler; the dominant cost is query evaluation itself.

func benchServer(b *testing.B) *Server {
	b.Helper()
	g := workload.New(2000)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(30, 150) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	s, err := New(Config{Catalog: db.Catalog{"planes": planes}, ObjectIDs: ids, Objects: objects})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const benchQueryURL = "/v1/query?q=SELECT+airline,+id+FROM+planes+WHERE+airline+=+'Lufthansa'+LIMIT+5"

func BenchmarkQueryBareHandler(b *testing.B) {
	s := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", benchQueryURL, nil)
		rec := httptest.NewRecorder()
		s.handleQuery(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code = %d", rec.Code)
		}
	}
}

func BenchmarkQueryInstrumented(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", benchQueryURL, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code = %d", rec.Code)
		}
	}
}

func BenchmarkWindowInstrumented(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/window?x1=0&y1=0&x2=500&y2=500&t1=0&t2=500&limit=10", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code = %d", rec.Code)
		}
	}
}
