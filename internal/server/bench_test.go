package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"movingdb/internal/db"
	"movingdb/internal/live"
	"movingdb/internal/moving"
	"movingdb/internal/workload"
)

// The middleware-overhead benchmarks compare the bare query handler
// against the instrumented route (mux dispatch + body limit + panic
// recovery + metrics). Run with:
//
//	go test ./internal/server -bench BenchmarkQuery -benchmem
//
// The instrumented path must stay within a few percent of the bare
// handler; the dominant cost is query evaluation itself.

func benchServer(b *testing.B) *Server {
	b.Helper()
	g := workload.New(2000)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(30, 150) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	s, err := New(Config{Catalog: db.Catalog{"planes": planes}, ObjectIDs: ids, Objects: objects})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const benchQueryURL = "/v1/query?q=SELECT+airline,+id+FROM+planes+WHERE+airline+=+'Lufthansa'+LIMIT+5"

func BenchmarkQueryBareHandler(b *testing.B) {
	s := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", benchQueryURL, nil)
		rec := httptest.NewRecorder()
		s.handleQuery(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code = %d", rec.Code)
		}
	}
}

func BenchmarkQueryInstrumented(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", benchQueryURL, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code = %d", rec.Code)
		}
	}
}

// BenchmarkSSEEventFrames measures rendering one Take batch of
// subscription events as SSE frames — the per-event cost every
// connected stream pays on every epoch publish, pinned by an
// allocation budget (alloc_budgets.json).
func BenchmarkSSEEventFrames(b *testing.B) {
	events := make([]live.Event, 8)
	for i := range events {
		events[i] = live.Event{
			Seq: uint64(i + 1), Epoch: 42, Edge: "enter",
			Object: "veh-01234", T: 17.5, X: 123.25, Y: 456.75, PubUnixNS: 1700000000000000000,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = writeEventFrames(io.Discard, buf, events, true)
	}
}

func BenchmarkWindowInstrumented(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/window?x1=0&y1=0&x2=500&y2=500&t1=0&t2=500&limit=10", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code = %d", rec.Code)
		}
	}
}
