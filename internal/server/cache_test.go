package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"movingdb/internal/ingest"
)

// getRec is get() but returns the raw recorder for header inspection.
func getRec(t *testing.T, h http.Handler, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const testWindowURL = "/v1/window?x1=0&y1=0&x2=100&y2=100&t1=0&t2=100"

// TestCacheHitAndConditionalGet drives the full conditional-request
// contract on a static server: a repeat request is a cache hit with the
// same strong ETag, If-None-Match revalidation yields 304 with no body,
// and a different query gets a different tag.
func TestCacheHitAndConditionalGet(t *testing.T) {
	h := testServer(t).Handler()
	first := getRec(t, h, testWindowURL, nil)
	if first.Code != 200 {
		t.Fatalf("first: %d %s", first.Code, first.Body.String())
	}
	et := first.Header().Get("ETag")
	if et == "" || et[0] != '"' {
		t.Fatalf("ETag = %q, want strong quoted tag", et)
	}
	if got := first.Header().Get("X-MO-Cache"); got != "miss" {
		t.Errorf("first X-MO-Cache = %q", got)
	}
	if got := first.Header().Get("X-MO-Epoch"); got != "0" {
		t.Errorf("static X-MO-Epoch = %q, want 0", got)
	}

	second := getRec(t, h, testWindowURL, nil)
	if second.Header().Get("X-MO-Cache") != "hit" {
		t.Errorf("second X-MO-Cache = %q, want hit", second.Header().Get("X-MO-Cache"))
	}
	if second.Header().Get("ETag") != et {
		t.Errorf("ETag changed without an epoch change: %q vs %q", second.Header().Get("ETag"), et)
	}
	if second.Body.String() != first.Body.String() {
		t.Error("cached body differs from computed body")
	}

	// Revalidation: 304, empty body, same tag.
	cond := getRec(t, h, testWindowURL, map[string]string{"If-None-Match": et})
	if cond.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match: %d", cond.Code)
	}
	if cond.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", cond.Body.String())
	}
	if cond.Header().Get("ETag") != et {
		t.Errorf("304 ETag = %q", cond.Header().Get("ETag"))
	}
	// A stale or foreign tag must not 304.
	if rec := getRec(t, h, testWindowURL, map[string]string{"If-None-Match": `"deadbeef-9"`}); rec.Code != 200 {
		t.Errorf("mismatched If-None-Match: %d, want 200", rec.Code)
	}
	// Weak tags never strong-match.
	if rec := getRec(t, h, testWindowURL, map[string]string{"If-None-Match": "W/" + et}); rec.Code != 200 {
		t.Errorf("weak If-None-Match: %d, want 200", rec.Code)
	}
	// Wildcard matches anything.
	if rec := getRec(t, h, testWindowURL, map[string]string{"If-None-Match": "*"}); rec.Code != http.StatusNotModified {
		t.Errorf("wildcard If-None-Match: %d, want 304", rec.Code)
	}

	// Distinct queries, distinct tags.
	other := getRec(t, h, "/v1/window?x1=0&y1=0&x2=50&y2=50&t1=0&t2=100", nil)
	if other.Header().Get("ETag") == et {
		t.Error("different window shares the ETag")
	}
}

// TestCanonicalizationSharesCacheEntries: spelling variants of the same
// request — swapped corners, explicit default pagination, float
// spellings — land on one cache entry and one ETag.
func TestCanonicalizationSharesCacheEntries(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	base := getRec(t, h, "/v1/window?x1=0&y1=0&x2=100&y2=100&t1=0&t2=100", nil)
	et := base.Header().Get("ETag")
	for _, variant := range []string{
		"/v1/window?x2=0&y2=0&x1=100&y1=100&t1=0&t2=100",         // mirrored corners
		"/v1/window?x1=0.0&y1=0&x2=1e2&y2=100.0&t1=0&t2=100",     // float spellings
		"/v1/window?x1=0&y1=0&x2=100&y2=100&t1=0&t2=100&offset=0", // explicit default
	} {
		rec := getRec(t, h, variant, nil)
		if rec.Header().Get("X-MO-Cache") != "hit" {
			t.Errorf("%s: X-MO-Cache = %q, want hit (canonicalization failed)", variant, rec.Header().Get("X-MO-Cache"))
		}
		if rec.Header().Get("ETag") != et {
			t.Errorf("%s: ETag = %q, want %q", variant, rec.Header().Get("ETag"), et)
		}
	}
	// SQL spelling variants share the /v1/query entry the same way.
	q1 := getRec(t, h, "/v1/query?q=SELECT+id+FROM+planes+LIMIT+2", nil)
	if q1.Code != 200 {
		t.Fatalf("query: %d %s", q1.Code, q1.Body.String())
	}
	q2 := getRec(t, h, "/v1/query?q=select++id+from+planes+limit+2", nil)
	if q2.Header().Get("X-MO-Cache") != "hit" {
		t.Errorf("case/space SQL variant missed the cache: %q", q2.Header().Get("X-MO-Cache"))
	}
	if q2.Body.String() != q1.Body.String() {
		t.Error("query cache returned different bytes for the same canonical SQL")
	}
}

// TestEpochAdvanceInvalidatesAndRetags is the satellite acceptance
// test, serialised: (a) ?sync=1 gives read-your-writes, (b) a window
// query cached before the write must not serve stale after the epoch
// advances, (c) the ETag changes exactly when the epoch does — repeat
// reads inside one epoch keep the tag, a flush moves it.
func TestEpochAdvanceInvalidatesAndRetags(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	h := s.Handler()
	url := "/v1/window?x1=0&y1=0&x2=100&y2=100&t1=0&t2=100"

	empty := getRec(t, h, url, nil)
	et0 := empty.Header().Get("ETag")
	epoch0 := empty.Header().Get("X-MO-Epoch")
	var body0 map[string]any
	if err := json.Unmarshal(empty.Body.Bytes(), &body0); err != nil {
		t.Fatal(err)
	}
	if body0["total"].(float64) != 0 {
		t.Fatalf("pre-write window not empty: %v", body0)
	}
	// Same epoch, same tag, cache hit.
	again := getRec(t, h, url, nil)
	if again.Header().Get("ETag") != et0 || again.Header().Get("X-MO-Cache") != "hit" {
		t.Fatalf("intra-epoch repeat: etag %q cache %q", again.Header().Get("ETag"), again.Header().Get("X-MO-Cache"))
	}

	// (a) Write with read-your-writes.
	code, ack := post(t, h, "/v1/ingest?sync=1", `[{"id":"w1","t":0,"x":50,"y":50},{"id":"w1","t":10,"x":60,"y":50}]`)
	if code != http.StatusAccepted || ack["synced"] != true {
		t.Fatalf("ingest: %d %v", code, ack)
	}

	// (b) The same URL now sees the write — no stale cache hit.
	after := getRec(t, h, url, nil)
	var body1 map[string]any
	if err := json.Unmarshal(after.Body.Bytes(), &body1); err != nil {
		t.Fatal(err)
	}
	if body1["total"].(float64) != 1 {
		t.Fatalf("post-write window stale: %v (cache %s)", body1, after.Header().Get("X-MO-Cache"))
	}
	if after.Header().Get("X-MO-Cache") != "miss" {
		t.Errorf("post-write read served from cache: %q", after.Header().Get("X-MO-Cache"))
	}

	// (c) Epoch and tag moved together.
	et1 := after.Header().Get("ETag")
	epoch1 := after.Header().Get("X-MO-Epoch")
	if epoch1 == epoch0 {
		t.Fatalf("epoch did not advance across a synced write: %s", epoch1)
	}
	if et1 == et0 {
		t.Fatal("ETag survived an epoch advance")
	}
	// The old tag no longer revalidates; the new one does.
	if rec := getRec(t, h, url, map[string]string{"If-None-Match": et0}); rec.Code != 200 {
		t.Errorf("stale tag revalidated: %d", rec.Code)
	}
	if rec := getRec(t, h, url, map[string]string{"If-None-Match": et1}); rec.Code != http.StatusNotModified {
		t.Errorf("fresh tag did not revalidate: %d", rec.Code)
	}
	// A drop-only write (stale observation) must NOT advance the epoch
	// or move the tag: epochs track applied changes, not traffic.
	if code, _ := post(t, h, "/v1/ingest?sync=1", `[{"id":"w1","t":5,"x":0,"y":0}]`); code != http.StatusAccepted {
		t.Fatalf("stale-obs ingest: %d", code)
	}
	settled := getRec(t, h, url, nil)
	if settled.Header().Get("X-MO-Epoch") != epoch1 || settled.Header().Get("ETag") != et1 {
		t.Errorf("drop-only flush moved the epoch: %s -> %s", epoch1, settled.Header().Get("X-MO-Epoch"))
	}
}

// TestConcurrentIngestAndCachedReads is the -race satellite: writers
// POST /v1/ingest (some synced) while readers hammer one cached window
// query. Every reader must observe a monotonically consistent pair —
// the body it gets must match the epoch header's promise (total never
// exceeds what the final epoch holds, never decreases below what a
// previously observed epoch held).
func TestConcurrentIngestAndCachedReads(t *testing.T) {
	s, p := liveServer(t, ingest.Config{FlushSize: 4, MaxAge: time.Hour})
	h := s.Handler()
	url := "/v1/window?x1=0&y1=0&x2=10000&y2=10000&t1=0&t2=10000"

	const writers, readers, writes, reads = 2, 4, 25, 60
	var wg sync.WaitGroup
	var maxSeen atomic.Int64
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				id := fmt.Sprintf("c%d_%d", wr, i)
				syncArg := ""
				if i%5 == 0 {
					syncArg = "?sync=1"
				}
				body := fmt.Sprintf(`[{"id":%q,"t":0,"x":%d,"y":%d},{"id":%q,"t":10,"x":%d,"y":%d}]`,
					id, i, wr, id, i+1, wr)
				code, resp := post(t, h, "/v1/ingest"+syncArg, body)
				if code != http.StatusAccepted {
					t.Errorf("ingest %s: %d %v", id, code, resp)
					return
				}
			}
		}(wr)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			var lastTotal int64
			for i := 0; i < reads; i++ {
				rec := getRec(t, h, url, nil)
				if rec.Code != 200 {
					t.Errorf("read: %d %s", rec.Code, rec.Body.String())
					return
				}
				var body map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					t.Errorf("read body: %v", err)
					return
				}
				total := int64(body["total"].(float64))
				var epoch uint64
				fmt.Sscan(rec.Header().Get("X-MO-Epoch"), &epoch)
				// Within one reader, epochs and totals never go backward:
				// the epoch pointer is monotonic and epochs only grow.
				if epoch < lastEpoch {
					t.Errorf("epoch went backward: %d after %d", epoch, lastEpoch)
					return
				}
				if epoch == lastEpoch && total != lastTotal && lastEpoch != 0 {
					t.Errorf("two totals (%d, %d) inside epoch %d", lastTotal, total, epoch)
					return
				}
				if total < lastTotal {
					t.Errorf("total shrank: %d after %d", total, lastTotal)
					return
				}
				lastEpoch, lastTotal = epoch, total
				maxSeen.Store(max(maxSeen.Load(), total))
			}
		}()
	}
	wg.Wait()

	// After a final sync-flush, the epoch view holds every object.
	p.Flush()
	rec := getRec(t, h, url, nil)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if got := int64(body["total"].(float64)); got != writers*writes {
		t.Fatalf("final total = %d, want %d", got, writers*writes)
	}
	if maxSeen.Load() > writers*writes {
		t.Fatalf("a reader saw %d objects, more than were ever written", maxSeen.Load())
	}
}

// TestCacheDisabled: CacheBytes < 0 turns storage off; every read is a
// miss but correctness (and ETags) are unchanged.
func TestCacheDisabled(t *testing.T) {
	g := testServer(t)
	s, err := New(Config{ObjectIDs: g.ObjectIDs, Objects: g.Objects, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	first := getRec(t, h, testWindowURL, nil)
	second := getRec(t, h, testWindowURL, nil)
	if second.Header().Get("X-MO-Cache") != "miss" {
		t.Errorf("disabled cache reported %q", second.Header().Get("X-MO-Cache"))
	}
	if first.Header().Get("ETag") == "" || first.Header().Get("ETag") != second.Header().Get("ETag") {
		t.Error("ETags must not depend on the cache")
	}
	if rec := getRec(t, h, testWindowURL, map[string]string{"If-None-Match": first.Header().Get("ETag")}); rec.Code != http.StatusNotModified {
		t.Errorf("304 must work without a cache: %d", rec.Code)
	}
}

// TestMetricsExposeCacheAndEpoch: /v1/metrics carries the cache
// counters and the epoch gauge after traffic.
func TestMetricsExposeCacheAndEpoch(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	h := s.Handler()
	if code, _ := post(t, h, "/v1/ingest?sync=1", `[{"id":"m1","t":0,"x":1,"y":1},{"id":"m1","t":5,"x":2,"y":1}]`); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	getRec(t, h, testWindowURL, nil)
	getRec(t, h, testWindowURL, nil)
	_, body := get(t, h, "/v1/metrics")
	cacheStats, ok := body["cache"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing cache section: %v", body)
	}
	if cacheStats["hits"].(float64) < 1 || cacheStats["misses"].(float64) < 1 {
		t.Errorf("cache counters = %v", cacheStats)
	}
	if cacheStats["bytes"].(float64) <= 0 || cacheStats["entries"].(float64) <= 0 {
		t.Errorf("cache gauges = %v", cacheStats)
	}
	epochStats, ok := body["epoch"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing epoch section: %v", body)
	}
	if epochStats["seq"].(float64) < 1 || epochStats["publishes"].(float64) < 1 {
		t.Errorf("epoch stats = %v", epochStats)
	}
}
