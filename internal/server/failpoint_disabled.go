//go:build !faultinject

package server

// failpointHit is the production no-op behind the package's failpoint
// sites: the compiler inlines it away, so unfaulted builds carry no
// injection machinery on the hot path.
func failpointHit(string) error { return nil }
