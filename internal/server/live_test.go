package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/obs"
)

// liveQueryServer builds the full live stack the way cmd/moserver does:
// one obs registry shared by pipeline, subscription registry and
// server, with the pipeline's publish hook feeding the registry.
func liveQueryServer(t *testing.T, hb time.Duration) (*Server, *ingest.Pipeline, *live.Registry) {
	t.Helper()
	metrics := obs.New(0)
	reg := live.NewRegistry(live.Config{Metrics: metrics})
	p, err := ingest.Open(ingest.Config{
		FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 1 << 30,
		Metrics: metrics, OnPublish: reg.Notify,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close(); p.Close() })
	s, err := New(Config{Ingest: p, Live: reg, Metrics: metrics, SSEHeartbeat: hb})
	if err != nil {
		t.Fatal(err)
	}
	return s, p, reg
}

func ingestAndFlush(t *testing.T, p *ingest.Pipeline, batch []ingest.Observation) {
	t.Helper()
	if _, err := p.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	p.Flush()
}

// TestNearbyHTTP pins the /v1/nearby response shape: nearest-first
// ordering with exact interpolated positions, the strong ETag, and a
// 304 on revalidation within the same epoch.
func TestNearbyHTTP(t *testing.T) {
	s, p, _ := liveQueryServer(t, time.Minute)
	h := s.Handler()
	ingestAndFlush(t, p, []ingest.Observation{
		{ObjectID: "a", T: 0, X: 0, Y: 0}, {ObjectID: "a", T: 10, X: 10, Y: 0},
		{ObjectID: "b", T: 0, X: 100, Y: 0}, {ObjectID: "b", T: 10, X: 100, Y: 0},
		{ObjectID: "c", T: 0, X: 40, Y: 30}, {ObjectID: "c", T: 10, X: 40, Y: 30},
	})
	code, body := get(t, h, "/v1/nearby?x=0&y=0&t=5&k=2")
	if code != 200 || body["count"].(float64) != 2 {
		t.Fatalf("nearby: %d %v", code, body)
	}
	res := body["results"].([]any)
	r0 := res[0].(map[string]any)
	r1 := res[1].(map[string]any)
	// a interpolates to (5, 0) at t=5; c sits at (40, 30), dist 50.
	if r0["id"] != "a" || r0["x"].(float64) != 5 || r0["dist"].(float64) != 5 {
		t.Fatalf("first result: %v", r0)
	}
	if r1["id"] != "c" || math.Abs(r1["dist"].(float64)-50) > 1e-9 {
		t.Fatalf("second result: %v", r1)
	}

	// Radius query: only a falls within 20 of the origin at t=5.
	code, body = get(t, h, "/v1/nearby?x=0&y=0&t=5&radius=20")
	if code != 200 || body["count"].(float64) != 1 {
		t.Fatalf("radius query: %d %v", code, body)
	}

	// Strong ETag + 304 revalidation within the epoch.
	req := httptest.NewRequest("GET", "/v1/nearby?x=0&y=0&t=5&k=2", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	etag := rec.Header().Get("ETag")
	if etag == "" || strings.HasPrefix(etag, "W/") {
		t.Fatalf("want a strong ETag, got %q", etag)
	}
	req = httptest.NewRequest("GET", "/v1/nearby?x=0&y=0&t=5&k=2", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation: %d", rec.Code)
	}

	// A new epoch invalidates: the same query re-answers 200 with fresh
	// positions.
	ingestAndFlush(t, p, []ingest.Observation{{ObjectID: "b", T: 20, X: 1, Y: 1}})
	req = httptest.NewRequest("GET", "/v1/nearby?x=0&y=0&t=5&k=2", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("post-epoch revalidation: %d", rec.Code)
	}
}

// TestNearbyBadRequests covers the 400 surface: missing bounds, bad
// radius, bad numbers; plus 503 when ingestion is off.
func TestNearbyBadRequests(t *testing.T) {
	s, _, _ := liveQueryServer(t, time.Minute)
	h := s.Handler()
	for _, q := range []string{
		"/v1/nearby?x=0&y=0&t=5",            // neither k nor radius
		"/v1/nearby?x=0&y=0&t=5&k=0",        // k=0 alone is not a bound
		"/v1/nearby?x=0&y=0&t=5&radius=-3",  // negative radius
		"/v1/nearby?x=0&y=0&t=5&radius=abc", // unparsable radius
		"/v1/nearby?x=bogus&y=0&t=5&k=3",    // unparsable coordinate
	} {
		code, body := get(t, h, q)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %d %v", q, code, body)
		}
		if c, _ := envelope(t, body); c != CodeBadRequest {
			t.Fatalf("%s: error code %s", q, c)
		}
	}
	ro := testServer(t)
	code, body := get(t, ro.Handler(), "/v1/nearby?x=0&y=0&t=5&k=3")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("read-only nearby: %d %v", code, body)
	}
}

// TestSubscribeFlow walks the management surface: create, inspect,
// delete, and the 400/404/503 edges.
func TestSubscribeFlow(t *testing.T) {
	s, _, _ := liveQueryServer(t, time.Minute)
	h := s.Handler()
	code, body := post(t, h, "/v1/subscribe",
		`{"predicate":"inside","object":"bus","region":{"x1":200,"y1":200,"x2":100,"y2":100}}`)
	if code != http.StatusCreated {
		t.Fatalf("subscribe: %d %v", code, body)
	}
	id := body["subscription_id"].(string)
	// The swapped corners normalise, and the canonical form proves it.
	if body["predicate"] != "inside(bus, [100,100..200,200])" {
		t.Fatalf("canonical predicate: %v", body["predicate"])
	}
	if body["events_url"] != "/v1/subscribe/"+id+"/events" {
		t.Fatalf("events url: %v", body["events_url"])
	}
	code, body = get(t, h, "/v1/subscribe/"+id)
	if code != 200 || body["active"] != true || body["seq"].(float64) != 0 {
		t.Fatalf("info: %d %v", code, body)
	}

	req := httptest.NewRequest("DELETE", "/v1/subscribe/"+id, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	if code, _ := get(t, h, "/v1/subscribe/"+id); code != http.StatusNotFound {
		t.Fatalf("info after delete: %d", code)
	}

	for _, bad := range []string{
		`{`,
		`{"predicate":"inside","object":"bus"}`, // no region
		`{"predicate":"within","object":"bus","radius":-1}`,                          // bad radius
		`{"predicate":"appears","object":"bus","region":{"x2":1}}`,                   // appears takes no object
		`{"predicate":"sideways","object":"b","region":{"x2":1}}`,                    // unknown kind
		`{"predicate":"inside","object":"b","bogus":1}`,                              // unknown field
		`{"predicate":"inside","object":"b","region":{"x1":5,"x2":5,"y1":1,"y2":1}}`, // degenerate point region is fine
	} {
		code, resp := post(t, h, "/v1/subscribe", bad)
		if strings.Contains(bad, `"x1":5`) {
			if code != http.StatusCreated {
				t.Fatalf("point region rejected: %d %v", code, resp)
			}
			continue
		}
		if code != http.StatusBadRequest {
			t.Fatalf("body %s: want 400, got %d %v", bad, code, resp)
		}
	}

	ro := testServer(t)
	if code, _ := post(t, ro.Handler(), "/v1/subscribe", `{"predicate":"appears","region":{"x2":1,"y2":1}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("read-only subscribe: %d", code)
	}
	if code, _ := get(t, ro.Handler(), "/v1/subscribe/s1"); code != http.StatusServiceUnavailable {
		t.Fatalf("read-only info: %d", code)
	}
}

// sseClient reads one subscription's SSE stream off a live TCP server,
// decoding frames into events until the stream ends.
type sseClient struct {
	events []live.Event
	lagged int
	byes   int
}

func readSSE(t *testing.T, url string, stop <-chan struct{}, onOpen func()) sseClient {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Errorf("GET %s: %v", url, err)
		return sseClient{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Errorf("stream %s: %d %s", url, resp.StatusCode, resp.Header.Get("Content-Type"))
		return sseClient{}
	}
	if onOpen != nil {
		onOpen()
	}
	if stop != nil {
		go func() { <-stop; resp.Body.Close() }()
	}
	var c sseClient
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "lagged":
				c.lagged++
			case "bye":
				c.byes++
				return c
			case "enter", "leave":
				var e live.Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Errorf("bad event payload %q: %v", data, err)
				} else {
					c.events = append(c.events, e)
				}
			}
			event, data = "", ""
		}
	}
	return c
}

// TestSSEEndToEnd drives the whole path over real HTTP: subscribe,
// open the stream, move an object through the region, and read the
// edge events back with contiguous sequence numbers.
func TestSSEEndToEnd(t *testing.T) {
	s, p, _ := liveQueryServer(t, 50*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ingestAndFlush(t, p, []ingest.Observation{{ObjectID: "bus", T: 0, X: 0, Y: 0}})

	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json",
		strings.NewReader(`{"predicate":"inside","object":"bus","region":{"x1":100,"y1":100,"x2":200,"y2":200}}`))
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	eventsURL := ts.URL + created["events_url"].(string)
	subID := created["subscription_id"].(string)

	opened := make(chan struct{})
	done := make(chan sseClient, 1)
	go func() { done <- readSSE(t, eventsURL, nil, func() { close(opened) }) }()
	<-opened

	ingestAndFlush(t, p, []ingest.Observation{{ObjectID: "bus", T: 1, X: 150, Y: 150}}) // enter
	ingestAndFlush(t, p, []ingest.Observation{{ObjectID: "bus", T: 2, X: 160, Y: 150}}) // no edge
	ingestAndFlush(t, p, []ingest.Observation{{ObjectID: "bus", T: 3, X: 500, Y: 500}}) // leave

	// Unsubscribing ends the stream with a bye, which unblocks the reader.
	time.Sleep(100 * time.Millisecond)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/subscribe/"+subID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("unsubscribe: %v %v", err, resp)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var c sseClient
	select {
	case c = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after unsubscribe")
	}
	if len(c.events) != 2 || c.events[0].Edge != "enter" || c.events[1].Edge != "leave" {
		t.Fatalf("events: %+v", c.events)
	}
	if c.events[0].Seq != 1 || c.events[1].Seq != 2 || c.byes != 1 {
		t.Fatalf("sequencing: %+v byes=%d", c.events, c.byes)
	}
	if c.events[0].X != 150 || c.events[0].Object != "bus" || c.events[0].PubUnixNS == 0 {
		t.Fatalf("event payload: %+v", c.events[0])
	}
}

// TestSSEChurnUnderRace is the concurrency soak for the subsystem: with
// ingestion flushing continuously, many subscribers come and go over
// real HTTP streams, one deliberately slow consumer must observe
// drop-oldest with a lagged signal rather than stalling the pipeline,
// and when the storm ends the registry closes every stream and no
// goroutine leaks. Run under -race (tier-1 always does).
func TestSSEChurnUnderRace(t *testing.T) {
	before := runtime.NumGoroutine()
	s, p, reg := liveQueryServer(t, 20*time.Millisecond)
	ts := httptest.NewServer(s.Handler())

	subscribe := func() (string, string) {
		resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json",
			strings.NewReader(`{"predicate":"appears","region":{"x1":0,"y1":0,"x2":500,"y2":500}}`))
		if err != nil {
			t.Errorf("subscribe: %v", err)
			return "", ""
		}
		defer resp.Body.Close()
		var created map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil || resp.StatusCode != http.StatusCreated {
			t.Errorf("subscribe: %d %v", resp.StatusCode, err)
			return "", ""
		}
		return created["subscription_id"].(string), ts.URL + created["events_url"].(string)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest storm: objects teleport in and out of the watched region
	// every flush, so every epoch produces edges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]ingest.Observation, 8)
			for o := range batch {
				x := float64((i + o) % 2 * 1000) // alternates 0 and 1000: inside/outside
				batch[o] = ingest.Observation{ObjectID: fmt.Sprintf("g%d", o), T: float64(i), X: x, Y: 100}
			}
			if _, err := p.Ingest(batch); err != nil {
				return // pipeline closed during shutdown
			}
			p.Flush()
			time.Sleep(time.Millisecond)
		}
	}()

	// Churners: subscribe, read briefly, unsubscribe, repeat.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, url := subscribe()
				if id == "" {
					return
				}
				opened := make(chan struct{})
				readerDone := make(chan struct{})
				go func() { readSSE(t, url, nil, func() { close(opened) }); close(readerDone) }()
				<-opened
				time.Sleep(2 * time.Millisecond)
				req, _ := http.NewRequest("DELETE", ts.URL+"/v1/subscribe/"+id, nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				// Unsubscribe ends the stream with a bye; the reader exits.
				<-readerDone
			}
		}()
	}

	// The slow consumer: a tiny buffer and no reads while the storm
	// rages. It must be marked lagged with drops — never block ingest.
	slow, err := reg.Subscribe(live.Predicate{Kind: live.KindAppears,
		Region: geom.Rect{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}}, p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for slow.Info().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never dropped")
		}
		time.Sleep(time.Millisecond)
	}
	if evs, lagged := slow.Take(); !lagged || len(evs) == 0 {
		t.Fatalf("slow consumer: lagged=%v events=%d", lagged, len(evs))
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Shutdown in moserver's order: registry first (ends SSE streams),
	// then the HTTP server, then the pipeline (via cleanup).
	reg.Close()
	select {
	case <-slow.Done():
	default:
		t.Fatal("registry Close did not end the slow stream")
	}
	ts.Close()

	// Goroutine accounting: everything spawned here and inside the
	// subsystem must have exited.
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
