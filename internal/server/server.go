// Package server exposes a moving objects database over HTTP — the
// "data blade in a service" packaging a downstream user would deploy:
// SQL queries against the catalog, atinstant snapshots of tracked
// objects, and indexed spatio-temporal window queries. Responses are
// JSON; all handlers are read-only.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"movingdb/internal/db"
	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
)

// Server serves a catalog of relations plus an R-tree index over the
// moving point objects of one designated relation/column.
type Server struct {
	Catalog db.Catalog
	// Tracked objects for /atinstant and /window.
	ObjectIDs []string
	Objects   []moving.MPoint
	idx       *index.MPointIndex
}

// New builds a server over the catalog; the tracked objects (parallel
// id/value slices) feed the window index.
func New(cat db.Catalog, ids []string, objects []moving.MPoint) (*Server, error) {
	if len(ids) != len(objects) {
		return nil, errors.New("server: ids and objects length mismatch")
	}
	return &Server{
		Catalog:   cat,
		ObjectIDs: ids,
		Objects:   objects,
		idx:       index.BuildMPointIndex(objects),
	}, nil
}

// Handler returns the HTTP mux with all endpoints registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /atinstant", s.handleAtInstant)
	mux.HandleFunc("GET /window", s.handleWindow)
	mux.HandleFunc("GET /objects", s.handleObjects)
	return mux
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleQuery executes ?q=<SELECT ...> and returns columns and rows.
// Only scalar result columns are rendered; moving/spatial values are
// summarised.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	res, err := db.Query(s.Catalog, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cols := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		cols[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
	}
	rows := make([][]any, 0, res.Len())
	for _, t := range res.Scan() {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = renderValue(v)
		}
		rows = append(rows, row)
	}
	writeJSON(w, map[string]any{"columns": cols, "rows": rows})
}

func renderValue(v any) any {
	switch x := v.(type) {
	case string, float64, bool, int64:
		return x
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprintf("%v", v)
}

// handleAtInstant returns the position of every tracked object defined
// at ?t=.
func (s *Server) handleAtInstant(w http.ResponseWriter, r *http.Request) {
	t, err := floatParam(r, "t")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	type pos struct {
		ID string  `json:"id"`
		X  float64 `json:"x"`
		Y  float64 `json:"y"`
	}
	var out []pos
	for i, p := range s.Objects {
		if v := p.AtInstant(temporal.Instant(t)); v.Defined() {
			out = append(out, pos{ID: s.ObjectIDs[i], X: v.P.X, Y: v.P.Y})
		}
	}
	writeJSON(w, map[string]any{"t": t, "positions": out})
}

// handleWindow answers ?x1=&y1=&x2=&y2=&t1=&t2= with the ids of objects
// inside the window during the interval, via the R-tree with exact
// refinement.
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	var vals [6]float64
	for i, name := range []string{"x1", "y1", "x2", "y2", "t1", "t2"} {
		v, err := floatParam(r, name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		vals[i] = v
	}
	rect := geom.Rect{
		MinX: min(vals[0], vals[2]), MinY: min(vals[1], vals[3]),
		MaxX: max(vals[0], vals[2]), MaxY: max(vals[1], vals[3]),
	}
	if vals[5] < vals[4] {
		writeErr(w, http.StatusBadRequest, errors.New("t2 before t1"))
		return
	}
	iv := temporal.Closed(temporal.Instant(vals[4]), temporal.Instant(vals[5]))
	hits := s.idx.Window(rect, iv)
	ids := make([]string, 0, len(hits))
	for _, oi := range hits {
		ids = append(ids, s.ObjectIDs[oi])
	}
	writeJSON(w, map[string]any{"ids": ids})
}

// handleObjects lists the tracked objects with their definition times
// and unit counts.
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	type obj struct {
		ID    string  `json:"id"`
		Units int     `json:"units"`
		From  float64 `json:"from"`
		To    float64 `json:"to"`
	}
	out := make([]obj, 0, len(s.Objects))
	for i, p := range s.Objects {
		lo, _ := p.DefTime().MinInstant()
		hi, _ := p.DefTime().MaxInstant()
		out = append(out, obj{ID: s.ObjectIDs[i], Units: p.M.Len(), From: float64(lo), To: float64(hi)})
	}
	writeJSON(w, map[string]any{"objects": out})
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %s parameter", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}
