// Package server exposes a moving objects database over HTTP — the
// "data blade in a service" packaging a downstream user would deploy:
// SQL queries against the catalog, atinstant snapshots of tracked
// objects, and indexed spatio-temporal window queries.
//
// The v1 API surface is versioned under /v1/ (legacy unversioned routes
// remain as deprecated aliases), every request runs under a deadline
// that the query evaluator observes, errors share one JSON envelope,
// list responses paginate, and an observability registry (internal/obs)
// counts requests, latencies, per-operator timings and slow queries,
// served at /v1/metrics.
//
// With a live ingestion pipeline configured, POST /v1/ingest accepts
// observation batches (202 on enqueue, 429 under backpressure) and the
// object-reading routes (/v1/atinstant, /v1/window, /v1/objects) answer
// from the live store, so acknowledged writes become queryable; without
// one, every handler is read-only over the static objects.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/ingest"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/temporal"
)

// Config assembles a Server. The zero value of every tuning field gets
// a sensible default; only Catalog/ObjectIDs/Objects carry data.
type Config struct {
	// Catalog names the relations /v1/query may reference. A nil
	// catalog serves an empty database.
	Catalog db.Catalog
	// ObjectIDs and Objects are the tracked objects behind
	// /v1/atinstant, /v1/window and /v1/objects (parallel slices; the
	// objects feed the R-tree window index).
	ObjectIDs []string
	Objects   []moving.MPoint
	// Ingest enables the live write path: POST /v1/ingest feeds the
	// pipeline and the object-reading routes answer from its store
	// instead of the static Objects. Nil serves read-only.
	Ingest *ingest.Pipeline
	// MaxIngestBatch bounds the number of observations per POST
	// /v1/ingest request. Default 10000.
	MaxIngestBatch int

	// QueryTimeout is the default evaluation deadline per request
	// (overridable per request with ?timeout_ms=). Default 10s.
	QueryTimeout time.Duration
	// MaxTimeout caps ?timeout_ms. Default 60s.
	MaxTimeout time.Duration
	// MaxQueryLen bounds the ?q= string. Default 8192 bytes.
	MaxQueryLen int
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// DefaultLimit and MaxLimit control pagination of list responses.
	// Defaults 1000 and 10000.
	DefaultLimit int
	MaxLimit     int
	// SlowQueryThreshold is the latency above which a /v1/query request
	// lands in the slow-query log. Default 500ms.
	SlowQueryThreshold time.Duration
	// Logger receives panics and slow queries. Default: discard.
	Logger *log.Logger
	// Metrics is the observability registry; one is created when nil.
	Metrics *obs.Metrics
}

// withDefaults fills in the zero-valued tuning fields.
func (c Config) withDefaults() Config {
	if c.Catalog == nil {
		c.Catalog = db.Catalog{}
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxQueryLen == 0 {
		c.MaxQueryLen = 8192
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultLimit == 0 {
		c.DefaultLimit = 1000
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = 10000
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 500 * time.Millisecond
	}
	if c.MaxIngestBatch == 0 {
		c.MaxIngestBatch = 10000
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Metrics == nil {
		c.Metrics = obs.New(0)
	}
	return c
}

// Server serves a catalog of relations plus an R-tree index over the
// tracked moving point objects.
type Server struct {
	// Catalog, ObjectIDs and Objects mirror the Config data fields.
	Catalog   db.Catalog
	ObjectIDs []string
	Objects   []moving.MPoint

	cfg     Config
	idx     *index.MPointIndex
	ingest  *ingest.Pipeline
	logger  *log.Logger
	metrics *obs.Metrics
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	if len(cfg.ObjectIDs) != len(cfg.Objects) {
		return nil, errors.New("server: ids and objects length mismatch")
	}
	cfg = cfg.withDefaults()
	return &Server{
		Catalog:   cfg.Catalog,
		ObjectIDs: cfg.ObjectIDs,
		Objects:   cfg.Objects,
		cfg:       cfg,
		idx:       index.BuildMPointIndex(cfg.Objects),
		ingest:    cfg.Ingest,
		logger:    cfg.Logger,
		metrics:   cfg.Metrics,
	}, nil
}

// Metrics returns the server's observability registry.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Handler returns the HTTP mux with the v1 routes, the deprecated
// unversioned aliases, and an enveloped 404 for everything else. Each
// alias is named explicitly in the route table — deriving it by slicing
// the versioned path breaks as soon as a route (like POST /v1/ingest)
// has no legacy counterpart.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range []struct {
		method, path, alias string
		h                   http.HandlerFunc
	}{
		{"GET", "/v1/query", "/query", s.handleQuery},
		{"GET", "/v1/atinstant", "/atinstant", s.handleAtInstant},
		{"GET", "/v1/window", "/window", s.handleWindow},
		{"GET", "/v1/objects", "/objects", s.handleObjects},
		{"GET", "/v1/metrics", "/metrics", s.handleMetrics},
		{"GET", "/v1/healthz", "/healthz", s.handleHealthz},
		{"POST", "/v1/ingest", "", s.handleIngest},
	} {
		h := s.instrument(rt.path, rt.h)
		mux.Handle(rt.method+" "+rt.path, h)
		if rt.alias != "" {
			mux.Handle(rt.method+" "+rt.alias, deprecated(rt.path, h))
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
	})
	return mux
}

// requestContext derives the evaluation context: the request context
// (canceled when the client disconnects) plus the server's default
// query deadline, overridable per request with ?timeout_ms= up to
// MaxTimeout, with the obs registry attached for operator timings.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := obs.NewContext(r.Context(), s.metrics)
	timeout := s.cfg.QueryTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad timeout_ms %q: want a positive integer", raw)
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, cancel, nil
}

// pageParams reads ?limit= and ?offset= with the configured defaults
// and caps.
func (s *Server) pageParams(r *http.Request) (limit, offset int, err error) {
	limit = s.cfg.DefaultLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, perr := strconv.Atoi(raw)
		if perr != nil || v <= 0 {
			return 0, 0, fmt.Errorf("bad limit %q: want a positive integer", raw)
		}
		limit = v
	}
	if limit > s.cfg.MaxLimit {
		limit = s.cfg.MaxLimit
	}
	if raw := r.URL.Query().Get("offset"); raw != "" {
		v, perr := strconv.Atoi(raw)
		if perr != nil || v < 0 {
			return 0, 0, fmt.Errorf("bad offset %q: want a non-negative integer", raw)
		}
		offset = v
	}
	return limit, offset, nil
}

// pageBounds clips [offset, offset+limit) to n elements.
func pageBounds(n, limit, offset int) (lo, hi int) {
	if offset > n {
		offset = n
	}
	hi = offset + limit
	if hi > n {
		hi = n
	}
	return offset, hi
}

// handleQuery executes ?q=<SELECT ...> under the request deadline and
// returns columns and rows. Only scalar result columns are rendered;
// moving/spatial values are summarised.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "missing q parameter")
		return
	}
	if len(q) > s.cfg.MaxQueryLen {
		writeError(w, http.StatusBadRequest, CodeQueryTooLong,
			fmt.Sprintf("query is %d bytes; the limit is %d", len(q), s.cfg.MaxQueryLen))
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	defer cancel()
	start := time.Now()
	res, err := db.QueryContext(ctx, s.Catalog, q)
	elapsed := time.Since(start)
	timedOut := err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
	if timedOut || elapsed >= s.cfg.SlowQueryThreshold {
		entry := obs.SlowQuery{
			Route:    "/v1/query",
			Query:    truncate(q, 200),
			Millis:   float64(elapsed.Nanoseconds()) / 1e6,
			Status:   http.StatusOK,
			UnixMS:   time.Now().UnixMilli(),
			TimedOut: timedOut,
		}
		if timedOut {
			entry.Status = http.StatusRequestTimeout
		}
		s.metrics.RecordSlowQuery(entry)
		s.logger.Printf("server: slow query (%.1fms, timed_out=%v): %s", entry.Millis, timedOut, entry.Query)
	}
	if err != nil {
		writeEvalError(w, err)
		return
	}
	cols := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		cols[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
	}
	rows := make([][]any, 0, res.Len())
	for _, t := range res.Scan() {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = renderValue(v)
		}
		rows = append(rows, row)
	}
	writeJSON(w, map[string]any{"columns": cols, "rows": rows, "elapsed_ms": float64(elapsed.Nanoseconds()) / 1e6})
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func renderValue(v any) any {
	switch x := v.(type) {
	case string, float64, bool, int64:
		return x
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprintf("%v", v)
}

// handleAtInstant returns the position of every tracked object defined
// at ?t=. The scan over the objects observes the request deadline.
func (s *Server) handleAtInstant(w http.ResponseWriter, r *http.Request) {
	t, err := floatParam(r, "t")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if s.ingest != nil {
		writeJSON(w, map[string]any{"t": t, "positions": s.ingest.AtInstant(temporal.Instant(t))})
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	defer cancel()
	type pos struct {
		ID string  `json:"id"`
		X  float64 `json:"x"`
		Y  float64 `json:"y"`
	}
	out := []pos{}
	for i, p := range s.Objects {
		if i%256 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				writeEvalError(w, cerr)
				return
			}
		}
		if v := p.AtInstant(temporal.Instant(t)); v.Defined() {
			out = append(out, pos{ID: s.ObjectIDs[i], X: v.P.X, Y: v.P.Y})
		}
	}
	writeJSON(w, map[string]any{"t": t, "positions": out})
}

// handleWindow answers ?x1=&y1=&x2=&y2=&t1=&t2= with the ids of objects
// inside the window during the interval, via the R-tree with exact
// refinement. Results paginate with ?limit=&offset=; the envelope
// carries the total match count.
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	var vals [6]float64
	for i, name := range []string{"x1", "y1", "x2", "y2", "t1", "t2"} {
		v, err := floatParam(r, name)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		vals[i] = v
	}
	if vals[5] < vals[4] {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "t2 before t1")
		return
	}
	limit, offset, err := s.pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	rect := geom.Rect{
		MinX: min(vals[0], vals[2]), MinY: min(vals[1], vals[3]),
		MaxX: max(vals[0], vals[2]), MaxY: max(vals[1], vals[3]),
	}
	iv := temporal.Closed(temporal.Instant(vals[4]), temporal.Instant(vals[5]))
	var ids []string
	var total int
	if s.ingest != nil {
		// Live path: the dynamic index (base tree + delta buffer) sees
		// every flushed write.
		all := s.ingest.Window(rect, iv)
		total = len(all)
		lo, hi := pageBounds(total, limit, offset)
		ids = all[lo:hi]
	} else {
		hits := s.idx.Window(rect, iv)
		total = len(hits)
		lo, hi := pageBounds(total, limit, offset)
		ids = make([]string, 0, hi-lo)
		for _, oi := range hits[lo:hi] {
			ids = append(ids, s.ObjectIDs[oi])
		}
	}
	writeJSON(w, map[string]any{"total": total, "limit": limit, "offset": offset, "ids": ids})
}

// handleObjects lists the tracked objects with their definition times
// and unit counts, paginated with ?limit=&offset=.
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := s.pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if s.ingest != nil {
		sums := s.ingest.Summaries()
		lo, hi := pageBounds(len(sums), limit, offset)
		writeJSON(w, map[string]any{"total": len(sums), "limit": limit, "offset": offset, "objects": sums[lo:hi]})
		return
	}
	type obj struct {
		ID    string  `json:"id"`
		Units int     `json:"units"`
		From  float64 `json:"from"`
		To    float64 `json:"to"`
	}
	lo, hi := pageBounds(len(s.Objects), limit, offset)
	out := make([]obj, 0, hi-lo)
	for i := lo; i < hi; i++ {
		p := s.Objects[i]
		loT, _ := p.DefTime().MinInstant()
		hiT, _ := p.DefTime().MaxInstant()
		out = append(out, obj{ID: s.ObjectIDs[i], Units: p.M.Len(), From: float64(loT), To: float64(hiT)})
	}
	writeJSON(w, map[string]any{"total": len(s.Objects), "limit": limit, "offset": offset, "objects": out})
}

// handleMetrics serves the observability snapshot (expvar-style JSON).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.metrics.Snapshot())
}

// handleHealthz reports liveness and the sizes of the served data; with
// a live pipeline it also carries the pipeline counters and the health
// state machine. A degraded store (writes failing past the retry
// budget) reports status "degraded" with its cause — reads still work,
// so the process stays "live" for orchestrators that only check the
// HTTP status, while the body tells operators what is wrong.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":    "ok",
		"objects":   len(s.Objects),
		"relations": len(s.Catalog),
	}
	if s.ingest != nil {
		st := s.ingest.Stats()
		body["objects"] = st.Objects
		body["ingest"] = st
		h := s.ingest.Health()
		body["health"] = h
		if h.Degraded {
			body["status"] = "degraded"
			body["cause"] = h.Cause
		}
	}
	writeJSON(w, body)
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %s parameter", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}
