// Package server exposes a moving objects database over HTTP — the
// "data blade in a service" packaging a downstream user would deploy:
// SQL queries against the catalog, atinstant snapshots of tracked
// objects, and indexed spatio-temporal window queries.
//
// The v1 API surface is versioned under /v1/ (legacy unversioned routes
// remain as deprecated aliases), every request runs under a deadline
// that the query evaluator observes, errors share one JSON envelope,
// list responses paginate, and an observability registry (internal/obs)
// counts requests, latencies, per-operator timings and slow queries,
// served at /v1/metrics.
//
// With a live ingestion pipeline configured, POST /v1/ingest accepts
// observation batches (202 on enqueue, 429 under backpressure) and the
// object-reading routes (/v1/atinstant, /v1/window, /v1/objects) answer
// from the live store, so acknowledged writes become queryable; without
// one, every handler is read-only over the static objects.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"movingdb/internal/cache"
	"movingdb/internal/db"
	"movingdb/internal/index"
	"movingdb/internal/ingest"
	"movingdb/internal/live"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/temporal"
)

// Config assembles a Server. The zero value of every tuning field gets
// a sensible default; only Catalog/ObjectIDs/Objects carry data.
type Config struct {
	// Catalog names the relations /v1/query may reference. A nil
	// catalog serves an empty database.
	Catalog db.Catalog
	// ObjectIDs and Objects are the tracked objects behind
	// /v1/atinstant, /v1/window and /v1/objects (parallel slices; the
	// objects feed the R-tree window index).
	ObjectIDs []string
	Objects   []moving.MPoint
	// Ingest enables the live write path: POST /v1/ingest feeds the
	// pipeline and the object-reading routes answer from its store
	// instead of the static Objects. Nil serves read-only.
	Ingest *ingest.Pipeline
	// MaxIngestBatch bounds the number of observations per POST
	// /v1/ingest request. Default 10000.
	MaxIngestBatch int
	// Live is the standing-query registry behind /v1/subscribe and the
	// SSE event streams. Nil disables the subscription routes (503
	// unavailable); wire the same registry into the pipeline's OnPublish
	// hook so events flow.
	Live *live.Registry
	// SSEHeartbeat is the idle-keepalive interval of event streams.
	// Default 15s.
	SSEHeartbeat time.Duration

	// Cache is the result cache behind the read routes. Nil builds the
	// in-memory sharded LRU with CacheBytes budget; supply an adapter to
	// use an external tier.
	Cache cache.ResultCache
	// CacheBytes is the in-memory cache budget when Cache is nil:
	// 0 selects the default (32 MiB), negative disables result caching
	// (misses still coalesce).
	CacheBytes int64
	// CacheShards is the shard count of the in-memory cache (0 selects
	// the default; rounded up to a power of two).
	CacheShards int

	// QueryTimeout is the default evaluation deadline per request
	// (overridable per request with ?timeout_ms=). Default 10s.
	QueryTimeout time.Duration
	// MaxTimeout caps ?timeout_ms. Default 60s.
	MaxTimeout time.Duration
	// MaxQueryLen bounds the ?q= string. Default 8192 bytes.
	MaxQueryLen int
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// DefaultLimit and MaxLimit control pagination of list responses.
	// Defaults 1000 and 10000.
	DefaultLimit int
	MaxLimit     int
	// SlowQueryThreshold is the latency above which a /v1/query request
	// lands in the slow-query log. Default 500ms.
	SlowQueryThreshold time.Duration
	// Logger receives panics and slow queries. Default: discard.
	Logger *log.Logger
	// Metrics is the observability registry; one is created when nil.
	Metrics *obs.Metrics
}

// withDefaults fills in the zero-valued tuning fields.
func (c Config) withDefaults() Config {
	if c.Catalog == nil {
		c.Catalog = db.Catalog{}
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxQueryLen == 0 {
		c.MaxQueryLen = 8192
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultLimit == 0 {
		c.DefaultLimit = 1000
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = 10000
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 500 * time.Millisecond
	}
	if c.MaxIngestBatch == 0 {
		c.MaxIngestBatch = 10000
	}
	if c.SSEHeartbeat == 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Metrics == nil {
		c.Metrics = obs.New(0)
	}
	return c
}

// Server serves a catalog of relations plus an R-tree index over the
// tracked moving point objects.
type Server struct {
	// Catalog, ObjectIDs and Objects mirror the Config data fields.
	Catalog   db.Catalog
	ObjectIDs []string
	Objects   []moving.MPoint

	cfg     Config
	idx     *index.MPointIndex
	ingest  *ingest.Pipeline
	live    *live.Registry
	loader  *cache.Loader
	logger  *log.Logger
	metrics *obs.Metrics
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	if len(cfg.ObjectIDs) != len(cfg.Objects) {
		return nil, errors.New("server: ids and objects length mismatch")
	}
	cfg = cfg.withDefaults()
	rc := cfg.Cache
	if rc == nil && cfg.CacheBytes >= 0 {
		rc = cache.NewMemory(cfg.CacheBytes, cfg.CacheShards, cfg.Metrics)
	}
	return &Server{
		Catalog:   cfg.Catalog,
		ObjectIDs: cfg.ObjectIDs,
		Objects:   cfg.Objects,
		cfg:       cfg,
		idx:       index.BuildMPointIndex(cfg.Objects),
		ingest:    cfg.Ingest,
		live:      cfg.Live,
		loader:    cache.NewLoader(rc),
		logger:    cfg.Logger,
		metrics:   cfg.Metrics,
	}, nil
}

// Metrics returns the server's observability registry.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Handler returns the HTTP mux with the v1 routes, the deprecated
// unversioned aliases, and an enveloped 404 for everything else. Each
// alias is named explicitly in the route table — deriving it by slicing
// the versioned path breaks as soon as a route (like POST /v1/ingest)
// has no legacy counterpart.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range []struct {
		method, path, alias string
		h                   http.HandlerFunc
	}{
		{"GET", "/v1/query", "/query", s.handleQuery},
		{"GET", "/v1/atinstant", "/atinstant", s.handleAtInstant},
		{"GET", "/v1/window", "/window", s.handleWindow},
		{"GET", "/v1/objects", "/objects", s.handleObjects},
		{"GET", "/v1/metrics", "/metrics", s.handleMetrics},
		{"GET", "/v1/healthz", "/healthz", s.handleHealthz},
		{"POST", "/v1/ingest", "", s.handleIngest},
		{"GET", "/v1/nearby", "", s.handleNearby},
		{"POST", "/v1/subscribe", "", s.handleSubscribe},
		{"GET", "/v1/subscribe/{id}", "", s.handleSubscription},
		{"DELETE", "/v1/subscribe/{id}", "", s.handleUnsubscribe},
		{"GET", "/v1/subscribe/{id}/events", "", s.handleEvents},
	} {
		h := s.instrument(rt.path, rt.h)
		mux.Handle(rt.method+" "+rt.path, h)
		if rt.alias != "" {
			mux.Handle(rt.method+" "+rt.alias, deprecated(rt.path, h))
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
	})
	return mux
}

// evalContext derives the evaluation context: the request context
// (canceled when the client disconnects) plus the decoded per-request
// deadline, with the obs registry attached for operator timings.
func (s *Server) evalContext(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(obs.NewContext(r.Context(), s.metrics), timeout)
}

// pageBounds clips [offset, offset+limit) to n elements.
func pageBounds(n, limit, offset int) (lo, hi int) {
	if offset > n {
		offset = n
	}
	hi = offset + limit
	if hi > n {
		hi = n
	}
	return offset, hi
}

// handleQuery executes ?q=<SELECT ...> under the request deadline and
// returns columns and rows. Only scalar result columns are rendered;
// moving/spatial values are summarised. Results are cached under the
// canonical SQL and the pinned epoch; evaluation time travels in the
// X-MO-Elapsed response header (milliseconds, only on the evaluating
// request) instead of the body, so cached bytes are stable and the
// route carries the same strong ETag as the other read routes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, derr := s.decodeQuery(r)
	if derr != nil {
		writeDecodeError(w, derr)
		return
	}
	ep := s.pinEpoch()
	catalog := s.Catalog
	s.serveCached(w, r, "/v1/query", req.canonical(), epochSeq(ep), true, func() (any, error) {
		snap := db.Snapshot{Catalog: catalog, Epoch: epochSeq(ep)}
		ctx, cancel := s.evalContext(r, req.Timeout)
		defer cancel()
		start := time.Now()
		res, err := snap.QueryContext(ctx, req.SQL)
		elapsed := time.Since(start)
		timedOut := err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
		if timedOut || elapsed >= s.cfg.SlowQueryThreshold {
			entry := obs.SlowQuery{
				Route:    "/v1/query",
				Query:    truncate(req.Raw, 200),
				Millis:   float64(elapsed.Nanoseconds()) / 1e6,
				Status:   http.StatusOK,
				UnixMS:   time.Now().UnixMilli(),
				TimedOut: timedOut,
			}
			if timedOut {
				entry.Status = http.StatusRequestTimeout
			}
			s.metrics.RecordSlowQuery(entry)
			s.logger.Printf("server: slow query (%.1fms, timed_out=%v): %s", entry.Millis, timedOut, entry.Query)
		}
		if err != nil {
			return nil, err
		}
		// Headers may still be set here: serveCached writes the response
		// only after this closure returns. Coalesced and cache-hit
		// requests simply lack the header — elapsed time describes an
		// evaluation, and they did not run one.
		w.Header().Set("X-MO-Elapsed", fmt.Sprintf("%.3f", float64(elapsed.Nanoseconds())/1e6))
		cols := make([]string, len(res.Schema))
		for i, c := range res.Schema {
			cols[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
		}
		rows := make([][]any, 0, res.Len())
		for _, t := range res.Scan() {
			row := make([]any, len(t))
			for i, v := range t {
				row[i] = renderValue(v)
			}
			rows = append(rows, row)
		}
		return map[string]any{"columns": cols, "rows": rows}, nil
	})
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func renderValue(v any) any {
	switch x := v.(type) {
	case string, float64, bool, int64:
		return x
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprintf("%v", v)
}

// handleAtInstant returns the position of every tracked object defined
// at ?t=, evaluated against the pinned epoch and cached under it. The
// static scan observes the request deadline.
func (s *Server) handleAtInstant(w http.ResponseWriter, r *http.Request) {
	req, derr := s.decodeAtInstant(r)
	if derr != nil {
		writeDecodeError(w, derr)
		return
	}
	ep := s.pinEpoch()
	s.serveCached(w, r, "/v1/atinstant", req.canonical(), epochSeq(ep), true, func() (any, error) {
		if ep != nil {
			return map[string]any{"t": req.T, "positions": ep.AtInstant(temporal.Instant(req.T))}, nil
		}
		ctx, cancel := s.evalContext(r, req.Timeout)
		defer cancel()
		type pos struct {
			ID string  `json:"id"`
			X  float64 `json:"x"`
			Y  float64 `json:"y"`
		}
		out := []pos{}
		for i, p := range s.Objects {
			if i%256 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
			}
			if v := p.AtInstant(temporal.Instant(req.T)); v.Defined() {
				out = append(out, pos{ID: s.ObjectIDs[i], X: v.P.X, Y: v.P.Y})
			}
		}
		return map[string]any{"t": req.T, "positions": out}, nil
	})
}

// handleWindow answers ?x1=&y1=&x2=&y2=&t1=&t2= with the ids of objects
// inside the window during the interval, via the R-tree with exact
// refinement. Results paginate with ?limit=&offset=; the envelope
// carries the total match count.
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	req, derr := s.decodeWindow(r)
	if derr != nil {
		writeDecodeError(w, derr)
		return
	}
	ep := s.pinEpoch()
	s.serveCached(w, r, "/v1/window", req.canonical(), epochSeq(ep), true, func() (any, error) {
		iv := temporal.Closed(temporal.Instant(req.T1), temporal.Instant(req.T2))
		var ids []string
		var total int
		if ep != nil {
			// Live path: the epoch's immutable index snapshot (base tree +
			// delta prefix) sees every write flushed before the pin.
			all := ep.Window(req.Rect, iv)
			total = len(all)
			lo, hi := pageBounds(total, req.Page.Limit, req.Page.Offset)
			ids = all[lo:hi]
		} else {
			hits := s.idx.Window(req.Rect, iv)
			total = len(hits)
			lo, hi := pageBounds(total, req.Page.Limit, req.Page.Offset)
			ids = make([]string, 0, hi-lo)
			for _, oi := range hits[lo:hi] {
				ids = append(ids, s.ObjectIDs[oi])
			}
		}
		if ids == nil {
			ids = []string{}
		}
		return map[string]any{"total": total, "limit": req.Page.Limit, "offset": req.Page.Offset, "ids": ids}, nil
	})
}

// handleObjects lists the tracked objects with their definition times
// and unit counts, paginated with ?limit=&offset=.
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	req, derr := s.decodeObjects(r)
	if derr != nil {
		writeDecodeError(w, derr)
		return
	}
	ep := s.pinEpoch()
	s.serveCached(w, r, "/v1/objects", req.canonical(), epochSeq(ep), true, func() (any, error) {
		limit, offset := req.Page.Limit, req.Page.Offset
		if ep != nil {
			sums := ep.Summaries()
			lo, hi := pageBounds(len(sums), limit, offset)
			return map[string]any{"total": len(sums), "limit": limit, "offset": offset, "objects": sums[lo:hi]}, nil
		}
		type obj struct {
			ID    string  `json:"id"`
			Units int     `json:"units"`
			From  float64 `json:"from"`
			To    float64 `json:"to"`
		}
		lo, hi := pageBounds(len(s.Objects), limit, offset)
		out := make([]obj, 0, hi-lo)
		for i := lo; i < hi; i++ {
			p := s.Objects[i]
			loT, _ := p.DefTime().MinInstant()
			hiT, _ := p.DefTime().MaxInstant()
			out = append(out, obj{ID: s.ObjectIDs[i], Units: p.M.Len(), From: float64(loT), To: float64(hiT)})
		}
		return map[string]any{"total": len(s.Objects), "limit": limit, "offset": offset, "objects": out}, nil
	})
}

// handleMetrics serves the observability snapshot (expvar-style JSON).
// Never cached — it is the cache's own scoreboard.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("X-MO-Epoch", strconv.FormatUint(epochSeq(s.pinEpoch()), 10))
	writeJSON(w, s.metrics.Snapshot())
}

// handleHealthz reports liveness and the sizes of the served data; with
// a live pipeline it also carries the pipeline counters and the health
// state machine. A degraded store (writes failing past the retry
// budget) reports status "degraded" with its cause — reads still work,
// so the process stays "live" for orchestrators that only check the
// HTTP status, while the body tells operators what is wrong.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("X-MO-Epoch", strconv.FormatUint(epochSeq(s.pinEpoch()), 10))
	body := map[string]any{
		"status":    "ok",
		"objects":   len(s.Objects),
		"relations": len(s.Catalog),
	}
	if s.ingest != nil {
		st := s.ingest.Stats()
		body["objects"] = st.Objects
		body["ingest"] = st
		h := s.ingest.Health()
		body["health"] = h
		if h.Degraded {
			body["status"] = "degraded"
			body["cause"] = h.Cause
		}
	}
	writeJSON(w, body)
}

