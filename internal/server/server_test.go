package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/workload"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	g := workload.New(2000)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(20, 100) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	s, err := New(db.Catalog{"planes": planes}, ids, objects)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad json from %s: %v (%s)", url, err, rec.Body.String())
	}
	return rec.Code, body
}

func TestQueryEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	code, body := get(t, h, "/query?q=SELECT+airline,+id,+length(trajectory(flight))+AS+len+FROM+planes+WHERE+airline+=+'Lufthansa'+ORDER+BY+len+DESC+LIMIT+3")
	if code != http.StatusOK {
		t.Fatalf("code = %d: %v", code, body)
	}
	rows := body["rows"].([]any)
	if len(rows) == 0 || len(rows) > 3 {
		t.Fatalf("rows = %v", rows)
	}
	cols := body["columns"].([]any)
	if cols[2].(string) != "len:real" {
		t.Errorf("columns = %v", cols)
	}
	// Syntax error surfaces as 400 with a message.
	code, body = get(t, h, "/query?q=SELECT")
	if code != http.StatusBadRequest || body["error"] == "" {
		t.Errorf("bad query: %d %v", code, body)
	}
	// Missing q.
	code, _ = get(t, h, "/query")
	if code != http.StatusBadRequest {
		t.Errorf("missing q: %d", code)
	}
}

func TestAtInstantEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	code, body := get(t, h, "/atinstant?t=50")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if _, ok := body["positions"]; !ok {
		t.Fatalf("body = %v", body)
	}
	code, _ = get(t, h, "/atinstant?t=abc")
	if code != http.StatusBadRequest {
		t.Errorf("bad t: %d", code)
	}
}

func TestWindowEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	code, body := get(t, h, "/window?x1=0&y1=0&x2=1000&y2=1000&t1=0&t2=1000")
	if code != http.StatusOK {
		t.Fatalf("code = %d: %v", code, body)
	}
	ids := body["ids"].([]any)
	if len(ids) != len(s.Objects) {
		t.Errorf("whole-world window found %d of %d", len(ids), len(s.Objects))
	}
	// Empty window far away.
	_, body = get(t, h, "/window?x1=-500&y1=-500&x2=-400&y2=-400&t1=0&t2=1000")
	if got, _ := body["ids"].([]any); len(got) != 0 {
		t.Errorf("far window ids = %v", got)
	}
	// t2 < t1.
	code, _ = get(t, h, "/window?x1=0&y1=0&x2=1&y2=1&t1=10&t2=0")
	if code != http.StatusBadRequest {
		t.Errorf("reversed interval: %d", code)
	}
	// Missing parameter.
	code, _ = get(t, h, "/window?x1=0")
	if code != http.StatusBadRequest {
		t.Errorf("missing params: %d", code)
	}
}

func TestObjectsEndpoint(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s.Handler(), "/objects")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	objs := body["objects"].([]any)
	if len(objs) != len(s.Objects) {
		t.Errorf("objects = %d", len(objs))
	}
	first := objs[0].(map[string]any)
	if first["units"].(float64) <= 0 {
		t.Error("unit count missing")
	}
}

func TestNewValidations(t *testing.T) {
	if _, err := New(db.Catalog{}, []string{"a"}, nil); err == nil {
		t.Error("mismatched ids accepted")
	}
}
