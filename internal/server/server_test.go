package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/workload"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	g := workload.New(2000)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(20, 100) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	s, err := New(Config{Catalog: db.Catalog{"planes": planes}, ObjectIDs: ids, Objects: objects})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// stormServer builds a catalog of n moving regions and m flights whose
// cross product makes /v1/query genuinely expensive.
func stormServer(t *testing.T, flights, storms int) *Server {
	t.Helper()
	g := workload.New(4000)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(flights, 300) {
		planes.MustInsert(db.Tuple{f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	stormRel := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	for i := 0; i < storms; i++ {
		stormRel.MustInsert(db.Tuple{fmt.Sprintf("S%03d", i), g.Storm(0, 80, 10, 4)})
	}
	s, err := New(Config{
		Catalog:   db.Catalog{"planes": planes, "storms": stormRel},
		ObjectIDs: ids,
		Objects:   objects,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad json from %s: %v (%s)", url, err, rec.Body.String())
	}
	return rec.Code, body
}

// envelope extracts and shape-checks the v1 error envelope.
func envelope(t *testing.T, body map[string]any) (code, message string) {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", body)
	}
	code, ok = e["code"].(string)
	if !ok || code == "" {
		t.Fatalf("envelope missing code: %v", e)
	}
	message, ok = e["message"].(string)
	if !ok || message == "" {
		t.Fatalf("envelope missing message: %v", e)
	}
	return code, message
}

func TestQueryEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	url := "/v1/query?q=SELECT+airline,+id,+length(trajectory(flight))+AS+len+FROM+planes+WHERE+airline+=+'Lufthansa'+ORDER+BY+len+DESC+LIMIT+3"
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad json: %v (%s)", err, rec.Body.String())
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %v", rec.Code, body)
	}
	rows := body["rows"].([]any)
	if len(rows) == 0 || len(rows) > 3 {
		t.Fatalf("rows = %v", rows)
	}
	cols := body["columns"].([]any)
	if cols[2].(string) != "len:real" {
		t.Errorf("columns = %v", cols)
	}
	// elapsed_ms moved out of the cached body (PR 7): the evaluating
	// response reports it in X-MO-Elapsed so cached bytes are stable.
	if _, ok := body["elapsed_ms"]; ok {
		t.Errorf("elapsed_ms leaked back into the body: %v", body)
	}
	if rec.Header().Get("X-MO-Elapsed") == "" {
		t.Errorf("missing X-MO-Elapsed header on an evaluating request")
	}
	if rec.Header().Get("ETag") == "" {
		t.Errorf("missing ETag on /v1/query")
	}
	// Syntax error surfaces as 400 with the envelope.
	code, body := get(t, h, "/v1/query?q=SELECT")
	if code != http.StatusBadRequest {
		t.Errorf("bad query: %d %v", code, body)
	}
	if ec, _ := envelope(t, body); ec != CodeBadRequest {
		t.Errorf("code = %q", ec)
	}
	// Missing q.
	code, body = get(t, h, "/v1/query")
	if code != http.StatusBadRequest {
		t.Errorf("missing q: %d", code)
	}
	envelope(t, body)
	// Bad timeout_ms.
	code, body = get(t, h, "/v1/query?q=SELECT+id+FROM+planes&timeout_ms=-5")
	if code != http.StatusBadRequest {
		t.Errorf("bad timeout_ms: %d", code)
	}
	envelope(t, body)
}

func TestQueryTooLong(t *testing.T) {
	s, err := New(Config{MaxQueryLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	long := "SELECT+id+FROM+planes+WHERE+airline+=+'AAAAAAAAAAAAAAAAAAAAAAAAAA'"
	code, body := get(t, s.Handler(), "/v1/query?q="+long)
	if code != http.StatusBadRequest {
		t.Fatalf("code = %d", code)
	}
	if ec, _ := envelope(t, body); ec != CodeQueryTooLong {
		t.Errorf("code = %q", ec)
	}
}

func TestVersionAliasing(t *testing.T) {
	h := testServer(t).Handler()
	for _, route := range []string{"/objects", "/healthz", "/metrics"} {
		req := httptest.NewRequest("GET", route, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", route, rec.Code)
		}
		if dep := rec.Header().Get("Deprecation"); !strings.HasPrefix(dep, "@") {
			t.Errorf("%s Deprecation = %q, want RFC 9745 @unix-time", route, dep)
		}
		if sunset := rec.Header().Get("Sunset"); sunset == "" {
			t.Errorf("%s missing Sunset header", route)
		} else if _, err := http.ParseTime(sunset); err != nil {
			t.Errorf("%s Sunset %q is not an HTTP date: %v", route, sunset, err)
		}
		if link := rec.Header().Get("Link"); link == "" {
			t.Errorf("%s missing successor Link header", route)
		}
		// The v1 route serves the same payload without the headers.
		req = httptest.NewRequest("GET", "/v1"+route, nil)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("/v1%s = %d", route, rec.Code)
		}
		if rec.Header().Get("Deprecation") != "" || rec.Header().Get("Sunset") != "" {
			t.Errorf("/v1%s wrongly marked deprecated", route)
		}
	}
}

func TestNotFoundEnvelope(t *testing.T) {
	h := testServer(t).Handler()
	code, body := get(t, h, "/v2/query?q=SELECT")
	if code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
	if ec, _ := envelope(t, body); ec != CodeNotFound {
		t.Errorf("code = %q", ec)
	}
}

func TestAtInstantEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	code, body := get(t, h, "/v1/atinstant?t=50")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if _, ok := body["positions"]; !ok {
		t.Fatalf("body = %v", body)
	}
	code, body = get(t, h, "/v1/atinstant?t=abc")
	if code != http.StatusBadRequest {
		t.Errorf("bad t: %d", code)
	}
	envelope(t, body)
}

func TestWindowEndpointAndPagination(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	code, body := get(t, h, "/v1/window?x1=0&y1=0&x2=1000&y2=1000&t1=0&t2=1000")
	if code != http.StatusOK {
		t.Fatalf("code = %d: %v", code, body)
	}
	ids := body["ids"].([]any)
	total := int(body["total"].(float64))
	if total != len(s.Objects) || len(ids) != total {
		t.Errorf("whole-world window: total=%d ids=%d objects=%d", total, len(ids), len(s.Objects))
	}
	// Pagination: limit 5 offset 5 keeps total but returns one page.
	_, body = get(t, h, "/v1/window?x1=0&y1=0&x2=1000&y2=1000&t1=0&t2=1000&limit=5&offset=5")
	if got := len(body["ids"].([]any)); got != 5 {
		t.Errorf("page ids = %d", got)
	}
	if int(body["total"].(float64)) != total {
		t.Errorf("paged total = %v, want %d", body["total"], total)
	}
	// Offset past the end yields an empty page.
	_, body = get(t, h, fmt.Sprintf("/v1/window?x1=0&y1=0&x2=1000&y2=1000&t1=0&t2=1000&offset=%d", total+10))
	if got := len(body["ids"].([]any)); got != 0 {
		t.Errorf("past-end page = %d ids", got)
	}
	// Empty window far away.
	_, body = get(t, h, "/v1/window?x1=-500&y1=-500&x2=-400&y2=-400&t1=0&t2=1000")
	if got := body["ids"].([]any); len(got) != 0 {
		t.Errorf("far window ids = %v", got)
	}
	// t2 < t1.
	code, body = get(t, h, "/v1/window?x1=0&y1=0&x2=1&y2=1&t1=10&t2=0")
	if code != http.StatusBadRequest {
		t.Errorf("reversed interval: %d", code)
	}
	envelope(t, body)
	// Missing parameter.
	code, _ = get(t, h, "/v1/window?x1=0")
	if code != http.StatusBadRequest {
		t.Errorf("missing params: %d", code)
	}
	// Bad limit.
	code, _ = get(t, h, "/v1/window?x1=0&y1=0&x2=1&y2=1&t1=0&t2=1&limit=nope")
	if code != http.StatusBadRequest {
		t.Errorf("bad limit: %d", code)
	}
}

func TestObjectsEndpointAndPagination(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	code, body := get(t, h, "/v1/objects")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	objs := body["objects"].([]any)
	if len(objs) != len(s.Objects) || int(body["total"].(float64)) != len(s.Objects) {
		t.Errorf("objects = %d total = %v", len(objs), body["total"])
	}
	first := objs[0].(map[string]any)
	if first["units"].(float64) <= 0 {
		t.Error("unit count missing")
	}
	// Second page of 7.
	_, body = get(t, h, "/v1/objects?limit=7&offset=7")
	page := body["objects"].([]any)
	if len(page) != 7 {
		t.Fatalf("page = %d", len(page))
	}
	if page[0].(map[string]any)["id"] == first["id"] {
		t.Error("offset ignored")
	}
	if int(body["total"].(float64)) != len(s.Objects) {
		t.Errorf("paged total = %v", body["total"])
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s.Handler(), "/v1/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	if int(body["objects"].(float64)) != len(s.Objects) {
		t.Errorf("objects = %v", body["objects"])
	}
}

// TestQueryTimeoutEnvelopeAndMetrics is the acceptance scenario: a
// ?timeout_ms=10 query over a catalog of 100+ moving regions crossed
// with flights returns a 408 envelope in bounded time because the
// evaluator observes cancellation, and the metrics registry afterwards
// shows the request with its latency and the timeout counted.
func TestQueryTimeoutEnvelopeAndMetrics(t *testing.T) {
	s := stormServer(t, 40, 100)
	h := s.Handler()
	q := "/v1/query?timeout_ms=10&q=SELECT+name+FROM+planes,+storms+WHERE+sometimes(inside(flight,+extent))"
	start := time.Now()
	code, body := get(t, h, q)
	elapsed := time.Since(start)
	if code != http.StatusRequestTimeout {
		t.Fatalf("code = %d: %v", code, body)
	}
	if ec, _ := envelope(t, body); ec != CodeTimeout {
		t.Errorf("code = %q", ec)
	}
	// Bounded time: far below what the full cross product would need,
	// generous enough for a loaded CI machine.
	if elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	// Metrics recorded the request, its latency, and the timeout; the
	// slow-query log marks the entry timed out.
	snap := s.Metrics().Snapshot()
	rt := snap.Requests["/v1/query"]
	if rt.Count != 1 || rt.Timeouts != 1 || rt.Statuses["408"] != 1 {
		t.Fatalf("route stats = %+v", rt)
	}
	if rt.MaxMillis <= 0 {
		t.Errorf("latency not recorded: %+v", rt)
	}
	if len(snap.SlowQueries) == 0 || !snap.SlowQueries[0].TimedOut {
		t.Errorf("slow query log = %+v", snap.SlowQueries)
	}
	if snap.Operators["inside"].Count == 0 {
		t.Errorf("operator timings = %v", snap.Operators)
	}
	// /v1/metrics serves the same data over HTTP.
	code, mbody := get(t, h, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics code = %d", code)
	}
	reqs := mbody["requests"].(map[string]any)
	if _, ok := reqs["/v1/query"]; !ok {
		t.Errorf("metrics missing /v1/query: %v", reqs)
	}
}

// TestConcurrentRequests exercises /v1/query and /v1/window in parallel
// for the race detector.
func TestConcurrentRequests(t *testing.T) {
	h := testServer(t).Handler()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var url string
				if (g+i)%2 == 0 {
					url = "/v1/query?q=SELECT+airline,+travelled(flight)+AS+d+FROM+planes+ORDER+BY+d+DESC+LIMIT+5"
				} else {
					url = "/v1/window?x1=0&y1=0&x2=500&y2=500&t1=0&t2=500&limit=10"
				}
				req := httptest.NewRequest("GET", url, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s = %d: %s", url, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := testMetricsTotal(t, h)
	if snap < 80 {
		t.Errorf("metrics counted %d requests, want 80", snap)
	}
}

// testMetricsTotal sums the per-route request counts via /v1/metrics.
func testMetricsTotal(t *testing.T, h http.Handler) int {
	t.Helper()
	_, body := get(t, h, "/v1/metrics")
	total := 0
	for _, v := range body["requests"].(map[string]any) {
		total += int(v.(map[string]any)["count"].(float64))
	}
	return total
}

func TestNewValidations(t *testing.T) {
	if _, err := New(Config{ObjectIDs: []string{"a"}}); err == nil {
		t.Error("mismatched ids accepted")
	}
}

func TestPanicRecovery(t *testing.T) {
	// A relation value of the wrong dynamic type makes rendering panic;
	// the middleware must convert that into a 500 envelope.
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.instrument("/boom", func(http.ResponseWriter, *http.Request) { panic("boom") })
	req := httptest.NewRequest("GET", "/boom", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	envelope(t, body)
	if s.Metrics().Snapshot().Requests["/boom"].Errors != 1 {
		t.Error("panic not counted")
	}
}
