package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"movingdb/internal/db"
)

// Error codes of the v1 JSON error envelope. Every non-2xx response has
// the shape {"error": {"code": <code>, "message": <text>}}.
const (
	CodeBadRequest   = "bad_request"
	CodeQueryTooLong = "query_too_long"
	CodeNotFound     = "not_found"
	CodeTimeout      = "timeout"
	CodeInternal     = "internal"
	// CodeBackpressure signals a full ingest queue (HTTP 429); the client
	// should retry with backoff.
	CodeBackpressure = "backpressure"
	// CodeUnavailable signals a feature not enabled on this server, such
	// as POSTing to /v1/ingest when no live pipeline is configured.
	CodeUnavailable = "unavailable"
	// CodeDegraded signals that the WAL medium is failing past the retry
	// budget (HTTP 503): the batch was not acknowledged and is not
	// durable. Reads keep working; clients should retry writes with
	// backoff — the server probes the store and recovers automatically
	// once the fault clears.
	CodeDegraded = "degraded"
)

// apiError is the envelope payload.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONStatus is writeJSON with an explicit status code (the ingest
// route acknowledges with 202).
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the v1 error envelope with the given status.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: msg}})
}

// writeRetryError is writeError plus a Retry-After header (RFC 9110
// §10.2.3, delay-seconds form) — used by the 429 backpressure and 503
// degraded envelopes, whose rejections clear on a known cadence (the
// flush interval and the degraded probe interval respectively). The
// delay rounds up to whole seconds with a floor of one, since a
// fractional cadence still means "not right now".
func writeRetryError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, status, code, msg)
}

// writeEvalError maps an evaluation error onto the envelope: context
// expiry (server deadline or client disconnect) is 408, the query
// language's own error classes are 400, anything else is a 500.
func writeEvalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, CodeTimeout, err.Error())
	case errors.Is(err, db.ErrSyntax), errors.Is(err, db.ErrType),
		errors.Is(err, db.ErrNoFunction), errors.Is(err, db.ErrSchema):
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}
