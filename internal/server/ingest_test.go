package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"movingdb/internal/ingest"
	"movingdb/internal/obs"
	"movingdb/internal/storage"
)

// liveServer builds a server with an ingestion pipeline over the given
// WAL medium, sharing one obs registry between them (as cmd/moserver
// does) so ingest and epoch counters surface at /v1/metrics.
func liveServer(t *testing.T, icfg ingest.Config) (*Server, *ingest.Pipeline) {
	t.Helper()
	reg := obs.New(0)
	if icfg.Metrics == nil {
		icfg.Metrics = reg
	}
	p, err := ingest.Open(icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	s, err := New(Config{Ingest: p, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func post(t *testing.T, h http.Handler, url, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad json from POST %s: %v (%s)", url, err, rec.Body.String())
	}
	return rec.Code, out
}

// TestIngestReadYourWrites POSTs a batch with ?sync=1 and immediately
// queries it back through /v1/atinstant, /v1/window and /v1/objects.
func TestIngestReadYourWrites(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{FlushSize: 1 << 20, MaxAge: time.Hour})
	h := s.Handler()
	code, body := post(t, h, "/v1/ingest?sync=1",
		`[{"id":"car1","t":0,"x":10,"y":10},{"id":"car1","t":10,"x":20,"y":10}]`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d %v", code, body)
	}
	if body["accepted"].(float64) != 2 || body["seq"].(float64) != 1 || body["synced"] != true {
		t.Fatalf("ack body: %v", body)
	}
	code, body = get(t, h, "/v1/atinstant?t=5")
	if code != 200 {
		t.Fatalf("atinstant: %d %v", code, body)
	}
	pos := body["positions"].([]any)
	if len(pos) != 1 {
		t.Fatalf("positions: %v", pos)
	}
	p0 := pos[0].(map[string]any)
	if p0["id"] != "car1" || p0["x"].(float64) != 15 || p0["y"].(float64) != 10 {
		t.Fatalf("interpolated position: %v", p0)
	}
	code, body = get(t, h, "/v1/window?x1=14&y1=9&x2=16&y2=11&t1=0&t2=10")
	if code != 200 || body["total"].(float64) != 1 {
		t.Fatalf("window: %d %v", code, body)
	}
	if ids := body["ids"].([]any); ids[0] != "car1" {
		t.Fatalf("window ids: %v", ids)
	}
	code, body = get(t, h, "/v1/objects")
	if code != 200 || body["total"].(float64) != 1 {
		t.Fatalf("objects: %d %v", code, body)
	}
	code, body = get(t, h, "/v1/healthz")
	if code != 200 || body["ingest"] == nil {
		t.Fatalf("healthz without ingest stats: %d %v", code, body)
	}
}

// TestIngestBackpressure429 fills the bounded queue and checks the 429
// envelope.
func TestIngestBackpressure429(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 2})
	h := s.Handler()
	if code, body := post(t, h, "/v1/ingest", `[{"id":"a","t":1,"x":0,"y":0},{"id":"a","t":2,"x":1,"y":0}]`); code != http.StatusAccepted {
		t.Fatalf("first POST: %d %v", code, body)
	}
	code, body := post(t, h, "/v1/ingest", `[{"id":"b","t":1,"x":0,"y":0}]`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d %v", code, body)
	}
	if c, _ := envelope(t, body); c != CodeBackpressure {
		t.Fatalf("error code: %s", c)
	}
}

// TestIngestBadRequests checks the 400 paths: malformed JSON, unknown
// fields, an empty batch, a missing id, and an oversized batch.
func TestIngestBadRequests(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{})
	sv := s
	sv.cfg.MaxIngestBatch = 3
	h := sv.Handler()
	for _, body := range []string{
		`{`,
		`{"observations":[]}`,
		`[]`,
		`[{"id":"","t":1,"x":0,"y":0}]`,
		`[{"id":"a","t":1,"x":0,"y":0,"bogus":1}]`,
		`[{"id":"a","t":1,"x":0,"y":0},{"id":"a","t":2,"x":0,"y":0},{"id":"a","t":3,"x":0,"y":0},{"id":"a","t":4,"x":0,"y":0}]`,
	} {
		code, resp := post(t, h, "/v1/ingest", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %s: want 400, got %d %v", body, code, resp)
		}
		if c, _ := envelope(t, resp); c != CodeBadRequest {
			t.Fatalf("body %s: error code %s", body, c)
		}
	}
}

// TestIngestDisabled checks the read-only server's answer on the
// ingest route.
func TestIngestDisabled(t *testing.T) {
	s := testServer(t)
	code, body := post(t, s.Handler(), "/v1/ingest", `[{"id":"a","t":1,"x":0,"y":0}]`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %d %v", code, body)
	}
	if c, _ := envelope(t, body); c != CodeUnavailable {
		t.Fatalf("error code: %s", c)
	}
	// No legacy alias for the new route.
	if code, _ := post(t, s.Handler(), "/ingest", `[]`); code != http.StatusNotFound {
		t.Fatalf("alias must not exist: %d", code)
	}
}

// TestDeprecatedAliasesStillServe pins the satellite fix: every GET
// route keeps its explicit unversioned alias with the deprecation
// headers.
func TestDeprecatedAliasesStillServe(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for _, alias := range []string{"/atinstant?t=50", "/objects", "/metrics", "/healthz", "/window?x1=0&y1=0&x2=1000&y2=1000&t1=0&t2=100"} {
		req := httptest.NewRequest("GET", alias, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("alias %s: %d %s", alias, rec.Code, rec.Body.String())
		}
		if !strings.HasPrefix(rec.Header().Get("Deprecation"), "@") ||
			rec.Header().Get("Sunset") == "" ||
			!strings.Contains(rec.Header().Get("Link"), "/v1/") {
			t.Fatalf("alias %s: missing deprecation headers", alias)
		}
	}
}

// TestIngestCrashRecoveryHTTP is the acceptance crash scenario at the
// API level: observations are POSTed and acknowledged with 202 but
// never flushed; the process "dies"; a server restarted from the WAL
// medium's durable image answers /v1/atinstant identically to one that
// had flushed normally.
func TestIngestCrashRecoveryHTTP(t *testing.T) {
	log := storage.NewPageStore()
	s, _ := liveServer(t, ingest.Config{Log: log, FlushSize: 1 << 20, MaxAge: time.Hour})
	h := s.Handler()
	for i := 0; i < 5; i++ {
		code, body := post(t, h, "/v1/ingest",
			fmt.Sprintf(`[{"id":"t1","t":%d,"x":%d,"y":0},{"id":"t2","t":%d,"x":0,"y":%d}]`, i*10, i*5, i*10, i*7))
		if code != http.StatusAccepted {
			t.Fatalf("POST %d: %d %v", i, code, body)
		}
	}
	var disk bytes.Buffer
	if _, err := log.WriteTo(&disk); err != nil {
		t.Fatal(err)
	}
	// Crash: the first server is abandoned un-flushed and un-closed.
	recovered, err := storage.ReadPageStore(bytes.NewReader(disk.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := liveServer(t, ingest.Config{Log: recovered})
	h2 := s2.Handler()
	for _, q := range []string{"/v1/atinstant?t=15", "/v1/atinstant?t=40", "/v1/atinstant?t=0"} {
		code, body := get(t, h2, q)
		if code != 200 {
			t.Fatalf("%s after recovery: %d %v", q, code, body)
		}
		pos := body["positions"].([]any)
		if len(pos) != 2 {
			t.Fatalf("%s: want both acknowledged objects, got %v", q, pos)
		}
	}
	// Interpolated mid-sample value survives exactly: t1 moves x=t/2.
	_, body := get(t, h2, "/v1/atinstant?t=15")
	for _, raw := range body["positions"].([]any) {
		p := raw.(map[string]any)
		if p["id"] == "t1" && p["x"].(float64) != 7.5 {
			t.Fatalf("recovered interpolation: %v", p)
		}
	}
}
