package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/geom"
)

// Typed request decoding. Each read route has a request struct and one
// decode function that performs the whole validation pass; everything
// downstream — evaluation, pagination, the cache key, the ETag — works
// from the decoded struct's canonical() rendering, so a request can
// never be keyed one way and evaluated another. Decode failures carry
// an envelope code (default bad_request) via decodeError.

// decodeError is a validation failure with its envelope code.
type decodeError struct {
	code string
	msg  string
}

func (e *decodeError) Error() string { return e.msg }

// writeDecodeError renders a decode failure as a 400 envelope with the
// error's own code.
func writeDecodeError(w http.ResponseWriter, err error) {
	if de, ok := err.(*decodeError); ok {
		writeError(w, http.StatusBadRequest, de.code, de.msg)
		return
	}
	writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
}

// params reads query parameters, accumulating the first failure; decode
// functions chain reads and check err() once at the end.
type params struct {
	vals url.Values
	err  *decodeError
}

func newParams(r *http.Request) *params { return &params{vals: r.URL.Query()} }

func (p *params) fail(code, format string, args ...any) {
	if p.err == nil {
		p.err = &decodeError{code: code, msg: fmt.Sprintf(format, args...)}
	}
}

// float reads a required float parameter.
func (p *params) float(name string) float64 {
	raw := p.vals.Get(name)
	if raw == "" {
		p.fail(CodeBadRequest, "missing %s parameter", name)
		return 0
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		p.fail(CodeBadRequest, "bad %s: %v", name, err)
		return 0
	}
	return v
}

// intMin reads an optional integer parameter with a default and an
// exclusive-or-inclusive lower bound (min itself is allowed).
func (p *params) intMin(name string, def, min int) int {
	raw := p.vals.Get(name)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < min {
		kind := "a positive integer"
		if min == 0 {
			kind = "a non-negative integer"
		}
		p.fail(CodeBadRequest, "bad %s %q: want %s", name, raw, kind)
		return def
	}
	return v
}

// timeout reads ?timeout_ms= against the server's default and cap.
func (p *params) timeout(def, max time.Duration) time.Duration {
	raw := p.vals.Get("timeout_ms")
	if raw == "" {
		if def > max {
			return max
		}
		return def
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		p.fail(CodeBadRequest, "bad timeout_ms %q: want a positive integer", raw)
		return def
	}
	d := time.Duration(ms) * time.Millisecond
	if d > max {
		d = max
	}
	return d
}

// pageReq is the resolved pagination of a list request: defaults
// applied, caps enforced. Canonical renderings include the resolved
// values, so "no limit given" and "limit=<default>" share a cache entry.
type pageReq struct {
	Limit  int
	Offset int
}

func (s *Server) decodePageInto(p *params) pageReq {
	limit := p.intMin("limit", s.cfg.DefaultLimit, 1)
	if limit > s.cfg.MaxLimit {
		limit = s.cfg.MaxLimit
	}
	return pageReq{Limit: limit, Offset: p.intMin("offset", 0, 0)}
}

// fmtFloat renders a float in shortest round-trip form — the one
// spelling every canonical string uses, so "10", "10.0" and "1e1" key
// identically.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// windowReq is a decoded /v1/window request. The rectangle is
// normalised (min/max per axis) at decode time, so mirrored corner
// orderings canonicalise — and cache — identically.
type windowReq struct {
	Rect    geom.Rect
	T1, T2  float64
	Page    pageReq
	Timeout time.Duration
}

func (s *Server) decodeWindow(r *http.Request) (windowReq, error) {
	p := newParams(r)
	x1, y1 := p.float("x1"), p.float("y1")
	x2, y2 := p.float("x2"), p.float("y2")
	t1, t2 := p.float("t1"), p.float("t2")
	req := windowReq{
		Rect: geom.Rect{
			MinX: min(x1, x2), MinY: min(y1, y2),
			MaxX: max(x1, x2), MaxY: max(y1, y2),
		},
		T1: t1, T2: t2,
		Page:    s.decodePageInto(p),
		Timeout: p.timeout(s.cfg.QueryTimeout, s.cfg.MaxTimeout),
	}
	if p.err == nil && t2 < t1 {
		p.fail(CodeBadRequest, "t2 before t1")
	}
	if p.err != nil {
		return windowReq{}, p.err
	}
	return req, nil
}

func (q windowReq) canonical() string {
	var b strings.Builder
	b.WriteString("x1=")
	b.WriteString(fmtFloat(q.Rect.MinX))
	b.WriteString("&y1=")
	b.WriteString(fmtFloat(q.Rect.MinY))
	b.WriteString("&x2=")
	b.WriteString(fmtFloat(q.Rect.MaxX))
	b.WriteString("&y2=")
	b.WriteString(fmtFloat(q.Rect.MaxY))
	b.WriteString("&t1=")
	b.WriteString(fmtFloat(q.T1))
	b.WriteString("&t2=")
	b.WriteString(fmtFloat(q.T2))
	b.WriteString("&limit=")
	b.WriteString(strconv.Itoa(q.Page.Limit))
	b.WriteString("&offset=")
	b.WriteString(strconv.Itoa(q.Page.Offset))
	return b.String()
}

// atInstantReq is a decoded /v1/atinstant request.
type atInstantReq struct {
	T       float64
	Timeout time.Duration
}

func (s *Server) decodeAtInstant(r *http.Request) (atInstantReq, error) {
	p := newParams(r)
	req := atInstantReq{
		T:       p.float("t"),
		Timeout: p.timeout(s.cfg.QueryTimeout, s.cfg.MaxTimeout),
	}
	if p.err != nil {
		return atInstantReq{}, p.err
	}
	return req, nil
}

func (q atInstantReq) canonical() string { return "t=" + fmtFloat(q.T) }

// objectsReq is a decoded /v1/objects request.
type objectsReq struct {
	Page pageReq
}

func (s *Server) decodeObjects(r *http.Request) (objectsReq, error) {
	p := newParams(r)
	req := objectsReq{Page: s.decodePageInto(p)}
	if p.err != nil {
		return objectsReq{}, p.err
	}
	return req, nil
}

func (q objectsReq) canonical() string {
	return "limit=" + strconv.Itoa(q.Page.Limit) + "&offset=" + strconv.Itoa(q.Page.Offset)
}

// queryReq is a decoded /v1/query request. SQL is the canonical
// rendering (db.Canonical), so spelling variants of one query share a
// cache entry; Raw keeps the client's text for the slow-query log. The
// timeout is deliberately not part of the canonical form: a shorter
// deadline either produces the same bytes or an error, and errors are
// never cached.
type queryReq struct {
	SQL     string
	Raw     string
	Timeout time.Duration
}

func (s *Server) decodeQuery(r *http.Request) (queryReq, error) {
	p := newParams(r)
	raw := p.vals.Get("q")
	if raw == "" {
		p.fail(CodeBadRequest, "missing q parameter")
	} else if len(raw) > s.cfg.MaxQueryLen {
		p.fail(CodeQueryTooLong, "query is %d bytes; the limit is %d", len(raw), s.cfg.MaxQueryLen)
	}
	req := queryReq{Raw: raw, Timeout: p.timeout(s.cfg.QueryTimeout, s.cfg.MaxTimeout)}
	if p.err == nil {
		sql, err := db.Canonical(raw)
		if err != nil {
			p.fail(CodeBadRequest, "%v", err)
		}
		req.SQL = sql
	}
	if p.err != nil {
		return queryReq{}, p.err
	}
	return req, nil
}

func (q queryReq) canonical() string { return "q=" + q.SQL }
