package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpecs parses the command-line failpoint grammar used by
// moserver's -failpoints flag (faultinject builds only):
//
//	spec     := point *( ";" point )
//	point    := site "=" mode [ ":" arg ] *( "," option )
//	mode     := "error" | "torn" | "latency"
//	arg      := times (error) | keep-fraction (torn) | duration (latency)
//	option   := "prob=" float | "times=" int
//
// Examples:
//
//	wal.put=error:3                 fail the next three WAL appends
//	wal.put=torn                    tear one of every write, forever
//	wal.get=latency:5ms,prob=0.1    delay 10% of reads by 5ms
func ParseSpecs(s string) (map[string]Spec, error) {
	out := map[string]Spec{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rhs, ok := strings.Cut(part, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" || rhs == "" {
			return nil, fmt.Errorf("fault: bad failpoint %q: want site=mode[:arg][,option...]", part)
		}
		if !KnownSite(site) {
			return nil, fmt.Errorf("fault: unknown failpoint site %q (run with -failpoints=list for the catalog)", site)
		}
		fields := strings.Split(rhs, ",")
		var spec Spec
		mode, arg, hasArg := strings.Cut(fields[0], ":")
		switch strings.TrimSpace(mode) {
		case "error":
			spec.Mode = ModeError
			if hasArg {
				n, err := strconv.Atoi(arg)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: bad error count %q in %q", arg, part)
				}
				spec.Times = n
			}
		case "torn":
			spec.Mode = ModeTorn
			if hasArg {
				f, err := strconv.ParseFloat(arg, 64)
				if err != nil || f <= 0 || f >= 1 {
					return nil, fmt.Errorf("fault: bad keep fraction %q in %q (want 0 < f < 1)", arg, part)
				}
				spec.KeepFraction = f
			}
		case "latency":
			spec.Mode = ModeLatency
			if !hasArg {
				return nil, fmt.Errorf("fault: latency needs a duration in %q", part)
			}
			d, err := time.ParseDuration(arg)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: bad latency %q in %q", arg, part)
			}
			spec.Delay = d
		default:
			return nil, fmt.Errorf("fault: unknown mode %q in %q", mode, part)
		}
		for _, opt := range fields[1:] {
			key, val, _ := strings.Cut(strings.TrimSpace(opt), "=")
			switch key {
			case "prob":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("fault: bad probability %q in %q", val, part)
				}
				spec.Prob = p
			case "times":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: bad times %q in %q", val, part)
				}
				spec.Times = n
			default:
				return nil, fmt.Errorf("fault: unknown option %q in %q", opt, part)
			}
		}
		out[site] = spec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty failpoint spec")
	}
	return out, nil
}
