package fault

import (
	"fmt"
	"io"
	"time"

	"movingdb/internal/storage"
)

// Store wraps a storage.PageStore with failpoint injection on its I/O
// operations, satisfying the ingest write path's page-I/O contract
// (ingest.PageIO, matched structurally). Sites are "<name>.put",
// "<name>.get" and "<name>.compact"; Truncate stays infallible — the
// write path relies on it to discard torn bytes, so the recovery tool
// itself is not a failure surface.
type Store struct {
	in   *Injector
	name string
	ps   *storage.PageStore
}

// NewStore wraps ps; failpoint sites are prefixed with name.
func NewStore(in *Injector, name string, ps *storage.PageStore) *Store {
	return &Store{in: in, name: name, ps: ps}
}

// Underlying returns the wrapped page store (for image capture in
// crash tests).
func (s *Store) Underlying() *storage.PageStore { return s.ps }

// Put stores data as a new large object, subject to the "<name>.put"
// failpoint: error modes fail with nothing written, torn mode lands a
// prefix of the bytes (padded to whole pages, as a real device would
// leave a partially written run) and then fails, latency sleeps and
// proceeds.
func (s *Store) Put(data []byte) (storage.LOBRef, error) {
	if act, ok := s.in.eval(s.name + ".put"); ok {
		switch act.mode {
		case ModeLatency:
			//molint:ignore det-path injected latency must really elapse; which calls sleep is decided by the seeded injector, so determinism of outcomes is preserved
			time.Sleep(act.delay)
		case ModeTorn:
			keep := int(float64(len(data)) * act.keepFraction)
			if keep > 0 {
				s.ps.Put(data[:keep])
			}
			return storage.LOBRef{}, fmt.Errorf("torn write (%d of %d bytes): %w", keep, len(data), act.err)
		default:
			return storage.LOBRef{}, act.err
		}
	}
	return s.ps.Put(data), nil
}

// Get reads a large object back, subject to the "<name>.get"
// failpoint (torn degrades to error on the read path).
func (s *Store) Get(ref storage.LOBRef) ([]byte, error) {
	if act, ok := s.in.eval(s.name + ".get"); ok {
		if act.mode == ModeLatency {
			//molint:ignore det-path injected latency must really elapse; which calls sleep is decided by the seeded injector, so determinism of outcomes is preserved
			time.Sleep(act.delay)
		} else {
			return nil, act.err
		}
	}
	return s.ps.Get(ref)
}

// NumPages reports the allocated page count.
func (s *Store) NumPages() int { return s.ps.NumPages() }

// Truncate drops every page from n on (infallible by contract).
func (s *Store) Truncate(n int) { s.ps.Truncate(n) }

// Compact drops the first n pages, subject to the "<name>.compact"
// failpoint. Compaction is atomic at the medium level (the
// rename idiom), so the only injectable failure is refusal: a tripped
// point leaves the store untouched and returns the error.
func (s *Store) Compact(n int) error {
	if act, ok := s.in.eval(s.name + ".compact"); ok {
		if act.mode == ModeLatency {
			//molint:ignore det-path injected latency must really elapse; which calls sleep is decided by the seeded injector, so determinism of outcomes is preserved
			time.Sleep(act.delay)
		} else {
			return act.err
		}
	}
	s.ps.Compact(n)
	return nil
}

// Writer wraps an io.Writer and fails once FailAfter bytes have been
// written — the serialisation-side torn write, for exercising WriteTo
// error paths without a failpoint table.
type Writer struct {
	W         io.Writer
	FailAfter int
	written   int
}

// Write forwards to the wrapped writer until the budget is spent, then
// short-writes and fails.
func (w *Writer) Write(p []byte) (int, error) {
	if w.written >= w.FailAfter {
		return 0, fmt.Errorf("%w: writer failed after %d bytes", ErrInjected, w.written)
	}
	if w.written+len(p) > w.FailAfter {
		n, _ := w.W.Write(p[:w.FailAfter-w.written])
		w.written += n
		return n, fmt.Errorf("%w: writer failed after %d bytes", ErrInjected, w.written)
	}
	n, err := w.W.Write(p)
	w.written += n
	return n, err
}
