// Package fault is the deterministic fault-injection layer of the
// storage and ingestion stack. It provides seeded, reproducible
// failpoints — error-once, error-N-times, partial (torn) write, and
// latency — that a wrapping Store injects into page-store I/O without
// touching production hot paths: the write path talks to an interface,
// and only test or -tags=faultinject builds ever interpose this
// package.
//
// Failpoints are addressed by site name ("wal.put", "wal.get",
// "wal.compact"). Each site carries a Spec: a mode, an optional trip
// budget (error-once is Times: 1), an optional per-hit probability
// drawn from the injector's seeded RNG (so a 1% fault schedule replays
// identically for a given seed), and mode parameters. Everything an
// injector decides is a pure function of the seed and the sequence of
// hits, which is what makes failure tests reproducible.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the root of every injected failure; callers that need
// to distinguish injected from organic errors match it with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Mode selects what a tripped failpoint does to the operation.
type Mode int

const (
	// ModeError fails the operation outright.
	ModeError Mode = iota
	// ModeTorn lands a prefix of the bytes and then fails — the torn
	// write of a crash mid-I/O. Only meaningful on write sites; read
	// sites treat it as ModeError.
	ModeTorn
	// ModeLatency delays the operation and then lets it proceed.
	ModeLatency
)

// String names the mode as the spec grammar spells it.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeTorn:
		return "torn"
	case ModeLatency:
		return "latency"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Spec configures one failpoint.
type Spec struct {
	Mode Mode
	// Times bounds how many times the point trips; 0 means every hit
	// (a persistent fault). Times: 1 is the classic error-once point.
	Times int
	// Prob is the per-hit trip probability in (0, 1]; 0 means 1
	// (always). Draws come from the injector's seeded RNG.
	Prob float64
	// Delay is the injected latency for ModeLatency.
	Delay time.Duration
	// KeepFraction is the fraction of bytes that land in a ModeTorn
	// write; 0 means half.
	KeepFraction float64
}

type point struct {
	spec      Spec
	remaining int // trips left; -1 = unlimited
	trips     int64
}

// Injector holds the failpoint table and the seeded RNG behind
// probabilistic trips. The zero value is not usable; construct with
// New. All methods are safe for concurrent use and safe on a nil
// receiver (a nil injector never trips), so wiring one in is free.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand        // moguard: guarded by mu
	points map[string]*point // moguard: guarded by mu
	onTrip func(site string) // moguard: guarded by mu
}

// New returns an injector whose probabilistic decisions replay
// identically for the same seed and hit sequence.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), points: map[string]*point{}}
}

// Set installs (or replaces) the failpoint at site.
func (in *Injector) Set(site string, spec Spec) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rem := -1
	if spec.Times > 0 {
		rem = spec.Times
	}
	in.points[site] = &point{spec: spec, remaining: rem}
}

// Clear removes the failpoint at site; the site then behaves normally.
func (in *Injector) Clear(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.points, site)
}

// ClearAll removes every failpoint.
func (in *Injector) ClearAll() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points = map[string]*point{}
}

// OnTrip registers a hook called after every trip with the site name —
// the seam through which the metrics registry counts injected faults.
// The hook runs outside the injector's lock and must be safe for
// concurrent use.
func (in *Injector) OnTrip(fn func(site string)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onTrip = fn
}

// Trips reports how many times the failpoint at site has tripped.
func (in *Injector) Trips(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if pt := in.points[site]; pt != nil {
		return pt.trips
	}
	return 0
}

// action is the concrete outcome of one tripped failpoint.
type action struct {
	mode         Mode
	delay        time.Duration
	keepFraction float64
	err          error
}

// Hit evaluates the failpoint at site for hook-style call sites that
// carry no bytes to tear: a latency trip sleeps and lets the operation
// proceed, while error and torn trips return the injected error. A nil
// injector never trips, so production call sites pay one nil check.
func (in *Injector) Hit(site string) error {
	act, ok := in.eval(site)
	if !ok {
		return nil
	}
	if act.mode == ModeLatency {
		//molint:ignore det-path injected latency must really elapse; which calls sleep is decided by the seeded injector, so determinism of outcomes is preserved
		time.Sleep(act.delay)
		return nil
	}
	return act.err
}

// eval decides whether the failpoint at site trips on this hit, and if
// so with what action. A spent or absent point never trips. The OnTrip
// hook, if any, fires after the injector lock is released.
func (in *Injector) eval(site string) (action, bool) {
	if in == nil {
		return action{}, false
	}
	act, ok, hook := in.evalTrip(site)
	if ok && hook != nil {
		hook(site)
	}
	return act, ok
}

func (in *Injector) evalTrip(site string) (action, bool, func(string)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	pt := in.points[site]
	if pt == nil || pt.remaining == 0 {
		return action{}, false, nil
	}
	if p := pt.spec.Prob; p > 0 && p < 1 && in.rng.Float64() >= p {
		return action{}, false, nil
	}
	if pt.remaining > 0 {
		pt.remaining--
	}
	pt.trips++
	kf := pt.spec.KeepFraction
	if kf <= 0 || kf >= 1 {
		kf = 0.5
	}
	return action{
		mode:         pt.spec.Mode,
		delay:        pt.spec.Delay,
		keepFraction: kf,
		// moguard: allocok allocates only when a failpoint trips, which never happens outside fault-injection runs
		err: fmt.Errorf("%w at %s", ErrInjected, site),
	}, true, in.onTrip
}
