package fault

import (
	"bytes"
	"errors"
	"slices"
	"testing"
	"time"

	"movingdb/internal/storage"
)

func TestErrorOnceThenClean(t *testing.T) {
	in := New(1)
	in.Set("wal.put", Spec{Mode: ModeError, Times: 1})
	st := NewStore(in, "wal", storage.NewPageStore())
	if _, err := st.Put([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first put: want injected error, got %v", err)
	}
	if st.NumPages() != 0 {
		t.Fatalf("failed put landed pages: %d", st.NumPages())
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Put([]byte("x")); err != nil {
			t.Fatalf("put %d after budget spent: %v", i, err)
		}
	}
	if got := in.Trips("wal.put"); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

func TestErrorNTimes(t *testing.T) {
	in := New(1)
	in.Set("wal.put", Spec{Mode: ModeError, Times: 3})
	st := NewStore(in, "wal", storage.NewPageStore())
	for i := 0; i < 3; i++ {
		if _, err := st.Put([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("put %d: want injected error, got %v", i, err)
		}
	}
	if _, err := st.Put([]byte("x")); err != nil {
		t.Fatalf("put after budget: %v", err)
	}
}

func TestPersistentFaultAndClear(t *testing.T) {
	in := New(1)
	in.Set("wal.put", Spec{Mode: ModeError}) // Times 0 = forever
	st := NewStore(in, "wal", storage.NewPageStore())
	for i := 0; i < 10; i++ {
		if _, err := st.Put([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("put %d: want injected error, got %v", i, err)
		}
	}
	in.Clear("wal.put")
	if _, err := st.Put([]byte("x")); err != nil {
		t.Fatalf("put after clear: %v", err)
	}
}

// TestProbDeterminism pins the seeded-RNG contract: the same seed and
// hit sequence trip the same subset of hits, and a different seed trips
// a different one.
func TestProbDeterminism(t *testing.T) {
	trace := func(seed int64) []bool {
		in := New(seed)
		in.Set("wal.put", Spec{Mode: ModeError, Prob: 0.3})
		st := NewStore(in, "wal", storage.NewPageStore())
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := st.Put([]byte("x"))
			out = append(out, err != nil)
		}
		return out
	}
	a, b := trace(7), trace(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := trace(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit schedules")
	}
}

// TestTornWrite checks the partial-write mode: a prefix of the bytes
// lands (whole pages, like a real device) and the operation fails.
func TestTornWrite(t *testing.T) {
	in := New(1)
	in.Set("wal.put", Spec{Mode: ModeTorn, Times: 1, KeepFraction: 0.5})
	ps := storage.NewPageStore()
	st := NewStore(in, "wal", ps)
	data := bytes.Repeat([]byte{0xCD}, 4*storage.PageSize)
	_, err := st.Put(data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn put: want injected error, got %v", err)
	}
	if n := ps.NumPages(); n == 0 || n >= 4 {
		t.Fatalf("torn put landed %d pages, want a strict non-empty prefix of 4", n)
	}
	got, gerr := ps.Get(storage.LOBRef{FirstPage: 0, Length: storage.PageSize})
	if gerr != nil || !bytes.Equal(got, data[:storage.PageSize]) {
		t.Fatalf("torn bytes are not a prefix of the write")
	}
}

func TestLatencyProceeds(t *testing.T) {
	in := New(1)
	in.Set("wal.put", Spec{Mode: ModeLatency, Times: 1, Delay: 10 * time.Millisecond})
	st := NewStore(in, "wal", storage.NewPageStore())
	start := time.Now()
	if _, err := st.Put([]byte("x")); err != nil {
		t.Fatalf("latency put failed: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency not injected: took %v", d)
	}
	if st.NumPages() == 0 {
		t.Fatal("latency put did not land")
	}
}

func TestGetAndCompactSites(t *testing.T) {
	in := New(1)
	ps := storage.NewPageStore()
	st := NewStore(in, "wal", ps)
	ref, _ := st.Put(bytes.Repeat([]byte{1}, 3*storage.PageSize))
	in.Set("wal.get", Spec{Mode: ModeError, Times: 1})
	if _, err := st.Get(ref); !errors.Is(err, ErrInjected) {
		t.Fatalf("get: want injected error, got %v", err)
	}
	if _, err := st.Get(ref); err != nil {
		t.Fatalf("get after budget: %v", err)
	}
	in.Set("wal.compact", Spec{Mode: ModeError, Times: 1})
	if err := st.Compact(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("compact: want injected error, got %v", err)
	}
	if ps.NumPages() != 3 {
		t.Fatalf("refused compact mutated the store: %d pages", ps.NumPages())
	}
	if err := st.Compact(1); err != nil || ps.NumPages() != 2 {
		t.Fatalf("compact after budget: err=%v pages=%d", err, ps.NumPages())
	}
}

// TestNilInjector pins the nil-safety contract: a nil injector never
// trips, so production wiring can pass one through unconditionally.
func TestNilInjector(t *testing.T) {
	var in *Injector
	in.Set("x", Spec{Mode: ModeError})
	in.Clear("x")
	in.ClearAll()
	if in.Trips("x") != 0 {
		t.Fatal("nil injector reported trips")
	}
	st := NewStore(in, "wal", storage.NewPageStore())
	if _, err := st.Put([]byte("x")); err != nil {
		t.Fatalf("nil-injector put failed: %v", err)
	}
}

func TestWriterFailsAfterBudget(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAfter: 10}
	if n, err := w.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte("6789012345"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("budget-crossing write: n=%d err=%v", n, err)
	}
	if buf.String() != "1234567890" {
		t.Fatalf("written bytes %q, want the first 10", buf.String())
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write after failure: n=%d err=%v", n, err)
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("wal.put=error:3; wal.get=latency:5ms,prob=0.1 ;wal.compact=torn:0.25,times=2")
	if err != nil {
		t.Fatal(err)
	}
	if s := specs["wal.put"]; s.Mode != ModeError || s.Times != 3 {
		t.Fatalf("wal.put = %+v", s)
	}
	if s := specs["wal.get"]; s.Mode != ModeLatency || s.Delay != 5*time.Millisecond || s.Prob != 0.1 {
		t.Fatalf("wal.get = %+v", s)
	}
	if s := specs["wal.compact"]; s.Mode != ModeTorn || s.KeepFraction != 0.25 || s.Times != 2 {
		t.Fatalf("wal.compact = %+v", s)
	}
	for _, bad := range []string{
		"", "   ", "x", "x=", "=error", "wal.put=nope", "wal.put=error:y", "wal.put=error:-1",
		"wal.put=torn:0", "wal.put=torn:1", "wal.put=torn:2", "wal.put=latency", "wal.put=latency:fast",
		"wal.put=error,prob=0", "wal.put=error,prob=1.5", "wal.put=error,times=-1", "wal.put=error,bogus=1",
		// Stale-site references are a startup error, not a silent no-op.
		"nope.put=error", "wal.stat=error:1",
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("ParseSpecs(%q) accepted", bad)
		}
	}
}

func TestSiteCatalog(t *testing.T) {
	sites := Sites()
	if len(sites) == 0 {
		t.Fatal("empty site catalog")
	}
	for i, s := range sites {
		if i > 0 && sites[i-1].Name >= s.Name {
			t.Fatalf("catalog not sorted: %q before %q", sites[i-1].Name, s.Name)
		}
		if !KnownSite(s.Name) {
			t.Fatalf("KnownSite(%q) = false for a listed site", s.Name)
		}
	}
	for _, want := range []string{"wal.put", "wal.get", "wal.compact", "epoch.publish", "live.notify", "sse.write"} {
		if !KnownSite(want) {
			t.Fatalf("site %q missing from catalog", want)
		}
	}
	if KnownSite("no.such.site") {
		t.Fatal(`KnownSite("no.such.site") = true`)
	}
}

func TestHitAndOnTrip(t *testing.T) {
	in := New(7)
	var trips []string
	in.OnTrip(func(site string) { trips = append(trips, site) })

	if err := in.Hit("epoch.publish"); err != nil {
		t.Fatalf("unarmed Hit: %v", err)
	}
	in.Set("epoch.publish", Spec{Mode: ModeError, Times: 2})
	for i := 0; i < 2; i++ {
		if err := in.Hit("epoch.publish"); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed Hit #%d: %v", i, err)
		}
	}
	if err := in.Hit("epoch.publish"); err != nil {
		t.Fatalf("spent Hit: %v", err)
	}
	in.Set("live.notify", Spec{Mode: ModeLatency, Delay: time.Microsecond})
	if err := in.Hit("live.notify"); err != nil {
		t.Fatalf("latency Hit must proceed: %v", err)
	}
	if want := []string{"epoch.publish", "epoch.publish", "live.notify"}; !slices.Equal(trips, want) {
		t.Fatalf("OnTrip saw %v, want %v", trips, want)
	}
	var nilIn *Injector
	if err := nilIn.Hit("wal.put"); err != nil {
		t.Fatalf("nil injector Hit: %v", err)
	}
}
