package fault

import "sort"

// SiteInfo describes one registered failpoint site: where in the stack
// the hook lives and what tripping it simulates. The catalog is the
// single source of truth for chaos tooling — ParseSpecs rejects sites
// that are not listed here, so a chaos profile or -failpoints flag that
// references a renamed or deleted site fails at startup instead of
// silently injecting nothing.
type SiteInfo struct {
	Name string
	// Layer is the subsystem that hosts the hook ("wal", "epoch",
	// "live", "sse").
	Layer string
	// Desc is a one-line human summary for -failpoints=list output.
	Desc string
}

// catalog is the static registry of every failpoint site compiled into
// the stack. Keep it in sync with the hook call sites: wal.* hooks
// live in fault.Store (wrapping the WAL's PageStore), the rest in
// build-tag-gated failpoint hooks inside their packages.
var catalog = []SiteInfo{
	{Name: "wal.put", Layer: "wal", Desc: "WAL page append (error fails it, torn lands a prefix, latency delays it)"},
	{Name: "wal.get", Layer: "wal", Desc: "WAL page read during recovery or checkpointing"},
	{Name: "wal.compact", Layer: "wal", Desc: "WAL checkpoint compaction"},
	{Name: "epoch.publish", Layer: "epoch", Desc: "epoch publication after a flush; error defers the publish (reads keep the last epoch)"},
	{Name: "live.notify", Layer: "live", Desc: "registry notifier wake-up; error defers standing-query delivery to the next publish"},
	{Name: "sse.write", Layer: "sse", Desc: "SSE event write; error cuts the stream mid-flight, latency simulates a slow client"},
}

// Sites returns the registered failpoint sites sorted by name.
func Sites() []SiteInfo {
	out := make([]SiteInfo, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// KnownSite reports whether name is a registered failpoint site.
func KnownSite(name string) bool {
	for _, s := range catalog {
		if s.Name == name {
			return true
		}
	}
	return false
}
