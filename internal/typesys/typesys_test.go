package typesys

import (
	"strings"
	"testing"
)

func TestAbstractTable1(t *testing.T) {
	s := Abstract()
	types := s.Types()
	// The abstract system generates: 4 base + 4 spatial + instant +
	// range over (4 base + instant) + intime/moving over (4 base + 4
	// spatial) = 9 + 5 + 16 = 30 types.
	if len(types) != 30 {
		t.Fatalf("abstract types = %d", len(types))
	}
	for _, want := range []string{"int", "region", "range(instant)", "moving(point)", "moving(region)", "intime(bool)"} {
		if !s.HasType(parse1(want)) {
			t.Errorf("missing type %s", want)
		}
	}
	if s.HasType(T("moving", T("instant"))) {
		t.Error("moving(instant) must not be generated")
	}
	if s.HasType(T("range", T("region"))) {
		t.Error("range(region) must not be generated")
	}
}

func TestDiscreteTable2(t *testing.T) {
	s := Discrete()
	for _, want := range []string{
		"const(int)", "const(region)", "ureal", "upoint", "uregion",
		"mapping(const)", // mapping over the UNIT kind members
	} {
		_ = want
	}
	// mapping ranges over the UNIT kind: const (8 instances collapse to
	// one constructor row listing), ureal, upoint, upoints, uline,
	// uregion.
	found := map[string]bool{}
	for _, ty := range s.Types() {
		found[ty.String()] = true
	}
	for _, want := range []string{"const(int)", "const(region)", "ureal", "uregion", "mapping(ureal)", "mapping(upoint)", "mapping(const)"} {
		if want == "mapping(const)" {
			continue // const is parameterised; mapping(const(int)) is spelled via Table 3
		}
		if !found[want] {
			t.Errorf("missing discrete type %s", want)
		}
	}
	if _, ok := s.KindOf("uregion"); !ok {
		t.Error("KindOf(uregion) failed")
	}
	if k, _ := s.KindOf("mapping"); k != KindMapping {
		t.Error("mapping kind wrong")
	}
	if _, ok := s.KindOf("nonsense"); ok {
		t.Error("unknown constructor resolved")
	}
}

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 8 {
		t.Fatalf("table 3 rows = %d", len(rows))
	}
	want := map[string]string{
		"moving(int)":    "mapping(const(int))",
		"moving(string)": "mapping(const(string))",
		"moving(bool)":   "mapping(const(bool))",
		"moving(real)":   "mapping(ureal)",
		"moving(point)":  "mapping(upoint)",
		"moving(points)": "mapping(upoints)",
		"moving(line)":   "mapping(uline)",
		"moving(region)": "mapping(uregion)",
	}
	for _, r := range rows {
		if want[r.Abstract.String()] != r.Discrete.String() {
			t.Errorf("%s ↦ %s, want %s", r.Abstract, r.Discrete, want[r.Abstract.String()])
		}
	}
}

func TestFormatTables(t *testing.T) {
	t1 := Abstract().FormatTable()
	if !strings.Contains(t1, "moving") || !strings.Contains(t1, "BASE ∪ SPATIAL") {
		t.Errorf("table 1 format:\n%s", t1)
	}
	t2 := Discrete().FormatTable()
	if !strings.Contains(t2, "uregion") || !strings.Contains(t2, "UNIT") {
		t.Errorf("table 2 format:\n%s", t2)
	}
	t3 := FormatTable3()
	if !strings.Contains(t3, "mapping(upoint)") {
		t.Errorf("table 3 format:\n%s", t3)
	}
}

func TestLifting(t *testing.T) {
	r := StandardOps()
	// Original signature still present.
	if res, ok := r.Lookup("inside", []Type{T("point"), T("region")}); !ok || res.String() != "bool" {
		t.Errorf("inside static = %v, %v", res, ok)
	}
	// Lifted combinations per Section 2: moving(point) × region,
	// point × moving(region), moving × moving — all yield moving(bool).
	for _, args := range [][]Type{
		{T("moving", T("point")), T("region")},
		{T("point"), T("moving", T("region"))},
		{T("moving", T("point")), T("moving", T("region"))},
	} {
		res, ok := r.Lookup("inside", args)
		if !ok || res.String() != "moving(bool)" {
			t.Errorf("lifted inside(%v) = %v, %v", args, res, ok)
		}
	}
	// distance lifts to moving(real).
	res, ok := r.Lookup("distance", []Type{T("moving", T("point")), T("moving", T("point"))})
	if !ok || res.String() != "moving(real)" {
		t.Errorf("lifted distance = %v, %v", res, ok)
	}
	// Genuinely temporal ops are not lifted twice.
	if _, ok := r.Lookup("trajectory", []Type{T("moving", T("moving", T("point")))}); ok {
		t.Error("double lifting happened")
	}
	// Unknown op.
	if _, ok := r.Lookup("fly", []Type{T("point")}); ok {
		t.Error("unknown op resolved")
	}
}

func TestOpsListing(t *testing.T) {
	r := StandardOps()
	ops := r.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops")
	}
	var hasDistance bool
	for _, op := range ops {
		if op.Name == "distance" {
			hasDistance = true
			if len(op.Sigs) < 4 {
				t.Errorf("distance signatures = %d (want static + 3 lifted)", len(op.Sigs))
			}
		}
	}
	if !hasDistance {
		t.Error("distance missing")
	}
}

// parse1 parses "ctor" or "ctor(param)" (one level, enough for tests).
func parse1(s string) Type {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return T(s)
	}
	inner := s[open+1 : len(s)-1]
	return T(s[:open], parse1(inner))
}
