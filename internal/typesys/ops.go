package typesys

import (
	"fmt"
	"strings"
)

// OpSignature is one signature of an operation: argument types to result
// type, e.g. distance: moving(point) × moving(point) → moving(real).
type OpSignature struct {
	Args   []Type
	Result Type
}

// String renders the signature in the paper's notation.
func (s OpSignature) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s -> %s", strings.Join(parts, " × "), s.Result)
}

// Operation is a named operation with one or more signatures.
type Operation struct {
	Name string
	Sigs []OpSignature
}

// Registry holds the operations of the model and implements the
// temporal lifting mechanism: every non-temporal signature is uniformly
// made applicable to the corresponding moving types.
type Registry struct {
	ops map[string]*Operation
	// order preserves registration order for stable listings.
	order []string
}

// NewRegistry returns an empty operation registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]*Operation)}
}

// Register adds a signature for the named operation.
func (r *Registry) Register(name string, args []Type, result Type) {
	op, ok := r.ops[name]
	if !ok {
		op = &Operation{Name: name}
		r.ops[name] = op
		r.order = append(r.order, name)
	}
	op.Sigs = append(op.Sigs, OpSignature{Args: args, Result: result})
}

// liftable reports whether a type participates in lifting (BASE or
// SPATIAL constant types).
func liftable(t Type) bool {
	if len(t.Params) != 0 {
		return false
	}
	switch t.Constructor {
	case "int", "real", "string", "bool", "point", "points", "line", "region":
		return true
	}
	return false
}

// Lift applies temporal lifting to every registered non-temporal
// signature (Section 2): each subset of liftable arguments may be
// replaced by its moving counterpart, and the result becomes moving. The
// lifted signatures are added to the registry under the same operation
// name.
func (r *Registry) Lift() {
	for _, name := range r.order {
		op := r.ops[name]
		var lifted []OpSignature
		for _, sig := range op.Sigs {
			var idx []int
			for i, a := range sig.Args {
				if liftable(a) {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			// Every non-empty subset of liftable argument positions.
			for mask := 1; mask < 1<<len(idx); mask++ {
				args := make([]Type, len(sig.Args))
				copy(args, sig.Args)
				for bit, pos := range idx {
					if mask&(1<<bit) != 0 {
						args[pos] = T("moving", sig.Args[pos])
					}
				}
				res := sig.Result
				if liftable(res) {
					res = T("moving", res)
				}
				lifted = append(lifted, OpSignature{Args: args, Result: res})
			}
		}
		op.Sigs = append(op.Sigs, lifted...)
	}
}

// Lookup resolves the result type of applying the operation to the given
// argument types; ok is false if no signature matches.
func (r *Registry) Lookup(name string, args []Type) (Type, bool) {
	op, ok := r.ops[name]
	if !ok {
		return Type{}, false
	}
	key := typesKey(args)
	for _, sig := range op.Sigs {
		if typesKey(sig.Args) == key {
			return sig.Result, true
		}
	}
	return Type{}, false
}

// Ops returns all operations in registration order.
func (r *Registry) Ops() []*Operation {
	out := make([]*Operation, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.ops[name])
	}
	return out
}

func typesKey(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, "×")
}

// StandardOps returns the registry pre-loaded with the operations the
// paper uses (Section 2 and Section 5), lifting already applied.
func StandardOps() *Registry {
	r := NewRegistry()
	mp := T("moving", T("point"))
	mr := T("moving", T("real"))
	mreg := T("moving", T("region"))

	// Non-temporal operations (lifted below).
	r.Register("inside", []Type{T("point"), T("region")}, T("bool"))
	r.Register("distance", []Type{T("point"), T("point")}, T("real"))
	r.Register("length", []Type{T("line")}, T("real"))
	r.Register("size", []Type{T("region")}, T("real"))
	r.Register("perimeter", []Type{T("region")}, T("real"))
	r.Register("intersects", []Type{T("region"), T("region")}, T("bool"))

	// Projections and time interaction (genuinely temporal signatures).
	r.Register("trajectory", []Type{mp}, T("line"))
	r.Register("deftime", []Type{mp}, T("range", T("instant")))
	r.Register("atinstant", []Type{mreg, T("instant")}, T("intime", T("region")))
	r.Register("atperiods", []Type{mp, T("range", T("instant"))}, mp)
	r.Register("initial", []Type{mr}, T("intime", T("real")))
	r.Register("final", []Type{mr}, T("intime", T("real")))
	r.Register("atmin", []Type{mr}, mr)
	r.Register("atmax", []Type{mr}, mr)
	r.Register("val", []Type{T("intime", T("real"))}, T("real"))
	r.Register("inst", []Type{T("intime", T("real"))}, T("instant"))
	r.Register("speed", []Type{mp}, mr)
	r.Register("present", []Type{mp, T("instant")}, T("bool"))

	r.Lift()
	return r
}
