package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// guardedBy enforces the moguard field contract: a field annotated
// "guarded by <mu>" may only be read in a method that holds <mu>
// (RLock suffices) and only written under the full write lock;
// "immutable" fields may never be written in a method; and every other
// field of a mutex-bearing struct must carry an annotation, so the
// contract cannot erode by omission. Lock state is tracked
// intraprocedurally: Lock/RLock/Unlock/RUnlock calls on receiver
// mutexes update the state, "defer mu.Unlock()" keeps the lock held to
// the end of the method, branch bodies are analyzed with a copy of the
// state (their effects do not leak past the branch), and function
// literals launched with go start with no locks held. Methods whose
// name ends in "Locked" are callees of the locked region: they enter
// with every struct mutex held, and calling one without holding a lock
// is itself a finding. Plain functions (constructors, recovery paths)
// are exempt — the construction phase owns its values exclusively.
// Test files are exempt: tests access state single-threaded around the
// code under test, and the race detector covers them directly.
type guardedBy struct{ cfg *Config }

func (guardedBy) ID() string { return "guarded-by" }

func (c guardedBy) Run(pass *Pass) {
	if c.cfg.GuardPkgs != nil && !inScope(c.cfg.GuardPkgs, pass.Path) {
		return
	}
	guards := collectStructGuards(pass, true)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			g := guards[recvTypeName(fd.Recv.List[0].Type)]
			if g == nil {
				continue
			}
			recv := recvObject(pass, fd)
			if recv == nil {
				continue
			}
			m := &guardMethod{pass: pass, g: g, recv: recv, name: fd.Name.Name}
			st := map[string]int{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				for mu := range g.mutexes {
					st[mu] = lockW
				}
			}
			m.block(fd.Body.List, st)
		}
	}
	// Annotation debt, deferred until after the walk so each finding can
	// suggest the annotation the access pattern implies.
	names := make([]string, 0, len(guards))
	for n := range guards {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := guards[n]
		for _, u := range g.unann {
			pass.ReportSuggest(u.pos, suggestAnnotation(g, g.tally[u.name]),
				"field %s of mutex-bearing struct %s needs a moguard annotation (guarded by <mu> / immutable / atomic / unguarded <reason>)", u.name, g.name)
		}
	}
}

// suggestAnnotation synthesizes the ready-to-paste moguard annotation
// for an unannotated field: never written in a method means immutable
// (construction-phase writes are exempt by design); otherwise the
// mutex most often held across the field's accesses, ties and
// never-locked access patterns falling back to the lexicographically
// first mutex of the struct.
func suggestAnnotation(g *structGuards, t *accessTally) string {
	if t == nil || t.writes == 0 {
		return "// moguard: immutable"
	}
	mus := make([]string, 0, len(g.mutexes))
	for mu := range g.mutexes {
		mus = append(mus, mu)
	}
	sort.Strings(mus)
	best, bestN := mus[0], 0
	for _, mu := range mus {
		if n := t.held[mu]; n > bestN {
			best, bestN = mu, n
		}
	}
	return "// moguard: guarded by " + best
}

const (
	lockNone = 0
	lockR    = 1
	lockW    = 2
)

// recvObject resolves the method's receiver variable, or nil when the
// receiver is anonymous.
func recvObject(pass *Pass, fd *ast.FuncDecl) *types.Var {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return nil
	}
	v, _ := pass.Info.Defs[names[0]].(*types.Var)
	return v
}

// guardMethod walks one method body tracking which receiver mutexes are
// held.
type guardMethod struct {
	pass *Pass
	g    *structGuards
	recv *types.Var
	name string
}

func copyState(st map[string]int) map[string]int {
	out := make(map[string]int, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// block analyzes a straight-line statement list, threading lock-state
// effects from one statement to the next.
func (m *guardMethod) block(stmts []ast.Stmt, st map[string]int) {
	for _, s := range stmts {
		m.stmt(s, st)
	}
}

func (m *guardMethod) stmt(s ast.Stmt, st map[string]int) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if mu, level, ok := m.lockOp(s.X); ok {
			st[mu] = level
			return
		}
		m.read(s.X, st)
	case *ast.DeferStmt:
		// defer mu.Unlock() means the lock is held for the rest of the
		// method, which is exactly what the current state already says;
		// other deferred calls run at exit under unknown state, so only
		// their argument reads are checked here.
		if _, level, ok := m.lockOp(s.Call); ok && level == lockNone {
			return
		}
		for _, arg := range s.Call.Args {
			m.read(arg, st)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			m.read(rhs, st)
		}
		for _, lhs := range s.Lhs {
			m.write(lhs, st)
		}
	case *ast.IncDecStmt:
		m.write(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			m.read(r, st)
		}
	case *ast.IfStmt:
		m.stmt(s.Init, st)
		m.read(s.Cond, st)
		m.block(s.Body.List, copyState(st))
		if s.Else != nil {
			m.stmt(s.Else, copyState(st))
		}
	case *ast.ForStmt:
		inner := copyState(st)
		m.stmt(s.Init, inner)
		if s.Cond != nil {
			m.read(s.Cond, inner)
		}
		m.stmt(s.Post, inner)
		m.block(s.Body.List, inner)
	case *ast.RangeStmt:
		m.read(s.X, st)
		inner := copyState(st)
		if s.Key != nil {
			m.write(s.Key, inner)
		}
		if s.Value != nil {
			m.write(s.Value, inner)
		}
		m.block(s.Body.List, inner)
	case *ast.SwitchStmt:
		inner := copyState(st)
		m.stmt(s.Init, inner)
		if s.Tag != nil {
			m.read(s.Tag, inner)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				cst := copyState(inner)
				for _, e := range clause.List {
					m.read(e, cst)
				}
				m.block(clause.Body, cst)
			}
		}
	case *ast.TypeSwitchStmt:
		inner := copyState(st)
		m.stmt(s.Init, inner)
		m.stmt(s.Assign, inner)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				m.block(clause.Body, copyState(inner))
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				cst := copyState(st)
				m.stmt(clause.Comm, cst)
				m.block(clause.Body, cst)
			}
		}
	case *ast.BlockStmt:
		m.block(s.List, st)
	case *ast.LabeledStmt:
		m.stmt(s.Stmt, st)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			m.read(arg, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// The new goroutine holds no locks regardless of what the
			// spawning method holds.
			m.block(fl.Body.List, map[string]int{})
		} else {
			m.read(s.Call.Fun, st)
		}
	case *ast.SendStmt:
		m.read(s.Chan, st)
		m.read(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						m.read(v, st)
					}
				}
			}
		}
	default:
		// Branch statements and anything else without expressions.
	}
}

// lockOp recognises a Lock/RLock/Unlock/RUnlock call on a receiver
// mutex, returning the mutex name and the resulting lock level.
func (m *guardMethod) lockOp(e ast.Expr) (mu string, level int, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	v := m.recvField(sel.X)
	if v == nil {
		return "", 0, false
	}
	name, isMutex := m.g.vars[v]
	if !isMutex || !m.g.mutexes[name] {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return name, lockW, true
	case "RLock":
		return name, lockR, true
	case "Unlock", "RUnlock":
		return name, lockNone, true
	}
	return "", 0, false
}

// recvField resolves an expression of the form <recv>.<field>
// (possibly parenthesised) to the field's object, or nil.
func (m *guardMethod) recvField(e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || m.pass.Info.Uses[id] != m.recv {
		return nil
	}
	v, _ := m.pass.Info.Uses[sel.Sel].(*types.Var)
	return v
}

// read checks every receiver-field access in the expression subtree
// against the current lock state, requiring at least a read lock.
func (m *guardMethod) read(e ast.Expr, st map[string]int) {
	m.visit(e, st, lockR)
}

// write checks the assignment target: the base receiver field being
// stored through (s.f = v, s.f[i] = v, *s.f = v, s.f.x = v) needs the
// write lock; everything else inside the expression is a read.
func (m *guardMethod) write(e ast.Expr, st map[string]int) {
	target := e
	for {
		target = ast.Unparen(target)
		if v := m.recvField(target); v != nil {
			// The non-target sub-expressions (indexes, slice bounds)
			// were read-checked on the way down.
			m.check(target.(*ast.SelectorExpr), v, st, lockW)
			return
		}
		switch t := target.(type) {
		case *ast.IndexExpr:
			m.read(t.Index, st)
			target = t.X
		case *ast.StarExpr:
			target = t.X
		case *ast.SelectorExpr:
			target = t.X
		case *ast.SliceExpr:
			for _, idx := range []ast.Expr{t.Low, t.High, t.Max} {
				if idx != nil {
					m.read(idx, st)
				}
			}
			target = t.X
		default:
			m.read(e, st)
			return
		}
	}
}

// visit walks an expression checking receiver-field accesses at the
// given requirement level.
func (m *guardMethod) visit(e ast.Expr, st map[string]int, need int) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v := m.recvField(e); v != nil {
			m.check(e, v, st, need)
			return
		}
		// A Locked-suffixed method selected on the receiver (whether
		// called or captured as a method value) demands a held lock.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && m.pass.Info.Uses[id] == m.recv {
			if fn, ok := m.pass.Info.Uses[e.Sel].(*types.Func); ok {
				m.checkLockedCall(e, fn, st)
			}
		}
		m.visit(e.X, st, need)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			// Taking the address of a guarded field lets writes escape
			// the lock; require the write lock at the capture site.
			if v := m.recvField(e.X); v != nil {
				m.check(ast.Unparen(e.X).(*ast.SelectorExpr), v, st, lockW)
				return
			}
		}
		m.visit(e.X, st, need)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if v := m.recvField(sel.X); v != nil && m.g.mutexes[m.g.vars[v]] {
				return // mutex method call inside an expression: not an access
			}
		}
		m.visit(e.Fun, st, need)
		for _, arg := range e.Args {
			m.visit(arg, st, lockR)
		}
	case *ast.FuncLit:
		// Literals not launched with go run while the creating scope's
		// locks are still held (sort.Slice callbacks and the like), so
		// they inherit the current state. go statements reset it — see
		// stmt.
		inner := copyState(st)
		m.block(e.Body.List, inner)
	case *ast.ParenExpr:
		m.visit(e.X, st, need)
	case *ast.StarExpr:
		m.visit(e.X, st, need)
	case *ast.IndexExpr:
		m.visit(e.X, st, need)
		m.visit(e.Index, st, lockR)
	case *ast.IndexListExpr:
		m.visit(e.X, st, need)
		for _, idx := range e.Indices {
			m.visit(idx, st, lockR)
		}
	case *ast.SliceExpr:
		m.visit(e.X, st, need)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				m.visit(idx, st, lockR)
			}
		}
	case *ast.BinaryExpr:
		m.visit(e.X, st, lockR)
		m.visit(e.Y, st, lockR)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			m.visit(el, st, lockR)
		}
	case *ast.KeyValueExpr:
		m.visit(e.Key, st, lockR)
		m.visit(e.Value, st, lockR)
	case *ast.TypeAssertExpr:
		m.visit(e.X, st, lockR)
	default:
		// Idents, literals, types: nothing to check.
	}
}

// checkLockedCall reports a call to a *Locked helper made without
// holding any of the struct's mutexes.
func (m *guardMethod) checkLockedCall(sel *ast.SelectorExpr, fn *types.Func, st map[string]int) {
	if !strings.HasSuffix(fn.Name(), "Locked") {
		return
	}
	for mu := range m.g.mutexes {
		if st[mu] >= lockR {
			return
		}
	}
	m.pass.Report(sel.Pos(), "%s calls %s without holding a lock (the Locked suffix is a held-lock contract)", m.name, fn.Name())
}

// check applies the field's annotation to one access.
func (m *guardMethod) check(sel *ast.SelectorExpr, v *types.Var, st map[string]int, need int) {
	name := m.g.vars[v]
	if m.g.mutexes[name] {
		return // the mutex itself synchronises itself
	}
	fg, annotated := m.g.fields[name]
	if !annotated {
		// The missing annotation is reported at the declaration once the
		// walk finishes; here the access just feeds the suggestion.
		t := m.g.tally[name]
		if t == nil {
			t = &accessTally{held: map[string]int{}}
			m.g.tally[name] = t
		}
		if need == lockW {
			t.writes++
		}
		for mu := range m.g.mutexes {
			if st[mu] >= lockR {
				t.held[mu]++
			}
		}
		return
	}
	switch fg.kind {
	case guardUnguarded, guardAtomic:
		// unguarded: deliberately out of scope. atomic: atomic-mix owns
		// every access to the field.
	case guardImmutable:
		if need == lockW {
			m.pass.Report(sel.Pos(), "%s writes immutable field %s.%s (moguard: immutable means set only during construction)", m.name, m.g.name, name)
		}
	case guardMutex:
		held := st[fg.mu]
		if held >= need {
			return
		}
		if need == lockW && held == lockR {
			m.pass.Report(sel.Pos(), "%s writes %s.%s holding only %s.RLock (writes need the full Lock)", m.name, m.g.name, name, fg.mu)
			return
		}
		verb := "reads"
		if need == lockW {
			verb = "writes"
		}
		m.pass.Report(sel.Pos(), "%s %s %s.%s without holding %s (moguard: guarded by %s)", m.name, verb, m.g.name, name, fg.mu, fg.mu)
	}
}
