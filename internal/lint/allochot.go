package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// alloc-hot makes allocation behavior on the serving hot paths a
// checked contract. A function declaration whose doc comment carries
// the directive
//
//	// moguard: hotpath
//
// is a hot root: the epoch window/instant/nearest read paths, the
// ingest apply/flush path, live notify/eval, the cache hit path. The
// PR-9 call graph computes the hot region — every function statically
// reachable from a root — and inside it the check flags heap-bound
// allocation sites:
//
//   - map allocation per call (make(map...) or a map literal);
//   - append in a loop to a local slice declared without a capacity
//     hint, and append through a pointer dereference (the push-helper
//     pattern, which reallocates under growth);
//   - any fmt call (formatting allocates its variadic slice and
//     scratch);
//   - string concatenation inside a loop;
//   - boxing a concrete non-pointer value into an interface parameter
//     at a call site;
//   - address-taken composite literals (&T{...}) and new(T), which are
//     heap-bound when they escape;
//   - closures stored into fields or package state or returned (their
//     captures outlive the frame);
//   - defer inside a loop.
//
// A site is suppressed only by an adjacent (same line or line above)
//
//	// moguard: allocok <reason>
//
// directive; the reason is mandatory. Under Options.StaleSuppressions,
// allocok directives that cover no flagged site are themselves findings
// — including directives whose site the compiler no longer considers
// escaping after a fix. When escape data is present (molint -escapes),
// every finding carries a two-tier severity marker: confirmed by the
// compiler's -m=2 escape analysis, or static-only.
type allocHot struct{ cfg *Config }

func (allocHot) ID() string { return "alloc-hot" }

// Run is a no-op: the analysis is whole-program.
func (allocHot) Run(*Pass) {}

// allocokDir is one parsed allocok directive.
type allocokDir struct {
	file   string
	line   int
	col    int
	reason string
}

func (c allocHot) RunProgram(pass *ProgramPass) {
	prog := pass.Prog

	// Roots: function declarations annotated hotpath (doc comment).
	roots := c.collectRoots(pass, prog)
	rootOf := c.hotRegion(prog, roots)

	// allocok directives across every analyzed file, reasons validated
	// up front so a suppression can never silently widen.
	dirs := c.collectAllocok(pass, prog)
	usedDir := map[escKey]bool{}

	// Scan the hot region in deterministic order.
	for _, k := range prog.keys {
		root, hot := rootOf[k]
		if !hot {
			continue
		}
		fn := prog.funcs[k]
		for _, d := range fn.decls {
			scanAllocSites(pass, d.pkg, d.decl, trimModule(prog, root), dirs, usedDir)
		}
	}

	// Stale allocok audit: a directive that suppressed nothing this run
	// is drift — the site was fixed, moved, or was never hot.
	if pass.Stale {
		keys := make([]escKey, 0, len(dirs))
		for k := range dirs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].file != keys[j].file {
				return keys[i].file < keys[j].file
			}
			return keys[i].line < keys[j].line
		})
		for _, k := range keys {
			if usedDir[k] {
				continue
			}
			d := dirs[k]
			pass.ReportAt(token.Position{Filename: d.file, Line: d.line, Column: d.col},
				"moguard: allocok suppresses nothing (stale — delete it or fix the drift)")
		}
	}
}

// collectRoots finds hotpath-annotated declarations and validates the
// directive grammar (the verb takes no arguments).
func (allocHot) collectRoots(pass *ProgramPass, prog *Program) []string {
	var roots []string
	seen := map[string]bool{}
	for _, k := range prog.keys {
		fn := prog.funcs[k]
		for _, d := range fn.decls {
			if d.decl.Doc == nil {
				continue
			}
			for _, cm := range d.decl.Doc.List {
				body := moguardText(cm)
				verb, rest, _ := strings.Cut(body, " ")
				if verb != "hotpath" {
					continue
				}
				if strings.TrimSpace(rest) != "" {
					pass.ReportAt(d.pkg.Fset.Position(cm.Pos()),
						"moguard: hotpath takes no arguments")
				}
				if !seen[k] {
					seen[k] = true
					roots = append(roots, k)
				}
			}
		}
	}
	return roots
}

// hotRegion computes reachability from the roots over static call
// edges, attributing every reached function to its first root in
// sorted order (stable across runs).
func (allocHot) hotRegion(prog *Program, roots []string) map[string]string {
	rootOf := map[string]string{}
	var queue []string
	for _, r := range roots {
		if _, ok := rootOf[r]; !ok {
			rootOf[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		fn := prog.funcs[k]
		if fn == nil {
			continue
		}
		// Callees in sorted order so attribution ties break the same way
		// every run.
		callees := map[string]bool{}
		for _, call := range fn.calls {
			callees[call.callee] = true
		}
		order := make([]string, 0, len(callees))
		for cal := range callees {
			order = append(order, cal)
		}
		sort.Strings(order)
		for _, cal := range order {
			if prog.funcs[cal] == nil {
				continue // external or dynamic
			}
			if _, ok := rootOf[cal]; !ok {
				rootOf[cal] = rootOf[k]
				queue = append(queue, cal)
			}
		}
	}
	return rootOf
}

// collectAllocok parses every allocok directive in the analyzed files,
// reporting the ones missing a reason.
func (allocHot) collectAllocok(pass *ProgramPass, prog *Program) map[escKey]allocokDir {
	out := map[escKey]allocokDir{}
	for _, pf := range prog.files {
		for _, cg := range pf.f.Comments {
			for _, cm := range cg.List {
				body := moguardText(cm)
				verb, rest, _ := strings.Cut(body, " ")
				if verb != "allocok" {
					continue
				}
				pos := pf.pkg.Fset.Position(cm.Pos())
				reason := strings.TrimSpace(rest)
				if reason == "" {
					pass.ReportAt(pos, "moguard: allocok is missing a reason")
					continue
				}
				out[escKey{pos.Filename, pos.Line}] = allocokDir{
					file: pos.Filename, line: pos.Line, col: pos.Column, reason: reason,
				}
			}
		}
	}
	return out
}

func trimModule(prog *Program, key string) string {
	return strings.TrimPrefix(key, prog.Module+"/")
}

// allocScan walks one hot declaration body.
type allocScan struct {
	pass    *ProgramPass
	pkg     *Package
	root    string // display name of the attributed hot root
	dirs    map[escKey]allocokDir
	usedDir map[escKey]bool
	loops   []posSpan
}

type posSpan struct{ lo, hi token.Pos }

// scanAllocSites flags the allocation sites of one declaration in the
// hot region.
func scanAllocSites(pass *ProgramPass, pkg *Package, fd *ast.FuncDecl, root string, dirs map[escKey]allocokDir, usedDir map[escKey]bool) {
	if fd.Body == nil {
		return
	}
	s := &allocScan{pass: pass, pkg: pkg, root: root, dirs: dirs, usedDir: usedDir}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			s.loops = append(s.loops, posSpan{l.Body.Pos(), l.Body.End()})
		case *ast.RangeStmt:
			s.loops = append(s.loops, posSpan{l.Body.Pos(), l.Body.End()})
		}
		return true
	})
	uncapped := s.uncappedLocals(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if s.inLoop(x.Pos()) {
				s.report(x.Pos(), "defer inside a loop allocates a deferred frame per iteration and runs only at return")
			}
		case *ast.CallExpr:
			s.call(x, uncapped)
		case *ast.CompositeLit:
			if tv, ok := s.pkg.Info.Types[x]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					s.report(x.Pos(), "map literal allocates a map on every call; hoist it or use a lookup switch")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					s.report(x.Pos(), "address-taken composite literal is heap-bound if it escapes; reuse a buffer or return by value")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && s.inLoop(x.Pos()) && s.isString(x) {
				s.report(x.Pos(), "string concatenation in a loop reallocates on every iteration; use a byte buffer")
			}
		case *ast.AssignStmt:
			s.assign(x)
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if _, isLit := ast.Unparen(r).(*ast.FuncLit); isLit {
					s.report(r.Pos(), "returned closure outlives the frame and heap-allocates its captures")
				}
			}
		}
		return true
	})
}

// uncappedLocals collects local slice variables declared without any
// capacity hint: `var x []T`, `x := []T{}`, or a make whose capacity
// argument is the literal 0.
func (s *allocScan) uncappedLocals(body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					if v, ok := s.pkg.Info.Defs[id].(*types.Var); ok && isSliceType(v.Type()) {
						out[v] = true
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := s.pkg.Info.Defs[id].(*types.Var)
				if !ok || !isSliceType(v.Type()) {
					continue
				}
				if uncappedInit(ast.Unparen(st.Rhs[i])) {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// uncappedInit reports whether a slice initializer carries no capacity:
// an empty composite literal, or make with a literal-0 capacity.
func uncappedInit(rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(x.Args) < 2 {
			return false
		}
		last, ok := ast.Unparen(x.Args[len(x.Args)-1]).(*ast.BasicLit)
		return ok && last.Value == "0"
	}
	return false
}

func (s *allocScan) inLoop(p token.Pos) bool {
	for _, sp := range s.loops {
		if sp.lo <= p && p < sp.hi {
			return true
		}
	}
	return false
}

func (s *allocScan) isString(e ast.Expr) bool {
	tv, ok := s.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// call handles the call-site rules: builtin make/append, fmt calls, and
// interface boxing.
func (s *allocScan) call(call *ast.CallExpr, uncapped map[*types.Var]bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := s.pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make":
				if len(call.Args) >= 1 {
					if tv, ok := s.pkg.Info.Types[call.Args[0]]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							s.report(call.Pos(), "allocates a map on every call; reuse scratch or restructure the dedup")
						}
					}
				}
			case "append":
				s.appendCall(call, uncapped)
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, isPkg := s.pkg.Info.Uses[id].(*types.PkgName); isPkg && pn.Imported().Path() == "fmt" {
				s.report(call.Pos(), "fmt.%s allocates its variadic slice and formatting scratch on every call; use strconv appends or a reusable buffer", fun.Sel.Name)
				return // the fmt finding subsumes per-argument boxing
			}
		}
	}
	s.boxing(call)
}

// appendCall flags growth-prone appends: in a loop to a local slice
// with no capacity hint, or through a pointer dereference (the push
// helper shape — its growth reallocates however the caller loops).
func (s *allocScan) appendCall(call *ast.CallExpr, uncapped map[*types.Var]bool) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if star, ok := dst.(*ast.StarExpr); ok {
		_ = star
		s.report(call.Pos(), "append through a pointer dereference reallocates under growth; have callers preallocate capacity")
		return
	}
	if !s.inLoop(call.Pos()) {
		return
	}
	id, ok := dst.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := s.pkg.Info.Uses[id].(*types.Var)
	if !ok || !uncapped[v] {
		return
	}
	s.report(call.Pos(), "append in a loop to %s, declared without a capacity hint; preallocate with make(%s, 0, n)",
		id.Name, types.TypeString(v.Type(), types.RelativeTo(s.pkg.Types)))
}

// boxing flags concrete non-pointer arguments bound to interface
// parameters: the conversion heap-allocates the value's box.
func (s *allocScan) boxing(call *ast.CallExpr) {
	tv, ok := s.pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // spread passes the slice itself, no boxing
			}
			st, isSlice := params.At(np - 1).Type().Underlying().(*types.Slice)
			if !isSlice {
				continue
			}
			pt = st.Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := s.pkg.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if !boxes(at.Type) {
			continue
		}
		s.report(arg.Pos(), "%s boxes into %s here; pass a pointer-shaped value or keep the concrete type",
			types.TypeString(at.Type, types.RelativeTo(s.pkg.Types)),
			types.TypeString(pt, types.RelativeTo(s.pkg.Types)))
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: true for concrete non-pointer-shaped types.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.Invalid
	}
	return true
}

// assign flags closures stored into retained state (fields or package
// variables): the capture set outlives the frame.
func (s *allocScan) assign(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		if _, isLit := ast.Unparen(rhs).(*ast.FuncLit); !isLit {
			continue
		}
		if target, ok := retainTarget(s.pkg, st.Lhs[i]); ok {
			s.report(rhs.Pos(), "closure stored into %s outlives the frame and heap-allocates its captures", target)
		}
	}
}

// report files one allocation-site finding unless an adjacent allocok
// directive covers it, threading the two-tier escape marker when
// -escapes data is present.
func (s *allocScan) report(p token.Pos, format string, args ...any) {
	pos := s.pkg.Fset.Position(p)
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := s.dirs[escKey{pos.Filename, line}]; ok {
			s.usedDir[escKey{d.file, d.line}] = true
			s.pass.suppressed[suppKey{pos.Filename, pos.Line, s.pass.check}] = true
			return
		}
	}
	msg := fmt.Sprintf(format, args...)
	s.pass.ReportAt(pos, "hot path (via %s): %s%s", s.root, msg,
		escapeSuffix(s.pass.Escapes, pos.Filename, pos.Line))
}

// isSliceType reports whether t (or its underlying type) is a slice.
func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
