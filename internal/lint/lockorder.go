package lint

import (
	"go/token"
	"sort"
	"strings"
)

// lockOrder derives the global lock acquisition graph from the call
// graph and fails on cycles. An edge A→B means some path acquires B
// while holding A — either directly (B.Lock() inside A's critical
// section) or through a call chain (a function entered with A held
// transitively acquires B). Lock identity is type-level: every instance
// of internal/ingest.Store.mu is one class, so an acyclic class graph
// is a statement about every schedule over every set of instances. Two
// refinements keep the abstraction honest: acquiring a class while an
// instance of the same class is held is its own finding (two instances
// need an explicit instance order), and a declared order
//
//	// moguard: lockorder <a> before <b>
//
// (file scope, names resolved in the declaring package, or
// module-relative like "internal/ingest.Store.mu") inserts an edge so a
// planned order — the N-shard layout's "shard before manifest" — is
// enforced before code exists that could witness its reverse, and any
// witnessed reversal is reported as a declared-order violation rather
// than waiting for the second half of the cycle to land.
type lockOrder struct{ cfg *Config }

func (lockOrder) ID() string { return "lock-order" }

// Run is a no-op: lock-order is a ProgramCheck.
func (lockOrder) Run(*Pass) {}

// declaredOrder is one parsed lockorder directive.
type declaredOrder struct {
	a, b string
	pos  token.Position
}

func (c lockOrder) RunProgram(pass *ProgramPass) {
	prog := pass.Prog

	// Witnessed edges with their smallest witness position.
	edges := map[lockEdge]token.Position{}
	self := map[string]token.Position{}
	add := func(e lockEdge, pos token.Position) {
		if e.from == e.to {
			if old, ok := self[e.to]; !ok || lessPosition(pos, old) {
				self[e.to] = pos
			}
			return
		}
		if old, ok := edges[e]; !ok || lessPosition(pos, old) {
			edges[e] = pos
		}
	}
	for _, k := range prog.keys {
		fn := prog.funcs[k]
		for e, pos := range fn.localEdges {
			add(e, pos)
		}
		for _, call := range fn.calls {
			callee := prog.funcs[call.callee]
			if callee == nil {
				continue
			}
			for class := range callee.Acquires {
				if callee.requires[class] {
					// Entered-with-held locks are the caller's own, not a
					// new acquisition by the callee.
					continue
				}
				for _, h := range call.held {
					add(lockEdge{from: h, to: class}, call.pos)
				}
			}
		}
	}

	declared := c.collectDeclared(pass, prog)

	disp := func(class string) string {
		return strings.TrimPrefix(class, prog.Module+"/")
	}

	// Declared-order violations: a witnessed edge against a declared one.
	violated := map[lockEdge]bool{}
	for _, d := range declared {
		rev := lockEdge{from: d.b, to: d.a}
		if pos, ok := edges[rev]; ok {
			violated[rev] = true
			pass.ReportAt(pos, "%s acquired while holding %s, violating declared order \"lockorder %s before %s\" (%s:%d)",
				disp(d.a), disp(d.b), disp(d.a), disp(d.b), d.pos.Filename, d.pos.Line)
		}
	}

	// Same-class nesting: the type-level abstraction cannot order two
	// instances, so holding one while locking another needs its own
	// protocol (and a suppression naming it).
	selfClasses := make([]string, 0, len(self))
	for class := range self {
		selfClasses = append(selfClasses, class)
	}
	sort.Strings(selfClasses)
	for _, class := range selfClasses {
		pass.ReportAt(self[class], "%s acquired while an instance of %s is already held (order the instances explicitly, e.g. by index)",
			disp(class), disp(class))
	}

	// Cycle detection over witnessed ∪ declared edges.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	addAdj := func(from, to string) {
		adj[from] = append(adj[from], to)
		nodes[from], nodes[to] = true, true
	}
	for e := range edges {
		addAdj(e.from, e.to)
	}
	for _, d := range declared {
		addAdj(d.a, d.b)
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	for _, scc := range tarjanSCC(order, adj) {
		if len(scc) < 2 {
			continue // self-edges were reported above
		}
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// A cycle whose witnessed half was already reported as a
		// declared-order violation is the same defect twice.
		reported := false
		for e := range violated {
			if inSCC[e.from] && inSCC[e.to] {
				reported = true
				break
			}
		}
		if reported {
			continue
		}
		// Describe the cycle by its intra-SCC edges, anchored at the
		// smallest witness position (a pure-declared cycle anchors at
		// the first directive).
		var parts []string
		var at token.Position
		haveAt := false
		intra := make([]lockEdge, 0, len(edges))
		for e := range edges {
			if inSCC[e.from] && inSCC[e.to] {
				intra = append(intra, e)
			}
		}
		sort.Slice(intra, func(i, j int) bool {
			if intra[i].from != intra[j].from {
				return intra[i].from < intra[j].from
			}
			return intra[i].to < intra[j].to
		})
		for _, e := range intra {
			parts = append(parts, disp(e.from)+" -> "+disp(e.to))
			if pos := edges[e]; !haveAt || lessPosition(pos, at) {
				at, haveAt = pos, true
			}
		}
		for _, d := range declared {
			if inSCC[d.a] && inSCC[d.b] {
				parts = append(parts, disp(d.a)+" -> "+disp(d.b)+" (declared)")
				if !haveAt || lessPosition(d.pos, at) {
					at, haveAt = d.pos, true
				}
			}
		}
		pass.ReportAt(at, "lock acquisition cycle: %s (no consistent order exists; restructure or drop a lock before taking the other)",
			strings.Join(parts, ", "))
	}
}

// collectDeclared parses every lockorder directive in the analyzed
// files, validating the grammar and that both names resolve to known
// lock classes.
func (c lockOrder) collectDeclared(pass *ProgramPass, prog *Program) []declaredOrder {
	var out []declaredOrder
	for _, pf := range prog.files {
		for _, cg := range pf.f.Comments {
			for _, cm := range cg.List {
				body := moguardText(cm)
				verb, rest, _ := strings.Cut(body, " ")
				if verb != "lockorder" {
					continue
				}
				pos := pf.pkg.Fset.Position(cm.Pos())
				parts := strings.Fields(rest)
				if len(parts) != 3 || parts[1] != "before" {
					pass.ReportAt(pos, "moguard: lockorder wants the form \"lockorder <a> before <b>\"")
					continue
				}
				a, okA := resolveLockClass(prog, pf.pkg.Path, parts[0])
				b, okB := resolveLockClass(prog, pf.pkg.Path, parts[2])
				bad := false
				for _, nm := range []struct {
					name string
					ok   bool
				}{{parts[0], okA}, {parts[2], okB}} {
					if !nm.ok {
						pass.ReportAt(pos, "moguard: lockorder names unknown lock %q (want a mutex field as <Struct>.<field> or a package-level mutex)", nm.name)
						bad = true
					}
				}
				if bad {
					continue
				}
				if a == b {
					pass.ReportAt(pos, "moguard: lockorder orders %q before itself", parts[0])
					continue
				}
				out = append(out, declaredOrder{a: a, b: b, pos: pos})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.pos.Filename != y.pos.Filename {
			return x.pos.Filename < y.pos.Filename
		}
		if x.pos.Line != y.pos.Line {
			return x.pos.Line < y.pos.Line
		}
		return x.a+"\x00"+x.b < y.a+"\x00"+y.b
	})
	return out
}

// resolveLockClass resolves a directive name against the declared lock
// classes: package-local ("Store.mu", "walMu") or module-relative
// ("internal/ingest.Store.mu").
func resolveLockClass(prog *Program, pkgPath, name string) (string, bool) {
	if _, ok := prog.lockDecls[pkgPath+"."+name]; ok {
		return pkgPath + "." + name, true
	}
	if _, ok := prog.lockDecls[name]; ok {
		return name, true
	}
	qualified := prog.Module + "/" + name
	if _, ok := prog.lockDecls[qualified]; ok {
		return qualified, true
	}
	return "", false
}

// tarjanSCC computes strongly connected components over the sorted node
// list; the visit order makes the output deterministic. Components are
// returned in an arbitrary but stable order; callers filter to len>1.
func tarjanSCC(order []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
