package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// newTestLoader builds a loader rooted at the enclosing module.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root, nil)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// loadFixture typechecks one fixture package under testdata/src.
func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	pkgs, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d package variants, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// parseWants extracts the trailing `// want` comments from every file of
// the fixture package: line number -> expected-finding regexes.
func parseWants(t *testing.T, pkg *Package) map[int][]string {
	t.Helper()
	wants := map[int][]string{}
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants[i+1] = append(wants[i+1], m[1])
			}
		}
	}
	return wants
}

// matchFindings asserts a one-to-one correspondence between findings and
// want comments: every finding must match a want regex on its line
// (against "[check] message"), and every want must be consumed.
func matchFindings(t *testing.T, wants map[int][]string, res Result) {
	t.Helper()
	for _, f := range res.Findings {
		ws := wants[f.Pos.Line]
		matched := false
		for i, w := range ws {
			if regexp.MustCompile(w).MatchString(fmt.Sprintf("[%s] %s", f.Check, f.Message)) {
				wants[f.Pos.Line] = append(ws[:i], ws[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			t.Errorf("line %d: expected a finding matching %q, got none", line, w)
		}
	}
}

// checkByID picks one analyzer out of the suite.
func checkByID(t *testing.T, cfg *Config, id string) Check {
	t.Helper()
	for _, c := range Checks(cfg) {
		if c.ID() == id {
			return c
		}
	}
	t.Fatalf("no check with ID %q", id)
	return nil
}

// TestFixtures runs each check against its golden fixture using the same
// DefaultConfig the molint command ships (the fixture packages are part
// of the default scope precisely so the CLI demo works).
func TestFixtures(t *testing.T) {
	l := newTestLoader(t)
	cfg := DefaultConfig(l.Module)
	cases := []struct {
		fixture string
		check   string
	}{
		{"floateq", "float-eq"},
		{"ctxloop", "ctx-loop"},
		{"errdrop", "err-drop"},
		{"detpath", "det-path"},
		{"indexonly", "index-only"},
		{"guardedby", "guarded-by"},
		{"atomicmix", "atomic-mix"},
		{"goroutineexit", "goroutine-exit"},
		{"lockorder", "lock-order"},
		{"publishimmutable", "publish-immutable"},
		{"aliasretain", "alias-retain"},
		{"allochot", "alloc-hot"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg := loadFixture(t, l, tc.fixture)
			res := Run([]*Package{pkg}, []Check{checkByID(t, cfg, tc.check)})
			matchFindings(t, parseWants(t, pkg), res)
			if len(res.Findings) == 0 {
				t.Fatalf("fixture %s produced no findings; the golden file is inert", tc.fixture)
			}
		})
	}
}

// TestShardLayoutGate runs lock-order over the fixture that models the
// planned N-shard ingest layout (per-shard mutex class + manifest
// mutex, order declared up front). It must stay finding-free: this is
// the gate the sharding PR inherits, and the declared edge means a
// future manifest-before-shard acquisition fails immediately instead
// of waiting for a second witness to complete a cycle.
func TestShardLayoutGate(t *testing.T) {
	l := newTestLoader(t)
	cfg := DefaultConfig(l.Module)
	pkg := loadFixture(t, l, "lockordershard")
	res := Run([]*Package{pkg}, []Check{checkByID(t, cfg, "lock-order")})
	for _, f := range res.Findings {
		t.Errorf("shard layout gate: %s", f)
	}
}

// TestSuppressions exercises the directive machinery on the suppress
// fixture: a respected directive removes its finding and counts in the
// suppressed tally, a directive without a reason suppresses nothing and
// is itself reported, and an unknown check ID is reported. The
// expectations are asserted programmatically because a want comment
// cannot share a line with the directive it describes.
func TestSuppressions(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "suppress")
	cfg := DefaultConfig(l.Module)
	res := Run([]*Package{pkg}, Checks(cfg))

	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the respected directive)", res.Suppressed)
	}
	want := []struct {
		line    int
		check   string
		message string // substring
	}{
		{18, "suppress", "missing a reason"},
		{19, "err-drop", "call discards error result"},
		{23, "suppress", "unknown check"},
	}
	if len(res.Findings) != len(want) {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(res.Findings), len(want))
	}
	for i, w := range want {
		f := res.Findings[i]
		if f.Pos.Line != w.line || f.Check != w.check || !strings.Contains(f.Message, w.message) {
			t.Errorf("finding %d = %s; want line %d [%s] ...%s...", i, f, w.line, w.check, w.message)
		}
	}
}

// TestMolintSelfCheck turns every analyzer on the linter's own package
// and every command with the scopes pointed at themselves. The tool
// must hold itself to the conventions it enforces — including the
// concurrency-discipline suite, which is nil-scoped (repo-wide) and so
// covers these packages in the default configuration too.
func TestMolintSelfCheck(t *testing.T) {
	l := newTestLoader(t)
	dirs := []string{"internal/lint"}
	ents, err := os.ReadDir(filepath.Join(l.Root, "cmd"))
	if err != nil {
		t.Fatalf("read cmd: %v", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("cmd", e.Name()))
		}
	}
	// The original five conventions are scoped to the linter and its
	// command as in PR 4 (the other commands legitimately read the
	// clock and print best-effort); the three concurrency checks are
	// nil-scoped and cover every loaded package, closing the
	// linter-lints-itself loop over all of cmd/.
	self := []string{l.Module + "/internal/lint", l.Module + "/cmd/molint"}
	cfg := &Config{
		FloatEqPkgs:  self,
		FloatEqAllow: map[string]bool{},
		CtxLoopPkgs:  self,
		ErrDropPkgs:  self,
		DetPaths:     map[string][]string{self[0]: nil, self[1]: nil},
		// The linter does not import the data model, so its structs must
		// trivially hold no pointers into the paper's arrays.
		IndexOnlyPkgs:     self,
		IndexOnlyDataPkgs: DefaultConfig(l.Module).IndexOnlyDataPkgs,
		// Nil concurrency scopes: guarded-by, atomic-mix, and
		// goroutine-exit run everywhere by construction.
	}
	var pkgs []*Package
	for _, rel := range dirs {
		got, err := l.LoadDir(filepath.Join(l.Root, rel))
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		pkgs = append(pkgs, got...)
	}
	res := Run(pkgs, Checks(cfg))
	for _, f := range res.Findings {
		t.Errorf("self-check: %s", f)
	}
}
