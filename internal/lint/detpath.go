package lint

import (
	"go/ast"
	"go/types"
)

// detPath keeps the declared-deterministic paths deterministic: no
// wall-clock reads and no global math/rand in fault injection, the
// workload generator, index maintenance, or the ingest object
// table/compaction path. These components are pinned by tests to
// byte-identical outcomes (the crash-point sweep replays every prefix;
// compaction must stay bit-identical to the offline builder), which
// only holds when every source of variation flows from an explicit
// seed. Seeded *rand.Rand methods and the rand.New/NewSource
// constructors are fine; package-level rand functions and time.Now /
// time.Since are not.
type detPath struct{ cfg *Config }

func (detPath) ID() string { return "det-path" }

// wallClockFuncs are the time package functions that read or schedule
// against the real clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "Sleep": true,
	"NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// randConstructors are the package-level math/rand functions that only
// build seeded generators and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (c detPath) Run(pass *Pass) {
	files, ok := c.cfg.DetPaths[pass.Path]
	if !ok {
		return
	}
	covered := map[string]bool{}
	for _, f := range files {
		covered[f] = true
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		if files != nil && !covered[fileBase(pass.Fset, f)] {
			continue
		}
		// Function values are flagged as well as calls: handing time.Now
		// to a deterministic component just moves the clock read behind
		// an indirection. callFuns marks the Fun child of each call so
		// the selector visit can tell the two shapes apart.
		callFuns := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callFuns[call.Fun] = true
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			called := callFuns[sel]
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					if called {
						pass.Report(sel.Pos(), "wall-clock call time.%s in deterministic path; thread an explicit timestamp or seed", fn.Name())
					} else {
						pass.Report(sel.Pos(), "wall-clock function time.%s captured as a value in deterministic path; thread an explicit timestamp or seed", fn.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					if called {
						pass.Report(sel.Pos(), "global rand.%s in deterministic path; use a seeded *rand.Rand", fn.Name())
					} else {
						pass.Report(sel.Pos(), "global rand.%s captured as a value in deterministic path; use a seeded *rand.Rand", fn.Name())
					}
				}
			}
			return true
		})
	}
}
