package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// goroutineExit demands a provable exit path from every goroutine
// launched as a function literal: each outermost loop in the body must
// be a range loop (it ends with its input, or when the channel
// closes), a constant-bounded for loop, or contain a select with a
// channel receive that returns or breaks — the done/quit-channel
// idiom the batcher and probe loops use. A goroutine that provably
// terminates for reasons the analyzer cannot see carries
// "// moguard: bounded <reason>" on the go statement (same line or the
// line above). Named-function goroutines (go s.loop()) are out of
// reach intraprocedurally and are not checked; test files are exempt —
// the testing harness joins or times out its goroutines.
type goroutineExit struct{ cfg *Config }

func (goroutineExit) ID() string { return "goroutine-exit" }

func (c goroutineExit) Run(pass *Pass) {
	if c.cfg.GoroutineExitPkgs != nil && !inScope(c.cfg.GoroutineExitPkgs, pass.Path) {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		bounded := c.boundedDirectives(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			line := pass.Fset.Position(gs.Pos()).Line
			for _, l := range []int{line, line - 1} {
				if reason, ok := bounded[l]; ok {
					if reason != "" {
						return true
					}
					pass.Report(gs.Pos(), "moguard: bounded is missing a reason")
					break // fall through: the loops are still analyzed
				}
			}
			for _, loop := range outermostLoops(fl.Body) {
				if loopExits(pass, loop) {
					continue
				}
				pass.Report(loop.Pos(), "goroutine loop has no provable exit path (select on a done/quit channel, bound the loop, or annotate the go statement with moguard: bounded <reason>)")
			}
			return true
		})
	}
}

// boundedDirectives maps comment lines carrying a moguard bounded
// directive to its reason ("" when the reason is missing).
func (goroutineExit) boundedDirectives(pass *Pass, f *ast.File) map[int]string {
	out := map[int]string{}
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			body := moguardText(cm)
			verb, rest, _ := strings.Cut(body, " ")
			if verb != "bounded" {
				continue // field verbs are guarded-by's to validate
			}
			out[pass.Fset.Position(cm.Pos()).Line] = strings.TrimSpace(rest)
		}
	}
	return out
}

// loopExits reports whether one outermost goroutine loop provably
// terminates.
func loopExits(pass *Pass, loop ast.Stmt) bool {
	if _, ok := loop.(*ast.RangeStmt); ok {
		return true
	}
	if constantBoundLoop(pass, loop) {
		return true
	}
	return hasExitSelect(loop)
}

// hasExitSelect looks for a select statement (outside nested function
// literals) with a channel-receive case whose body returns or breaks.
func hasExitSelect(loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok || clause.Comm == nil || !isChannelReceive(clause.Comm) {
				continue
			}
			if bodyEscapes(clause.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isChannelReceive reports whether the comm statement is a receive
// (<-ch or v := <-ch), as opposed to a send.
func isChannelReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ue, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && ue.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			ue, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && ue.Op == token.ARROW
		}
	}
	return false
}

// bodyEscapes reports whether the statements (outside nested function
// literals) contain a return or a break.
func bodyEscapes(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				if n.Tok == token.BREAK {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
