package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Config scopes the checks to package paths. All paths are full import
// paths; an external test package ("…/storage_test") matches its base
// package's entry. Nil slices mean "nowhere" except where documented.
type Config struct {
	// FloatEqPkgs are the packages where raw float64 ==/!= is banned
	// (the Section 5 kernel packages). Test files are exempt: tests
	// assert bit-exact determinism on purpose.
	FloatEqPkgs []string
	// FloatEqAllow lists functions whose bodies may compare floats
	// exactly, keyed "<pkgpath>#<Recv.>Name" — the eps-helper set plus
	// the Section 3.2.2 order definitions, where exactness IS the
	// specification.
	FloatEqAllow map[string]bool
	// CtxLoopPkgs are the packages whose exported ...Ctx functions
	// must poll cancellation inside loops. Nil means every analyzed
	// package (the default: the convention is repo-wide).
	CtxLoopPkgs []string
	// ErrDropPkgs are the packages (tests included) where discarding
	// an error result is banned — the WAL/checkpoint/recovery surface.
	ErrDropPkgs []string
	// DetPaths maps deterministic packages to the file basenames the
	// rule covers; a nil file list covers the whole package. Test
	// files are exempt.
	DetPaths map[string][]string
	// IndexOnlyPkgs are the packages whose struct types must reference
	// database arrays by index, never by stored pointer (Section 4).
	IndexOnlyPkgs []string
	// IndexOnlyDataPkgs are the packages whose types count as database
	// array elements for the index-only rule.
	IndexOnlyDataPkgs []string
	// GuardPkgs scopes the guarded-by lock-discipline check. Nil means
	// every analyzed package: a mutex-bearing struct is a concurrency
	// contract wherever it lives.
	GuardPkgs []string
	// AtomicPkgs scopes the atomic-mix check. Nil means every analyzed
	// package.
	AtomicPkgs []string
	// GoroutineExitPkgs scopes the goroutine-exit check. Nil means
	// every analyzed package.
	GoroutineExitPkgs []string
	// AliasRetainPkgs scopes the alias-retain check to the packages
	// whose exported APIs receive caller-owned buffers (the hot
	// data-structure surface). Nil means nowhere: the contract is
	// opt-in per package, unlike the lock-order and publish-immutable
	// invariants, which hold wherever a mutex or an atomic publish
	// exists.
	AliasRetainPkgs []string
}

// DefaultConfig returns the repository scope: which packages each
// convention governs. module is the module path from go.mod.
func DefaultConfig(module string) *Config {
	j := func(rel string) string { return module + "/" + rel }
	cfg := &Config{
		FloatEqPkgs: []string{j("internal/geom"), j("internal/spatial"), j("internal/units"), j("internal/moving")},
		FloatEqAllow: map[string]bool{
			// The Section 3.2.2 total orders on points, segments, and
			// halfsegments are defined over exact coordinates: two
			// values are the same representation iff their floats are
			// bit-equal, so these comparisons are the specification.
			j("internal/geom") + "#Point.Less":      true,
			j("internal/geom") + "#Point.Cmp":       true,
			j("internal/geom") + "#Segment.Cmp":     true,
			j("internal/geom") + "#HalfSegment.Cmp": true,
			// EqualFunc is unit-function identity for the minimality
			// constraint of Section 3.2.4: adjacent units merge only
			// when their representations are identical, which must be
			// exact or merging would corrupt the unique representation.
			j("internal/units") + "#Const.EqualFunc":  true,
			j("internal/units") + "#UPoint.EqualFunc": true,
			j("internal/units") + "#UReal.EqualFunc":  true,
			j("internal/units") + "#MSeg.EqualFunc":   true,
		},
		ErrDropPkgs: []string{j("internal/ingest"), j("internal/storage")},
		DetPaths: map[string][]string{
			j("internal/fault"):    nil,
			j("internal/workload"): nil,
			j("internal/index"):    nil,
			// A cached result must be a pure function of (query, epoch):
			// the whole cache package is deterministic (maphash seeding
			// is allowed — it never reaches a result).
			j("internal/cache"): nil,
			// Only the live object table / compaction path of ingest is
			// declared deterministic — epochs included, since their
			// purity is what makes them sound cache keys; the pipeline
			// around them measures real time for metrics and health on
			// purpose.
			j("internal/ingest"): {"store.go", "epoch.go"},
			// Standing-query evaluation must be a pure fold over the epoch
			// sequence — same publishes in, same edges out — so predicate
			// logic and candidate selection are deterministic; the registry
			// and subscription files around them stamp wall-clock publish
			// times and measure evaluation latency on purpose.
			j("internal/live"): {"predicate.go", "eval.go"},
			// The simulator's fleets, oracle, chaos schedules and verdict
			// hashing must replay bit-for-bit from the seed; the harness
			// loop (run.go, capacity.go) paces and times against the wall
			// clock on purpose.
			j("internal/sim"): {"sim.go", "fleet.go", "oracle.go", "chaos.go", "verdict.go", "invariant.go"},
		},
		IndexOnlyPkgs: []string{j("internal/storage"), j("internal/index")},
		IndexOnlyDataPkgs: []string{
			j("internal/geom"), j("internal/spatial"), j("internal/units"),
			j("internal/moving"), j("internal/temporal"), j("internal/mapping"), j("internal/base"),
		},
		AliasRetainPkgs: []string{j("internal/index"), j("internal/ingest"), j("internal/cache"), j("internal/live")},
	}
	// The golden fixtures under internal/lint/testdata are in scope so
	// that running molint directly on a fixture directory demonstrates
	// the check (and exits non-zero). The recursive ./... walk skips
	// testdata directories, so the default repo run never loads them.
	fix := func(rel string) string { return j("internal/lint/testdata/src/" + rel) }
	cfg.FloatEqPkgs = append(cfg.FloatEqPkgs, fix("floateq"))
	cfg.FloatEqAllow[fix("floateq")+"#allowed"] = true
	cfg.FloatEqAllow[fix("floateq")+"#key.Cmp"] = true
	cfg.ErrDropPkgs = append(cfg.ErrDropPkgs, fix("errdrop"), fix("suppress"))
	cfg.DetPaths[fix("detpath")] = nil
	cfg.IndexOnlyPkgs = append(cfg.IndexOnlyPkgs, fix("indexonly"))
	cfg.IndexOnlyDataPkgs = append(cfg.IndexOnlyDataPkgs, fix("indexonly"))
	cfg.AliasRetainPkgs = append(cfg.AliasRetainPkgs, fix("aliasretain"))
	// molint's own CLI and library are part of the enforced surface:
	// cmd/molint deliberately drops terminal-write errors behind
	// suppressions, and both packages are det-path clean (the per-check
	// clock is injected, never read in package lint) — keeping them in
	// scope means those suppressions stay load-bearing rather than
	// rotting into stale ones.
	cfg.ErrDropPkgs = append(cfg.ErrDropPkgs, j("cmd/molint"))
	cfg.DetPaths[j("internal/lint")] = nil
	cfg.DetPaths[j("cmd/molint")] = nil
	return cfg
}

// Checks returns the full analyzer suite over cfg.
func Checks(cfg *Config) []Check {
	return []Check{
		floatEq{cfg},
		ctxLoop{cfg},
		errDrop{cfg},
		detPath{cfg},
		indexOnly{cfg},
		guardedBy{cfg},
		atomicMix{cfg},
		goroutineExit{cfg},
		lockOrder{cfg},
		publishImmutable{cfg},
		aliasRetain{cfg},
		allocHot{cfg},
	}
}

// inScope reports whether a package path matches one of the scope
// entries, treating an external test package as its base package.
func inScope(scope []string, pkgPath string) bool {
	base := strings.TrimSuffix(pkgPath, "_test")
	for _, s := range scope {
		if s == pkgPath || s == base {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file position is in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

func fileBase(fset *token.FileSet, f *ast.File) string {
	return filepath.Base(fset.Position(f.Pos()).Filename)
}

// funcKey builds the FloatEqAllow key for a declaration:
// "<pkgpath>#Name" for functions, "<pkgpath>#Recv.Name" for methods
// (pointer receivers and generic receivers reduce to the base type
// name).
func funcKey(pkgPath string, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
			name = tn + "." + name
		}
	}
	return pkgPath + "#" + name
}

func recvTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
