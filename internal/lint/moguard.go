package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The moguard directive grammar makes concurrency discipline a checked
// contract instead of a comment convention. On struct fields:
//
//	// moguard: guarded by <mu>    read/written only while holding <mu>
//	//                             (RLock suffices for reads)
//	// moguard: immutable          set during construction, never
//	//                             written in a method
//	// moguard: atomic             accessed only through sync/atomic
//	// moguard: unguarded <reason> deliberately unsynchronised
//
// and on go statements (same line or the line above):
//
//	// moguard: bounded <reason>   the goroutine provably terminates
//	//                             for a reason the analyzer cannot see
//
// Every field of a struct that declares or embeds a sync.Mutex or
// sync.RWMutex must carry one of the field forms (fields whose type is
// itself from package sync — WaitGroup, Once, the mutexes — are exempt:
// they synchronise themselves). The guarded-by check owns grammar
// validation; atomic-mix and goroutine-exit consume the parsed result.
const moguardPrefix = "moguard:"

// guardKind classifies one field annotation.
type guardKind int

const (
	guardNone guardKind = iota
	guardMutex
	guardImmutable
	guardAtomic
	guardUnguarded
)

// fieldGuard is one parsed field annotation.
type fieldGuard struct {
	kind guardKind
	mu   string // guardMutex: the mutex field name
}

// structGuards is the annotation table of one named struct type.
type structGuards struct {
	name    string
	mutexes map[string]bool       // mutex-typed field names ("mu", embedded "Mutex")
	rw      map[string]bool       // which of those are RWMutexes
	fields  map[string]fieldGuard // annotated fields by name
	vars    map[*types.Var]string // field object -> field name
	// unann lists the fields that need an annotation and lack one, in
	// declaration order. guardedBy reports them after walking the
	// methods, so each finding can carry a ready-to-paste suggestion
	// synthesized from how the field is actually accessed.
	unann []unannField
	// tally accumulates method accesses of unannotated fields.
	tally map[string]*accessTally
}

// unannField is one missing-annotation site.
type unannField struct {
	name string
	pos  token.Pos
}

// accessTally summarizes how methods touch one unannotated field.
type accessTally struct {
	writes int
	held   map[string]int // mutex name -> accesses made while holding it
}

// moguardText extracts the directive body from a comment, or "" when
// the comment is not a moguard directive.
func moguardText(c *ast.Comment) string {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
	if !strings.HasPrefix(text, moguardPrefix) {
		return ""
	}
	body := strings.TrimSpace(strings.TrimPrefix(text, moguardPrefix))
	// A nested "//" ends the directive (the fixture files put their
	// want expectations in the same trailing comment).
	body, _, _ = strings.Cut(body, "//")
	return strings.TrimSpace(body)
}

// parseFieldGuard parses one field directive body. ok is false when the
// directive is malformed, with msg saying how.
func parseFieldGuard(body string) (g fieldGuard, msg string) {
	verb, rest, _ := strings.Cut(body, " ")
	rest = strings.TrimSpace(rest)
	switch verb {
	case "guarded":
		by, mu, _ := strings.Cut(rest, " ")
		mu = strings.TrimSpace(mu)
		if by != "by" || mu == "" {
			return g, "moguard: guarded wants the form \"guarded by <mutex>\""
		}
		return fieldGuard{kind: guardMutex, mu: mu}, ""
	case "immutable":
		return fieldGuard{kind: guardImmutable}, ""
	case "atomic":
		return fieldGuard{kind: guardAtomic}, ""
	case "unguarded":
		if rest == "" {
			return g, "moguard: unguarded is missing a reason"
		}
		return fieldGuard{kind: guardUnguarded}, ""
	case "bounded":
		return g, "moguard: bounded applies to go statements, not struct fields"
	case "retained":
		return g, "moguard: retained applies to store statements, not struct fields"
	case "lockorder":
		return g, "moguard: lockorder applies at file scope, not struct fields"
	case "hotpath":
		return g, "moguard: hotpath applies to function declarations, not struct fields"
	case "allocok":
		return g, "moguard: allocok applies to allocation sites, not struct fields"
	case "":
		return g, "moguard: directive is missing a verb"
	default:
		return g, "moguard: unknown verb \"" + verb + "\""
	}
}

// mutexKind reports whether t is sync.Mutex (1) or sync.RWMutex (2),
// directly or behind one pointer; 0 otherwise.
func mutexKind(t types.Type) int {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	switch obj.Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// isSyncType reports whether t is any type from package sync (a
// self-synchronising primitive: WaitGroup, Once, Mutex, ...), directly
// or behind one pointer.
func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// fieldAnnotation finds the moguard directive attached to a field (the
// trailing comment or the doc comment above it). The second result is
// the comment position for error reporting; ok distinguishes "no
// directive" from a directive that parsed empty.
func fieldAnnotation(field *ast.Field) (body string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if text := moguardText(c); text != "" || strings.Contains(c.Text, moguardPrefix) {
				return text, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// collectStructGuards builds the annotation table for every named
// struct type in the package. With report set (the guarded-by pass) it
// also files the grammar findings — malformed directives, guards naming
// a non-mutex, unannotated fields of mutex-bearing structs — so the
// annotation debt of a package can never silently grow.
func collectStructGuards(pass *Pass, report bool) map[string]*structGuards {
	out := map[string]*structGuards{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			// Test-file helper structs run single-threaded under the
			// race detector; the contract covers production types.
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				g := collectOneStruct(pass, ts.Name.Name, st, report)
				if g != nil {
					out[g.name] = g
				}
			}
		}
	}
	return out
}

func collectOneStruct(pass *Pass, name string, st *ast.StructType, report bool) *structGuards {
	g := &structGuards{
		name:    name,
		mutexes: map[string]bool{},
		rw:      map[string]bool{},
		fields:  map[string]fieldGuard{},
		vars:    map[*types.Var]string{},
		tally:   map[string]*accessTally{},
	}
	// The typechecked struct supplies field objects for embedded fields,
	// which have no name ident to look up in Defs.
	var stype *types.Struct
	if obj := pass.Types.Scope().Lookup(name); obj != nil {
		if under := obj.Type().Underlying(); under != nil {
			stype, _ = under.(*types.Struct)
		}
	}
	// First sweep: find the mutex fields, so "guarded by <mu>" can be
	// validated against them in the second sweep.
	type pending struct {
		names []string
		field *ast.Field
		typ   types.Type
	}
	var fields []pending
	for _, field := range st.Fields.List {
		var names []string
		var vars []*types.Var
		if len(field.Names) == 0 { // embedded
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			base := tv.Type
			if p, isPtr := base.(*types.Pointer); isPtr {
				base = p.Elem()
			}
			named, ok := base.(*types.Named)
			if !ok {
				continue
			}
			names = []string{named.Obj().Name()}
			var fv *types.Var
			if stype != nil {
				for i := 0; i < stype.NumFields(); i++ {
					if f := stype.Field(i); f.Anonymous() && f.Name() == names[0] {
						fv = f
						break
					}
				}
			}
			vars = []*types.Var{fv}
		} else {
			for _, id := range field.Names {
				names = append(names, id.Name)
				v, _ := pass.Info.Defs[id].(*types.Var)
				vars = append(vars, v)
			}
		}
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		for i, n := range names {
			if vars[i] != nil {
				g.vars[vars[i]] = n
			}
			if k := mutexKind(tv.Type); k != 0 {
				g.mutexes[n] = true
				if k == 2 {
					g.rw[n] = true
				}
			}
		}
		fields = append(fields, pending{names: names, field: field, typ: tv.Type})
	}
	// Second sweep: parse annotations and, in scope, report the debt.
	for _, p := range fields {
		body, pos, has := fieldAnnotation(p.field)
		if has {
			fg, msg := parseFieldGuard(body)
			if msg != "" {
				if report {
					pass.Report(pos, "%s", msg)
				}
				continue
			}
			if fg.kind == guardMutex && !g.mutexes[fg.mu] {
				if report {
					pass.Report(pos, "moguard: guarded by %s names no mutex field of %s", fg.mu, g.name)
				}
				continue
			}
			for _, n := range p.names {
				g.fields[n] = fg
			}
			continue
		}
		// No annotation: fine unless the struct bears a mutex and the
		// field is not itself a sync primitive. The finding is deferred
		// to guardedBy.Run (after the method walk) so it can carry an
		// annotation suggestion derived from the access pattern.
		if report && len(g.mutexes) > 0 && !isSyncType(p.typ) {
			for _, n := range p.names {
				if !g.mutexes[n] {
					g.unann = append(g.unann, unannField{name: n, pos: p.field.Pos()})
				}
			}
		}
	}
	if len(g.mutexes) == 0 && len(g.fields) == 0 {
		return nil // nothing to enforce
	}
	return g
}
