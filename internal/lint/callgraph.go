package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural foundation the lock-order,
// publish-immutable, and alias-retain checks share: a deterministic
// call graph over every analyzed package variant (default, faultinject,
// debugcheck) with one summary per function. Functions are keyed by
// their qualified name — "<pkgpath>.<Recv.>Name" — so the same function
// seen under several build variants collapses into one node whose raw
// facts are the union over variants (a tag-gated body contributes its
// edges exactly like an untagged one). Everything is ordered: node keys
// are sorted, call edges are recorded in source order, and fixpoints
// iterate the sorted key list, so two runs over the same tree produce
// byte-identical reports.
//
// Per-function summaries (DESIGN.md §10):
//
//   - locks: which lock classes the function acquires (directly and
//     transitively through calls), which it requires at entry (the
//     *Locked suffix contract), and the acquired-while-held edges its
//     body witnesses;
//   - stores: which parameters (receiver = parameter 0) the function
//     may write through — a store to p.f, *p, or p[i], directly or by
//     passing the parameter to a callee that stores through it;
//   - publishes: which parameters reach an atomic.Pointer/atomic.Value
//     Store/Swap/CompareAndSwap;
//   - retains: which parameters are stored into struct fields or
//     package state without a "moguard: retained" annotation;
//   - returned aliases: which results may alias which parameters
//     (identity, re-slicing, or a callee's returned alias).
//
// A lock class is a type-level abstraction: every instance of a mutex
// field shares one identity, "<pkgpath>.<Struct>.<field>" for fields
// and "<pkgpath>.<var>" for package-level mutexes. That is the standard
// lock-order abstraction — it cannot tell two shards apart, which is
// exactly the property that makes the derived acquisition graph a total
// statement about every schedule.

// Program is the whole-run interprocedural view handed to program
// checks.
type Program struct {
	Module string
	funcs  map[string]*ProgFunc
	keys   []string // sorted; iteration order for every fixpoint
	// files are the analyzed non-test files, one entry per distinct
	// filename (variants re-parse shared files; the first loader wins),
	// for checks that read file-scope directives.
	files []progFile
	// lockDecls maps every known lock class to its declaration site, so
	// declared-order (lockorder) directives can be validated against
	// locks that exist rather than locks that happen to be acquired.
	lockDecls map[string]token.Position
}

// Func returns the node for a qualified function key, or nil.
func (p *Program) Func(key string) *ProgFunc { return p.funcs[key] }

// lockEdge is one acquired-while-held observation: to was acquired (or
// is transitively acquired by a callee) while from was held.
type lockEdge struct{ from, to string }

// progCall is one resolved call site with the lock classes held when
// control passes to the callee.
type progCall struct {
	callee string
	held   []string // sorted lock classes held at the call
	pos    token.Position
}

// paramFlow records a caller parameter passed directly (or through a
// local alias) as a callee argument — the edges the stores/publishes/
// retains fixpoints propagate along.
type paramFlow struct {
	callee      string
	calleeParam int
	callerParam int
	pos         token.Position
}

// retFlow records "return g(...)": result maps through g's returned
// aliases back to the caller's parameters.
type retFlow struct {
	result int
	callee string
	args   map[int]int // callee param -> caller param
}

// declSite is one variant occurrence of a function declaration.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// progFile is one analyzed source file with its owning package variant.
type progFile struct {
	pkg *Package
	f   *ast.File
}

// retainSite is one unannotated store of a parameter alias into struct
// or package state, with enough context to report it.
type retainSite struct {
	param  int
	pos    token.Position
	target string // "field <name>" or "package variable <name>"
}

// ProgFunc is one call-graph node: raw facts unioned over variants plus
// the fixpoint summaries.
type ProgFunc struct {
	Key   string
	decls []declSite

	// Raw facts.
	directAcquires map[string]bool
	requires       map[string]bool // held at entry (*Locked contract)
	localEdges     map[lockEdge]token.Position
	calls          []progCall
	storesDirect   map[int]bool
	publishDirect  map[int]bool
	retainsDirect  map[int]bool
	retainSites    []retainSite
	flows          []paramFlow
	retDirect      map[int]map[int]bool
	retFlows       []retFlow

	// Fixpoint summaries.
	Acquires     map[string]bool     // transitive lock classes acquired
	Stores       map[int]bool        // parameters written through
	Publishes    map[int]bool        // parameters reaching an atomic publish
	Retains      map[int]bool        // parameters stored into retained state
	ReturnsAlias map[int]map[int]bool // result index -> parameter indices
}

// Decls exposes the function's analyzed declaration sites.
func (f *ProgFunc) Decls() []declSite { return f.decls }

// funcKeyOf builds the canonical node key for a declaration.
func funcKeyOf(pkgPath string, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
			name = tn + "." + name
		}
	}
	return pkgPath + "." + name
}

// calleeKey resolves a call expression to a node key, or "" when the
// callee is dynamic (interface method, function value) or external.
func calleeKey(pass *Package, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	name := fn.Name()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return "" // interface method: dynamic dispatch
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			return ""
		}
		name = named.Obj().Name() + "." + name
	}
	return fn.Pkg().Path() + "." + name
}

// lockClassOf derives the lock class acquired by a
// Lock/RLock/Unlock/RUnlock call, or "". level reports the resulting
// state (lockW, lockR, lockNone).
func lockClassOf(pass *Package, call *ast.CallExpr) (class string, level int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock":
		level = lockW
	case "RLock":
		level = lockR
	case "Unlock", "RUnlock":
		level = lockNone
	default:
		return "", 0, false
	}
	class = lockClassOfExpr(pass, sel.X)
	if class == "" {
		return "", 0, false
	}
	return class, level, true
}

// lockClassOfExpr names the lock class of the mutex-valued expression a
// sync method was selected from: "<pkg>.<Struct>.<field>" when the
// mutex is a struct field, "<pkg>.<var>" for a package-level mutex, and
// "<pkg>.<Struct>.<Mutex>" when the call goes through an embedded
// mutex's promoted method. Local mutex variables have no class — they
// cannot participate in a cross-function order.
func lockClassOfExpr(pass *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		v, ok := pass.Info.Uses[x.Sel].(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			if owner := namedOwner(pass, x.X); owner != "" {
				return owner + "." + v.Name()
			}
			return ""
		}
		if isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		v, ok := pass.Info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		// A promoted method on a struct value that embeds a mutex:
		// s.Lock() with s a local/param/receiver of a mutex-embedding
		// named type. The class is the embedded field.
		if owner, embedded := embeddedMutexOwner(v.Type()); owner != "" {
			return owner + "." + embedded
		}
		return ""
	default:
		return ""
	}
}

// namedOwner names the struct type a field was selected from, as
// "<pkgpath>.<Name>".
func namedOwner(pass *Package, recv ast.Expr) string {
	tv, ok := pass.Info.Types[recv]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// embeddedMutexOwner reports the owner key and embedded mutex field
// name when t is (a pointer to) a named struct embedding sync.Mutex or
// sync.RWMutex.
func embeddedMutexOwner(t types.Type) (owner, embedded string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Anonymous() && mutexKind(f.Type()) != 0 {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name(), f.Name()
		}
	}
	return "", ""
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// selfSynchronized reports whether t (behind one pointer) is a struct
// that carries its own synchronization — a sync primitive or a typed
// atomic among its immediate fields, or a field that is itself such a
// struct. Sharing and mutating these after handing a pointer out is
// their design (fault.Injector, obs.Metrics), so the publish-immutable
// and alias-retain contracts, which protect plain caller-owned data,
// exempt them.
func selfSynchronized(t types.Type) bool {
	return selfSyncDepth(t, 2)
}

func selfSyncDepth(t types.Type, depth int) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if isSyncType(t) || isTypedAtomic(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok || depth == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncType(ft) || isTypedAtomic(ft) {
			return true
		}
		// One level of nesting covers the "stats block inside the
		// service struct" layout without walking the whole type graph.
		if _, isStruct := ft.Underlying().(*types.Struct); isStruct && selfSyncDepth(ft, depth-1) {
			return true
		}
	}
	return false
}

// BuildProgram constructs the call graph and computes every summary to
// fixpoint. Test files and external test packages are excluded: the
// interprocedural contracts cover production code, and the race
// detector covers the tests directly.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		funcs:     map[string]*ProgFunc{},
		lockDecls: map[string]token.Position{},
	}
	seenFiles := map[string]bool{}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		if prog.Module == "" {
			prog.Module = moduleOfPath(pkg.Path)
		}
		for _, f := range pkg.Files {
			if isTestFile(pkg.Fset, f) {
				continue
			}
			if name := pkg.Fset.Position(f.Pos()).Filename; !seenFiles[name] {
				seenFiles[name] = true
				prog.files = append(prog.files, progFile{pkg: pkg, f: f})
			}
			collectLockDecls(prog, pkg, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := funcKeyOf(pkg.Path, fd)
				fn := prog.funcs[key]
				if fn == nil {
					fn = &ProgFunc{
						Key:            key,
						directAcquires: map[string]bool{},
						requires:       map[string]bool{},
						localEdges:     map[lockEdge]token.Position{},
						storesDirect:   map[int]bool{},
						publishDirect:  map[int]bool{},
						retainsDirect:  map[int]bool{},
						retDirect:      map[int]map[int]bool{},
					}
					prog.funcs[key] = fn
				}
				// The same file can be loaded by several variants (the
				// default and faultinject loaders both parse untagged
				// files); scanning one position twice would duplicate
				// call edges, so each (key, position) is scanned once.
				pos := pkg.Fset.Position(fd.Pos())
				dup := false
				for _, d := range fn.decls {
					if d.pkg.Fset.Position(d.decl.Pos()) == pos {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				fn.decls = append(fn.decls, declSite{pkg: pkg, decl: fd})
				scanFunc(prog, fn, pkg, fd)
			}
		}
	}
	prog.keys = make([]string, 0, len(prog.funcs))
	for k := range prog.funcs {
		prog.keys = append(prog.keys, k)
	}
	sort.Strings(prog.keys)
	prog.fixpoint()
	return prog
}

// moduleOfPath recovers the module path prefix from an analyzed package
// path ("<module>/internal/…" or the module itself).
func moduleOfPath(path string) string {
	if i := strings.Index(path, "/internal/"); i >= 0 {
		return path[:i]
	}
	if i := strings.Index(path, "/cmd/"); i >= 0 {
		return path[:i]
	}
	return path
}

// collectLockDecls registers the lock classes a file declares: mutex
// fields of named structs and package-level mutex vars.
func collectLockDecls(prog *Program, pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				st, ok := s.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					tv, ok := pkg.Info.Types[field.Type]
					if !ok || mutexKind(tv.Type) == 0 {
						continue
					}
					owner := pkg.Path + "." + s.Name.Name
					if len(field.Names) == 0 { // embedded sync.Mutex
						base := tv.Type
						if p, isPtr := base.(*types.Pointer); isPtr {
							base = p.Elem()
						}
						if named, isNamed := base.(*types.Named); isNamed {
							prog.lockDecls[owner+"."+named.Obj().Name()] = pkg.Fset.Position(field.Pos())
						}
						continue
					}
					for _, id := range field.Names {
						prog.lockDecls[owner+"."+id.Name] = pkg.Fset.Position(id.Pos())
					}
				}
			case *ast.ValueSpec:
				if gd.Tok != token.VAR {
					continue
				}
				for _, id := range s.Names {
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok && mutexKind(v.Type()) != 0 {
						prog.lockDecls[pkg.Path+"."+id.Name] = pkg.Fset.Position(id.Pos())
					}
				}
			}
		}
	}
}

// paramObjects maps the declaration's receiver and parameters to their
// summary indices: receiver (if any) is 0, parameters follow in order.
func paramObjects(pkg *Package, fd *ast.FuncDecl) (map[*types.Var]int, int) {
	idx := map[*types.Var]int{}
	n := 0
	add := func(names []*ast.Ident) {
		if len(names) == 0 {
			n++ // unnamed parameter still occupies a position
			return
		}
		for _, id := range names {
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok && id.Name != "_" {
				idx[v] = n
			}
			n++
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		add(fd.Recv.List[0].Names)
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			add(field.Names)
		}
	}
	return idx, n
}

// scanFunc extracts one declaration's raw facts into fn.
func scanFunc(prog *Program, fn *ProgFunc, pkg *Package, fd *ast.FuncDecl) {
	params, _ := paramObjects(pkg, fd)
	s := &funcScan{
		prog:    prog,
		fn:      fn,
		pkg:     pkg,
		params:  params,
		aliases: map[*types.Var]map[int]bool{},
		results: resultCount(fd),
	}
	held := map[string]int{}
	// The *Locked suffix is the held-at-entry contract (guarded-by
	// enforces it at call sites): every mutex class of the receiver's
	// struct is held when the function is entered.
	if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]; ok {
			t := tv.Type
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				if st, isStruct := named.Underlying().(*types.Struct); isStruct {
					owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
					for i := 0; i < st.NumFields(); i++ {
						f := st.Field(i)
						if mutexKind(f.Type()) != 0 {
							class := owner + "." + f.Name()
							held[class] = lockW
							fn.requires[class] = true
						}
					}
				}
			}
		}
	}
	s.block(fd.Body.List, held)
}

func resultCount(fd *ast.FuncDecl) int {
	if fd.Type.Results == nil {
		return 0
	}
	n := 0
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

// funcScan walks one body in statement order, tracking held lock
// classes (branch bodies get copies, exactly like guarded-by) and a
// syntactic may-alias relation from local variables back to parameters.
type funcScan struct {
	prog    *Program
	fn      *ProgFunc
	pkg     *Package
	params  map[*types.Var]int
	aliases map[*types.Var]map[int]bool
	results int
}

// paramsOf returns the parameter indices an expression may alias:
// parameters themselves, locals assigned from them, re-slicings,
// addresses of their elements, and slice-to-slice conversions. This is
// the syntactic core shared by the raw scan; the alias-retain check
// layers callee summaries on top.
func (s *funcScan) paramsOf(e ast.Expr) map[int]bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := s.pkg.Info.Uses[x].(*types.Var); ok {
			if i, isParam := s.params[v]; isParam {
				return map[int]bool{i: true}
			}
			return s.aliases[v]
		}
	case *ast.SliceExpr:
		return s.paramsOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return s.paramsOf(x.X)
		}
	case *ast.IndexExpr:
		// p[i] is an element value, not an alias — but &p[i] routed here
		// via UnaryExpr needs the base, so only the address case above
		// descends into an index.
		return nil
	case *ast.CallExpr:
		// A slice->slice conversion aliases its operand; a call does not
		// (the raw scan stays syntactic — the reporting passes consult
		// callee summaries instead).
		if tv, ok := s.pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				return s.paramsOf(x.Args[0])
			}
		}
	case *ast.CompositeLit:
		// A composite value holding a parameter alias holds the alias:
		// notice{buf: p} or &Sub{out: p} taints the whole value.
		var out map[int]bool
		for _, el := range x.Elts {
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				el = kv.Value
			}
			for i := range s.paramsOf(el) {
				if out == nil {
					out = map[int]bool{}
				}
				out[i] = true
			}
		}
		return out
	}
	return nil
}

func copyHeld(st map[string]int) map[string]int {
	out := make(map[string]int, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func heldList(st map[string]int) []string {
	out := make([]string, 0, len(st))
	for k, v := range st {
		if v >= lockR {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (s *funcScan) block(stmts []ast.Stmt, held map[string]int) {
	for _, st := range stmts {
		s.stmt(st, held)
	}
}

func (s *funcScan) stmt(st ast.Stmt, held map[string]int) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if class, level, ok := lockClassOf(s.pkg, call); ok {
				s.lockEvent(class, level, call.Pos(), held)
				return
			}
		}
		s.expr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// function — which is what the current state already says.
		if _, level, ok := lockClassOf(s.pkg, st.Call); ok && level == lockNone {
			return
		}
		s.expr(st.Call, held)
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			s.expr(arg, held)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// A new goroutine holds nothing, whatever the spawner holds.
			s.block(fl.Body.List, map[string]int{})
		} else {
			s.expr(st.Call.Fun, held)
		}
	case *ast.AssignStmt:
		s.assign(st, held)
	case *ast.ReturnStmt:
		s.ret(st, held)
	case *ast.IncDecStmt:
		s.storeTarget(st.X)
		s.expr(st.X, held)
	case *ast.SendStmt:
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.IfStmt:
		s.stmt(st.Init, held)
		s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		s.stmt(st.Init, inner)
		if st.Cond != nil {
			s.expr(st.Cond, inner)
		}
		s.stmt(st.Post, inner)
		s.block(st.Body.List, inner)
	case *ast.RangeStmt:
		s.expr(st.X, held)
		s.block(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		inner := copyHeld(held)
		s.stmt(st.Init, inner)
		if st.Tag != nil {
			s.expr(st.Tag, inner)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				cst := copyHeld(inner)
				for _, e := range clause.List {
					s.expr(e, cst)
				}
				s.block(clause.Body, cst)
			}
		}
	case *ast.TypeSwitchStmt:
		inner := copyHeld(held)
		s.stmt(st.Init, inner)
		s.stmt(st.Assign, inner)
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				s.block(clause.Body, copyHeld(inner))
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				cst := copyHeld(held)
				s.stmt(clause.Comm, cst)
				s.block(clause.Body, cst)
			}
		}
	case *ast.BlockStmt:
		s.block(st.List, held)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, val := range vs.Values {
						s.expr(val, held)
						if i < len(vs.Names) {
							s.bindAlias(vs.Names[i], s.paramsOf(val))
						}
					}
				}
			}
		}
	default:
	}
}

// lockEvent updates the held set and records acquisition edges: every
// held class orders before the newly acquired one.
func (s *funcScan) lockEvent(class string, level int, pos token.Pos, held map[string]int) {
	if level == lockNone {
		delete(held, class)
		return
	}
	position := s.pkg.Fset.Position(pos)
	s.fn.directAcquires[class] = true
	for h, l := range held {
		if l < lockR {
			continue
		}
		s.recordEdge(lockEdge{from: h, to: class}, position)
	}
	held[class] = level
}

// recordEdge keeps the smallest witness position per edge so reports
// are stable across runs.
func (s *funcScan) recordEdge(e lockEdge, pos token.Position) {
	if old, ok := s.fn.localEdges[e]; !ok || lessPosition(pos, old) {
		s.fn.localEdges[e] = pos
	}
}

func lessPosition(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// assign threads aliases and records stores/retention facts.
func (s *funcScan) assign(st *ast.AssignStmt, held map[string]int) {
	for _, rhs := range st.Rhs {
		s.expr(rhs, held)
	}
	for i, lhs := range st.Lhs {
		s.storeTarget(lhs)
		var src map[int]bool
		if len(st.Rhs) == len(st.Lhs) {
			src = s.paramsOf(st.Rhs[i])
			s.recordRetention(st.Lhs[i], st.Rhs[i])
		}
		s.bindAlias(lhs, src)
		s.expr(lhs, held)
	}
}

// bindAlias rebinds a local identifier's alias set (replacing any
// previous binding: the walk is flow-ordered, and branch bodies operate
// on the same alias table conservatively).
func (s *funcScan) bindAlias(lhs ast.Expr, src map[int]bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := s.pkg.Info.Defs[id].(*types.Var)
	if !ok {
		if v, ok = s.pkg.Info.Uses[id].(*types.Var); !ok {
			return
		}
	}
	if _, isParam := s.params[v]; isParam {
		return // rebinding a parameter name severs nothing we track
	}
	if len(src) == 0 {
		delete(s.aliases, v)
		return
	}
	out := make(map[int]bool, len(src))
	for k := range src {
		out[k] = true
	}
	s.aliases[v] = out
}

// storeTarget records a write through a parameter: the assignment's
// base object, after peeling selectors, stars, indexes and slices,
// resolves to a parameter or one of its aliases.
func (s *funcScan) storeTarget(lhs ast.Expr) {
	base, through := storeBase(lhs)
	if !through {
		return // plain rebinding of an identifier is not a store through it
	}
	for i := range s.paramsOf(base) {
		s.fn.storesDirect[i] = true
	}
}

// storeBase peels an assignment target to its base expression; through
// reports whether the write dereferences storage reachable from the
// base (x.f, *x, x[i]) rather than rebinding the name itself.
func storeBase(lhs ast.Expr) (ast.Expr, bool) {
	through := false
	for {
		lhs = ast.Unparen(lhs)
		switch t := lhs.(type) {
		case *ast.SelectorExpr:
			lhs, through = t.X, true
		case *ast.StarExpr:
			lhs, through = t.X, true
		case *ast.IndexExpr:
			lhs, through = t.X, true
		case *ast.SliceExpr:
			lhs, through = t.X, true
		default:
			return lhs, through
		}
	}
}

// recordRetention adds raw retains facts for stores of parameter
// aliases into struct fields or package state. append(..., p) retains p
// when assigned into such a target; spread appends copy elements and do
// not. Annotated sites ("moguard: retained") are ownership transfers
// declared in the callee's contract and do not propagate to callers —
// the reporting pass validates the annotations themselves.
func (s *funcScan) recordRetention(lhs, rhs ast.Expr) {
	target, ok := retainTarget(s.pkg, lhs)
	if !ok {
		return
	}
	if retainedLines(s.pkg, lhs.Pos()) {
		return
	}
	srcs := s.retainedSources(rhs)
	if len(srcs) == 0 {
		return
	}
	pos := s.pkg.Fset.Position(lhs.Pos())
	for i := range srcs {
		s.fn.retainsDirect[i] = true
		s.fn.retainSites = append(s.fn.retainSites, retainSite{param: i, pos: pos, target: target})
	}
}

// retainedSources is paramsOf extended through append(dst, p): the
// result holds p's backing array.
func (s *funcScan) retainedSources(e ast.Expr) map[int]bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := s.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				out := map[int]bool{}
				for i, arg := range call.Args {
					if i > 0 && call.Ellipsis != token.NoPos && i == len(call.Args)-1 {
						continue // spread copies elements
					}
					for p := range s.retainedSources(arg) {
						out[p] = true
					}
				}
				return out
			}
		}
	}
	return s.paramsOf(e)
}

// retainTarget classifies an assignment target as retained state — a
// struct field (possibly through indexes) or a package-level variable —
// returning a short description for reports.
func retainTarget(pkg *Package, lhs ast.Expr) (string, bool) {
	for {
		lhs = ast.Unparen(lhs)
		switch t := lhs.(type) {
		case *ast.SelectorExpr:
			if v, ok := pkg.Info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
				return "field " + v.Name(), true
			}
			lhs = t.X
		case *ast.IndexExpr:
			lhs = t.X
		case *ast.StarExpr:
			lhs = t.X
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[t].(*types.Var); ok && isPackageLevel(v) {
				return "package variable " + v.Name(), true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// retainedLines reports whether a "moguard: retained <reason>" directive
// covers the position (same line or the line above). Reason validation
// is the alias-retain check's job; the raw scan only needs coverage.
func retainedLines(pkg *Package, pos token.Pos) bool {
	position := pkg.Fset.Position(pos)
	dirs := retainedDirectives(pkg, position.Filename)
	_, onLine := dirs[position.Line]
	_, above := dirs[position.Line-1]
	return onLine || above
}

// retainedDirectives maps comment lines of one file carrying a
// "moguard: retained" directive to the reason (possibly empty).
func retainedDirectives(pkg *Package, filename string) map[int]string {
	out := map[int]string{}
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				body := moguardText(cm)
				verb, rest, _ := strings.Cut(body, " ")
				if verb != "retained" {
					continue
				}
				out[pkg.Fset.Position(cm.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

// ret records returned aliases of parameters, plus return-through-call
// flows for the fixpoint.
func (s *funcScan) ret(st *ast.ReturnStmt, held map[string]int) {
	for _, r := range st.Results {
		s.expr(r, held)
	}
	// return g(...) forwarding the whole tuple.
	if len(st.Results) == 1 {
		if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
			if key := calleeKey(s.pkg, call); key != "" {
				if args := s.callArgParams(call, key); len(args) > 0 {
					for ri := 0; ri < s.results; ri++ {
						s.fn.retFlows = append(s.fn.retFlows, retFlow{result: ri, callee: key, args: args})
					}
				}
			}
		}
	}
	for ri, r := range st.Results {
		for p := range s.paramsOf(r) {
			if s.fn.retDirect[ri] == nil {
				s.fn.retDirect[ri] = map[int]bool{}
			}
			s.fn.retDirect[ri][p] = true
		}
	}
}

// argBinding pairs one call argument with the callee parameter index it
// binds (the receiver of a method call binds index 0).
type argBinding struct {
	param int
	expr  ast.Expr
}

// callBindings enumerates the argument-to-parameter bindings of a call,
// receiver included, in positional order. Variadic arguments bind
// positions past the last declared parameter; the summaries treat every
// parameter index uniformly, so over-indexing is harmless.
func callBindings(pkg *Package, call *ast.CallExpr) []argBinding {
	var out []argBinding
	base := 0
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func); isFn {
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				base = 1
				out = append(out, argBinding{param: 0, expr: sel.X})
			}
		}
	}
	for ai, arg := range call.Args {
		out = append(out, argBinding{param: base + ai, expr: arg})
	}
	return out
}

// callArgParams maps callee parameter indices to caller parameter
// indices for arguments that alias caller parameters. The callee's
// receiver (index 0 of a method key) binds the selector base.
func (s *funcScan) callArgParams(call *ast.CallExpr, calleeKey string) map[int]int {
	out := map[int]int{}
	for _, b := range callBindings(s.pkg, call) {
		src := s.paramsOf(b.expr)
		if len(src) == 0 {
			continue
		}
		min := -1
		for p := range src {
			if min < 0 || p < min {
				min = p
			}
		}
		out[b.param] = min
	}
	if len(out) == 0 {
		return nil
	}
	_ = calleeKey
	return out
}

// expr records calls (with the held lock set), descends into nested
// expressions, and keeps function literals on the current lock state
// (sort.Slice callbacks run inline; go literals are reset in stmt).
func (s *funcScan) expr(e ast.Expr, held map[string]int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			s.block(x.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			s.call(x, held)
		case *ast.AssignStmt:
			// Assignments only appear under statements; Inspect from an
			// expression never reaches one.
		}
		return true
	})
}

// call records one call site: the lock classes held, the parameter
// flows into the callee, and publish events (atomic.Pointer/Value
// Store/Swap/CompareAndSwap receiving a parameter alias).
func (s *funcScan) call(call *ast.CallExpr, held map[string]int) {
	if class, level, ok := lockClassOf(s.pkg, call); ok && level != lockNone {
		// A lock call buried in an expression (rare) still orders.
		s.lockEvent(class, level, call.Pos(), copyHeld(held))
		return
	}
	if arg, ok := publishArg(s.pkg, call); ok {
		for p := range s.paramsOf(arg) {
			s.fn.publishDirect[p] = true
		}
	}
	key := calleeKey(s.pkg, call)
	if key == "" {
		return
	}
	pos := s.pkg.Fset.Position(call.Pos())
	s.fn.calls = append(s.fn.calls, progCall{callee: key, held: heldList(held), pos: pos})
	for calleeParam, callerParam := range s.callArgParams(call, key) {
		s.fn.flows = append(s.fn.flows, paramFlow{
			callee: key, calleeParam: calleeParam, callerParam: callerParam, pos: pos,
		})
	}
}

// publishArg recognises an atomic publish call and returns the
// published value expression: x.Store(v), x.Swap(v), or
// x.CompareAndSwap(old, new) where x is a sync/atomic Pointer or Value.
func publishArg(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	switch named.Obj().Name() {
	case "Pointer", "Value":
	default:
		return nil, false
	}
	switch fn.Name() {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0], true
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1], true
		}
	}
	return nil, false
}

// unwrapPublishTarget resolves the published expression to a trackable
// variable: `v` or `&v`.
func unwrapPublishTarget(pkg *Package, arg ast.Expr) *types.Var {
	arg = ast.Unparen(arg)
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// fixpoint closes the summaries over the call graph: transitive lock
// acquisition, stores/publishes/retains through parameter flows, and
// returned aliases through return-call flows. Iteration follows the
// sorted key list until nothing changes; the graph is small (one node
// per function), so the quadratic worst case is irrelevant.
func (p *Program) fixpoint() {
	for _, k := range p.keys {
		fn := p.funcs[k]
		fn.Acquires = copySet(fn.directAcquires)
		fn.Stores = copyIntSet(fn.storesDirect)
		fn.Publishes = copyIntSet(fn.publishDirect)
		fn.Retains = copyIntSet(fn.retainsDirect)
		fn.ReturnsAlias = map[int]map[int]bool{}
		for r, set := range fn.retDirect {
			fn.ReturnsAlias[r] = copyIntSet(set)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range p.keys {
			fn := p.funcs[k]
			for _, c := range fn.calls {
				callee := p.funcs[c.callee]
				if callee == nil {
					continue
				}
				for class := range callee.Acquires {
					if !fn.Acquires[class] {
						fn.Acquires[class] = true
						changed = true
					}
				}
			}
			for _, fl := range fn.flows {
				callee := p.funcs[fl.callee]
				if callee == nil {
					continue
				}
				if callee.Stores[fl.calleeParam] && !fn.Stores[fl.callerParam] {
					fn.Stores[fl.callerParam] = true
					changed = true
				}
				if callee.Publishes[fl.calleeParam] && !fn.Publishes[fl.callerParam] {
					fn.Publishes[fl.callerParam] = true
					changed = true
				}
				if callee.Retains[fl.calleeParam] && !fn.Retains[fl.callerParam] {
					fn.Retains[fl.callerParam] = true
					changed = true
				}
			}
			for _, rf := range fn.retFlows {
				callee := p.funcs[rf.callee]
				if callee == nil {
					continue
				}
				for cr, set := range callee.ReturnsAlias {
					if cr != rf.result && len(callee.ReturnsAlias) > 1 {
						// Tuple forwarding: result i maps to callee result i.
						continue
					}
					for cp := range set {
						if callerParam, ok := rf.args[cp]; ok {
							if fn.ReturnsAlias[rf.result] == nil {
								fn.ReturnsAlias[rf.result] = map[int]bool{}
							}
							if !fn.ReturnsAlias[rf.result][callerParam] {
								fn.ReturnsAlias[rf.result][callerParam] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func copyIntSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
