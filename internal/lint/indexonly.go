package lint

import (
	"go/ast"
	"go/types"
)

// indexOnly enforces the Section 4 representation rule on the storage
// and index packages: root records and index nodes reference database
// arrays by position, never by stored pointer. Pointer-free records
// are what make the arrays relocatable — a page can be compacted,
// spilled, or rebuilt from a checkpoint and every reference stays
// valid because it is an index, not an address. A struct field whose
// type reaches *T for a data-model type T (directly or through a
// slice/array/map) breaks that property.
type indexOnly struct{ cfg *Config }

func (indexOnly) ID() string { return "index-only" }

func (c indexOnly) Run(pass *Pass) {
	if !inScope(c.cfg.IndexOnlyPkgs, pass.Path) {
		return
	}
	dataPkgs := map[string]bool{}
	for _, p := range c.cfg.IndexOnlyDataPkgs {
		dataPkgs[p] = true
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := pass.Info.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				if bad := pointeeDataType(tv.Type, dataPkgs); bad != "" {
					pass.Report(field.Pos(), "struct %s stores a pointer to data-model type %s; reference database arrays by index (§4)", ts.Name.Name, bad)
				}
			}
			return true
		})
	}
}

// pointeeDataType walks the structural part of a field type (slices,
// arrays, maps, channels, pointers) and returns the name of the first
// data-model type reached through a pointer, or "" if none. Named
// types are not unfolded: a field of value type units.UPoint is an
// embedded copy, not a reference.
func pointeeDataType(t types.Type, dataPkgs map[string]bool) string {
	switch tt := t.(type) {
	case *types.Pointer:
		if named, ok := tt.Elem().(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && dataPkgs[pkg.Path()] {
				return types.TypeString(named, nil)
			}
		}
		return pointeeDataType(tt.Elem(), dataPkgs)
	case *types.Slice:
		return pointeeDataType(tt.Elem(), dataPkgs)
	case *types.Array:
		return pointeeDataType(tt.Elem(), dataPkgs)
	case *types.Map:
		if bad := pointeeDataType(tt.Key(), dataPkgs); bad != "" {
			return bad
		}
		return pointeeDataType(tt.Elem(), dataPkgs)
	case *types.Chan:
		return pointeeDataType(tt.Elem(), dataPkgs)
	}
	return ""
}
