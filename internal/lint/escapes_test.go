package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestParseEscapes pins the -gcflags=-m=2 transcript parse on a fixed
// capture: heap diagnostics are kept (smallest message winning a
// shared line), inlining chatter, package banners, and indented
// explanation traces are dropped, and relative paths join the root.
func TestParseEscapes(t *testing.T) {
	transcript := strings.Join([]string{
		"# movingdb/internal/ingest",
		"internal/ingest/epoch.go:55:7: &objView{...} escapes to heap:",
		"internal/ingest/epoch.go:55:7:   flow: v = &{storage for &objView{...}}:",
		"internal/ingest/epoch.go:55:7:     from &objView{...} (spill) at internal/ingest/epoch.go:55:7",
		"\tinternal/ingest/epoch.go:55:7: indented trace line, ignored",
		"internal/ingest/epoch.go:120:14: make([]bool, len(e.objs)) does not escape",
		"internal/ingest/store.go:130:22: moved to heap: smp",
		"/abs/path/other.go:7:3: x escapes to heap",
		"internal/ingest/epoch.go:55:7: a second diagnostic escapes to heap",
		"internal/ingest/epoch.go:55: missing column, ignored",
		"not a diagnostic at all",
		"",
	}, "\n")
	esc := ParseEscapes("/root/mod", transcript)
	if esc.Len() != 3 {
		t.Fatalf("Len() = %d, want 3\nsites: %v", esc.Len(), esc.Sites())
	}
	epochFile := filepath.Join("/root/mod", "internal/ingest/epoch.go")
	msg, ok := esc.At(epochFile, 55)
	if !ok {
		t.Fatalf("no diagnostic at %s:55", epochFile)
	}
	// Two heap diagnostics share line 55; the lexicographically smaller
	// message wins, keeping the parse order-independent.
	if want := "&objView{...} escapes to heap:"; msg != want {
		t.Errorf("At(epoch.go, 55) = %q, want %q", msg, want)
	}
	if _, ok := esc.At(epochFile, 120); ok {
		t.Error("'does not escape' line was kept")
	}
	if _, ok := esc.At(filepath.Join("/root/mod", "internal/ingest/store.go"), 130); !ok {
		t.Error("'moved to heap' diagnostic was dropped")
	}
	if _, ok := esc.At("/abs/path/other.go", 7); !ok {
		t.Error("absolute-path diagnostic was dropped or re-joined")
	}
}

// TestEscapeSuffix pins the two-tier severity markers alloc-hot
// appends, and the nil behavior (no -escapes run: no marker at all).
func TestEscapeSuffix(t *testing.T) {
	esc := ParseEscapes("/m", "a.go:3:1: x escapes to heap: because reasons\n")
	conf := escapeSuffix(esc, filepath.Join("/m", "a.go"), 3)
	if want := " [confirmed by compiler: x escapes to heap]"; conf != want {
		t.Errorf("confirmed suffix = %q, want %q", conf, want)
	}
	static := escapeSuffix(esc, filepath.Join("/m", "a.go"), 4)
	if want := " [static-only: compiler reports no escape on this line]"; static != want {
		t.Errorf("static-only suffix = %q, want %q", static, want)
	}
	if s := escapeSuffix(nil, "a.go", 3); s != "" {
		t.Errorf("nil escape data produced suffix %q", s)
	}
}
