package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEq bans raw ==/!= on float64 operands in the kernel packages.
// The Section 5 algorithms meet degenerate configurations (touching
// endpoints, double roots, collinear segments) that exact comparison
// misclassifies after any inexact arithmetic; the geom package's
// epsilon helpers (ApproxEq, ApproxZero, …) are the sanctioned
// comparisons. Named float types (temporal.Instant) are exempt: unit
// interval endpoints are copied, never recomputed, so the unique
// representation of Section 3.2.4 makes their exact comparison sound.
// Intentionally exact sites (sentinel zeros, representation identity)
// carry a //molint:ignore float-eq <reason> suppression.
type floatEq struct{ cfg *Config }

func (floatEq) ID() string { return "float-eq" }

func (c floatEq) Run(pass *Pass) {
	if !inScope(c.cfg.FloatEqPkgs, pass.Path) {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		// Bodies of allowlisted order/identity definitions are exempt
		// wholesale; everything else is visited.
		var allowed [][2]token.Pos
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && c.cfg.FloatEqAllow[funcKey(pass.Path, fd)] {
				allowed = append(allowed, [2]token.Pos{fd.Pos(), fd.End()})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, r := range allowed {
				if be.Pos() >= r[0] && be.Pos() < r[1] {
					return true
				}
			}
			if tv, ok := pass.Info.Types[ast.Expr(be)]; ok && tv.Value != nil {
				return true // constant-folded at compile time; exact by definition
			}
			if c.rawFloat(pass, be.X) || c.rawFloat(pass, be.Y) {
				pass.Report(be.OpPos, "raw float64 %s comparison; use geom.ApproxEq/ApproxZero or suppress with a reason", be.Op)
			}
			return true
		})
	}
}

// rawFloat reports whether the expression has the predeclared float64
// or float32 type. Named types with a float underlying are excluded by
// design — their defining package chose exact-endpoint semantics.
func (floatEq) rawFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
