package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// publishImmutable mechanizes the COW contract DESIGN §11 states in
// prose: a value whose address reaches an atomic.Pointer[T].Store (or
// Swap/CompareAndSwap, or an atomic.Value publish) is frozen — readers
// hold it without any lock, so every store after the publish site is a
// data race no matter which locks the writer holds. The check walks
// each function in statement order: once a local variable is published
// it may not be stored through again — not directly (v.f = x, v.x[i] = y)
// and not by passing it to a callee whose summary says it stores
// through that parameter. Rebinding the variable to a fresh value
// (v = build()) lifts the freeze: the published object is unreachable
// through v afterwards. Publishing through a helper is caught the same
// way: a callee whose summary publishes its parameter freezes the
// caller's argument from the call site on.
type publishImmutable struct{ cfg *Config }

func (publishImmutable) ID() string { return "publish-immutable" }

// Run is a no-op: publish-immutable is a ProgramCheck.
func (publishImmutable) Run(*Pass) {}

func (c publishImmutable) RunProgram(pass *ProgramPass) {
	prog := pass.Prog
	for _, k := range prog.keys {
		fn := prog.funcs[k]
		for _, d := range fn.decls {
			w := &publishWalk{pass: pass, prog: prog, pkg: d.pkg, published: map[*types.Var]token.Position{}}
			w.block(d.decl.Body.List)
		}
	}
}

// publishWalk tracks published locals through one function body. The
// published set is shared across branches on purpose: a publish on any
// path freezes the value for everything sequenced after it in source
// order, which over-approximates "reachable on some call path" exactly
// the way a reviewer reasons about the code.
type publishWalk struct {
	pass      *ProgramPass
	prog      *Program
	pkg       *Package
	published map[*types.Var]token.Position
}

func (w *publishWalk) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *publishWalk) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs)
		}
		for i, lhs := range s.Lhs {
			w.checkStore(lhs)
			// Whole-variable rebinding replaces the published object.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v := identVar(w.pkg, id); v != nil {
					if len(s.Rhs) != len(s.Lhs) || !w.aliasesPublished(s.Rhs[i]) {
						delete(w.published, v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.checkStore(s.X)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.block(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.block(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.block(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					w.expr(e)
				}
				w.block(clause.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				w.block(clause.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				w.stmt(clause.Comm)
				w.block(clause.Body)
			}
		}
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	default:
	}
}

// expr visits calls nested anywhere in an expression: publish calls
// freeze their argument, and calls that store through a published
// argument are findings.
func (w *publishWalk) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.call(call)
		return true
	})
}

func (w *publishWalk) call(call *ast.CallExpr) {
	// Direct publish: x.Store(v) on an atomic Pointer/Value.
	if arg, ok := publishArg(w.pkg, call); ok {
		if v := unwrapPublishTarget(w.pkg, arg); v != nil && trackablePublish(v) {
			if _, already := w.published[v]; !already {
				w.published[v] = w.pkg.Fset.Position(call.Pos())
			}
		}
		return
	}
	key := calleeKey(w.pkg, call)
	if key == "" {
		return
	}
	callee := w.prog.funcs[key]
	if callee == nil {
		return
	}
	for _, b := range callBindings(w.pkg, call) {
		v := publishedArg(w.pkg, b.expr, w.published)
		if v == nil {
			continue
		}
		if callee.Stores[b.param] {
			at := w.published[v]
			w.pass.ReportAt(w.pkg.Fset.Position(call.Pos()),
				"%s may be written by %s after being atomically published at %s:%d (published values are frozen; build a new value instead)",
				v.Name(), displayKey(w.prog, key), relBase(at.Filename), at.Line)
		}
	}
	// Publish-via-helper: the callee's summary publishes this parameter.
	for _, b := range callBindings(w.pkg, call) {
		if !callee.Publishes[b.param] {
			continue
		}
		if v := unwrapPublishTarget(w.pkg, b.expr); v != nil && trackablePublish(v) {
			if _, already := w.published[v]; !already {
				w.published[v] = w.pkg.Fset.Position(call.Pos())
			}
		}
	}
}

// checkStore reports a store through a published variable.
func (w *publishWalk) checkStore(lhs ast.Expr) {
	base, through := storeBase(lhs)
	if !through {
		return
	}
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return
	}
	v := identVar(w.pkg, id)
	if v == nil {
		return
	}
	if at, ok := w.published[v]; ok {
		w.pass.ReportAt(w.pkg.Fset.Position(lhs.Pos()),
			"%s is written after being atomically published at %s:%d (published values are frozen; build a new value instead)",
			v.Name(), relBase(at.Filename), at.Line)
	}
}

// aliasesPublished reports whether the expression is a published
// variable itself (v2 = v keeps the object frozen through v, and the
// walker only tracks direct rebinding anyway).
func (w *publishWalk) aliasesPublished(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v := identVar(w.pkg, id)
	if v == nil {
		return false
	}
	_, ok = w.published[v]
	return ok
}

// publishedArg resolves an argument to a published variable: the
// variable itself or its address.
func publishedArg(pkg *Package, e ast.Expr, published map[*types.Var]token.Position) *types.Var {
	v := unwrapPublishTarget(pkg, e)
	if v == nil {
		return nil
	}
	if _, ok := published[v]; ok {
		return v
	}
	return nil
}

// trackablePublish limits tracking to local pointer-typed variables —
// the COW idiom ("build next, publish next, never touch next again").
// Publishing a field or a global is a different pattern with its own
// synchronization story, and publishing a self-synchronized object
// (one carrying its own mutex or atomics, like a fault injector) is an
// installation, not a freeze.
func trackablePublish(v *types.Var) bool {
	if v.IsField() || isPackageLevel(v) {
		return false
	}
	if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr {
		return false
	}
	return !selfSynchronized(v.Type())
}

func identVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := pkg.Info.Defs[id].(*types.Var)
	return v
}

// displayKey renders a function key module-relatively.
func displayKey(prog *Program, key string) string {
	if prog.Module == "" {
		return key
	}
	return strings.TrimPrefix(key, prog.Module+"/")
}

// relBase shortens a witness filename to its final two path elements so
// messages stay readable without being checkout-absolute.
func relBase(filename string) string {
	slash := -1
	seen := 0
	for i := len(filename) - 1; i >= 0; i-- {
		if filename[i] == '/' || filename[i] == '\\' {
			seen++
			if seen == 2 {
				slash = i
				break
			}
		}
	}
	if slash < 0 {
		return filename
	}
	return filename[slash+1:]
}
