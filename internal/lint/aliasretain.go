package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// aliasRetain is the static generalization of the reused-out-slice bug:
// a slice or pointer received as an argument of an exported function in
// the hot data-structure packages (AliasRetainPkgs) belongs to the
// caller, who is free to reuse or mutate it after the call returns.
// Storing it into a struct field or package variable silently couples
// the callee's state to the caller's buffer. Every such retention must
// either copy, or declare the ownership transfer at the store site:
//
//	// moguard: retained <reason>
//
// (same line or the line above). The call graph makes the check
// interprocedural: passing the parameter to a helper whose summary
// retains it is reported at the call site in the exported function, so
// hiding the store one frame down changes nothing. Annotated stores do
// not enter the summaries — an annotation is a contract with the
// caller, and the exported signature is where the contract surfaces.
type aliasRetain struct{ cfg *Config }

func (aliasRetain) ID() string { return "alias-retain" }

// Run is a no-op: alias-retain is a ProgramCheck.
func (aliasRetain) Run(*Pass) {}

func (c aliasRetain) RunProgram(pass *ProgramPass) {
	prog := pass.Prog
	c.checkDirectives(pass, prog)
	for _, k := range prog.keys {
		fn := prog.funcs[k]
		for _, d := range fn.decls {
			if !inScope(c.cfg.AliasRetainPkgs, d.pkg.Path) {
				continue
			}
			if !ast.IsExported(d.decl.Name.Name) {
				continue
			}
			c.checkDecl(pass, prog, fn, d)
		}
	}
}

// checkDecl audits one exported declaration: direct retention sites of
// its caller-owned parameters, and calls that hand such a parameter to
// a retaining callee.
func (c aliasRetain) checkDecl(pass *ProgramPass, prog *Program, fn *ProgFunc, d declSite) {
	names, owned := callerOwnedParams(d.pkg, d.decl)
	if len(owned) == 0 {
		return
	}
	for _, site := range fn.retainSites {
		if !owned[site.param] {
			continue
		}
		pass.ReportAt(site.pos,
			"%s stores caller-owned parameter %s into %s; copy it or declare the transfer with \"moguard: retained <reason>\"",
			d.decl.Name.Name, names[site.param], site.target)
	}
	seen := map[paramFlow]bool{}
	for _, fl := range fn.flows {
		if !owned[fl.callerParam] || seen[fl] {
			continue
		}
		seen[fl] = true
		callee := prog.funcs[fl.callee]
		if callee == nil || !callee.Retains[fl.calleeParam] {
			continue
		}
		if fl.callee == fn.Key {
			continue // direct sites already reported above
		}
		pass.ReportAt(fl.pos,
			"%s passes caller-owned parameter %s to %s, which retains it; copy first or annotate the retention site",
			d.decl.Name.Name, names[fl.callerParam], displayKey(prog, fl.callee))
	}
}

// callerOwnedParams selects the parameters the contract covers: slices
// and pointers (aliasable storage), excluding the receiver (the object
// retaining its own state is the point of having state) and excluding
// funcs, maps, channels, interfaces and strings, whose sharing either
// is the idiom or is safe.
func callerOwnedParams(pkg *Package, fd *ast.FuncDecl) (names map[int]string, owned map[int]bool) {
	names = map[int]string{}
	owned = map[int]bool{}
	n := 0
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		n = 1 // receiver occupies index 0, never caller-owned
	}
	if fd.Type.Params == nil {
		return names, owned
	}
	for _, field := range fd.Type.Params.List {
		tv, okT := pkg.Info.Types[field.Type]
		count := len(field.Names)
		if count == 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			if okT && aliasableType(tv.Type) {
				owned[n] = true
				if i < len(field.Names) {
					names[n] = field.Names[i].Name
				} else {
					names[n] = "_"
				}
			}
			n++
		}
	}
	return names, owned
}

// aliasableType reports whether a parameter type is caller-owned
// aliasable storage: a slice, or a pointer to plain data. Variadic
// parameters arrive as slices and qualify. Pointers to
// self-synchronized service objects (metrics sinks, injectors) are
// shared handles, not buffers — retaining one is dependency injection.
func aliasableType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Pointer:
		return !isSyncType(u.Elem()) && !selfSynchronized(t)
	}
	return false
}

// checkDirectives validates every "moguard: retained" directive in the
// scope packages: a reason is mandatory, exactly like unguarded and
// bounded.
func (c aliasRetain) checkDirectives(pass *ProgramPass, prog *Program) {
	var files []progFile
	for _, pf := range prog.files {
		if inScope(c.cfg.AliasRetainPkgs, pf.pkg.Path) {
			files = append(files, pf)
		}
	}
	sort.Slice(files, func(i, j int) bool {
		return files[i].pkg.Fset.Position(files[i].f.Pos()).Filename <
			files[j].pkg.Fset.Position(files[j].f.Pos()).Filename
	})
	for _, pf := range files {
		for _, cg := range pf.f.Comments {
			for _, cm := range cg.List {
				body := moguardText(cm)
				verb, rest, _ := strings.Cut(body, " ")
				if verb != "retained" {
					continue
				}
				if strings.TrimSpace(rest) == "" {
					pass.ReportAt(pf.pkg.Fset.Position(cm.Pos()), "moguard: retained is missing a reason")
				}
			}
		}
	}
}
