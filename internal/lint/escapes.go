package lint

import (
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The -escapes cross-check joins alloc-hot's static allocation sites
// with the compiler's own escape analysis: molint shells out to
// `go build -gcflags=-m=2`, parses the heap diagnostics, and the
// alloc-hot reporter tiers each finding as confirmed-by-compiler or
// static-only. The join is purely positional (file and line), which is
// exactly how the gc toolchain reports escapes.

// EscapeData is the parsed escape-diagnostic set of one build.
type EscapeData struct {
	sites map[escKey]string // first diagnostic per file:line
}

type escKey struct {
	file string
	line int
}

// At returns the compiler's escape diagnostic covering file:line, if
// any. file must be the same absolute path the loader produced.
func (e *EscapeData) At(file string, line int) (string, bool) {
	if e == nil {
		return "", false
	}
	d, ok := e.sites[escKey{file, line}]
	return d, ok
}

// Len reports the number of distinct source lines carrying an escape
// diagnostic.
func (e *EscapeData) Len() int {
	if e == nil {
		return 0
	}
	return len(e.sites)
}

// Sites renders the parsed set as sorted "file:line: message" strings —
// deterministic, for tests and diagnostics.
func (e *EscapeData) Sites() []string {
	if e == nil {
		return nil
	}
	out := make([]string, 0, len(e.sites))
	for k, msg := range e.sites {
		out = append(out, k.file+":"+strconv.Itoa(k.line)+": "+msg)
	}
	sort.Strings(out)
	return out
}

// ParseEscapes extracts heap-allocation diagnostics from the output of
// `go build -gcflags=-m=2` run at the module root: lines of the form
//
//	<path>:<line>:<col>: <expr> escapes to heap[: ...]
//	<path>:<line>:<col>: moved to heap: <name>
//
// Relative paths resolve against root so positions match the loader's
// absolute filenames. -m=2 explanation traces (indented lines), package
// banners, and inlining chatter are ignored. When several diagnostics
// land on one line the lexicographically smallest message wins, so the
// parse is a pure function of the (unordered) diagnostic set.
func ParseEscapes(root, output string) *EscapeData {
	data := &EscapeData{sites: map[escKey]string{}}
	for _, line := range strings.Split(output, "\n") {
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			continue
		}
		file, lineNo, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		key := escKey{file, lineNo}
		if old, seen := data.sites[key]; !seen || msg < old {
			data.sites[key] = msg
		}
	}
	return data
}

// splitDiag splits one "path:line:col: message" gc diagnostic. The
// scan walks colons left to right until a ":<line>:<col>:" pair parses,
// so paths containing colons cannot confuse the split.
func splitDiag(s string) (file string, line int, msg string, ok bool) {
	for i := strings.IndexByte(s, ':'); i >= 0; {
		rest := s[i+1:]
		if l, m, good := parseLineCol(rest); good {
			return s[:i], l, m, true
		}
		j := strings.IndexByte(rest, ':')
		if j < 0 {
			break
		}
		i += j + 1
	}
	return "", 0, "", false
}

// parseLineCol parses "<line>:<col>: <message>".
func parseLineCol(s string) (line int, msg string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return 0, "", false
	}
	line, err := strconv.Atoi(s[:i])
	if err != nil || line <= 0 {
		return 0, "", false
	}
	rest := s[i+1:]
	j := strings.IndexByte(rest, ':')
	if j <= 0 {
		return 0, "", false
	}
	if col, cerr := strconv.Atoi(rest[:j]); cerr != nil || col <= 0 {
		return 0, "", false
	}
	return line, strings.TrimSpace(rest[j+1:]), true
}

// escapeSuffix renders the two-tier severity marker appended to
// alloc-hot findings when escape data is present.
func escapeSuffix(esc *EscapeData, file string, line int) string {
	if esc == nil {
		return ""
	}
	if diag, ok := esc.At(file, line); ok {
		return " [confirmed by compiler: " + shortDiag(diag) + "]"
	}
	return " [static-only: compiler reports no escape on this line]"
}

// shortDiag trims an -m=2 diagnostic to its first clause.
func shortDiag(d string) string {
	if i := strings.IndexByte(d, ':'); i > 0 {
		return d[:i]
	}
	return d
}
