package lint

import (
	"go/ast"
	"go/types"
)

// atomicMix enforces the all-or-nothing rule of sync/atomic: once any
// access to a field goes through the atomic package, every access must
// — a plain load can observe a torn or stale value the atomic store
// ordered carefully, and the race detector only notices if the
// interleaving happens in a run. A field is atomic if it is passed by
// address to a sync/atomic function anywhere in the package, or if it
// is annotated "// moguard: atomic"; every other selector resolving to
// that field is a finding. Fields whose type is itself one of the
// typed atomics (atomic.Pointer[T], atomic.Uint64, …) are exempt from
// reporting: the type system already forces every access through the
// Load/Store/… methods, so no mix is possible. Test files are exempt
// for the same reason as guarded-by: they run single-threaded around
// the code under test.
type atomicMix struct{ cfg *Config }

func (atomicMix) ID() string { return "atomic-mix" }

func (c atomicMix) Run(pass *Pass) {
	if c.cfg.AtomicPkgs != nil && !inScope(c.cfg.AtomicPkgs, pass.Path) {
		return
	}
	atomicFields := map[*types.Var]bool{}
	// allowed are the selector nodes that ARE the atomic accesses (the
	// &x.f argument inside atomic.AddUint64(&x.f, 1)).
	allowed := map[*ast.SelectorExpr]bool{}
	files := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f) {
			files = append(files, f)
		}
	}
	// Annotated fields are atomic even before the first atomic call
	// lands, so the mix is caught while the migration is half-done.
	for _, g := range collectStructGuards(pass, false) {
		for v, name := range g.vars {
			if g.fields[name].kind == guardAtomic {
				atomicFields[v] = true
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !c.isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					atomicFields[v] = true
					allowed[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || allowed[sel] {
				return true
			}
			if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && atomicFields[v] && !isTypedAtomic(v.Type()) {
				pass.Report(sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere (mixing breaks the memory-order contract)", sel.Sel.Name)
			}
			return true
		})
	}
}

// isTypedAtomic reports whether t is one of the method-based atomic
// types declared in sync/atomic (atomic.Pointer[T], atomic.Uint64, …).
// Selectors on such fields are method-call receivers, not plain memory
// accesses: the unexported inner word is unreachable outside the
// package, so every access is ordered by definition.
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isAtomicCall reports whether the call is a sync/atomic function.
func (atomicMix) isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}
