package lint

import (
	"go/ast"
	"strings"
)

// ctxLoop enforces the cooperative-cancellation convention on the
// lifted operations: every exported function named ...Ctx that takes a
// context must reach a cancellation poll inside each outermost loop
// whose trip count depends on input. The serving layer relies on this
// to abort Section 5 kernels when a request deadline expires; a loop
// that never polls turns a cancelled request into a full scan. A poll
// is ctx.Err()/ctx.Done(), or any call that receives the context (the
// cancelCheck helper, or delegation to another ...Ctx function). Loops
// bounded by a constant are exempt, as are inner loops — the outermost
// loop polls once per iteration, which bounds cancellation latency by
// one refinement step.
type ctxLoop struct{ cfg *Config }

func (ctxLoop) ID() string { return "ctx-loop" }

func (c ctxLoop) Run(pass *Pass) {
	if c.cfg.CtxLoopPkgs != nil && !inScope(c.cfg.CtxLoopPkgs, pass.Path) {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if len(fd.Name.Name) <= 3 || !strings.HasSuffix(fd.Name.Name, "Ctx") {
				continue
			}
			if !c.hasCtxParam(pass, fd) {
				continue
			}
			for _, loop := range outermostLoops(fd.Body) {
				if constantBoundLoop(pass, loop) {
					continue
				}
				if !c.polls(pass, loop) {
					pass.Report(loop.Pos(), "input-bounded loop in exported Ctx kernel %s never polls cancellation", fd.Name.Name)
				}
			}
		}
	}
}

func (ctxLoop) hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// outermostLoops collects the for/range statements not nested inside
// another loop in the same body.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false
		}
		return true
	})
	return loops
}

// constantBoundLoop reports whether a for loop's condition compares
// against a compile-time constant (for i := 0; i < 4; i++), whose trip
// count cannot depend on input. Shared by ctx-loop and goroutine-exit.
func constantBoundLoop(pass *Pass, loop ast.Stmt) bool {
	fs, ok := loop.(*ast.ForStmt)
	if !ok || fs.Cond == nil {
		return false
	}
	be, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if tv, ok := pass.Info.Types[side]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

// polls reports whether the loop subtree contains a cancellation poll.
func (c ctxLoop) polls(pass *Pass, loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
				if tv, ok := pass.Info.Types[sel.X]; ok && isContextType(tv.Type) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
