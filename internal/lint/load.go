package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one typechecked package variant (base + in-package test
// files, or an external _test package) ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. movingdb/internal/geom
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks module packages using only the standard
// library: module-internal imports resolve against the module tree,
// everything else (the standard library) through the source importer.
type Loader struct {
	Fset    *token.FileSet
	Module  string // module path from go.mod
	Root    string // module root directory
	Tags    []string
	std     types.Importer
	base    map[string]*types.Package // import-facing variants (no test files)
	baseErr map[string]error
}

// NewLoader returns a loader for the module rooted at root. tags are
// additional build tags (e.g. "faultinject") applied when selecting
// files.
func NewLoader(root string, tags []string) (*Loader, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build's default context; with cgo
	// enabled it would try to preprocess cgo files in net and friends.
	// Typechecking the pure-Go variants is all the analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Module:  mod,
		Root:    root,
		Tags:    tags,
		std:     importer.ForCompiler(fset, "source", nil),
		base:    map[string]*types.Package{},
		baseErr: map[string]error{},
	}, nil
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Import resolves an import path for the typechecker: module packages
// from source (without test files), everything else via the standard
// library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.base[path]; ok {
		return pkg, nil
	}
	if err, ok := l.baseErr[path]; ok {
		return nil, err
	}
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	dir := l.dirOf(path)
	files, _, err := l.parseDir(dir, false)
	if err == nil && len(files) == 0 {
		err = fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var pkg *types.Package
	if err == nil {
		pkg, _, err = l.typecheck(path, files)
	}
	if err != nil {
		l.baseErr[path] = err
		return nil, err
	}
	l.base[path] = pkg
	return pkg, nil
}

func (l *Loader) dirOf(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// PathOf maps a directory under the module root to its import path.
func (l *Loader) PathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses, filters, and typechecks the package in dir. It
// returns up to two analysis variants: the package itself including its
// in-package test files, and the external _test package when one
// exists.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	path, err := l.PathOf(dir)
	if err != nil {
		return nil, err
	}
	files, xtest, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if len(files) > 0 {
		tpkg, info, err := l.typecheck(path, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, &Package{Fset: l.Fset, Path: path, Files: files, Types: tpkg, Info: info})
	}
	if len(xtest) > 0 {
		tpkg, info, err := l.typecheck(path+"_test", xtest)
		if err != nil {
			return nil, fmt.Errorf("%s_test: %w", path, err)
		}
		out = append(out, &Package{Fset: l.Fset, Path: path + "_test", Files: xtest, Types: tpkg, Info: info})
	}
	return out, nil
}

// parseDir parses every buildable .go file in dir, splitting external
// test-package files from the rest. With includeTests false (the
// import-facing variant other packages see) test files are skipped
// entirely — in-package test files may import packages that import
// this one, which would otherwise look like an import cycle.
func (l *Loader) parseDir(dir string, includeTests bool) (files, xtest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if !l.fileIncluded(f) {
			continue
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			files = append(files, f)
		}
	}
	sortByPos := func(fs []*ast.File) {
		sort.Slice(fs, func(i, j int) bool {
			return l.Fset.Position(fs[i].Pos()).Filename < l.Fset.Position(fs[j].Pos()).Filename
		})
	}
	sortByPos(files)
	sortByPos(xtest)
	return files, xtest, nil
}

// fileIncluded evaluates the file's //go:build constraint (if any)
// against the loader's tag set plus the host GOOS/GOARCH.
func (l *Loader) fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			return expr.Eval(l.tagOK)
		}
	}
	return true
}

func (l *Loader) tagOK(tag string) bool {
	for _, t := range l.Tags {
		if t == tag {
			return true
		}
	}
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	// Release tags: a go1.N tag is satisfied by every toolchain >= N;
	// the module's floor is far below the toolchain, so accept all.
	return strings.HasPrefix(tag, "go1.")
}

func (l *Loader) typecheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ExpandPatterns resolves command-line patterns ("./...", "./internal/geom",
// "internal/...") into package directories under root, skipping
// testdata, vendor, and hidden directories on recursive walks.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		fi, err := os.Stat(base)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// DirUsesTags reports whether any Go file in dir carries a //go:build
// constraint that mentions one of the given tags, i.e. whether the
// package's file set can differ under that tag combination.
func DirUsesTags(dir string, tags []string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "package ") {
				break
			}
			if !constraint.IsGoBuild(line) {
				continue
			}
			for _, tag := range tags {
				if strings.Contains(line, tag) {
					return true
				}
			}
		}
	}
	return false
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
