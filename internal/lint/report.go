package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Report is the machine-readable form of a Result, with file paths
// rendered relative to the module root so output is stable across
// checkouts and usable as CI annotations.
type Report struct {
	Findings []ReportFinding `json:"findings"`
	Summary  ReportSummary   `json:"summary"`
}

// ReportFinding is one finding with a root-relative path.
type ReportFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// ReportSummary mirrors the text summary line plus the per-check table.
type ReportSummary struct {
	Findings   int                   `json:"findings"`
	Suppressed int                   `json:"suppressed"`
	Packages   int                   `json:"packages"`
	Checks     map[string]CheckTally `json:"checks"`
}

// NewReport converts a Result. root is the module root for
// path-relativising; packages is the number of package variants
// analyzed.
func NewReport(root string, res Result, packages int) Report {
	r := Report{
		Findings: []ReportFinding{}, // never null in JSON
		Summary: ReportSummary{
			Findings:   len(res.Findings),
			Suppressed: res.Suppressed,
			Packages:   packages,
			Checks:     res.Checks,
		},
	}
	for _, f := range res.Findings {
		r.Findings = append(r.Findings, ReportFinding{
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	return r
}

// relPath renders file relative to root when it lives under it.
func relPath(root, file string) string {
	if prefix := root + string(os.PathSeparator); strings.HasPrefix(file, prefix) {
		return file[len(prefix):]
	}
	return file
}

// WriteJSON emits the report as one indented JSON document.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteGitHub emits findings as GitHub Actions workflow commands, which
// the Actions runner turns into inline PR annotations.
func (r Report) WriteGitHub(w io.Writer) error {
	for _, f := range r.Findings {
		if _, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::[%s] %s\n",
			f.File, f.Line, f.Column, f.Check, f.Message); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "::notice::molint: %d finding(s), %d suppressed, %d package(s)\n",
		r.Summary.Findings, r.Summary.Suppressed, r.Summary.Packages)
	return err
}

// WriteSummaryTable renders the per-check finding/suppression tallies
// as an aligned text table, checks sorted by ID.
func (r Report) WriteSummaryTable(w io.Writer) error {
	ids := make([]string, 0, len(r.Summary.Checks))
	width := len("check")
	for id := range r.Summary.Checks {
		ids = append(ids, id)
		if len(id) > width {
			width = len(id)
		}
	}
	sort.Strings(ids)
	if _, err := fmt.Fprintf(w, "%-*s  %8s  %10s\n", width, "check", "findings", "suppressed"); err != nil {
		return err
	}
	for _, id := range ids {
		t := r.Summary.Checks[id]
		if _, err := fmt.Fprintf(w, "%-*s  %8d  %10d\n", width, id, t.Findings, t.Suppressed); err != nil {
			return err
		}
	}
	return nil
}
