package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Report is the machine-readable form of a Result, with file paths
// rendered relative to the module root so output is stable across
// checkouts and usable as CI annotations.
type Report struct {
	Findings []ReportFinding `json:"findings"`
	Summary  ReportSummary   `json:"summary"`
}

// ReportFinding is one finding with a root-relative path.
type ReportFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
	// Suggestion is the ready-to-paste fix from -suggest mode, when the
	// check synthesized one.
	Suggestion string `json:"suggestion,omitempty"`
}

// ReportSummary mirrors the text summary line plus the per-check table.
type ReportSummary struct {
	Findings   int                   `json:"findings"`
	Suppressed int                   `json:"suppressed"`
	Packages   int                   `json:"packages"`
	Checks     map[string]CheckTally `json:"checks"`
	// Timings is per-check wall time in milliseconds. Populated only
	// under -timings: wall time varies run to run, and the JSON document
	// is otherwise byte-identical across runs (a contract CI relies on).
	Timings map[string]float64 `json:"timings_ms,omitempty"`
}

// NewReport converts a Result. root is the module root for
// path-relativising; packages is the number of package variants
// analyzed.
func NewReport(root string, res Result, packages int) Report {
	r := Report{
		Findings: []ReportFinding{}, // never null in JSON
		Summary: ReportSummary{
			Findings:   len(res.Findings),
			Suppressed: res.Suppressed,
			Packages:   packages,
			Checks:     res.Checks,
		},
	}
	for _, f := range res.Findings {
		r.Findings = append(r.Findings, ReportFinding{
			File:       relPath(root, f.Pos.Filename),
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Check:      f.Check,
			Message:    f.Message,
			Suggestion: f.Suggestion,
		})
	}
	return r
}

// WithTimings attaches per-check wall times (as milliseconds) to the
// summary. Kept out of NewReport so the default JSON document stays
// byte-identical across runs.
func (r Report) WithTimings(timings map[string]time.Duration) Report {
	if len(timings) == 0 {
		return r
	}
	r.Summary.Timings = map[string]float64{}
	for id, d := range timings {
		r.Summary.Timings[id] = float64(d.Microseconds()) / 1000
	}
	return r
}

// relPath renders file relative to root when it lives under it.
func relPath(root, file string) string {
	if prefix := root + string(os.PathSeparator); strings.HasPrefix(file, prefix) {
		return file[len(prefix):]
	}
	return file
}

// WriteJSON emits the report as one indented JSON document.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteGitHub emits findings as GitHub Actions workflow commands, which
// the Actions runner turns into inline PR annotations.
func (r Report) WriteGitHub(w io.Writer) error {
	for _, f := range r.Findings {
		if _, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::[%s] %s\n",
			f.File, f.Line, f.Column, f.Check, f.Message); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "::notice::molint: %d finding(s), %d suppressed, %d package(s)\n",
		r.Summary.Findings, r.Summary.Suppressed, r.Summary.Packages)
	return err
}

// WriteSummaryTable renders the per-check finding/suppression tallies
// as an aligned text table, checks sorted by ID. When timings were
// attached (the -timings flag) a wall-time column is appended; the
// "callgraph" row covers the shared interprocedural build that the
// program-wide checks amortize.
func (r Report) WriteSummaryTable(w io.Writer) error {
	ids := make([]string, 0, len(r.Summary.Checks))
	width := len("check")
	note := func(id string) {
		ids = append(ids, id)
		if len(id) > width {
			width = len(id)
		}
	}
	for id := range r.Summary.Checks {
		note(id)
	}
	for id := range r.Summary.Timings {
		if _, dup := r.Summary.Checks[id]; !dup {
			note(id) // e.g. the shared "callgraph" build phase
		}
	}
	sort.Strings(ids)
	withMS := len(r.Summary.Timings) > 0
	header := fmt.Sprintf("%-*s  %8s  %10s", width, "check", "findings", "suppressed")
	if withMS {
		header += fmt.Sprintf("  %9s", "ms")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, id := range ids {
		t := r.Summary.Checks[id]
		row := fmt.Sprintf("%-*s  %8d  %10d", width, id, t.Findings, t.Suppressed)
		if withMS {
			row += fmt.Sprintf("  %9.1f", r.Summary.Timings[id])
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// sarif mirrors the slice of SARIF 2.1.0 that GitHub code scanning
// consumes: one run, the check catalog as rules, findings as results
// anchored by root-relative artifact locations.
type sarif struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits the report as a SARIF 2.1.0 document suitable for
// github/codeql-action/upload-sarif. The rule catalog is derived from
// the summary's check tallies so every enabled check appears even when
// clean, and both rules and results are emitted in sorted order for
// byte-stable output.
func (r Report) WriteSARIF(w io.Writer) error {
	ids := make([]string, 0, len(r.Summary.Checks))
	for id := range r.Summary.Checks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	doc := sarif{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "molint",
				Rules: []sarifRule{},
			}},
			Results: []sarifResult{},
		}},
	}
	for _, id := range ids {
		doc.Runs[0].Tool.Driver.Rules = append(doc.Runs[0].Tool.Driver.Rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: "molint check " + id},
		})
	}
	for _, f := range r.Findings {
		msg := f.Message
		if f.Suggestion != "" {
			msg += " (suggested: " + f.Suggestion + ")"
		}
		doc.Runs[0].Results = append(doc.Runs[0].Results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{
					URI:       filepath.ToSlash(f.File),
					URIBaseID: "%SRCROOT%",
				},
				Region: sarifRegion{StartLine: f.Line, StartColumn: f.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
