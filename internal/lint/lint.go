// Package lint implements molint, the repository's static-analysis
// suite. The paper's data structures are correct only under conventions
// no compiler checks — unique-representation constraints on region and
// range values (Section 3.2.2), ordered pointer-free arrays with
// index-only references (Section 4), epsilon-aware degeneracy handling
// in the unit kernels (Section 5) — and the serving/ingestion layers
// added conventions of their own: Ctx kernels must poll cancellation,
// WAL and recovery paths must never drop errors, and compaction and
// fault injection must stay seeded-deterministic. Each convention is a
// Check; the suite runs over typechecked packages using only the
// standard library (go/parser, go/ast, go/types with the source
// importer), so go.mod stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string // check ID, e.g. "float-eq"
	Message string
	// Suggestion is an optional ready-to-paste fix (the -suggest mode
	// prints it; the JSON report carries it when present).
	Suggestion string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Check is one analyzer. Run inspects a typechecked package and reports
// findings through pass.Report; scope decisions (which packages and
// files a check covers) live in the check itself, driven by Config.
type Check interface {
	ID() string
	Run(pass *Pass)
}

// ProgramCheck is an analyzer that needs the whole-program call graph
// rather than one package at a time (lock-order, publish-immutable,
// alias-retain). Its Run is a no-op; the runner builds the Program once
// after the per-package checks and invokes RunProgram with a pass whose
// directives span every analyzed package.
type ProgramCheck interface {
	Check
	RunProgram(pass *ProgramPass)
}

// reporter is the finding sink shared by per-package and program
// passes: it applies suppression directives, tallies suppressed sites,
// and records which directives actually fired (for -stale-suppressions).
type reporter struct {
	check      string
	findings   *[]Finding
	suppressed map[suppKey]bool
	used       map[suppKey]bool
	directives []directive
}

// ReportAt files a finding at an already-resolved position unless a
// suppression directive covers it. Program checks report through this
// form because their facts span loader variants with distinct FileSets.
func (r *reporter) ReportAt(position token.Position, format string, args ...any) {
	r.reportAt(position, "", format, args...)
}

// ReportSuggestAt is ReportAt carrying a ready-to-paste fix.
func (r *reporter) ReportSuggestAt(position token.Position, suggestion, format string, args ...any) {
	r.reportAt(position, suggestion, format, args...)
}

func (r *reporter) reportAt(position token.Position, suggestion, format string, args ...any) {
	for _, d := range r.directives {
		if d.covers(r.check, position) {
			r.suppressed[suppKey{position.Filename, position.Line, r.check}] = true
			if r.used != nil {
				r.used[suppKey{d.file, d.line, d.check}] = true
			}
			return
		}
	}
	*r.findings = append(*r.findings, Finding{Pos: position, Check: r.check,
		Message: fmt.Sprintf(format, args...), Suggestion: suggestion})
}

// Pass is one typechecked package variant handed to every check.
// Suppression comments are handled by the runner, not by checks:
// Report drops findings covered by a molint:ignore directive and
// records them in the suppressed tally instead.
type Pass struct {
	*Package
	reporter
}

// ProgramPass is the whole-program counterpart handed to ProgramChecks.
type ProgramPass struct {
	Prog *Program
	// Stale mirrors Options.StaleSuppressions for checks that manage
	// their own directive namespace (alloc-hot's allocok verb): the
	// runner's stale audit only covers molint:ignore.
	Stale bool
	// Escapes is the compiler escape-diagnostic join from -escapes, nil
	// when the cross-check was not requested.
	Escapes *EscapeData
	reporter
}

// suppKey identifies one suppressed finding site; the same site seen in
// several package variants counts once.
type suppKey struct {
	file  string
	line  int
	check string
}

// Report files a finding at pos unless a suppression directive covers
// it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset.Position(pos), format, args...)
}

// ReportSuggest is Report carrying a ready-to-paste fix.
func (p *Pass) ReportSuggest(pos token.Pos, suggestion, format string, args ...any) {
	p.ReportSuggestAt(p.Fset.Position(pos), suggestion, format, args...)
}

// directive is one parsed //molint:ignore comment.
type directive struct {
	file   string
	line   int    // line the comment sits on
	col    int    // column, for reporting the directive itself (stale)
	check  string // check ID being suppressed, or "*" (never written, reserved)
	reason string // empty means malformed (missing reason)
}

// covers reports whether the directive suppresses a finding of the
// given check at position: same file, matching check ID, and the
// finding sits on the directive's own line or the line directly below
// it (the "comment above the statement" idiom).
func (d directive) covers(check string, pos token.Position) bool {
	if d.reason == "" || d.check != check || d.file != pos.Filename {
		return false
	}
	return pos.Line == d.line || pos.Line == d.line+1
}

const ignorePrefix = "//molint:ignore"

// parseDirectives extracts molint:ignore directives from a file's
// comments. Malformed directives (missing check ID or missing reason)
// are returned as findings so a suppression can never silently widen.
func parseDirectives(fset *token.FileSet, file *ast.File, knownChecks map[string]bool) (ds []directive, malformed []Finding) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			check, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if check == "" {
				malformed = append(malformed, Finding{Pos: pos, Check: "suppress",
					Message: "molint:ignore needs a check ID and a reason"})
				continue
			}
			if knownChecks != nil && !knownChecks[check] {
				malformed = append(malformed, Finding{Pos: pos, Check: "suppress",
					Message: fmt.Sprintf("molint:ignore names unknown check %q", check)})
				continue
			}
			if reason == "" {
				malformed = append(malformed, Finding{Pos: pos, Check: "suppress",
					Message: fmt.Sprintf("molint:ignore %s is missing a reason", check)})
				continue
			}
			ds = append(ds, directive{file: pos.Filename, line: pos.Line, col: pos.Column, check: check, reason: reason})
		}
	}
	return ds, malformed
}

// Result is the outcome of running checks over a set of packages.
type Result struct {
	Findings   []Finding
	Suppressed int
	// Checks tallies findings and suppressions per check ID, for the
	// summary table and the JSON report. Every check that ran has an
	// entry, zero or not, so a silent no-op check is visible.
	Checks map[string]CheckTally
	// Timings is per-check wall time, populated only when Options.Clock
	// was supplied (it is injected so package lint itself stays det-path
	// clean). The "callgraph" entry is the one-time Program build shared
	// by every ProgramCheck.
	Timings map[string]time.Duration
}

// CheckTally is one check's row in the summary.
type CheckTally struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// Options tunes a Run beyond the check list.
type Options struct {
	// StaleSuppressions reports every molint:ignore directive that
	// suppressed nothing this run as a "suppress" finding. Only
	// directives naming a check enabled this run are audited, so a
	// -checks subset does not flag the rest of the tree's suppressions.
	StaleSuppressions bool
	// Clock samples wall time around each check for Result.Timings. Nil
	// disables timing (and keeps Run fully deterministic).
	Clock func() time.Time
	// Escapes carries parsed `go build -gcflags=-m=2` diagnostics
	// (ParseEscapes) into the program passes; alloc-hot tiers its
	// findings against it. Nil runs alloc-hot static-only with no tier
	// markers.
	Escapes *EscapeData
}

// Run executes every check over every package and returns deduplicated,
// position-sorted findings. Packages may contain the same file more
// than once (tag-variant runs); duplicate findings collapse.
func Run(pkgs []*Package, checks []Check) Result {
	return RunOpts(pkgs, checks, Options{})
}

// RunOpts is Run with Options.
func RunOpts(pkgs []*Package, checks []Check, opts Options) Result {
	// A directive may name any check in the registry, not just the ones
	// enabled this run — otherwise molint -checks=<subset> would flag
	// every suppression belonging to a disabled check as unknown.
	known := map[string]bool{"suppress": true}
	for _, c := range Checks(&Config{}) {
		known[c.ID()] = true
	}
	for _, c := range checks {
		known[c.ID()] = true
	}
	res := Result{Checks: map[string]CheckTally{"suppress": {}}, Timings: map[string]time.Duration{}}
	for _, c := range checks {
		res.Checks[c.ID()] = CheckTally{}
	}
	timed := func(id string, f func()) {
		if opts.Clock == nil {
			f()
			return
		}
		start := opts.Clock()
		f()
		res.Timings[id] += opts.Clock().Sub(start)
	}
	suppressed := map[suppKey]bool{}
	used := map[suppKey]bool{}
	allDirectives := map[suppKey]directive{}
	seenDirectiveFile := map[string]bool{}
	for _, pkg := range pkgs {
		var ds []directive
		for _, f := range pkg.Files {
			fds, malformed := parseDirectives(pkg.Fset, f, known)
			ds = append(ds, fds...)
			for _, d := range fds {
				allDirectives[suppKey{d.file, d.line, d.check}] = d
			}
			name := pkg.Fset.Position(f.Pos()).Filename
			if !seenDirectiveFile[name] {
				seenDirectiveFile[name] = true
				res.Findings = append(res.Findings, malformed...)
			}
		}
		for _, c := range checks {
			if _, isProg := c.(ProgramCheck); isProg {
				continue
			}
			pass := &Pass{Package: pkg, reporter: reporter{check: c.ID(), findings: &res.Findings,
				suppressed: suppressed, used: used, directives: ds}}
			timed(c.ID(), func() { c.Run(pass) })
		}
	}
	var progChecks []ProgramCheck
	for _, c := range checks {
		if pc, ok := c.(ProgramCheck); ok {
			progChecks = append(progChecks, pc)
		}
	}
	if len(progChecks) > 0 {
		var prog *Program
		timed("callgraph", func() { prog = BuildProgram(pkgs) })
		// Program findings can land in any analyzed file, so the
		// program pass sees every directive, in deterministic order.
		globalDs := make([]directive, 0, len(allDirectives))
		for _, d := range allDirectives {
			globalDs = append(globalDs, d)
		}
		sort.Slice(globalDs, func(i, j int) bool {
			a, b := globalDs[i], globalDs[j]
			if a.file != b.file {
				return a.file < b.file
			}
			if a.line != b.line {
				return a.line < b.line
			}
			return a.check < b.check
		})
		for _, pc := range progChecks {
			pass := &ProgramPass{Prog: prog, Stale: opts.StaleSuppressions, Escapes: opts.Escapes,
				reporter: reporter{check: pc.ID(), findings: &res.Findings,
					suppressed: suppressed, used: used, directives: globalDs}}
			timed(pc.ID(), func() { pc.RunProgram(pass) })
		}
	}
	if opts.StaleSuppressions {
		enabled := map[string]bool{}
		for _, c := range checks {
			enabled[c.ID()] = true
		}
		for key, d := range allDirectives {
			if d.reason == "" || !enabled[d.check] || used[key] {
				continue
			}
			res.Findings = append(res.Findings, Finding{
				Pos:     token.Position{Filename: d.file, Line: d.line, Column: d.col},
				Check:   "suppress",
				Message: fmt.Sprintf("molint:ignore %s suppresses nothing (stale — delete it or fix the drift)", d.check),
			})
		}
	}
	res.Findings = dedupe(res.Findings)
	res.Suppressed = len(suppressed)
	for _, f := range res.Findings {
		t := res.Checks[f.Check]
		t.Findings++
		res.Checks[f.Check] = t
	}
	for k := range suppressed {
		t := res.Checks[k.check]
		t.Suppressed++
		res.Checks[k.check] = t
	}
	return res
}

func dedupe(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
