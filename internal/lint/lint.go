// Package lint implements molint, the repository's static-analysis
// suite. The paper's data structures are correct only under conventions
// no compiler checks — unique-representation constraints on region and
// range values (Section 3.2.2), ordered pointer-free arrays with
// index-only references (Section 4), epsilon-aware degeneracy handling
// in the unit kernels (Section 5) — and the serving/ingestion layers
// added conventions of their own: Ctx kernels must poll cancellation,
// WAL and recovery paths must never drop errors, and compaction and
// fault injection must stay seeded-deterministic. Each convention is a
// Check; the suite runs over typechecked packages using only the
// standard library (go/parser, go/ast, go/types with the source
// importer), so go.mod stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string // check ID, e.g. "float-eq"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Check is one analyzer. Run inspects a typechecked package and reports
// findings through pass.Report; scope decisions (which packages and
// files a check covers) live in the check itself, driven by Config.
type Check interface {
	ID() string
	Run(pass *Pass)
}

// Pass is one typechecked package variant handed to every check.
// Suppression comments are handled by the runner, not by checks:
// Report drops findings covered by a molint:ignore directive and
// records them in the suppressed tally instead.
type Pass struct {
	*Package
	check      string
	findings   *[]Finding
	suppressed map[suppKey]bool
	directives []directive
}

// suppKey identifies one suppressed finding site; the same site seen in
// several package variants counts once.
type suppKey struct {
	file  string
	line  int
	check string
}

// Report files a finding at pos unless a suppression directive covers
// it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives {
		if d.covers(p.check, position) {
			p.suppressed[suppKey{position.Filename, position.Line, p.check}] = true
			return
		}
	}
	*p.findings = append(*p.findings, Finding{Pos: position, Check: p.check, Message: fmt.Sprintf(format, args...)})
}

// directive is one parsed //molint:ignore comment.
type directive struct {
	file   string
	line   int    // line the comment sits on
	check  string // check ID being suppressed, or "*" (never written, reserved)
	reason string // empty means malformed (missing reason)
}

// covers reports whether the directive suppresses a finding of the
// given check at position: same file, matching check ID, and the
// finding sits on the directive's own line or the line directly below
// it (the "comment above the statement" idiom).
func (d directive) covers(check string, pos token.Position) bool {
	if d.reason == "" || d.check != check || d.file != pos.Filename {
		return false
	}
	return pos.Line == d.line || pos.Line == d.line+1
}

const ignorePrefix = "//molint:ignore"

// parseDirectives extracts molint:ignore directives from a file's
// comments. Malformed directives (missing check ID or missing reason)
// are returned as findings so a suppression can never silently widen.
func parseDirectives(fset *token.FileSet, file *ast.File, knownChecks map[string]bool) (ds []directive, malformed []Finding) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			check, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if check == "" {
				malformed = append(malformed, Finding{Pos: pos, Check: "suppress",
					Message: "molint:ignore needs a check ID and a reason"})
				continue
			}
			if knownChecks != nil && !knownChecks[check] {
				malformed = append(malformed, Finding{Pos: pos, Check: "suppress",
					Message: fmt.Sprintf("molint:ignore names unknown check %q", check)})
				continue
			}
			if reason == "" {
				malformed = append(malformed, Finding{Pos: pos, Check: "suppress",
					Message: fmt.Sprintf("molint:ignore %s is missing a reason", check)})
				continue
			}
			ds = append(ds, directive{file: pos.Filename, line: pos.Line, check: check, reason: reason})
		}
	}
	return ds, malformed
}

// Result is the outcome of running checks over a set of packages.
type Result struct {
	Findings   []Finding
	Suppressed int
	// Checks tallies findings and suppressions per check ID, for the
	// summary table and the JSON report. Every check that ran has an
	// entry, zero or not, so a silent no-op check is visible.
	Checks map[string]CheckTally
}

// CheckTally is one check's row in the summary.
type CheckTally struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// Run executes every check over every package and returns deduplicated,
// position-sorted findings. Packages may contain the same file more
// than once (tag-variant runs); duplicate findings collapse.
func Run(pkgs []*Package, checks []Check) Result {
	// A directive may name any check in the registry, not just the ones
	// enabled this run — otherwise molint -checks=<subset> would flag
	// every suppression belonging to a disabled check as unknown.
	known := map[string]bool{"suppress": true}
	for _, c := range Checks(&Config{}) {
		known[c.ID()] = true
	}
	for _, c := range checks {
		known[c.ID()] = true
	}
	res := Result{Checks: map[string]CheckTally{"suppress": {}}}
	for _, c := range checks {
		res.Checks[c.ID()] = CheckTally{}
	}
	suppressed := map[suppKey]bool{}
	seenDirectiveFile := map[string]bool{}
	for _, pkg := range pkgs {
		var ds []directive
		for _, f := range pkg.Files {
			fds, malformed := parseDirectives(pkg.Fset, f, known)
			ds = append(ds, fds...)
			name := pkg.Fset.Position(f.Pos()).Filename
			if !seenDirectiveFile[name] {
				seenDirectiveFile[name] = true
				res.Findings = append(res.Findings, malformed...)
			}
		}
		for _, c := range checks {
			pass := &Pass{Package: pkg, check: c.ID(), findings: &res.Findings,
				suppressed: suppressed, directives: ds}
			c.Run(pass)
		}
	}
	res.Findings = dedupe(res.Findings)
	res.Suppressed = len(suppressed)
	for _, f := range res.Findings {
		t := res.Checks[f.Check]
		t.Findings++
		res.Checks[f.Check] = t
	}
	for k := range suppressed {
		t := res.Checks[k.check]
		t.Suppressed++
		res.Checks[k.check] = t
	}
	return res
}

func dedupe(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
