// Fixture for the goroutine-exit check: every go func literal needs a
// provable exit path — a select on a done/quit channel that returns, a
// bounded loop, a range loop, or an explicit moguard: bounded
// annotation with a reason.
package goroutineexit

import "context"

var feed = make(chan int)
var tick = make(chan struct{})

func work()     {}
func use(int)   {}
func done() bool { return false }

func spawnAll(ctx context.Context, quit chan struct{}, items []int, n int) {
	go func() {
		for { // want `no provable exit path`
			work()
		}
	}()

	go func() {
		for { // select on ctx.Done with return: fine
			select {
			case <-ctx.Done():
				return
			case v := <-feed:
				use(v)
			}
		}
	}()

	go func() {
		for { // quit-channel receive with return: fine
			select {
			case <-quit:
				return
			default:
			}
			work()
		}
	}()

	go func() {
		for i := 0; i < 4; i++ { // constant bound: fine
			work()
		}
	}()

	go func() {
		for i := 0; i < n; i++ { // want `no provable exit path`
			work()
		}
	}()

	go func() {
		for range items { // range ends with its input: fine
			work()
		}
	}()

	// moguard: bounded drains a finite queue and returns
	go func() {
		for !done() {
			work()
		}
	}()

	// moguard: bounded
	go func() { // want `moguard: bounded is missing a reason`
		work()
	}()

	go func() {
		for { // want `no provable exit path`
			select {
			case <-tick: // receives but never returns: the ticker loop leak
				work()
			}
		}
	}()

	go work() // named-function goroutines are out of intraprocedural reach
}
