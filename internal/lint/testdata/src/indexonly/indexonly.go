// Fixture for the index-only check: struct fields must not store
// pointers to data-model types — database arrays are referenced by
// position (Section 4). The fixture package itself plays the role of
// the data-model package.
package indexonly

type Unit struct{ X, Y float64 }

type Record struct {
	First *Unit // want `stores a pointer to data-model type`
	Index int   // index reference: fine
}

type Table struct {
	Units []*Unit          // want `stores a pointer to data-model type`
	ByID  map[string]*Unit // want `stores a pointer to data-model type`
	Rows  []Unit           // value slice: fine
	Name  *string          // pointer to a non-data type: fine
}

type Root struct {
	Deep [][]*Unit // want `stores a pointer to data-model type`
}
