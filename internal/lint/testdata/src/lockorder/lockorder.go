// Fixture for the lock-order check: a two-class acquisition cycle
// (one half witnessed through a helper call), a declared-order
// violation, same-class nesting, and the lockorder directive grammar.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// lockBoth witnesses A.mu -> B.mu directly.
func lockBoth(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock acquisition cycle`
	b.mu.Unlock()
}

// lockBothReversed witnesses B.mu -> A.mu through the call graph: the
// helper's acquisition is charged to the call site where B.mu is held.
func lockBothReversed(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a)
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// moguard: lockorder C.mu before D.mu

// wrongOrder acquires against the declared order: reported at the
// acquisition that closes the reversed edge, not as a cycle.
func wrongOrder(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want `violating declared order`
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }

// lockPair nests two instances of the same class: the type-level
// abstraction cannot order them, so the nesting itself is the finding.
func lockPair(x, y *E) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `an instance of .* is already held`
	y.mu.Unlock()
}

// moguard: lockorder C.mu toward D.mu // want `wants the form`

// moguard: lockorder Ghost.mu before C.mu // want `unknown lock`
