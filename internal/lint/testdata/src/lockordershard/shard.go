// Fixture modeling the planned N-shard ingest layout: one mutex class
// for all shard lanes plus a manifest mutex, with the order declared
// up front. This file is the gate the sharding PR runs under — it must
// stay finding-free: taking the manifest lock while holding a shard
// lock matches the declared order, and the declared edge means any
// future code that witnesses the reverse fails lock-order immediately,
// before a second witness completes a cycle.
package lockordershard

import "sync"

// moguard: lockorder Shard.mu before Manifest.mu

// Shard is one lock-independent ingest lane.
type Shard struct {
	mu   sync.Mutex
	objs map[int]int // moguard: guarded by mu
}

// Manifest tracks which shard owns which object range.
type Manifest struct {
	mu    sync.Mutex
	dirty []int // moguard: guarded by mu
}

// Apply mutates one lane and then notes the change in the manifest,
// acquiring in the declared order.
func (s *Shard) Apply(m *Manifest, id, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[id] = v
	m.note(id)
}

// note is entered with a shard lock held; its manifest acquisition is
// the Shard.mu -> Manifest.mu edge the declaration permits.
func (m *Manifest) note(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty = append(m.dirty, id)
}
