// Fixture for the det-path check: wall-clock and global math/rand are
// banned in deterministic paths; seeded generators are fine.
package detpath

import (
	"math/rand"
	"time"
)

func Bad(start time.Time) (int64, int, time.Duration) {
	t := time.Now().UnixNano() // want `wall-clock call time.Now`
	n := rand.Intn(10)         // want `global rand.Intn`
	d := time.Since(start)     // want `wall-clock call time.Since`
	return t, n, d
}

func Wait(d time.Duration) {
	time.Sleep(d) // want `wall-clock call time.Sleep`
}

// Capture hands the clock to a callee behind a function value: the
// read happens later, but the variation enters here.
func Capture() func() time.Time {
	return time.Now // want `wall-clock function time.Now captured as a value`
}

// Shuffle stores a global rand function for later use — same laundering
// shape for randomness.
var Shuffle = rand.Intn // want `global rand.Intn captured as a value`

func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // method on a seeded generator: fine
}

func Format(t time.Time) string {
	return t.Format(time.RFC3339) // formatting a passed-in time: fine
}
