// Fixture for the atomic-mix check: a field touched via sync/atomic
// anywhere — or annotated moguard: atomic — must never be accessed
// with plain loads or stores.
package atomicmix

import "sync/atomic"

type hits struct {
	n     uint64
	total uint64 // moguard: atomic
	plain int
	typed atomic.Uint64 // moguard: atomic
}

func (h *hits) inc() {
	atomic.AddUint64(&h.n, 1)
}

func (h *hits) okLoad() uint64 {
	return atomic.LoadUint64(&h.n) + atomic.LoadUint64(&h.total)
}

func (h *hits) badLoad() uint64 {
	return h.n // want `plain access to field n`
}

func (h *hits) badStore() {
	// The annotation marks total atomic before any atomic call lands,
	// so a half-migrated field is already a finding.
	h.total = 9 // want `plain access to field total`
}

func (h *hits) okTyped() uint64 {
	// Typed atomics are method-only by construction: every selector on
	// the field is a receiver, never a plain memory access.
	h.typed.Add(1)
	return h.typed.Load()
}

func (h *hits) okPlain() int {
	h.plain++ // never touched by sync/atomic: plain access is fine
	return h.plain
}

func reset(h *hits) {
	h.n = 0 // want `plain access to field n`
	atomic.StoreUint64(&h.total, 0)
}
