// Fixture for the float-eq check: raw ==/!= on predeclared float64 is
// flagged, ordering comparisons and named float types are not, and
// allowlisted functions are exempt wholesale.
package floateq

type Instant float64

type point struct{ X, Y float64 }

func equal(a, b float64) bool {
	return a == b // want `raw float64 == comparison`
}

func sentinel(a float64) bool {
	if a != 0 { // want `raw float64 != comparison`
		return true
	}
	return a < 1 // ordering is not equality: not flagged
}

func mixed(a float64, n int) bool {
	return float64(n) == a // want `raw float64 == comparison`
}

func namedExempt(t, u Instant) bool {
	return t == u // named float types carry exact-endpoint semantics
}

func structExempt(p, q point) bool {
	return p == q // struct identity is representation equality
}

func constFolded() bool {
	const eps = 1e-9
	return eps == 1e-9 // compile-time constant: exact by definition
}

// allowed is in the fixture's FloatEqAllow set.
func allowed(a, b float64) bool {
	return a == b
}

type key struct{ v float64 }

// Cmp is allowlisted as a method ("key.Cmp").
func (k key) Cmp(o key) int {
	if k.v != o.v {
		if k.v < o.v {
			return -1
		}
		return 1
	}
	return 0
}
