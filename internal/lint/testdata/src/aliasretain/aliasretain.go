// Fixture for the alias-retain check: slices and pointers received by
// exported functions are caller-owned; storing one into struct or
// package state — directly, via re-slicing, via a composite literal,
// or one call frame down — needs a "moguard: retained" annotation at
// the store. Spread appends copy and are fine; receivers retaining
// their own state are the point of having state.
package aliasretain

import "sync"

type Index struct {
	mu  sync.Mutex
	out []int // moguard: guarded by mu
	buf []int // moguard: guarded by mu
}

var scratch []int
var last *Index

// Search reuses the caller's out slice across calls — the reused
// out-slice bug class, caught at the store.
func (ix *Index) Search(q int, out []int) []int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.out = out // want `stores caller-owned parameter out into field out`
	return append(out, q)
}

// Record leaks a caller-owned slice into package state.
func Record(vals []int) {
	scratch = vals // want `package variable scratch`
}

// Mixed re-slices the parameter (still the caller's backing array) but
// copies via spread append (fine).
func (ix *Index) Mixed(vals []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.buf = append(ix.buf, vals...)
	ix.out = vals[1:] // want `stores caller-owned parameter vals into field out`
}

// Keep hides the retention one frame down; the callee's summary
// surfaces it at this call site.
func Keep(dst *Index, vals []int) {
	dst.stash(vals) // want `passes caller-owned parameter vals to .*stash, which retains it`
}

func (ix *Index) stash(vals []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.buf = vals
}

// Adopt declares the ownership transfer: annotated stores are clean
// and do not propagate through the summaries.
func (ix *Index) Adopt(vals []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// moguard: retained Adopt's contract is that callers hand the slice over
	ix.buf = vals
}

// AdoptBad annotates without saying why.
func (ix *Index) AdoptBad(vals []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// moguard: retained // want `missing a reason`
	ix.buf = vals
}

// Copy is the sanctioned fix: a spread append owns fresh storage.
func (ix *Index) Copy(vals []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.buf = append([]int(nil), vals...)
}

// Seal retains the receiver, which the contract exempts: an object
// storing itself is registration, not buffer capture.
func (ix *Index) Seal() {
	last = ix
}
