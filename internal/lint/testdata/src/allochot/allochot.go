// Package allochot is the golden fixture for the alloc-hot check: a
// hotpath-annotated root, functions reached through the call graph
// (flagged), an unreachable function (ignored), capacity-hinted
// appends (clean), and an allocok-suppressed site.
package allochot

import "fmt"

type item struct {
	name string
	vals []int
}

type holder struct {
	fn func() int
}

// hot is the annotated root; everything it reaches is hot.
//
// moguard: hotpath
func hot(items []item) []string {
	out := []string{}
	for _, it := range items {
		out = append(out, it.name) // want `append in a loop to out, declared without a capacity hint`
	}
	lookup := make(map[string]int) // want `allocates a map on every call`
	_ = lookup
	p := &item{name: "x"} // want `address-taken composite literal is heap-bound`
	_ = p
	fmt.Println("serving") // want `fmt.Println allocates its variadic slice`
	warm(len(items))
	cold(items)
	return out
}

// warm is hot by reachability; its append carries a capacity hint, so
// only the push-helper call pattern below is flagged.
func warm(n int) []int {
	pre := make([]int, 0, n)
	for i := 0; i < n; i++ {
		pre = append(pre, i)
	}
	push(&pre, n)
	return pre
}

// push is the pointer-deref append helper: growth reallocates no
// matter how the caller loops.
func push(dst *[]int, v int) {
	*dst = append(*dst, v) // want `append through a pointer dereference`
}

// cold is hot by reachability despite the name.
func cold(items []item) {
	var s string
	for range items {
		s = s + "x" // want `string concatenation in a loop`
	}
	_ = s
	box(42) // want `boxes into`
	h := holder{}
	h.fn = maker(len(items)) // closure flagged inside maker, not here
	_ = h
	// moguard: allocok fixture: the scratch map models a justified per-call allocation
	scratch := make(map[int]bool)
	_ = scratch
	for range items {
		defer fmt.Sprint(0) // want `defer inside a loop` // want `fmt.Sprint allocates`
	}
}

// box's parameter is an interface: concrete arguments heap-allocate
// their box at the call site.
func box(v any) any { return v }

// maker returns a closure, so the capture set outlives the frame.
func maker(n int) func() int {
	return func() int { return n } // want `returned closure outlives the frame`
}

// idle is unreachable from any hotpath root: identical allocation
// sites here must produce no findings.
func idle() map[string]int {
	m := make(map[string]int)
	var xs []string
	for i := 0; i < 3; i++ {
		xs = append(xs, fmt.Sprint(i))
	}
	m["n"] = len(xs)
	return m
}
