// Fixture for the err-drop check: discarded error returns in every
// statement shape, plus the shapes that are fine.
package errdrop

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func value() int { return 7 }

func bad() {
	fail()       // want `call discards error result`
	defer fail() // want `deferred call discards error result`
	go fail()    // want `go statement discards error result`
	_ = fail()   // want `error result assigned to blank identifier`
	n, _ := pair() // want `error result assigned to blank identifier`
	_ = n
	v, _ := strconv.Atoi("7") // want `error result assigned to blank identifier`
	_ = v
}

func good() error {
	value() // no error in the result list: fine
	if err := fail(); err != nil {
		return err
	}
	n, err := pair()
	_ = n // discarding a non-error is fine
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%d", n) // infallible writer: fine
	return err
}
