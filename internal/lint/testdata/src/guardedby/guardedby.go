// Fixture for the guarded-by check: the moguard field grammar, the
// annotation-debt rule on mutex-bearing structs, and intraprocedural
// lock tracking (RLock-for-read, defer-unlock, branch discard, nested
// locks, goroutine reset, the Locked-suffix contract).
package guardedby

import "sync"

type counter struct {
	mu    sync.RWMutex
	n     int    // moguard: guarded by mu
	limit int    // moguard: immutable
	tag   string // moguard: unguarded written once by a single test harness
	hot   uint64 // moguard: atomic
	// moguard: guarded by mu
	byName map[string]int
	debt   int            // want `needs a moguard annotation`
	bad2   int            // moguard: guarded by nosuch // want `names no mutex field`
	bad3   int            // moguard: frobbed // want `unknown verb`
	bad4   int            // moguard: unguarded // want `missing a reason`
	wg     sync.WaitGroup // sync types are exempt: they synchronise themselves
}

// newCounter is a plain function: the construction phase owns its value
// exclusively, so field writes here are exempt.
func newCounter(limit int) *counter {
	c := &counter{limit: limit, byName: map[string]int{}}
	c.n = 0
	c.tag = "fresh"
	return c
}

func (c *counter) Get() int {
	c.mu.RLock() // RLock suffices for reads
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) Bump() {
	c.mu.Lock()
	c.n++
	c.byName["total"] = c.n
	c.mu.Unlock()
}

func (c *counter) DeferBump() {
	c.mu.Lock()
	defer c.mu.Unlock() // held to the end of the method
	c.n++
}

func (c *counter) BadRead() int {
	return c.n // want `reads counter.n without holding mu`
}

func (c *counter) BadWriteUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = 1 // want `holding only mu.RLock`
}

func (c *counter) BadWriteImmutable() {
	c.limit = 3 // want `writes immutable field counter.limit`
}

func (c *counter) BadAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `writes counter.n without holding mu`
}

func (c *counter) BadBranchLeak(b bool) {
	if b {
		c.mu.Lock()
		c.n++ // fine: the lock is held in this branch
		c.mu.Unlock()
	}
	c.n++ // want `writes counter.n without holding mu`
}

func (c *counter) BadGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	go func() {
		c.n++ // want `writes counter.n without holding mu`
	}()
}

func (c *counter) OkUnguardedAndAtomic() {
	c.tag = "t" // unguarded: deliberately out of scope
	_ = c.hot   // atomic: atomic-mix owns this access, not guarded-by
	c.wg.Wait()
}

// sumLocked carries the held-lock contract in its name: it enters with
// the struct's mutexes held, and callers must hold one.
func (c *counter) sumLocked() int {
	return c.n + len(c.byName)
}

func (c *counter) OkCallHelper() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sumLocked()
}

func (c *counter) BadCallHelper() int {
	return c.sumLocked() // want `calls sumLocked without holding a lock`
}

// pair exercises nested locks: each field is tied to its own mutex.
type pair struct {
	mua sync.Mutex
	mub sync.Mutex
	a   int // moguard: guarded by mua
	b   int // moguard: guarded by mub
}

func (p *pair) OkBoth() {
	p.mua.Lock()
	defer p.mua.Unlock()
	p.mub.Lock()
	defer p.mub.Unlock()
	p.a++
	p.b++
}

func (p *pair) BadWrongLock() {
	p.mua.Lock()
	defer p.mua.Unlock()
	p.a++
	p.b++ // want `writes pair.b without holding mub`
}
