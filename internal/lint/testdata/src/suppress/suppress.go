// Fixture for the suppression machinery: a respected directive, a
// directive missing its reason (which suppresses nothing and is itself
// a finding), a directive naming an unknown check, and a well-formed
// directive that suppresses nothing (reported only under
// -stale-suppressions).
package suppress

import "errors"

func fail() error { return errors.New("x") }

func respected() {
	//molint:ignore err-drop teardown probe; a failure here cannot mask data loss
	fail()
}

func missingReason() {
	//molint:ignore err-drop
	fail()
}

func unknownCheck() error {
	//molint:ignore no-such-check reasons do not rescue unknown check IDs
	return fail()
}

func stale() int {
	//molint:ignore ctx-loop nothing here selects on a context anymore
	return 0
}

// staleAllocok carries a well-formed allocok directive covering no
// flagged allocation site (the function is not hot): alloc-hot's own
// stale audit reports it under -stale-suppressions. New fixture
// content goes BELOW this line — earlier line numbers are asserted
// exactly by TestSuppressions.
func staleAllocok() int {
	// moguard: allocok nothing on the next line allocates on a hot path
	return 0
}
