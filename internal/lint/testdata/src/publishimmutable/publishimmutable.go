// Fixture for the publish-immutable check: a value whose address
// reaches an atomic publish is frozen — stores after the publish site
// are findings whether they happen directly, through a helper that the
// summaries say writes its parameter, or after the publish itself went
// through a helper. Rebinding the variable to a fresh value lifts the
// freeze.
package publishimmutable

import "sync/atomic"

type epoch struct {
	seq int64
	ids []int
}

type store struct {
	cur atomic.Pointer[epoch]
}

// publishDirect freezes next at the Store and then writes it.
func (s *store) publishDirect(next *epoch) {
	next.seq++ // building before the publish is the point of COW
	s.cur.Store(next)
	next.seq = 9 // want `written after being atomically published`
}

// publishViaHelper publishes through install (the summary carries the
// publish to this call site) and then hands the frozen value to a
// helper whose summary stores through its parameter.
func (s *store) publishViaHelper(next *epoch) {
	s.install(next)
	bump(next) // want `may be written by`
}

func (s *store) install(e *epoch) {
	s.cur.Store(e)
}

func bump(e *epoch) {
	e.seq++
}

// rebuildOK shows the sanctioned pattern: after publishing, the
// variable is rebound to a freshly built value, so later stores touch
// the new object, never the published one.
func (s *store) rebuildOK(next *epoch) {
	s.cur.Store(next)
	next = &epoch{seq: next.seq + 1}
	next.seq = 2
	s.cur.Store(next)
}
