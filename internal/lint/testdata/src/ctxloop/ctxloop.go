// Fixture for the ctx-loop check: exported ...Ctx functions must poll
// cancellation inside input-bounded loops.
package ctxloop

import "context"

func ScanCtx(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // want `never polls cancellation`
		total += x
	}
	return total
}

func TwoLoopsCtx(ctx context.Context, xs, ys []int) (int, error) {
	total := 0
	for i, x := range xs {
		if err := pollEvery(ctx, i); err != nil {
			return 0, err
		}
		total += x
	}
	for _, y := range ys { // want `never polls cancellation`
		total += y
	}
	return total, nil
}

func SumCtx(ctx context.Context, xs []int) (int, error) {
	total := 0
	for i, x := range xs {
		if i%8 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += x
	}
	return total, nil
}

// DelegateCtx polls by passing ctx to a helper each iteration.
func DelegateCtx(ctx context.Context, xs []int) error {
	for i := range xs {
		if err := pollEvery(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// NestedCtx polls in the outer loop only; the inner loop is covered by
// the per-iteration poll of its parent.
func NestedCtx(ctx context.Context, xs [][]int) (int, error) {
	total := 0
	for i, row := range xs {
		if err := pollEvery(ctx, i); err != nil {
			return 0, err
		}
		for _, x := range row {
			total += x
		}
	}
	return total, nil
}

// FixedCtx has a constant trip count: exempt.
func FixedCtx(ctx context.Context) int {
	t := 0
	for i := 0; i < 4; i++ {
		t += i
	}
	return t
}

// SelectCtx polls via ctx.Done in a select.
func SelectCtx(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += v
	}
	return total
}

// unexportedCtx is not part of the convention's surface.
func unexportedCtx(ctx context.Context, xs []int) {
	for range xs {
	}
}

func pollEvery(ctx context.Context, i int) error {
	if i%64 != 0 {
		return nil
	}
	return ctx.Err()
}
