package lint

import (
	"go/ast"
	"go/types"
)

// errDrop bans discarded error returns in the ingestion and storage
// packages — the WAL, checkpoint, and recovery surface, where a
// swallowed error is exactly how a torn write or failed fsync turns
// into silent data loss (the never-fail-open rule of DESIGN.md §9).
// Three shapes are flagged: a call used as a bare statement whose
// results include an error, a go/defer of such a call, and an error
// result assigned to the blank identifier. Test files are covered too:
// a test that ignores a Close or Decode error asserts nothing about
// the path it exercises. Intentional discards (crash-only teardown,
// "must not panic" probes) carry //molint:ignore err-drop <reason>.
type errDrop struct{ cfg *Config }

func (errDrop) ID() string { return "err-drop" }

func (c errDrop) Run(pass *Pass) {
	if !inScope(c.cfg.ErrDropPkgs, pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				c.checkCall(pass, s.X, "call discards error result")
			case *ast.DeferStmt:
				c.checkCall(pass, s.Call, "deferred call discards error result")
			case *ast.GoStmt:
				c.checkCall(pass, s.Call, "go statement discards error result")
			case *ast.AssignStmt:
				c.checkAssign(pass, s)
			}
			return true
		})
	}
}

// checkCall reports a call expression whose result list contains an
// error that the surrounding statement cannot observe.
func (errDrop) checkCall(pass *Pass, e ast.Expr, msg string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if infallibleWrite(pass, call) {
		return
	}
	tv, ok := pass.Info.Types[ast.Expr(call)]
	if !ok || tv.Type == nil {
		return
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				pass.Report(call.Pos(), "%s", msg)
				return
			}
		}
	default:
		if isErrorType(t) {
			pass.Report(call.Pos(), "%s", msg)
		}
	}
}

// checkAssign reports error results assigned to the blank identifier,
// e.g. `v, _ := Decode(b)` where the second result is an error.
func (errDrop) checkAssign(pass *Pass, s *ast.AssignStmt) {
	// Single call with multiple results: match tuple positions to LHS.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := pass.Info.Types[ast.Expr(call)]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lh := range s.Lhs {
			if isBlank(lh) && isErrorType(tuple.At(i).Type()) {
				pass.Report(lh.Pos(), "error result assigned to blank identifier")
			}
		}
		return
	}
	// 1:1 assignments: `_ = f()` where f returns exactly an error.
	if len(s.Rhs) == len(s.Lhs) {
		for i, lh := range s.Lhs {
			if !isBlank(lh) {
				continue
			}
			if _, ok := s.Rhs[i].(*ast.CallExpr); !ok {
				continue
			}
			if tv, ok := pass.Info.Types[s.Rhs[i]]; ok && tv.Type != nil && isErrorType(tv.Type) {
				pass.Report(lh.Pos(), "error result assigned to blank identifier")
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// infallibleWrite recognises fmt.Fprint/Fprintf/Fprintln into a
// *bytes.Buffer or *strings.Builder. Those writers never return a
// non-nil error, so the dropped error carries no information — the
// one statically safe discard.
func infallibleWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Fprint", "Fprintf", "Fprintln":
	default:
		return false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}
