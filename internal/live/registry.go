package live

import (
	"fmt"
	"sync"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/index"
	"movingdb/internal/ingest"
	"movingdb/internal/obs"
)

// Event is one edge-triggered notification: a predicate flipped for an
// object at an epoch publish. Seq is the per-subscription sequence
// (contiguous when nothing was dropped), Epoch the publishing epoch,
// Edge "enter" or "leave", and (X, Y, T) the object's latest observed
// sample. PubUnixNS is the wall-clock instant the publishing flush
// handed the epoch to the registry — subtracting it from the receive
// time gives the end-to-end publish→delivery latency (benchmark E10).
type Event struct {
	Seq       uint64  `json:"seq"`
	Epoch     uint64  `json:"epoch"`
	Edge      string  `json:"edge"`
	Object    string  `json:"object"`
	T         float64 `json:"t"`
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	PubUnixNS int64   `json:"pub_unix_ns"`
}

// notice is one epoch publish queued for the notifier goroutine.
type notice struct {
	ep    *ingest.Epoch
	dirty []ingest.DirtyObject
	pubNS int64
}

// Config tunes a Registry.
type Config struct {
	// BufferCap bounds each subscriber's event ring; when a slow
	// consumer falls BufferCap events behind, the oldest events are
	// dropped and the stream is marked lagged. Default 256.
	BufferCap int
	// QueueCap bounds the publish queue between the ingest hook and the
	// notifier goroutine; when full, the two oldest publishes coalesce
	// (dirty sets merged, both epochs' edges still detected — only the
	// intermediate epoch attribution is lost). Default 64.
	QueueCap int
	// Metrics receives subscription/event/lag counters. Optional.
	Metrics *obs.Metrics
	// Now is the clock used to stamp publishes (injectable for tests).
	// Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.BufferCap <= 0 {
		c.BufferCap = 256
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	} else if c.QueueCap < 2 {
		c.QueueCap = 2 // the overflow path coalesces the two oldest notices
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Registry owns the standing queries: subscriptions indexed two ways
// (by subject object id for the id-bound forms, through an R-tree over
// bounding rectangles for the region-scoped forms — the same index
// structure the data path uses, turned around to index queries), a
// bounded queue of epoch publishes, and one notifier goroutine that
// drains the queue and evaluates only the subscriptions whose bounds
// intersect the publish's dirty set. Safe for concurrent use.
type Registry struct {
	cfg Config // moguard: immutable

	mu         sync.Mutex
	subs       map[string]*Subscription            // moguard: guarded by mu
	byObject   map[string]map[string]*Subscription // moguard: guarded by mu // id-bound subs keyed by subject, then sub id
	regions    *index.Dynamic                      // moguard: guarded by mu // region-scoped subs; rebuilt when tombstones pile up
	regionSubs map[int64]*Subscription             // moguard: guarded by mu // region-index key → sub; absent = tombstone
	tombstones int                                 // moguard: guarded by mu
	nextID     uint64                              // moguard: guarded by mu
	nextKey    int64                               // moguard: guarded by mu
	queue      []notice                            // moguard: guarded by mu
	closed     bool                                // moguard: guarded by mu

	wake chan struct{} // moguard: immutable
	done chan struct{} // moguard: immutable
	wg   sync.WaitGroup
}

// NewRegistry starts a registry and its notifier goroutine. Callers
// must Close it to stop the goroutine and end every event stream.
func NewRegistry(cfg Config) *Registry {
	r := &Registry{
		cfg:        cfg.withDefaults(),
		subs:       make(map[string]*Subscription),
		byObject:   make(map[string]map[string]*Subscription),
		regions:    index.NewDynamic(nil, 0),
		regionSubs: make(map[int64]*Subscription),
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.done:
				return
			case <-r.wake:
				r.drain()
			}
		}
	}()
	return r
}

// Subscribe registers a standing query and seeds its edge-trigger state
// from ep (nil means "nothing inside yet": the first publish placing an
// object inside the predicate emits an enter). Returns the subscription
// whose Events stream the caller reads.
func (r *Registry) Subscribe(p Predicate, ep *ingest.Epoch) (*Subscription, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("live: registry is closed")
	}
	r.nextID++
	var key int64
	if !p.idBound() {
		r.nextKey++
		key = r.nextKey
	}
	s := &Subscription{
		id:      fmt.Sprintf("s%d", r.nextID),
		pred:    p,
		bound:   p.Bound(),
		key:     key,
		buf:     make([]Event, r.cfg.BufferCap),
		members: make(map[string]struct{}),
		ch:      make(chan struct{}, 1),
		doneCh:  make(chan struct{}),
		metrics: r.cfg.Metrics,
	}
	s.seed(ep)
	r.subs[s.id] = s
	if p.idBound() {
		m := r.byObject[p.Object]
		if m == nil {
			m = make(map[string]*Subscription)
			r.byObject[p.Object] = m
		}
		m[s.id] = s
	} else {
		r.regionSubs[s.key] = s
		r.regions.Insert(index.Entry{Cube: fullTimeCube(s.bound), ID: s.key})
	}
	r.cfg.Metrics.RecordLiveSubscribe()
	return s, nil
}

// fullTimeCube lifts a rectangle into the index's (x, y, t) space with
// an unbounded time extent — subscriptions outlive any epoch.
func fullTimeCube(rect geom.Rect) geom.Cube {
	const inf = 1e308
	return geom.Cube{Rect: rect, MinT: -inf, MaxT: inf}
}

// Get returns a subscription by id.
func (r *Registry) Get(id string) (*Subscription, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	return s, ok
}

// Len returns the number of active subscriptions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Unsubscribe removes a subscription and ends its event stream. The
// region index keeps a tombstone (the Dynamic index is append-only)
// until enough pile up to amortise a rebuild over the survivors.
func (r *Registry) Unsubscribe(id string) bool {
	r.mu.Lock()
	s, ok := r.subs[id]
	if ok {
		delete(r.subs, id)
		if s.pred.idBound() {
			m := r.byObject[s.pred.Object]
			delete(m, id)
			if len(m) == 0 {
				delete(r.byObject, s.pred.Object)
			}
		} else {
			delete(r.regionSubs, s.key)
			r.tombstones++
			if r.tombstones > 64 && r.tombstones > len(r.regionSubs) {
				r.rebuildRegionsLocked()
			}
		}
	}
	r.mu.Unlock()
	if ok {
		s.close()
		r.cfg.Metrics.RecordLiveUnsubscribe()
	}
	return ok
}

// rebuildRegionsLocked re-indexes the surviving region subscriptions,
// shedding tombstoned entries. Caller holds r.mu.
func (r *Registry) rebuildRegionsLocked() {
	entries := make([]index.Entry, 0, len(r.regionSubs))
	for key, s := range r.regionSubs {
		entries = append(entries, index.Entry{Cube: fullTimeCube(s.bound), ID: key})
	}
	r.regions = index.NewDynamic(index.Build(entries), 0)
	r.tombstones = 0
}

// Notify is the ingest pipeline's OnPublish hook. It runs on the flush
// path, so it only stamps the publish, merges it into the bounded queue
// and wakes the notifier — never evaluates, never blocks. When the
// queue is full the two oldest publishes coalesce: their dirty sets
// merge (keeping the older timestamp and the newer epoch), which
// preserves every edge because edges are state flips against the
// subscription's last evaluated state.
//
// moguard: hotpath
func (r *Registry) Notify(ep *ingest.Epoch, dirty []ingest.DirtyObject) {
	pubNS := r.cfg.Now().UnixNano()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	coalesced := false
	if len(r.queue) >= r.cfg.QueueCap {
		merged := notice{
			ep:    r.queue[1].ep,
			dirty: mergeDirty(r.queue[0].dirty, r.queue[1].dirty),
			pubNS: r.queue[0].pubNS,
		}
		r.queue[1] = merged
		r.queue[0] = notice{}
		r.queue = r.queue[1:]
		coalesced = true
	}
	// moguard: retained publish hand-off — the store builds a fresh dirty slice per publish and the epoch is frozen COW state
	r.queue = append(r.queue, notice{ep: ep, dirty: dirty, pubNS: pubNS})
	r.mu.Unlock()
	r.cfg.Metrics.RecordLiveNotify(coalesced)
	if err := failpointHit("live.notify"); err != nil {
		// Injected wake-up loss. The notice is already queued, so nothing
		// is dropped — delivery is deferred until the next publish wakes
		// the notifier (which drains the queue in order).
		return
	}
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// drain evaluates queued publishes in order until the queue is empty.
// The registry lock covers only the queue pop and the candidate lookup;
// evaluation and delivery run outside it, so a slow evaluation never
// blocks the ingest flush path (Notify only ever waits for a candidate
// collection, not for an evaluation). Per-subscription event order is
// still total: this is the only goroutine that evaluates.
func (r *Registry) drain() {
	for {
		r.mu.Lock()
		if len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		n := r.queue[0]
		r.queue[0] = notice{}
		r.queue = r.queue[1:]
		cands := r.candidatesLocked(n)
		r.mu.Unlock()
		start := time.Now()
		events, dropped := 0, 0
		for _, s := range cands {
			ev, dr := s.evaluate(n)
			events += ev
			dropped += dr
		}
		r.cfg.Metrics.RecordLiveEval(len(cands), events, dropped, time.Since(start))
	}
}

// Close stops the notifier goroutine, waits for it, and ends every
// subscription's event stream. Idempotent; wired into the server's
// SIGTERM drain so in-flight SSE handlers unblock and return.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.queue = nil
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
	for _, s := range subs {
		s.close()
	}
}
